//===- tools/bench_compare.cpp - BENCH_*.json regression gate -------------===//
//
//   bench_compare <fresh.json> <baseline.json> [--tolerance PCT]
//
// Compares a freshly generated BENCH_*.json trend record against a
// committed baseline (bench/baselines/). Records are matched by their
// identity fields (problem/strategy/fault, or the field-name set for the
// e14/e15 overhead records), then compared field by field:
//
//  * structural fields (cycles, lower_bound_proved, failures, compiled,
//    exhausted, gmas, detected_after_gmas) must match exactly — they are
//    deterministic under the benches' fixed seeds, and a drift means the
//    search or the oracle changed behaviour, not just speed;
//  * timing fields (*_s) fail only on regression: fresh may not exceed
//    baseline * (1 + PCT/100); throughput (gma_per_s) may not fall below
//    baseline / (1 + PCT/100). Improvements always pass.
//  * derived percentages (*_pct) and known-noisy counters
//    (cancelled_probes) are ignored.
//
// The default tolerance is 100% (half speed fails); perf_smoke passes a
// wider one because CI machines are loaded and the committed baselines come
// from a different box. Missing baseline records fail (the baseline is
// stale); extra fresh records are reported but pass (a new bench arm is not
// a regression).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/StringExtras.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace denali;
namespace json = denali::support::json;

namespace {

std::unique_ptr<json::Value> readJsonArray(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_compare: cannot open '%s'\n", Path);
    return nullptr;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (Buf.str().empty()) {
    std::fprintf(stderr, "bench_compare: '%s' is empty\n", Path);
    return nullptr;
  }
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Buf.str(), &Err);
  if (!Doc) {
    std::fprintf(stderr, "bench_compare: %s: invalid JSON: %s\n", Path,
                 Err.c_str());
    return nullptr;
  }
  if (!Doc->isArray()) {
    std::fprintf(stderr, "bench_compare: %s: not a JSON array\n", Path);
    return nullptr;
  }
  return Doc;
}

/// Identity of a record: its string-valued fields, or (for the all-numeric
/// overhead records) its field-name set.
std::string recordKey(const json::Value &R) {
  std::string Key;
  for (const auto &[Name, V] : R.object())
    if (V.isString())
      Key += Name + "=" + V.stringValue() + ";";
  if (Key.empty())
    for (const auto &[Name, V] : R.object())
      Key += Name + ";";
  return Key;
}

bool isTimingField(const std::string &Name) {
  return Name.size() > 2 && Name.compare(Name.size() - 2, 2, "_s") == 0;
}

bool isIgnoredField(const std::string &Name) {
  return Name == "cancelled_probes" || Name == "threads" ||
         (Name.size() > 4 && Name.compare(Name.size() - 4, 4, "_pct") == 0);
}

} // namespace

int main(int argc, char **argv) {
  const char *FreshPath = nullptr, *BasePath = nullptr;
  double TolerancePct = 100;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--tolerance") && I + 1 < argc)
      TolerancePct = std::atof(argv[++I]);
    else if (!FreshPath)
      FreshPath = argv[I];
    else if (!BasePath)
      BasePath = argv[I];
    else {
      std::fprintf(stderr, "bench_compare: unexpected argument '%s'\n",
                   argv[I]);
      return 2;
    }
  }
  if (!FreshPath || !BasePath) {
    std::fprintf(stderr, "usage: bench_compare <fresh.json> <baseline.json> "
                         "[--tolerance PCT]\n");
    return 2;
  }

  std::unique_ptr<json::Value> Fresh = readJsonArray(FreshPath);
  std::unique_ptr<json::Value> Base = readJsonArray(BasePath);
  if (!Fresh || !Base)
    return 1;

  std::map<std::string, const json::Value *> FreshByKey;
  for (const json::Value &R : Fresh->array())
    if (R.isObject())
      FreshByKey[recordKey(R)] = &R;

  const double Slack = 1.0 + TolerancePct / 100.0;
  bool Ok = true;
  size_t Compared = 0;
  for (const json::Value &B : Base->array()) {
    if (!B.isObject())
      continue;
    std::string Key = recordKey(B);
    auto It = FreshByKey.find(Key);
    if (It == FreshByKey.end()) {
      std::fprintf(stderr,
                   "bench_compare: baseline record '%s' missing from %s "
                   "(bench arm removed? regenerate the baseline)\n",
                   Key.c_str(), FreshPath);
      Ok = false;
      continue;
    }
    const json::Value &F = *It->second;
    FreshByKey.erase(It);
    ++Compared;
    for (const auto &[Name, BV] : B.object()) {
      if (BV.isString() || isIgnoredField(Name))
        continue;
      const json::Value *FV = F.field(Name);
      if (!FV) {
        std::fprintf(stderr, "bench_compare: %s: field '%s' missing\n",
                     Key.c_str(), Name.c_str());
        Ok = false;
        continue;
      }
      if (BV.isBool()) {
        if (!FV->isBool() || FV->boolValue() != BV.boolValue()) {
          std::fprintf(stderr,
                       "bench_compare: %s: '%s' changed (baseline %s)\n",
                       Key.c_str(), Name.c_str(),
                       BV.boolValue() ? "true" : "false");
          Ok = false;
        }
        continue;
      }
      if (!BV.isNumber() || !FV->isNumber())
        continue;
      double BN = BV.numberValue(), FN = FV->numberValue();
      if (isTimingField(Name)) {
        bool Throughput = Name.find("per_s") != std::string::npos;
        bool Regressed = Throughput ? FN < BN / Slack : FN > BN * Slack;
        if (Regressed) {
          std::fprintf(stderr,
                       "bench_compare: %s: '%s' regressed: %.4f vs "
                       "baseline %.4f (tolerance %.0f%%)\n",
                       Key.c_str(), Name.c_str(), FN, BN, TolerancePct);
          Ok = false;
        }
      } else if (FN != BN) {
        std::fprintf(stderr,
                     "bench_compare: %s: '%s' changed: %.4f vs baseline "
                     "%.4f (structural fields must match exactly)\n",
                     Key.c_str(), Name.c_str(), FN, BN);
        Ok = false;
      }
    }
  }
  for (const auto &[Key, R] : FreshByKey) {
    (void)R;
    std::printf("bench_compare: new record '%s' not in baseline (ok)\n",
                Key.c_str());
  }
  std::printf("bench_compare: %zu record(s) compared against %s: %s\n",
              Compared, BasePath, Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
