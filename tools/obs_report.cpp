//===- tools/obs_report.cpp - Trace & metrics report tool -----------------===//
//
// Post-processing for the obs layer's artifacts:
//
//   obs_report trace <trace.json> [--top N]
//     Reads a Chrome trace_event file and prints the top-N span names by
//     *self* time (span duration minus the duration of spans nested inside
//     it on the same thread), plus call counts and total time.
//
//   obs_report metrics <metrics.txt> [--require name,name,...]
//     Parses the plain-text metrics summary; with --require, exits
//     nonzero unless every named counter is present with a nonzero value.
//     The perf_smoke CI step uses this to assert the pipeline's core
//     counters are actually being recorded.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace denali;
namespace json = denali::support::json;

namespace {

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "obs_report: cannot open '%s'\n", Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

struct SpanRow {
  uint64_t Count = 0;
  double TotalUs = 0;
  double SelfUs = 0;
};

int traceReport(const char *Path, size_t TopN) {
  std::string Text;
  if (!readFile(Path, Text))
    return 1;
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &Err);
  if (!Doc) {
    std::fprintf(stderr, "obs_report: %s: invalid JSON: %s\n", Path,
                 Err.c_str());
    return 1;
  }
  const json::Value *Events = Doc->field("traceEvents");
  if (!Events || !Events->isArray()) {
    std::fprintf(stderr, "obs_report: %s: no traceEvents array\n", Path);
    return 1;
  }

  // Complete ("X") events only, grouped per tid. Self time = duration minus
  // the duration of child spans, found by sweeping each thread's spans in
  // start order with an enclosing-span stack.
  struct Span {
    std::string Name;
    double Ts, Dur;
  };
  std::map<double, std::vector<Span>> PerTid;
  size_t Total = 0;
  for (const json::Value &E : Events->array()) {
    const json::Value *Ph = E.field("ph");
    if (!Ph || !Ph->isString() || Ph->stringValue() != "X")
      continue;
    const json::Value *Name = E.field("name");
    const json::Value *Ts = E.field("ts");
    const json::Value *Dur = E.field("dur");
    const json::Value *Tid = E.field("tid");
    if (!Name || !Ts || !Dur)
      continue;
    PerTid[Tid ? Tid->numberValue() : 0].push_back(
        Span{Name->stringValue(), Ts->numberValue(), Dur->numberValue()});
    ++Total;
  }

  std::map<std::string, SpanRow> Rows;
  for (auto &[Tid, Spans] : PerTid) {
    (void)Tid;
    std::sort(Spans.begin(), Spans.end(), [](const Span &A, const Span &B) {
      if (A.Ts != B.Ts)
        return A.Ts < B.Ts;
      return A.Dur > B.Dur; // Parents (longer) first at equal start.
    });
    std::vector<size_t> Stack; // Indices of enclosing spans.
    for (size_t I = 0; I < Spans.size(); ++I) {
      const Span &S = Spans[I];
      while (!Stack.empty() &&
             Spans[Stack.back()].Ts + Spans[Stack.back()].Dur <= S.Ts)
        Stack.pop_back();
      SpanRow &R = Rows[S.Name];
      R.Count += 1;
      R.TotalUs += S.Dur;
      R.SelfUs += S.Dur;
      if (!Stack.empty())
        Rows[Spans[Stack.back()].Name].SelfUs -= S.Dur;
      Stack.push_back(I);
    }
  }

  std::vector<std::pair<std::string, SpanRow>> Sorted(Rows.begin(),
                                                      Rows.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.second.SelfUs > B.second.SelfUs;
  });
  std::printf("%zu spans across %zu threads; top %zu by self time:\n", Total,
              PerTid.size(), std::min(TopN, Sorted.size()));
  std::printf("%-24s %10s %14s %14s\n", "span", "count", "self(us)",
              "total(us)");
  for (size_t I = 0; I < Sorted.size() && I < TopN; ++I)
    std::printf("%-24s %10llu %14.1f %14.1f\n", Sorted[I].first.c_str(),
                static_cast<unsigned long long>(Sorted[I].second.Count),
                Sorted[I].second.SelfUs, Sorted[I].second.TotalUs);
  return 0;
}

int metricsReport(const char *Path, const std::string &Require) {
  std::string Text;
  if (!readFile(Path, Text))
    return 1;
  std::map<std::string, unsigned long long> Counters;
  size_t Gauges = 0, Hists = 0;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    std::string Kind, Name;
    if (!(Fields >> Kind >> Name)) {
      std::fprintf(stderr, "obs_report: %s:%u: malformed line\n", Path,
                   LineNo);
      return 1;
    }
    if (Kind == "counter") {
      unsigned long long V = 0;
      if (!(Fields >> V)) {
        std::fprintf(stderr, "obs_report: %s:%u: counter without value\n",
                     Path, LineNo);
        return 1;
      }
      Counters[Name] = V;
    } else if (Kind == "gauge") {
      ++Gauges;
    } else if (Kind == "hist") {
      ++Hists;
    } else {
      std::fprintf(stderr, "obs_report: %s:%u: unknown metric kind '%s'\n",
                   Path, LineNo, Kind.c_str());
      return 1;
    }
  }
  std::printf("%zu counters, %zu gauges, %zu histograms\n", Counters.size(),
              Gauges, Hists);
  bool Ok = true;
  for (const std::string &Name : splitString(Require, ",")) {
    auto It = Counters.find(Name);
    if (It == Counters.end() || It->second == 0) {
      std::fprintf(stderr, "obs_report: required counter '%s' %s\n",
                   Name.c_str(),
                   It == Counters.end() ? "missing" : "is zero");
      Ok = false;
    } else {
      std::printf("require %s = %llu ok\n", Name.c_str(), It->second);
    }
  }
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  const char *Mode = argc > 1 ? argv[1] : nullptr;
  const char *Path = argc > 2 ? argv[2] : nullptr;
  size_t TopN = 10;
  std::string Require;
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--top") && I + 1 < argc)
      TopN = static_cast<size_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "--require") && I + 1 < argc)
      Require = argv[++I];
    else {
      std::fprintf(stderr, "obs_report: unknown option '%s'\n", argv[I]);
      return 2;
    }
  }
  if (Mode && Path && !std::strcmp(Mode, "trace"))
    return traceReport(Path, TopN);
  if (Mode && Path && !std::strcmp(Mode, "metrics"))
    return metricsReport(Path, Require);
  std::fprintf(stderr, "usage: obs_report trace <trace.json> [--top N]\n"
                       "       obs_report metrics <metrics.txt> "
                       "[--require name,name,...]\n");
  return 2;
}
