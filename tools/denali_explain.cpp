//===- tools/denali_explain.cpp - Explanation & obs artifact tool ---------===//
//
// Post-processing for the pipeline's observability artifacts. Built twice:
// as `denali_explain` (the full tool) and as `obs_report` (the historical
// name; same binary, kept for scripts and CI recipes).
//
//   denali_explain trace <trace.json> [--top N]
//     Reads a Chrome trace_event file and prints the top-N span names by
//     *self* time (span duration minus the duration of spans nested inside
//     it on the same thread), plus call counts and total time.
//
//   denali_explain metrics <metrics.txt> [--require name,name,...]
//     Parses the plain-text metrics summary; with --require, exits
//     nonzero unless every named counter is present with a nonzero value.
//     The perf_smoke CI step uses this to assert the pipeline's core
//     counters are actually being recorded.
//
//   denali_explain explain <explain.json> [--require-chains]
//     Summarizes a `denali --explain-out` document: per GMA, the
//     instruction count, how many instructions carry a derivation chain,
//     and the axioms used (with instance counts). With --require-chains,
//     exits nonzero unless every instruction either is a constant
//     materialization, is directly present in the specification, or has a
//     nonempty derivation chain — the golden-test invariant.
//
//   denali_explain profile <baseline> <current> [--tolerance PCT]
//                  [--min-us N] [--require name,...]
//     Regression diff of two captures of the same kind: two Chrome traces
//     (per-span self time per call) or two metrics summaries (per-histogram
//     avg/p50/p99 plus counter deltas). Exits nonzero when a time metric
//     exceeds baseline by both --tolerance percent and --min-us
//     microseconds, or a --require name is missing. Also built as
//     `denali_profile`, which defaults to this mode; perf_smoke gates
//     BENCH_server latency drift with it.
//
//   denali_explain egraph <egraph.json | metrics.txt>
//     Summarizes a `denali --egraph-json` dump: classes, nodes, constants,
//     and the largest classes by member count. Given a plain-text metrics
//     summary instead (`--metrics-out`, BENCH_*.metrics.txt), reports the
//     saturation scheduling work from the match.* / match.sched.* counters
//     — rounds, matches, merges, rebuild passes, budget backoff, seen-set
//     dedup — with per-round averages, so a scheduling regression is
//     diagnosable from a metrics file alone.
//
//   denali_explain rules <ledger.jsonl> [--top N]
//   denali_explain rules <baseline.jsonl> <current.jsonl> [--tolerance PCT]
//                  [--min-us N] [--top N]
//     Reports a `--profile-ledger` capture: per axiom (aggregated across
//     graph keys and averaged per run), self time, raw matches, asserted
//     instances, and yield per microsecond — top-N by self time. With two
//     ledgers, diffs per-run self time per axiom and exits nonzero when an
//     axiom regresses by both --tolerance percent and --min-us
//     microseconds (same gate as profile mode); yield/count changes are
//     reported but never gated.
//
// Every malformed input — missing, empty, truncated, or schema-less —
// produces a clear diagnostic and a nonzero exit; the failure-mode tests
// in tests/CMakeLists.txt pin each one.
//
//===----------------------------------------------------------------------===//

#include "obs/ProfileLedger.h"
#include "support/Json.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace denali;
namespace json = denali::support::json;

namespace {

/// Diagnostic prefix: the name this binary was invoked under.
const char *Prog = "denali_explain";

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "%s: cannot open '%s'\n", Prog, Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  if (Out.empty()) {
    std::fprintf(stderr,
                 "%s: '%s' is empty — was the artifact ever written?\n",
                 Prog, Path);
    return false;
  }
  return true;
}

/// Reads and parses \p Path, with diagnostics for unreadable, empty, and
/// truncated/malformed files. \returns null on any failure.
std::unique_ptr<json::Value> readJson(const char *Path) {
  std::string Text;
  if (!readFile(Path, Text))
    return nullptr;
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &Err);
  if (!Doc)
    std::fprintf(stderr,
                 "%s: %s: invalid or truncated JSON: %s\n", Prog, Path,
                 Err.c_str());
  return Doc;
}

struct SpanRow {
  uint64_t Count = 0;
  double TotalUs = 0;
  double SelfUs = 0;
};

/// Loads \p Path as a Chrome trace and computes per-span-name rows (count,
/// total, self time). Self time = duration minus the duration of spans
/// nested inside it on the same thread, found by sweeping each thread's
/// spans in start order with an enclosing-span stack. Shared by the trace
/// and profile modes. \returns false with a diagnostic on any failure.
bool traceRows(const char *Path, std::map<std::string, SpanRow> &Rows,
               size_t &Total, size_t &Threads) {
  std::unique_ptr<json::Value> Doc = readJson(Path);
  if (!Doc)
    return false;
  const json::Value *Events = Doc->field("traceEvents");
  if (!Events || !Events->isArray()) {
    std::fprintf(stderr, "%s: %s: no traceEvents array\n", Prog, Path);
    return false;
  }

  // Complete ("X") events only, grouped per tid.
  struct Span {
    std::string Name;
    double Ts, Dur;
  };
  std::map<double, std::vector<Span>> PerTid;
  Total = 0;
  for (const json::Value &E : Events->array()) {
    const json::Value *Ph = E.field("ph");
    if (!Ph || !Ph->isString() || Ph->stringValue() != "X")
      continue;
    const json::Value *Name = E.field("name");
    const json::Value *Ts = E.field("ts");
    const json::Value *Dur = E.field("dur");
    const json::Value *Tid = E.field("tid");
    if (!Name || !Ts || !Dur)
      continue;
    PerTid[Tid ? Tid->numberValue() : 0].push_back(
        Span{Name->stringValue(), Ts->numberValue(), Dur->numberValue()});
    ++Total;
  }
  if (Total == 0) {
    std::fprintf(stderr, "%s: %s: contains no complete ('X') spans\n", Prog,
                 Path);
    return false;
  }

  for (auto &[Tid, Spans] : PerTid) {
    (void)Tid;
    std::sort(Spans.begin(), Spans.end(), [](const Span &A, const Span &B) {
      if (A.Ts != B.Ts)
        return A.Ts < B.Ts;
      return A.Dur > B.Dur; // Parents (longer) first at equal start.
    });
    std::vector<size_t> Stack; // Indices of enclosing spans.
    for (size_t I = 0; I < Spans.size(); ++I) {
      const Span &S = Spans[I];
      while (!Stack.empty() &&
             Spans[Stack.back()].Ts + Spans[Stack.back()].Dur <= S.Ts)
        Stack.pop_back();
      SpanRow &R = Rows[S.Name];
      R.Count += 1;
      R.TotalUs += S.Dur;
      R.SelfUs += S.Dur;
      if (!Stack.empty())
        Rows[Spans[Stack.back()].Name].SelfUs -= S.Dur;
      Stack.push_back(I);
    }
  }
  Threads = PerTid.size();
  return true;
}

int traceReport(const char *Path, size_t TopN) {
  std::map<std::string, SpanRow> Rows;
  size_t Total = 0, Threads = 0;
  if (!traceRows(Path, Rows, Total, Threads))
    return 1;

  std::vector<std::pair<std::string, SpanRow>> Sorted(Rows.begin(),
                                                      Rows.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.second.SelfUs > B.second.SelfUs;
  });
  std::printf("%zu spans across %zu threads; top %zu by self time:\n", Total,
              Threads, std::min(TopN, Sorted.size()));
  std::printf("%-24s %10s %14s %14s\n", "span", "count", "self(us)",
              "total(us)");
  for (size_t I = 0; I < Sorted.size() && I < TopN; ++I)
    std::printf("%-24s %10llu %14.1f %14.1f\n", Sorted[I].first.c_str(),
                static_cast<unsigned long long>(Sorted[I].second.Count),
                Sorted[I].second.SelfUs, Sorted[I].second.TotalUs);
  return 0;
}

/// One parsed hist/whist summary line.
struct HistRow {
  unsigned long long Count = 0, Sum = 0, Min = 0, Max = 0;
  unsigned long long P50 = 0, P90 = 0, P99 = 0;
  double Avg = 0;
};

/// A parsed plain-text metrics capture (`# denali metrics v1`). hist and
/// whist lines land in the same map (names never collide: whist names are
/// a distinct namespace by convention, e.g. server.win.*).
struct MetricsCapture {
  std::map<std::string, unsigned long long> Counters;
  std::map<std::string, long long> Gauges;
  std::map<std::string, HistRow> Hists;

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Hists.empty();
  }
  /// Presence-with-signal check used by --require: a nonzero counter, any
  /// gauge, or a histogram with at least one sample.
  bool hasNonzero(const std::string &Name) const {
    auto C = Counters.find(Name);
    if (C != Counters.end())
      return C->second != 0;
    if (Gauges.count(Name))
      return true;
    auto H = Hists.find(Name);
    return H != Hists.end() && H->second.Count != 0;
  }
};

bool parseMetricsCapture(const char *Path, const std::string &Text,
                         MetricsCapture &Out) {
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    std::string Kind, Name;
    if (!(Fields >> Kind >> Name)) {
      std::fprintf(stderr, "%s: %s:%u: malformed line\n", Prog, Path,
                   LineNo);
      return false;
    }
    if (Kind == "counter") {
      unsigned long long V = 0;
      if (!(Fields >> V)) {
        std::fprintf(stderr, "%s: %s:%u: counter without value\n", Prog,
                     Path, LineNo);
        return false;
      }
      Out.Counters[Name] = V;
    } else if (Kind == "gauge") {
      long long V = 0;
      Fields >> V;
      Out.Gauges[Name] = V;
    } else if (Kind == "hist" || Kind == "whist") {
      HistRow R;
      std::string Tok;
      while (Fields >> Tok) {
        size_t Eq = Tok.find('=');
        if (Eq == std::string::npos)
          continue;
        std::string Key = Tok.substr(0, Eq);
        const char *Val = Tok.c_str() + Eq + 1;
        if (Key == "count")
          R.Count = std::strtoull(Val, nullptr, 10);
        else if (Key == "sum")
          R.Sum = std::strtoull(Val, nullptr, 10);
        else if (Key == "min")
          R.Min = std::strtoull(Val, nullptr, 10);
        else if (Key == "max")
          R.Max = std::strtoull(Val, nullptr, 10);
        else if (Key == "avg")
          R.Avg = std::atof(Val);
        else if (Key == "p50")
          R.P50 = std::strtoull(Val, nullptr, 10);
        else if (Key == "p90")
          R.P90 = std::strtoull(Val, nullptr, 10);
        else if (Key == "p99")
          R.P99 = std::strtoull(Val, nullptr, 10);
      }
      Out.Hists[Name] = R;
    } else {
      std::fprintf(stderr, "%s: %s:%u: unknown metric kind '%s'\n", Prog,
                   Path, LineNo, Kind.c_str());
      return false;
    }
  }
  return true;
}

int metricsReport(const char *Path, const std::string &Require) {
  std::string Text;
  if (!readFile(Path, Text))
    return 1;
  MetricsCapture Cap;
  if (!parseMetricsCapture(Path, Text, Cap))
    return 1;
  if (Cap.empty()) {
    std::fprintf(stderr,
                 "%s: %s: no metrics found — was the obs layer enabled?\n",
                 Prog, Path);
    return 1;
  }
  std::printf("%zu counters, %zu gauges, %zu histograms\n",
              Cap.Counters.size(), Cap.Gauges.size(), Cap.Hists.size());
  bool Ok = true;
  for (const std::string &Name : splitString(Require, ",")) {
    if (!Cap.hasNonzero(Name)) {
      std::fprintf(stderr, "%s: required metric '%s' missing or zero\n",
                   Prog, Name.c_str());
      Ok = false;
      continue;
    }
    auto C = Cap.Counters.find(Name);
    if (C != Cap.Counters.end())
      std::printf("require %s = %llu ok\n", Name.c_str(), C->second);
    else
      std::printf("require %s ok\n", Name.c_str());
  }
  return Ok ? 0 : 1;
}

int explainReport(const char *Path, bool RequireChains) {
  std::unique_ptr<json::Value> Doc = readJson(Path);
  if (!Doc)
    return 1;
  const json::Value *Gmas = Doc->field("gmas");
  if (!Gmas || !Gmas->isArray() || Gmas->array().empty()) {
    std::fprintf(stderr,
                 "%s: %s: no gmas array (not an --explain-out document?)\n",
                 Prog, Path);
    return 1;
  }
  bool Ok = true;
  for (const json::Value &G : Gmas->array()) {
    const json::Value *Name = G.field("program");
    const json::Value *Instrs = G.field("instructions");
    if (!Name || !Instrs || !Instrs->isArray()) {
      std::fprintf(stderr, "%s: %s: gma without program/instructions\n",
                   Prog, Path);
      return 1;
    }
    size_t Chained = 0, Direct = 0, Ldiq = 0, Bare = 0;
    std::map<std::string, size_t> AxiomUses;
    for (const json::Value &I : Instrs->array()) {
      const json::Value *Chain = I.field("chain");
      const json::Value *IsLdiq = I.field("ldiq");
      const json::Value *InSpec = I.field("directly_in_spec");
      size_t Steps = Chain && Chain->isArray() ? Chain->array().size() : 0;
      if (Steps) {
        ++Chained;
        for (const json::Value &S : Chain->array())
          if (const json::Value *Ax = S.field("axiom"))
            ++AxiomUses[Ax->stringValue()];
      } else if (IsLdiq && IsLdiq->isBool() && IsLdiq->boolValue()) {
        ++Ldiq;
      } else if (InSpec && InSpec->isBool() && InSpec->boolValue()) {
        ++Direct;
      } else {
        ++Bare;
        if (RequireChains) {
          const json::Value *Mn = I.field("mnemonic");
          std::fprintf(stderr,
                       "%s: %s: %s: instruction '%s' has no derivation "
                       "chain\n",
                       Prog, Path, Name->stringValue().c_str(),
                       Mn ? Mn->stringValue().c_str() : "?");
          Ok = false;
        }
      }
    }
    std::printf("%s: %zu instruction(s): %zu derived, %zu direct, "
                "%zu ldiq, %zu unexplained\n",
                Name->stringValue().c_str(), Instrs->array().size(), Chained,
                Direct, Ldiq, Bare);
    for (const auto &[Ax, N] : AxiomUses)
      std::printf("  axiom %-24s x%zu\n", Ax.c_str(), N);
  }
  return Ok ? 0 : 1;
}

/// The metrics-summary arm of `egraph` mode: a per-saturation scheduling
/// report from the match.* / match.sched.* counters. Counters aggregate
/// over every saturation in the file (one per GMA), so the per-round
/// averages are the diagnosable signal: e.g. merges-per-round collapsing
/// while matches-per-round holds means rebuild batching regressed.
int egraphMetricsReport(const char *Path, const std::string &Text) {
  std::map<std::string, unsigned long long> Counters;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    std::string Kind, Name;
    unsigned long long V = 0;
    if ((Fields >> Kind >> Name) && Kind == "counter" && (Fields >> V))
      Counters[Name] = V;
  }
  auto C = [&](const char *Name) -> unsigned long long {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  };
  unsigned long long Rounds = C("match.rounds");
  if (Rounds == 0) {
    std::fprintf(stderr,
                 "%s: %s: neither an --egraph-json document nor a metrics "
                 "summary with a match.rounds counter\n",
                 Prog, Path);
    return 1;
  }
  auto PerRound = [&](unsigned long long V) {
    return static_cast<double>(V) / static_cast<double>(Rounds);
  };
  auto Row = [&](const char *Label, unsigned long long V) {
    std::printf("  %-22s %12llu  (%.1f/round)\n", Label, V, PerRound(V));
  };
  std::printf("saturation scheduling (%llu round(s) total):\n", Rounds);
  Row("matches found", C("match.matches"));
  Row("instances asserted", C("match.instances_asserted"));
  Row("instances deduped", C("match.instances_deduped"));
  Row("merges", C("match.sched.merges"));
  Row("  congruence merges", C("match.sched.congruence_merges"));
  Row("  constant folds", C("match.sched.constant_folds"));
  Row("rebuild passes", C("match.sched.rebuilds"));
  std::printf("scheduler decisions:\n");
  std::printf("  %-22s %12llu\n", "budget overflows",
              C("match.sched.budget_overflows"));
  std::printf("  %-22s %12llu\n", "budget skips",
              C("match.sched.budget_skips"));
  std::printf("  %-22s %12llu\n", "phase advances",
              C("match.sched.phase_advances"));
  std::printf("  %-22s %12llu\n", "seen-set hits",
              C("match.sched.seen_hits"));
  std::printf("  %-22s %12llu\n", "seen-set evictions",
              C("match.sched.seen_evictions"));
  return 0;
}

int egraphReport(const char *Path) {
  std::string Text;
  if (!readFile(Path, Text))
    return 1;
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &Err);
  // Not JSON at all: fall through to the metrics-summary report.
  if (!Doc)
    return egraphMetricsReport(Path, Text);
  const json::Value *Dump = Doc->field("dump");
  if (!Dump || !Dump->isArray()) {
    std::fprintf(stderr,
                 "%s: %s: no dump array (not an --egraph-json document?)\n",
                 Prog, Path);
    return 1;
  }
  size_t Nodes = 0, Constants = 0;
  std::vector<std::pair<size_t, double>> Sizes; // (members, class id)
  for (const json::Value &C : Dump->array()) {
    const json::Value *Members = C.field("nodes");
    size_t N = Members && Members->isArray() ? Members->array().size() : 0;
    Nodes += N;
    if (C.field("constant"))
      ++Constants;
    const json::Value *Id = C.field("class");
    Sizes.push_back({N, Id ? Id->numberValue() : -1});
  }
  std::sort(Sizes.rbegin(), Sizes.rend());
  std::printf("%zu classes, %zu nodes, %zu constant classes\n",
              Dump->array().size(), Nodes, Constants);
  for (size_t I = 0; I < Sizes.size() && I < 5; ++I)
    std::printf("  c%.0f: %zu node(s)\n", Sizes[I].second, Sizes[I].first);
  return 0;
}

/// A trace capture starts with a JSON object; a metrics capture starts
/// with the `# denali metrics` header (or a bare metric line).
bool looksLikeTrace(const std::string &Text) {
  size_t I = Text.find_first_not_of(" \t\r\n");
  return I != std::string::npos && Text[I] == '{';
}

/// The regression-diff mode (also reachable as the `denali_profile`
/// binary): loads two captures of the same kind — two Chrome traces or two
/// plain-text metrics summaries — and compares per-stage times. Trace
/// captures compare per-span-name *self time per call*; metrics captures
/// compare each shared histogram's avg/p50/p99 (µs for the span.* and
/// server.win.* families). A metric regresses when the current value
/// exceeds baseline by more than \p TolerancePct percent AND by more than
/// \p MinUs microseconds (the absolute floor keeps sub-µs jitter on cheap
/// stages from tripping percentage gates). Counter deltas are reported but
/// never gated — counts legitimately differ across runs. \returns nonzero
/// when any metric regressed or a --require name is absent from either
/// capture.
int profileReport(const char *BasePath, const char *CurPath,
                  double TolerancePct, double MinUs,
                  const std::string &Require, size_t TopN) {
  std::string BaseText, CurText;
  if (!readFile(BasePath, BaseText) || !readFile(CurPath, CurText))
    return 1;
  const bool IsTrace = looksLikeTrace(BaseText);
  if (IsTrace != looksLikeTrace(CurText)) {
    std::fprintf(stderr,
                 "%s: cannot diff a trace against a metrics summary "
                 "('%s' vs '%s')\n",
                 Prog, BasePath, CurPath);
    return 1;
  }

  struct Row {
    std::string Name;
    double Base, Cur;
  };
  std::vector<Row> Rows;
  std::vector<std::string> Missing;

  if (IsTrace) {
    std::map<std::string, SpanRow> B, C;
    size_t Total = 0, Threads = 0;
    if (!traceRows(BasePath, B, Total, Threads) ||
        !traceRows(CurPath, C, Total, Threads))
      return 1;
    for (const auto &[Name, BR] : B) {
      auto It = C.find(Name);
      if (It == C.end() || BR.Count == 0 || It->second.Count == 0)
        continue;
      Rows.push_back({Name + " self/call",
                      BR.SelfUs / static_cast<double>(BR.Count),
                      It->second.SelfUs /
                          static_cast<double>(It->second.Count)});
    }
    for (const std::string &Name : splitString(Require, ","))
      if (!B.count(Name) || !C.count(Name))
        Missing.push_back(Name);
  } else {
    MetricsCapture B, C;
    if (!parseMetricsCapture(BasePath, BaseText, B) ||
        !parseMetricsCapture(CurPath, CurText, C))
      return 1;
    if (B.empty() || C.empty()) {
      std::fprintf(stderr, "%s: empty metrics capture\n", Prog);
      return 1;
    }
    for (const auto &[Name, BH] : B.Hists) {
      auto It = C.Hists.find(Name);
      if (It == C.Hists.end() || BH.Count == 0 || It->second.Count == 0)
        continue;
      const HistRow &CH = It->second;
      Rows.push_back({Name + " avg", BH.Avg, CH.Avg});
      Rows.push_back({Name + " p50", static_cast<double>(BH.P50),
                      static_cast<double>(CH.P50)});
      Rows.push_back({Name + " p99", static_cast<double>(BH.P99),
                      static_cast<double>(CH.P99)});
    }
    // Counter deltas: context for a human reading the diff, never a gate.
    std::vector<std::pair<double, std::string>> CounterDeltas;
    for (const auto &[Name, BV] : B.Counters) {
      auto It = C.Counters.find(Name);
      if (It == C.Counters.end() || BV == 0)
        continue;
      double Pct = (static_cast<double>(It->second) -
                    static_cast<double>(BV)) /
                   static_cast<double>(BV) * 100.0;
      if (Pct != 0)
        CounterDeltas.push_back({std::abs(Pct), strFormat(
            "  counter %-40s %12llu -> %12llu (%+.1f%%)", Name.c_str(), BV,
            It->second, Pct)});
    }
    std::sort(CounterDeltas.rbegin(), CounterDeltas.rend());
    if (!CounterDeltas.empty()) {
      std::printf("counter deltas (top %zu of %zu changed, not gated):\n",
                  std::min(TopN, CounterDeltas.size()), CounterDeltas.size());
      for (size_t I = 0; I < CounterDeltas.size() && I < TopN; ++I)
        std::printf("%s\n", CounterDeltas[I].second.c_str());
    }
    for (const std::string &Name : splitString(Require, ","))
      if (!B.hasNonzero(Name) || !C.hasNonzero(Name))
        Missing.push_back(Name);
  }

  if (Rows.empty() && Missing.empty()) {
    std::fprintf(stderr,
                 "%s: no comparable time metrics shared by '%s' and '%s'\n",
                 Prog, BasePath, CurPath);
    return 1;
  }

  size_t Regressions = 0;
  std::vector<std::pair<double, std::string>> Printed;
  for (const Row &R : Rows) {
    double DeltaUs = R.Cur - R.Base;
    double Pct = R.Base > 0 ? DeltaUs / R.Base * 100.0
                            : (R.Cur > 0 ? 1e9 : 0.0);
    bool Reg = R.Cur > R.Base * (1.0 + TolerancePct / 100.0) &&
               DeltaUs > MinUs;
    if (Reg)
      ++Regressions;
    Printed.push_back(
        {std::abs(DeltaUs),
         strFormat("  %-44s %12.1f %12.1f %+10.1f%%%s", R.Name.c_str(),
                   R.Base, R.Cur, Pct, Reg ? "  REGRESSED" : "")});
  }
  std::sort(Printed.rbegin(), Printed.rend());
  std::printf("%zu time metric(s) compared (tolerance %.0f%%, floor %.0fus); "
              "top %zu by |delta|:\n",
              Rows.size(), TolerancePct, MinUs,
              std::min(TopN, Printed.size()));
  std::printf("  %-44s %12s %12s %11s\n", "metric", "base(us)", "cur(us)",
              "delta");
  for (size_t I = 0; I < Printed.size() && I < TopN; ++I)
    std::printf("%s\n", Printed[I].second.c_str());

  for (const std::string &Name : Missing)
    std::fprintf(stderr, "%s: required metric '%s' missing from a capture\n",
                 Prog, Name.c_str());
  if (Regressions || !Missing.empty()) {
    std::fprintf(stderr, "%s: %zu regression(s), %zu missing requirement(s)\n",
                 Prog, Regressions, Missing.size());
    return 1;
  }
  std::printf("no regressions\n");
  return 0;
}

/// One axiom's ledger rows aggregated across graph keys, normalized per
/// saturation run (Runs differs per key, so totals alone would weight a
/// frequently-run fingerprint over an expensive one).
struct RuleRow {
  double SelfUs = 0; ///< (MatchNs + InstantiateNs) / Runs, in µs.
  double Raw = 0, Instances = 0, Merges = 0, Skips = 0;
  uint64_t Runs = 0; ///< Max Runs over the axiom's keys.
  double yieldPerUs() const {
    return SelfUs > 0 ? Instances / SelfUs : 0.0;
  }
};

/// Loads \p Path as a profile ledger and aggregates per axiom id. The
/// tool is stricter than ProfileLedger::load: a missing or empty file is
/// an error (there is nothing to report), not a cold start.
bool ruleRows(const char *Path, std::map<std::string, RuleRow> &Rows,
              size_t &Keys) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  obs::ProfileLedger Ledger;
  std::string Err;
  if (!Ledger.loadText(Text, &Err)) {
    std::fprintf(stderr, "%s: %s: %s\n", Prog, Path, Err.c_str());
    return false;
  }
  if (Ledger.size() == 0) {
    std::fprintf(stderr,
                 "%s: %s: no ledger rows (not a --profile-ledger file?)\n",
                 Prog, Path);
    return false;
  }
  std::map<std::string, bool> SeenKeys;
  for (const auto &[Key, Id, P] : Ledger.rows()) {
    SeenKeys[Key] = true;
    RuleRow &R = Rows[Id];
    double Runs = P.Runs ? static_cast<double>(P.Runs) : 1.0;
    R.SelfUs += static_cast<double>(P.MatchNs + P.InstantiateNs) / 1000.0 /
                Runs;
    R.Raw += static_cast<double>(P.Raw) / Runs;
    R.Instances += static_cast<double>(P.Instances) / Runs;
    R.Merges += static_cast<double>(P.Merges) / Runs;
    R.Skips += static_cast<double>(P.Skips) / Runs;
    R.Runs = std::max(R.Runs, P.Runs);
  }
  Keys = SeenKeys.size();
  return true;
}

/// Single-ledger report: top axioms by per-run self time.
int rulesReport(const char *Path, size_t TopN) {
  std::map<std::string, RuleRow> Rows;
  size_t Keys = 0;
  if (!ruleRows(Path, Rows, Keys))
    return 1;
  std::vector<std::pair<std::string, RuleRow>> Sorted(Rows.begin(),
                                                      Rows.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    if (A.second.SelfUs != B.second.SelfUs)
      return A.second.SelfUs > B.second.SelfUs;
    return A.first < B.first;
  });
  size_t Unproductive = 0;
  for (const auto &[Id, R] : Rows)
    if (R.Instances == 0 && R.Merges == 0)
      ++Unproductive;
  std::printf("%zu axiom(s) across %zu graph key(s), %zu never productive; "
              "top %zu by self time per run:\n",
              Rows.size(), Keys, Unproductive,
              std::min(TopN, Sorted.size()));
  std::printf("  %-28s %10s %10s %10s %10s\n", "axiom", "self(us)", "raw",
              "instances", "yield/us");
  for (size_t I = 0; I < Sorted.size() && I < TopN; ++I) {
    const RuleRow &R = Sorted[I].second;
    std::printf("  %-28s %10.1f %10.1f %10.1f %10.3f\n",
                Sorted[I].first.c_str(), R.SelfUs, R.Raw, R.Instances,
                R.yieldPerUs());
  }
  return 0;
}

/// Two-ledger regression diff: per-run self time per axiom, gated exactly
/// like profile mode (percent AND absolute floor). Axioms present in only
/// one capture are reported but never gated — rule sets legitimately
/// change between versions.
int rulesDiffReport(const char *BasePath, const char *CurPath,
                    double TolerancePct, double MinUs, size_t TopN) {
  std::map<std::string, RuleRow> B, C;
  size_t Keys = 0;
  if (!ruleRows(BasePath, B, Keys) || !ruleRows(CurPath, C, Keys))
    return 1;

  size_t Regressions = 0, Compared = 0, Unshared = 0;
  std::vector<std::pair<double, std::string>> Printed;
  for (const auto &[Id, BR] : B) {
    auto It = C.find(Id);
    if (It == C.end()) {
      ++Unshared;
      continue;
    }
    const RuleRow &CR = It->second;
    ++Compared;
    double DeltaUs = CR.SelfUs - BR.SelfUs;
    double Pct = BR.SelfUs > 0 ? DeltaUs / BR.SelfUs * 100.0
                               : (CR.SelfUs > 0 ? 1e9 : 0.0);
    bool Reg = CR.SelfUs > BR.SelfUs * (1.0 + TolerancePct / 100.0) &&
               DeltaUs > MinUs;
    if (Reg)
      ++Regressions;
    Printed.push_back(
        {std::abs(DeltaUs),
         strFormat("  %-28s %10.1f %10.1f %+9.1f%%  yield %.3f -> %.3f%s",
                   Id.c_str(), BR.SelfUs, CR.SelfUs, Pct, BR.yieldPerUs(),
                   CR.yieldPerUs(), Reg ? "  REGRESSED" : "")});
  }
  for (const auto &[Id, CR] : C)
    if (!B.count(Id))
      ++Unshared;
  if (Compared == 0) {
    std::fprintf(stderr, "%s: no axiom shared by '%s' and '%s'\n", Prog,
                 BasePath, CurPath);
    return 1;
  }
  std::sort(Printed.rbegin(), Printed.rend());
  std::printf("%zu axiom(s) compared, %zu unshared (tolerance %.0f%%, "
              "floor %.0fus); top %zu by |delta self time|:\n",
              Compared, Unshared, TolerancePct, MinUs,
              std::min(TopN, Printed.size()));
  std::printf("  %-28s %10s %10s %10s\n", "axiom", "base(us)", "cur(us)",
              "delta");
  for (size_t I = 0; I < Printed.size() && I < TopN; ++I)
    std::printf("%s\n", Printed[I].second.c_str());
  if (Regressions) {
    std::fprintf(stderr, "%s: %zu axiom regression(s)\n", Prog, Regressions);
    return 1;
  }
  std::printf("no regressions\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 0 && argv[0]) {
    const char *Slash = std::strrchr(argv[0], '/');
    Prog = Slash ? Slash + 1 : argv[0];
  }
  const char *Mode = argc > 1 ? argv[1] : nullptr;
  // The denali_profile alias defaults to profile mode, so CI recipes read
  //   denali_profile <baseline> <current> [--tolerance N]
  // without repeating the mode word. An explicit mode still wins.
  auto isKnownMode = [](const char *M) {
    return !std::strcmp(M, "trace") || !std::strcmp(M, "metrics") ||
           !std::strcmp(M, "explain") || !std::strcmp(M, "egraph") ||
           !std::strcmp(M, "profile") || !std::strcmp(M, "rules");
  };
  int ArgBase = 2;
  if (Mode && !isKnownMode(Mode) && Mode[0] != '-' &&
      !std::strcmp(Prog, "denali_profile")) {
    Mode = "profile";
    ArgBase = 1;
  }
  const char *Path = argc > ArgBase ? argv[ArgBase] : nullptr;
  const bool IsProfile = Mode && !std::strcmp(Mode, "profile");
  // rules takes an optional second ledger (diff form).
  const bool IsRules = Mode && !std::strcmp(Mode, "rules");
  const char *Path2 = nullptr;
  if (IsProfile && argc > ArgBase + 1)
    Path2 = argv[ArgBase + 1];
  else if (IsRules && argc > ArgBase + 1 && argv[ArgBase + 1][0] != '-')
    Path2 = argv[ArgBase + 1];
  size_t TopN = 10;
  std::string Require;
  bool RequireChains = false;
  double TolerancePct = 10;
  double MinUs = 50;
  for (int I = ArgBase + (Path2 ? 2 : 1); I < argc; ++I) {
    if (!std::strcmp(argv[I], "--top") && I + 1 < argc)
      TopN = static_cast<size_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "--require") && I + 1 < argc)
      Require = argv[++I];
    else if (!std::strcmp(argv[I], "--require-chains"))
      RequireChains = true;
    else if (!std::strcmp(argv[I], "--tolerance") && I + 1 < argc)
      TolerancePct = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--min-us") && I + 1 < argc)
      MinUs = std::atof(argv[++I]);
    else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", Prog, argv[I]);
      return 2;
    }
  }
  if (Mode && Path && !std::strcmp(Mode, "trace"))
    return traceReport(Path, TopN);
  if (Mode && Path && !std::strcmp(Mode, "metrics"))
    return metricsReport(Path, Require);
  if (Mode && Path && !std::strcmp(Mode, "explain"))
    return explainReport(Path, RequireChains);
  if (Mode && Path && !std::strcmp(Mode, "egraph"))
    return egraphReport(Path);
  if (IsProfile && Path && Path2)
    return profileReport(Path, Path2, TolerancePct, MinUs, Require, TopN);
  if (IsRules && Path && Path2)
    return rulesDiffReport(Path, Path2, TolerancePct, MinUs, TopN);
  if (IsRules && Path)
    return rulesReport(Path, TopN);
  std::fprintf(stderr,
               "usage: %s trace <trace.json> [--top N]\n"
               "       %s metrics <metrics.txt> [--require name,name,...]\n"
               "       %s explain <explain.json> [--require-chains]\n"
               "       %s egraph <egraph.json | metrics.txt>\n"
               "       %s profile <baseline> <current> [--tolerance PCT]\n"
               "               [--min-us N] [--require name,...] [--top N]\n"
               "         (captures: two trace.json or two metrics.txt)\n"
               "       %s rules <ledger.jsonl> [<current.jsonl>]\n"
               "               [--tolerance PCT] [--min-us N] [--top N]\n",
               Prog, Prog, Prog, Prog, Prog, Prog);
  return 2;
}
