//===- tools/denali_explain.cpp - Explanation & obs artifact tool ---------===//
//
// Post-processing for the pipeline's observability artifacts. Built twice:
// as `denali_explain` (the full tool) and as `obs_report` (the historical
// name; same binary, kept for scripts and CI recipes).
//
//   denali_explain trace <trace.json> [--top N]
//     Reads a Chrome trace_event file and prints the top-N span names by
//     *self* time (span duration minus the duration of spans nested inside
//     it on the same thread), plus call counts and total time.
//
//   denali_explain metrics <metrics.txt> [--require name,name,...]
//     Parses the plain-text metrics summary; with --require, exits
//     nonzero unless every named counter is present with a nonzero value.
//     The perf_smoke CI step uses this to assert the pipeline's core
//     counters are actually being recorded.
//
//   denali_explain explain <explain.json> [--require-chains]
//     Summarizes a `denali --explain-out` document: per GMA, the
//     instruction count, how many instructions carry a derivation chain,
//     and the axioms used (with instance counts). With --require-chains,
//     exits nonzero unless every instruction either is a constant
//     materialization, is directly present in the specification, or has a
//     nonempty derivation chain — the golden-test invariant.
//
//   denali_explain egraph <egraph.json | metrics.txt>
//     Summarizes a `denali --egraph-json` dump: classes, nodes, constants,
//     and the largest classes by member count. Given a plain-text metrics
//     summary instead (`--metrics-out`, BENCH_*.metrics.txt), reports the
//     saturation scheduling work from the match.* / match.sched.* counters
//     — rounds, matches, merges, rebuild passes, budget backoff, seen-set
//     dedup — with per-round averages, so a scheduling regression is
//     diagnosable from a metrics file alone.
//
// Every malformed input — missing, empty, truncated, or schema-less —
// produces a clear diagnostic and a nonzero exit; the failure-mode tests
// in tests/CMakeLists.txt pin each one.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace denali;
namespace json = denali::support::json;

namespace {

/// Diagnostic prefix: the name this binary was invoked under.
const char *Prog = "denali_explain";

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "%s: cannot open '%s'\n", Prog, Path);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  if (Out.empty()) {
    std::fprintf(stderr,
                 "%s: '%s' is empty — was the artifact ever written?\n",
                 Prog, Path);
    return false;
  }
  return true;
}

/// Reads and parses \p Path, with diagnostics for unreadable, empty, and
/// truncated/malformed files. \returns null on any failure.
std::unique_ptr<json::Value> readJson(const char *Path) {
  std::string Text;
  if (!readFile(Path, Text))
    return nullptr;
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &Err);
  if (!Doc)
    std::fprintf(stderr,
                 "%s: %s: invalid or truncated JSON: %s\n", Prog, Path,
                 Err.c_str());
  return Doc;
}

struct SpanRow {
  uint64_t Count = 0;
  double TotalUs = 0;
  double SelfUs = 0;
};

int traceReport(const char *Path, size_t TopN) {
  std::unique_ptr<json::Value> Doc = readJson(Path);
  if (!Doc)
    return 1;
  const json::Value *Events = Doc->field("traceEvents");
  if (!Events || !Events->isArray()) {
    std::fprintf(stderr, "%s: %s: no traceEvents array\n", Prog, Path);
    return 1;
  }

  // Complete ("X") events only, grouped per tid. Self time = duration minus
  // the duration of child spans, found by sweeping each thread's spans in
  // start order with an enclosing-span stack.
  struct Span {
    std::string Name;
    double Ts, Dur;
  };
  std::map<double, std::vector<Span>> PerTid;
  size_t Total = 0;
  for (const json::Value &E : Events->array()) {
    const json::Value *Ph = E.field("ph");
    if (!Ph || !Ph->isString() || Ph->stringValue() != "X")
      continue;
    const json::Value *Name = E.field("name");
    const json::Value *Ts = E.field("ts");
    const json::Value *Dur = E.field("dur");
    const json::Value *Tid = E.field("tid");
    if (!Name || !Ts || !Dur)
      continue;
    PerTid[Tid ? Tid->numberValue() : 0].push_back(
        Span{Name->stringValue(), Ts->numberValue(), Dur->numberValue()});
    ++Total;
  }
  if (Total == 0) {
    std::fprintf(stderr, "%s: %s: contains no complete ('X') spans\n", Prog,
                 Path);
    return 1;
  }

  std::map<std::string, SpanRow> Rows;
  for (auto &[Tid, Spans] : PerTid) {
    (void)Tid;
    std::sort(Spans.begin(), Spans.end(), [](const Span &A, const Span &B) {
      if (A.Ts != B.Ts)
        return A.Ts < B.Ts;
      return A.Dur > B.Dur; // Parents (longer) first at equal start.
    });
    std::vector<size_t> Stack; // Indices of enclosing spans.
    for (size_t I = 0; I < Spans.size(); ++I) {
      const Span &S = Spans[I];
      while (!Stack.empty() &&
             Spans[Stack.back()].Ts + Spans[Stack.back()].Dur <= S.Ts)
        Stack.pop_back();
      SpanRow &R = Rows[S.Name];
      R.Count += 1;
      R.TotalUs += S.Dur;
      R.SelfUs += S.Dur;
      if (!Stack.empty())
        Rows[Spans[Stack.back()].Name].SelfUs -= S.Dur;
      Stack.push_back(I);
    }
  }

  std::vector<std::pair<std::string, SpanRow>> Sorted(Rows.begin(),
                                                      Rows.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.second.SelfUs > B.second.SelfUs;
  });
  std::printf("%zu spans across %zu threads; top %zu by self time:\n", Total,
              PerTid.size(), std::min(TopN, Sorted.size()));
  std::printf("%-24s %10s %14s %14s\n", "span", "count", "self(us)",
              "total(us)");
  for (size_t I = 0; I < Sorted.size() && I < TopN; ++I)
    std::printf("%-24s %10llu %14.1f %14.1f\n", Sorted[I].first.c_str(),
                static_cast<unsigned long long>(Sorted[I].second.Count),
                Sorted[I].second.SelfUs, Sorted[I].second.TotalUs);
  return 0;
}

int metricsReport(const char *Path, const std::string &Require) {
  std::string Text;
  if (!readFile(Path, Text))
    return 1;
  std::map<std::string, unsigned long long> Counters;
  size_t Gauges = 0, Hists = 0;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    std::string Kind, Name;
    if (!(Fields >> Kind >> Name)) {
      std::fprintf(stderr, "%s: %s:%u: malformed line\n", Prog, Path,
                   LineNo);
      return 1;
    }
    if (Kind == "counter") {
      unsigned long long V = 0;
      if (!(Fields >> V)) {
        std::fprintf(stderr, "%s: %s:%u: counter without value\n", Prog,
                     Path, LineNo);
        return 1;
      }
      Counters[Name] = V;
    } else if (Kind == "gauge") {
      ++Gauges;
    } else if (Kind == "hist") {
      ++Hists;
    } else {
      std::fprintf(stderr, "%s: %s:%u: unknown metric kind '%s'\n", Prog,
                   Path, LineNo, Kind.c_str());
      return 1;
    }
  }
  if (Counters.empty() && Gauges == 0 && Hists == 0) {
    std::fprintf(stderr,
                 "%s: %s: no metrics found — was the obs layer enabled?\n",
                 Prog, Path);
    return 1;
  }
  std::printf("%zu counters, %zu gauges, %zu histograms\n", Counters.size(),
              Gauges, Hists);
  bool Ok = true;
  for (const std::string &Name : splitString(Require, ",")) {
    auto It = Counters.find(Name);
    if (It == Counters.end() || It->second == 0) {
      std::fprintf(stderr, "%s: required counter '%s' %s\n", Prog,
                   Name.c_str(),
                   It == Counters.end() ? "missing" : "is zero");
      Ok = false;
    } else {
      std::printf("require %s = %llu ok\n", Name.c_str(), It->second);
    }
  }
  return Ok ? 0 : 1;
}

int explainReport(const char *Path, bool RequireChains) {
  std::unique_ptr<json::Value> Doc = readJson(Path);
  if (!Doc)
    return 1;
  const json::Value *Gmas = Doc->field("gmas");
  if (!Gmas || !Gmas->isArray() || Gmas->array().empty()) {
    std::fprintf(stderr,
                 "%s: %s: no gmas array (not an --explain-out document?)\n",
                 Prog, Path);
    return 1;
  }
  bool Ok = true;
  for (const json::Value &G : Gmas->array()) {
    const json::Value *Name = G.field("program");
    const json::Value *Instrs = G.field("instructions");
    if (!Name || !Instrs || !Instrs->isArray()) {
      std::fprintf(stderr, "%s: %s: gma without program/instructions\n",
                   Prog, Path);
      return 1;
    }
    size_t Chained = 0, Direct = 0, Ldiq = 0, Bare = 0;
    std::map<std::string, size_t> AxiomUses;
    for (const json::Value &I : Instrs->array()) {
      const json::Value *Chain = I.field("chain");
      const json::Value *IsLdiq = I.field("ldiq");
      const json::Value *InSpec = I.field("directly_in_spec");
      size_t Steps = Chain && Chain->isArray() ? Chain->array().size() : 0;
      if (Steps) {
        ++Chained;
        for (const json::Value &S : Chain->array())
          if (const json::Value *Ax = S.field("axiom"))
            ++AxiomUses[Ax->stringValue()];
      } else if (IsLdiq && IsLdiq->isBool() && IsLdiq->boolValue()) {
        ++Ldiq;
      } else if (InSpec && InSpec->isBool() && InSpec->boolValue()) {
        ++Direct;
      } else {
        ++Bare;
        if (RequireChains) {
          const json::Value *Mn = I.field("mnemonic");
          std::fprintf(stderr,
                       "%s: %s: %s: instruction '%s' has no derivation "
                       "chain\n",
                       Prog, Path, Name->stringValue().c_str(),
                       Mn ? Mn->stringValue().c_str() : "?");
          Ok = false;
        }
      }
    }
    std::printf("%s: %zu instruction(s): %zu derived, %zu direct, "
                "%zu ldiq, %zu unexplained\n",
                Name->stringValue().c_str(), Instrs->array().size(), Chained,
                Direct, Ldiq, Bare);
    for (const auto &[Ax, N] : AxiomUses)
      std::printf("  axiom %-24s x%zu\n", Ax.c_str(), N);
  }
  return Ok ? 0 : 1;
}

/// The metrics-summary arm of `egraph` mode: a per-saturation scheduling
/// report from the match.* / match.sched.* counters. Counters aggregate
/// over every saturation in the file (one per GMA), so the per-round
/// averages are the diagnosable signal: e.g. merges-per-round collapsing
/// while matches-per-round holds means rebuild batching regressed.
int egraphMetricsReport(const char *Path, const std::string &Text) {
  std::map<std::string, unsigned long long> Counters;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    std::string Kind, Name;
    unsigned long long V = 0;
    if ((Fields >> Kind >> Name) && Kind == "counter" && (Fields >> V))
      Counters[Name] = V;
  }
  auto C = [&](const char *Name) -> unsigned long long {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  };
  unsigned long long Rounds = C("match.rounds");
  if (Rounds == 0) {
    std::fprintf(stderr,
                 "%s: %s: neither an --egraph-json document nor a metrics "
                 "summary with a match.rounds counter\n",
                 Prog, Path);
    return 1;
  }
  auto PerRound = [&](unsigned long long V) {
    return static_cast<double>(V) / static_cast<double>(Rounds);
  };
  auto Row = [&](const char *Label, unsigned long long V) {
    std::printf("  %-22s %12llu  (%.1f/round)\n", Label, V, PerRound(V));
  };
  std::printf("saturation scheduling (%llu round(s) total):\n", Rounds);
  Row("matches found", C("match.matches"));
  Row("instances asserted", C("match.instances_asserted"));
  Row("instances deduped", C("match.instances_deduped"));
  Row("merges", C("match.sched.merges"));
  Row("  congruence merges", C("match.sched.congruence_merges"));
  Row("  constant folds", C("match.sched.constant_folds"));
  Row("rebuild passes", C("match.sched.rebuilds"));
  std::printf("scheduler decisions:\n");
  std::printf("  %-22s %12llu\n", "budget overflows",
              C("match.sched.budget_overflows"));
  std::printf("  %-22s %12llu\n", "budget skips",
              C("match.sched.budget_skips"));
  std::printf("  %-22s %12llu\n", "phase advances",
              C("match.sched.phase_advances"));
  std::printf("  %-22s %12llu\n", "seen-set hits",
              C("match.sched.seen_hits"));
  std::printf("  %-22s %12llu\n", "seen-set evictions",
              C("match.sched.seen_evictions"));
  return 0;
}

int egraphReport(const char *Path) {
  std::string Text;
  if (!readFile(Path, Text))
    return 1;
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &Err);
  // Not JSON at all: fall through to the metrics-summary report.
  if (!Doc)
    return egraphMetricsReport(Path, Text);
  const json::Value *Dump = Doc->field("dump");
  if (!Dump || !Dump->isArray()) {
    std::fprintf(stderr,
                 "%s: %s: no dump array (not an --egraph-json document?)\n",
                 Prog, Path);
    return 1;
  }
  size_t Nodes = 0, Constants = 0;
  std::vector<std::pair<size_t, double>> Sizes; // (members, class id)
  for (const json::Value &C : Dump->array()) {
    const json::Value *Members = C.field("nodes");
    size_t N = Members && Members->isArray() ? Members->array().size() : 0;
    Nodes += N;
    if (C.field("constant"))
      ++Constants;
    const json::Value *Id = C.field("class");
    Sizes.push_back({N, Id ? Id->numberValue() : -1});
  }
  std::sort(Sizes.rbegin(), Sizes.rend());
  std::printf("%zu classes, %zu nodes, %zu constant classes\n",
              Dump->array().size(), Nodes, Constants);
  for (size_t I = 0; I < Sizes.size() && I < 5; ++I)
    std::printf("  c%.0f: %zu node(s)\n", Sizes[I].second, Sizes[I].first);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 0 && argv[0]) {
    const char *Slash = std::strrchr(argv[0], '/');
    Prog = Slash ? Slash + 1 : argv[0];
  }
  const char *Mode = argc > 1 ? argv[1] : nullptr;
  const char *Path = argc > 2 ? argv[2] : nullptr;
  size_t TopN = 10;
  std::string Require;
  bool RequireChains = false;
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--top") && I + 1 < argc)
      TopN = static_cast<size_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "--require") && I + 1 < argc)
      Require = argv[++I];
    else if (!std::strcmp(argv[I], "--require-chains"))
      RequireChains = true;
    else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", Prog, argv[I]);
      return 2;
    }
  }
  if (Mode && Path && !std::strcmp(Mode, "trace"))
    return traceReport(Path, TopN);
  if (Mode && Path && !std::strcmp(Mode, "metrics"))
    return metricsReport(Path, Require);
  if (Mode && Path && !std::strcmp(Mode, "explain"))
    return explainReport(Path, RequireChains);
  if (Mode && Path && !std::strcmp(Mode, "egraph"))
    return egraphReport(Path);
  std::fprintf(stderr,
               "usage: %s trace <trace.json> [--top N]\n"
               "       %s metrics <metrics.txt> [--require name,name,...]\n"
               "       %s explain <explain.json> [--require-chains]\n"
               "       %s egraph <egraph.json | metrics.txt>\n",
               Prog, Prog, Prog, Prog);
  return 2;
}
