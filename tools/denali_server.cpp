//===- tools/denali_server.cpp - Long-lived compile service ---------------===//
//
// denali_server: Denali as a service. Reads s-expr compile requests from
// stdin (or a corpus file in --bulk mode), answers each on one line, and
// keeps a canonical-GMA result cache plus a warm saturated-e-graph memo
// across requests.
//
//   denali_server [options]
//     --threads N        worker threads compiling requests concurrently
//                        (default 2)
//     --cache-bytes N    result-cache capacity; accepts k/m/g suffixes
//                        (default 64m). 0 disables all caching: every
//                        request runs the plain driver pipeline.
//     --warm-graphs N    saturated e-graphs kept warm (default 64)
//     --bulk FILE        compile every (gma ...) form in FILE, grouping
//                        same-skeleton requests into one saturation;
//                        prints one response line per form, in order
//     --print-programs   attach the emitted assembly to responses
//     --stats            print a (stats ...) summary line on exit
//     --max-cycles N     budget ceiling (default 16)
//     --min-cycles N     budget floor (default 1)
//     --binary-search / --portfolio / --incremental
//                        budget-ladder strategy knobs (as in `denali`)
//     --search-threads N portfolio worker count
//     --match-budget N / --match-phases / --match-threads N /
//     --match-eager-rebuild
//                        saturation scheduling knobs (as in `denali`)
//     --profile-ledger=FILE
//                        merge FILE (per-axiom saturation-profile JSONL)
//                        into the run and write the aggregate back on exit
//     --match-adaptive   seed per-axiom budgets and phases from ledger
//                        history (as in `denali`; runs that quiesce reach
//                        the identical closure)
//     --no-guard         drop guard-before-memory enforcement
//     --machine NAME     machine-model backend (alpha, rv64; default alpha)
//     --trace-out=FILE / --jsonl-out=FILE / --metrics-out=FILE /
//     --log-level=N      observability (server.cache.* / server.memo.* /
//                        server.requests land in the metrics summary)
//
// Telemetry (always on unless --obs-off): every request gets a RequestId
// stamped on its spans, and live sliding-window latency histograms feed the
// (stats-full) verb.
//     --obs-off          disable always-on telemetry (overhead baselines)
//     --slow-ms MS       log + span-tree-dump requests slower than MS
//     --metrics-flush-sec S
//                        append a JSONL metrics snapshot every S seconds
//     --metrics-flush-out FILE
//                        snapshot destination (default denali_metrics.jsonl;
//                        rotates FILE -> FILE.1 -> FILE.2 past
//                        --metrics-flush-max-bytes)
//     --metrics-flush-max-bytes N
//                        rotation threshold (k/m/g suffixes; default 8m)
//     --stats-full       print the (stats-full ...) line on exit
//
// Protocol (stdin mode):
//   -> (gma <name> (assign t <term>) ... (guard t) (miss t) (assume ...))
//   -> (stats)
//   -> (stats-full)
//   -> (quit)
//   <- (ok <name> :cycles N :source cold|warm|hit :seconds S ...)
//   <- (error "message")
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "server/Server.h"
#include "sexpr/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace denali;

namespace {

const char *flagValue(const char *Arg, const char *Name, int &I, int argc,
                      char **argv) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0)
    return nullptr;
  if (Arg[Len] == '=')
    return Arg + Len + 1;
  if (Arg[Len] == '\0' && I + 1 < argc)
    return argv[++I];
  return nullptr;
}

/// Parses "64m", "512k", "2g", or a plain byte count.
bool parseBytes(const char *S, size_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S)
    return false;
  switch (*End) {
  case '\0':
    break;
  case 'k':
  case 'K':
    V <<= 10;
    ++End;
    break;
  case 'm':
  case 'M':
    V <<= 20;
    ++End;
    break;
  case 'g':
  case 'G':
    V <<= 30;
    ++End;
    break;
  default:
    return false;
  }
  if (*End != '\0')
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

int runBulk(server::CompileServer &Server, const std::string &Path,
            bool PrintStats) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Corpus = SS.str();

  // Split the corpus into top-level forms with the (zero-copy) reader,
  // then hand the form texts to the server's batching bulk path.
  sexpr::ParseResult P = sexpr::parse(Corpus);
  if (!P.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 P.Error->toString().c_str());
    return 1;
  }
  std::vector<std::string> Texts;
  Texts.reserve(P.Forms.size());
  for (const sexpr::SExpr &F : P.Forms)
    Texts.push_back(F.toString());
  std::vector<server::ServerResponse> Rs = Server.compileBulk(Texts);

  int Failures = 0;
  for (size_t I = 0; I < Rs.size(); ++I) {
    const server::ServerResponse &R = Rs[I];
    if (!R.Result.Error.empty()) {
      ++Failures;
      std::printf("(error \"%s\")\n",
                  obs::jsonEscape(R.Result.Error).c_str());
      continue;
    }
    std::printf("(ok %s :cycles %u :source %s :seconds %.6f)\n",
                R.Result.Gma.Name.empty() ? "unnamed"
                                          : R.Result.Gma.Name.c_str(),
                R.Result.Search.Cycles,
                server::resultSourceName(R.Source), R.Seconds);
    if (Server.options().PrintPrograms)
      std::printf("%s", R.Result.Search.Program.toString().c_str());
  }
  if (PrintStats)
    std::printf("%s\n", Server.statsText().c_str());
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  server::ServerOptions SOpts;
  SOpts.Pipeline.Search.MaxCycles = 16;
  std::string BulkPath;
  bool PrintStats = false;
  bool PrintStatsFull = false;
  driver::Options &Opts = SOpts.Pipeline;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (const char *V = flagValue(Arg, "--threads", I, argc, argv)) {
      SOpts.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V =
                   flagValue(Arg, "--cache-bytes", I, argc, argv)) {
      if (!parseBytes(V, SOpts.CacheBytes)) {
        std::fprintf(stderr, "error: bad --cache-bytes '%s'\n", V);
        return 1;
      }
    } else if (const char *V =
                   flagValue(Arg, "--warm-graphs", I, argc, argv)) {
      SOpts.WarmGraphs = static_cast<size_t>(std::atoll(V));
    } else if (const char *V = flagValue(Arg, "--bulk", I, argc, argv)) {
      BulkPath = V;
    } else if (std::strcmp(Arg, "--print-programs") == 0) {
      SOpts.PrintPrograms = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      PrintStats = true;
    } else if (const char *V =
                   flagValue(Arg, "--max-cycles", I, argc, argv)) {
      Opts.Search.MaxCycles = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V =
                   flagValue(Arg, "--min-cycles", I, argc, argv)) {
      Opts.Search.MinCycles = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(Arg, "--binary-search") == 0) {
      Opts.Search.Strategy = codegen::SearchStrategy::Binary;
    } else if (std::strcmp(Arg, "--portfolio") == 0) {
      Opts.Search.Strategy = codegen::SearchStrategy::Portfolio;
    } else if (std::strcmp(Arg, "--incremental") == 0) {
      Opts.Search.Incremental = true;
      if (Opts.Search.Strategy == codegen::SearchStrategy::Linear)
        Opts.Search.Strategy = codegen::SearchStrategy::Incremental;
    } else if (const char *V =
                   flagValue(Arg, "--search-threads", I, argc, argv)) {
      Opts.Search.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V =
                   flagValue(Arg, "--match-budget", I, argc, argv)) {
      Opts.Matching.MatchBudget = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(Arg, "--match-phases") == 0) {
      Opts.Matching.Phased = true;
    } else if (const char *V =
                   flagValue(Arg, "--match-threads", I, argc, argv)) {
      Opts.Matching.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(Arg, "--match-eager-rebuild") == 0) {
      Opts.Matching.EagerRebuild = true;
    } else if (const char *V =
                   flagValue(Arg, "--profile-ledger", I, argc, argv)) {
      Opts.ProfileLedgerPath = V;
    } else if (std::strcmp(Arg, "--match-adaptive") == 0) {
      Opts.MatchAdaptive = true;
    } else if (std::strcmp(Arg, "--no-guard") == 0) {
      Opts.EnforceGuard = false;
    } else if (const char *V = flagValue(Arg, "--machine", I, argc, argv)) {
      Opts.MachineName = V;
    } else if (std::strcmp(Arg, "--obs-off") == 0) {
      SOpts.Telemetry = false;
    } else if (const char *V = flagValue(Arg, "--slow-ms", I, argc, argv)) {
      SOpts.SlowMs = std::atof(V);
    } else if (const char *V =
                   flagValue(Arg, "--metrics-flush-sec", I, argc, argv)) {
      SOpts.MetricsFlushSec = std::atof(V);
    } else if (const char *V =
                   flagValue(Arg, "--metrics-flush-out", I, argc, argv)) {
      SOpts.MetricsFlushPath = V;
    } else if (const char *V = flagValue(Arg, "--metrics-flush-max-bytes", I,
                                         argc, argv)) {
      if (!parseBytes(V, SOpts.MetricsFlushMaxBytes)) {
        std::fprintf(stderr, "error: bad --metrics-flush-max-bytes '%s'\n",
                     V);
        return 1;
      }
    } else if (std::strcmp(Arg, "--stats-full") == 0) {
      PrintStatsFull = true;
    } else if (const char *V = flagValue(Arg, "--trace-out", I, argc, argv)) {
      Opts.Obs.TraceOut = V;
    } else if (const char *V = flagValue(Arg, "--jsonl-out", I, argc, argv)) {
      Opts.Obs.JsonlOut = V;
    } else if (const char *V =
                   flagValue(Arg, "--metrics-out", I, argc, argv)) {
      Opts.Obs.MetricsOut = V;
    } else if (const char *V = flagValue(Arg, "--log-level", I, argc, argv)) {
      Opts.Obs.LogLevel = std::atoi(V);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return 1;
    }
  }
  Opts.Obs.Enabled = !Opts.Obs.TraceOut.empty() ||
                     !Opts.Obs.JsonlOut.empty() ||
                     !Opts.Obs.MetricsOut.empty() || Opts.Obs.LogLevel > 0;

  server::CompileServer Server(SOpts);

  int Rc;
  if (!BulkPath.empty()) {
    Rc = runBulk(Server, BulkPath, PrintStats);
  } else {
    int Failures = Server.serve(std::cin, std::cout);
    if (PrintStats)
      std::printf("%s\n", Server.statsText().c_str());
    Rc = Failures == 0 ? 0 : 1;
  }
  if (PrintStatsFull)
    std::printf("%s\n", Server.statsFullText().c_str());

  if (!Opts.ProfileLedgerPath.empty()) {
    std::string LedgerErr;
    if (!Server.opt().saveProfileLedger(&LedgerErr)) {
      std::fprintf(stderr, "error: cannot write profile ledger: %s\n",
                   LedgerErr.c_str());
      Rc = 1;
    }
  }
  if (Opts.Obs.Enabled && !obs::exportConfigured())
    Rc = 1;
  return Rc;
}
