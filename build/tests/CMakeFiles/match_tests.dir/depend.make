# Empty dependencies file for match_tests.
# This may be replaced when dependencies are built.
