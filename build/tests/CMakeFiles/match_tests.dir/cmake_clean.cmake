file(REMOVE_RECURSE
  "CMakeFiles/match_tests.dir/MatchTests.cpp.o"
  "CMakeFiles/match_tests.dir/MatchTests.cpp.o.d"
  "match_tests"
  "match_tests.pdb"
  "match_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
