file(REMOVE_RECURSE
  "CMakeFiles/universe_tests.dir/UniverseTests.cpp.o"
  "CMakeFiles/universe_tests.dir/UniverseTests.cpp.o.d"
  "universe_tests"
  "universe_tests.pdb"
  "universe_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universe_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
