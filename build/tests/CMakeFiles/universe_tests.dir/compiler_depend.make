# Empty compiler generated dependencies file for universe_tests.
# This may be replaced when dependencies are built.
