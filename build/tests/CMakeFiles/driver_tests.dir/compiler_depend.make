# Empty compiler generated dependencies file for driver_tests.
# This may be replaced when dependencies are built.
