file(REMOVE_RECURSE
  "CMakeFiles/driver_tests.dir/DriverTests.cpp.o"
  "CMakeFiles/driver_tests.dir/DriverTests.cpp.o.d"
  "driver_tests"
  "driver_tests.pdb"
  "driver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
