file(REMOVE_RECURSE
  "CMakeFiles/control_tests.dir/ControlTests.cpp.o"
  "CMakeFiles/control_tests.dir/ControlTests.cpp.o.d"
  "control_tests"
  "control_tests.pdb"
  "control_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
