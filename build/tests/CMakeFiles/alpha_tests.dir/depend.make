# Empty dependencies file for alpha_tests.
# This may be replaced when dependencies are built.
