file(REMOVE_RECURSE
  "CMakeFiles/alpha_tests.dir/AlphaTests.cpp.o"
  "CMakeFiles/alpha_tests.dir/AlphaTests.cpp.o.d"
  "alpha_tests"
  "alpha_tests.pdb"
  "alpha_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
