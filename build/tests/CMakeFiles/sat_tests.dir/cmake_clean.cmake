file(REMOVE_RECURSE
  "CMakeFiles/sat_tests.dir/SatTests.cpp.o"
  "CMakeFiles/sat_tests.dir/SatTests.cpp.o.d"
  "sat_tests"
  "sat_tests.pdb"
  "sat_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
