# Empty dependencies file for sat_tests.
# This may be replaced when dependencies are built.
