
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CodegenTests.cpp" "tests/CMakeFiles/codegen_tests.dir/CodegenTests.cpp.o" "gcc" "tests/CMakeFiles/codegen_tests.dir/CodegenTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/denali_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/denali_match.dir/DependInfo.cmake"
  "/root/repo/build/src/axioms/CMakeFiles/denali_axioms.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/denali_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/denali_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/denali_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/denali_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/denali_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/denali_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
