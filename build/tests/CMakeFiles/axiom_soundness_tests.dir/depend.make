# Empty dependencies file for axiom_soundness_tests.
# This may be replaced when dependencies are built.
