file(REMOVE_RECURSE
  "CMakeFiles/axiom_soundness_tests.dir/AxiomSoundnessTests.cpp.o"
  "CMakeFiles/axiom_soundness_tests.dir/AxiomSoundnessTests.cpp.o.d"
  "axiom_soundness_tests"
  "axiom_soundness_tests.pdb"
  "axiom_soundness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiom_soundness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
