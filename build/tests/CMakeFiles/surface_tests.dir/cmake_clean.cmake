file(REMOVE_RECURSE
  "CMakeFiles/surface_tests.dir/SurfaceTests.cpp.o"
  "CMakeFiles/surface_tests.dir/SurfaceTests.cpp.o.d"
  "surface_tests"
  "surface_tests.pdb"
  "surface_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surface_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
