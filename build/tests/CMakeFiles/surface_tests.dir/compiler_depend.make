# Empty compiler generated dependencies file for surface_tests.
# This may be replaced when dependencies are built.
