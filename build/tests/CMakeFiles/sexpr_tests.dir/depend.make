# Empty dependencies file for sexpr_tests.
# This may be replaced when dependencies are built.
