file(REMOVE_RECURSE
  "CMakeFiles/sexpr_tests.dir/SExprTests.cpp.o"
  "CMakeFiles/sexpr_tests.dir/SExprTests.cpp.o.d"
  "sexpr_tests"
  "sexpr_tests.pdb"
  "sexpr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sexpr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
