# Empty dependencies file for elaborate_tests.
# This may be replaced when dependencies are built.
