file(REMOVE_RECURSE
  "CMakeFiles/elaborate_tests.dir/ElaborateTests.cpp.o"
  "CMakeFiles/elaborate_tests.dir/ElaborateTests.cpp.o.d"
  "elaborate_tests"
  "elaborate_tests.pdb"
  "elaborate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elaborate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
