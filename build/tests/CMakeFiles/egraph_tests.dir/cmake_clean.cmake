file(REMOVE_RECURSE
  "CMakeFiles/egraph_tests.dir/EGraphTests.cpp.o"
  "CMakeFiles/egraph_tests.dir/EGraphTests.cpp.o.d"
  "egraph_tests"
  "egraph_tests.pdb"
  "egraph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egraph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
