# Empty compiler generated dependencies file for egraph_tests.
# This may be replaced when dependencies are built.
