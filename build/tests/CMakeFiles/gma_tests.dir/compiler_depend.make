# Empty compiler generated dependencies file for gma_tests.
# This may be replaced when dependencies are built.
