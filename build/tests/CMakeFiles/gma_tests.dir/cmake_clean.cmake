file(REMOVE_RECURSE
  "CMakeFiles/gma_tests.dir/GmaTests.cpp.o"
  "CMakeFiles/gma_tests.dir/GmaTests.cpp.o.d"
  "gma_tests"
  "gma_tests.pdb"
  "gma_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gma_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
