# Empty dependencies file for denali_lang.
# This may be replaced when dependencies are built.
