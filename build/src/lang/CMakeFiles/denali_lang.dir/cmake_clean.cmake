file(REMOVE_RECURSE
  "CMakeFiles/denali_lang.dir/Parser.cpp.o"
  "CMakeFiles/denali_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/denali_lang.dir/Surface.cpp.o"
  "CMakeFiles/denali_lang.dir/Surface.cpp.o.d"
  "libdenali_lang.a"
  "libdenali_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
