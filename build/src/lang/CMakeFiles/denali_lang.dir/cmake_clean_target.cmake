file(REMOVE_RECURSE
  "libdenali_lang.a"
)
