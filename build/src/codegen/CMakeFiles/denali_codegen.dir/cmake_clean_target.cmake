file(REMOVE_RECURSE
  "libdenali_codegen.a"
)
