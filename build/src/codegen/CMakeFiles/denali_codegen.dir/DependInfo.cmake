
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/Encoder.cpp" "src/codegen/CMakeFiles/denali_codegen.dir/Encoder.cpp.o" "gcc" "src/codegen/CMakeFiles/denali_codegen.dir/Encoder.cpp.o.d"
  "/root/repo/src/codegen/Search.cpp" "src/codegen/CMakeFiles/denali_codegen.dir/Search.cpp.o" "gcc" "src/codegen/CMakeFiles/denali_codegen.dir/Search.cpp.o.d"
  "/root/repo/src/codegen/Universe.cpp" "src/codegen/CMakeFiles/denali_codegen.dir/Universe.cpp.o" "gcc" "src/codegen/CMakeFiles/denali_codegen.dir/Universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/egraph/CMakeFiles/denali_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/denali_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/denali_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/denali_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/denali_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
