file(REMOVE_RECURSE
  "CMakeFiles/denali_codegen.dir/Encoder.cpp.o"
  "CMakeFiles/denali_codegen.dir/Encoder.cpp.o.d"
  "CMakeFiles/denali_codegen.dir/Search.cpp.o"
  "CMakeFiles/denali_codegen.dir/Search.cpp.o.d"
  "CMakeFiles/denali_codegen.dir/Universe.cpp.o"
  "CMakeFiles/denali_codegen.dir/Universe.cpp.o.d"
  "libdenali_codegen.a"
  "libdenali_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
