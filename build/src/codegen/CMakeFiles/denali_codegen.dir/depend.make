# Empty dependencies file for denali_codegen.
# This may be replaced when dependencies are built.
