# Empty compiler generated dependencies file for denali_sexpr.
# This may be replaced when dependencies are built.
