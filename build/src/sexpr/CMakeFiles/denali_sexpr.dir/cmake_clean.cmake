file(REMOVE_RECURSE
  "CMakeFiles/denali_sexpr.dir/Parser.cpp.o"
  "CMakeFiles/denali_sexpr.dir/Parser.cpp.o.d"
  "CMakeFiles/denali_sexpr.dir/SExpr.cpp.o"
  "CMakeFiles/denali_sexpr.dir/SExpr.cpp.o.d"
  "libdenali_sexpr.a"
  "libdenali_sexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_sexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
