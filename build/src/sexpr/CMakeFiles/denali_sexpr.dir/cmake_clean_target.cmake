file(REMOVE_RECURSE
  "libdenali_sexpr.a"
)
