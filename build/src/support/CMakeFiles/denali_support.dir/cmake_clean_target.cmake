file(REMOVE_RECURSE
  "libdenali_support.a"
)
