# Empty compiler generated dependencies file for denali_support.
# This may be replaced when dependencies are built.
