file(REMOVE_RECURSE
  "CMakeFiles/denali_support.dir/Error.cpp.o"
  "CMakeFiles/denali_support.dir/Error.cpp.o.d"
  "CMakeFiles/denali_support.dir/StringExtras.cpp.o"
  "CMakeFiles/denali_support.dir/StringExtras.cpp.o.d"
  "libdenali_support.a"
  "libdenali_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
