file(REMOVE_RECURSE
  "CMakeFiles/denali_gma.dir/GMA.cpp.o"
  "CMakeFiles/denali_gma.dir/GMA.cpp.o.d"
  "libdenali_gma.a"
  "libdenali_gma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_gma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
