file(REMOVE_RECURSE
  "libdenali_gma.a"
)
