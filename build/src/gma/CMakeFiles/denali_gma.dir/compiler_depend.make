# Empty compiler generated dependencies file for denali_gma.
# This may be replaced when dependencies are built.
