file(REMOVE_RECURSE
  "CMakeFiles/denali_axioms.dir/BuiltinAxioms.cpp.o"
  "CMakeFiles/denali_axioms.dir/BuiltinAxioms.cpp.o.d"
  "libdenali_axioms.a"
  "libdenali_axioms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_axioms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
