file(REMOVE_RECURSE
  "libdenali_axioms.a"
)
