# Empty compiler generated dependencies file for denali_axioms.
# This may be replaced when dependencies are built.
