# Empty compiler generated dependencies file for denali_sat.
# This may be replaced when dependencies are built.
