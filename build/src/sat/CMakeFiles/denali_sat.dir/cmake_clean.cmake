file(REMOVE_RECURSE
  "CMakeFiles/denali_sat.dir/Dimacs.cpp.o"
  "CMakeFiles/denali_sat.dir/Dimacs.cpp.o.d"
  "CMakeFiles/denali_sat.dir/Encodings.cpp.o"
  "CMakeFiles/denali_sat.dir/Encodings.cpp.o.d"
  "CMakeFiles/denali_sat.dir/RupChecker.cpp.o"
  "CMakeFiles/denali_sat.dir/RupChecker.cpp.o.d"
  "CMakeFiles/denali_sat.dir/Solver.cpp.o"
  "CMakeFiles/denali_sat.dir/Solver.cpp.o.d"
  "libdenali_sat.a"
  "libdenali_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
