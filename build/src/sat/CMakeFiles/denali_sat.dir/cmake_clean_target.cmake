file(REMOVE_RECURSE
  "libdenali_sat.a"
)
