
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/BruteForce.cpp" "src/baseline/CMakeFiles/denali_baseline.dir/BruteForce.cpp.o" "gcc" "src/baseline/CMakeFiles/denali_baseline.dir/BruteForce.cpp.o.d"
  "/root/repo/src/baseline/EGraphExtract.cpp" "src/baseline/CMakeFiles/denali_baseline.dir/EGraphExtract.cpp.o" "gcc" "src/baseline/CMakeFiles/denali_baseline.dir/EGraphExtract.cpp.o.d"
  "/root/repo/src/baseline/Rewriter.cpp" "src/baseline/CMakeFiles/denali_baseline.dir/Rewriter.cpp.o" "gcc" "src/baseline/CMakeFiles/denali_baseline.dir/Rewriter.cpp.o.d"
  "/root/repo/src/baseline/TreeCodegen.cpp" "src/baseline/CMakeFiles/denali_baseline.dir/TreeCodegen.cpp.o" "gcc" "src/baseline/CMakeFiles/denali_baseline.dir/TreeCodegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alpha/CMakeFiles/denali_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/denali_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/egraph/CMakeFiles/denali_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/denali_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
