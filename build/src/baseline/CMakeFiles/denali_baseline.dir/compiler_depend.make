# Empty compiler generated dependencies file for denali_baseline.
# This may be replaced when dependencies are built.
