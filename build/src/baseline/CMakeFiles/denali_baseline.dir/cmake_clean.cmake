file(REMOVE_RECURSE
  "CMakeFiles/denali_baseline.dir/BruteForce.cpp.o"
  "CMakeFiles/denali_baseline.dir/BruteForce.cpp.o.d"
  "CMakeFiles/denali_baseline.dir/EGraphExtract.cpp.o"
  "CMakeFiles/denali_baseline.dir/EGraphExtract.cpp.o.d"
  "CMakeFiles/denali_baseline.dir/Rewriter.cpp.o"
  "CMakeFiles/denali_baseline.dir/Rewriter.cpp.o.d"
  "CMakeFiles/denali_baseline.dir/TreeCodegen.cpp.o"
  "CMakeFiles/denali_baseline.dir/TreeCodegen.cpp.o.d"
  "libdenali_baseline.a"
  "libdenali_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
