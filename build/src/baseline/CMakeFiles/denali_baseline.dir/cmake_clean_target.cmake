file(REMOVE_RECURSE
  "libdenali_baseline.a"
)
