file(REMOVE_RECURSE
  "CMakeFiles/denali_alpha.dir/Assembly.cpp.o"
  "CMakeFiles/denali_alpha.dir/Assembly.cpp.o.d"
  "CMakeFiles/denali_alpha.dir/ISA.cpp.o"
  "CMakeFiles/denali_alpha.dir/ISA.cpp.o.d"
  "CMakeFiles/denali_alpha.dir/Simulator.cpp.o"
  "CMakeFiles/denali_alpha.dir/Simulator.cpp.o.d"
  "libdenali_alpha.a"
  "libdenali_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
