file(REMOVE_RECURSE
  "libdenali_alpha.a"
)
