# Empty compiler generated dependencies file for denali_alpha.
# This may be replaced when dependencies are built.
