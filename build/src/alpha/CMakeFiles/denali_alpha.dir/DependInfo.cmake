
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alpha/Assembly.cpp" "src/alpha/CMakeFiles/denali_alpha.dir/Assembly.cpp.o" "gcc" "src/alpha/CMakeFiles/denali_alpha.dir/Assembly.cpp.o.d"
  "/root/repo/src/alpha/ISA.cpp" "src/alpha/CMakeFiles/denali_alpha.dir/ISA.cpp.o" "gcc" "src/alpha/CMakeFiles/denali_alpha.dir/ISA.cpp.o.d"
  "/root/repo/src/alpha/Simulator.cpp" "src/alpha/CMakeFiles/denali_alpha.dir/Simulator.cpp.o" "gcc" "src/alpha/CMakeFiles/denali_alpha.dir/Simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/denali_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/denali_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
