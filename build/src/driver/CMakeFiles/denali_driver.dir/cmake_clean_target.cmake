file(REMOVE_RECURSE
  "libdenali_driver.a"
)
