file(REMOVE_RECURSE
  "CMakeFiles/denali_driver.dir/Superoptimizer.cpp.o"
  "CMakeFiles/denali_driver.dir/Superoptimizer.cpp.o.d"
  "libdenali_driver.a"
  "libdenali_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
