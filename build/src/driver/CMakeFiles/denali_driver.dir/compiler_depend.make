# Empty compiler generated dependencies file for denali_driver.
# This may be replaced when dependencies are built.
