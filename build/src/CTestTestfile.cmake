# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sexpr")
subdirs("ir")
subdirs("egraph")
subdirs("sat")
subdirs("match")
subdirs("axioms")
subdirs("alpha")
subdirs("lang")
subdirs("gma")
subdirs("codegen")
subdirs("driver")
subdirs("baseline")
