# Empty dependencies file for denali_match.
# This may be replaced when dependencies are built.
