file(REMOVE_RECURSE
  "libdenali_match.a"
)
