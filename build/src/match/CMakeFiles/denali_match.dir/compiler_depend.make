# Empty compiler generated dependencies file for denali_match.
# This may be replaced when dependencies are built.
