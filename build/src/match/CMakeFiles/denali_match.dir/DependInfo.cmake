
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/Axiom.cpp" "src/match/CMakeFiles/denali_match.dir/Axiom.cpp.o" "gcc" "src/match/CMakeFiles/denali_match.dir/Axiom.cpp.o.d"
  "/root/repo/src/match/Elaborate.cpp" "src/match/CMakeFiles/denali_match.dir/Elaborate.cpp.o" "gcc" "src/match/CMakeFiles/denali_match.dir/Elaborate.cpp.o.d"
  "/root/repo/src/match/Matcher.cpp" "src/match/CMakeFiles/denali_match.dir/Matcher.cpp.o" "gcc" "src/match/CMakeFiles/denali_match.dir/Matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/egraph/CMakeFiles/denali_egraph.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/denali_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/denali_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/denali_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
