file(REMOVE_RECURSE
  "CMakeFiles/denali_match.dir/Axiom.cpp.o"
  "CMakeFiles/denali_match.dir/Axiom.cpp.o.d"
  "CMakeFiles/denali_match.dir/Elaborate.cpp.o"
  "CMakeFiles/denali_match.dir/Elaborate.cpp.o.d"
  "CMakeFiles/denali_match.dir/Matcher.cpp.o"
  "CMakeFiles/denali_match.dir/Matcher.cpp.o.d"
  "libdenali_match.a"
  "libdenali_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
