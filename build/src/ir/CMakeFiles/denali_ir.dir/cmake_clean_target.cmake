file(REMOVE_RECURSE
  "libdenali_ir.a"
)
