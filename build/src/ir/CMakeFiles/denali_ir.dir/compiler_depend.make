# Empty compiler generated dependencies file for denali_ir.
# This may be replaced when dependencies are built.
