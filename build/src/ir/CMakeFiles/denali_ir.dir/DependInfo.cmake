
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Eval.cpp" "src/ir/CMakeFiles/denali_ir.dir/Eval.cpp.o" "gcc" "src/ir/CMakeFiles/denali_ir.dir/Eval.cpp.o.d"
  "/root/repo/src/ir/Ops.cpp" "src/ir/CMakeFiles/denali_ir.dir/Ops.cpp.o" "gcc" "src/ir/CMakeFiles/denali_ir.dir/Ops.cpp.o.d"
  "/root/repo/src/ir/Term.cpp" "src/ir/CMakeFiles/denali_ir.dir/Term.cpp.o" "gcc" "src/ir/CMakeFiles/denali_ir.dir/Term.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/ir/CMakeFiles/denali_ir.dir/Value.cpp.o" "gcc" "src/ir/CMakeFiles/denali_ir.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/denali_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
