file(REMOVE_RECURSE
  "CMakeFiles/denali_ir.dir/Eval.cpp.o"
  "CMakeFiles/denali_ir.dir/Eval.cpp.o.d"
  "CMakeFiles/denali_ir.dir/Ops.cpp.o"
  "CMakeFiles/denali_ir.dir/Ops.cpp.o.d"
  "CMakeFiles/denali_ir.dir/Term.cpp.o"
  "CMakeFiles/denali_ir.dir/Term.cpp.o.d"
  "CMakeFiles/denali_ir.dir/Value.cpp.o"
  "CMakeFiles/denali_ir.dir/Value.cpp.o.d"
  "libdenali_ir.a"
  "libdenali_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
