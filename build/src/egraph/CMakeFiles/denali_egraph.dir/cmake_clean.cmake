file(REMOVE_RECURSE
  "CMakeFiles/denali_egraph.dir/Analysis.cpp.o"
  "CMakeFiles/denali_egraph.dir/Analysis.cpp.o.d"
  "CMakeFiles/denali_egraph.dir/EGraph.cpp.o"
  "CMakeFiles/denali_egraph.dir/EGraph.cpp.o.d"
  "libdenali_egraph.a"
  "libdenali_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
