# Empty dependencies file for denali_egraph.
# This may be replaced when dependencies are built.
