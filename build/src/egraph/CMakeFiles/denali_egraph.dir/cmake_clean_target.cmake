file(REMOVE_RECURSE
  "libdenali_egraph.a"
)
