# Empty compiler generated dependencies file for egraph_dump.
# This may be replaced when dependencies are built.
