file(REMOVE_RECURSE
  "CMakeFiles/egraph_dump.dir/egraph_dump.cpp.o"
  "CMakeFiles/egraph_dump.dir/egraph_dump.cpp.o.d"
  "egraph_dump"
  "egraph_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egraph_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
