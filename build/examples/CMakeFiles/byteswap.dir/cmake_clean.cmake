file(REMOVE_RECURSE
  "CMakeFiles/byteswap.dir/byteswap.cpp.o"
  "CMakeFiles/byteswap.dir/byteswap.cpp.o.d"
  "byteswap"
  "byteswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byteswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
