# Empty dependencies file for byteswap.
# This may be replaced when dependencies are built.
