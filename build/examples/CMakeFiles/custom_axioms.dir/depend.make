# Empty dependencies file for custom_axioms.
# This may be replaced when dependencies are built.
