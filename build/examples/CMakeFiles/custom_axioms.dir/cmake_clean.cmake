file(REMOVE_RECURSE
  "CMakeFiles/custom_axioms.dir/custom_axioms.cpp.o"
  "CMakeFiles/custom_axioms.dir/custom_axioms.cpp.o.d"
  "custom_axioms"
  "custom_axioms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_axioms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
