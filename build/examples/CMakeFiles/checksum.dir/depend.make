# Empty dependencies file for checksum.
# This may be replaced when dependencies are built.
