file(REMOVE_RECURSE
  "CMakeFiles/checksum.dir/checksum.cpp.o"
  "CMakeFiles/checksum.dir/checksum.cpp.o.d"
  "checksum"
  "checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
