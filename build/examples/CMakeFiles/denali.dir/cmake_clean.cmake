file(REMOVE_RECURSE
  "CMakeFiles/denali.dir/denali.cpp.o"
  "CMakeFiles/denali.dir/denali.cpp.o.d"
  "denali"
  "denali.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denali.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
