# Empty compiler generated dependencies file for denali.
# This may be replaced when dependencies are built.
