file(REMOVE_RECURSE
  "CMakeFiles/bench_sat_scaling.dir/bench_sat_scaling.cpp.o"
  "CMakeFiles/bench_sat_scaling.dir/bench_sat_scaling.cpp.o.d"
  "bench_sat_scaling"
  "bench_sat_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
