# Empty compiler generated dependencies file for bench_sat_scaling.
# This may be replaced when dependencies are built.
