# Empty compiler generated dependencies file for bench_byteswap.
# This may be replaced when dependencies are built.
