file(REMOVE_RECURSE
  "CMakeFiles/bench_byteswap.dir/bench_byteswap.cpp.o"
  "CMakeFiles/bench_byteswap.dir/bench_byteswap.cpp.o.d"
  "bench_byteswap"
  "bench_byteswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_byteswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
