file(REMOVE_RECURSE
  "CMakeFiles/bench_egraph.dir/bench_egraph.cpp.o"
  "CMakeFiles/bench_egraph.dir/bench_egraph.cpp.o.d"
  "bench_egraph"
  "bench_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
