# Empty compiler generated dependencies file for bench_egraph.
# This may be replaced when dependencies are built.
