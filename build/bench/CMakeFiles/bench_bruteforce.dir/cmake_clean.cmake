file(REMOVE_RECURSE
  "CMakeFiles/bench_bruteforce.dir/bench_bruteforce.cpp.o"
  "CMakeFiles/bench_bruteforce.dir/bench_bruteforce.cpp.o.d"
  "bench_bruteforce"
  "bench_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
