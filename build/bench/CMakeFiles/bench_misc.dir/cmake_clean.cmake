file(REMOVE_RECURSE
  "CMakeFiles/bench_misc.dir/bench_misc.cpp.o"
  "CMakeFiles/bench_misc.dir/bench_misc.cpp.o.d"
  "bench_misc"
  "bench_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
