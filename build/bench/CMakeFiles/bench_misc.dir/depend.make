# Empty dependencies file for bench_misc.
# This may be replaced when dependencies are built.
