# Empty compiler generated dependencies file for bench_rewriter.
# This may be replaced when dependencies are built.
