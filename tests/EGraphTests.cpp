//===- tests/EGraphTests.cpp - E-graph unit & property tests --------------===//

#include "egraph/Analysis.h"
#include "egraph/EGraph.h"

#include "ir/Eval.h"

#include <gtest/gtest.h>

#include <random>

using namespace denali;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

class EGraphTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  EGraph G{Ctx};

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &Name) {
    return G.addNode(Ctx.Ops.makeVariable(Name), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }
};

TEST_F(EGraphTest, HashconsIdenticalNodes) {
  ClassId A = app(Builtin::Add64, {v("x"), c(1)});
  ClassId B = app(Builtin::Add64, {v("x"), c(1)});
  EXPECT_EQ(G.find(A), G.find(B));
}

TEST_F(EGraphTest, DistinctNodesDistinctClasses) {
  ClassId A = app(Builtin::Add64, {v("x"), c(1)});
  ClassId B = app(Builtin::Add64, {v("x"), c(2)});
  EXPECT_NE(G.find(A), G.find(B));
}

TEST_F(EGraphTest, MergeIsIdempotent) {
  ClassId X = v("x");
  ClassId Y = v("y");
  EXPECT_TRUE(G.assertEqual(X, Y));
  EXPECT_FALSE(G.assertEqual(X, Y));
  EXPECT_TRUE(G.sameClass(X, Y));
}

TEST_F(EGraphTest, CongruenceUpward) {
  // x = y  ==>  f(x) = f(y).
  ClassId X = v("x");
  ClassId Y = v("y");
  ClassId FX = app(Builtin::Neg64, {X});
  ClassId FY = app(Builtin::Neg64, {Y});
  EXPECT_FALSE(G.sameClass(FX, FY));
  G.assertEqual(X, Y);
  EXPECT_TRUE(G.sameClass(FX, FY));
}

TEST_F(EGraphTest, CongruenceTransitiveChain) {
  // a=b, b=c ==> g(f(a)) = g(f(c)).
  ClassId A = v("a"), B = v("b"), C = v("c");
  ClassId GFA = app(Builtin::Not64, {app(Builtin::Neg64, {A})});
  ClassId GFC = app(Builtin::Not64, {app(Builtin::Neg64, {C})});
  G.assertEqual(A, B);
  G.assertEqual(B, C);
  EXPECT_TRUE(G.sameClass(GFA, GFC));
}

TEST_F(EGraphTest, CongruenceMultiArg) {
  ClassId A = v("a"), B = v("b");
  ClassId F1 = app(Builtin::Add64, {A, B});
  ClassId F2 = app(Builtin::Add64, {B, A});
  EXPECT_FALSE(G.sameClass(F1, F2));
  G.assertEqual(A, B);
  EXPECT_TRUE(G.sameClass(F1, F2));
}

TEST_F(EGraphTest, NewNodeJoinsExistingCongruence) {
  // Merge first, then add the congruent node: it must land in the class.
  ClassId X = v("x");
  ClassId Y = v("y");
  G.assertEqual(X, Y);
  ClassId FX = app(Builtin::Neg64, {X});
  ClassId FY = app(Builtin::Neg64, {Y});
  EXPECT_TRUE(G.sameClass(FX, FY));
}

TEST_F(EGraphTest, ConstantAnalysisAtInsert) {
  ClassId C5 = c(5);
  auto K = G.classConstant(C5);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 5u);
  EXPECT_FALSE(G.classConstant(v("x")).has_value());
}

TEST_F(EGraphTest, ConstantPropagationOnMerge) {
  ClassId X = v("x");
  G.assertEqual(X, c(7));
  auto K = G.classConstant(X);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 7u);
}

TEST_F(EGraphTest, ConstantFolding) {
  ClassId Sum = app(Builtin::Add64, {c(3), c(4)});
  auto K = G.classConstant(Sum);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 7u);
  EXPECT_TRUE(G.sameClass(Sum, c(7)));
}

TEST_F(EGraphTest, FoldingCascades) {
  // (3 + 4) * 2 folds all the way to 14.
  ClassId T = app(Builtin::Mul64, {app(Builtin::Add64, {c(3), c(4)}), c(2)});
  auto K = G.classConstant(T);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 14u);
}

TEST_F(EGraphTest, FoldingTriggeredByLaterMerge) {
  // x + 4 is not constant until x = 3 arrives.
  ClassId X = v("x");
  ClassId Sum = app(Builtin::Add64, {X, c(4)});
  EXPECT_FALSE(G.classConstant(Sum).has_value());
  G.assertEqual(X, c(3));
  auto K = G.classConstant(Sum);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 7u);
}

TEST_F(EGraphTest, FoldingMskblToZero) {
  // The byteswap chain relies on mskbl(0, i) folding to 0.
  ClassId T = app(Builtin::Mskbl, {c(0), c(1)});
  auto K = G.classConstant(T);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 0u);
}

TEST_F(EGraphTest, DistinctConstantsAreDistinct) {
  EXPECT_TRUE(G.areDistinct(c(1), c(2)));
  EXPECT_FALSE(G.areDistinct(c(1), c(1)));
}

TEST_F(EGraphTest, ExplicitDistinction) {
  ClassId X = v("x");
  ClassId Y = v("y");
  EXPECT_FALSE(G.areDistinct(X, Y));
  EXPECT_TRUE(G.assertDistinct(X, Y));
  EXPECT_TRUE(G.areDistinct(X, Y));
  EXPECT_FALSE(G.assertDistinct(X, Y)); // Already recorded.
}

TEST_F(EGraphTest, MergingDistinctClassesIsInconsistent) {
  ClassId X = v("x");
  ClassId Y = v("y");
  G.assertDistinct(X, Y);
  G.assertEqual(X, Y);
  EXPECT_TRUE(G.isInconsistent());
}

TEST_F(EGraphTest, DistinctionSurvivesMerges) {
  ClassId X = v("x"), Y = v("y"), Z = v("z");
  G.assertDistinct(X, Y);
  G.assertEqual(Y, Z); // Z joins Y's class.
  EXPECT_TRUE(G.areDistinct(X, Z));
}

TEST_F(EGraphTest, ConstantConflictFlagsInconsistency) {
  G.assertEqual(c(1), c(2));
  EXPECT_TRUE(G.isInconsistent());
  EXPECT_FALSE(G.inconsistencyMessage().empty());
}

//===----------------------------------------------------------------------===
// Clauses: untenable-literal deletion and unit propagation (section 5).
//===----------------------------------------------------------------------===

TEST_F(EGraphTest, ClauseUnitPropagation) {
  // (x = y | 1 = 2): the second literal is untenable, so x = y is asserted.
  ClassId X = v("x");
  ClassId Y = v("y");
  G.addClause({Literal::eq(X, Y), Literal::eq(c(1), c(2))});
  EXPECT_TRUE(G.sameClass(X, Y));
}

TEST_F(EGraphTest, ClauseSatisfiedIsInert) {
  // (x = x | y = z) is satisfied; y and z must stay separate.
  ClassId X = v("x"), Y = v("y"), Z = v("z");
  G.addClause({Literal::eq(X, X), Literal::eq(Y, Z)});
  EXPECT_FALSE(G.sameClass(Y, Z));
}

TEST_F(EGraphTest, ClauseBecomesUnitLater) {
  // (a = b | x = y); later a != b arrives, forcing x = y.
  ClassId A = v("a"), B = v("b"), X = v("x"), Y = v("y");
  G.addClause({Literal::eq(A, B), Literal::eq(X, Y)});
  EXPECT_FALSE(G.sameClass(X, Y));
  G.assertDistinct(A, B);
  EXPECT_TRUE(G.sameClass(X, Y));
}

TEST_F(EGraphTest, SelectStoreStyleClause) {
  // The paper's example: p = p+8 is untenable (constant-offset oracle is
  // modeled here by explicit distinctness), so the select-store equality
  // fires and gives load/store reordering freedom.
  ClassId M = v("M");
  ClassId P = v("p");
  ClassId X = v("xval");
  ClassId P8 = app(Builtin::Add64, {P, c(8)});
  ClassId StoreT = app(Builtin::Store, {M, P, X});
  ClassId LoadAfter = app(Builtin::Select, {StoreT, P8});
  ClassId LoadBefore = app(Builtin::Select, {M, P8});
  G.assertDistinct(P, P8);
  G.addClause({Literal::eq(P, P8), Literal::eq(LoadAfter, LoadBefore)});
  EXPECT_TRUE(G.sameClass(LoadAfter, LoadBefore));
}

TEST_F(EGraphTest, NeLiteralAsserted) {
  // (1 = 2 | x != y) forces the distinction.
  ClassId X = v("x"), Y = v("y");
  G.addClause({Literal::eq(c(1), c(2)), Literal::ne(X, Y)});
  EXPECT_TRUE(G.areDistinct(X, Y));
}

TEST_F(EGraphTest, EmptyClauseIsConflict) {
  G.addClause({Literal::eq(c(1), c(2)), Literal::ne(c(3), c(3))});
  EXPECT_TRUE(G.isInconsistent());
}

//===----------------------------------------------------------------------===
// Introspection used by the matcher and encoder.
//===----------------------------------------------------------------------===

TEST_F(EGraphTest, ClassNodesListsAlternatives) {
  ClassId A = app(Builtin::Mul64, {v("x"), c(4)});
  ClassId B = app(Builtin::Shl64, {v("x"), c(2)});
  G.assertEqual(A, B);
  auto Nodes = G.classNodes(A);
  EXPECT_EQ(Nodes.size(), 2u);
}

TEST_F(EGraphTest, NodesWithOpIndex) {
  app(Builtin::Add64, {v("x"), c(1)});
  app(Builtin::Add64, {v("y"), c(2)});
  size_t Count = 0;
  for (ENodeId N : G.nodesWithOp(Ctx.Ops.builtin(Builtin::Add64)))
    if (G.node(N).Alive)
      ++Count;
  EXPECT_EQ(Count, 2u);
}

TEST_F(EGraphTest, VersionAdvancesOnChange) {
  uint64_t V0 = G.version();
  ClassId X = v("x");
  EXPECT_GT(G.version(), V0);
  uint64_t V1 = G.version();
  G.assertEqual(X, c(3));
  EXPECT_GT(G.version(), V1);
  uint64_t V2 = G.version();
  G.assertEqual(X, c(3)); // No-op.
  EXPECT_EQ(G.version(), V2);
}

TEST_F(EGraphTest, AddTermSharesStructure) {
  ir::TermId T = Ctx.Terms.makeBuiltin(
      Builtin::Add64, {Ctx.Terms.makeBuiltin(
                           Builtin::Mul64, {Ctx.Terms.makeVar("reg6"),
                                            Ctx.Terms.makeConst(4)}),
                       Ctx.Terms.makeConst(1)});
  ClassId C1 = G.addTerm(T);
  ClassId C2 = G.addTerm(T);
  EXPECT_EQ(G.find(C1), G.find(C2));
  EXPECT_EQ(G.numClasses(), 5u); // reg6, 4, 1, (mul), (add).
}

TEST_F(EGraphTest, NumNodesTracksLiveOnly) {
  ClassId X = v("x");
  ClassId Y = v("y");
  size_t Before = G.numNodes();
  ClassId FX = app(Builtin::Neg64, {X});
  ClassId FY = app(Builtin::Neg64, {Y});
  (void)FX;
  (void)FY;
  EXPECT_EQ(G.numNodes(), Before + 2);
  G.assertEqual(X, Y); // neg(x) and neg(y) become congruent; one dies.
  EXPECT_EQ(G.numNodes(), Before + 1);
}

//===----------------------------------------------------------------------===
// Deferred rebuilding: mutations only union and enqueue; congruence,
// constant folding, and clause propagation are restored by an explicit
// rebuild() (egg-style, one per matcher round).
//===----------------------------------------------------------------------===

TEST_F(EGraphTest, DeferredDefersCongruenceUntilRebuild) {
  G.setRebuildMode(RebuildMode::Deferred);
  ClassId X = v("x");
  ClassId Y = v("y");
  ClassId FX = app(Builtin::Neg64, {X});
  ClassId FY = app(Builtin::Neg64, {Y});
  G.assertEqual(X, Y);
  // The union itself is immediate; the upward f(x)=f(y) merge lags.
  EXPECT_TRUE(G.sameClass(X, Y));
  EXPECT_FALSE(G.sameClass(FX, FY));
  EXPECT_TRUE(G.rebuildPending());
  G.rebuild();
  EXPECT_FALSE(G.rebuildPending());
  EXPECT_TRUE(G.sameClass(FX, FY));
  EXPECT_GE(G.rebuildStats().CongruenceMerges, 1u);
  EXPECT_GE(G.rebuildStats().Rebuilds, 1u);
}

TEST_F(EGraphTest, DeferredDefersConstantFoldUntilRebuild) {
  G.setRebuildMode(RebuildMode::Deferred);
  ClassId Sum = app(Builtin::Add64, {c(2), c(3)});
  EXPECT_FALSE(G.classConstant(Sum).has_value());
  G.rebuild();
  auto K = G.classConstant(Sum);
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, 5u);
  EXPECT_GE(G.rebuildStats().ConstantFolds, 1u);
}

TEST_F(EGraphTest, DeferredDefersClauseUnitUntilRebuild) {
  G.setRebuildMode(RebuildMode::Deferred);
  ClassId X = v("x");
  ClassId Y = v("y");
  // A unit clause asserts its literal — but only at the next rebuild.
  G.addClause({Literal::eq(X, Y)});
  EXPECT_FALSE(G.sameClass(X, Y));
  G.rebuild();
  EXPECT_TRUE(G.sameClass(X, Y));
}

TEST_F(EGraphTest, SwitchingToEagerRunsPendingRebuild) {
  G.setRebuildMode(RebuildMode::Deferred);
  ClassId X = v("x");
  ClassId Y = v("y");
  ClassId FX = app(Builtin::Neg64, {X});
  ClassId FY = app(Builtin::Neg64, {Y});
  G.assertEqual(X, Y);
  EXPECT_TRUE(G.rebuildPending());
  // The graph must always be closed under Eager, so the switch flushes.
  G.setRebuildMode(RebuildMode::Eager);
  EXPECT_FALSE(G.rebuildPending());
  EXPECT_TRUE(G.sameClass(FX, FY));
}

TEST_F(EGraphTest, ProvenanceRecordedAcrossDeferredRebuild) {
  G.enableProvenance();
  G.setRebuildMode(RebuildMode::Deferred);
  ClassId X = v("x");
  ClassId Y = v("y");
  ClassId FX = app(Builtin::Neg64, {X});
  ClassId FY = app(Builtin::Neg64, {Y});
  G.assertEqual(X, Y);
  G.rebuild();
  ASSERT_TRUE(G.sameClass(FX, FY));
  // The batched repair must stamp the congruence edge just as the eager
  // path does: the f(x)=f(y) chain replays with a Congruence step.
  std::vector<ProofStep> Chain = G.explain(FX, FY);
  ASSERT_FALSE(Chain.empty());
  bool HasCongruence = false;
  for (const ProofStep &S : Chain)
    HasCongruence |= S.J.TheKind == Justification::Kind::Congruence;
  EXPECT_TRUE(HasCongruence);
}

//===----------------------------------------------------------------------===
// Property test: random merge sequences preserve union-find/congruence
// invariants (canonical classes partition live nodes; congruent nodes
// share a class).
//===----------------------------------------------------------------------===

class EGraphRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(EGraphRandomized, InvariantsHold) {
  std::mt19937 Rng(GetParam());
  ir::Context Ctx;
  EGraph G(Ctx);
  std::vector<ClassId> Pool;
  for (int I = 0; I < 6; ++I)
    Pool.push_back(
        G.addNode(Ctx.Ops.makeVariable("v" + std::to_string(I)), {}));
  auto RandomClass = [&]() { return Pool[Rng() % Pool.size()]; };
  for (int Step = 0; Step < 120; ++Step) {
    switch (Rng() % 3) {
    case 0: { // New unary node over a random class.
      Pool.push_back(
          G.addNode(Ctx.Ops.builtin(Builtin::Neg64), {RandomClass()}));
      break;
    }
    case 1: { // New binary node.
      Pool.push_back(G.addNode(Ctx.Ops.builtin(Builtin::Add64),
                               {RandomClass(), RandomClass()}));
      break;
    }
    default: { // Merge two classes.
      G.assertEqual(RandomClass(), RandomClass());
      break;
    }
    }
  }
  ASSERT_FALSE(G.isInconsistent());

  // Invariant 1: classNodes of canonical classes partition live nodes.
  size_t Total = 0;
  for (ClassId C : G.canonicalClasses()) {
    auto Nodes = G.classNodes(C);
    Total += Nodes.size();
    for (ENodeId N : Nodes)
      EXPECT_EQ(G.classOf(N), G.find(C));
  }
  EXPECT_EQ(Total, G.numNodes());

  // Invariant 2: congruence — any two live nodes with the same op and
  // pairwise-equal child classes are in the same class.
  std::vector<ENodeId> Live;
  for (ClassId C : G.canonicalClasses())
    for (ENodeId N : G.classNodes(C))
      Live.push_back(N);
  for (size_t I = 0; I < Live.size(); ++I) {
    for (size_t J = I + 1; J < Live.size(); ++J) {
      const ENode &A = G.node(Live[I]);
      const ENode &B = G.node(Live[J]);
      if (A.Op != B.Op || A.Children.size() != B.Children.size() ||
          A.ConstVal != B.ConstVal)
        continue;
      bool SameKids = true;
      for (size_t K = 0; K < A.Children.size(); ++K)
        SameKids &= G.find(A.Children[K]) == G.find(B.Children[K]);
      if (SameKids) {
        EXPECT_EQ(G.classOf(Live[I]), G.classOf(Live[J]))
            << "congruence violated (seed " << GetParam() << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EGraphRandomized,
                         ::testing::Range(0u, 12u));

} // namespace

namespace {

TEST_F(EGraphTest, GraphvizDump) {
  ClassId Mul = app(Builtin::Mul64, {v("reg6"), c(4)});
  G.assertEqual(Mul, app(Builtin::Shl64, {v("reg6"), c(2)}));
  std::string Dot = toGraphviz(G);
  EXPECT_NE(Dot.find("digraph egraph"), std::string::npos);
  EXPECT_NE(Dot.find("mul64"), std::string::npos);
  EXPECT_NE(Dot.find("shl64"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_"), std::string::npos);
  // Both alternatives live in one cluster: they share a class id label.
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

} // namespace
