# Runs the denali CLI on one sample program and compares the merged
# stdout+stderr byte-for-byte against a committed golden capture. This is
# the Alpha bit-identity gate of the MachineModel seam: the goldens were
# captured before the backend abstraction existed, so any drift in
# scheduling, register naming, or listing format fails the test.
#
# Arguments (all -D):
#   DENALI_BIN  path to the denali executable
#   WORKDIR     directory to run from (the source root — the goldens embed
#               the relative input path in diagnostics)
#   INPUT       program path relative to WORKDIR
#   GOLDEN      committed golden file to compare against
#   ARGS        extra CLI flags, space separated (may be empty)
#   EXPECT_RC   required exit code (default 0; rowop's budget refusal is 1)

if(NOT DEFINED EXPECT_RC)
  set(EXPECT_RC 0)
endif()
separate_arguments(ARG_LIST UNIX_COMMAND "${ARGS}")

# OUTPUT_VARIABLE and ERROR_VARIABLE name the same variable, so the two
# streams merge in write order — exactly how the goldens were captured
# (`denali ... > golden 2>&1`).
execute_process(COMMAND ${DENALI_BIN} ${ARG_LIST} ${INPUT}
                WORKING_DIRECTORY ${WORKDIR}
                OUTPUT_VARIABLE OUT
                ERROR_VARIABLE OUT
                RESULT_VARIABLE RC)

if(NOT RC EQUAL ${EXPECT_RC})
  message(FATAL_ERROR "${INPUT}: exit code ${RC}, expected ${EXPECT_RC}\n${OUT}")
endif()

file(READ ${GOLDEN} WANT)
if(NOT OUT STREQUAL WANT)
  message(FATAL_ERROR "${INPUT}: output drifted from ${GOLDEN}\n"
                      "--- got ---\n${OUT}\n--- want ---\n${WANT}")
endif()
