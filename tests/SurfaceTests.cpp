//===- tests/SurfaceTests.cpp - envisioned-syntax parser tests ------------===//

#include "driver/Superoptimizer.h"
#include "gma/GMA.h"
#include "lang/Surface.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::lang;

namespace {

Module parseOk(const std::string &Text) {
  std::string Err;
  std::optional<Module> M = parseSurfaceModule(Text, &Err);
  EXPECT_TRUE(M.has_value()) << Err;
  return M ? std::move(*M) : Module();
}

void parseFail(const std::string &Text, const std::string &ExpectInError) {
  std::string Err;
  std::optional<Module> M = parseSurfaceModule(Text, &Err);
  EXPECT_FALSE(M.has_value()) << "unexpectedly parsed";
  EXPECT_NE(Err.find(ExpectInError), std::string::npos) << Err;
}

/// Renders the \res value of the first GMA of the only proc.
std::string resultTerm(const std::string &Text) {
  std::string Err;
  std::optional<Module> M = parseSurfaceModule(Text, &Err);
  EXPECT_TRUE(M.has_value()) << Err;
  if (!M)
    return "";
  ir::Context Ctx;
  for (const OpDecl &D : M->OpDecls)
    Ctx.Ops.declareOp(D.Name, static_cast<int>(D.Arity));
  auto Gmas = gma::translateProc(Ctx, M->Procs.at(0), &Err);
  EXPECT_TRUE(Gmas.has_value()) << Err;
  if (!Gmas)
    return "";
  for (const gma::GMA &G : *Gmas)
    for (size_t I = 0; I < G.Targets.size(); ++I)
      if (G.Targets[I] == "\\res")
        return Ctx.Terms.toString(G.NewVals[I]);
  return "(no \\res)";
}

//===----------------------------------------------------------------------===
// Figure 3 verbatim.
//===----------------------------------------------------------------------===

TEST(Surface, Figure3Byteswap4) {
  Module M = parseOk(R"(
\proc byteswap4 : [ a : int ] -> int =
\var r : int \in
r := 0 ;
r<0> := a<3> ;
r<1> := a<2> ;
r<2> := a<1> ;
r<3> := a<0> ;
\res := r
\end
)");
  ASSERT_EQ(M.Procs.size(), 1u);
  EXPECT_EQ(M.Procs[0].Name, "byteswap4");
  ASSERT_EQ(M.Procs[0].Params.size(), 1u);
}

TEST(Surface, Figure3CompilesToFiveCycles) {
  std::string Err;
  std::optional<Module> M = parseSurfaceModule(R"(
\proc byteswap4 : [ a : int ] -> int =
\var r : int \in
r := 0 ;
r<0> := a<3> ;
r<1> := a<2> ;
r<2> := a<1> ;
r<3> := a<0> ;
\res := r
\end
)", &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 8;
  auto Gmas = gma::translateProc(Opt.context(), M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  ASSERT_EQ(Gmas->size(), 1u);
  driver::GmaResult R = Opt.compileGMA((*Gmas)[0]);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Search.Cycles, 5u); // Same as the prototype syntax (E3).
  EXPECT_EQ(Opt.verify(R), std::nullopt);
}

//===----------------------------------------------------------------------===
// Expressions.
//===----------------------------------------------------------------------===

TEST(Surface, Precedence) {
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := a + b * 4
\end
)"), "(add64 a (mul64 b 4))");
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := (a + b) * 4
\end
)"), "(mul64 (add64 a b) 4)");
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := a | b & 255
\end
)"), "(or64 a (and64 b 255))");
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ] -> long =
\res := a << 2 + 1
\end
)"), "(shl64 a (add64 2 1))");
}

TEST(Surface, UnaryOperators) {
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ] -> long =
\res := -a + ~a
\end
)"), "(add64 (neg64 a) (not64 a))");
}

TEST(Surface, Comparisons) {
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := a < b
\end
)"), "(cmplt a b)");
  // '>' swaps operands; '!=' builds the double-cmpeq form.
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := a > b
\end
)"), "(cmplt b a)");
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := a != b
\end
)"), "(cmpeq (cmpeq a b) 0)");
}

TEST(Surface, ByteSelectVsComparison) {
  // a<3> is byte selection; a < 3 + b is a comparison.
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ] -> long =
\res := a<3>
\end
)"), "(selectb a 3)");
  EXPECT_EQ(resultTerm(R"(
\proc f : [ a : long ; b : long ] -> long =
\res := a < 3 + b
\end
)"), "(cmplt a (add64 3 b))");
}

TEST(Surface, DerefAndMiss) {
  EXPECT_EQ(resultTerm(R"(
\proc f : [ p : long* ] -> long =
\res := *p + *(p + 8)
\end
)"), "(add64 (select M p) (select M (add64 p 8)))");
  // Miss annotation is attached (checked through the GMA's MissAddrs).
  std::string Err;
  auto M = parseSurfaceModule(R"(
\proc f : [ p : long* ] -> long =
\res := *(p + 16) \miss
\end
)", &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  ASSERT_EQ((*Gmas)[0].MissAddrs.size(), 1u);
}

TEST(Surface, CallsAndBuiltins) {
  EXPECT_EQ(resultTerm(R"(
\op add : [ long, long ] -> long ;
\proc f : [ a : long ; b : long ] -> long =
\res := add(a, \extwl(b, 0))
\end
)"), "(add a (extwl b 0))");
}

TEST(Surface, CastBothOrders) {
  EXPECT_EQ(resultTerm(R"(
\proc f : [ s : long ] -> short =
\res := \cast(s, short)
\end
)"), "(zext16 s)");
  EXPECT_EQ(resultTerm(R"(
\proc f : [ s : long ] -> short =
\res := \cast(short, s)
\end
)"), "(zext16 s)");
}

TEST(Surface, Ite) {
  EXPECT_EQ(resultTerm(R"(
\proc max : [ a : long ; b : long ] -> long =
\res := \ite(a < b, b, a)
\end
)"), "(cmovne (cmplt a b) b a)");
}

//===----------------------------------------------------------------------===
// Statements.
//===----------------------------------------------------------------------===

TEST(Surface, MultiAssignSimultaneous) {
  std::string Err;
  auto M = parseSurfaceModule(R"(
\proc swap : [ a : long ; b : long ] -> long =
a, b := b, a ;
\res := a
\end
)", &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  for (size_t I = 0; I < (*Gmas)[0].Targets.size(); ++I)
    if ((*Gmas)[0].Targets[I] == "\\res") {
      EXPECT_EQ(Ctx.Terms.toString((*Gmas)[0].NewVals[I]), "b");
    }
}

TEST(Surface, StoreTarget) {
  std::string Err;
  auto M = parseSurfaceModule(R"(
\proc f : [ p : long* ; q : long* ] -> long =
*p := *q
\end
)", &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  bool SawMem = false;
  for (size_t I = 0; I < (*Gmas)[0].Targets.size(); ++I)
    if ((*Gmas)[0].Targets[I] == "M") {
      SawMem = true;
      EXPECT_EQ(Ctx.Terms.toString((*Gmas)[0].NewVals[I]),
                "(store M p (select M q))");
    }
  EXPECT_TRUE(SawMem);
}

TEST(Surface, DoLoopFigure5) {
  std::string Err;
  auto M = parseSurfaceModule(R"(
\op add : [ long, long ] -> long ;
\proc checksum : [ ptr, ptrend : long* ] -> short =
\var sum : long := 0 \in
\do ptr < ptrend ->
    sum := add(sum, *ptr) ; ptr := ptr + 8
\od ;
\res := \cast(sum, short)
\end
)", &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  Ctx.Ops.declareOp("add", 2);
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  ASSERT_EQ(Gmas->size(), 3u); // init, loop body, exit.
  EXPECT_TRUE((*Gmas)[1].Guard.has_value());
}

TEST(Surface, UnrollLoop) {
  std::string Err;
  auto M = parseSurfaceModule(R"(
\proc f : [ p : long* ; r : long* ] -> long =
\do \unroll 2 p < r -> p := p + 8 \od
\end
)", &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  for (size_t I = 0; I < (*Gmas)[0].Targets.size(); ++I)
    if ((*Gmas)[0].Targets[I] == "p") {
      EXPECT_EQ(Ctx.Terms.toString((*Gmas)[0].NewVals[I]),
                "(add64 (add64 p 8) 8)");
    }
}

TEST(Surface, AxiomForall) {
  Module M = parseOk(R"(
\op carry : [ long, long ] -> long ;
\axiom \forall [ a, b ] carry(a, b) = \cmpult(a + b, a) ;
)");
  ASSERT_EQ(M.Axioms.size(), 1u);
  // Builtin references keep their backslash; the axiom loader strips it.
  EXPECT_EQ(M.Axioms[0].toString(),
            "(\\axiom (forall (a b) (eq (carry a b) "
            "(\\cmpult (add64 a b) a))))");
}

TEST(Surface, GroundAxiom) {
  Module M = parseOk(R"(
\axiom reg7 = 0 ;
)");
  ASSERT_EQ(M.Axioms.size(), 1u);
  EXPECT_EQ(M.Axioms[0].toString(), "(\\axiom (eq reg7 0))");
}

TEST(Surface, Comments) {
  Module M = parseOk(R"(
// leading comment
\proc f : [ a : long ] -> long = // trailing
\res := a // another
\end
)");
  EXPECT_EQ(M.Procs.size(), 1u);
}

TEST(Surface, ParseAnyDispatch) {
  std::string Err;
  // Prototype syntax: starts with '('.
  auto A = parseAnyModule(
      R"((\procdecl f ((x long)) long (:= (\res x))))", &Err);
  ASSERT_TRUE(A.has_value()) << Err;
  EXPECT_EQ(A->Procs.size(), 1u);
  // Surface syntax.
  auto B = parseAnyModule("\\proc f : [ x : long ] -> long = \\res := x \\end",
                          &Err);
  ASSERT_TRUE(B.has_value()) << Err;
  EXPECT_EQ(B->Procs.size(), 1u);
}

TEST(Surface, Errors) {
  parseFail("\\proc : [] -> long = \\end", "identifier");
  parseFail("\\proc f [ x : long ] -> long = \\res := x \\end",
            "expected ':'");
  parseFail("\\proc f : [ x : wibble ] -> long = \\res := x \\end",
            "type name");
  parseFail("\\proc f : [ x : long ] -> long = \\res := \\end",
            "builtin reference");
  parseFail("\\proc f : [ x : long ] -> long = x, \\res := x \\end",
            "targets but");
  parseFail("\\proc f : [ x : long ] -> long = \\res := x", "'\\end'");
  parseFail("\\op f : long -> long ;", "'['");
  parseFail("\\axiom \\forall [ a ] a ;", "'='");
  parseFail(R"(
\proc f : [ x : long ] -> long =
\var r : long := 0 \in
r<0>, r<1> := x<1>, x<0> ;
\res := r
\end
)", "two byte-writes");
  parseFail("wibble", "expected \\op");
}

TEST(Surface, TwoByteSwapEndToEnd) {
  // The surface syntax and prototype syntax produce identical results.
  const char *Src = R"(
\proc byteswap2 : [ a : long ] -> long =
\var r : long := 0 \in
r<0> := a<1> ;
r<1> := a<0> ;
\res := r
\end
)";
  std::string Err;
  auto M = parseSurfaceModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  driver::Superoptimizer Opt;
  auto Gmas = gma::translateProc(Opt.context(), M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  driver::GmaResult R = Opt.compileGMA((*Gmas)[0]);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_LE(R.Search.Cycles, 4u);
  EXPECT_EQ(Opt.verify(R), std::nullopt);
}

} // namespace
