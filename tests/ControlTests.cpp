//===- tests/ControlTests.cpp - \assume and \if (if-conversion) -----------===//
//
// The input language "includes higher-level control constructs, such as
// conditionals and loops" and "features by which ... the code generator
// should trust the programmer that certain conditions hold" (section 2).
// \if branches are if-converted through cmov (straight-line code is
// Denali's domain); \assume plants trust facts into the E-graph before
// matching.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "gma/GMA.h"
#include "lang/Parser.h"
#include "lang/Surface.h"

#include <gtest/gtest.h>

using namespace denali;

namespace {

std::string valueOf(const ir::Context &Ctx, const gma::GMA &G,
                    const std::string &Target) {
  for (size_t I = 0; I < G.Targets.size(); ++I)
    if (G.Targets[I] == Target)
      return Ctx.Terms.toString(G.NewVals[I]);
  return "(absent)";
}

//===----------------------------------------------------------------------===
// \if — if-conversion.
//===----------------------------------------------------------------------===

TEST(IfConversion, MergesThroughCmov) {
  const char *Src = R"(
(\procdecl absdiff ((a long) (b long)) long
  (\var (r long 0)
  (\semi
    (\if (\cmpult a b)
      (:= (r (\sub64 b a)))
      (:= (r (\sub64 a b))))
    (:= (\res r)))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  EXPECT_EQ(valueOf(Ctx, (*Gmas)[0], "\\res"),
            "(cmovne (cmpult a b) (sub64 b a) (sub64 a b))");
}

TEST(IfConversion, ThenOnlyKeepsOldValueInElse) {
  const char *Src = R"(
(\procdecl clamp ((x long) (hi long)) long
  (\var (r long 0)
  (\semi
    (:= (r x))
    (\if (\cmpult hi x) (:= (r hi)))
    (:= (\res r)))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  EXPECT_EQ(valueOf(Ctx, (*Gmas)[0], "\\res"),
            "(cmovne (cmpult hi x) hi x)");
}

TEST(IfConversion, EndToEndVerified) {
  const char *Src = R"(
(\procdecl absdiff ((a long) (b long)) long
  (\var (r long 0)
  (\semi
    (\if (\cmpult a b)
      (:= (r (\sub64 b a)))
      (:= (r (\sub64 a b))))
    (:= (\res r)))))
)";
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_EQ(Opt.verify(R.Gmas[0], 24), std::nullopt);
  // cmpult, two subs, one cmov: 3 cycles (subs overlap the compare).
  EXPECT_LE(R.Gmas[0].Search.Cycles, 3u);
}

TEST(IfConversion, BranchAgreementNeedsNoCmov) {
  const char *Src = R"(
(\procdecl same ((a long) (c long)) long
  (\var (r long 0)
  (\semi
    (\if c (:= (r (\add64 a 1))) (:= (r (\add64 a 1))))
    (:= (\res r)))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  EXPECT_EQ(valueOf(Ctx, (*Gmas)[0], "\\res"), "(add64 a 1)");
}

TEST(IfConversion, StoresRejected) {
  const char *Src = R"(
(\procdecl f ((p (\ref long)) (c long)) long
  (\if c (:= ((\deref p) 1))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  EXPECT_FALSE(Gmas.has_value());
  EXPECT_NE(Err.find("if-convert"), std::string::npos);
}

TEST(IfConversion, NestedControlRejected) {
  const char *Src = R"(
(\procdecl f ((p (\ref long)) (r (\ref long)) (c long)) long
  (\if c (\do (-> (\cmpult p r) (:= (p (+ p 8)))))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  EXPECT_FALSE(Gmas.has_value());
  EXPECT_NE(Err.find("not supported"), std::string::npos);
}

TEST(IfConversion, SurfaceSyntax) {
  const char *Src = R"(
\proc max : [ a, b : long ] -> long =
\var r : long := a \in
\if a < b -> r := b \fi ;
\res := r
\end
)";
  std::string Err;
  auto M = lang::parseSurfaceModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  EXPECT_EQ(valueOf(Ctx, (*Gmas)[0], "\\res"),
            "(cmovne (cmplt a b) b a)");
}

TEST(IfConversion, SurfaceElseBranch) {
  const char *Src = R"(
\proc pick : [ a, b, c : long ] -> long =
\var r : long := 0 \in
\if c -> r := a \else r := b \fi ;
\res := r
\end
)";
  std::string Err;
  auto M = lang::parseSurfaceModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  EXPECT_EQ(valueOf(Ctx, (*Gmas)[0], "\\res"), "(cmovne c a b)");
}

//===----------------------------------------------------------------------===
// \assume — trust facts.
//===----------------------------------------------------------------------===

TEST(Assume, CollectedIntoGma) {
  const char *Src = R"(
(\procdecl f ((p (\ref long)) (tag long)) long
  (\semi
    (\assume (eq (\and64 p 7) 0))
    (:= (\res (\or64 p tag)))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  ASSERT_EQ((*Gmas)[0].Assumptions.size(), 1u);
  EXPECT_TRUE((*Gmas)[0].Assumptions[0].IsEq);
  EXPECT_EQ(Ctx.Terms.toString((*Gmas)[0].Assumptions[0].Lhs),
            "(and64 p 7)");
}

TEST(Assume, EnablesSimplification) {
  // Assuming x = 0, x + y collapses to y: zero cycles.
  const char *Src = R"(
(\procdecl f ((x long) (y long)) long
  (\semi
    (\assume (eq x 0))
    (:= (\res (\add64 x y)))))
)";
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_EQ(R.Gmas[0].Search.Cycles, 0u);
}

TEST(Assume, DistinctnessResolvesSelectStore) {
  // Assuming p != q, the load from q can bypass the store to p even
  // though the offset oracle cannot prove it.
  const char *Src = R"(
(\procdecl f ((p (\ref long)) (q (\ref long)) (x long)) long
  (\semi
    (\assume (neq p q))
    (:= ((\deref p) x))
    (:= (\res (\deref q)))))
)";
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_EQ(R.Gmas[0].Search.Cycles, 3u); // Load overlaps the store.
  // Verification: the assumption holds only when p != q; generic random
  // inputs satisfy it with overwhelming probability.
  EXPECT_EQ(Opt.verify(R.Gmas[0]), std::nullopt);
}

TEST(Assume, ContradictionReported) {
  const char *Src = R"(
(\procdecl f ((x long)) long
  (\semi
    (\assume (eq x 0))
    (\assume (neq x 0))
    (:= (\res x))))
)";
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Gmas[0].ok());
  EXPECT_NE(R.Gmas[0].Error.find("assume"), std::string::npos);
}

TEST(Assume, SurfaceSyntax) {
  const char *Src = R"(
\proc f : [ x, y : long ] -> long =
\assume x = 0 ;
\res := x + y
\end
)";
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_EQ(R.Gmas[0].Search.Cycles, 0u);
}

} // namespace

namespace {

TEST(Assume, VerifyHonorsVarConstAssumptions) {
  // The generated code relies on x = 0; verify must test under that
  // constraint rather than reporting a spurious mismatch.
  const char *Src = R"(
(\procdecl f ((x long) (y long)) long
  (\semi
    (\assume (eq x 0))
    (:= (\res (\add64 x y)))))
)";
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_EQ(Opt.verify(R.Gmas[0], 16), std::nullopt);
}

} // namespace
