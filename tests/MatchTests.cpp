//===- tests/MatchTests.cpp - axiom parsing, e-matching, saturation -------===//

#include "axioms/BuiltinAxioms.h"
#include "egraph/Analysis.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "sexpr/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace denali;
using namespace denali::match;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

Axiom parseOk(ir::Context &Ctx, const std::string &Text) {
  sexpr::ParseResult R = sexpr::parseOne(Text);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->toString() : "");
  std::string Err;
  std::optional<Axiom> A = parseAxiom(Ctx, R.Forms[0], &Err);
  EXPECT_TRUE(A.has_value()) << Err;
  return A ? std::move(*A) : Axiom();
}

void parseFail(ir::Context &Ctx, const std::string &Text,
               const std::string &ExpectInError) {
  sexpr::ParseResult R = sexpr::parseOne(Text);
  ASSERT_TRUE(R.ok());
  std::string Err;
  std::optional<Axiom> A = parseAxiom(Ctx, R.Forms[0], &Err);
  EXPECT_FALSE(A.has_value());
  EXPECT_NE(Err.find(ExpectInError), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===
// Axiom parsing.
//===----------------------------------------------------------------------===

TEST(AxiomParse, Commutativity) {
  ir::Context Ctx;
  Axiom A = parseOk(
      Ctx, R"((\axiom (forall (x y) (eq (\add64 x y) (\add64 y x)))))");
  EXPECT_EQ(A.VarNames.size(), 2u);
  ASSERT_EQ(A.Body.size(), 1u);
  EXPECT_TRUE(A.Body[0].IsEq);
  EXPECT_EQ(A.Triggers.size(), 2u); // Both sides bind all variables.
}

TEST(AxiomParse, ExplicitPats) {
  ir::Context Ctx;
  Axiom A = parseOk(Ctx, R"((\axiom (forall (a b) (pats (\add64 a b))
                              (eq (\add64 a b) (\add64 b a)))))");
  EXPECT_EQ(A.Triggers.size(), 1u);
}

TEST(AxiomParse, IdentityUsesAppSideOnly) {
  ir::Context Ctx;
  Axiom A = parseOk(Ctx, R"((\axiom (forall (x) (eq (\or64 x 0) x))))");
  EXPECT_EQ(A.Triggers.size(), 1u); // The bare-variable side is unusable.
}

TEST(AxiomParse, Clause) {
  ir::Context Ctx;
  Axiom A = parseOk(Ctx,
                    R"((\axiom (forall (a i j x)
                        (pats (\select (\store a i x) j))
                        (or (eq i j)
                            (eq (\select (\store a i x) j) (\select a j))))))");
  EXPECT_EQ(A.Body.size(), 2u);
  EXPECT_EQ(A.Triggers.size(), 1u);
}

TEST(AxiomParse, Distinction) {
  ir::Context Ctx;
  Axiom A = parseOk(
      Ctx, R"((\axiom (forall (x) (pats (\neg64 x)) (neq (\neg64 x) 1))))");
  ASSERT_EQ(A.Body.size(), 1u);
  EXPECT_FALSE(A.Body[0].IsEq);
}

TEST(AxiomParse, Unquantified) {
  ir::Context Ctx;
  Ctx.Ops.makeVariable("reg7");
  Axiom A = parseOk(Ctx, R"((\axiom (eq reg7 0)))");
  EXPECT_TRUE(A.VarNames.empty());
  EXPECT_TRUE(A.Triggers.empty()); // Ground facts need no trigger.
}

TEST(AxiomParse, UnknownOperator) {
  ir::Context Ctx;
  parseFail(Ctx, R"((\axiom (forall (x) (eq (\frobnicate x) x))))",
            "unknown operator");
}

TEST(AxiomParse, ArityMismatch) {
  ir::Context Ctx;
  parseFail(Ctx, R"((\axiom (forall (x) (eq (\add64 x) x))))", "arguments");
}

TEST(AxiomParse, TriggerMustBindAllVars) {
  ir::Context Ctx;
  parseFail(Ctx,
            R"((\axiom (forall (x y) (pats (\neg64 x))
                 (eq (\neg64 x) (\neg64 y)))))",
            "bind every");
}

TEST(AxiomParse, NoUsableTrigger) {
  ir::Context Ctx;
  parseFail(Ctx, R"((\axiom (forall (x y) (eq x y))))", "no usable trigger");
}

TEST(AxiomParse, DeclaredOpInAxiom) {
  ir::Context Ctx;
  Ctx.Ops.declareOp("carry", 2);
  Axiom A = parseOk(Ctx,
                    R"((\axiom (forall (a b) (pats (carry a b))
                        (eq (carry a b) (\cmpult (\add64 a b) a)))))");
  EXPECT_EQ(A.Triggers.size(), 1u);
}

//===----------------------------------------------------------------------===
// Definitional-axiom extraction (drives the reference evaluator).
//===----------------------------------------------------------------------===

TEST(ExtractDefinition, CarryDefinition) {
  ir::Context Ctx;
  Ctx.Ops.declareOp("carry", 2);
  Axiom A = parseOk(Ctx,
                    R"((\axiom (forall (a b) (pats (carry a b))
                        (eq (carry a b) (\cmpult (\add64 a b) a)))))");
  auto Def = extractDefinition(Ctx, A);
  ASSERT_TRUE(Def.has_value());
  EXPECT_EQ(Ctx.Ops.info(Def->first).Name, "carry");
  // Evaluate carry(~0, 1) through the definition: expect 1.
  ir::Definitions Defs;
  Defs[Def->first] = Def->second;
  ir::TermId T = Ctx.Terms.make(
      Def->first, {Ctx.Terms.makeConst(~0ULL), Ctx.Terms.makeConst(1)});
  auto V = ir::evalTerm(Ctx.Terms, T, {}, &Defs);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->asInt(), 1u);
}

TEST(ExtractDefinition, RejectsNonDefinitional) {
  ir::Context Ctx;
  // Commutativity of a builtin is not a definition.
  Axiom A = parseOk(
      Ctx, R"((\axiom (forall (x y) (eq (\add64 x y) (\add64 y x)))))");
  EXPECT_FALSE(extractDefinition(Ctx, A).has_value());
  // Repeated variables on the lhs are not definitional.
  Ctx.Ops.declareOp("dup", 2);
  Axiom B = parseOk(Ctx, R"((\axiom (forall (x) (pats (dup x x))
                               (eq (dup x x) x))))");
  EXPECT_FALSE(extractDefinition(Ctx, B).has_value());
}

//===----------------------------------------------------------------------===
// Saturation: the Figure 2 walkthrough and friends.
//===----------------------------------------------------------------------===

class SaturationTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  EGraph G{Ctx};

  Matcher makeMatcher() {
    Matcher M(axioms::loadBuiltinAxioms(Ctx));
    for (Elaborator &E : standardElaborators())
      M.addElaborator(std::move(E));
    return M;
  }

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &Name) {
    return G.addNode(Ctx.Ops.makeVariable(Name), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  bool classHasOp(ClassId C, Builtin B) {
    for (ENodeId N : G.classNodes(C))
      if (G.node(N).Op == Ctx.Ops.builtin(B))
        return true;
    return false;
  }
};

TEST_F(SaturationTest, Figure2Chain) {
  // Goal: reg6*4 + 1. After saturation the goal class must contain the
  // single-instruction alternative s4addl(reg6, 1), and reg6*4's class must
  // contain the shift alternative reg6 << 2.
  ClassId Mul = app(Builtin::Mul64, {v("reg6"), c(4)});
  ClassId Goal = app(Builtin::Add64, {Mul, c(1)});
  Matcher M = makeMatcher();
  MatchStats Stats = M.saturate(G);
  EXPECT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  EXPECT_TRUE(Stats.Quiesced);
  // 4 = 2**2 was introduced (Figure 2b).
  EXPECT_TRUE(classHasOp(c(4), Builtin::Pow));
  // reg6 << 2 joined the multiply's class (Figure 2c).
  EXPECT_TRUE(classHasOp(Mul, Builtin::Shl64));
  // s4addl joined the goal class (Figure 2d).
  EXPECT_TRUE(classHasOp(Goal, Builtin::S4Addl));
}

TEST_F(SaturationTest, Figure2Soundness) {
  ClassId Mul = app(Builtin::Mul64, {v("reg6"), c(4)});
  ClassId Goal = app(Builtin::Add64, {Mul, c(1)});
  (void)Goal;
  Matcher M = makeMatcher();
  M.saturate(G);
  // Every class value must be consistent under random environments.
  for (uint64_t Seed : {1ULL, 42ULL, 0xdeadULL}) {
    ir::Env E;
    E[Ctx.Ops.makeVariable("reg6")] =
        ir::Value::makeInt(Seed * 0x9e3779b97f4a7c15ULL);
    ClassValuation CV = evaluateClasses(G, E);
    EXPECT_TRUE(CV.sound()) << CV.Violations.front();
  }
}

TEST_F(SaturationTest, AcSumWays) {
  // The paper: the matcher finds more than a hundred ways of computing
  // a + b + c + d + e via commutativity and associativity.
  ClassId Sum = app(
      Builtin::Add64,
      {app(Builtin::Add64,
           {app(Builtin::Add64,
                {app(Builtin::Add64, {v("a"), v("b")}), v("c")}),
            v("d")}),
       v("e")});
  Matcher M = makeMatcher();
  MatchLimits Limits;
  Limits.MaxNodes = 40000;
  M.saturate(G, Limits);
  EXPECT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  uint64_t Ways = countComputations(G, Sum);
  EXPECT_GT(Ways, 100u) << "paper reports >100 ways";
}

TEST_F(SaturationTest, SelectStoreReordering) {
  // Store to p, load from p+8: saturation must discover that the load can
  // be performed against the original memory (reorder freedom).
  ClassId MVar = v("M");
  ClassId P = v("p");
  ClassId X = v("xv");
  ClassId P8 = app(Builtin::Add64, {P, c(8)});
  ClassId StoreT = app(Builtin::Store, {MVar, P, X});
  ClassId LoadAfter = app(Builtin::Select, {StoreT, P8});
  ClassId LoadBefore = app(Builtin::Select, {MVar, P8});
  Matcher M = makeMatcher();
  M.saturate(G);
  EXPECT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  EXPECT_TRUE(G.sameClass(LoadAfter, LoadBefore));
}

TEST_F(SaturationTest, SelectStoreSameAddress) {
  // Load from the stored address: must equal the stored value.
  ClassId MVar = v("M");
  ClassId P = v("p");
  ClassId X = v("xv");
  ClassId StoreT = app(Builtin::Store, {MVar, P, X});
  ClassId Load = app(Builtin::Select, {StoreT, P});
  Matcher M = makeMatcher();
  M.saturate(G);
  EXPECT_TRUE(G.sameClass(Load, X));
}

TEST_F(SaturationTest, ByteswapDiscoversInsblExtbl) {
  // r = storeb(storeb(0, 0, selectb(a,1)), 1, selectb(a,0)) — a 2-byte
  // swap. Saturation must produce or/insbl/extbl decompositions.
  ClassId A = v("a");
  ClassId R0 = app(Builtin::StoreB, {c(0), c(0), app(Builtin::SelectB, {A, c(1)})});
  ClassId R = app(Builtin::StoreB, {R0, c(1), app(Builtin::SelectB, {A, c(0)})});
  Matcher M = makeMatcher();
  MatchStats Stats = M.saturate(G);
  (void)Stats;
  EXPECT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  // The top class gains an or64 alternative (mskbl/insbl combination).
  EXPECT_TRUE(classHasOp(R, Builtin::Or64));
  // selectb(a, i) classes gain extbl alternatives.
  ClassId Sel1 = app(Builtin::SelectB, {A, c(1)});
  EXPECT_TRUE(classHasOp(Sel1, Builtin::Extbl));
  // Soundness under random inputs.
  ir::Env E;
  E[Ctx.Ops.makeVariable("a")] = ir::Value::makeInt(0x1122334455667788ULL);
  ClassValuation CV = evaluateClasses(G, E);
  EXPECT_TRUE(CV.sound()) << (CV.sound() ? "" : CV.Violations.front());
  // And the swap value is right.
  auto It = CV.Values.find(G.find(R));
  ASSERT_NE(It, CV.Values.end());
  EXPECT_EQ(It->second.asInt(), 0x8877ULL); // Bytes of 0x...7788 swapped.
}

TEST_F(SaturationTest, ZapnotFromMask) {
  // and64(x, 0xffff) should gain a zapnot(x, 3) alternative via the
  // byte-mask elaborator.
  ClassId T = app(Builtin::And64, {v("x"), c(0xffff)});
  Matcher M = makeMatcher();
  M.saturate(G);
  EXPECT_TRUE(classHasOp(T, Builtin::Zapnot));
}

TEST_F(SaturationTest, CarryAxiomsFromProgram) {
  // The checksum program's local axioms (Figure 6).
  ir::OpId CarryOp = Ctx.Ops.declareOp("carry", 2);
  ir::OpId AddOp = Ctx.Ops.declareOp("add", 2);
  (void)AddOp;
  const char *Text = R"(
    (\axiom (forall (a b) (pats (carry a b))
      (eq (carry a b) (\cmpult (\add64 a b) a))))
    (\axiom (forall (a b) (pats (carry a b))
      (eq (carry a b) (\cmpult (\add64 a b) b))))
    (\axiom (forall (a b) (pats (add a b))
      (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
  )";
  std::string Err;
  auto ProgAxioms = axioms::parseAxiomsText(Ctx, Text, &Err);
  ASSERT_TRUE(ProgAxioms.has_value()) << Err;
  std::vector<Axiom> All = axioms::loadBuiltinAxioms(Ctx);
  for (Axiom &A : *ProgAxioms)
    All.push_back(std::move(A));
  Matcher M{std::move(All)};
  for (Elaborator &E : standardElaborators())
    M.addElaborator(std::move(E));

  ClassId Sum = G.addNode(Ctx.Ops.declareOp("add", 2), {v("s"), v("w")});
  M.saturate(G);
  EXPECT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  // add(s, w) must now have a machine-computable alternative:
  // add64(add64(s, w), cmpult(add64(s, w), s)).
  EXPECT_TRUE(classHasOp(Sum, Builtin::Add64));
  ClassId Carry = G.addNode(CarryOp, {v("s"), v("w")});
  EXPECT_TRUE(classHasOp(Carry, Builtin::CmpUlt));
}

TEST_F(SaturationTest, GroundAxiom) {
  // Program-specific ground fact: reg7 = 0 (a \trust-style assumption).
  ClassId R7 = v("reg7");
  ClassId T = app(Builtin::Add64, {v("x"), R7});
  std::string Err;
  auto Ax = axioms::parseAxiomsText(Ctx, R"((\axiom (eq reg7 0)))", &Err);
  ASSERT_TRUE(Ax.has_value()) << Err;
  std::vector<Axiom> All = axioms::loadBuiltinAxioms(Ctx);
  for (Axiom &A : *Ax)
    All.push_back(std::move(A));
  Matcher M{std::move(All)};
  M.saturate(G);
  // x + reg7 collapses to x by the identity axiom.
  EXPECT_TRUE(G.sameClass(T, v("x")));
}

TEST_F(SaturationTest, QuiescenceOnEmptyGraph) {
  Matcher M = makeMatcher();
  MatchStats Stats = M.saturate(G);
  EXPECT_TRUE(Stats.Quiesced);
  EXPECT_EQ(Stats.InstancesAsserted, 0u);
}

TEST_F(SaturationTest, FuelLimitStopsExplosion) {
  // A 8-operand sum under AC axioms explodes; the node cap must stop it.
  ClassId Sum = v("a0");
  for (int I = 1; I < 8; ++I)
    Sum = app(Builtin::Add64, {Sum, v("a" + std::to_string(I))});
  Matcher M = makeMatcher();
  MatchLimits Limits;
  Limits.MaxNodes = 2000;
  MatchStats Stats = M.saturate(G, Limits);
  EXPECT_FALSE(Stats.Quiesced);
  EXPECT_LE(G.numNodes(), Limits.MaxNodes + 4096); // Rebuild slack.
}

//===----------------------------------------------------------------------===
// Saturation soundness sweep: random small term DAGs, saturate, evaluate
// all classes under several environments, expect zero violations.
//===----------------------------------------------------------------------===

class SaturationSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(SaturationSoundness, RandomDags) {
  std::mt19937 Rng(GetParam() * 2654435761u + 1);
  ir::Context Ctx;
  EGraph G(Ctx);
  std::vector<ClassId> Pool;
  for (int I = 0; I < 3; ++I)
    Pool.push_back(
        G.addNode(Ctx.Ops.makeVariable("v" + std::to_string(I)), {}));
  Pool.push_back(G.addConst(Rng() & 0xff));
  Pool.push_back(G.addConst(4));
  const Builtin Ops[] = {Builtin::Add64,  Builtin::Sub64,  Builtin::Mul64,
                         Builtin::And64,  Builtin::Or64,   Builtin::Xor64,
                         Builtin::Shl64,  Builtin::SelectB, Builtin::StoreB,
                         Builtin::CmpUlt, Builtin::Zapnot};
  for (int Step = 0; Step < 10; ++Step) {
    Builtin B = Ops[Rng() % std::size(Ops)];
    int Arity = B == Builtin::StoreB ? 3 : 2;
    std::vector<ClassId> Args;
    for (int I = 0; I < Arity; ++I)
      Args.push_back(Pool[Rng() % Pool.size()]);
    Pool.push_back(G.addNode(Ctx.Ops.builtin(B), Args));
  }
  Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (Elaborator &E : standardElaborators())
    M.addElaborator(std::move(E));
  MatchLimits Limits;
  Limits.MaxNodes = 8000;
  M.saturate(G, Limits);
  ASSERT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  for (int Trial = 0; Trial < 3; ++Trial) {
    ir::Env E;
    for (int I = 0; I < 3; ++I)
      E[Ctx.Ops.makeVariable("v" + std::to_string(I))] =
          ir::Value::makeInt(Rng() * 0x9e3779b97f4a7c15ULL + Rng());
    ClassValuation CV = evaluateClasses(G, E);
    EXPECT_TRUE(CV.sound())
        << "seed " << GetParam() << ": " << CV.Violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaturationSoundness, ::testing::Range(0u, 15u));

} // namespace
