//===- tests/SatTests.cpp - CDCL solver unit & property tests -------------===//

#include "sat/Dimacs.h"
#include "sat/Encodings.h"
#include "sat/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace denali;
using namespace denali::sat;

namespace {

Lit P(Solver &S, int V) {
  while (S.numVars() <= V)
    S.newVar();
  return Lit::pos(V);
}
Lit N(Solver &S, int V) { return ~P(S, V); }

TEST(Solver, TrivialSat) {
  Solver S;
  S.addClause(P(S, 0));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(0));
}

TEST(Solver, TrivialUnsat) {
  Solver S;
  S.addClause(P(S, 0));
  EXPECT_FALSE(S.addClause(N(S, 0)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver S;
  EXPECT_FALSE(S.addClause(ClauseLits{}));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, NoClausesSat) {
  Solver S;
  S.newVar();
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(Solver, TautologyIgnored) {
  Solver S;
  S.addClause(ClauseLits{P(S, 0), N(S, 0)});
  S.addClause(N(S, 0));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_FALSE(S.modelValue(0));
}

TEST(Solver, DuplicateLiteralsNormalized) {
  Solver S;
  S.addClause(ClauseLits{P(S, 0), P(S, 0), P(S, 0)});
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(0));
}

TEST(Solver, UnitChain) {
  // x0 & (x0->x1) & (x1->x2) ... forces a long implication chain.
  Solver S;
  S.addClause(P(S, 0));
  for (int I = 0; I < 50; ++I)
    S.addClause(N(S, I), P(S, I + 1));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  for (int I = 0; I <= 50; ++I)
    EXPECT_TRUE(S.modelValue(I)) << "var " << I;
}

TEST(Solver, ImplicationChainUnsat) {
  Solver S;
  S.addClause(P(S, 0));
  for (int I = 0; I < 20; ++I)
    S.addClause(N(S, I), P(S, I + 1));
  S.addClause(N(S, 20));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonHole32) {
  // 3 pigeons, 2 holes: classic small UNSAT requiring real search.
  Solver S;
  auto VarOf = [&](int Pigeon, int Hole) { return Pigeon * 2 + Hole; };
  for (int Pigeon = 0; Pigeon < 3; ++Pigeon)
    S.addClause(P(S, VarOf(Pigeon, 0)), P(S, VarOf(Pigeon, 1)));
  for (int Hole = 0; Hole < 2; ++Hole)
    for (int P1 = 0; P1 < 3; ++P1)
      for (int P2 = P1 + 1; P2 < 3; ++P2)
        S.addClause(N(S, VarOf(P1, Hole)), N(S, VarOf(P2, Hole)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonHole54) {
  // 5 pigeons, 4 holes: forces clause learning through deeper search.
  Solver S;
  const int Holes = 4, Pigeons = 5;
  auto VarOf = [&](int Pigeon, int Hole) { return Pigeon * Holes + Hole; };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    ClauseLits Row;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Row.push_back(P(S, VarOf(Pigeon, Hole)));
    S.addClause(Row);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(N(S, VarOf(P1, Hole)), N(S, VarOf(P2, Hole)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(Solver, XorChainSat) {
  // Parity constraints encoded as CNF over a chain; satisfiable.
  Solver S;
  const int Chain = 12;
  for (int I = 0; I < Chain; ++I) {
    // x(I) xor x(I+1) = aux(I), with aux all forced true.
    int A = I, B = I + 1, X = Chain + 1 + I;
    S.addClause(N(S, A), N(S, B), N(S, X));
    S.addClause(P(S, A), P(S, B), N(S, X));
    S.addClause(P(S, A), N(S, B), P(S, X));
    S.addClause(N(S, A), P(S, B), P(S, X));
    S.addClause(P(S, X));
  }
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  // Verify the parity relation in the model.
  for (int I = 0; I < Chain; ++I)
    EXPECT_NE(S.modelValue(I), S.modelValue(I + 1));
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole with a tiny budget must report Unknown.
  Solver S;
  const int Holes = 8, Pigeons = 9;
  auto VarOf = [&](int Pigeon, int Hole) { return Pigeon * Holes + Hole; };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    ClauseLits Row;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Row.push_back(P(S, VarOf(Pigeon, Hole)));
    S.addClause(Row);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(N(S, VarOf(P1, Hole)), N(S, VarOf(P2, Hole)));
  S.setConflictBudget(5);
  EXPECT_EQ(S.solve(), SolveResult::Unknown);
}

//===----------------------------------------------------------------------===
// Incremental solving under assumptions.
//===----------------------------------------------------------------------===

TEST(Assumptions, SatAndUnsatOnOneSolver) {
  Solver S;
  S.addClause(P(S, 0), P(S, 1)); // x0 v x1
  EXPECT_EQ(S.solve({N(S, 0)}), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(1));
  EXPECT_EQ(S.solve({N(S, 0), N(S, 1)}), SolveResult::Unsat);
  // The same solver keeps working after an assumption refutation.
  EXPECT_EQ(S.solve({P(S, 0)}), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(0));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(Assumptions, FailedAssumptionSetIsRelevantSubset) {
  // x0 -> x1 -> x2; assuming {x0, ~x2, x3} fails because of x0 and ~x2
  // only — x3 is irrelevant and must not appear in the final conflict.
  Solver S;
  S.addClause(N(S, 0), P(S, 1));
  S.addClause(N(S, 1), P(S, 2));
  (void)P(S, 3);
  ASSERT_EQ(S.solve({Lit::pos(0), Lit::neg(2), Lit::pos(3)}),
            SolveResult::Unsat);
  const ClauseLits &Conflict = S.conflict();
  ASSERT_FALSE(Conflict.empty());
  for (Lit L : Conflict) {
    // Every literal is the negation of a responsible assumption.
    EXPECT_TRUE(L == Lit::neg(0) || L == Lit::pos(2));
  }
  // Both responsible assumptions are reported.
  EXPECT_EQ(Conflict.size(), 2u);
}

TEST(Assumptions, ContradictoryAssumptions) {
  Solver S;
  (void)P(S, 0);
  EXPECT_EQ(S.solve({Lit::pos(0), Lit::neg(0)}), SolveResult::Unsat);
  for (Lit L : S.conflict())
    EXPECT_EQ(L.var(), 0);
}

TEST(Assumptions, RepeatedSolvesKeepModels) {
  // An 8-var ring of implications; assumptions flip the whole ring.
  Solver S;
  const int NumVars = 8;
  for (int I = 0; I < NumVars; ++I) {
    S.addClause(N(S, I), P(S, (I + 1) % NumVars));
    S.addClause(P(S, I), N(S, (I + 1) % NumVars));
  }
  for (int Round = 0; Round < 4; ++Round) {
    bool Phase = Round & 1;
    ASSERT_EQ(S.solve({Lit(0, /*Negative=*/!Phase)}), SolveResult::Sat);
    for (int I = 0; I < NumVars; ++I)
      EXPECT_EQ(S.modelValue(I), Phase) << "round " << Round << " var " << I;
  }
  EXPECT_EQ(S.solve({Lit::pos(0), Lit::neg(4)}), SolveResult::Unsat);
}

TEST(Assumptions, AddClausesBetweenSolves) {
  Solver S;
  S.addClause(P(S, 0), P(S, 1), P(S, 2));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  S.addClause(N(S, 0));
  ASSERT_EQ(S.solve({Lit::neg(1)}), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(2));
  S.addClause(N(S, 2));
  EXPECT_EQ(S.solve({Lit::neg(1)}), SolveResult::Unsat);
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(1));
}

TEST(Assumptions, ConflictBudgetIsPerCall) {
  // A hard pigeonhole: each tiny-budget call must give up on its own
  // budget (the counter resets per call, it is not a lifetime cap), and
  // an unlimited call on the same solver still finishes the refutation.
  Solver S;
  const int Holes = 8, Pigeons = 9;
  auto VarOf = [&](int Pigeon, int Hole) { return Pigeon * Holes + Hole; };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    ClauseLits Row;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Row.push_back(P(S, VarOf(Pigeon, Hole)));
    S.addClause(Row);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(N(S, VarOf(P1, Hole)), N(S, VarOf(P2, Hole)));
  S.setConflictBudget(5);
  EXPECT_EQ(S.solve({Lit::pos(VarOf(0, 0))}), SolveResult::Unknown);
  EXPECT_EQ(S.solve({Lit::pos(VarOf(0, 1))}), SolveResult::Unknown);
  S.setConflictBudget(0);
  EXPECT_EQ(S.solve({Lit::pos(VarOf(0, 0))}), SolveResult::Unsat);
}

TEST(Assumptions, InterruptWindsDownSolve) {
  Solver S;
  const int Holes = 8, Pigeons = 9;
  auto VarOf = [&](int Pigeon, int Hole) { return Pigeon * Holes + Hole; };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    ClauseLits Row;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Row.push_back(P(S, VarOf(Pigeon, Hole)));
    S.addClause(Row);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(N(S, VarOf(P1, Hole)), N(S, VarOf(P2, Hole)));
  std::atomic<bool> Cancel(true); // Cancelled before the call even starts.
  S.setInterrupt(&Cancel);
  EXPECT_EQ(S.solve({Lit::pos(VarOf(0, 0))}), SolveResult::Unknown);
  EXPECT_TRUE(S.interrupted());
  Cancel = false;
  EXPECT_EQ(S.solve({Lit::pos(VarOf(0, 0))}), SolveResult::Unsat);
  EXPECT_FALSE(S.interrupted());
}

TEST(Solver, ArenaCompactionKeepsRefutation) {
  // Pigeonhole 9-into-8 takes ~17k conflicts, enough for reduceDB to free
  // learnt clauses worth more than a third of the arena several times —
  // each time the arena is compacted in place (watcher and reason cross
  // references remapped) and the refutation must still come out.
  Solver S;
  const int Holes = 8, Pigeons = 9;
  auto VarOf = [&](int Pigeon, int Hole) { return Pigeon * Holes + Hole; };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    ClauseLits Row;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Row.push_back(P(S, VarOf(Pigeon, Hole)));
    S.addClause(Row);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(N(S, VarOf(P1, Hole)), N(S, VarOf(P2, Hole)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().ArenaCollections, 0u);
  EXPECT_GT(S.stats().ArenaWordsReclaimed, 0u);
}

TEST(Assumptions, AgreesWithFreshSolverOnRandomCnf) {
  // Property: solve(assumptions) equals a fresh solve of CNF + assumption
  // units, across a ladder of assumption sets on one long-lived solver.
  for (unsigned Seed = 0; Seed < 20; ++Seed) {
    std::mt19937 Rng(Seed * 7919 + 13);
    const int NumVars = 12;
    const int NumClauses = 51;
    std::vector<ClauseLits> Clauses;
    for (int I = 0; I < NumClauses; ++I) {
      ClauseLits C;
      for (int J = 0; J < 3; ++J)
        C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() & 1));
      Clauses.push_back(C);
    }
    Solver Inc;
    for (int I = 0; I < NumVars; ++I)
      Inc.newVar();
    for (const ClauseLits &C : Clauses)
      Inc.addClause(C);
    for (int Probe = 0; Probe < 6; ++Probe) {
      std::vector<Lit> Assumptions;
      for (int J = 0; J < 1 + Probe % 3; ++J)
        Assumptions.push_back(
            Lit(static_cast<Var>(Rng() % NumVars), Rng() & 1));
      Solver Fresh;
      for (int I = 0; I < NumVars; ++I)
        Fresh.newVar();
      for (const ClauseLits &C : Clauses)
        Fresh.addClause(C);
      for (Lit A : Assumptions)
        Fresh.addClause(A);
      EXPECT_EQ(Inc.solve(Assumptions), Fresh.solve())
          << "seed " << Seed << " probe " << Probe;
    }
  }
}

//===----------------------------------------------------------------------===
// Model validity: every Sat answer must actually satisfy all clauses.
//===----------------------------------------------------------------------===

bool modelSatisfies(const Solver &S, const std::vector<ClauseLits> &Clauses) {
  for (const ClauseLits &C : Clauses) {
    bool Any = false;
    for (Lit L : C)
      Any |= S.modelValue(L);
    if (!Any)
      return false;
  }
  return true;
}

/// Brute-force SAT check for up to ~20 variables.
bool bruteForceSat(int NumVars, const std::vector<ClauseLits> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool AllSat = true;
    for (const ClauseLits &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        Any |= L.negative() ? !V : V;
      }
      if (!Any) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

class RandomCnf : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  const int NumVars = 12;
  // Near the 3-SAT phase transition (~4.26 clauses/var) both outcomes occur.
  const int NumClauses = 51;
  std::vector<ClauseLits> Clauses;
  for (int I = 0; I < NumClauses; ++I) {
    ClauseLits C;
    for (int J = 0; J < 3; ++J)
      C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() & 1));
    Clauses.push_back(C);
  }
  Solver S;
  for (int I = 0; I < NumVars; ++I)
    S.newVar();
  for (const ClauseLits &C : Clauses)
    S.addClause(C);
  SolveResult R = S.solve();
  bool Expected = bruteForceSat(NumVars, Clauses);
  EXPECT_EQ(R, Expected ? SolveResult::Sat : SolveResult::Unsat);
  if (R == SolveResult::Sat) {
    EXPECT_TRUE(modelSatisfies(S, Clauses));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===
// Cardinality encodings.
//===----------------------------------------------------------------------===

class AtMostOneTest
    : public ::testing::TestWithParam<std::tuple<int, AtMostOneStyle>> {};

TEST_P(AtMostOneTest, ForbidsPairsAllowsSingles) {
  auto [Width, Style] = GetParam();
  // Allowed: exactly one true (and none true).
  for (int True1 = -1; True1 < Width; ++True1) {
    Solver S;
    ClauseLits Group;
    for (int I = 0; I < Width; ++I)
      Group.push_back(P(S, I));
    addAtMostOne(S, Group, Style);
    for (int I = 0; I < Width; ++I)
      S.addClause(I == True1 ? P(S, I) : N(S, I));
    EXPECT_EQ(S.solve(), SolveResult::Sat) << "single " << True1;
  }
  // Forbidden: any pair.
  for (int A = 0; A < Width; ++A) {
    for (int B = A + 1; B < Width; ++B) {
      Solver S;
      ClauseLits Group;
      for (int I = 0; I < Width; ++I)
        Group.push_back(P(S, I));
      addAtMostOne(S, Group, Style);
      S.addClause(P(S, A));
      S.addClause(P(S, B));
      EXPECT_EQ(S.solve(), SolveResult::Unsat) << "pair " << A << "," << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AtMostOneTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 9),
                       ::testing::Values(AtMostOneStyle::Pairwise,
                                         AtMostOneStyle::Ladder)));

TEST(Encodings, ExactlyOneRequiresOne) {
  Solver S;
  ClauseLits Group{P(S, 0), P(S, 1), P(S, 2)};
  addExactlyOne(S, Group);
  S.addClause(N(S, 0));
  S.addClause(N(S, 1));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(2));
}

TEST(Encodings, AtMostKBoundary) {
  for (unsigned K = 1; K <= 3; ++K) {
    for (unsigned ForceTrue = 0; ForceTrue <= 5; ++ForceTrue) {
      Solver S;
      ClauseLits Group;
      for (int I = 0; I < 5; ++I)
        Group.push_back(P(S, I));
      addAtMostK(S, Group, K);
      for (unsigned I = 0; I < ForceTrue; ++I)
        S.addClause(P(S, static_cast<int>(I)));
      SolveResult R = S.solve();
      EXPECT_EQ(R, ForceTrue <= K ? SolveResult::Sat : SolveResult::Unsat)
          << "K=" << K << " forced=" << ForceTrue;
    }
  }
}

//===----------------------------------------------------------------------===
// DIMACS round trip.
//===----------------------------------------------------------------------===

TEST(Dimacs, RoundTrip) {
  Cnf F;
  F.NumVars = 3;
  F.Clauses = {{Lit::pos(0), Lit::neg(1)}, {Lit::pos(2)}};
  std::string Text = F.toDimacs();
  Cnf G;
  std::string Err;
  ASSERT_TRUE(parseDimacs(Text, G, &Err)) << Err;
  EXPECT_EQ(G.NumVars, 3);
  ASSERT_EQ(G.Clauses.size(), 2u);
  EXPECT_EQ(G.Clauses[0], F.Clauses[0]);
  EXPECT_EQ(G.Clauses[1], F.Clauses[1]);
}

TEST(Dimacs, ParseWithComments) {
  Cnf F;
  std::string Err;
  ASSERT_TRUE(parseDimacs("c comment\np cnf 2 2\n1 -2 0\n2 0\n", F, &Err));
  Solver S;
  EXPECT_TRUE(F.loadInto(S));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(1));
}

TEST(Dimacs, RejectsGarbage) {
  Cnf F;
  std::string Err;
  EXPECT_FALSE(parseDimacs("p dnf 1 1\n1 0\n", F, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Dimacs, LoadUnsat) {
  Cnf F;
  std::string Err;
  ASSERT_TRUE(parseDimacs("p cnf 1 2\n1 0\n-1 0\n", F, &Err));
  Solver S;
  F.loadInto(S);
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

} // namespace

TEST(Dimacs, ExportedProblemIsEquisatisfiable) {
  // Export through problemClauses and re-solve with a fresh solver; the
  // answers must agree (this is the paper's swap-the-solver workflow).
  std::mt19937 Rng(99);
  for (int Trial = 0; Trial < 10; ++Trial) {
    Solver S;
    const int NumVars = 10;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    std::vector<ClauseLits> Clauses;
    for (int I = 0; I < 43; ++I) {
      ClauseLits C;
      for (int J = 0; J < 3; ++J)
        C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() & 1));
      Clauses.push_back(C);
      S.addClause(C);
    }
    Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    std::string Text = F.toDimacs();
    Cnf Parsed;
    std::string Err;
    ASSERT_TRUE(parseDimacs(Text, Parsed, &Err)) << Err;
    Solver S2;
    Parsed.loadInto(S2);
    EXPECT_EQ(S.solve(), S2.solve()) << "trial " << Trial;
  }
}

TEST(Dimacs, ExportUnsatProblem) {
  Solver S;
  S.addClause(Lit::pos(S.newVar()));
  S.addClause(Lit::neg(0));
  auto Clauses = S.problemClauses();
  ASSERT_EQ(Clauses.size(), 1u);
  EXPECT_TRUE(Clauses[0].empty()); // The empty clause.
}

//===----------------------------------------------------------------------===
// Proof logging and RUP checking.
//===----------------------------------------------------------------------===

#include "sat/RupChecker.h"

namespace {

Cnf collectFormula(const std::vector<ClauseLits> &Clauses, int NumVars) {
  Cnf F;
  F.NumVars = NumVars;
  F.Clauses = Clauses;
  return F;
}

TEST(RupProof, PigeonholeCertified) {
  // Refute pigeonhole(5, 4) and check the proof independently.
  Solver S;
  const int Holes = 4, Pigeons = 5;
  std::vector<ClauseLits> Formula;
  auto VarOf = [&](int Pg, int H) { return Pg * Holes + H; };
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  S.enableProofLogging();
  for (int Pg = 0; Pg < Pigeons; ++Pg) {
    ClauseLits Row;
    for (int H = 0; H < Holes; ++H)
      Row.push_back(Lit::pos(VarOf(Pg, H)));
    Formula.push_back(Row);
    S.addClause(Row);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2) {
        ClauseLits C{Lit::neg(VarOf(P1, H)), Lit::neg(VarOf(P2, H))};
        Formula.push_back(C);
        S.addClause(C);
      }
  ASSERT_EQ(S.solve(), SolveResult::Unsat);
  ASSERT_FALSE(S.proof().empty());
  EXPECT_TRUE(S.proof().back().empty());
  std::string Err;
  EXPECT_TRUE(checkRupProof(collectFormula(Formula, S.numVars()), S.proof(),
                            &Err))
      << Err;
}

TEST(RupProof, TamperedProofRejected) {
  Solver S;
  std::vector<ClauseLits> Formula;
  for (int I = 0; I < 6; ++I)
    S.newVar();
  S.enableProofLogging();
  // An unsatisfiable chain: x0, x_i -> x_{i+1}, ~x5.
  auto add = [&](ClauseLits C) {
    Formula.push_back(C);
    S.addClause(C);
  };
  add({Lit::pos(0)});
  for (int I = 0; I < 5; ++I)
    add({Lit::neg(I), Lit::pos(I + 1)});
  add({Lit::neg(5)});
  ASSERT_EQ(S.solve(), SolveResult::Unsat);
  // The genuine proof checks...
  std::string Err;
  EXPECT_TRUE(checkRupProof(collectFormula(Formula, 6), S.proof(), &Err))
      << Err;
  // ...a fabricated lemma does not.
  std::vector<ClauseLits> Tampered = {{Lit::pos(3), Lit::pos(4)},
                                      ClauseLits{}};
  Cnf Satisfiable;
  Satisfiable.NumVars = 6;
  Satisfiable.Clauses = {{Lit::pos(0), Lit::pos(1)}};
  EXPECT_FALSE(checkRupProof(Satisfiable, Tampered, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(RupProof, MissingEmptyClauseRejected) {
  Cnf F;
  F.NumVars = 2;
  F.Clauses = {{Lit::pos(0)}, {Lit::neg(0), Lit::pos(1)}};
  std::vector<ClauseLits> Proof = {{Lit::pos(1)}}; // Valid RUP, no bottom.
  std::string Err;
  EXPECT_FALSE(checkRupProof(F, Proof, &Err));
  EXPECT_NE(Err.find("empty clause"), std::string::npos);
}

TEST(RupProof, TrivialUnsatAtAddTime) {
  Solver S;
  S.newVar();
  S.enableProofLogging();
  std::vector<ClauseLits> Formula = {{Lit::pos(0)}, {Lit::neg(0)}};
  for (const ClauseLits &C : Formula)
    S.addClause(C);
  ASSERT_EQ(S.solve(), SolveResult::Unsat);
  std::string Err;
  EXPECT_TRUE(checkRupProof(collectFormula(Formula, 1), S.proof(), &Err))
      << Err;
}

class RandomUnsatProofs : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomUnsatProofs, AllCertified) {
  // Random over-constrained 3-SAT instances: every Unsat answer must come
  // with a checkable proof.
  std::mt19937 Rng(GetParam() * 7717 + 3);
  const int NumVars = 10;
  const int NumClauses = 70; // Far past the phase transition.
  Solver S;
  for (int I = 0; I < NumVars; ++I)
    S.newVar();
  S.enableProofLogging();
  std::vector<ClauseLits> Formula;
  for (int I = 0; I < NumClauses; ++I) {
    ClauseLits C;
    for (int J = 0; J < 3; ++J)
      C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() & 1));
    Formula.push_back(C);
    S.addClause(C);
  }
  if (S.solve() != SolveResult::Unsat)
    GTEST_SKIP() << "instance happened to be satisfiable";
  std::string Err;
  EXPECT_TRUE(checkRupProof(collectFormula(Formula, NumVars), S.proof(),
                            &Err))
      << Err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUnsatProofs, ::testing::Range(0u, 15u));

} // namespace
