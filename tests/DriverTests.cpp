//===- tests/DriverTests.cpp - end-to-end Superoptimizer tests ------------===//

#include "driver/Superoptimizer.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::driver;

namespace {

/// The Figure 3 byteswap program for n bytes, in the prototype's
/// parenthesized syntax.
std::string byteswapSource(unsigned N) {
  std::string Body = "(\\var (r long 0)\n  (\\semi\n";
  for (unsigned I = 0; I < N; ++I)
    Body += "    (:= (r (\\storeb r " + std::to_string(I) +
            " (\\selectb a " + std::to_string(N - 1 - I) + "))))\n";
  Body += "    (:= (\\res r))))";
  return "(\\procdecl byteswap" + std::to_string(N) +
         " ((a long)) long\n  " + Body + ")";
}

TEST(Driver, Figure2Goal) {
  Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64,
      {Ctx.Terms.makeBuiltin(ir::Builtin::Mul64,
                             {Ctx.Terms.makeVar("reg6"),
                              Ctx.Terms.makeConst(4)}),
       Ctx.Terms.makeConst(1)});
  GmaResult R = Opt.compileGoals("fig2", {{"reg6b", Goal}});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Search.Cycles, 1u);
  EXPECT_EQ(R.Search.Program.Instrs.size(), 1u);
  EXPECT_EQ(R.Search.Program.Instrs[0].Mnemonic, "s4addq");
  EXPECT_EQ(Opt.verify(R), std::nullopt);
}

TEST(Driver, Byteswap4FiveCycles) {
  // E3: the paper's byteswap4 challenge compiles to a 5-cycle EV6 program
  // with a proved 4-cycle refutation.
  Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 8;
  CompileResult R = Opt.compileSource(byteswapSource(4));
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Gmas.size(), 1u);
  const GmaResult &G = R.Gmas[0];
  ASSERT_TRUE(G.ok()) << G.Error;
  EXPECT_EQ(G.Search.Cycles, 5u);
  EXPECT_TRUE(G.Search.LowerBoundProved);
  EXPECT_EQ(Opt.verify(G), std::nullopt);
  // SAT problem sizes are reported per probe (the paper's table of 1639
  // vars / 4613 clauses etc.).
  for (const codegen::Probe &P : G.Search.Probes) {
    EXPECT_GT(P.Stats.Vars, 0);
    EXPECT_GT(P.Stats.Clauses, 0u);
  }
}

TEST(Driver, Byteswap2) {
  Superoptimizer Opt;
  CompileResult R = Opt.compileSource(byteswapSource(2));
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_LE(R.Gmas[0].Search.Cycles, 4u);
  EXPECT_EQ(Opt.verify(R.Gmas[0]), std::nullopt);
}

TEST(Driver, ChecksumLoopBody) {
  // E5: the software-pipelined checksum loop body (Figure 6), with the
  // program's own add/carry axioms.
  const char *Source = R"(
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) a))))
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) b))))
(\opdecl add (long long) long)
(\axiom (forall (a b) (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
(\procdecl checksum_loop ((ptr (\ref long)) (ptrend (\ref long))
                          (sum1 long) (sum2 long)
                          (v1 long) (v2 long)) long
  (\do (-> (\cmpult ptr ptrend)
    (\semi
      (:= (sum1 (add sum1 v1)) (sum2 (add sum2 v2)))
      (:= (ptr (+ ptr 16)))
      (:= (v1 (\deref ptr)))
      (:= (v2 (\deref (+ ptr 8))))))))
)";
  Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 12;
  CompileResult R = Opt.compileSource(Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Gmas.size(), 1u);
  const GmaResult &G = R.Gmas[0];
  ASSERT_TRUE(G.ok()) << G.Error;
  // The ones-complement add expands to addq/cmpult/addq; loads fold their
  // displacement. Verification exercises the declared-op definitions.
  EXPECT_EQ(Opt.verify(G), std::nullopt);
  EXPECT_LE(G.Search.Cycles, 8u);
  // Displacement folding: no explicit address adds for the +8 load.
  bool SawDisp = false;
  for (const alpha::Instruction &I : G.Search.Program.Instrs)
    SawDisp |= I.Mem == alpha::MemKind::Load && I.Disp != 0;
  EXPECT_TRUE(SawDisp);
}

TEST(Driver, CopyLoopWithStore) {
  // The section 3 example: p < r -> (*p, p, q) := (*q, p+8, q+8).
  const char *Source = R"(
(\procdecl copystep ((p (\ref long)) (q (\ref long)) (r (\ref long))) long
  (\do (-> (\cmpult p r)
    (\semi
      (:= ((\deref p) (\deref q)))
      (:= (p (+ p 8)) (q (+ q 8)))))))
)";
  Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 12;
  CompileResult R = Opt.compileSource(Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  const GmaResult &G = R.Gmas[0];
  ASSERT_TRUE(G.ok()) << G.Error;
  EXPECT_EQ(Opt.verify(G), std::nullopt);
  bool SawLoad = false, SawStore = false;
  for (const alpha::Instruction &I : G.Search.Program.Instrs) {
    SawLoad |= I.Mem == alpha::MemKind::Load;
    SawStore |= I.Mem == alpha::MemKind::Store;
  }
  EXPECT_TRUE(SawLoad);
  EXPECT_TRUE(SawStore);
}

TEST(Driver, MissAnnotationLengthensSchedule) {
  const char *Hit = R"(
(\procdecl f ((p (\ref long))) long (:= (\res (\deref p))))
)";
  const char *Miss = R"(
(\procdecl f ((p (\ref long))) long (:= (\res (\deref p \miss))))
)";
  Superoptimizer OptHit;
  OptHit.options().Search.MaxCycles = 20;
  CompileResult RHit = OptHit.compileSource(Hit);
  ASSERT_TRUE(RHit.ok() && RHit.Gmas[0].ok());
  Superoptimizer OptMiss;
  OptMiss.options().Search.MaxCycles = 20;
  CompileResult RMiss = OptMiss.compileSource(Miss);
  ASSERT_TRUE(RMiss.ok() && RMiss.Gmas[0].ok());
  EXPECT_EQ(RHit.Gmas[0].Search.Cycles, OptHit.isa().loadHitLatency());
  EXPECT_EQ(RMiss.Gmas[0].Search.Cycles, OptMiss.isa().loadMissLatency());
}

TEST(Driver, RowopExample) {
  // E8: a matrix row operation row[j] += k * row0[j] (one element).
  const char *Source = R"(
(\procdecl rowop ((row (\ref long)) (row0 (\ref long)) (k long)) long
  (:= ((\deref row) (\add64 (\deref row) (\mul64 k (\deref row0))))))
)";
  Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 16;
  CompileResult R = Opt.compileSource(Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_EQ(Opt.verify(R.Gmas[0]), std::nullopt);
  // Loads (3) + multiply (7) + add + store: at least 11 cycles.
  EXPECT_GE(R.Gmas[0].Search.Cycles, 11u);
}

TEST(Driver, Lcp2Example) {
  // E8: "least common power of two" — the largest power of two dividing
  // both registers: isolate the lowest set bit of a | b.
  Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();
  ir::TermId AB = Ctx.Terms.makeBuiltin(
      ir::Builtin::Or64, {Ctx.Terms.makeVar("a"), Ctx.Terms.makeVar("b")});
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::And64, {AB, Ctx.Terms.makeBuiltin(ir::Builtin::Neg64, {AB})});
  GmaResult R = Opt.compileGoals("lcp2", {{"res", Goal}});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(Opt.verify(R), std::nullopt);
  EXPECT_LE(R.Search.Cycles, 3u);
}

TEST(Driver, GuardEnforcedForLoopLoads) {
  const char *Source = R"(
(\procdecl f ((p (\ref long)) (r (\ref long)) (s long)) long
  (\do (-> (\cmpult p r)
    (\semi (:= (s (\add64 s (\deref p)))) (:= (p (+ p 8)))))))
)";
  Superoptimizer Opt;
  CompileResult R = Opt.compileSource(Source);
  ASSERT_TRUE(R.ok() && R.Gmas[0].ok()) << R.Error << R.Gmas[0].Error;
  // The guard compare must complete before any load issues.
  unsigned GuardDone = 0;
  for (const alpha::Instruction &I : R.Gmas[0].Search.Program.Instrs)
    if (I.Mnemonic == "cmpult" && !I.Unused)
      GuardDone = std::max(GuardDone, I.Cycle + I.Latency);
  for (const alpha::Instruction &I : R.Gmas[0].Search.Program.Instrs)
    if (I.Mem == alpha::MemKind::Load) {
      EXPECT_GE(I.Cycle, 1u);
    }
  // Disabling enforcement can only shorten the schedule.
  Superoptimizer Opt2;
  Opt2.options().EnforceGuard = false;
  CompileResult R2 = Opt2.compileSource(Source);
  ASSERT_TRUE(R2.ok() && R2.Gmas[0].ok());
  EXPECT_LE(R2.Gmas[0].Search.Cycles, R.Gmas[0].Search.Cycles);
}

TEST(Driver, FrontendErrorsPropagate) {
  Superoptimizer Opt;
  CompileResult R = Opt.compileSource("(\\procdecl broken)");
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Error.empty());
}

TEST(Driver, BadAxiomPropagates) {
  Superoptimizer Opt;
  CompileResult R = Opt.compileSource(R"(
    (\axiom (forall (x) (eq (\frob x) x)))
    (\procdecl f ((x long)) long (:= (\res x)))
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown operator"), std::string::npos);
}

TEST(Driver, AddAxiomsTextGroundFact) {
  // A \trust-style assumption: reg7 is known to be zero, so x + reg7 is
  // just x (zero cycles).
  Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();
  std::string Err;
  ASSERT_TRUE(Opt.addAxiomsText(R"((\axiom (eq reg7 0)))", &Err)) << Err;
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64,
      {Ctx.Terms.makeVar("x"), Ctx.Terms.makeVar("reg7")});
  GmaResult R = Opt.compileGoals("trust", {{"res", Goal}});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Search.Cycles, 0u);
}

TEST(Driver, VerifyCatchesNothingOnGoodPrograms) {
  // Verification over many trials on a multi-output GMA.
  Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();
  ir::TermId A = Ctx.Terms.makeVar("a");
  ir::TermId B = Ctx.Terms.makeVar("b");
  GmaResult R = Opt.compileGoals(
      "multi",
      {{"s", Ctx.Terms.makeBuiltin(ir::Builtin::Add64, {A, B})},
       {"d", Ctx.Terms.makeBuiltin(ir::Builtin::Sub64, {A, B})},
       {"x", Ctx.Terms.makeBuiltin(ir::Builtin::Xor64, {A, B})}});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Search.Cycles, 1u); // All three issue in one quad-issue cycle.
  EXPECT_EQ(Opt.verify(R, 32), std::nullopt);
}

} // namespace

namespace {

TEST(Driver, SimpleQuadModelSchedulesWider) {
  // On the idealized SimpleQuad machine four independent shifts issue in
  // one cycle; on the EV6 the two upper units force two cycles.
  auto compile = [](alpha::Machine Model) {
    driver::Options Opts;
    Opts.Model = Model;
    driver::Superoptimizer Opt(Opts);
    ir::Context &Ctx = Opt.context();
    auto Shl = [&](const char *V, uint64_t K) {
      return Ctx.Terms.makeBuiltin(
          ir::Builtin::Shl64,
          {Ctx.Terms.makeVar(V), Ctx.Terms.makeConst(K)});
    };
    driver::GmaResult R = Opt.compileGoals(
        "wide", {{"r1", Shl("a", 9)}, {"r2", Shl("b", 10)},
                 {"r3", Shl("c", 11)}, {"r4", Shl("d", 12)}});
    EXPECT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(Opt.verify(R), std::nullopt);
    return R.ok() ? R.Search.Cycles : 0u;
  };
  // Shift amounts 9..12 avoid add/insbl alternatives that could fill the
  // lower units on EV6; only U0/U1 can shift there.
  EXPECT_EQ(compile(alpha::Machine::SimpleQuad), 1u);
  EXPECT_EQ(compile(alpha::Machine::EV6), 2u);
}

TEST(Driver, CnfDumpWritesFiles) {
  driver::Options Opts;
  Opts.Search.DumpCnfDir = ::testing::TempDir();
  driver::Superoptimizer Opt(Opts);
  ir::Context &Ctx = Opt.context();
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64, {Ctx.Terms.makeVar("x"), Ctx.Terms.makeConst(5)});
  driver::GmaResult R = Opt.compileGoals("dump", {{"res", Goal}});
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Path = ::testing::TempDir() + "/dump.K1.cnf";
  FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr) << "expected " << Path;
  char Header[6] = {};
  ASSERT_EQ(std::fread(Header, 1, 5, F), 5u);
  std::fclose(F);
  EXPECT_EQ(std::string(Header), "p cnf");
}

} // namespace
