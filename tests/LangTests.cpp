//===- tests/LangTests.cpp - source language parser tests -----------------===//

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::lang;

namespace {

Module parseOk(const std::string &Text) {
  std::string Err;
  std::optional<Module> M = parseModule(Text, &Err);
  EXPECT_TRUE(M.has_value()) << Err;
  return M ? std::move(*M) : Module();
}

void parseFail(const std::string &Text, const std::string &ExpectInError) {
  std::string Err;
  std::optional<Module> M = parseModule(Text, &Err);
  EXPECT_FALSE(M.has_value());
  EXPECT_NE(Err.find(ExpectInError), std::string::npos) << Err;
}

TEST(LangParser, OpDecl) {
  Module M = parseOk(R"((\opdecl carry (long long) long))");
  ASSERT_EQ(M.OpDecls.size(), 1u);
  EXPECT_EQ(M.OpDecls[0].Name, "carry");
  EXPECT_EQ(M.OpDecls[0].Arity, 2u);
}

TEST(LangParser, AxiomsKeptVerbatim) {
  Module M = parseOk(R"(
    (\opdecl carry (long long) long)
    (\axiom (forall (a b) (pats (carry a b))
      (eq (carry a b) (\cmpult (\add64 a b) a))))
  )");
  ASSERT_EQ(M.Axioms.size(), 1u);
  EXPECT_TRUE(M.Axioms[0].isForm("\\axiom"));
}

TEST(LangParser, SimpleProc) {
  Module M = parseOk(R"(
    (\procdecl double ((x long)) long
      (:= (\res (+ x x))))
  )");
  ASSERT_EQ(M.Procs.size(), 1u);
  const Proc &P = M.Procs[0];
  EXPECT_EQ(P.Name, "double");
  ASSERT_EQ(P.Params.size(), 1u);
  EXPECT_EQ(P.Params[0].first, "x");
  ASSERT_EQ(P.Body->TheKind, Stmt::Kind::Assign);
  EXPECT_EQ(P.Body->Targets[0].Var, "\\res");
  EXPECT_EQ(P.Body->Values[0]->TheKind, Expr::Kind::Apply);
  EXPECT_EQ(P.Body->Values[0]->Name, "+");
}

TEST(LangParser, VarWithInitAndBody) {
  Module M = parseOk(R"(
    (\procdecl f ((a long)) long
      (\var (r long 0)
        (:= (r (+ r a)))
        (:= (\res r))))
  )");
  const Stmt &S = *M.Procs[0].Body;
  ASSERT_EQ(S.TheKind, Stmt::Kind::VarDecl);
  EXPECT_EQ(S.VarName, "r");
  ASSERT_TRUE(S.VarInit != nullptr);
  EXPECT_EQ(S.Body.size(), 2u);
}

TEST(LangParser, UninitializedVar) {
  Module M = parseOk(R"(
    (\procdecl f ((a long)) long
      (\var (t long)
        (:= (\res (+ t a)))))
  )");
  EXPECT_EQ(M.Procs[0].Body->VarInit, nullptr);
}

TEST(LangParser, MultiAssign) {
  Module M = parseOk(R"(
    (\procdecl swap ((a long) (b long)) long
      (:= (a b) (b a)))
  )");
  const Stmt &S = *M.Procs[0].Body;
  ASSERT_EQ(S.Targets.size(), 2u);
  EXPECT_EQ(S.Targets[0].Var, "a");
  EXPECT_EQ(S.Values[0]->Name, "b");
}

TEST(LangParser, DerefExprAndTarget) {
  Module M = parseOk(R"(
    (\procdecl copy ((p (\ref long)) (q (\ref long))) long
      (:= ((\deref p) (\deref q))))
  )");
  const Stmt &S = *M.Procs[0].Body;
  ASSERT_TRUE(S.Targets[0].IsDeref);
  EXPECT_EQ(S.Values[0]->TheKind, Expr::Kind::Deref);
}

TEST(LangParser, MissAnnotation) {
  Module M = parseOk(R"(
    (\procdecl f ((p (\ref long))) long
      (:= (\res (\deref p \miss))))
  )");
  EXPECT_TRUE(M.Procs[0].Body->Values[0]->Miss);
}

TEST(LangParser, DoLoopWithUnroll) {
  Module M = parseOk(R"(
    (\procdecl f ((p (\ref long)) (r (\ref long))) long
      (\do (\unroll 4) (-> (< p r)
        (:= (p (+ p 8))))))
  )");
  const Stmt &S = *M.Procs[0].Body;
  ASSERT_EQ(S.TheKind, Stmt::Kind::Do);
  EXPECT_EQ(S.Unroll, 4u);
  ASSERT_TRUE(S.Cond != nullptr);
  EXPECT_EQ(S.Body.size(), 1u);
}

TEST(LangParser, CastBothArgOrders) {
  Module M = parseOk(R"(
    (\procdecl f ((x long)) short
      (\semi (:= (\res (\cast short x)))
             (:= (\res (\cast x short)))))
  )");
  const Stmt &S = *M.Procs[0].Body;
  EXPECT_EQ(S.Body[0]->Values[0]->CastType.Kind, TypeKind::Short);
  EXPECT_EQ(S.Body[1]->Values[0]->CastType.Kind, TypeKind::Short);
}

TEST(LangParser, IteExpression) {
  Module M = parseOk(R"(
    (\procdecl max ((a long) (b long)) long
      (:= (\res (\ite (\cmpult a b) b a))))
  )");
  EXPECT_EQ(M.Procs[0].Body->Values[0]->TheKind, Expr::Kind::Ite);
}

TEST(LangParser, Figure6ChecksumParses) {
  Module M = parseOk(R"(
    (\opdecl carry (long long) long)
    (\axiom (forall (a b) (pats (carry a b))
      (eq (carry a b) (\cmpult (\add64 a b) a))))
    (\opdecl add (long long) long)
    (\axiom (forall (a b) (pats (add a b))
      (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
    (\procdecl checksum ((ptr (\ref long)) (ptrend (\ref long))) short
      (\var (sum long 0)
      (\var (v1 long (\deref ptr))
      (\semi
        (\do (-> (< ptr ptrend)
          (\semi (:= (sum (add sum v1)))
                 (:= (ptr (+ ptr 8)))
                 (:= (v1 (\deref ptr))))))
        (:= (\res (\cast short sum)))))))
  )");
  EXPECT_EQ(M.OpDecls.size(), 2u);
  EXPECT_EQ(M.Axioms.size(), 2u);
  EXPECT_EQ(M.Procs.size(), 1u);
}

TEST(LangParser, Errors) {
  parseFail("(\\frobnicate)", "expected");
  parseFail(R"((\opdecl f long))", "malformed");
  parseFail(R"((\procdecl f ((x unknown)) long (:= (\res x))))",
            "unknown type");
  parseFail(R"((\procdecl f ((x long)) long (\wat x)))",
            "unknown statement");
  parseFail(R"((\procdecl f ((x long)) long (:= ((+ x 1) 2))))", "target");
  parseFail(R"((\procdecl f ((x long)) long
                  (\do (\unroll 0) (-> x (:= (x 1))))))", "positive");
  parseFail(R"((\procdecl f ((x long)) long (\do (-> x))))", "needs");
  parseFail(R"((\procdecl f ((x long)) long (:= (\res (\deref)))))",
            "address");
}

} // namespace
