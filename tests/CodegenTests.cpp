//===- tests/CodegenTests.cpp - encoder/extractor/search tests ------------===//

#include "alpha/Simulator.h"
#include "axioms/BuiltinAxioms.h"
#include "codegen/Search.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"

#include <gtest/gtest.h>

#include <random>

using namespace denali;
using namespace denali::codegen;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

/// Shared fixture: e-graph + ISA + builtin-axiom matcher.
class PipelineTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  EGraph G{Ctx};
  alpha::ISA Isa{Ctx};

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &Name) {
    return G.addNode(Ctx.Ops.makeVariable(Name), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  void saturate(size_t MaxNodes = 30000) {
    match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    match::MatchLimits Limits;
    Limits.MaxNodes = MaxNodes;
    M.saturate(G, Limits);
    ASSERT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  }

  SearchResult superoptimize(const std::vector<NamedGoal> &Goals,
                             SearchOptions Opts = SearchOptions()) {
    Universe U;
    std::string Err;
    std::vector<ClassId> GoalClasses;
    for (const NamedGoal &NG : Goals)
      GoalClasses.push_back(NG.Class);
    if (Opts.Encoding.GuardClass)
      GoalClasses.push_back(*Opts.Encoding.GuardClass);
    EXPECT_TRUE(U.build(G, Isa, GoalClasses, UniverseOptions(), &Err)) << Err;
    return searchBudgets(G, Isa, U, Goals, Opts, "test");
  }

  /// Validates timing and functional equivalence against expected values.
  void checkProgram(
      const SearchResult &R,
      const std::unordered_map<std::string, ir::Value> &Inputs,
      const std::unordered_map<std::string, ir::Value> &Expected) {
    ASSERT_TRUE(R.Found) << R.Error;
    alpha::TimingReport TR = alpha::validateTiming(Isa, R.Program);
    EXPECT_TRUE(TR.Ok) << TR.Error << "\n" << R.Program.toString();
    alpha::RunResult Run = alpha::runProgram(Ctx, R.Program, Inputs);
    ASSERT_TRUE(Run.Ok) << Run.Error << "\n" << R.Program.toString();
    for (const auto &[Name, Want] : Expected) {
      auto It = Run.Outputs.find(Name);
      ASSERT_NE(It, Run.Outputs.end()) << "missing output " << Name;
      EXPECT_TRUE(It->second.equals(Want))
          << Name << ": got " << It->second.toString() << " want "
          << Want.toString() << "\n"
          << R.Program.toString();
    }
  }
};

TEST_F(PipelineTest, Figure2SingleInstruction) {
  // reg6*4 + 1 must compile to one s4addq and one cycle.
  ClassId Goal = app(Builtin::Add64, {app(Builtin::Mul64, {v("reg6"), c(4)}),
                                      c(1)});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 1u);
  ASSERT_EQ(R.Program.Instrs.size(), 1u);
  EXPECT_EQ(R.Program.Instrs[0].Mnemonic, "s4addq");
  checkProgram(R, {{"reg6", ir::Value::makeInt(11)}},
               {{"res", ir::Value::makeInt(45)}});
}

TEST_F(PipelineTest, WithoutScaledAddTwoCycles) {
  // x*8 has a 1-cycle shift; x*8+y+1 needs more work; just check the
  // schedule is validated optimal-by-probes and correct.
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(16)}), v("y")}),
       c(1)});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_LE(R.Cycles, 3u);
  EXPECT_TRUE(R.LowerBoundProved);
  uint64_t X = 0x123456, Y = 99;
  checkProgram(R, {{"x", ir::Value::makeInt(X)}, {"y", ir::Value::makeInt(Y)}},
               {{"res", ir::Value::makeInt(X * 16 + Y + 1)}});
}

TEST_F(PipelineTest, ImmediateOperand) {
  // x + 5: one addq with an 8-bit literal, no ldiq.
  ClassId Goal = app(Builtin::Add64, {v("x"), c(5)});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 1u);
  checkProgram(R, {{"x", ir::Value::makeInt(7)}},
               {{"res", ir::Value::makeInt(12)}});
}

TEST_F(PipelineTest, LargeConstantNeedsMaterialization) {
  // x + 100000: the constant exceeds the 8-bit literal range, so a ldiq
  // must precede the add: two cycles.
  ClassId Goal = app(Builtin::Add64, {v("x"), c(100000)});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 2u);
  EXPECT_TRUE(R.LowerBoundProved);
  checkProgram(R, {{"x", ir::Value::makeInt(1)}},
               {{"res", ir::Value::makeInt(100001)}});
}

TEST_F(PipelineTest, FreeGoalZeroCycles) {
  ClassId Goal = v("x");
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 0u);
  EXPECT_TRUE(R.Program.Instrs.empty());
  checkProgram(R, {{"x", ir::Value::makeInt(77)}},
               {{"res", ir::Value::makeInt(77)}});
}

TEST_F(PipelineTest, MultiplyLatency) {
  // x*y (no shift alternative): mulq has latency 7, so 7 cycles.
  ClassId Goal = app(Builtin::Mul64, {v("x"), v("y")});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 7u);
  checkProgram(R, {{"x", ir::Value::makeInt(6)}, {"y", ir::Value::makeInt(7)}},
               {{"res", ir::Value::makeInt(42)}});
}

TEST_F(PipelineTest, ShiftBeatsMultiply) {
  // x*16: the matcher's 16 = 2**4 fact turns a 7-cycle multiply into a
  // 1-cycle shift.
  ClassId Goal = app(Builtin::Mul64, {v("x"), c(16)});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 1u);
  ASSERT_EQ(R.Program.Instrs.size(), 1u);
  EXPECT_EQ(R.Program.Instrs[0].Mnemonic, "sll");
}

TEST_F(PipelineTest, LoadSimple) {
  ClassId Goal = app(Builtin::Select, {v("M"), v("p")});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 3u); // ldq hit latency.
  ir::Value Mem = ir::Value::makeArray(5).store(200, 4242);
  checkProgram(R,
               {{"M", Mem}, {"p", ir::Value::makeInt(200)}},
               {{"res", ir::Value::makeInt(4242)}});
}

TEST_F(PipelineTest, LoadWithDisplacement) {
  // select(M, p+16) folds the offset into the ldq displacement: still 3
  // cycles, no addq.
  ClassId Goal =
      app(Builtin::Select, {v("M"), app(Builtin::Add64, {v("p"), c(16)})});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 3u);
  ASSERT_EQ(R.Program.Instrs.size(), 1u);
  EXPECT_EQ(R.Program.Instrs[0].Disp, 16);
  ir::Value Mem = ir::Value::makeArray(9).store(116, 7);
  checkProgram(R, {{"M", Mem}, {"p", ir::Value::makeInt(100)}},
               {{"res", ir::Value::makeInt(7)}});
}

TEST_F(PipelineTest, StoreSimple) {
  ClassId Goal = app(Builtin::Store, {v("M"), v("p"), v("x")});
  saturate();
  SearchResult R = superoptimize({{"M", Goal, true}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 1u);
  ir::Value Mem = ir::Value::makeArray(3);
  checkProgram(R,
               {{"M", Mem},
                {"p", ir::Value::makeInt(64)},
                {"x", ir::Value::makeInt(123)}},
               {{"M", Mem.store(64, 123)}});
}

TEST_F(PipelineTest, StoreLoadReorderFreedom) {
  // GMA: M := store(M, p, x); r := select(M, p+8). Matching proves the
  // load may read the original memory; both goals complete in the load
  // latency window (no serialization through the store).
  ClassId MVar = v("M");
  ClassId P = v("p");
  ClassId StoreT = app(Builtin::Store, {MVar, P, v("x")});
  ClassId LoadT =
      app(Builtin::Select, {StoreT, app(Builtin::Add64, {P, c(8)})});
  saturate();
  SearchResult R =
      superoptimize({{"M", StoreT, true}, {"r", LoadT, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 3u) << R.Program.toString();
  // Memory discipline: the ldq that reads the *initial* memory must not be
  // scheduled after the stq that overwrites it.
  unsigned StoreCycle = 0;
  bool SawStore = false;
  for (const alpha::Instruction &I : R.Program.Instrs)
    if (I.Mem == alpha::MemKind::Store) {
      StoreCycle = I.Cycle;
      SawStore = true;
    }
  ASSERT_TRUE(SawStore);
  uint32_t InitialMemReg = 0;
  for (const alpha::ProgramInput &In : R.Program.Inputs)
    if (In.IsMemory)
      InitialMemReg = In.Reg;
  for (const alpha::Instruction &I : R.Program.Instrs)
    if (I.Mem == alpha::MemKind::Load && I.Srcs[0].isReg() &&
        I.Srcs[0].Reg == InitialMemReg) {
      EXPECT_LT(I.Cycle, StoreCycle + 1u) << R.Program.toString();
    }
  ir::Value Mem = ir::Value::makeArray(11);
  uint64_t PV = 1000, XV = 55;
  checkProgram(R,
               {{"M", Mem},
                {"p", ir::Value::makeInt(PV)},
                {"x", ir::Value::makeInt(XV)}},
               {{"M", Mem.store(PV, XV)},
                {"r", ir::Value::makeInt(Mem.select(PV + 8))}});
}

TEST_F(PipelineTest, GuardOrdersMemoryOps) {
  // With a guard class, loads may not launch before the guard's compare
  // completes.
  ClassId Guard = app(Builtin::CmpUlt, {v("p"), v("r")});
  ClassId Load = app(Builtin::Select, {v("M"), v("p")});
  saturate();
  SearchOptions Opts;
  Opts.Encoding.GuardClass = Guard;
  SearchResult R = superoptimize({{"res", Load, false}}, Opts);
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 4u); // cmpult (1) then ldq (3).
  unsigned GuardDone = 0;
  for (const alpha::Instruction &I : R.Program.Instrs)
    if (I.Mnemonic == "cmpult")
      GuardDone = I.Cycle + I.Latency;
  for (const alpha::Instruction &I : R.Program.Instrs)
    if (I.Mem == alpha::MemKind::Load) {
      EXPECT_GE(I.Cycle, GuardDone);
    }
}

TEST_F(PipelineTest, BinarySearchAgreesWithLinear) {
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Shl64, {v("x"), c(3)}),
       app(Builtin::Xor64, {v("y"), app(Builtin::And64, {v("x"), v("y")})})});
  saturate();
  SearchOptions Lin;
  Lin.Strategy = SearchStrategy::Linear;
  SearchResult RL = superoptimize({{"res", Goal, false}}, Lin);
  SearchOptions Bin;
  Bin.Strategy = SearchStrategy::Binary;
  SearchResult RB = superoptimize({{"res", Goal, false}}, Bin);
  ASSERT_TRUE(RL.Found) << RL.Error;
  ASSERT_TRUE(RB.Found) << RB.Error;
  EXPECT_EQ(RL.Cycles, RB.Cycles);
}

TEST_F(PipelineTest, SingleClusterAblationNoWorse) {
  // Removing the cross-cluster delay can only shorten schedules.
  ClassId Goal = app(
      Builtin::Or64,
      {app(Builtin::Shl64, {v("a"), c(8)}), app(Builtin::Shr64, {v("b"), c(8)})});
  saturate();
  SearchResult RTwo = superoptimize({{"res", Goal, false}});
  SearchOptions OptsOne;
  OptsOne.Encoding.SingleCluster = true;
  SearchResult ROne = superoptimize({{"res", Goal, false}}, OptsOne);
  ASSERT_TRUE(RTwo.Found) << RTwo.Error;
  ASSERT_TRUE(ROne.Found) << ROne.Error;
  EXPECT_LE(ROne.Cycles, RTwo.Cycles);
}

TEST_F(PipelineTest, UncomputableGoalReportsError) {
  ir::OpId Mystery = Ctx.Ops.declareOp("mystery", 1);
  ClassId Goal = G.addNode(Mystery, {v("x")});
  saturate();
  Universe U;
  std::string Err;
  EXPECT_FALSE(U.build(G, Isa, {Goal}, UniverseOptions(), &Err));
  EXPECT_NE(Err.find("no machine-computable"), std::string::npos);
}

TEST_F(PipelineTest, ProbeStatsRecorded) {
  ClassId Goal = app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(4)}),
                                      v("y")});
  saturate();
  SearchResult R = superoptimize({{"res", Goal, false}});
  ASSERT_TRUE(R.Found) << R.Error;
  ASSERT_FALSE(R.Probes.empty());
  for (const Probe &P : R.Probes) {
    EXPECT_GT(P.Stats.Vars, 0);
    EXPECT_GT(P.Stats.Clauses, 0u);
    EXPECT_GT(P.Stats.MachineTerms, 0u);
  }
  EXPECT_EQ(R.Probes.back().Result, sat::SolveResult::Sat);
}

TEST_F(PipelineTest, MissAnnotatedLoadLatency) {
  // A load annotated as missing the cache takes the miss latency.
  ClassId Addr = v("p");
  ClassId Goal = app(Builtin::Select, {v("M"), Addr});
  saturate();
  Universe U;
  UniverseOptions UOpts;
  UOpts.LoadLatencyByAddr[G.find(Addr)] = Isa.loadMissLatency();
  std::string Err;
  ASSERT_TRUE(U.build(G, Isa, {G.find(Goal)}, UOpts, &Err)) << Err;
  SearchOptions SOpts;
  SOpts.MaxCycles = 20;
  SearchResult R = searchBudgets(G, Isa, U, {{"res", Goal, false}}, SOpts,
                                 "miss");
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, Isa.loadMissLatency());
}

//===----------------------------------------------------------------------===
// Differential sweep: random expression DAGs through the whole pipeline;
// simulated machine output must equal the reference evaluation.
//===----------------------------------------------------------------------===

class PipelineDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineDifferential, RandomTerms) {
  std::mt19937 Rng(GetParam() * 48271u + 7);
  ir::Context Ctx;
  alpha::ISA Isa(Ctx);

  // Random term over three variables and small constants.
  std::vector<ir::TermId> Pool;
  for (const char *Name : {"x", "y", "z"})
    Pool.push_back(Ctx.Terms.makeVar(Name));
  Pool.push_back(Ctx.Terms.makeConst(Rng() & 0xff));
  Pool.push_back(Ctx.Terms.makeConst(4));
  const Builtin Ops[] = {Builtin::Add64, Builtin::Sub64, Builtin::And64,
                         Builtin::Or64,  Builtin::Xor64, Builtin::Shl64,
                         Builtin::Mul64, Builtin::CmpUlt, Builtin::Zapnot,
                         Builtin::Extbl};
  for (int Step = 0; Step < 5; ++Step) {
    Builtin B = Ops[Rng() % std::size(Ops)];
    ir::TermId A = Pool[Rng() % Pool.size()];
    ir::TermId C = Pool[Rng() % Pool.size()];
    Pool.push_back(Ctx.Terms.makeBuiltin(B, {A, C}));
  }
  ir::TermId GoalTerm = Pool.back();

  EGraph G(Ctx);
  ClassId Goal = G.addTerm(GoalTerm);
  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  match::MatchLimits Limits;
  Limits.MaxNodes = 20000;
  M.saturate(G, Limits);
  ASSERT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();

  Universe U;
  std::string Err;
  ASSERT_TRUE(U.build(G, Isa, {G.find(Goal)}, UniverseOptions(), &Err))
      << Err;
  SearchOptions Opts;
  Opts.MaxCycles = 20;
  SearchResult R =
      searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts, "rand");
  ASSERT_TRUE(R.Found) << R.Error << "\ngoal: "
                       << Ctx.Terms.toString(GoalTerm);

  alpha::TimingReport TR = alpha::validateTiming(Isa, R.Program);
  ASSERT_TRUE(TR.Ok) << TR.Error << "\n" << R.Program.toString();

  for (int Trial = 0; Trial < 4; ++Trial) {
    std::unordered_map<std::string, ir::Value> Inputs;
    ir::Env E;
    for (const char *Name : {"x", "y", "z"}) {
      uint64_t V = (static_cast<uint64_t>(Rng()) << 32) | Rng();
      Inputs[Name] = ir::Value::makeInt(V);
      E[Ctx.Ops.makeVariable(Name)] = ir::Value::makeInt(V);
    }
    auto Want = ir::evalTerm(Ctx.Terms, GoalTerm, E);
    ASSERT_TRUE(Want.has_value());
    alpha::RunResult Run = alpha::runProgram(Ctx, R.Program, Inputs);
    ASSERT_TRUE(Run.Ok) << Run.Error;
    EXPECT_TRUE(Run.Outputs.at("res").equals(*Want))
        << "seed " << GetParam() << " goal "
        << Ctx.Terms.toString(GoalTerm) << "\n"
        << R.Program.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDifferential,
                         ::testing::Range(0u, 20u));

} // namespace
