//===- tests/ObsTests.cpp - observability layer tests ---------------------===//
//
// The obs layer is process-global state (one registry, one event stream,
// one enabled flag), so every test here re-configures it on entry and the
// concurrency tests are the TSan gate for the lock-free event publishing
// (build with -DDENALI_SANITIZE=thread).
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "driver/Superoptimizer.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "verify/GmaGen.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <thread>

using namespace denali;
namespace json = denali::support::json;

namespace {

/// Installs a fresh enabled configuration and clears all prior state.
void resetObs(bool Enabled) {
  obs::ObsConfig C;
  C.Enabled = Enabled;
  obs::configure(C);
  obs::clearEvents();
  obs::Registry::global().resetAll();
}

TEST(ObsRegistry, CountersGaugesHistograms) {
  resetObs(true);
  auto &R = obs::Registry::global();
  R.counter("t.c").add(3);
  R.counter("t.c").add();
  EXPECT_EQ(R.counter("t.c").get(), 4u);
  EXPECT_EQ(R.counterValue("t.c"), 4u);
  EXPECT_EQ(R.counterValue("t.absent"), 0u); // Lookup does not register.

  R.gauge("t.g").set(7);
  R.gauge("t.g").noteMax(5); // Smaller: no effect.
  EXPECT_EQ(R.gauge("t.g").get(), 7);
  R.gauge("t.g").noteMax(9);
  EXPECT_EQ(R.gauge("t.g").get(), 9);

  auto &H = R.histogram("t.h");
  H.record(10);
  H.record(20);
  H.record(3);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 33u);
  EXPECT_EQ(H.min(), 3u);
  EXPECT_EQ(H.max(), 20u);

  std::string Summary = R.summaryText();
  EXPECT_NE(Summary.find("counter t.c 4\n"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("gauge t.g 9\n"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("hist t.h count=3 sum=33 min=3 max=20 avg=11.0"),
            std::string::npos)
      << Summary;

  R.resetAll();
  EXPECT_EQ(R.counterValue("t.c"), 0u);
  EXPECT_EQ(R.histogram("t.h").count(), 0u);
}

TEST(ObsRegistry, ReferencesAreStableAcrossRegistrations) {
  resetObs(true);
  auto &R = obs::Registry::global();
  obs::Counter &C = R.counter("t.stable");
  // Register many more counters; the earlier reference must stay valid.
  for (int I = 0; I < 500; ++I)
    R.counter("t.filler." + std::to_string(I)).add();
  C.add(11);
  EXPECT_EQ(R.counterValue("t.stable"), 11u);
}

TEST(ObsRegistry, ConcurrentUpdatesUnderThreadPool) {
  resetObs(true);
  auto &R = obs::Registry::global();
  constexpr int Threads = 8;
  constexpr int PerThread = 2000;
  support::ThreadPool Pool(Threads);
  std::vector<std::future<void>> Futures;
  for (int T = 0; T < Threads; ++T)
    Futures.push_back(Pool.submit([&R, T] {
      for (int I = 0; I < PerThread; ++I) {
        R.counter("t.conc.c").add();
        // Concurrent lazy registration from every thread.
        R.counter("t.conc.per." + std::to_string(T)).add();
        R.gauge("t.conc.g").noteMax(T * PerThread + I);
        R.histogram("t.conc.h").record(static_cast<uint64_t>(I));
      }
    }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(R.counterValue("t.conc.c"),
            static_cast<uint64_t>(Threads) * PerThread);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(R.counterValue("t.conc.per." + std::to_string(T)),
              static_cast<uint64_t>(PerThread));
  EXPECT_EQ(R.gauge("t.conc.g").get(), Threads * PerThread - 1);
  EXPECT_EQ(R.histogram("t.conc.h").count(),
            static_cast<uint64_t>(Threads) * PerThread);
}

TEST(ObsRegistry, HistogramPercentiles) {
  resetObs(true);
  auto &R = obs::Registry::global();
  auto &H = R.histogram("t.pct");
  for (uint64_t I = 1; I <= 100; ++I)
    H.record(I);
  // Log2 buckets: the estimate is the bucket's upper edge, clamped to the
  // exact [min, max]; p50 of 1..100 lands in bucket [32,64) -> edge 63.
  EXPECT_EQ(H.percentile(0.5), 63u);
  EXPECT_EQ(H.percentile(0.99), 100u); // Clamped to max.
  EXPECT_EQ(H.percentile(0.0), 1u);    // Clamped to min.
  EXPECT_EQ(R.histogram("t.pct.empty").percentile(0.5), 0u);

  // The summary line carries the estimates.
  std::string Summary = R.summaryText();
  EXPECT_NE(Summary.find("hist t.pct count=100"), std::string::npos)
      << Summary;
  EXPECT_NE(Summary.find("p50=63"), std::string::npos) << Summary;
}

TEST(ObsRegistry, SummaryTextIsSortedAndDeterministic) {
  resetObs(true);
  auto &R = obs::Registry::global();
  // Register deliberately out of order.
  R.counter("t.z").add(1);
  R.counter("t.a").add(2);
  R.gauge("t.m").set(3);
  R.histogram("t.k").record(4);
  R.windowed("t.w").record(5);
  std::string S1 = R.summaryText();
  std::string S2 = R.summaryText();
  EXPECT_EQ(S1, S2);
  // Kinds in fixed order, names sorted within each kind.
  size_t A = S1.find("counter t.a ");
  size_t Z = S1.find("counter t.z ");
  size_t G = S1.find("gauge t.m ");
  size_t H = S1.find("hist t.k ");
  size_t W = S1.find("whist t.w ");
  ASSERT_NE(A, std::string::npos) << S1;
  ASSERT_NE(Z, std::string::npos) << S1;
  ASSERT_NE(G, std::string::npos) << S1;
  ASSERT_NE(H, std::string::npos) << S1;
  ASSERT_NE(W, std::string::npos) << S1;
  EXPECT_LT(A, Z);
  EXPECT_LT(Z, G);
  EXPECT_LT(G, H);
  EXPECT_LT(H, W);
}

TEST(ObsRegistry, WindowedHistogramBasics) {
  obs::WindowedHistogram W; // Default 60s window: nothing expires in-test.
  EXPECT_EQ(W.snapshot().Count, 0u);
  EXPECT_EQ(W.snapshot().percentile(0.5), 0u);
  for (uint64_t I = 1; I <= 100; ++I)
    W.record(I);
  obs::WindowedHistogram::Snapshot S = W.snapshot();
  EXPECT_EQ(S.Count, 100u);
  EXPECT_EQ(S.Sum, 5050u);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 100u);
  EXPECT_DOUBLE_EQ(S.avg(), 50.5);
  EXPECT_EQ(S.percentile(0.5), 63u);
  EXPECT_EQ(S.percentile(0.99), 100u);
  EXPECT_EQ(S.WindowNs, obs::WindowedHistogram::DefaultWindowNs);
  W.reset();
  EXPECT_EQ(W.snapshot().Count, 0u);
}

TEST(ObsRegistry, WindowedHistogramExpiresOldSamples) {
  // A 8ms window over 8 slots (1ms each): samples recorded now must fall
  // out of the snapshot after the window has fully rotated.
  obs::WindowedHistogram W(8ll * 1000 * 1000);
  W.record(42);
  EXPECT_EQ(W.snapshot().Count, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Recording after the gap claims fresh slots; the old sample's slot is
  // outside the merge range.
  W.record(7);
  obs::WindowedHistogram::Snapshot S = W.snapshot();
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Max, 7u);
}

TEST(ObsRegistry, WindowedHistogramIdleGapLongerThanRing) {
  // Deterministic-time rotation: an idle gap many times the whole window
  // must expire everything, whatever the gap's alignment to slot
  // boundaries — the epoch math may not alias old slots back in when the
  // slot index wraps (gap mod ring size == 0 is the aliasing trap).
  constexpr int64_t WindowNs = 8ll * 1000 * 1000;
  const int64_t SlotNs = WindowNs / 7; // NumSlots - 1 live slots.
  for (int64_t GapSlots : {8ll, 16ll, 64ll, 65ll, 1000001ll}) {
    obs::WindowedHistogram W(WindowNs);
    int64_t T0 = 1000000; // Arbitrary nonzero epoch start.
    W.recordAt(T0, 42);
    EXPECT_EQ(W.snapshotAt(T0).Count, 1u);
    int64_t T1 = T0 + GapSlots * SlotNs;
    // A snapshot alone after the gap sees an empty window...
    obs::WindowedHistogram::Snapshot Idle = W.snapshotAt(T1);
    EXPECT_EQ(Idle.Count, 0u) << "gap=" << GapSlots;
    // ...and the first record after the gap claims a clean slot rather
    // than merging with the pre-gap sample stranded at the same index.
    W.recordAt(T1, 7);
    obs::WindowedHistogram::Snapshot S = W.snapshotAt(T1);
    EXPECT_EQ(S.Count, 1u) << "gap=" << GapSlots;
    EXPECT_EQ(S.Max, 7u) << "gap=" << GapSlots;
    EXPECT_EQ(S.Min, 7u) << "gap=" << GapSlots;
  }
}

TEST(ObsRegistry, WindowedHistogramSnapshotDuringRotation) {
  // Writers sweep timestamps across many slot boundaries while readers
  // snapshot mid-rotation from other pool threads. Bounds on what a
  // mid-rotation snapshot may observe: never more than the samples still
  // in-window, never garbage (Min/Max inside the recorded value range).
  // The TSan copy of this test is the race gate for the CAS slot reset.
  constexpr int64_t WindowNs = 8ll * 1000 * 1000;
  const int64_t SlotNs = WindowNs / 7;
  obs::WindowedHistogram W(WindowNs);
  constexpr int Writers = 4, Readers = 4, Steps = 3000;
  std::atomic<int64_t> Clock{1000000};
  std::atomic<uint64_t> NonEmpty{0};
  {
    support::ThreadPool Pool(Writers + Readers);
    std::vector<std::future<void>> Futures;
    for (int T = 0; T < Writers; ++T)
      Futures.push_back(Pool.submit([&W, &Clock] {
        for (int I = 0; I < Steps; ++I) {
          // Each write advances the shared clock a fraction of a slot, so
          // the run crosses hundreds of rotation boundaries.
          int64_t Now = Clock.fetch_add(SlotNs / 64) + SlotNs / 64;
          W.recordAt(Now, 100 + static_cast<uint64_t>(I % 100));
        }
      }));
    for (int T = 0; T < Readers; ++T)
      Futures.push_back(Pool.submit([&W, &Clock, &NonEmpty] {
        for (int I = 0; I < Steps; ++I) {
          obs::WindowedHistogram::Snapshot S = W.snapshotAt(Clock.load());
          if (S.Count) {
            NonEmpty.fetch_add(1);
            EXPECT_GE(S.Min, 100u);
            EXPECT_LE(S.Max, 199u);
            EXPECT_GE(S.Sum, S.Count * 100);
            EXPECT_LE(S.Sum, S.Count * 199);
          }
        }
      }));
    for (auto &F : Futures)
      F.get();
  }
  EXPECT_GT(NonEmpty.load(), 0u);
  // Quiescent check at the final clock: whatever remains in-window is
  // internally consistent after all the contended rotations.
  obs::WindowedHistogram::Snapshot S = W.snapshotAt(Clock.load());
  EXPECT_LE(S.Count, static_cast<uint64_t>(Writers) * Steps);
  if (S.Count) {
    EXPECT_GE(S.Min, 100u);
    EXPECT_LE(S.Max, 199u);
  }
}

TEST(ObsRegistry, WindowedMergeUnderThreadPool) {
  resetObs(true);
  auto &W = obs::Registry::global().windowed("t.win.conc");
  constexpr int Threads = 8;
  constexpr int PerThread = 4000;
  {
    support::ThreadPool Pool(Threads);
    std::vector<std::future<void>> Futures;
    std::atomic<uint64_t> Snapshots{0};
    for (int T = 0; T < Threads; ++T)
      Futures.push_back(Pool.submit([&W, &Snapshots, T] {
        for (int I = 0; I < PerThread; ++I) {
          W.record(static_cast<uint64_t>(T * PerThread + I + 1));
          // Interleave snapshot readers with writers: the TSan copy of this
          // test is the data-race gate for the lock-free slot ring.
          if (I % 512 == 0)
            Snapshots.fetch_add(W.snapshot().Count);
        }
      }));
    for (auto &F : Futures)
      F.get();
    EXPECT_GT(Snapshots.load(), 0u);
  }
  // All samples land well inside the 60s window; the documented one-sample
  // loss race only applies at slot-boundary rotation, which a sub-second
  // test never crosses.
  obs::WindowedHistogram::Snapshot S = W.snapshot();
  EXPECT_EQ(S.Count, static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, static_cast<uint64_t>(Threads) * PerThread);
}

TEST(ObsRequest, ScopeStampsEventsAndRestores) {
  resetObs(true);
  EXPECT_EQ(obs::currentRequestId(), 0u);
  const uint64_t R1 = obs::nextRequestId();
  const uint64_t R2 = obs::nextRequestId();
  EXPECT_NE(R1, 0u);
  EXPECT_NE(R1, R2);

  obs::RequestTrace Trace;
  {
    obs::RequestScope Outer(R1, &Trace);
    EXPECT_EQ(obs::currentRequestId(), R1);
    { obs::ObsSpan S("t.req.outer"); }
    {
      obs::RequestScope Inner(R2);
      EXPECT_EQ(obs::currentRequestId(), R2);
      { obs::ObsSpan S("t.req.inner"); }
    }
    EXPECT_EQ(obs::currentRequestId(), R1); // Nested scope restored.
    obs::instant("t.req.marker");
  }
  EXPECT_EQ(obs::currentRequestId(), 0u);
  { obs::ObsSpan S("t.req.none"); }

  std::map<std::string, uint64_t> ReqByName;
  for (const obs::Event &E : obs::collectEvents())
    ReqByName[E.Kind == obs::EventKind::Span ? E.Name : "marker"] = E.Req;
  EXPECT_EQ(ReqByName["t.req.outer"], R1);
  EXPECT_EQ(ReqByName["t.req.inner"], R2);
  EXPECT_EQ(ReqByName["marker"], R1);
  EXPECT_EQ(ReqByName["t.req.none"], 0u);

  // The installed RequestTrace retained only the R1-scope events (the inner
  // scope replaced the trace pointer).
  std::vector<obs::Event> Kept = Trace.events();
  ASSERT_EQ(Kept.size(), 2u);
  std::string Tree = Trace.spanTreeText();
  EXPECT_NE(Tree.find("t.req.outer"), std::string::npos) << Tree;
}

TEST(ObsRequest, TokenPropagatesAcrossThreads) {
  resetObs(true);
  const uint64_t Id = obs::nextRequestId();
  obs::RequestToken Tok;
  {
    obs::RequestScope Scope(Id);
    Tok = obs::currentRequestToken();
  }
  EXPECT_EQ(Tok.Id, Id);
  std::thread Worker([Tok] {
    obs::RequestScope Scope(Tok);
    { obs::ObsSpan S("t.req.worker"); }
    obs::flushThreadEvents();
  });
  Worker.join();
  bool Seen = false;
  for (const obs::Event &E : obs::collectEvents())
    if (E.Kind == obs::EventKind::Span &&
        std::string(E.Name) == "t.req.worker") {
      Seen = true;
      EXPECT_EQ(E.Req, Id);
    }
  EXPECT_TRUE(Seen);
}

TEST(ObsRequest, JsonlCarriesRequestId) {
  resetObs(true);
  const uint64_t Id = obs::nextRequestId();
  {
    obs::RequestScope Scope(Id);
    obs::ObsSpan S("t.req.jsonl");
  }
  std::string Text = obs::jsonlText(obs::collectEvents());
  EXPECT_NE(Text.find("\"req\":" + std::to_string(Id)), std::string::npos)
      << Text;
  std::string Err;
  EXPECT_TRUE(json::parse(Text.substr(0, Text.find('\n')), &Err)) << Err;
}

TEST(ObsFlusher, FlushOnceWritesParseableJsonAndRotates) {
  resetObs(true);
  obs::Registry::global().counter("t.flush.c").add(9);
  const std::string Path = "test_metrics_flush.jsonl";
  std::remove(Path.c_str());
  std::remove((Path + ".1").c_str());
  std::remove((Path + ".2").c_str());

  obs::MetricsFlusher F;
  obs::MetricsFlusher::Options O;
  O.Path = Path;
  O.IntervalSec = 3600; // Background thread stays asleep; we drive flushes.
  O.MaxBytes = 1;       // Every flush exceeds the threshold -> rotates.
  O.MaxFiles = 2;
  F.start(O);
  EXPECT_TRUE(F.flushOnce());
  EXPECT_TRUE(F.flushOnce());
  F.stop(); // Final flush.
  EXPECT_GE(F.flushCount(), 3u);

  // Rotation left the previous generations behind.
  std::ifstream Gen1(Path + ".1");
  EXPECT_TRUE(Gen1.good());

  // Every line is one standalone JSON object with the registry snapshot.
  std::ifstream In(Path + ".1");
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Line, &Err);
  ASSERT_TRUE(Doc) << Err << "\n" << Line;
  ASSERT_TRUE(Doc->field("ts_ms") && Doc->field("ts_ms")->isNumber());
  const json::Value *Counters = Doc->field("counters");
  ASSERT_TRUE(Counters && Counters->isObject()) << Line;
  ASSERT_TRUE(Counters->field("t.flush.c"));
  EXPECT_EQ(Counters->field("t.flush.c")->numberValue(), 9.0);

  std::remove(Path.c_str());
  std::remove((Path + ".1").c_str());
  std::remove((Path + ".2").c_str());
}

TEST(ObsTrace, SpansRecordOnlyWhenEnabled) {
  resetObs(false);
  { obs::ObsSpan S("t.disabled"); }
  obs::instant("t.disabled.i");
  EXPECT_TRUE(obs::collectEvents().empty());

  resetObs(true);
  {
    obs::ObsSpan S("t.enabled");
    S.arg("k", 5u).arg("tag", "v");
  }
  std::vector<obs::Event> Events = obs::collectEvents();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "t.enabled");
  EXPECT_EQ(Events[0].Kind, obs::EventKind::Span);
  EXPECT_GE(Events[0].DurNs, 0);
  EXPECT_NE(Events[0].Args.find("\"k\":5"), std::string::npos);
  EXPECT_NE(Events[0].Args.find("\"tag\":\"v\""), std::string::npos);
  // The span fed its duration histogram too.
  EXPECT_EQ(obs::Registry::global().histogram("span.t.enabled.us").count(),
            1u);
}

TEST(ObsTrace, MetricsOnlyModeSkipsEventBuffering) {
  // Enabled with Events off: spans still feed their duration histograms
  // and an installed RequestTrace still retains its request's spans, but
  // nothing accumulates in the shared trace buffers.
  obs::ObsConfig C;
  C.Enabled = true;
  C.Events = false;
  obs::configure(C);
  obs::clearEvents();
  obs::Registry::global().resetAll();
  EXPECT_TRUE(obs::enabled());
  EXPECT_FALSE(obs::eventsEnabled());

  {
    obs::ObsSpan S("t.mon");
    EXPECT_FALSE(S.active()); // Callers skip arg-building.
  }
  obs::instant("t.mon.i");
  EXPECT_TRUE(obs::collectEvents().empty());
  EXPECT_EQ(obs::Registry::global().histogram("span.t.mon.us").count(), 1u);

  obs::RequestTrace T;
  {
    obs::RequestScope Scope(obs::nextRequestId(), &T);
    obs::ObsSpan S("t.mon.traced");
    EXPECT_TRUE(S.active()); // The trace retains it.
  }
  ASSERT_EQ(T.events().size(), 1u);
  EXPECT_STREQ(T.events()[0].Name, "t.mon.traced");
  EXPECT_TRUE(obs::collectEvents().empty());

  resetObs(true);
}

TEST(ObsTrace, ConcurrentSpansFromPoolWorkers) {
  resetObs(true);
  constexpr int Threads = 8;
  constexpr int PerThread = 600; // > chunk capacity: forces mid-run flushes.
  {
    support::ThreadPool Pool(Threads);
    // Start barrier: every task spins until all have started, so each of
    // the 8 tasks lands on a distinct worker (a fast worker would
    // otherwise drain several tasks and leave some threads unexercised).
    std::atomic<int> Started{0};
    std::vector<std::future<void>> Futures;
    for (int T = 0; T < Threads; ++T)
      Futures.push_back(Pool.submit([&Started] {
        Started.fetch_add(1);
        while (Started.load() < Threads)
          std::this_thread::yield();
        for (int I = 0; I < PerThread; ++I) {
          obs::ObsSpan S("t.worker");
          S.arg("i", static_cast<uint64_t>(I));
        }
        obs::flushThreadEvents();
      }));
    for (auto &F : Futures)
      F.get();
  }
  std::vector<obs::Event> Events = obs::collectEvents();
  EXPECT_EQ(Events.size(), static_cast<size_t>(Threads) * PerThread);
  std::set<uint32_t> Tids;
  for (const obs::Event &E : Events)
    Tids.insert(E.Tid);
  EXPECT_EQ(Tids.size(), static_cast<size_t>(Threads));
  // collectEvents sorts by start time.
  EXPECT_TRUE(std::is_sorted(
      Events.begin(), Events.end(),
      [](const obs::Event &A, const obs::Event &B) {
        return A.StartNs < B.StartNs;
      }));
}

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::jsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(ObsExport, ChromeTraceIsWellFormedJson) {
  resetObs(true);
  {
    obs::ObsSpan Outer("t.outer");
    Outer.arg("k", 3u);
    { obs::ObsSpan Inner("t.inner"); }
    obs::instant("t.marker", "\"note\":\"quote \\\" inside\"");
  }
  obs::logf(0, "log line with \"quotes\"");
  std::string Trace = obs::chromeTraceJson(obs::collectEvents());

  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Trace, &Err);
  ASSERT_TRUE(Doc) << Err << "\n" << Trace;
  const json::Value *Events = Doc->field("traceEvents");
  ASSERT_TRUE(Events && Events->isArray()) << Trace;
  ASSERT_EQ(Events->array().size(), 4u);
  std::multiset<std::string> Names;
  for (const json::Value &E : Events->array()) {
    const json::Value *Name = E.field("name");
    const json::Value *Ph = E.field("ph");
    ASSERT_TRUE(Name && Name->isString());
    ASSERT_TRUE(Ph && Ph->isString());
    ASSERT_TRUE(E.field("ts") && E.field("ts")->isNumber());
    ASSERT_TRUE(E.field("pid") && E.field("tid"));
    if (Ph->stringValue() == "X") {
      ASSERT_TRUE(E.field("dur") && E.field("dur")->isNumber());
    }
    Names.insert(Name->stringValue());
  }
  EXPECT_EQ(Names.count("t.outer"), 1u);
  EXPECT_EQ(Names.count("t.inner"), 1u);
  EXPECT_EQ(Names.count("t.marker"), 1u);
  // The span args survive as a JSON object.
  for (const json::Value &E : Events->array())
    if (E.field("name")->stringValue() == "t.outer") {
      const json::Value *Args = E.field("args");
      ASSERT_TRUE(Args && Args->isObject());
      ASSERT_TRUE(Args->field("k"));
      EXPECT_EQ(Args->field("k")->numberValue(), 3.0);
    }
}

TEST(ObsExport, JsonlLinesParseIndividually) {
  resetObs(true);
  { obs::ObsSpan S("t.jsonl"); }
  obs::instant("t.jsonl.i");
  std::string Text = obs::jsonlText(obs::collectEvents());
  size_t Lines = 0;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    ASSERT_NE(End, std::string::npos);
    std::string Err;
    EXPECT_TRUE(json::parse(Text.substr(Start, End - Start), &Err)) << Err;
    Start = End + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 2u);
}

TEST(ObsScopedTimer, FeedsHistogram) {
  resetObs(true);
  auto &H = obs::Registry::global().histogram("t.scoped.us");
  { obs::ScopedTimer T(H); }
  { obs::ScopedTimer T(H); }
  EXPECT_EQ(H.count(), 2u);
}

/// Golden span-tree test: one tiny pipeline run must emit the expected
/// span taxonomy with the expected nesting (by depth and containment).
TEST(ObsPipeline, GoldenSpanTree) {
  resetObs(true);
  const char *Src = R"(
(\procdecl tiny ((x long)) long (:= (\res (\add64 x 1))))
)";
  driver::Options Opts;
  Opts.Search.MaxCycles = 4;
  driver::Superoptimizer Opt(Opts);
  // The constructor already parsed the builtin axioms (their sexpr.parse
  // spans are not part of this pipeline run) — start the trace fresh.
  obs::clearEvents();
  obs::Registry::global().resetAll();
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Gmas.size(), 1u);
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;

  std::vector<obs::Event> Events = obs::collectEvents();
  std::map<std::string, std::vector<const obs::Event *>> ByName;
  for (const obs::Event &E : Events)
    if (E.Kind == obs::EventKind::Span)
      ByName[E.Name].push_back(&E);

  // The stage spans, each exactly once per run...
  for (const char *Name : {"sexpr.parse", "lang.parse", "gma.translate",
                           "gma.compile", "match.saturate", "universe.build",
                           "search"})
    EXPECT_EQ(ByName[Name].size(), 1u) << Name;
  // ...and the per-round / per-probe spans at least once.
  EXPECT_GE(ByName["match.round"].size(), 1u);
  EXPECT_GE(ByName["search.probe"].size(), 1u);
  EXPECT_GE(ByName["encode"].size(), 1u);

  // Nesting, by recorded depth: top-level spans at depth 0, stages inside
  // gma.compile at depth 1, rounds/probes below them.
  EXPECT_EQ(ByName["lang.parse"][0]->Depth, 0u);
  EXPECT_EQ(ByName["gma.compile"][0]->Depth, 0u);
  EXPECT_EQ(ByName["sexpr.parse"][0]->Depth, 1u); // Inside lang.parse.
  EXPECT_EQ(ByName["match.saturate"][0]->Depth, 1u);
  EXPECT_EQ(ByName["search"][0]->Depth, 1u);
  EXPECT_EQ(ByName["match.round"][0]->Depth, 2u);
  EXPECT_EQ(ByName["search.probe"][0]->Depth, 2u);
  EXPECT_EQ(ByName["encode"][0]->Depth, 3u); // Inside search.probe.

  // Interval containment on the same thread backs up the depths.
  auto contains = [](const obs::Event *Outer, const obs::Event *Inner) {
    return Outer->Tid == Inner->Tid && Outer->StartNs <= Inner->StartNs &&
           Inner->StartNs + Inner->DurNs <= Outer->StartNs + Outer->DurNs;
  };
  EXPECT_TRUE(contains(ByName["lang.parse"][0], ByName["sexpr.parse"][0]));
  EXPECT_TRUE(
      contains(ByName["gma.compile"][0], ByName["match.saturate"][0]));
  EXPECT_TRUE(contains(ByName["gma.compile"][0], ByName["search"][0]));
  EXPECT_TRUE(contains(ByName["match.saturate"][0], ByName["match.round"][0]));
  EXPECT_TRUE(contains(ByName["search"][0], ByName["search.probe"][0]));

  // The registry saw the same run.
  auto &Reg = obs::Registry::global();
  EXPECT_GT(Reg.counterValue("match.rounds"), 0u);
  EXPECT_GT(Reg.counterValue("encode.vars"), 0u);
  EXPECT_GT(Reg.counterValue("encode.clauses"), 0u);
  EXPECT_GT(Reg.counterValue("search.probes"), 0u);

  resetObs(false); // Leave the layer off for the remaining test binaries.
}

/// The verification layer reports through the same obs surface as the
/// pipeline: GMA generation, oracle checks, and schedule replay must all
/// leave spans and counters behind.
TEST(ObsVerify, VerifyLayerSpansAndCounters) {
  resetObs(true);
  driver::Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();

  // One generated GMA (span + counter), then a deterministic oracle pass
  // over a trivially compilable goal (oracle + schedule replay).
  verify::GmaGen Gen(Ctx, /*Seed=*/7);
  gma::GMA G = Gen.next();
  EXPECT_FALSE(G.Targets.empty());
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64, {Ctx.Terms.makeVar("x"), Ctx.Terms.makeConst(5)});
  driver::GmaResult R = Opt.compileGoals("obsverify", {{"res", Goal}});
  ASSERT_TRUE(R.ok()) << R.Error;
  verify::OracleVerdict V = verify::checkCompiled(Opt, R);
  EXPECT_EQ(V.Status, verify::OracleStatus::Pass) << V.toString();

  std::map<std::string, unsigned> SpanCount;
  for (const obs::Event &E : obs::collectEvents())
    if (E.Kind == obs::EventKind::Span)
      ++SpanCount[E.Name];
  EXPECT_GE(SpanCount["verify.gmagen"], 1u);
  EXPECT_GE(SpanCount["verify.oracle"], 1u);
  EXPECT_GE(SpanCount["verify.schedule"], 1u);

  auto &Reg = obs::Registry::global();
  EXPECT_GE(Reg.counterValue("verify.gmas_generated"), 1u);
  EXPECT_GE(Reg.counterValue("verify.oracle_checks"), 1u);
  EXPECT_GE(Reg.counterValue("verify.oracle_pass"), 1u);
  EXPECT_GE(Reg.counterValue("verify.schedules_validated"), 1u);

  resetObs(false);
}

} // namespace
