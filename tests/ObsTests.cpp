//===- tests/ObsTests.cpp - observability layer tests ---------------------===//
//
// The obs layer is process-global state (one registry, one event stream,
// one enabled flag), so every test here re-configures it on entry and the
// concurrency tests are the TSan gate for the lock-free event publishing
// (build with -DDENALI_SANITIZE=thread).
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "driver/Superoptimizer.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "verify/GmaGen.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>

using namespace denali;
namespace json = denali::support::json;

namespace {

/// Installs a fresh enabled configuration and clears all prior state.
void resetObs(bool Enabled) {
  obs::ObsConfig C;
  C.Enabled = Enabled;
  obs::configure(C);
  obs::clearEvents();
  obs::Registry::global().resetAll();
}

TEST(ObsRegistry, CountersGaugesHistograms) {
  resetObs(true);
  auto &R = obs::Registry::global();
  R.counter("t.c").add(3);
  R.counter("t.c").add();
  EXPECT_EQ(R.counter("t.c").get(), 4u);
  EXPECT_EQ(R.counterValue("t.c"), 4u);
  EXPECT_EQ(R.counterValue("t.absent"), 0u); // Lookup does not register.

  R.gauge("t.g").set(7);
  R.gauge("t.g").noteMax(5); // Smaller: no effect.
  EXPECT_EQ(R.gauge("t.g").get(), 7);
  R.gauge("t.g").noteMax(9);
  EXPECT_EQ(R.gauge("t.g").get(), 9);

  auto &H = R.histogram("t.h");
  H.record(10);
  H.record(20);
  H.record(3);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 33u);
  EXPECT_EQ(H.min(), 3u);
  EXPECT_EQ(H.max(), 20u);

  std::string Summary = R.summaryText();
  EXPECT_NE(Summary.find("counter t.c 4\n"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("gauge t.g 9\n"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("hist t.h count=3 sum=33 min=3 max=20 avg=11.0"),
            std::string::npos)
      << Summary;

  R.resetAll();
  EXPECT_EQ(R.counterValue("t.c"), 0u);
  EXPECT_EQ(R.histogram("t.h").count(), 0u);
}

TEST(ObsRegistry, ReferencesAreStableAcrossRegistrations) {
  resetObs(true);
  auto &R = obs::Registry::global();
  obs::Counter &C = R.counter("t.stable");
  // Register many more counters; the earlier reference must stay valid.
  for (int I = 0; I < 500; ++I)
    R.counter("t.filler." + std::to_string(I)).add();
  C.add(11);
  EXPECT_EQ(R.counterValue("t.stable"), 11u);
}

TEST(ObsRegistry, ConcurrentUpdatesUnderThreadPool) {
  resetObs(true);
  auto &R = obs::Registry::global();
  constexpr int Threads = 8;
  constexpr int PerThread = 2000;
  support::ThreadPool Pool(Threads);
  std::vector<std::future<void>> Futures;
  for (int T = 0; T < Threads; ++T)
    Futures.push_back(Pool.submit([&R, T] {
      for (int I = 0; I < PerThread; ++I) {
        R.counter("t.conc.c").add();
        // Concurrent lazy registration from every thread.
        R.counter("t.conc.per." + std::to_string(T)).add();
        R.gauge("t.conc.g").noteMax(T * PerThread + I);
        R.histogram("t.conc.h").record(static_cast<uint64_t>(I));
      }
    }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(R.counterValue("t.conc.c"),
            static_cast<uint64_t>(Threads) * PerThread);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(R.counterValue("t.conc.per." + std::to_string(T)),
              static_cast<uint64_t>(PerThread));
  EXPECT_EQ(R.gauge("t.conc.g").get(), Threads * PerThread - 1);
  EXPECT_EQ(R.histogram("t.conc.h").count(),
            static_cast<uint64_t>(Threads) * PerThread);
}

TEST(ObsTrace, SpansRecordOnlyWhenEnabled) {
  resetObs(false);
  { obs::ObsSpan S("t.disabled"); }
  obs::instant("t.disabled.i");
  EXPECT_TRUE(obs::collectEvents().empty());

  resetObs(true);
  {
    obs::ObsSpan S("t.enabled");
    S.arg("k", 5u).arg("tag", "v");
  }
  std::vector<obs::Event> Events = obs::collectEvents();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "t.enabled");
  EXPECT_EQ(Events[0].Kind, obs::EventKind::Span);
  EXPECT_GE(Events[0].DurNs, 0);
  EXPECT_NE(Events[0].Args.find("\"k\":5"), std::string::npos);
  EXPECT_NE(Events[0].Args.find("\"tag\":\"v\""), std::string::npos);
  // The span fed its duration histogram too.
  EXPECT_EQ(obs::Registry::global().histogram("span.t.enabled.us").count(),
            1u);
}

TEST(ObsTrace, ConcurrentSpansFromPoolWorkers) {
  resetObs(true);
  constexpr int Threads = 8;
  constexpr int PerThread = 600; // > chunk capacity: forces mid-run flushes.
  {
    support::ThreadPool Pool(Threads);
    // Start barrier: every task spins until all have started, so each of
    // the 8 tasks lands on a distinct worker (a fast worker would
    // otherwise drain several tasks and leave some threads unexercised).
    std::atomic<int> Started{0};
    std::vector<std::future<void>> Futures;
    for (int T = 0; T < Threads; ++T)
      Futures.push_back(Pool.submit([&Started] {
        Started.fetch_add(1);
        while (Started.load() < Threads)
          std::this_thread::yield();
        for (int I = 0; I < PerThread; ++I) {
          obs::ObsSpan S("t.worker");
          S.arg("i", static_cast<uint64_t>(I));
        }
        obs::flushThreadEvents();
      }));
    for (auto &F : Futures)
      F.get();
  }
  std::vector<obs::Event> Events = obs::collectEvents();
  EXPECT_EQ(Events.size(), static_cast<size_t>(Threads) * PerThread);
  std::set<uint32_t> Tids;
  for (const obs::Event &E : Events)
    Tids.insert(E.Tid);
  EXPECT_EQ(Tids.size(), static_cast<size_t>(Threads));
  // collectEvents sorts by start time.
  EXPECT_TRUE(std::is_sorted(
      Events.begin(), Events.end(),
      [](const obs::Event &A, const obs::Event &B) {
        return A.StartNs < B.StartNs;
      }));
}

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::jsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(ObsExport, ChromeTraceIsWellFormedJson) {
  resetObs(true);
  {
    obs::ObsSpan Outer("t.outer");
    Outer.arg("k", 3u);
    { obs::ObsSpan Inner("t.inner"); }
    obs::instant("t.marker", "\"note\":\"quote \\\" inside\"");
  }
  obs::logf(0, "log line with \"quotes\"");
  std::string Trace = obs::chromeTraceJson(obs::collectEvents());

  std::string Err;
  std::unique_ptr<json::Value> Doc = json::parse(Trace, &Err);
  ASSERT_TRUE(Doc) << Err << "\n" << Trace;
  const json::Value *Events = Doc->field("traceEvents");
  ASSERT_TRUE(Events && Events->isArray()) << Trace;
  ASSERT_EQ(Events->array().size(), 4u);
  std::multiset<std::string> Names;
  for (const json::Value &E : Events->array()) {
    const json::Value *Name = E.field("name");
    const json::Value *Ph = E.field("ph");
    ASSERT_TRUE(Name && Name->isString());
    ASSERT_TRUE(Ph && Ph->isString());
    ASSERT_TRUE(E.field("ts") && E.field("ts")->isNumber());
    ASSERT_TRUE(E.field("pid") && E.field("tid"));
    if (Ph->stringValue() == "X") {
      ASSERT_TRUE(E.field("dur") && E.field("dur")->isNumber());
    }
    Names.insert(Name->stringValue());
  }
  EXPECT_EQ(Names.count("t.outer"), 1u);
  EXPECT_EQ(Names.count("t.inner"), 1u);
  EXPECT_EQ(Names.count("t.marker"), 1u);
  // The span args survive as a JSON object.
  for (const json::Value &E : Events->array())
    if (E.field("name")->stringValue() == "t.outer") {
      const json::Value *Args = E.field("args");
      ASSERT_TRUE(Args && Args->isObject());
      ASSERT_TRUE(Args->field("k"));
      EXPECT_EQ(Args->field("k")->numberValue(), 3.0);
    }
}

TEST(ObsExport, JsonlLinesParseIndividually) {
  resetObs(true);
  { obs::ObsSpan S("t.jsonl"); }
  obs::instant("t.jsonl.i");
  std::string Text = obs::jsonlText(obs::collectEvents());
  size_t Lines = 0;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    ASSERT_NE(End, std::string::npos);
    std::string Err;
    EXPECT_TRUE(json::parse(Text.substr(Start, End - Start), &Err)) << Err;
    Start = End + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 2u);
}

TEST(ObsScopedTimer, FeedsHistogram) {
  resetObs(true);
  auto &H = obs::Registry::global().histogram("t.scoped.us");
  { obs::ScopedTimer T(H); }
  { obs::ScopedTimer T(H); }
  EXPECT_EQ(H.count(), 2u);
}

/// Golden span-tree test: one tiny pipeline run must emit the expected
/// span taxonomy with the expected nesting (by depth and containment).
TEST(ObsPipeline, GoldenSpanTree) {
  resetObs(true);
  const char *Src = R"(
(\procdecl tiny ((x long)) long (:= (\res (\add64 x 1))))
)";
  driver::Options Opts;
  Opts.Search.MaxCycles = 4;
  driver::Superoptimizer Opt(Opts);
  // The constructor already parsed the builtin axioms (their sexpr.parse
  // spans are not part of this pipeline run) — start the trace fresh.
  obs::clearEvents();
  obs::Registry::global().resetAll();
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Gmas.size(), 1u);
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;

  std::vector<obs::Event> Events = obs::collectEvents();
  std::map<std::string, std::vector<const obs::Event *>> ByName;
  for (const obs::Event &E : Events)
    if (E.Kind == obs::EventKind::Span)
      ByName[E.Name].push_back(&E);

  // The stage spans, each exactly once per run...
  for (const char *Name : {"sexpr.parse", "lang.parse", "gma.translate",
                           "gma.compile", "match.saturate", "universe.build",
                           "search"})
    EXPECT_EQ(ByName[Name].size(), 1u) << Name;
  // ...and the per-round / per-probe spans at least once.
  EXPECT_GE(ByName["match.round"].size(), 1u);
  EXPECT_GE(ByName["search.probe"].size(), 1u);
  EXPECT_GE(ByName["encode"].size(), 1u);

  // Nesting, by recorded depth: top-level spans at depth 0, stages inside
  // gma.compile at depth 1, rounds/probes below them.
  EXPECT_EQ(ByName["lang.parse"][0]->Depth, 0u);
  EXPECT_EQ(ByName["gma.compile"][0]->Depth, 0u);
  EXPECT_EQ(ByName["sexpr.parse"][0]->Depth, 1u); // Inside lang.parse.
  EXPECT_EQ(ByName["match.saturate"][0]->Depth, 1u);
  EXPECT_EQ(ByName["search"][0]->Depth, 1u);
  EXPECT_EQ(ByName["match.round"][0]->Depth, 2u);
  EXPECT_EQ(ByName["search.probe"][0]->Depth, 2u);
  EXPECT_EQ(ByName["encode"][0]->Depth, 3u); // Inside search.probe.

  // Interval containment on the same thread backs up the depths.
  auto contains = [](const obs::Event *Outer, const obs::Event *Inner) {
    return Outer->Tid == Inner->Tid && Outer->StartNs <= Inner->StartNs &&
           Inner->StartNs + Inner->DurNs <= Outer->StartNs + Outer->DurNs;
  };
  EXPECT_TRUE(contains(ByName["lang.parse"][0], ByName["sexpr.parse"][0]));
  EXPECT_TRUE(
      contains(ByName["gma.compile"][0], ByName["match.saturate"][0]));
  EXPECT_TRUE(contains(ByName["gma.compile"][0], ByName["search"][0]));
  EXPECT_TRUE(contains(ByName["match.saturate"][0], ByName["match.round"][0]));
  EXPECT_TRUE(contains(ByName["search"][0], ByName["search.probe"][0]));

  // The registry saw the same run.
  auto &Reg = obs::Registry::global();
  EXPECT_GT(Reg.counterValue("match.rounds"), 0u);
  EXPECT_GT(Reg.counterValue("encode.vars"), 0u);
  EXPECT_GT(Reg.counterValue("encode.clauses"), 0u);
  EXPECT_GT(Reg.counterValue("search.probes"), 0u);

  resetObs(false); // Leave the layer off for the remaining test binaries.
}

/// The verification layer reports through the same obs surface as the
/// pipeline: GMA generation, oracle checks, and schedule replay must all
/// leave spans and counters behind.
TEST(ObsVerify, VerifyLayerSpansAndCounters) {
  resetObs(true);
  driver::Superoptimizer Opt;
  ir::Context &Ctx = Opt.context();

  // One generated GMA (span + counter), then a deterministic oracle pass
  // over a trivially compilable goal (oracle + schedule replay).
  verify::GmaGen Gen(Ctx, /*Seed=*/7);
  gma::GMA G = Gen.next();
  EXPECT_FALSE(G.Targets.empty());
  ir::TermId Goal = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64, {Ctx.Terms.makeVar("x"), Ctx.Terms.makeConst(5)});
  driver::GmaResult R = Opt.compileGoals("obsverify", {{"res", Goal}});
  ASSERT_TRUE(R.ok()) << R.Error;
  verify::OracleVerdict V = verify::checkCompiled(Opt, R);
  EXPECT_EQ(V.Status, verify::OracleStatus::Pass) << V.toString();

  std::map<std::string, unsigned> SpanCount;
  for (const obs::Event &E : obs::collectEvents())
    if (E.Kind == obs::EventKind::Span)
      ++SpanCount[E.Name];
  EXPECT_GE(SpanCount["verify.gmagen"], 1u);
  EXPECT_GE(SpanCount["verify.oracle"], 1u);
  EXPECT_GE(SpanCount["verify.schedule"], 1u);

  auto &Reg = obs::Registry::global();
  EXPECT_GE(Reg.counterValue("verify.gmas_generated"), 1u);
  EXPECT_GE(Reg.counterValue("verify.oracle_checks"), 1u);
  EXPECT_GE(Reg.counterValue("verify.oracle_pass"), 1u);
  EXPECT_GE(Reg.counterValue("verify.schedules_validated"), 1u);

  resetObs(false);
}

} // namespace
