//===- tests/PipelineTests.cpp - automatic software pipelining ------------===//
//
// The paper (section 8): "We have a design for software pipelining, but
// haven't implemented it yet. In the meantime ... we hand-specified the
// required pipelining by introducing temporaries to carry intermediate
// values across loop iterations." The \pipeline loop annotation implements
// that design: it hoists the body's loads into temporaries loaded before
// the loop and reloaded (at the advanced addresses) at the end of each
// iteration.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "gma/GMA.h"
#include "lang/Parser.h"
#include "lang/Surface.h"

#include <gtest/gtest.h>

using namespace denali;

namespace {

/// Renders target -> value of a GMA for compact matching.
std::string gmaString(const ir::Context &Ctx, const gma::GMA &G,
                      const std::string &Target) {
  for (size_t I = 0; I < G.Targets.size(); ++I)
    if (G.Targets[I] == Target)
      return Ctx.Terms.toString(G.NewVals[I]);
  return "(absent)";
}

TEST(Pipeline, TransformShape) {
  // sum := sum + *ptr; ptr := ptr + 8 — pipelined, the loop body reads the
  // temp and reloads from the advanced pointer.
  const char *Src = R"(
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long)) (sum long)) long
  (\do (\pipeline) (-> (\cmpult ptr ptrend)
    (\semi (:= (sum (\add64 sum (\deref ptr))))
           (:= (ptr (+ ptr 8)))))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  // Prologue: %pipe0 := *ptr. Loop: sum := sum + %pipe0, reload %pipe0.
  ASSERT_EQ(Gmas->size(), 2u);
  EXPECT_EQ(gmaString(Ctx, (*Gmas)[0], "%pipe0"), "(select M ptr)");
  EXPECT_EQ(gmaString(Ctx, (*Gmas)[1], "sum"), "(add64 sum %pipe0)");
  EXPECT_EQ(gmaString(Ctx, (*Gmas)[1], "%pipe0"),
            "(select M (add64 ptr 8))");
}

TEST(Pipeline, ShortensLoopBody) {
  auto compile = [](bool Pipelined) {
    std::string Src = std::string(R"(
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long)) (sum long)) long
  (\do )") + (Pipelined ? "(\\pipeline) " : "") + R"((-> (\cmpult ptr ptrend)
    (\semi (:= (sum (\add64 sum (\deref ptr))))
           (:= (ptr (+ ptr 8)))))))
)";
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 12;
    driver::CompileResult R = Opt.compileSource(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    unsigned LoopCycles = 0;
    for (driver::GmaResult &G : R.Gmas) {
      EXPECT_TRUE(G.ok()) << G.Error;
      EXPECT_EQ(Opt.verify(G), std::nullopt);
      LoopCycles = G.Search.Cycles; // Last GMA is the loop body.
    }
    return LoopCycles;
  };
  unsigned Plain = compile(false);
  unsigned Pipelined = compile(true);
  // The load's 3-cycle latency leaves the critical path.
  EXPECT_LT(Pipelined, Plain);
}

TEST(Pipeline, DedupesIdenticalLoads) {
  // *ptr appears twice; one temporary serves both.
  const char *Src = R"(
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long)) (a long) (b long)) long
  (\do (\pipeline) (-> (\cmpult ptr ptrend)
    (\semi (:= (a (\add64 a (\deref ptr))) (b (\xor64 b (\deref ptr))))
           (:= (ptr (+ ptr 8)))))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  unsigned PipeTemps = 0;
  for (const std::string &T : (*Gmas)[0].Targets)
    PipeTemps += T.rfind("%pipe", 0) == 0;
  EXPECT_EQ(PipeTemps, 1u);
}

TEST(Pipeline, WithUnroll) {
  // Unroll 2 + pipeline: each iteration reads the temp and reloads it, so
  // iteration 2 consumes iteration 1's reload.
  const char *Src = R"(
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long)) (sum long)) long
  (\do (\unroll 2) (\pipeline) (-> (\cmpult ptr ptrend)
    (\semi (:= (sum (\add64 sum (\deref ptr))))
           (:= (ptr (+ ptr 8)))))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  // sum = sum + pipe0 + select(M, ptr+8).
  EXPECT_EQ(gmaString(Ctx, (*Gmas)[1], "sum"),
            "(add64 (add64 sum %pipe0) (select M (add64 ptr 8)))");
  EXPECT_EQ(gmaString(Ctx, (*Gmas)[1], "ptr"),
            "(add64 (add64 ptr 8) 8)");
}

TEST(Pipeline, MissAnnotationFollowsTheLoad) {
  const char *Src = R"(
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long)) (sum long)) long
  (\do (\pipeline) (-> (\cmpult ptr ptrend)
    (\semi (:= (sum (\add64 sum (\deref ptr \miss))))
           (:= (ptr (+ ptr 8)))))))
)";
  std::string Err;
  auto M = lang::parseModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  // Both the prologue load and the in-loop reload carry the miss hint.
  EXPECT_EQ((*Gmas)[0].MissAddrs.size(), 1u);
  EXPECT_EQ((*Gmas)[1].MissAddrs.size(), 1u);
}

TEST(Pipeline, SurfaceSyntax) {
  const char *Src = R"(
\proc f : [ ptr, ptrend : long* ; sum : long ] -> long =
\do \pipeline ptr < ptrend ->
  sum := sum + *ptr ;
  ptr := ptr + 8
\od ;
\res := sum
\end
)";
  std::string Err;
  auto M = lang::parseSurfaceModule(Src, &Err);
  ASSERT_TRUE(M.has_value()) << Err;
  ir::Context Ctx;
  auto Gmas = gma::translateProc(Ctx, M->Procs[0], &Err);
  ASSERT_TRUE(Gmas.has_value()) << Err;
  EXPECT_EQ(gmaString(Ctx, (*Gmas)[1], "sum"), "(add64 sum %pipe0)");
}

TEST(Pipeline, EndToEndVerified) {
  // The whole pipelined checksum-style loop compiles and differentially
  // verifies (including the prefetching reload semantics).
  const char *Src = R"(
(\opdecl add (long long) long)
(\axiom (forall (a b) (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (\cmpult (\add64 a b) a)))))
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long))
              (s1 long) (s2 long)) long
  (\do (\pipeline) (-> (\cmpult ptr ptrend)
    (\semi (:= (s1 (add s1 (\deref ptr)))
               (s2 (add s2 (\deref (+ ptr 8)))))
           (:= (ptr (+ ptr 16)))))))
)";
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 12;
  driver::CompileResult R = Opt.compileSource(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  for (driver::GmaResult &G : R.Gmas) {
    ASSERT_TRUE(G.ok()) << G.Error;
    EXPECT_EQ(Opt.verify(G), std::nullopt) << G.Gma.toString(Opt.context());
  }
}

} // namespace
