//===- tests/ExplainTests.cpp - provenance & explanation layer tests ------===//
//
// Golden tests for the explain layer on the paper's byteswap4 challenge:
// every emitted instruction must carry a derivation chain (axiom ids +
// substitutions) or be directly present in the specification, and the K-1
// refutation must name the binding clause families. Plus the e-graph
// inspector dumps.
//
//===----------------------------------------------------------------------===//

#include "explain/Explain.h"

#include "driver/Superoptimizer.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace denali;
namespace json = denali::support::json;

namespace {

/// The Figure 3 byteswap program for n bytes (same shape as DriverTests).
std::string byteswapSource(unsigned N) {
  std::string Body = "(\\var (r long 0)\n  (\\semi\n";
  for (unsigned I = 0; I < N; ++I)
    Body += "    (:= (r (\\storeb r " + std::to_string(I) +
            " (\\selectb a " + std::to_string(N - 1 - I) + "))))\n";
  Body += "    (:= (\\res r))))";
  return "(\\procdecl byteswap" + std::to_string(N) +
         " ((a long)) long\n  " + Body + ")";
}

TEST(Explain, GoldenByteswap4) {
  driver::Options Opts;
  Opts.Explain = true;
  Opts.WhyUnsat = true;
  Opts.Search.MaxCycles = 8;
  driver::Superoptimizer Opt(Opts);
  driver::CompileResult R = Opt.compileSource(byteswapSource(4));
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Gmas.size(), 1u);
  const driver::GmaResult &G = R.Gmas[0];
  ASSERT_TRUE(G.ok()) << G.Error;
  EXPECT_EQ(G.Search.Cycles, 5u);

  // The JSON explanation parses and covers every emitted instruction.
  std::string Err;
  auto Doc = json::parse(G.ExplanationJson, &Err);
  ASSERT_TRUE(Doc) << Err << "\n" << G.ExplanationJson;
  const json::Value *Instrs = Doc->field("instructions");
  ASSERT_TRUE(Instrs && Instrs->isArray());
  ASSERT_EQ(Instrs->array().size(), G.Search.Program.Instrs.size());

  size_t AxiomSteps = 0;
  for (const json::Value &I : Instrs->array()) {
    const json::Value *Ldiq = I.field("ldiq");
    const json::Value *Direct = I.field("directly_in_spec");
    const json::Value *Chain = I.field("chain");
    ASSERT_TRUE(Ldiq && Direct && Chain && Chain->isArray());
    // Every instruction is accounted for: a derivation chain, a verbatim
    // spec occurrence, or a constant materialization.
    EXPECT_TRUE(Ldiq->boolValue() || Direct->boolValue() ||
                !Chain->array().empty())
        << I.field("mnemonic")->stringValue();
    for (const json::Value &S : Chain->array()) {
      ASSERT_TRUE(S.field("kind") && S.field("from") && S.field("to"));
      if (S.field("kind")->stringValue() != "axiom")
        continue;
      ++AxiomSteps;
      // Axiom steps carry the rule identity and its substitution.
      ASSERT_TRUE(S.field("axiom") && S.field("axiom")->isString());
      EXPECT_FALSE(S.field("axiom")->stringValue().empty());
      ASSERT_TRUE(S.field("axiom_index") &&
                  S.field("axiom_index")->isNumber());
      ASSERT_TRUE(S.field("round") && S.field("round")->isNumber());
      ASSERT_TRUE(S.field("subst") && S.field("subst")->isObject());
    }
  }
  // Byteswap4 only compiles through heavy rewriting: at least one emitted
  // instruction must have been derived via an axiom.
  EXPECT_GT(AxiomSteps, 0u);

  // The annotated listing mentions every mnemonic and the universe facts.
  for (const alpha::Instruction &I : G.Search.Program.Instrs)
    EXPECT_NE(G.ExplanationListing.find(I.Mnemonic), std::string::npos)
        << I.Mnemonic;
  EXPECT_NE(G.ExplanationListing.find("cycle"), std::string::npos);

  // The K-1 probe refuted 4 cycles and names the binding families.
  EXPECT_NE(G.WhyUnsatText.find("K=4 refuted:"), std::string::npos)
      << G.WhyUnsatText;
  EXPECT_NE(G.WhyUnsatText.find("capacity"), std::string::npos)
      << G.WhyUnsatText;
}

TEST(Explain, WhyUnsatEmptyWhenNotRequested) {
  driver::Superoptimizer Opt;
  driver::CompileResult R = Opt.compileSource(byteswapSource(2));
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Gmas[0].ok()) << R.Gmas[0].Error;
  EXPECT_TRUE(R.Gmas[0].WhyUnsatText.empty());
  EXPECT_TRUE(R.Gmas[0].ExplanationJson.empty());
}

TEST(Explain, EGraphDumpsParse) {
  driver::Options Opts;
  Opts.EGraphDump = true;
  driver::Superoptimizer Opt(Opts);
  driver::CompileResult R = Opt.compileSource(
      R"((\procdecl tiny ((x long)) long (:= (\res (\add64 x 1)))))");
  ASSERT_TRUE(R.ok()) << R.Error;
  const driver::GmaResult &G = R.Gmas[0];
  ASSERT_TRUE(G.ok()) << G.Error;

  // DOT: a digraph with one cluster per class.
  EXPECT_EQ(G.EGraphDotText.rfind("digraph", 0), 0u) << G.EGraphDotText;
  EXPECT_NE(G.EGraphDotText.find("cluster_c"), std::string::npos);

  // JSON: parses, and the dump lists classes with member nodes.
  std::string Err;
  auto Doc = json::parse(G.EGraphJsonText, &Err);
  ASSERT_TRUE(Doc) << Err;
  const json::Value *Dump = Doc->field("dump");
  ASSERT_TRUE(Dump && Dump->isArray());
  EXPECT_FALSE(Dump->array().empty());
  for (const json::Value &C : Dump->array()) {
    ASSERT_TRUE(C.field("class") && C.field("class")->isNumber());
    ASSERT_TRUE(C.field("nodes") && C.field("nodes")->isArray());
  }
}

TEST(Explain, FocusedDumpRestrictsClasses) {
  // A focused dump with depth 0 contains exactly the focus class.
  ir::Context Ctx;
  egraph::EGraph Graph(Ctx);
  ir::TermId T = Ctx.Terms.makeBuiltin(
      ir::Builtin::Add64, {Ctx.Terms.makeVar("a"), Ctx.Terms.makeVar("b")});
  egraph::ClassId Root = Graph.addTerm(T);

  explain::EGraphDumpOptions DOpts;
  DOpts.FocusClass = Root;
  DOpts.MaxDepth = 0;
  std::string Err;
  auto Focused = json::parse(explain::egraphToJson(Graph, DOpts), &Err);
  ASSERT_TRUE(Focused) << Err;
  ASSERT_TRUE(Focused->field("dump"));
  EXPECT_EQ(Focused->field("dump")->array().size(), 1u);

  auto Full = json::parse(explain::egraphToJson(Graph), &Err);
  ASSERT_TRUE(Full) << Err;
  // Unfocused: the add node plus both variable leaves.
  EXPECT_EQ(Full->field("dump")->array().size(), 3u);

  // Depth 1 pulls in the children.
  DOpts.MaxDepth = 1;
  auto Deep = json::parse(explain::egraphToJson(Graph, DOpts), &Err);
  ASSERT_TRUE(Deep) << Err;
  EXPECT_EQ(Deep->field("dump")->array().size(), 3u);
}

} // namespace
