//===- tests/UniverseTests.cpp - encoding-universe unit tests -------------===//

#include "codegen/Search.h"
#include "codegen/Universe.h"

#include "alpha/ISA.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::codegen;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

class UniverseTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  alpha::ISA Isa{Ctx};
  EGraph G{Ctx};

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &N) {
    return G.addNode(Ctx.Ops.makeVariable(N), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  Universe build(std::vector<ClassId> Goals,
                 UniverseOptions Opts = UniverseOptions()) {
    Universe U;
    std::string Err;
    EXPECT_TRUE(U.build(G, Isa, Goals, Opts, &Err)) << Err;
    return U;
  }

  /// Terms in \p U computing class \p C.
  std::vector<const MachineTerm *> producers(const Universe &U, ClassId C) {
    std::vector<const MachineTerm *> Out;
    for (size_t I : U.producersOf(G.find(C)))
      Out.push_back(&U.terms()[I]);
    return Out;
  }
};

TEST_F(UniverseTest, VariablesAreFreeInputs) {
  ClassId X = v("x");
  ClassId Goal = app(Builtin::Add64, {X, v("y")});
  Universe U = build({Goal});
  EXPECT_TRUE(U.isFree(G.find(X)));
  EXPECT_EQ(U.inputs().size(), 2u);
  EXPECT_FALSE(U.isFree(G.find(Goal)));
}

TEST_F(UniverseTest, ZeroIsFreeOtherConstantsGetLdiq) {
  ClassId Goal = app(Builtin::Add64, {v("x"), c(0)});
  ClassId Goal2 = app(Builtin::Sub64, {c(1000), v("x")});
  Universe U = build({Goal, Goal2});
  EXPECT_TRUE(U.isFree(G.find(c(0))));
  auto Prods = producers(U, c(1000));
  ASSERT_EQ(Prods.size(), 1u);
  EXPECT_TRUE(Prods[0]->IsLdiq);
  EXPECT_EQ(Prods[0]->ConstVal, 1000u);
}

TEST_F(UniverseTest, ConstantGoalGetsLdiqEvenForZero) {
  ClassId Zero = c(0);
  Universe U = build({Zero});
  EXPECT_FALSE(U.isFree(G.find(Zero)));
  ASSERT_EQ(producers(U, Zero).size(), 1u);
  EXPECT_TRUE(producers(U, Zero)[0]->IsLdiq);
}

TEST_F(UniverseTest, ConeRestriction) {
  // Unreachable classes contribute no machine terms.
  ClassId Goal = app(Builtin::Add64, {v("x"), v("y")});
  app(Builtin::Mul64, {v("p"), v("q")}); // Unrelated.
  Universe U = build({Goal});
  for (const MachineTerm &T : U.terms())
    EXPECT_NE(T.Desc->Mnemonic, "mulq");
}

TEST_F(UniverseTest, NonSpineStoresExcluded) {
  // A store reachable only as a *value* (not part of the goal memory
  // chain) must not become an executable candidate.
  ClassId MVar = v("M");
  ClassId P = v("p");
  ClassId GoalStore = app(Builtin::Store, {MVar, P, v("x")});
  // Another store term reachable via nothing (not a goal).
  ClassId Rogue = app(Builtin::Store, {MVar, app(Builtin::Add64, {P, c(64)}),
                                       v("y")});
  (void)Rogue;
  Universe U = build({GoalStore});
  unsigned Stores = 0;
  for (const MachineTerm &T : U.terms())
    Stores += T.IsStore && !T.HasDisp;
  EXPECT_EQ(Stores, 1u); // Only the goal-chain store.
}

TEST_F(UniverseTest, DisplacementVariantsForLoads) {
  ClassId Goal =
      app(Builtin::Select, {v("M"), app(Builtin::Add64, {v("p"), c(24)})});
  Universe U = build({Goal});
  bool SawPlain = false, SawDisp = false;
  for (const MachineTerm &T : U.terms()) {
    if (!T.IsLoad)
      continue;
    SawPlain |= !T.HasDisp;
    if (T.HasDisp) {
      SawDisp = true;
      EXPECT_EQ(T.Disp, 24);
    }
  }
  EXPECT_TRUE(SawPlain);
  EXPECT_TRUE(SawDisp);
}

TEST_F(UniverseTest, DisplacementRangeRespected) {
  ClassId Goal = app(
      Builtin::Select, {v("M"), app(Builtin::Add64, {v("p"), c(1 << 20)})});
  Universe U = build({Goal});
  for (const MachineTerm &T : U.terms())
    if (T.IsLoad) {
      EXPECT_FALSE(T.HasDisp) << "2^20 exceeds the 16-bit displacement";
    }
}

TEST_F(UniverseTest, MissLatencyApplied) {
  ClassId Addr = v("p");
  ClassId Goal = app(Builtin::Select, {v("M"), Addr});
  UniverseOptions Opts;
  Opts.LoadLatencyByAddr[G.find(Addr)] = 13;
  Universe U = build({Goal}, Opts);
  for (const MachineTerm &T : U.terms())
    if (T.IsLoad) {
      EXPECT_EQ(T.Latency, 13u);
    }
}

TEST_F(UniverseTest, ImmOperandRules) {
  ClassId Small = c(7);
  ClassId Large = c(1000);
  const alpha::InstrDesc *Add = Isa.descFor(Ctx.Ops.builtin(Builtin::Add64));
  const alpha::InstrDesc *Cmov =
      Isa.descFor(Ctx.Ops.builtin(Builtin::CmovEq));
  const alpha::InstrDesc *Ldq = Isa.descFor(Ctx.Ops.builtin(Builtin::Select));
  Universe U = build({app(Builtin::Add64, {v("x"), Small})});
  // addq: literal slot is the last operand only.
  EXPECT_TRUE(U.isImmOperand(G, *Add, 1, 2, Small));
  EXPECT_FALSE(U.isImmOperand(G, *Add, 0, 2, Small));
  EXPECT_FALSE(U.isImmOperand(G, *Add, 1, 2, Large));
  EXPECT_FALSE(U.isImmOperand(G, *Add, 1, 2, v("x")));
  // cmov: the literal rides the middle (value) operand.
  EXPECT_TRUE(U.isImmOperand(G, *Cmov, 1, 3, Small));
  EXPECT_FALSE(U.isImmOperand(G, *Cmov, 2, 3, Small));
  // Loads take no literals.
  EXPECT_FALSE(U.isImmOperand(G, *Ldq, 1, 2, Small));
}

TEST_F(UniverseTest, MemoryInputFlagged) {
  ClassId Goal = app(Builtin::Select, {v("M"), v("p")});
  Universe U = build({Goal});
  bool SawMemory = false;
  for (const Universe::InputInfo &In : U.inputs()) {
    if (In.Name == "M")
      SawMemory = In.IsMemory;
    if (In.Name == "p") {
      EXPECT_FALSE(In.IsMemory);
    }
  }
  EXPECT_TRUE(SawMemory);
}

TEST_F(UniverseTest, GoalWithoutProducersFails) {
  ir::OpId Mystery = Ctx.Ops.declareOp("mystery", 0);
  ClassId Goal = G.addNode(Mystery, {});
  Universe U;
  std::string Err;
  EXPECT_FALSE(U.build(G, Isa, {Goal}, UniverseOptions(), &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===
// Search edge cases.
//===----------------------------------------------------------------------===

TEST_F(UniverseTest, SearchRespectsMinCycles) {
  ClassId Goal = app(Builtin::Add64, {v("x"), v("y")});
  Universe U = build({Goal});
  SearchOptions Opts;
  Opts.MinCycles = 3; // Start probing above the true optimum.
  SearchResult R = searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts,
                                 "min");
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 3u);
  EXPECT_FALSE(R.LowerBoundProved); // MinCycles was feasible immediately.
}

TEST_F(UniverseTest, SearchMaxCyclesTooSmall) {
  ClassId Goal = app(Builtin::Mul64, {v("x"), v("y")}); // Needs 7.
  Universe U = build({Goal});
  SearchOptions Opts;
  Opts.MaxCycles = 3;
  SearchResult R = searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts,
                                 "cap");
  EXPECT_FALSE(R.Found);
  EXPECT_NE(R.Error.find("no program within"), std::string::npos);
  EXPECT_EQ(R.Probes.size(), 3u); // K = 1, 2, 3 all refuted.
  for (const Probe &P : R.Probes)
    EXPECT_EQ(P.Result, sat::SolveResult::Unsat);
}

TEST_F(UniverseTest, BinarySearchDoublingBoundary) {
  // Optimum 7 (mulq): binary search must find it exactly.
  ClassId Goal = app(Builtin::Mul64, {v("x"), v("y")});
  Universe U = build({Goal});
  SearchOptions Opts;
  Opts.Strategy = SearchStrategy::Binary;
  Opts.MaxCycles = 32;
  SearchResult R = searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts,
                                 "bin");
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 7u);
  EXPECT_TRUE(R.LowerBoundProved);
}

TEST_F(UniverseTest, MultipleGoalsShareSubterms) {
  // r1 = x + y, r2 = (x + y) << 1: the shared sum is computed once and the
  // schedule honors both outputs.
  ClassId Sum = app(Builtin::Add64, {v("x"), v("y")});
  ClassId Shifted = app(Builtin::Shl64, {Sum, c(1)});
  Universe U = build({Sum, Shifted});
  SearchOptions Opts;
  SearchResult R = searchBudgets(
      G, Isa, U, {{"r1", Sum, false}, {"r2", Shifted, false}}, Opts, "multi");
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 2u);
  EXPECT_EQ(R.Program.Outputs.size(), 2u);
}

} // namespace

namespace {

TEST_F(UniverseTest, CertifiedRefutations) {
  // byteswap-style goal whose optimum needs probing: every UNSAT probe
  // must carry a machine-checked proof.
  ClassId Goal = app(Builtin::Mul64, {v("x"), v("y")}); // Optimum 7.
  Universe U = build({Goal});
  SearchOptions Opts;
  Opts.CertifyRefutations = true;
  SearchResult R = searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts,
                                 "cert");
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 7u);
  unsigned CertifiedRefutations = 0;
  for (const Probe &P : R.Probes) {
    if (P.Result != sat::SolveResult::Unsat)
      continue;
    EXPECT_TRUE(P.ProofChecked) << "K=" << P.Cycles;
    ++CertifiedRefutations;
  }
  EXPECT_EQ(CertifiedRefutations, 6u); // K = 1..6 all certified impossible.
}

} // namespace
