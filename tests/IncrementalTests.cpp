//===- tests/IncrementalTests.cpp - incremental budget-search tests -------===//
//
// The incremental strategy reuses one SAT solver across the whole budget
// ladder (monotone encoding + one assumption per budget). These tests pin
// the evidence contract: the incremental ladder must report the same
// minimal K, the same per-budget SAT/UNSAT answers, and the same optimality
// certificate as the fresh-solver strategies — solver reuse is a pure
// performance change.
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "codegen/Search.h"
#include "driver/Superoptimizer.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "verify/GmaGen.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <map>

using namespace denali;
using namespace denali::codegen;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

class IncrementalTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  EGraph G{Ctx};
  alpha::ISA Isa{Ctx};

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &Name) {
    return G.addNode(Ctx.Ops.makeVariable(Name), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  void saturate(size_t MaxNodes = 30000) {
    match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    match::MatchLimits Limits;
    Limits.MaxNodes = MaxNodes;
    M.saturate(G, Limits);
    ASSERT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  }

  SearchResult search(ClassId Goal, SearchStrategy Strategy,
                      bool Incremental = false, bool Certify = false) {
    SearchOptions Opts;
    Opts.Strategy = Strategy;
    Opts.Incremental = Incremental;
    Opts.CertifyRefutations = Certify;
    Universe U;
    std::string Err;
    EXPECT_TRUE(U.build(G, Isa, {G.find(Goal)}, UniverseOptions(), &Err))
        << Err;
    return searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts, "test");
  }

  /// The cross-strategy contract: all fresh and incremental variants pin
  /// the same minimal K, the same program cost, and the same certificate.
  void expectAllStrategiesAgree(ClassId Goal) {
    SearchResult RL = search(Goal, SearchStrategy::Linear);
    SearchResult RB = search(Goal, SearchStrategy::Binary);
    SearchResult RP = search(Goal, SearchStrategy::Portfolio);
    SearchResult RI = search(Goal, SearchStrategy::Incremental);
    SearchResult RLI = search(Goal, SearchStrategy::Linear, true);
    SearchResult RBI = search(Goal, SearchStrategy::Binary, true);
    ASSERT_TRUE(RL.Found) << RL.Error;
    ASSERT_TRUE(RB.Found) << RB.Error;
    ASSERT_TRUE(RP.Found) << RP.Error;
    ASSERT_TRUE(RI.Found) << RI.Error;
    ASSERT_TRUE(RLI.Found) << RLI.Error;
    ASSERT_TRUE(RBI.Found) << RBI.Error;
    EXPECT_EQ(RI.Cycles, RL.Cycles);
    EXPECT_EQ(RLI.Cycles, RL.Cycles);
    EXPECT_EQ(RBI.Cycles, RL.Cycles);
    EXPECT_EQ(RB.Cycles, RL.Cycles);
    EXPECT_EQ(RP.Cycles, RL.Cycles);
    EXPECT_EQ(RI.LowerBoundProved, RL.LowerBoundProved);
    EXPECT_EQ(RBI.LowerBoundProved, RB.LowerBoundProved);
    // Program cost (the objective) matches; the schedules themselves may
    // differ — any minimal-K model is a correct answer.
    EXPECT_EQ(RI.Program.Cycles, RL.Program.Cycles);
    EXPECT_EQ(RI.Program.Instrs.size(), RL.Program.Instrs.size());
  }
};

TEST_F(IncrementalTest, AgreesOnScaledAdd) {
  ClassId Goal = app(Builtin::Add64, {app(Builtin::Mul64, {v("reg6"), c(4)}),
                                      c(1)});
  saturate();
  expectAllStrategiesAgree(Goal);
}

TEST_F(IncrementalTest, AgreesOnByteswap2) {
  ClassId X = v("x");
  ClassId Lo = app(Builtin::Shl64, {app(Builtin::And64, {X, c(0xff)}), c(8)});
  ClassId Hi = app(Builtin::And64, {app(Builtin::Shr64, {X, c(8)}), c(0xff)});
  ClassId Goal = app(Builtin::Or64, {Lo, Hi});
  saturate();
  expectAllStrategiesAgree(Goal);
}

TEST_F(IncrementalTest, AgreesOnMultiCycleMix) {
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Shl64, {v("x"), c(3)}),
       app(Builtin::Xor64, {v("y"), app(Builtin::And64, {v("x"), v("y")})})});
  saturate();
  expectAllStrategiesAgree(Goal);
}

TEST_F(IncrementalTest, EvidenceContractPerProbe) {
  // x + 100000 needs a ldiq first: minimal budget 2, so the incremental
  // ladder must record a real UNSAT at K=1 — an optimality certificate,
  // not a skipped budget.
  ClassId Goal = app(Builtin::Add64, {v("x"), c(100000)});
  saturate();
  SearchResult RL = search(Goal, SearchStrategy::Linear);
  SearchResult RI = search(Goal, SearchStrategy::Incremental);
  ASSERT_TRUE(RL.Found) << RL.Error;
  ASSERT_TRUE(RI.Found) << RI.Error;
  EXPECT_EQ(RI.Cycles, 2u);
  EXPECT_TRUE(RI.LowerBoundProved);

  // Identical probe ladder: same budgets in the same order with the same
  // answers as the fresh-solver linear search.
  ASSERT_EQ(RI.Probes.size(), RL.Probes.size());
  for (size_t I = 0; I < RI.Probes.size(); ++I) {
    EXPECT_EQ(RI.Probes[I].Cycles, RL.Probes[I].Cycles);
    EXPECT_EQ(RI.Probes[I].Result, RL.Probes[I].Result);
    EXPECT_FALSE(RI.Probes[I].Cancelled);
  }

  // The shared encoding is charged to the first probe only.
  ASSERT_GE(RI.Probes.size(), 2u);
  EXPECT_GT(RI.Probes[0].EncodeSeconds, 0.0);
  for (size_t I = 1; I < RI.Probes.size(); ++I)
    EXPECT_EQ(RI.Probes[I].EncodeSeconds, 0.0);

  ASSERT_GE(RI.WinningProbe, 0);
  EXPECT_EQ(RI.Probes[RI.WinningProbe].Result, sat::SolveResult::Sat);
  EXPECT_EQ(RI.Probes[RI.WinningProbe].Cycles, RI.Cycles);
}

TEST_F(IncrementalTest, RefutationsCertifiedUnderAssumptions) {
  // Every UNSAT probe of the incremental ladder carries a machine-checked
  // RUP certificate (cumulative proof log + final assumption conflict
  // against the monotone CNF + budget-assumption unit).
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Shl64, {v("x"), c(3)}),
       app(Builtin::Xor64, {v("y"), app(Builtin::And64, {v("x"), v("y")})})});
  saturate();
  SearchResult RI =
      search(Goal, SearchStrategy::Incremental, false, /*Certify=*/true);
  ASSERT_TRUE(RI.Found) << RI.Error;
  EXPECT_TRUE(RI.LowerBoundProved);
  size_t UnsatProbes = 0;
  for (const Probe &P : RI.Probes)
    if (P.Result == sat::SolveResult::Unsat) {
      ++UnsatProbes;
      EXPECT_TRUE(P.ProofChecked) << "budget " << P.Cycles;
      EXPECT_GT(P.ProofSteps, 0u) << "budget " << P.Cycles;
    }
  EXPECT_GT(UnsatProbes, 0u);
}

TEST_F(IncrementalTest, BinaryLadderSharesTheSolver) {
  // Binary + Incremental bisects the same assumption ladder: probes may
  // come in bisection order, but the answer and the per-budget evidence
  // map must match the fresh binary search.
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Shl64, {v("x"), c(3)}),
       app(Builtin::Xor64, {v("y"), app(Builtin::And64, {v("x"), v("y")})})});
  saturate();
  SearchResult RB = search(Goal, SearchStrategy::Binary);
  SearchResult RBI = search(Goal, SearchStrategy::Binary, true);
  ASSERT_TRUE(RB.Found) << RB.Error;
  ASSERT_TRUE(RBI.Found) << RBI.Error;
  EXPECT_EQ(RBI.Cycles, RB.Cycles);
  std::map<unsigned, sat::SolveResult> Fresh, Shared;
  for (const Probe &P : RB.Probes)
    Fresh[P.Cycles] = P.Result;
  for (const Probe &P : RBI.Probes)
    Shared[P.Cycles] = P.Result;
  EXPECT_EQ(Shared, Fresh);
}

TEST_F(IncrementalTest, FreeGoalShortCircuits) {
  ClassId Goal = v("x");
  saturate();
  SearchResult R = search(Goal, SearchStrategy::Incremental);
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 0u);
  EXPECT_TRUE(R.Program.Instrs.empty());
}

//===----------------------------------------------------------------------===
// Driver-level equivalence on goal terms (the library entry point the
// example programs use), with differential verification of the produced
// program.
//===----------------------------------------------------------------------===

driver::GmaResult compileMix(SearchStrategy Strategy, bool Incremental) {
  driver::Options Opts;
  Opts.Search.Strategy = Strategy;
  Opts.Search.Incremental = Incremental;
  Opts.Search.MaxCycles = 12;
  driver::Superoptimizer Opt(Opts);
  ir::Context &Ctx = Opt.context();
  ir::TermId X = Ctx.Terms.makeVar("x");
  ir::TermId Y = Ctx.Terms.makeVar("y");
  ir::TermId Mul = Ctx.Terms.makeBuiltin(Builtin::Mul64,
                                         {X, Ctx.Terms.makeConst(8)});
  ir::TermId Sum = Ctx.Terms.makeBuiltin(Builtin::Add64, {Mul, Y});
  ir::TermId Goal = Ctx.Terms.makeBuiltin(Builtin::Xor64,
                                          {Sum, Ctx.Terms.makeConst(0x5a)});
  driver::GmaResult R = Opt.compileGoals("mix", {{"res", Goal}});
  EXPECT_TRUE(R.ok()) << R.Error << R.Search.Error;
  if (R.ok()) {
    auto Err = Opt.verify(R);
    EXPECT_FALSE(Err) << (Err ? *Err : "");
  }
  return R;
}

TEST(IncrementalDriver, VerifiedAndAgreesOnGoalTerms) {
  driver::GmaResult RL = compileMix(SearchStrategy::Linear, false);
  driver::GmaResult RI = compileMix(SearchStrategy::Incremental, false);
  driver::GmaResult RBI = compileMix(SearchStrategy::Binary, true);
  ASSERT_TRUE(RL.ok() && RI.ok() && RBI.ok());
  EXPECT_EQ(RI.Search.Cycles, RL.Search.Cycles);
  EXPECT_EQ(RBI.Search.Cycles, RL.Search.Cycles);
  EXPECT_EQ(RI.Search.LowerBoundProved, RL.Search.LowerBoundProved);
}

//===----------------------------------------------------------------------===
// Differential GmaGen fuzzing: seeded random GMAs must yield the same
// minimal K under the fresh-solver and shared-solver ladders, and every
// result must survive the full oracle (simulator + schedule replay).
//===----------------------------------------------------------------------===

class IncrementalDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalDifferential, AgreesWithLinearOnGeneratedGmas) {
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 12;
  Opt.options().Matching.MaxNodes = 8000;
  Opt.options().Matching.MaxRounds = 8;

  verify::GmaGen Gen(Opt.context(), 1000 + GetParam());
  for (unsigned I = 0; I < 3; ++I) {
    gma::GMA G = Gen.next();
    SCOPED_TRACE(G.toString(Opt.context()));
    auto Err = verify::crossCheckStrategies(
        Opt, G,
        {codegen::SearchStrategy::Linear,
         codegen::SearchStrategy::Incremental});
    EXPECT_FALSE(Err) << *Err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferential,
                         ::testing::Range(0u, 6u));

} // namespace
