//===- tests/FuzzTests.cpp - randomized end-to-end program fuzzing --------===//
//
// Generates random Denali source programs (straight-line code, loops,
// memory traffic at distinct constant offsets, casts, byte operations),
// compiles each through the full pipeline, and differentially verifies the
// generated EV6 code against the reference semantics — the strongest
// whole-system property test in the suite: any unsound axiom, matcher bug,
// encoder bug, extraction bug, or simulator bug shows up as a verification
// failure.
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "driver/Superoptimizer.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "support/StringExtras.h"
#include "verify/EGraphInvariants.h"
#include "verify/GmaGen.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <random>

using namespace denali;

namespace {

/// Random expression over the in-scope variables (depth-bounded).
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed * 6364136223846793005ULL + 1442695040888963407ULL) {}

  std::string generate() {
    Vars = {"a", "b", "c"};
    std::string Body;
    unsigned NumStmts = 2 + Rng() % 4;
    unsigned Temps = 0;
    std::string Stmts;
    for (unsigned I = 0; I < NumStmts; ++I) {
      switch (Rng() % 5) {
      case 0: { // Fresh temp.
        std::string Name = strFormat("t%u", Temps++);
        Stmts += strFormat("    (:= (%s %s))\n", Name.c_str(),
                           expr(2).c_str());
        // Declared below; collect for the \var wrapper.
        NewVars.push_back(Name);
        Vars.push_back(Name);
        break;
      }
      case 1: // Reassign an existing variable.
        Stmts += strFormat("    (:= (%s %s))\n", pick(Vars).c_str(),
                           expr(2).c_str());
        break;
      case 2: // Store to a distinct slot.
        Stmts += strFormat("    (:= ((\\deref (+ p %u)) %s))\n",
                           static_cast<unsigned>(8 * (Rng() % 4)),
                           expr(1).c_str());
        break;
      case 3: // Multi-assign (simultaneous).
        Stmts += strFormat("    (:= (%s %s) (%s %s))\n", "a",
                           expr(1).c_str(), "b", expr(1).c_str());
        break;
      default: // Result contribution.
        Stmts += strFormat("    (:= (\\res %s))\n", expr(2).c_str());
        break;
      }
    }
    Stmts += strFormat("    (:= (\\res %s))\n", expr(2).c_str());

    std::string Prog = "(\\procdecl fuzz ((a long) (b long) (c long) "
                       "(p (\\ref long))) long\n";
    std::string Close = ")";
    for (const std::string &V : NewVars) {
      Prog += strFormat("  (\\var (%s long 0)\n", V.c_str());
      Close += ")";
    }
    Prog += "  (\\semi\n" + Stmts + "  )" + Close;
    return Prog;
  }

private:
  std::mt19937_64 Rng;
  std::vector<std::string> Vars;
  std::vector<std::string> NewVars;

  std::string pick(const std::vector<std::string> &From) {
    return From[Rng() % From.size()];
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || Rng() % 3 == 0) {
      switch (Rng() % 3) {
      case 0:
        return pick(Vars);
      case 1:
        return std::to_string(Rng() % 256);
      default:
        return strFormat("(\\deref (+ p %u))",
                         static_cast<unsigned>(8 * (Rng() % 4)));
      }
    }
    static const char *BinOps[] = {"\\add64", "\\sub64",  "\\and64",
                                   "\\or64",  "\\xor64",  "\\mul64",
                                   "\\cmpult", "\\shl64"};
    static const char *UnOps[] = {"\\not64", "\\neg64", "\\zext16",
                                  "\\zext8"};
    if (Rng() % 4 == 0)
      return strFormat("(%s %s)", UnOps[Rng() % std::size(UnOps)],
                       expr(Depth - 1).c_str());
    if (Rng() % 8 == 0)
      return strFormat("(\\selectb %s %u)", expr(Depth - 1).c_str(),
                       static_cast<unsigned>(Rng() % 8));
    const char *Op = BinOps[Rng() % std::size(BinOps)];
    // Shift amounts are kept literal to avoid huge-variance shifts
    // (semantically fine, but they make every alternative equal-cost).
    if (std::string(Op) == "\\shl64")
      return strFormat("(%s %s %u)", Op, expr(Depth - 1).c_str(),
                       static_cast<unsigned>(1 + Rng() % 8));
    return strFormat("(%s %s %s)", Op, expr(Depth - 1).c_str(),
                     expr(Depth - 1).c_str());
  }
};

class FuzzEndToEnd : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzEndToEnd, CompileAndVerify) {
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 24;
  Opt.options().Matching.MaxNodes = 20000;
  Opt.options().Matching.MaxRounds = 12;
  driver::CompileResult R = Opt.compileSource(Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  for (driver::GmaResult &G : R.Gmas) {
    // Some random programs exceed the budget (e.g. chained multiplies);
    // that is a legitimate "no program within N cycles" outcome.
    if (!G.ok()) {
      EXPECT_NE(G.Error.find("no program within"), std::string::npos)
          << G.Error;
      continue;
    }
    EXPECT_EQ(Opt.verify(G, /*Trials=*/8), std::nullopt)
        << G.Gma.toString(Opt.context()) << "\n"
        << G.Search.Program.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEndToEnd, ::testing::Range(0u, 30u));

//===----------------------------------------------------------------------===
// Loop-program fuzzing: random loop bodies with pointer advance, optional
// unrolling and pipelining.
//===----------------------------------------------------------------------===

class FuzzLoops : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzLoops, CompileAndVerify) {
  std::mt19937_64 Rng(GetParam() * 2862933555777941757ULL + 3037000493ULL);
  unsigned Unroll = 1 + Rng() % 2;
  bool Pipeline = Rng() & 1;
  unsigned Stride = 8 * (1 + Rng() % 3);
  const char *Op = (Rng() & 1) ? "\\add64" : "\\xor64";
  std::string Source = strFormat(R"(
(\procdecl floop ((ptr (\ref long)) (ptrend (\ref long)) (acc long)) long
  (\do %s (\unroll %u) (-> (\cmpult ptr ptrend)
    (\semi (:= (acc (%s acc (\deref ptr))))
           (:= (ptr (+ ptr %u)))))))
)", Pipeline ? "(\\pipeline)" : "", Unroll, Op, Stride);
  SCOPED_TRACE(Source);

  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 16;
  driver::CompileResult R = Opt.compileSource(Source);
  ASSERT_TRUE(R.ok()) << R.Error;
  for (driver::GmaResult &G : R.Gmas) {
    ASSERT_TRUE(G.ok()) << G.Error;
    EXPECT_EQ(Opt.verify(G, /*Trials=*/8), std::nullopt)
        << G.Search.Program.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLoops, ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===
// GmaGen saturation fuzzing: random GMA goal terms through matcher
// saturation, with the structural E-graph audit (membership, congruence,
// constant analysis — verify::checkEGraphInvariants) after every round.
// saturate() is one-shot, so "after round R" is reproduced by rerunning
// with MaxRounds = R on a fresh graph over the same seeded GMA. The
// rebuild mode toggles across the (seed, rounds) grid, so both the
// deferred (batched rebuild) and eager (per-assert repair) paths face
// every input.
//===----------------------------------------------------------------------===

class FuzzSaturation : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSaturation, InvariantsHoldAfterEachRound) {
  ir::Context Ctx;
  verify::GmaGen Gen(Ctx, GetParam());
  gma::GMA G = Gen.next();
  SCOPED_TRACE(G.toString(Ctx));

  std::vector<match::Axiom> Axioms = axioms::loadBuiltinAxioms(Ctx);
  for (unsigned Rounds = 1; Rounds <= 4; ++Rounds) {
    egraph::EGraph Graph(Ctx);
    for (ir::TermId T : G.NewVals)
      Graph.addTerm(T);
    if (G.Guard)
      Graph.addTerm(*G.Guard);

    match::Matcher M(Axioms);
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    match::MatchLimits Limits;
    Limits.MaxRounds = Rounds;
    Limits.MaxNodes = 4000;
    Limits.EagerRebuild = ((GetParam() + Rounds) & 1) != 0;
    match::MatchStats Stats = M.saturate(Graph, Limits);
    ASSERT_FALSE(Graph.isInconsistent()) << Graph.inconsistencyMessage();

    verify::InvariantReport R = verify::checkEGraphInvariants(Graph);
    EXPECT_TRUE(R.Ok) << "after " << Stats.Rounds << " round(s): "
                      << R.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSaturation, ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===
// Provenance fuzzing: with the proof forest on, every derivation chain the
// graph produces must replay as a valid proof — consecutive steps share
// endpoints, both sides of every step are find-equal in the final graph,
// axiom steps carry an in-range rule id and substitution slice — while the
// structural invariants keep holding.
//===----------------------------------------------------------------------===

class FuzzProvenance : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzProvenance, DerivationChainsReplay) {
  ir::Context Ctx;
  verify::GmaGen Gen(Ctx, GetParam() + 100);
  gma::GMA G = Gen.next();
  SCOPED_TRACE(G.toString(Ctx));

  std::vector<match::Axiom> Axioms = axioms::loadBuiltinAxioms(Ctx);
  egraph::EGraph Graph(Ctx);
  Graph.enableProvenance();
  for (ir::TermId T : G.NewVals)
    Graph.addTerm(T);
  if (G.Guard)
    Graph.addTerm(*G.Guard);

  match::Matcher M(Axioms);
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  match::MatchLimits Limits;
  Limits.MaxRounds = 4;
  Limits.MaxNodes = 3000;
  M.saturate(Graph, Limits);
  ASSERT_FALSE(Graph.isInconsistent()) << Graph.inconsistencyMessage();
  verify::InvariantReport IR = verify::checkEGraphInvariants(Graph);
  ASSERT_TRUE(IR.Ok) << IR.toString();

  size_t Chains = 0;
  bool AnyMergedClass = false;
  for (egraph::ClassId C : Graph.canonicalClasses()) {
    std::vector<egraph::ENodeId> Members = Graph.classNodes(C);
    if (Members.size() < 2)
      continue;
    AnyMergedClass = true;
    egraph::ClassId Anchor = Graph.node(Members.front()).Class;
    for (size_t I = 1; I < Members.size(); ++I) {
      egraph::ClassId Other = Graph.node(Members[I]).Class;
      std::vector<egraph::ProofStep> Chain = Graph.explain(Anchor, Other);
      if (Chain.empty()) {
        // Only legitimate when both nodes share one proof-forest node.
        EXPECT_EQ(Anchor, Other);
        continue;
      }
      ++Chains;
      EXPECT_EQ(Chain.front().From, Anchor);
      EXPECT_EQ(Chain.back().To, Other);
      for (size_t S = 0; S < Chain.size(); ++S) {
        const egraph::ProofStep &St = Chain[S];
        if (S)
          EXPECT_EQ(St.From, Chain[S - 1].To);
        EXPECT_TRUE(Graph.sameClass(St.From, St.To));
        if (St.J.TheKind == egraph::Justification::Kind::Axiom) {
          ASSERT_LT(St.J.RuleId, Axioms.size());
          ASSERT_LE(static_cast<size_t>(St.J.SubstBegin) + St.J.SubstLen,
                    Graph.substArena().size());
        }
      }
    }
  }
  // Saturation merged distinct-born nodes on these seeds, so at least one
  // chain must have replayed.
  EXPECT_TRUE(!AnyMergedClass || Chains > 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProvenance, ::testing::Range(0u, 8u));

} // namespace
