//===- tests/ElaborateTests.cpp - elaborator unit tests -------------------===//
//
// Direct tests of the "heuristically relevant instances" machinery
// (section 5): each elaborator in isolation, without the full axiom sets.
//
//===----------------------------------------------------------------------===//

#include "match/Elaborate.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::match;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

class ElaborateTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  EGraph G{Ctx};

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &N) {
    return G.addNode(Ctx.Ops.makeVariable(N), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  bool classHasOp(ClassId C, Builtin B) {
    for (ENodeId N : G.classNodes(C))
      if (G.node(N).Op == Ctx.Ops.builtin(B))
        return true;
    return false;
  }
};

TEST_F(ElaborateTest, PowerOfTwoInMultiplyContext) {
  ClassId Four = c(4);
  app(Builtin::Mul64, {v("x"), Four});
  powerOfTwoElaborator()(G);
  // 4 = 2**2 was asserted: the constant's class gained a pow node.
  EXPECT_TRUE(classHasOp(Four, Builtin::Pow));
}

TEST_F(ElaborateTest, PowerOfTwoIgnoresNonMultiplyConstants) {
  ClassId Four = c(4);
  app(Builtin::Add64, {v("x"), Four}); // Additive use only.
  powerOfTwoElaborator()(G);
  EXPECT_FALSE(classHasOp(Four, Builtin::Pow));
}

TEST_F(ElaborateTest, PowerOfTwoIgnoresNonPowers) {
  ClassId Six = c(6);
  app(Builtin::Mul64, {v("x"), Six});
  powerOfTwoElaborator()(G);
  EXPECT_FALSE(classHasOp(Six, Builtin::Pow));
}

TEST_F(ElaborateTest, ByteMaskToZapnot) {
  ClassId T = app(Builtin::And64, {v("x"), c(0x00ff00ff)});
  byteMaskElaborator()(G);
  EXPECT_TRUE(classHasOp(T, Builtin::Zapnot));
}

TEST_F(ElaborateTest, NonByteRegularMaskIgnored) {
  ClassId T = app(Builtin::And64, {v("x"), c(0x00ff00f0)});
  byteMaskElaborator()(G);
  EXPECT_FALSE(classHasOp(T, Builtin::Zapnot));
}

TEST_F(ElaborateTest, ByteShiftDecomposition) {
  ClassId Sixteen = c(16);
  app(Builtin::Shl64, {v("x"), Sixteen});
  byteShiftElaborator()(G);
  // 16 = 8 * 2 was asserted, enabling the insbl axioms.
  EXPECT_TRUE(classHasOp(Sixteen, Builtin::Mul64));
}

TEST_F(ElaborateTest, NonByteShiftIgnored) {
  ClassId Nine = c(9);
  app(Builtin::Shl64, {v("x"), Nine});
  byteShiftElaborator()(G);
  EXPECT_FALSE(classHasOp(Nine, Builtin::Mul64));
}

TEST_F(ElaborateTest, OffsetDisequality) {
  ClassId MVar = v("M");
  ClassId P = v("p");
  ClassId P8 = app(Builtin::Add64, {P, c(8)});
  app(Builtin::Select, {MVar, P});
  app(Builtin::Select, {MVar, P8});
  EXPECT_FALSE(G.areDistinct(P, P8));
  offsetDisequalityElaborator()(G);
  EXPECT_TRUE(G.areDistinct(P, P8));
}

TEST_F(ElaborateTest, OffsetDisequalityThroughSub) {
  ClassId MVar = v("M");
  ClassId P = v("p");
  ClassId PM8 = app(Builtin::Sub64, {P, c(8)});
  ClassId P8 = app(Builtin::Add64, {P, c(8)});
  app(Builtin::Select, {MVar, PM8});
  app(Builtin::Select, {MVar, P8});
  offsetDisequalityElaborator()(G);
  EXPECT_TRUE(G.areDistinct(PM8, P8)); // p-8 != p+8.
}

TEST_F(ElaborateTest, DifferentBasesNotRelated) {
  ClassId MVar = v("M");
  ClassId P = app(Builtin::Add64, {v("p"), c(8)});
  ClassId Q = app(Builtin::Add64, {v("q"), c(16)});
  app(Builtin::Select, {MVar, P});
  app(Builtin::Select, {MVar, Q});
  offsetDisequalityElaborator()(G);
  // p+8 vs q+16: different bases, may alias — must NOT be distinct.
  EXPECT_FALSE(G.areDistinct(P, Q));
}

TEST_F(ElaborateTest, SameOffsetNotDistinct) {
  ClassId MVar = v("M");
  ClassId A = app(Builtin::Add64, {v("p"), c(8)});
  ClassId B = app(Builtin::Add64, {v("p"), c(8)});
  app(Builtin::Select, {MVar, A});
  app(Builtin::Select, {MVar, B});
  offsetDisequalityElaborator()(G);
  EXPECT_TRUE(G.sameClass(A, B)); // Hashconsed to one class anyway.
  EXPECT_FALSE(G.areDistinct(A, B));
}

TEST_F(ElaborateTest, ChainedOffsets) {
  // (p + 8) + 8 vs p + 8: offsets 16 vs 8 from the same base.
  ClassId MVar = v("M");
  ClassId P8 = app(Builtin::Add64, {v("p"), c(8)});
  ClassId P16 = app(Builtin::Add64, {P8, c(8)});
  app(Builtin::Select, {MVar, P8});
  app(Builtin::Select, {MVar, P16});
  offsetDisequalityElaborator()(G);
  EXPECT_TRUE(G.areDistinct(P8, P16));
}

TEST_F(ElaborateTest, ConstantAddressesGroup) {
  // Absolute addresses 100 and 108 are provably different.
  ClassId MVar = v("M");
  ClassId A = c(100);
  ClassId B = c(108);
  app(Builtin::Select, {MVar, A});
  app(Builtin::Select, {MVar, B});
  offsetDisequalityElaborator()(G);
  EXPECT_TRUE(G.areDistinct(A, B)); // Also via constant distinctness.
}

TEST_F(ElaborateTest, ElaboratorsAreIdempotent) {
  ClassId Four = c(4);
  app(Builtin::Mul64, {v("x"), Four});
  powerOfTwoElaborator()(G);
  uint64_t V1 = G.version();
  powerOfTwoElaborator()(G);
  EXPECT_EQ(G.version(), V1); // Second run changes nothing.
}

} // namespace
