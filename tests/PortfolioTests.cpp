//===- tests/PortfolioTests.cpp - portfolio budget-search tests -----------===//
//
// Cross-strategy equivalence: Linear, Binary, and Portfolio must pin the
// same minimal cycle budget with the same optimality evidence, because the
// portfolio only reorders probe execution — it never changes which budgets
// count as evidence.
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "codegen/Search.h"
#include "driver/Superoptimizer.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "sat/Solver.h"
#include "verify/GmaGen.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>

using namespace denali;
using namespace denali::codegen;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

/// Same shape as the codegen PipelineTest fixture: e-graph + ISA +
/// builtin-axiom saturation, then searchBudgets under a chosen strategy.
class PortfolioTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  EGraph G{Ctx};
  alpha::ISA Isa{Ctx};

  ClassId c(uint64_t V) { return G.addConst(V); }
  ClassId v(const std::string &Name) {
    return G.addNode(Ctx.Ops.makeVariable(Name), {});
  }
  ClassId app(Builtin B, std::vector<ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  void saturate(size_t MaxNodes = 30000) {
    match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    match::MatchLimits Limits;
    Limits.MaxNodes = MaxNodes;
    M.saturate(G, Limits);
    ASSERT_FALSE(G.isInconsistent()) << G.inconsistencyMessage();
  }

  SearchResult search(ClassId Goal, SearchStrategy Strategy,
                      unsigned Threads = 4) {
    SearchOptions Opts;
    Opts.Strategy = Strategy;
    Opts.Threads = Threads;
    Universe U;
    std::string Err;
    EXPECT_TRUE(U.build(G, Isa, {G.find(Goal)}, UniverseOptions(), &Err))
        << Err;
    return searchBudgets(G, Isa, U, {{"res", Goal, false}}, Opts, "test");
  }

  /// Runs all three strategies on \p Goal and checks they agree.
  void expectStrategiesAgree(ClassId Goal) {
    SearchResult RL = search(Goal, SearchStrategy::Linear);
    SearchResult RB = search(Goal, SearchStrategy::Binary);
    SearchResult RP = search(Goal, SearchStrategy::Portfolio);
    ASSERT_TRUE(RL.Found) << RL.Error;
    ASSERT_TRUE(RB.Found) << RB.Error;
    ASSERT_TRUE(RP.Found) << RP.Error;
    EXPECT_EQ(RP.Cycles, RL.Cycles);
    EXPECT_EQ(RB.Cycles, RL.Cycles);
    EXPECT_EQ(RP.LowerBoundProved, RL.LowerBoundProved);
  }
};

TEST_F(PortfolioTest, AgreesOnScaledAdd) {
  // reg6*4 + 1 — Figure 2's one-instruction s4addq.
  ClassId Goal = app(Builtin::Add64, {app(Builtin::Mul64, {v("reg6"), c(4)}),
                                      c(1)});
  saturate();
  expectStrategiesAgree(Goal);
}

TEST_F(PortfolioTest, AgreesOnByteswap2) {
  // Two-byte swap of the low halfword: ((x & 0xff) << 8) | ((x >> 8) & 0xff)
  // — a miniature of the byteswap4 example GMA.
  ClassId X = v("x");
  ClassId Lo = app(Builtin::Shl64, {app(Builtin::And64, {X, c(0xff)}), c(8)});
  ClassId Hi = app(Builtin::And64, {app(Builtin::Shr64, {X, c(8)}), c(0xff)});
  ClassId Goal = app(Builtin::Or64, {Lo, Hi});
  saturate();
  expectStrategiesAgree(Goal);
}

TEST_F(PortfolioTest, AgreesOnMultiCycleMix) {
  // Same goal the Binary-vs-Linear test uses: shift + xor + and.
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Shl64, {v("x"), c(3)}),
       app(Builtin::Xor64, {v("y"), app(Builtin::And64, {v("x"), v("y")})})});
  saturate();
  expectStrategiesAgree(Goal);
}

TEST_F(PortfolioTest, SingleThreadDegradesGracefully) {
  ClassId Goal = app(Builtin::Add64, {v("x"), c(100000)});
  saturate();
  SearchResult RL = search(Goal, SearchStrategy::Linear);
  SearchResult RP = search(Goal, SearchStrategy::Portfolio, /*Threads=*/1);
  ASSERT_TRUE(RL.Found) << RL.Error;
  ASSERT_TRUE(RP.Found) << RP.Error;
  EXPECT_EQ(RP.Cycles, RL.Cycles);
  EXPECT_EQ(RP.LowerBoundProved, RL.LowerBoundProved);
}

TEST_F(PortfolioTest, EvidenceMatchesSequentialSemantics) {
  // x + 100000 needs a ldiq first: minimal budget 2, so the portfolio must
  // record UNSAT at K=1 (not a cancellation) to claim the lower bound.
  ClassId Goal = app(Builtin::Add64, {v("x"), c(100000)});
  saturate();
  SearchResult R = search(Goal, SearchStrategy::Portfolio);
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 2u);
  EXPECT_TRUE(R.LowerBoundProved);

  // Every budget below the answer carries real UNSAT evidence.
  bool SawUnsatBelow = false;
  for (const Probe &P : R.Probes) {
    if (P.Cycles < R.Cycles) {
      EXPECT_EQ(P.Result, sat::SolveResult::Unsat)
          << "budget " << P.Cycles << " below the answer must be UNSAT";
      EXPECT_FALSE(P.Cancelled);
      SawUnsatBelow = true;
    }
    if (P.Cancelled) {
      EXPECT_GT(P.Cycles, R.Cycles);
      EXPECT_EQ(P.Result, sat::SolveResult::Unknown);
    }
  }
  EXPECT_TRUE(SawUnsatBelow);

  // The winning probe is recorded and is the SAT answer at the minimum.
  ASSERT_GE(R.WinningProbe, 0);
  ASSERT_LT(static_cast<size_t>(R.WinningProbe), R.Probes.size());
  EXPECT_EQ(R.Probes[R.WinningProbe].Result, sat::SolveResult::Sat);
  EXPECT_EQ(R.Probes[R.WinningProbe].Cycles, R.Cycles);
  EXPECT_EQ(R.CancelledProbes,
            static_cast<size_t>(std::count_if(
                R.Probes.begin(), R.Probes.end(),
                [](const Probe &P) { return P.Cancelled; })));
  EXPECT_GT(R.WallSeconds, 0.0);
  EXPECT_GE(R.CpuSeconds, 0.0);
}

TEST_F(PortfolioTest, CancellationIsObservableAndBounded) {
  // A losing worker must wind down promptly once the winner cancels it: the
  // solver polls its interrupt flag at every conflict/decision/restart
  // boundary, so a cancelled probe may complete at most one further
  // conflict after the request. The probe also carries the wall-clock
  // cancellation latency when the portfolio recorded the request time.
  ClassId Goal = app(
      Builtin::Add64,
      {app(Builtin::Shl64, {v("x"), c(3)}),
       app(Builtin::Xor64, {v("y"), app(Builtin::And64, {v("x"), v("y")})})});
  saturate();

  size_t CancelledSeen = 0;
  for (int Attempt = 0; Attempt < 8 && !CancelledSeen; ++Attempt) {
    SearchResult R = search(Goal, SearchStrategy::Portfolio);
    ASSERT_TRUE(R.Found) << R.Error;
    for (const Probe &P : R.Probes) {
      if (!P.Cancelled)
        continue;
      ++CancelledSeen;
      // The conflict bound is structural (poll placement), not timing.
      EXPECT_LE(P.ConflictsAfterCancel, 1u)
          << "budget " << P.Cycles << " kept working after cancellation";
      if (P.CancelLatencySeconds >= 0)
        EXPECT_LT(P.CancelLatencySeconds, R.WallSeconds + 1.0)
            << "budget " << P.Cycles;
    }
  }
  // Whether a probe gets cancelled is a race (fast probes may finish
  // first); over several attempts at least one should lose. Don't fail a
  // fast machine, but do exercise the assertions when we can.
  if (!CancelledSeen)
    GTEST_LOG_(WARNING) << "no probe was cancelled in any attempt; "
                           "bound not exercised";
}

TEST(SolverInterrupt, PreSetInterruptStopsBeforeAnyConflict) {
  // With the flag already raised, the very first poll observes it: the
  // solve must return Unknown with zero post-interrupt conflicts — the
  // deterministic anchor for the ≤1 bound asserted above.
  sat::Solver S;
  std::mt19937_64 Rng(7);
  constexpr int NumVars = 40;
  for (int I = 0; I < NumVars; ++I)
    S.newVar();
  for (int I = 0; I < 120; ++I) {
    sat::ClauseLits C;
    for (int J = 0; J < 3; ++J)
      C.push_back(
          sat::Lit(static_cast<sat::Var>(Rng() % NumVars), Rng() & 1));
    S.addClause(C);
  }
  std::atomic<bool> Stop{true};
  S.setInterrupt(&Stop);
  EXPECT_EQ(S.solve(), sat::SolveResult::Unknown);
  EXPECT_TRUE(S.interrupted());
  EXPECT_EQ(S.conflictsAfterInterrupt(), 0u);

  // Lowering the flag lets the same solver finish normally.
  Stop.store(false);
  EXPECT_NE(S.solve(), sat::SolveResult::Unknown);
  EXPECT_FALSE(S.interrupted());
}

TEST_F(PortfolioTest, FreeGoalSkipsThePool) {
  ClassId Goal = v("x");
  saturate();
  SearchResult R = search(Goal, SearchStrategy::Portfolio);
  ASSERT_TRUE(R.Found) << R.Error;
  EXPECT_EQ(R.Cycles, 0u);
  EXPECT_TRUE(R.Program.Instrs.empty());
}

//===----------------------------------------------------------------------===
// Driver-level equivalence on goal terms (the library entry point the
// example programs use).
//===----------------------------------------------------------------------===

SearchResult compileWith(SearchStrategy Strategy) {
  driver::Options Opts;
  Opts.Search.Strategy = Strategy;
  Opts.Search.Threads = 4;
  Opts.Search.MaxCycles = 12;
  driver::Superoptimizer Opt(Opts);
  ir::Context &Ctx = Opt.context();
  // (x*8 + y) ^ 0x5a — shift-add plus a literal xor.
  ir::TermId X = Ctx.Terms.makeVar("x");
  ir::TermId Y = Ctx.Terms.makeVar("y");
  ir::TermId Mul = Ctx.Terms.makeBuiltin(Builtin::Mul64,
                                         {X, Ctx.Terms.makeConst(8)});
  ir::TermId Sum = Ctx.Terms.makeBuiltin(Builtin::Add64, {Mul, Y});
  ir::TermId Goal = Ctx.Terms.makeBuiltin(Builtin::Xor64,
                                          {Sum, Ctx.Terms.makeConst(0x5a)});
  driver::GmaResult R = Opt.compileGoals("mix", {{"res", Goal}});
  EXPECT_TRUE(R.ok()) << R.Error << R.Search.Error;
  return R.Search;
}

TEST(PortfolioDriver, StrategiesAgreeOnGoalTerms) {
  SearchResult RL = compileWith(SearchStrategy::Linear);
  SearchResult RB = compileWith(SearchStrategy::Binary);
  SearchResult RP = compileWith(SearchStrategy::Portfolio);
  ASSERT_TRUE(RL.Found && RB.Found && RP.Found);
  EXPECT_EQ(RP.Cycles, RL.Cycles);
  EXPECT_EQ(RB.Cycles, RL.Cycles);
  EXPECT_EQ(RP.LowerBoundProved, RL.LowerBoundProved);
}

//===----------------------------------------------------------------------===
// Differential GmaGen fuzzing: concurrent probe execution must not change
// the minimal K or the oracle verdict on seeded random GMAs (the same
// seeds the incremental_tests differential uses — the two suites together
// pin all four strategies to one answer per seed).
//===----------------------------------------------------------------------===

class PortfolioDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(PortfolioDifferential, AgreesWithLinearOnGeneratedGmas) {
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 12;
  Opt.options().Search.Threads = 4;
  Opt.options().Matching.MaxNodes = 8000;
  Opt.options().Matching.MaxRounds = 8;

  verify::GmaGen Gen(Opt.context(), 1000 + GetParam());
  for (unsigned I = 0; I < 3; ++I) {
    gma::GMA G = Gen.next();
    SCOPED_TRACE(G.toString(Opt.context()));
    auto Err = verify::crossCheckStrategies(
        Opt, G,
        {codegen::SearchStrategy::Linear,
         codegen::SearchStrategy::Portfolio});
    EXPECT_FALSE(Err) << *Err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioDifferential,
                         ::testing::Range(0u, 6u));

} // namespace
