//===- tests/MachineModelTests.cpp - backend contract suite ---------------===//
//
// The MachineModel contract, checked against every registered backend: the
// universe builder, SAT encoder, printer, and simulators all consume the
// model through the same interface, so each invariant below is something
// one of those consumers silently relies on. A new backend that passes
// this suite plugs into the whole pipeline.
//
//===----------------------------------------------------------------------===//

#include "alpha/ISA.h"
#include "machine/RV64.h"
#include "machine/Sim.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>

using namespace denali;
using namespace denali::machine;
using denali::ir::Builtin;

namespace {

std::vector<std::string> allBackends() {
  alpha::registerAlphaMachine();
  registerRV64Machine();
  return registeredMachines();
}

/// Lowest set bit of \p Mask — the canonical "some legal unit" choice.
UnitId firstUnit(uint32_t Mask) {
  UnitId U = 0;
  while (!(Mask & (1u << U)))
    ++U;
  return U;
}

class MachineModelTest : public ::testing::TestWithParam<std::string> {
protected:
  ir::Context Ctx;
  std::unique_ptr<MachineModel> M;

  void SetUp() override {
    allBackends(); // Ensure registration.
    std::string Err;
    M = createMachine(GetParam(), Ctx, &Err);
    ASSERT_NE(M, nullptr) << Err;
  }

  /// An instruction computing \p D on its first legal unit.
  Instruction instr(const InstrDesc &D, std::vector<Operand> Srcs,
                    uint32_t Dest, unsigned Cycle) {
    Instruction I;
    I.Mnemonic = D.Mnemonic;
    I.Op = D.Op;
    I.Srcs = std::move(Srcs);
    I.Dest = Dest;
    I.Cycle = Cycle;
    I.IssueUnit = firstUnit(D.UnitMask);
    I.Latency = D.Latency;
    I.Mem = D.Mem;
    return I;
  }

  /// res = (a + 1) + b, scheduled with model latencies. Every backend must
  /// provide Add64 (the universe builder depends on it for displacement
  /// splitting), so the fixture program is portable.
  Program addChain() {
    const InstrDesc *Add = M->descFor(Ctx.Ops.builtin(Builtin::Add64));
    EXPECT_NE(Add, nullptr);
    Program P;
    P.Model = M.get();
    P.Name = "chain";
    P.Inputs = {{0, "a", false}, {1, "b", false}};
    P.Instrs = {instr(*Add, {Operand::reg(0), Operand::imm(1)}, 2, 0),
                instr(*Add, {Operand::reg(2), Operand::reg(1)}, 3,
                      Add->Latency)};
    P.Outputs = {{"res", 3}};
    P.Cycles = 2 * Add->Latency;
    P.NumVRegs = 4;
    return P;
  }
};

//===----------------------------------------------------------------------===
// Registry.
//===----------------------------------------------------------------------===

TEST(MachineRegistry, ListsBothBuiltinBackends) {
  std::vector<std::string> Names = allBackends();
  EXPECT_NE(std::find(Names.begin(), Names.end(), "alpha"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "rv64"), Names.end());
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
}

TEST(MachineRegistry, UnknownNameFailsWithKnownList) {
  allBackends();
  ir::Context Ctx;
  std::string Err;
  EXPECT_EQ(createMachine("vax", Ctx, &Err), nullptr);
  // The error must name the alternatives so the CLI message is actionable.
  EXPECT_NE(Err.find("alpha"), std::string::npos) << Err;
  EXPECT_NE(Err.find("rv64"), std::string::npos) << Err;
}

TEST(MachineRegistry, CreatedModelReportsItsOwnName) {
  for (const std::string &Name : allBackends()) {
    ir::Context Ctx;
    std::unique_ptr<MachineModel> M = createMachine(Name, Ctx);
    ASSERT_NE(M, nullptr);
    EXPECT_EQ(M->name(), Name);
  }
}

//===----------------------------------------------------------------------===
// Per-backend contract.
//===----------------------------------------------------------------------===

TEST_P(MachineModelTest, UnitTopology) {
  ASSERT_GE(M->numUnits(), 1u);
  ASSERT_LE(M->numUnits(), 32u); // UnitMask is a uint32_t.
  ASSERT_GE(M->numClusters(), 1u);
  ASSERT_LE(M->numClusters(), MaxClusters);
  EXPECT_GE(M->issueWidth(), 1u);
  EXPECT_LE(M->issueWidth(), M->numUnits());
  if (M->numClusters() == 1)
    EXPECT_EQ(M->crossClusterDelay(), 0u)
        << "a single-cluster machine has no cross-cluster forwarding";

  std::set<std::string> Names;
  std::set<unsigned> SeenClusters;
  for (unsigned U = 0; U < M->numUnits(); ++U) {
    const char *Name = M->unitName(static_cast<UnitId>(U));
    ASSERT_NE(Name, nullptr);
    EXPECT_FALSE(std::string(Name).empty());
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate unit name " << Name;
    unsigned C = M->clusterOf(static_cast<UnitId>(U));
    EXPECT_LT(C, M->numClusters());
    SeenClusters.insert(C);
  }
  // Every declared cluster owns at least one unit.
  EXPECT_EQ(SeenClusters.size(), M->numClusters());
}

TEST_P(MachineModelTest, OpcodeTableConsistency) {
  const uint32_t LegalMask = (1u << M->numUnits()) - 1;
  ASSERT_FALSE(M->allInstructions().empty());
  for (const InstrDesc &D : M->allInstructions()) {
    EXPECT_FALSE(D.Mnemonic.empty());
    EXPECT_NE(D.UnitMask, 0u) << D.Mnemonic << " issues nowhere";
    EXPECT_EQ(D.UnitMask & ~LegalMask, 0u)
        << D.Mnemonic << " names a unit past numUnits()";
    EXPECT_GE(D.Latency, 1u) << D.Mnemonic;
    // descFor must round-trip: the table is keyed by operator.
    const InstrDesc *Back = M->descFor(D.Op);
    ASSERT_NE(Back, nullptr) << D.Mnemonic;
    EXPECT_EQ(Back->Mnemonic, D.Mnemonic);
    if (D.Mem == MemKind::Load)
      EXPECT_EQ(D.Latency, M->loadHitLatency())
          << D.Mnemonic << ": load latency and loadHitLatency() disagree";
    if (D.AllowsImm) {
      EXPECT_LE(D.ImmMin, D.ImmMax) << D.Mnemonic;
      EXPECT_LT(M->immArgIndex(D, 2), 2u) << D.Mnemonic;
    }
  }
  EXPECT_GT(M->loadMissLatency(), M->loadHitLatency());
  EXPECT_GT(M->maxMemDisp(), 0);
}

TEST_P(MachineModelTest, ConstMaterializeIsWellFormed) {
  const InstrDesc &C = M->constMaterialize();
  EXPECT_FALSE(C.Mnemonic.empty());
  EXPECT_NE(C.UnitMask, 0u);
  EXPECT_EQ(C.UnitMask & ~((1u << M->numUnits()) - 1), 0u);
  EXPECT_GE(C.Latency, 1u);
  EXPECT_EQ(C.Op, Ctx.Ops.builtin(Builtin::Const));
}

TEST_P(MachineModelTest, ImmediateRangeBoundaries) {
  for (const InstrDesc &D : M->allInstructions()) {
    if (!D.AllowsImm)
      continue;
    EXPECT_TRUE(M->immFits(D, static_cast<uint64_t>(D.ImmMin))) << D.Mnemonic;
    EXPECT_TRUE(M->immFits(D, static_cast<uint64_t>(D.ImmMax))) << D.Mnemonic;
    EXPECT_FALSE(M->immFits(D, static_cast<uint64_t>(D.ImmMax) + 1))
        << D.Mnemonic << " accepts a literal past ImmMax";
    EXPECT_FALSE(M->immFits(D, static_cast<uint64_t>(D.ImmMin - 1)))
        << D.Mnemonic << " accepts a literal below ImmMin";
  }
}

TEST_P(MachineModelTest, RegisterNamesAreDistinct) {
  std::set<std::string> Names;
  for (unsigned I = 0; I < 4; ++I) {
    std::string A = M->argRegName(I), T = M->tempRegName(I);
    EXPECT_FALSE(A.empty());
    EXPECT_FALSE(T.empty());
    EXPECT_TRUE(Names.insert(A).second) << A;
    EXPECT_TRUE(Names.insert(T).second) << T;
  }
  EXPECT_FALSE(M->memRegName(0).empty());
}

TEST_P(MachineModelTest, PrinterIsDeterministicAndUsesModelNames) {
  Program P = addChain();
  std::string First = P.toString();
  std::string Second = P.toString();
  EXPECT_EQ(First, Second);
  // The rendering speaks this model's dialect: its unit names in the cycle
  // comments and its argument registers as operands.
  const InstrDesc *Add = M->descFor(Ctx.Ops.builtin(Builtin::Add64));
  EXPECT_NE(First.find(M->unitName(firstUnit(Add->UnitMask))),
            std::string::npos)
      << First;
  EXPECT_NE(First.find(M->argRegName(0)), std::string::npos) << First;
  EXPECT_NE(First.find(Add->Mnemonic), std::string::npos) << First;
}

TEST_P(MachineModelTest, SimulatorDeterministicOnSeededVectors) {
  Program P = addChain();
  std::mt19937_64 Rng(0xD15EA5E);
  for (int Trial = 0; Trial < 16; ++Trial) {
    uint64_t A = Rng(), B = Rng();
    std::unordered_map<std::string, ir::Value> In = {
        {"a", ir::Value::makeInt(A)}, {"b", ir::Value::makeInt(B)}};
    RunResult R1 = runProgram(Ctx, P, In);
    RunResult R2 = runProgram(Ctx, P, In);
    ASSERT_TRUE(R1.Ok) << R1.Error;
    ASSERT_TRUE(R2.Ok) << R2.Error;
    ASSERT_EQ(R1.Outputs.count("res"), 1u);
    EXPECT_EQ(R1.Outputs.at("res").asInt(), R2.Outputs.at("res").asInt());
    // And the values are the operator semantics, not backend-dependent.
    EXPECT_EQ(R1.Outputs.at("res").asInt(), A + 1 + B);
  }
}

TEST_P(MachineModelTest, ScheduleWithModelLatenciesValidates) {
  Program P = addChain();
  TimingReport R = validateTiming(*M, P);
  EXPECT_TRUE(R.Ok) << R.Error;
  // Tightening the consumer below the producer's latency must be rejected —
  // this is the seam the planted-latency fault gates lean on.
  if (P.Instrs[1].Cycle > 0) {
    P.Instrs[1].Cycle = 0;
    P.Cycles = 1;
    TimingReport Bad = validateTiming(*M, P);
    EXPECT_FALSE(Bad.Ok);
  }
}

TEST_P(MachineModelTest, TrapNamesMachineAndInstruction) {
  const InstrDesc *Ld = M->descFor(Ctx.Ops.builtin(Builtin::Select));
  ASSERT_NE(Ld, nullptr);
  Program P;
  P.Model = M.get();
  P.Cycles = Ld->Latency + 1;
  P.Inputs = {{0, "M", true}, {1, "p", false}};
  P.Instrs = {instr(*Ld, {Operand::reg(0), Operand::reg(1)}, 2, 0)};
  P.Outputs = {{"res", 2}};
  RunOptions Opts;
  Opts.AddressLimit = 64;
  RunResult R = runProgram(Ctx, P,
                           {{"M", ir::Value::makeArray(7)},
                            {"p", ir::Value::makeInt(128)}},
                           Opts);
  ASSERT_FALSE(R.Ok);
  ASSERT_TRUE(R.TheTrap.has_value());
  EXPECT_EQ(R.TheTrap->TheKind, Trap::Kind::OutOfBounds);
  // The cross-backend oracle's attribution: which machine, which slot.
  EXPECT_EQ(R.TheTrap->Machine, M->name());
  EXPECT_EQ(R.TheTrap->InstrIndex, 0);
  std::string Where = "[" + M->name() + " instr #0]";
  EXPECT_NE(R.Error.find(Where), std::string::npos) << R.Error;
}

INSTANTIATE_TEST_SUITE_P(Backends, MachineModelTest,
                         ::testing::ValuesIn(allBackends()),
                         [](const auto &Info) { return Info.param; });

} // namespace
