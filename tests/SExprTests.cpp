//===- tests/SExprTests.cpp - S-expression reader unit tests --------------===//

#include "sexpr/Parser.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::sexpr;

TEST(SExprParser, Symbol) {
  ParseResult R = parseOne("foo");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Forms[0].isSymbol("foo"));
}

TEST(SExprParser, Integer) {
  ParseResult R = parseOne("42");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Forms[0].isInteger());
  EXPECT_EQ(R.Forms[0].integer(), 42);
}

TEST(SExprParser, NegativeInteger) {
  ParseResult R = parseOne("-17");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Forms[0].integer(), -17);
}

TEST(SExprParser, HexInteger) {
  ParseResult R = parseOne("0xff");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Forms[0].integer(), 255);
}

TEST(SExprParser, FlatList) {
  ParseResult R = parseOne("(a b 3)");
  ASSERT_TRUE(R.ok());
  const SExpr &E = R.Forms[0];
  ASSERT_TRUE(E.isList());
  ASSERT_EQ(E.size(), 3u);
  EXPECT_TRUE(E[0].isSymbol("a"));
  EXPECT_TRUE(E[1].isSymbol("b"));
  EXPECT_EQ(E[2].integer(), 3);
}

TEST(SExprParser, Nested) {
  ParseResult R = parseOne("(add (mul x 2) (shl y 1))");
  ASSERT_TRUE(R.ok());
  const SExpr &E = R.Forms[0];
  EXPECT_TRUE(E.isForm("add"));
  EXPECT_TRUE(E[1].isForm("mul"));
  EXPECT_TRUE(E[2].isForm("shl"));
}

TEST(SExprParser, BackslashKeywords) {
  ParseResult R = parseOne(R"((\axiom (forall (a b) (eq (add a b) (add b a)))))");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Forms[0].isForm("\\axiom"));
}

TEST(SExprParser, OperatorSymbols) {
  ParseResult R = parseOne("(:= (sum (+ sum 8)))");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Forms[0].isForm(":="));
  EXPECT_TRUE(R.Forms[0][1][1].isForm("+"));
}

TEST(SExprParser, Comments) {
  ParseResult R = parse("; leading comment\n(a b) ; trailing\n(c)");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Forms.size(), 2u);
  EXPECT_TRUE(R.Forms[0].isForm("a"));
  EXPECT_TRUE(R.Forms[1].isForm("c"));
}

TEST(SExprParser, MultipleTopLevelForms) {
  ParseResult R = parse("(a) (b) 12");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Forms.size(), 3u);
}

TEST(SExprParser, EmptyInput) {
  ParseResult R = parse("  ; nothing here\n");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Forms.empty());
}

TEST(SExprParser, UnterminatedList) {
  ParseResult R = parse("(a (b c)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->Message.find("unterminated"), std::string::npos);
}

TEST(SExprParser, StrayClose) {
  ParseResult R = parse(")");
  ASSERT_FALSE(R.ok());
}

TEST(SExprParser, ErrorPosition) {
  ParseResult R = parse("(a\n(b");
  ASSERT_FALSE(R.ok());
  EXPECT_GE(R.Error->Line, 2u);
}

TEST(SExprParser, ParseOneRejectsMultiple) {
  ParseResult R = parseOne("(a) (b)");
  ASSERT_FALSE(R.ok());
}

TEST(SExprParser, RoundTrip) {
  const std::string Text = "(\\proc f (x) (:= (r (+ x 1))))";
  ParseResult R = parseOne(Text);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Forms[0].toString(), Text);
}

TEST(SExprParser, DeepNesting) {
  std::string Text;
  for (int I = 0; I < 200; ++I)
    Text += "(f ";
  Text += "x";
  for (int I = 0; I < 200; ++I)
    Text += ")";
  ParseResult R = parseOne(Text);
  ASSERT_TRUE(R.ok());
}
