//===- tests/AxiomSoundnessTests.cpp - built-in axiom validity ------------===//
//
// The axiom files are the soundness root of the whole system: one wrong
// equality and "correct by design" collapses. This suite instantiates
// every built-in axiom with many random values and checks its body holds
// under the reference semantics:
//
//  * an equality literal must evaluate to equal values;
//  * a clause must have at least one true literal (equalities hold, or
//    distinctions hold) for *every* instantiation.
//
// Array-typed variables (the select/store axioms) are detected by retry:
// an instantiation that is ill-typed with all-integer bindings is retried
// with each variable bound to an array value.
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "match/Axiom.h"
#include "support/StringExtras.h"

#include <gtest/gtest.h>

#include <random>

using namespace denali;
using namespace denali::match;

namespace {

struct Instantiation {
  std::vector<ir::TermId> VarTerms; ///< Fresh variables, one per axiom var.
  ir::Env Bindings;
};

/// Builds an instantiation binding each axiom variable to a fresh variable
/// term whose value is random; \p ArrayMask selects which variables are
/// array-valued.
Instantiation makeInstantiation(ir::Context &Ctx, const Axiom &A,
                                uint64_t ArrayMask, std::mt19937_64 &Rng) {
  Instantiation Out;
  for (size_t I = 0; I < A.VarNames.size(); ++I) {
    std::string Name = strFormat("%%ax%zu", I);
    Out.VarTerms.push_back(Ctx.Terms.makeVar(Name));
    ir::OpId Op = Ctx.Ops.makeVariable(Name);
    if (ArrayMask & (1ULL << I)) {
      Out.Bindings[Op] = ir::Value::makeArray(Rng());
    } else {
      // Mix small values (byte indices, shift amounts) with full-range.
      uint64_t V;
      switch (Rng() % 4) {
      case 0:
        V = Rng() % 8;
        break;
      case 1:
        V = Rng() % 256;
        break;
      default:
        V = Rng();
        break;
      }
      Out.Bindings[Op] = ir::Value::makeInt(V);
    }
  }
  return Out;
}

/// Checks the axiom body under one instantiation. \returns true if the
/// body holds; sets \p IllTyped when evaluation failed on a kind error
/// (caller retries with different array assignments).
bool checkInstance(ir::Context &Ctx, const Axiom &A,
                   const Instantiation &Inst, bool &IllTyped,
                   std::string &Detail) {
  IllTyped = false;
  bool AnyLiteralTrue = false;
  for (const AxiomLiteral &L : A.Body) {
    ir::TermId Lhs = instantiatePatternTerm(Ctx, A, L.Lhs, Inst.VarTerms);
    ir::TermId Rhs = instantiatePatternTerm(Ctx, A, L.Rhs, Inst.VarTerms);
    std::string Err;
    auto LV = ir::evalTerm(Ctx.Terms, Lhs, Inst.Bindings, nullptr, &Err);
    auto RV = ir::evalTerm(Ctx.Terms, Rhs, Inst.Bindings, nullptr, &Err);
    if (!LV || !RV) {
      IllTyped = true;
      return false;
    }
    bool Equal = LV->equals(*RV);
    bool LiteralTrue = L.IsEq ? Equal : !Equal;
    if (LiteralTrue) {
      AnyLiteralTrue = true;
    } else if (A.Body.size() == 1) {
      Detail = strFormat("lhs %s = %s, rhs %s = %s",
                         Ctx.Terms.toString(Lhs).c_str(),
                         LV->toString().c_str(),
                         Ctx.Terms.toString(Rhs).c_str(),
                         RV->toString().c_str());
      return false;
    }
  }
  if (!AnyLiteralTrue) {
    Detail = "no literal of the clause holds";
    return false;
  }
  return true;
}

/// Validates one axiom across many random instantiations.
void checkAxiom(ir::Context &Ctx, const Axiom &A, unsigned Trials,
                uint64_t Seed) {
  if (!A.VarNames.empty() && A.VarNames.size() > 8)
    GTEST_SKIP() << "too many variables";
  std::mt19937_64 Rng(Seed);
  unsigned Checked = 0;
  for (unsigned Trial = 0; Trial < Trials; ++Trial) {
    // Find a well-typed array assignment: all-int first, then each single
    // variable as an array, then pairs (covers select/store/two-array
    // cases).
    std::vector<uint64_t> Masks{0};
    for (size_t I = 0; I < A.VarNames.size(); ++I)
      Masks.push_back(1ULL << I);
    for (size_t I = 0; I < A.VarNames.size(); ++I)
      for (size_t J = I + 1; J < A.VarNames.size(); ++J)
        Masks.push_back((1ULL << I) | (1ULL << J));
    bool SomeTyped = false;
    for (uint64_t Mask : Masks) {
      Instantiation Inst = makeInstantiation(Ctx, A, Mask, Rng);
      bool IllTyped = false;
      std::string Detail;
      bool Holds = checkInstance(Ctx, A, Inst, IllTyped, Detail);
      if (IllTyped)
        continue;
      SomeTyped = true;
      ASSERT_TRUE(Holds) << A.Name << " violated: " << Detail;
      ++Checked;
      break;
    }
    ASSERT_TRUE(SomeTyped) << A.Name << ": no well-typed instantiation";
  }
  EXPECT_GT(Checked, 0u);
}

class MathAxiomSoundness : public ::testing::TestWithParam<size_t> {};
class AlphaAxiomSoundness : public ::testing::TestWithParam<size_t> {};

size_t mathAxiomCount() {
  ir::Context Ctx;
  std::string Err;
  auto A = axioms::parseAxiomsText(Ctx, axioms::mathAxiomsText(), &Err);
  return A ? A->size() : 0;
}

size_t alphaAxiomCount() {
  ir::Context Ctx;
  std::string Err;
  auto A = axioms::parseAxiomsText(Ctx, axioms::alphaAxiomsText(), &Err);
  return A ? A->size() : 0;
}

TEST_P(MathAxiomSoundness, HoldsOnRandomValues) {
  ir::Context Ctx;
  std::string Err;
  auto Axioms = axioms::parseAxiomsText(Ctx, axioms::mathAxiomsText(), &Err);
  ASSERT_TRUE(Axioms.has_value()) << Err;
  ASSERT_LT(GetParam(), Axioms->size());
  checkAxiom(Ctx, (*Axioms)[GetParam()], /*Trials=*/64,
             GetParam() * 1000003 + 17);
}

TEST_P(AlphaAxiomSoundness, HoldsOnRandomValues) {
  ir::Context Ctx;
  std::string Err;
  auto Axioms = axioms::parseAxiomsText(Ctx, axioms::alphaAxiomsText(), &Err);
  ASSERT_TRUE(Axioms.has_value()) << Err;
  ASSERT_LT(GetParam(), Axioms->size());
  checkAxiom(Ctx, (*Axioms)[GetParam()], /*Trials=*/64,
             GetParam() * 999983 + 29);
}

INSTANTIATE_TEST_SUITE_P(All, MathAxiomSoundness,
                         ::testing::Range<size_t>(0, mathAxiomCount()));
INSTANTIATE_TEST_SUITE_P(All, AlphaAxiomSoundness,
                         ::testing::Range<size_t>(0, alphaAxiomCount()));

// Meta-test: the ranges above must actually cover the files (guards
// against an accidentally empty instantiation if parsing breaks).
TEST(AxiomSoundness, FilesNonEmpty) {
  EXPECT_GT(mathAxiomCount(), 30u);
  EXPECT_GT(alphaAxiomCount(), 20u);
}

} // namespace
