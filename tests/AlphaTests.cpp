//===- tests/AlphaTests.cpp - machine model & simulator tests -------------===//

#include "alpha/Simulator.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::alpha;
using denali::ir::Builtin;

namespace {

class AlphaTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  ISA Isa{Ctx};

  /// Builds an instruction computing builtin \p B.
  Instruction instr(Builtin B, std::vector<Operand> Srcs, uint32_t Dest,
                    unsigned Cycle, Unit U) {
    const InstrDesc *D = Isa.descFor(Ctx.Ops.builtin(B));
    Instruction I;
    I.Mnemonic = D->Mnemonic;
    I.Op = D->Op;
    I.Srcs = std::move(Srcs);
    I.Dest = Dest;
    I.Cycle = Cycle;
    I.IssueUnit = static_cast<machine::UnitId>(unitIndex(U));
    I.Latency = D->Latency;
    I.Mem = D->Mem;
    return I;
  }
};

//===----------------------------------------------------------------------===
// ISA tables.
//===----------------------------------------------------------------------===

TEST_F(AlphaTest, DescLookup) {
  const InstrDesc *Add = Isa.descFor(Ctx.Ops.builtin(Builtin::Add64));
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->Mnemonic, "addq");
  EXPECT_EQ(Add->UnitMask, MaskAll);
  EXPECT_EQ(Add->Latency, 1u);
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Pow)), nullptr);
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::SelectB)), nullptr);
}

TEST_F(AlphaTest, UnitRestrictions) {
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Shl64))->UnitMask,
            MaskUpper);
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Mul64))->UnitMask, MaskU1);
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Select))->UnitMask,
            MaskLower);
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Extbl))->UnitMask,
            MaskUpper);
}

TEST_F(AlphaTest, Latencies) {
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Mul64))->Latency, 7u);
  EXPECT_EQ(Isa.descFor(Ctx.Ops.builtin(Builtin::Select))->Latency,
            Isa.loadHitLatency());
  EXPECT_GT(Isa.loadMissLatency(), Isa.loadHitLatency());
}

TEST_F(AlphaTest, Clusters) {
  EXPECT_EQ(clusterOf(Unit::U0), 0u);
  EXPECT_EQ(clusterOf(Unit::L0), 0u);
  EXPECT_EQ(clusterOf(Unit::U1), 1u);
  EXPECT_EQ(clusterOf(Unit::L1), 1u);
  EXPECT_EQ(Isa.crossClusterDelay(), 1u);
}

//===----------------------------------------------------------------------===
// Timing validator.
//===----------------------------------------------------------------------===

TEST_F(AlphaTest, TimingAcceptsLegalSchedule) {
  Program P;
  P.Cycles = 2;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0),
              instr(Builtin::Add64, {Operand::reg(1), Operand::imm(2)}, 2, 1,
                    Unit::U0)};
  TimingReport R = validateTiming(Isa, P);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Makespan, 2u);
}

TEST_F(AlphaTest, TimingRejectsOperandNotReady) {
  Program P;
  P.Cycles = 2;
  P.Inputs = {{0, "x", false}};
  // Consumer in the same cycle as its producer: illegal.
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0),
              instr(Builtin::Add64, {Operand::reg(1), Operand::imm(2)}, 2, 0,
                    Unit::U1)};
  TimingReport R = validateTiming(Isa, P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("ready"), std::string::npos);
}

TEST_F(AlphaTest, TimingEnforcesCrossClusterDelay) {
  // Producer on cluster 0 at cycle 0 (done start of 1); consumer on
  // cluster 1 can start only at cycle 2.
  Program P;
  P.Cycles = 3;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0),
              instr(Builtin::Add64, {Operand::reg(1), Operand::imm(2)}, 2, 1,
                    Unit::U1)};
  TimingReport R = validateTiming(Isa, P);
  EXPECT_FALSE(R.Ok) << "cross-cluster consumer at +1 must be rejected";
  P.Instrs[1].Cycle = 2;
  R = validateTiming(Isa, P);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST_F(AlphaTest, TimingRejectsSlotConflict) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0),
              instr(Builtin::Sub64, {Operand::reg(0), Operand::imm(2)}, 2, 0,
                    Unit::U0)};
  TimingReport R = validateTiming(Isa, P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("conflict"), std::string::npos);
}

TEST_F(AlphaTest, TimingRejectsIllegalUnit) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Shl64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::L0)}; // Shifts are upper-only.
  TimingReport R = validateTiming(Isa, P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot issue"), std::string::npos);
}

TEST_F(AlphaTest, TimingRejectsBudgetOverrun) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}, {1, "y", false}};
  P.Instrs = {instr(Builtin::Mul64, {Operand::reg(0), Operand::reg(1)}, 2, 0,
                    Unit::U1)}; // Latency 7 > budget 1.
  TimingReport R = validateTiming(Isa, P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("exceeds"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Functional simulator error paths.
//===----------------------------------------------------------------------===

TEST_F(AlphaTest, RunMissingInput) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  RunResult R = runProgram(Ctx, P, {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("missing input"), std::string::npos);
}

TEST_F(AlphaTest, RunDetectsMissingProducer) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(42), Operand::imm(1)}, 1,
                    0, Unit::U0)};
  P.Outputs = {{"res", 1}};
  RunResult R = runProgram(Ctx, P, {{"x", ir::Value::makeInt(0)}});
  EXPECT_FALSE(R.Ok);
}

//===----------------------------------------------------------------------===
// Structured traps: the functional simulator classifies failures so the
// differential oracle can tell a garbage program from an illegal access.
//===----------------------------------------------------------------------===

TEST_F(AlphaTest, TrapUninitializedRead) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  // v42 has no writer at all: a structured uninitialized-read trap, not a
  // generic "never became ready" failure (and not an assert).
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(42), Operand::imm(1)}, 1,
                    0, Unit::U0)};
  RunResult R = runProgram(Ctx, P, {{"x", ir::Value::makeInt(0)}});
  ASSERT_FALSE(R.Ok);
  ASSERT_TRUE(R.TheTrap.has_value());
  EXPECT_EQ(R.TheTrap->TheKind, Trap::Kind::UninitializedRead);
  EXPECT_EQ(R.TheTrap->Reg, 42u);
  EXPECT_EQ(R.Error, R.TheTrap->toString());
}

TEST_F(AlphaTest, TrapOutOfBoundsLoad) {
  Program P;
  P.Cycles = 4;
  P.Inputs = {{0, "M", true}, {1, "p", false}};
  Instruction Ld = instr(Builtin::Select, {Operand::reg(0), Operand::reg(1)},
                         2, 0, Unit::L0);
  Ld.Disp = 16;
  P.Instrs = {Ld};
  P.Outputs = {{"res", 2}};
  RunOptions Opts;
  Opts.AddressLimit = 0x100;
  RunResult R = runProgram(
      Ctx, P,
      {{"M", ir::Value::makeArray(7)}, {"p", ir::Value::makeInt(0xf8)}},
      Opts);
  ASSERT_FALSE(R.Ok);
  ASSERT_TRUE(R.TheTrap.has_value());
  EXPECT_EQ(R.TheTrap->TheKind, Trap::Kind::OutOfBounds);
  EXPECT_EQ(R.TheTrap->Addr, 0x108u); // p + disp crosses the limit.

  // The same access under the limit is fine.
  RunResult Ok = runProgram(
      Ctx, P,
      {{"M", ir::Value::makeArray(7)}, {"p", ir::Value::makeInt(0x40)}},
      Opts);
  EXPECT_TRUE(Ok.Ok) << Ok.Error;
  // And with no limit the arrays-as-values fiction covers every address.
  RunResult Unlimited = runProgram(
      Ctx, P,
      {{"M", ir::Value::makeArray(7)}, {"p", ir::Value::makeInt(0xf8)}});
  EXPECT_TRUE(Unlimited.Ok) << Unlimited.Error;
}

TEST_F(AlphaTest, TrapOutOfBoundsStore) {
  Program P;
  P.Cycles = 4;
  P.Inputs = {{0, "M", true}, {1, "p", false}, {2, "x", false}};
  P.Instrs = {instr(Builtin::Store,
                    {Operand::reg(0), Operand::reg(1), Operand::reg(2)}, 3,
                    0, Unit::L0)};
  P.Outputs = {{"M", 3}};
  RunOptions Opts;
  Opts.AddressLimit = 64;
  RunResult R = runProgram(Ctx, P,
                           {{"M", ir::Value::makeArray(1)},
                            {"p", ir::Value::makeInt(64)},
                            {"x", ir::Value::makeInt(5)}},
                           Opts);
  ASSERT_FALSE(R.Ok);
  ASSERT_TRUE(R.TheTrap.has_value());
  EXPECT_EQ(R.TheTrap->TheKind, Trap::Kind::OutOfBounds);
  EXPECT_EQ(R.TheTrap->Addr, 64u);
}

TEST_F(AlphaTest, TrapKindMismatch) {
  Program P;
  P.Cycles = 4;
  P.Inputs = {{0, "x", false}, {1, "p", false}};
  // Load whose "memory" operand is an integer: a kind trap, not an assert.
  P.Instrs = {instr(Builtin::Select, {Operand::reg(0), Operand::reg(1)}, 2,
                    0, Unit::L0)};
  RunResult R = runProgram(
      Ctx, P, {{"x", ir::Value::makeInt(3)}, {"p", ir::Value::makeInt(0)}});
  ASSERT_FALSE(R.Ok);
  ASSERT_TRUE(R.TheTrap.has_value());
  EXPECT_EQ(R.TheTrap->TheKind, Trap::Kind::KindMismatch);
}

TEST_F(AlphaTest, TrapDoubleWrite) {
  Program P;
  P.Cycles = 2;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1,
                    0, Unit::U0),
              instr(Builtin::Sub64, {Operand::reg(0), Operand::imm(2)}, 1,
                    0, Unit::U1)};
  RunResult R = runProgram(Ctx, P, {{"x", ir::Value::makeInt(0)}});
  ASSERT_FALSE(R.Ok);
  ASSERT_TRUE(R.TheTrap.has_value());
  EXPECT_EQ(R.TheTrap->TheKind, Trap::Kind::DoubleWrite);
  EXPECT_EQ(R.TheTrap->Reg, 1u);
}

TEST_F(AlphaTest, RunOutputNeverWritten) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Outputs = {{"res", 7}};
  RunResult R = runProgram(Ctx, P, {{"x", ir::Value::makeInt(0)}});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("never written"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Memory-discipline replay.
//===----------------------------------------------------------------------===

class MemoryDiscipline : public AlphaTest {
protected:
  /// Builds the canonical {store x to p; load from q} program with given
  /// cycles. Registers: 0=M, 1=p, 2=x, 3=q; 4=newM, 5=loaded.
  Program makeStoreLoad(unsigned StoreCycle, unsigned LoadCycle,
                        bool LoadFromOriginalMemory) {
    Program P;
    P.Cycles = std::max(StoreCycle, LoadCycle) + 4;
    P.Inputs = {{0, "M", true}, {1, "p", false}, {2, "x", false},
                {3, "q", false}};
    Instruction St = instr(Builtin::Store,
                           {Operand::reg(0), Operand::reg(1),
                            Operand::reg(2)},
                           4, StoreCycle, Unit::L0);
    Instruction Ld = instr(Builtin::Select,
                           {Operand::reg(LoadFromOriginalMemory ? 0u : 4u),
                            Operand::reg(3)},
                           5, LoadCycle, Unit::L1);
    P.Instrs = {St, Ld};
    P.Outputs = {{"M", 4}, {"r", 5}};
    return P;
  }

  std::unordered_map<std::string, ir::Value> inputs(uint64_t PAddr,
                                                    uint64_t QAddr) {
    return {{"M", ir::Value::makeArray(77)},
            {"p", ir::Value::makeInt(PAddr)},
            {"x", ir::Value::makeInt(4242)},
            {"q", ir::Value::makeInt(QAddr)}};
  }
};

TEST_F(MemoryDiscipline, LoadBeforeStoreIsSound) {
  // Load of the original memory scheduled before the store: fine even
  // when the addresses alias.
  Program P = makeStoreLoad(/*StoreCycle=*/3, /*LoadCycle=*/0,
                            /*LoadFromOriginalMemory=*/true);
  EXPECT_EQ(validateMemoryDiscipline(Ctx, P, inputs(100, 100)),
            std::nullopt);
}

TEST_F(MemoryDiscipline, AliasedLoadAfterStoreIsCaught) {
  // Load of the *original* memory scheduled after the store, at the same
  // address: real memory was already overwritten — the replay must flag
  // it. (The encoder's anti-dependence constraints prevent such schedules;
  // this test proves the validator would catch an encoder bug.)
  Program P = makeStoreLoad(/*StoreCycle=*/0, /*LoadCycle=*/2,
                            /*LoadFromOriginalMemory=*/true);
  auto Err = validateMemoryDiscipline(Ctx, P, inputs(100, 100));
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("promised"), std::string::npos);
}

TEST_F(MemoryDiscipline, DisjointLoadAfterStoreIsSound) {
  // Same illegal-looking order but provably different addresses: the
  // values agree, so the replay accepts (this is exactly the freedom the
  // select-store axiom grants).
  Program P = makeStoreLoad(/*StoreCycle=*/0, /*LoadCycle=*/2,
                            /*LoadFromOriginalMemory=*/true);
  EXPECT_EQ(validateMemoryDiscipline(Ctx, P, inputs(100, 108)),
            std::nullopt);
}

TEST_F(MemoryDiscipline, LoadOfNewMemoryAfterStore) {
  // Loading through the store's memory value after the store: sound, and
  // observes the stored value.
  Program P = makeStoreLoad(/*StoreCycle=*/0, /*LoadCycle=*/2,
                            /*LoadFromOriginalMemory=*/false);
  EXPECT_EQ(validateMemoryDiscipline(Ctx, P, inputs(100, 100)),
            std::nullopt);
}

TEST_F(MemoryDiscipline, NoMemoryIsTriviallySound) {
  Program P;
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0)};
  EXPECT_EQ(validateMemoryDiscipline(Ctx, P,
                                     {{"x", ir::Value::makeInt(3)}}),
            std::nullopt);
}

//===----------------------------------------------------------------------===
// Assembly printing.
//===----------------------------------------------------------------------===

TEST_F(AlphaTest, PrintBasics) {
  Program P;
  P.Name = "demo";
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(5)}, 1, 0,
                    Unit::U0)};
  P.Outputs = {{"res", 1}};
  std::string S = P.toString();
  EXPECT_NE(S.find("demo:"), std::string::npos);
  EXPECT_NE(S.find("addq $16, 5, $1"), std::string::npos);
  EXPECT_NE(S.find("# 0, U0"), std::string::npos);
  EXPECT_NE(S.find("result res in $1"), std::string::npos);
}

TEST_F(AlphaTest, PrintMemoryForms) {
  Program P;
  P.Name = "mem";
  P.Cycles = 4;
  P.Inputs = {{0, "M", true}, {1, "p", false}, {2, "x", false}};
  Instruction Ld = instr(Builtin::Select, {Operand::reg(0), Operand::reg(1)},
                         3, 0, Unit::L0);
  Ld.Disp = 16;
  Instruction St = instr(Builtin::Store,
                         {Operand::reg(0), Operand::reg(1), Operand::reg(2)},
                         4, 0, Unit::L1);
  St.Disp = -8;
  P.Instrs = {Ld, St};
  std::string S = P.toString();
  // Memory inputs take $M names, so p is $16 and x is $17.
  EXPECT_NE(S.find("ldq $1, 16($16)"), std::string::npos);
  EXPECT_NE(S.find("stq $17, -8($16)"), std::string::npos);
  EXPECT_NE(S.find("$M0"), std::string::npos);
}

TEST_F(AlphaTest, PrintNopsFillSlots) {
  Program P;
  P.Name = "fillers";
  P.Cycles = 1;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0)};
  std::string WithNops = P.toString(/*ShowNops=*/true);
  std::string Without = P.toString(false);
  EXPECT_NE(WithNops.find("nop"), std::string::npos);
  EXPECT_EQ(Without.find("nop"), std::string::npos);
}

TEST_F(AlphaTest, PrintManyTempsNoCollision) {
  // Temp names must never collide with input registers ($16+).
  Program P;
  P.Name = "many";
  P.Cycles = 30;
  P.Inputs = {{0, "a", false}, {1, "b", false}};
  uint32_t Reg = 2;
  for (unsigned I = 0; I < 20; ++I)
    P.Instrs.push_back(instr(Builtin::Add64,
                             {Operand::reg(0), Operand::reg(1)}, Reg++, I,
                             Unit::U0));
  std::string S = P.toString();
  // $16/$17 are inputs; a temp must not be printed as their name.
  size_t First16 = S.find("$16");
  size_t Count16 = 0;
  while (First16 != std::string::npos) {
    ++Count16;
    First16 = S.find("$16", First16 + 1);
  }
  // $16 appears once in the register map and once per instruction as a
  // source — never as a destination of a temp. 20 instrs * 1 use + banner.
  EXPECT_EQ(Count16, 21u);
}

} // namespace

namespace {

TEST_F(AlphaTest, MaxLiveRegisters) {
  // v1 = x+1 (live cycles 1..2); v2 = v1+1 (live 2..3, output).
  Program P;
  P.Cycles = 3;
  P.Inputs = {{0, "x", false}};
  P.Instrs = {instr(Builtin::Add64, {Operand::reg(0), Operand::imm(1)}, 1, 0,
                    Unit::U0),
              instr(Builtin::Add64, {Operand::reg(1), Operand::imm(1)}, 2, 1,
                    Unit::U0)};
  P.Outputs = {{"res", 2}};
  // A sequential chain recycles registers: x dies at its cycle-0 read, v1
  // at its cycle-1 read; only the output survives. Pressure is 1.
  EXPECT_GE(maxLiveRegisters(P), 1u);
  EXPECT_LE(maxLiveRegisters(P), 2u);
}

TEST_F(AlphaTest, MaxLiveExcludesMemoryRegs) {
  Program P;
  P.Cycles = 2;
  P.Inputs = {{0, "M", true}, {1, "p", false}, {2, "x", false}};
  P.Instrs = {instr(Builtin::Store,
                    {Operand::reg(0), Operand::reg(1), Operand::reg(2)}, 3,
                    0, Unit::L0)};
  P.Outputs = {{"M", 3}};
  // Only p and x are integer registers.
  EXPECT_LE(maxLiveRegisters(P), 2u);
}

TEST_F(AlphaTest, WideParallelProgramPressure) {
  // 8 parallel adds all live to the end: pressure ~ 1 input + 8 temps.
  Program P;
  P.Cycles = 4;
  P.Inputs = {{0, "x", false}};
  for (uint32_t I = 0; I < 8; ++I) {
    P.Instrs.push_back(instr(Builtin::Add64,
                             {Operand::reg(0), Operand::imm(I)}, 1 + I,
                             I / 4, unitFromIndex(I % 4)));
    P.Outputs.push_back({"r" + std::to_string(I), 1 + I});
  }
  EXPECT_GE(maxLiveRegisters(P), 8u);
}

} // namespace
