//===- tests/ServerTests.cpp - Compile server & canonical caching ---------===//
//
// The server layer's contract, in four parts:
//   * canonicalization: alpha-renamed / operand-commuted / source-renamed
//     GMAs share one key; different structure never does; keys fold the
//     options fingerprint in (invalidation on Options change);
//   * cache serving: exact duplicates are bit-identical to their cold
//     compile, alpha-variants are served by pure renaming and still pass
//     differential verification, cache-off matches the plain driver;
//   * re-entrancy: one const Superoptimizer compiles distinct GMAs from
//     several threads with results identical to sequential compiles;
//   * protocol: bulk grouping hit counts are deterministic, and serve()
//     answers every request line in order.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"
#include "verify/GmaGen.h"
#include "verify/GmaText.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

using namespace denali;
using namespace denali::server;

namespace {

driver::Options smallOptions() {
  driver::Options Opts;
  Opts.Search.MaxCycles = 4;
  return Opts;
}

gma::GMA parse(driver::Superoptimizer &Opt, const std::string &Text) {
  std::string Err;
  std::optional<gma::GMA> G = verify::parseGma(Opt.context(), Text, &Err);
  EXPECT_TRUE(G.has_value()) << Err << "\n" << Text;
  return *G;
}

//===----------------------------------------------------------------------===//
// Canonicalization & keys
//===----------------------------------------------------------------------===//

TEST(CanonTest, AlphaRenameSameKeyAndText) {
  driver::Superoptimizer Opt(smallOptions());
  gma::GMA A = parse(Opt, "(gma f (assign r (add64 a (mul64 b c))))");
  gma::GMA B = parse(Opt, "(gma f (assign r (add64 x (mul64 y z))))");
  CanonicalGma CA = canonicalizeGma(Opt.context(), A);
  CanonicalGma CB = canonicalizeGma(Opt.context(), B);
  EXPECT_EQ(CA.Text, CB.Text);
  std::string FP = resultFingerprint(Opt.options());
  EXPECT_EQ(makeKey(CA.Text, FP), makeKey(CB.Text, FP));
  // The renaming is recorded per request, in canonical first-use order
  // (the shape sort visits the (mul64 ? ?) operand before the bare
  // variable, so b/y lead).
  ASSERT_EQ(CA.VarMap.size(), 3u);
  ASSERT_EQ(CB.VarMap.size(), 3u);
  EXPECT_EQ(CA.VarMap[0].first, "b");
  EXPECT_EQ(CA.VarMap[0].second, "v0");
  EXPECT_EQ(CB.VarMap[0].first, "y");
  EXPECT_EQ(CB.VarMap[0].second, "v0");
}

TEST(CanonTest, CommutedOperandsSameText) {
  driver::Superoptimizer Opt(smallOptions());
  gma::GMA A = parse(Opt, "(gma f (assign r (add64 (mul64 a b) c)))");
  gma::GMA B = parse(Opt, "(gma f (assign r (add64 c (mul64 b a))))");
  EXPECT_EQ(canonicalizeGma(Opt.context(), A).Text,
            canonicalizeGma(Opt.context(), B).Text);
}

TEST(CanonTest, SourceAndTargetNamesStripped) {
  driver::Superoptimizer Opt(smallOptions());
  gma::GMA A = parse(Opt, "(gma first (assign r (add64 a b)))");
  gma::GMA B = parse(Opt, "(gma second (assign out (add64 a b)))");
  CanonicalGma CA = canonicalizeGma(Opt.context(), A);
  EXPECT_EQ(CA.Text, canonicalizeGma(Opt.context(), B).Text);
  ASSERT_EQ(CA.Targets.size(), 1u);
  EXPECT_EQ(CA.Targets[0], "r");
  EXPECT_EQ(CA.Name, "first");
}

TEST(CanonTest, DifferentStructureDifferentKey) {
  driver::Superoptimizer Opt(smallOptions());
  gma::GMA A = parse(Opt, "(gma f (assign r (add64 a b)))");
  gma::GMA B = parse(Opt, "(gma f (assign r (sub64 a b)))");
  CanonicalGma CA = canonicalizeGma(Opt.context(), A);
  CanonicalGma CB = canonicalizeGma(Opt.context(), B);
  EXPECT_NE(CA.Text, CB.Text);
  std::string FP = resultFingerprint(Opt.options());
  EXPECT_NE(makeKey(CA.Text, FP), makeKey(CB.Text, FP));
  // (sub64 b a) IS alpha-equivalent to (sub64 a b) — swapping the names
  // is a renaming, not a commutation — so it must share B's skeleton.
  gma::GMA C = parse(Opt, "(gma f (assign r (sub64 b a)))");
  EXPECT_EQ(CB.Text, canonicalizeGma(Opt.context(), C).Text);
  // But sub64 is NOT commutative: against a constant (which cannot be
  // renamed) the operand order must survive canonicalization.
  gma::GMA D = parse(Opt, "(gma f (assign r (sub64 a 5)))");
  gma::GMA E = parse(Opt, "(gma f (assign r (sub64 5 a)))");
  EXPECT_NE(canonicalizeGma(Opt.context(), D).Text,
            canonicalizeGma(Opt.context(), E).Text);
  // Same-variable reuse is also structural, not nominal.
  gma::GMA F = parse(Opt, "(gma f (assign r (sub64 a a)))");
  EXPECT_NE(CB.Text, canonicalizeGma(Opt.context(), F).Text);
}

TEST(CanonTest, OptionsChangeInvalidatesResultKeyOnly) {
  driver::Options O1 = smallOptions();
  driver::Options O2 = smallOptions();
  O2.Search.MaxCycles = 8;
  // A search-only knob moves the result fingerprint but not the
  // saturation fingerprint: the warm graph stays valid, the result
  // cache entry does not.
  EXPECT_NE(resultFingerprint(O1), resultFingerprint(O2));
  EXPECT_EQ(matchFingerprint(O1), matchFingerprint(O2));
  driver::Options O3 = smallOptions();
  O3.EnforceGuard = false;
  EXPECT_NE(matchFingerprint(O1), matchFingerprint(O3));
  // Match parallelism is excluded: PR 6 saturation is thread-count
  // bit-identical.
  driver::Options O4 = smallOptions();
  O4.Matching.Threads = 7;
  EXPECT_EQ(matchFingerprint(O1), matchFingerprint(O4));
}

// Property over the generator stream: canonicalization is deterministic,
// idempotent (the canonical text re-canonicalizes to itself), and stable
// under the printGma/parseGma round trip.
TEST(CanonTest, GeneratedGmasCanonicalizeStably) {
  driver::Superoptimizer Opt(smallOptions());
  verify::GmaGen Gen(Opt.context(), /*Seed=*/7);
  for (int I = 0; I < 25; ++I) {
    gma::GMA G = Gen.next();
    CanonicalGma C1 = canonicalizeGma(Opt.context(), G);
    EXPECT_EQ(C1.Text, canonicalizeGma(Opt.context(), G).Text);

    std::string Err;
    std::optional<gma::GMA> Round =
        verify::parseGma(Opt.context(), verify::printGma(Opt.context(), G),
                         &Err);
    ASSERT_TRUE(Round.has_value()) << Err;
    EXPECT_EQ(C1.Text, canonicalizeGma(Opt.context(), *Round).Text);

    std::optional<gma::GMA> Canon =
        verify::parseGma(Opt.context(), C1.Text, &Err);
    ASSERT_TRUE(Canon.has_value()) << Err << "\n" << C1.Text;
    EXPECT_EQ(C1.Text, canonicalizeGma(Opt.context(), *Canon).Text);
  }
}

//===----------------------------------------------------------------------===//
// Cache serving
//===----------------------------------------------------------------------===//

TEST(ServerTest, ExactDuplicateIsBitIdenticalToColdCompile) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  CompileServer Server(SO);
  const std::string Text = "(gma dup (assign r (add64 a (add64 b 3))))";

  ServerResponse Cold = Server.compileText(Text);
  ASSERT_TRUE(Cold.Result.ok()) << Cold.Result.Error;
  EXPECT_EQ(Cold.Source, ResultSource::Cold);

  ServerResponse Hit = Server.compileText(Text);
  ASSERT_TRUE(Hit.Result.ok()) << Hit.Result.Error;
  EXPECT_EQ(Hit.Source, ResultSource::CacheHit);
  EXPECT_EQ(Cold.Result.Search.Cycles, Hit.Result.Search.Cycles);
  EXPECT_EQ(Cold.Result.Search.Program.toString(),
            Hit.Result.Search.Program.toString());

  // And the cold compile itself is the plain driver's answer.
  gma::GMA G = parse(Server.opt(), Text);
  driver::GmaResult Direct = Server.opt().compileGMA(G);
  EXPECT_EQ(Direct.Search.Program.toString(),
            Cold.Result.Search.Program.toString());
  EXPECT_EQ(Server.stats().CacheServes, 1u);
}

TEST(ServerTest, RenamedVariantServedFromCacheAndVerifies) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  CompileServer Server(SO);

  ServerResponse Cold =
      Server.compileText("(gma f (assign r (xor64 a (add64 b 5))))");
  ASSERT_TRUE(Cold.Result.ok()) << Cold.Result.Error;

  // Alpha-renamed variables, renamed target, renamed source, commuted
  // add: one canonical skeleton, served by renaming alone.
  ServerResponse Hit =
      Server.compileText("(gma g (assign out (xor64 x (add64 5 y))))");
  ASSERT_TRUE(Hit.Result.ok()) << Hit.Result.Error;
  EXPECT_EQ(Hit.Source, ResultSource::CacheHit);
  EXPECT_EQ(Hit.Result.Gma.Name, "g");
  EXPECT_EQ(Hit.Result.Search.Program.Name, "g");
  EXPECT_EQ(Cold.Result.Search.Cycles, Hit.Result.Search.Cycles);

  // The renamed program must still compute the request's GMA: the full
  // differential oracle (simulator vs reference evaluation) is the
  // cross-check that renaming composed correctly.
  std::optional<std::string> Bad = Server.opt().verify(Hit.Result);
  EXPECT_FALSE(Bad.has_value()) << *Bad;

  // Cross-check against an independent cold compile of the variant.
  driver::Superoptimizer Fresh(smallOptions());
  gma::GMA G2 = parse(Fresh, "(gma g (assign out (xor64 x (add64 5 y))))");
  driver::GmaResult Direct = Fresh.compileGMA(G2);
  ASSERT_TRUE(Direct.ok()) << Direct.Error;
  EXPECT_EQ(Direct.Search.Cycles, Hit.Result.Search.Cycles);
}

TEST(ServerTest, WarmGraphReusedWhenResultEntryCannotBeCached) {
  // A result cache too small for any entry (but nonzero) forces tier 1 to
  // stay empty while the count-capped warm-graph memo still works: the
  // second identical request must skip saturation (WarmGraph source) and
  // reach the same program.
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  SO.CacheBytes = 64; // Shard cap 8 bytes: every result is oversized.
  CompileServer Server(SO);
  const std::string Text = "(gma w (assign r (add64 a (xor64 b c))))";

  ServerResponse First = Server.compileText(Text);
  ASSERT_TRUE(First.Result.ok()) << First.Result.Error;
  EXPECT_EQ(First.Source, ResultSource::Cold);

  ServerResponse Second = Server.compileText(Text);
  ASSERT_TRUE(Second.Result.ok()) << Second.Result.Error;
  EXPECT_EQ(Second.Source, ResultSource::WarmGraph);
  EXPECT_EQ(First.Result.Search.Cycles, Second.Result.Search.Cycles);
  EXPECT_EQ(First.Result.Search.Program.toString(),
            Second.Result.Search.Program.toString());
  EXPECT_EQ(Server.stats().WarmCompiles, 1u);
}

TEST(ServerTest, CacheOffMatchesPlainDriver) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  SO.CacheBytes = 0; // Disables the result cache AND the graph memo.
  CompileServer Server(SO);
  const std::string Text = "(gma n (assign r (add64 a b)))";

  ServerResponse R1 = Server.compileText(Text);
  ServerResponse R2 = Server.compileText(Text);
  ASSERT_TRUE(R1.Result.ok()) << R1.Result.Error;
  EXPECT_EQ(R1.Source, ResultSource::Cold);
  EXPECT_EQ(R2.Source, ResultSource::Cold); // No tier ever serves.

  gma::GMA G = parse(Server.opt(), Text);
  driver::GmaResult Direct = Server.opt().compileGMA(G);
  EXPECT_EQ(Direct.Search.Program.toString(),
            R1.Result.Search.Program.toString());
  EXPECT_EQ(Direct.Search.Program.toString(),
            R2.Result.Search.Program.toString());
  ServerStats St = Server.stats();
  EXPECT_EQ(St.CacheServes, 0u);
  EXPECT_EQ(St.WarmCompiles, 0u);
  EXPECT_EQ(St.ResultCache.Entries, 0u);
  EXPECT_EQ(St.GraphMemo.Entries, 0u);
}

TEST(ServerTest, CacheStaysWithinByteCap) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  SO.CacheBytes = 8 << 10;
  CompileServer Server(SO);
  // Distinct skeletons (different literals), enough to overflow the cap.
  for (int I = 0; I < 16; ++I) {
    ServerResponse R = Server.compileText(
        strFormat("(gma e%d (assign r (add64 a %d)))", I, 100 + I));
    ASSERT_TRUE(R.Result.ok()) << R.Result.Error;
  }
  ServerStats St = Server.stats();
  EXPECT_LE(St.ResultCache.Bytes, SO.CacheBytes);
  // Recompiles after eviction are still correct (cold again or hit).
  ServerResponse Again =
      Server.compileText("(gma e0 (assign r (add64 a 100)))");
  ASSERT_TRUE(Again.Result.ok()) << Again.Result.Error;
}

//===----------------------------------------------------------------------===//
// Re-entrancy (satellite: const, concurrent Superoptimizer)
//===----------------------------------------------------------------------===//

TEST(ServerTest, ConcurrentCompilesOnOneConstSuperoptimizer) {
  driver::Superoptimizer Opt(smallOptions());
  // Pre-intern every GMA up front (the front end is the only mutable
  // stage); compiles below run on a const reference.
  std::vector<gma::GMA> Gmas;
  Gmas.push_back(parse(Opt, "(gma c0 (assign r (add64 a b)))"));
  Gmas.push_back(parse(Opt, "(gma c1 (assign r (xor64 a (add64 b 9))))"));
  Gmas.push_back(parse(Opt, "(gma c2 (assign r (sub64 (or64 a b) c)))"));
  Gmas.push_back(parse(Opt, "(gma c3 (assign r (and64 a (shl64 b 2)))"
                            " (guard (cmplt a b)))"));

  const driver::Superoptimizer &COpt = Opt;
  std::vector<driver::GmaResult> Sequential;
  for (const gma::GMA &G : Gmas)
    Sequential.push_back(COpt.compileGMA(G));

  std::vector<driver::GmaResult> Concurrent(Gmas.size());
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Gmas.size(); ++I)
    Threads.emplace_back(
        [&COpt, &Concurrent, &Gmas, I] { Concurrent[I] = COpt.compileGMA(Gmas[I]); });
  for (std::thread &T : Threads)
    T.join();

  for (size_t I = 0; I < Gmas.size(); ++I) {
    ASSERT_TRUE(Concurrent[I].ok()) << Concurrent[I].Error;
    EXPECT_EQ(Sequential[I].Search.Cycles, Concurrent[I].Search.Cycles);
    EXPECT_EQ(Sequential[I].Search.Program.toString(),
              Concurrent[I].Search.Program.toString());
  }
}

TEST(ServerTest, SaturateOnceCompileManyConcurrently) {
  // The warm-graph tier's underlying contract: one frozen SaturatedGma
  // serves concurrent compileSaturated() calls.
  driver::Superoptimizer Opt(smallOptions());
  gma::GMA G = parse(Opt, "(gma s (assign r (add64 (xor64 a b) c)))");
  driver::SaturatedGma S = Opt.saturateGMA(G);
  ASSERT_TRUE(S.ok()) << S.Error;

  const driver::Superoptimizer &COpt = Opt;
  driver::GmaResult Reference = COpt.compileSaturated(S, G);
  ASSERT_TRUE(Reference.ok()) << Reference.Error;

  std::vector<driver::GmaResult> Rs(4);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Rs.size(); ++I)
    Threads.emplace_back([&, I] { Rs[I] = COpt.compileSaturated(S, G); });
  for (std::thread &T : Threads)
    T.join();
  for (const driver::GmaResult &R : Rs) {
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(Reference.Search.Program.toString(),
              R.Search.Program.toString());
  }
}

//===----------------------------------------------------------------------===//
// Bulk mode & protocol
//===----------------------------------------------------------------------===//

TEST(ServerTest, BulkGroupingHitCountsDeterministic) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 2;
  CompileServer Server(SO);

  // 8 requests over 3 canonical skeletons (renames/commutes collapse).
  std::vector<std::string> Texts = {
      "(gma a0 (assign r (add64 a b)))",
      "(gma a1 (assign s (add64 y x)))",    // alpha+commute of a0
      "(gma b0 (assign r (sub64 a b)))",
      "(gma a2 (assign r (add64 a b)))",    // exact duplicate of a0
      "(gma c0 (assign r (xor64 a (add64 b 1))))",
      "(gma b1 (assign t (sub64 p q)))",    // alpha of b0
      "(gma c1 (assign r (xor64 (add64 b 1) a)))", // commute of c0
      "(gma a3 (assign z (add64 m n)))",    // alpha of a0
  };
  std::vector<ServerResponse> Rs = Server.compileBulk(Texts);
  ASSERT_EQ(Rs.size(), Texts.size());
  for (size_t I = 0; I < Rs.size(); ++I)
    ASSERT_TRUE(Rs[I].Result.ok()) << I << ": " << Rs[I].Result.Error;

  // Responses stay in input order (names echo back).
  EXPECT_EQ(Rs[0].Result.Gma.Name, "a0");
  EXPECT_EQ(Rs[7].Result.Gma.Name, "a3");

  ServerStats St = Server.stats();
  EXPECT_EQ(St.ColdCompiles, 3u);                    // One per skeleton.
  EXPECT_EQ(St.CacheServes, Texts.size() - 3u);      // Everyone else hits.
  EXPECT_EQ(St.Requests, Texts.size());

  // All members of a skeleton group agree on the minimal cycle count.
  EXPECT_EQ(Rs[0].Result.Search.Cycles, Rs[1].Result.Search.Cycles);
  EXPECT_EQ(Rs[0].Result.Search.Cycles, Rs[3].Result.Search.Cycles);
  EXPECT_EQ(Rs[2].Result.Search.Cycles, Rs[5].Result.Search.Cycles);
  EXPECT_EQ(Rs[4].Result.Search.Cycles, Rs[6].Result.Search.Cycles);
}

TEST(ServerTest, BulkParseErrorsReportedInPlace) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  CompileServer Server(SO);
  std::vector<ServerResponse> Rs = Server.compileBulk({
      "(gma ok1 (assign r (add64 a b)))",
      "(gma bad (assign r (no_such_op a b)))",
      "(gma ok2 (assign r (add64 a b)))",
  });
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_TRUE(Rs[0].Result.ok());
  EXPECT_FALSE(Rs[1].Result.Error.empty());
  EXPECT_TRUE(Rs[2].Result.ok());
  EXPECT_EQ(Rs[2].Source, ResultSource::CacheHit);
  EXPECT_EQ(Server.stats().ParseErrors, 1u);
}

TEST(ServerTest, ServeAnswersInOrderAndHandlesVerbs) {
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 2;
  CompileServer Server(SO);
  std::istringstream In("(gma p1 (assign r (add64 a b)))\n"
                        "\n" // Blank lines are ignored.
                        "(gma p2\n"
                        "  (assign r (sub64 a b))) ; multi-line form\n"
                        "(gma broken (assign r (no_such_op a)))\n"
                        "(stats)\n"
                        "(gma p3 (assign s (add64 x y)))\n"
                        "(quit)\n"
                        "(gma after-quit (assign r (add64 a b)))\n");
  std::ostringstream Out;
  int Failures = Server.serve(In, Out);
  EXPECT_EQ(Failures, 1); // The parse error.

  std::vector<std::string> Lines;
  std::istringstream Split(Out.str());
  for (std::string L; std::getline(Split, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 5u) << Out.str();
  EXPECT_EQ(Lines[0].compare(0, 7, "(ok p1 "), 0) << Lines[0];
  EXPECT_EQ(Lines[1].compare(0, 7, "(ok p2 "), 0) << Lines[1];
  EXPECT_EQ(Lines[2].compare(0, 6, "(error"), 0) << Lines[2];
  EXPECT_EQ(Lines[3].compare(0, 7, "(stats "), 0) << Lines[3];
  EXPECT_EQ(Lines[4].compare(0, 7, "(ok p3 "), 0) << Lines[4];
  // p3 is an alpha-variant of p1: served from cache.
  EXPECT_NE(Lines[4].find(":source hit"), std::string::npos) << Lines[4];
}

//===----------------------------------------------------------------------===//
// Telemetry (always-on tracing, live windows, stats-full, flusher)
//===----------------------------------------------------------------------===//

/// Puts the process-global obs layer in a known state for telemetry tests.
void resetObs(bool Enabled) {
  obs::ObsConfig C;
  C.Enabled = Enabled;
  obs::configure(C);
  obs::clearEvents();
  obs::Registry::global().resetAll();
}

TEST(TelemetryTest, AlwaysOnServerIsMetricsOnly) {
  // A fresh server with no explicit obs configuration still records: the
  // always-on default switches the metrics layer on in the constructor —
  // but with event buffering off, so a long-lived server accumulates
  // histograms and counters, not an unbounded trace.
  resetObs(false);
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  CompileServer Server(SO);
  EXPECT_TRUE(obs::enabled());
  EXPECT_FALSE(obs::eventsEnabled());

  ASSERT_TRUE(
      Server.compileText("(gma m1 (assign r (add64 a b)))").Result.ok());
  ASSERT_TRUE(
      Server.compileText("(gma m2 (assign r (sub64 a b)))").Result.ok());

  EXPECT_TRUE(obs::collectEvents().empty());

  // Metrics flow regardless: live latency windows, span-duration
  // histograms, and the per-backend compile counter all saw both requests
  // (two distinct skeletons: both cold).
  auto &Reg = obs::Registry::global();
  EXPECT_EQ(Reg.windowed("server.win.request.us").snapshot().Count, 2u);
  EXPECT_EQ(Reg.windowed("server.win.request.cold.us").snapshot().Count, 2u);
  EXPECT_EQ(Reg.histogram("span.server.request.us").count(), 2u);
  EXPECT_EQ(Reg.counterValue("driver.compile.alpha"), 2u);
}

TEST(TelemetryTest, TracingServerStampsRequestIdsOnSpans) {
  // When obs is configured with event buffering (the tracing default), the
  // server leaves the configuration alone and every span lands in the
  // shared trace stamped with its request id.
  resetObs(true);
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  CompileServer Server(SO);
  EXPECT_TRUE(obs::eventsEnabled());

  ASSERT_TRUE(
      Server.compileText("(gma t1 (assign r (add64 a b)))").Result.ok());
  ASSERT_TRUE(
      Server.compileText("(gma t2 (assign r (sub64 a b)))").Result.ok());

  std::vector<obs::Event> Events = obs::collectEvents();
  std::vector<const obs::Event *> ReqSpans;
  for (const obs::Event &E : Events)
    if (E.Kind == obs::EventKind::Span &&
        std::string(E.Name) == "server.request")
      ReqSpans.push_back(&E);
  ASSERT_EQ(ReqSpans.size(), 2u);
  EXPECT_NE(ReqSpans[0]->Req, 0u);
  EXPECT_NE(ReqSpans[1]->Req, 0u);
  EXPECT_NE(ReqSpans[0]->Req, ReqSpans[1]->Req);

  // Every pipeline span nested under a request carries that request's id,
  // so one request's stage breakdown is extractable from the shared trace.
  std::set<uint64_t> Ids{ReqSpans[0]->Req, ReqSpans[1]->Req};
  unsigned Nested = 0;
  for (const obs::Event &E : Events)
    if (E.Kind == obs::EventKind::Span &&
        (std::string(E.Name) == "search" ||
         std::string(E.Name) == "match.saturate")) {
      ++Nested;
      EXPECT_TRUE(Ids.count(E.Req)) << E.Name << " req " << E.Req;
    }
  EXPECT_GE(Nested, 2u);

  // The live latency windows saw both requests (two distinct skeletons:
  // both cold).
  auto &Reg = obs::Registry::global();
  EXPECT_EQ(Reg.windowed("server.win.request.us").snapshot().Count, 2u);
  EXPECT_EQ(Reg.windowed("server.win.request.cold.us").snapshot().Count, 2u);
  EXPECT_EQ(Reg.counterValue("driver.compile.alpha"), 2u);
}

TEST(TelemetryTest, ObsOffServerRecordsNoEventsOrWindows) {
  resetObs(false);
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  SO.Telemetry = false;
  CompileServer Server(SO);
  EXPECT_FALSE(obs::enabled());
  ASSERT_TRUE(
      Server.compileText("(gma off (assign r (add64 a b)))").Result.ok());
  EXPECT_TRUE(obs::collectEvents().empty());
  EXPECT_EQ(
      obs::Registry::global().windowed("server.win.request.us").snapshot()
          .Count,
      0u);
}

TEST(TelemetryTest, SlowRequestsCountedAgainstThreshold) {
  resetObs(true);
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  SO.Threads = 1;
  SO.SlowMs = 1e-6; // Every real compile exceeds a nanosecond threshold.
  CompileServer Server(SO);
  ASSERT_TRUE(
      Server.compileText("(gma slow (assign r (add64 a b)))").Result.ok());
  EXPECT_EQ(Server.stats().SlowRequests, 1u);
  EXPECT_EQ(obs::Registry::global().counterValue("server.slow_requests"),
            1u);

  // An effectively-unreachable threshold counts nothing.
  ServerOptions Fast = SO;
  Fast.SlowMs = 1e9;
  CompileServer Quick(Fast);
  ASSERT_TRUE(
      Quick.compileText("(gma quick (assign r (sub64 a b)))").Result.ok());
  EXPECT_EQ(Quick.stats().SlowRequests, 0u);
}

TEST(TelemetryTest, ServeStatsFullRoundTrip) {
  resetObs(true);
  ServerOptions SO;
  SO.Pipeline = smallOptions();
  // One worker: sf1 must finish (and fill the cache) before its alpha
  // variant sf2 starts, so the hit/cold split below is deterministic.
  SO.Threads = 1;
  CompileServer Server(SO);
  std::istringstream In("(gma sf1 (assign r (add64 a b)))\n"
                        "(gma sf2 (assign s (add64 x y)))\n" // alpha of sf1
                        "(stats-full)\n"
                        "(quit)\n");
  std::ostringstream Out;
  EXPECT_EQ(Server.serve(In, Out), 0);

  std::vector<std::string> Lines;
  std::istringstream Split(Out.str());
  for (std::string L; std::getline(Split, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 3u) << Out.str();
  // stats-full drains pending compiles first, so it answers last, on one
  // line, with the tier counters and the per-tier latency windows.
  const std::string &SF = Lines[2];
  EXPECT_EQ(SF.compare(0, 12, "(stats-full "), 0) << SF;
  EXPECT_EQ(SF.back(), ')') << SF;
  EXPECT_NE(SF.find(":requests 2"), std::string::npos) << SF;
  EXPECT_NE(SF.find(":cold 1"), std::string::npos) << SF;
  EXPECT_NE(SF.find(":hits 1"), std::string::npos) << SF;
  EXPECT_NE(SF.find(":queue-depth 0"), std::string::npos) << SF;
  EXPECT_NE(SF.find("(lat all :count 2"), std::string::npos) << SF;
  EXPECT_NE(SF.find("(lat cold :count 1"), std::string::npos) << SF;
  EXPECT_NE(SF.find("(lat hit :count 1"), std::string::npos) << SF;
  EXPECT_NE(SF.find(":p50-us "), std::string::npos) << SF;
  EXPECT_NE(SF.find(":window-s 60"), std::string::npos) << SF;
  // statsFullText() agrees with the protocol answer's shape.
  EXPECT_EQ(Server.statsFullText().compare(0, 12, "(stats-full "), 0);
}

TEST(TelemetryTest, BulkRequestsGetDistinctIdsAcrossPoolWorkers) {
  // compileBulk fans groups out to pool workers; every request must still
  // get its own id and feed the shared window exactly once. The TSan copy
  // of this test (server_tests_tsan) is the race gate for concurrent
  // WindowedHistogram record/snapshot.
  resetObs(true);
  std::vector<std::string> Texts;
  for (int I = 0; I < 4; ++I)
    Texts.push_back(strFormat("(gma b%d (assign r (add64 a %d)))", I,
                              100 + I));
  for (int I = 0; I < 4; ++I)
    Texts.push_back(strFormat("(gma b%dx (assign z (add64 q %d)))", I,
                              100 + I)); // Alpha variants: cache hits.
  {
    ServerOptions SO;
    SO.Pipeline = smallOptions();
    SO.Threads = 4;
    CompileServer Server(SO);
    std::vector<ServerResponse> Rs = Server.compileBulk(Texts);
    ASSERT_EQ(Rs.size(), Texts.size());
    for (const ServerResponse &R : Rs)
      ASSERT_TRUE(R.Result.ok()) << R.Result.Error;
  } // Join the pool: worker event chunks publish at thread exit.

  std::set<uint64_t> Ids;
  for (const obs::Event &E : obs::collectEvents())
    if (E.Kind == obs::EventKind::Span &&
        std::string(E.Name) == "server.request") {
      EXPECT_NE(E.Req, 0u);
      Ids.insert(E.Req);
    }
  EXPECT_EQ(Ids.size(), Texts.size());
  EXPECT_EQ(
      obs::Registry::global().windowed("server.win.request.us").snapshot()
          .Count,
      Texts.size());
}

TEST(TelemetryTest, ServerFlusherWritesSnapshotOnShutdown) {
  resetObs(true);
  const std::string Path = "server_flush_test.jsonl";
  std::remove(Path.c_str());
  std::remove((Path + ".1").c_str());
  {
    ServerOptions SO;
    SO.Pipeline = smallOptions();
    SO.Threads = 1;
    SO.MetricsFlushSec = 3600; // Interval never fires in-test...
    SO.MetricsFlushPath = Path;
    CompileServer Server(SO);
    ASSERT_TRUE(
        Server.compileText("(gma fl (assign r (add64 a b)))").Result.ok());
    EXPECT_GE(Server.metricsFlusher().flushCount(), 0u);
  } // ...the destructor's stop() still leaves one final line behind.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Line.front(), '{');
  EXPECT_EQ(Line.back(), '}');
  EXPECT_NE(Line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(Line.find("\"server.requests\":1"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"whists\":"), std::string::npos);
  std::remove(Path.c_str());
}

} // namespace
