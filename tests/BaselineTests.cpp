//===- tests/BaselineTests.cpp - baseline implementations tests -----------===//

#include "alpha/Simulator.h"
#include "baseline/BruteForce.h"
#include "baseline/Rewriter.h"
#include "baseline/TreeCodegen.h"
#include "driver/Superoptimizer.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::baseline;
using denali::ir::Builtin;

namespace {

//===----------------------------------------------------------------------===
// Naive tree codegen + list scheduler ("the C compiler").
//===----------------------------------------------------------------------===

class TreeCodegenTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  alpha::ISA Isa{Ctx};

  ir::TermId c(uint64_t V) { return Ctx.Terms.makeConst(V); }
  ir::TermId v(const std::string &N) { return Ctx.Terms.makeVar(N); }
  ir::TermId app(Builtin B, std::vector<ir::TermId> Args) {
    return Ctx.Terms.makeBuiltin(B, Args);
  }

  alpha::Program gen(ir::TermId Goal) {
    std::string Err;
    auto P = naiveCodegen(Ctx, Isa, {{"res", Goal}}, "naive", &Err);
    EXPECT_TRUE(P.has_value()) << Err;
    return P ? std::move(*P) : alpha::Program();
  }

  void checkFunctional(const alpha::Program &P, ir::TermId Goal,
                       uint64_t X, uint64_t Y) {
    ir::Env E;
    E[Ctx.Ops.makeVariable("x")] = ir::Value::makeInt(X);
    E[Ctx.Ops.makeVariable("y")] = ir::Value::makeInt(Y);
    auto Want = ir::evalTerm(Ctx.Terms, Goal, E);
    ASSERT_TRUE(Want.has_value());
    alpha::RunResult Run = alpha::runProgram(
        Ctx, P,
        {{"x", ir::Value::makeInt(X)}, {"y", ir::Value::makeInt(Y)}});
    ASSERT_TRUE(Run.Ok) << Run.Error;
    EXPECT_TRUE(Run.Outputs.at("res").equals(*Want)) << P.toString();
  }
};

TEST_F(TreeCodegenTest, StraightLine) {
  ir::TermId Goal = app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(4)}),
                                         c(1)});
  alpha::Program P = gen(Goal);
  // Naive codegen emits mulq (latency 7) + addq: at least 8 cycles.
  EXPECT_GE(P.Cycles, 8u);
  alpha::TimingReport TR = alpha::validateTiming(Isa, P);
  EXPECT_TRUE(TR.Ok) << TR.Error << P.toString();
  checkFunctional(P, Goal, 10, 0);
}

TEST_F(TreeCodegenTest, ScheduleRespectsUnits) {
  // Shifts are upper-only; four independent shifts need two cycles.
  ir::TermId Goal = app(
      Builtin::Or64,
      {app(Builtin::Or64, {app(Builtin::Shl64, {v("x"), c(1)}),
                           app(Builtin::Shl64, {v("x"), c(2)})}),
       app(Builtin::Or64, {app(Builtin::Shl64, {v("x"), c(3)}),
                           app(Builtin::Shl64, {v("x"), c(4)})})});
  alpha::Program P = gen(Goal);
  alpha::TimingReport TR = alpha::validateTiming(Isa, P);
  EXPECT_TRUE(TR.Ok) << TR.Error << P.toString();
  checkFunctional(P, Goal, 0x1234, 0);
}

TEST_F(TreeCodegenTest, ByteOpsLowered) {
  ir::TermId Goal = app(
      Builtin::StoreB, {c(0), c(1), app(Builtin::SelectB, {v("x"), c(3)})});
  alpha::Program P = gen(Goal);
  alpha::TimingReport TR = alpha::validateTiming(Isa, P);
  EXPECT_TRUE(TR.Ok) << TR.Error << P.toString();
  checkFunctional(P, Goal, 0x8877665544332211ULL, 0);
}

TEST_F(TreeCodegenTest, MemoryOps) {
  ir::TermId M = v("M");
  ir::TermId Goal =
      app(Builtin::Select, {M, app(Builtin::Add64, {v("x"), c(8)})});
  alpha::Program P = gen(Goal);
  alpha::TimingReport TR = alpha::validateTiming(Isa, P);
  EXPECT_TRUE(TR.Ok) << TR.Error << P.toString();
  // Displacement folded.
  ASSERT_EQ(P.Instrs.size(), 1u);
  EXPECT_EQ(P.Instrs[0].Disp, 8);
  ir::Value Mem = ir::Value::makeArray(2);
  alpha::RunResult Run = alpha::runProgram(
      Ctx, P, {{"M", Mem}, {"x", ir::Value::makeInt(100)}});
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.Outputs.at("res").asInt(), Mem.select(108));
}

TEST_F(TreeCodegenTest, ConstantSubtreesFold) {
  ir::TermId Goal = app(Builtin::Add64, {v("x"),
                                         app(Builtin::Mul64, {c(6), c(7)})});
  alpha::Program P = gen(Goal);
  // 42 fits the literal slot: a single addq.
  EXPECT_EQ(P.Instrs.size(), 1u);
}

TEST_F(TreeCodegenTest, DeclaredOpFails) {
  ir::OpId Mystery = Ctx.Ops.declareOp("mystery", 1);
  ir::TermId Goal = Ctx.Terms.make(Mystery, {v("x")});
  std::string Err;
  auto P = naiveCodegen(Ctx, Isa, {{"res", Goal}}, "bad", &Err);
  EXPECT_FALSE(P.has_value());
  EXPECT_NE(Err.find("mystery"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Greedy rewriter (the section 5 phase-ordering story).
//===----------------------------------------------------------------------===

class RewriterTest : public TreeCodegenTest {};

TEST_F(RewriterTest, StrengthReduction) {
  ir::TermId T = app(Builtin::Mul64, {v("x"), c(16)});
  RewriteResult R = greedyRewrite(Ctx, Isa, T);
  EXPECT_EQ(Ctx.Terms.toString(R.Term), "(shl64 x 4)");
}

TEST_F(RewriterTest, MissesScaledAdd) {
  // The paper's point: mul is rewritten to a shift first, so the s4addl
  // pattern never matches, and the result costs two instructions where
  // Denali finds one.
  ir::TermId T = app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(4)}),
                                      c(1)});
  RewriteResult R = greedyRewrite(Ctx, Isa, T);
  EXPECT_EQ(Ctx.Terms.toString(R.Term), "(add64 (shl64 x 2) 1)");
  EXPECT_EQ(termCost(Ctx, Isa, R.Term), 2u);
  // Denali: one s4addq.
  driver::Superoptimizer Opt;
  ir::TermId Goal = Opt.context().Terms.makeBuiltin(
      Builtin::Add64,
      {Opt.context().Terms.makeBuiltin(
           Builtin::Mul64,
           {Opt.context().Terms.makeVar("x"),
            Opt.context().Terms.makeConst(4)}),
       Opt.context().Terms.makeConst(1)});
  driver::GmaResult DR = Opt.compileGoals("fig2", {{"res", Goal}});
  ASSERT_TRUE(DR.ok()) << DR.Error;
  EXPECT_EQ(DR.Search.Program.Instrs.size(), 1u);
}

TEST_F(RewriterTest, DirectScaledAddStillFound) {
  // When the source is literally k*4 + n and nothing rewrites the multiply
  // first... the greedy engine *does* rewrite it first (bottom-up), so
  // even here the pattern is lost. A root-first engine would catch this
  // one but lose others; that is the game the E-graph does not play.
  ir::TermId T = app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(4)}),
                                      v("y")});
  RewriteResult R = greedyRewrite(Ctx, Isa, T);
  EXPECT_NE(Ctx.Terms.toString(R.Term).find("shl64"), std::string::npos);
}

TEST_F(RewriterTest, RewritePreservesSemantics) {
  ir::TermId T = app(
      Builtin::Add64,
      {app(Builtin::Mul64, {v("x"), c(8)}),
       app(Builtin::StoreB, {c(0), c(0), app(Builtin::SelectB, {v("y"), c(2)})})});
  RewriteResult R = greedyRewrite(Ctx, Isa, T);
  for (uint64_t X : {0ULL, 1ULL, 0xdeadbeefULL}) {
    ir::Env E;
    E[Ctx.Ops.makeVariable("x")] = ir::Value::makeInt(X);
    E[Ctx.Ops.makeVariable("y")] = ir::Value::makeInt(X * 31 + 5);
    auto A = ir::evalTerm(Ctx.Terms, T, E);
    auto B = ir::evalTerm(Ctx.Terms, R.Term, E);
    ASSERT_TRUE(A && B);
    EXPECT_TRUE(A->equals(*B));
  }
}

TEST_F(RewriterTest, IdentitiesCollapse) {
  ir::TermId T =
      app(Builtin::Add64,
          {app(Builtin::Mul64, {v("x"), c(1)}), c(0)});
  RewriteResult R = greedyRewrite(Ctx, Isa, T);
  EXPECT_EQ(Ctx.Terms.toString(R.Term), "x");
}

TEST_F(RewriterTest, ConstFolding) {
  ir::TermId T = app(Builtin::Mul64, {app(Builtin::Add64, {c(3), c(4)}),
                                      c(6)});
  RewriteResult R = greedyRewrite(Ctx, Isa, T);
  EXPECT_EQ(Ctx.Terms.toString(R.Term), "42");
}

TEST_F(RewriterTest, CostModel) {
  EXPECT_EQ(termCost(Ctx, Isa, v("x")), 0u);
  EXPECT_EQ(termCost(Ctx, Isa, c(5)), 0u);
  EXPECT_EQ(termCost(Ctx, Isa, c(100000)), 1u); // Needs materialization.
  EXPECT_EQ(termCost(Ctx, Isa, app(Builtin::Add64, {v("x"), v("y")})), 1u);
  EXPECT_EQ(termCost(Ctx, Isa, app(Builtin::Mul64, {v("x"), v("y")})), 7u);
  // Shared subterms are counted once (DAG cost).
  ir::TermId S = app(Builtin::Add64, {v("x"), v("y")});
  EXPECT_EQ(termCost(Ctx, Isa, app(Builtin::Xor64, {S, S})), 2u);
  // Non-machine operators are effectively banned.
  EXPECT_GE(termCost(Ctx, Isa, app(Builtin::Pow, {v("x"), v("y")})), 1000u);
}

//===----------------------------------------------------------------------===
// Massalin-style brute force.
//===----------------------------------------------------------------------===

class BruteForceTest : public TreeCodegenTest {};

TEST_F(BruteForceTest, FindsSingleInstruction) {
  ir::TermId Goal = app(Builtin::Add64, {v("x"), v("y")});
  BruteForceOptions Opts;
  Opts.MaxLength = 1;
  BruteForceResult R = bruteForceSearch(Ctx, Goal, {"x", "y"}, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Length, 1u);
  EXPECT_EQ(R.Sequence[0].B, Builtin::Add64);
}

TEST_F(BruteForceTest, FindsScaledAdd) {
  // x*4 + 1: brute force finds the s4addl immediately at length 1 (it is
  // in the repertoire), matching Denali's answer.
  ir::TermId Goal = app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(4)}),
                                         c(1)});
  BruteForceOptions Opts;
  Opts.MaxLength = 2;
  BruteForceResult R = bruteForceSearch(Ctx, Goal, {"x"}, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Length, 1u); // s4addl x, #1: the literal rides the imm slot.
}

TEST_F(BruteForceTest, ShortestIsFound) {
  // (x | y) at length 1 even though longer equivalents exist.
  ir::TermId Goal = app(Builtin::Or64, {v("x"), v("y")});
  BruteForceOptions Opts;
  Opts.MaxLength = 3;
  BruteForceResult R = bruteForceSearch(Ctx, Goal, {"x", "y"}, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Length, 1u);
}

TEST_F(BruteForceTest, TwoInstructionSequence) {
  // (x & 0xff) << 8 = insbl(x, 1): length 1. Use something needing 2:
  // (x + y) ^ x.
  ir::TermId Goal = app(Builtin::Xor64,
                        {app(Builtin::Add64, {v("x"), v("y")}), v("x")});
  BruteForceOptions Opts;
  Opts.MaxLength = 2;
  BruteForceResult R = bruteForceSearch(Ctx, Goal, {"x", "y"}, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Length, 2u);
  EXPECT_GT(R.SequencesTried, 0u);
}

TEST_F(BruteForceTest, SequenceCountsGrow) {
  // The enumeration explodes with length — the measurement behind E6.
  ir::TermId Unfindable = app(
      Builtin::Xor64,
      {app(Builtin::Mul64, {v("x"), v("x")}),
       app(Builtin::Shl64, {v("x"), c(7)})}); // mul not in repertoire.
  BruteForceOptions Opts;
  Opts.MaxLength = 2;
  Opts.MaxSequencesPerLength = 2000000;
  BruteForceResult R1 = bruteForceSearch(Ctx, Unfindable, {"x"}, Opts);
  EXPECT_FALSE(R1.Found);
  EXPECT_GT(R1.SequencesTried, 1000u);
}

TEST_F(BruteForceTest, VerifierRejectsCoincidences) {
  // With a single, weak test vector many wrong candidates pass the suite;
  // the verifier must reject them (Massalin's "must be studied to check
  // correctness" step, mechanized).
  ir::TermId Goal = app(Builtin::Add64, {v("x"), c(0)}); // = x.
  BruteForceOptions Opts;
  Opts.MaxLength = 1;
  Opts.NumTestVectors = 1; // Deliberately inadequate.
  BruteForceResult R = bruteForceSearch(Ctx, Goal, {"x"}, Opts);
  ASSERT_TRUE(R.Found);
  // Whatever was found must truly compute x on fresh random inputs.
  EXPECT_EQ(R.FalseCandidates + 1, R.CandidatesFound);
}

TEST_F(BruteForceTest, ToStringRenders) {
  ir::TermId Goal = app(Builtin::Add64, {v("x"), v("y")});
  BruteForceOptions Opts;
  Opts.MaxLength = 1;
  BruteForceResult R = bruteForceSearch(Ctx, Goal, {"x", "y"}, Opts);
  ASSERT_TRUE(R.Found);
  std::string S = R.toString(Ctx, {"x", "y"});
  EXPECT_NE(S.find("add64"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===
// Equality-saturation extraction (the egg-style modern baseline).
//===----------------------------------------------------------------------===

#include "axioms/BuiltinAxioms.h"
#include "baseline/EGraphExtract.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"

namespace {

class ExtractTest : public ::testing::Test {
protected:
  ir::Context Ctx;
  alpha::ISA Isa{Ctx};
  egraph::EGraph G{Ctx};

  egraph::ClassId c(uint64_t V) { return G.addConst(V); }
  egraph::ClassId v(const std::string &N) {
    return G.addNode(Ctx.Ops.makeVariable(N), {});
  }
  egraph::ClassId app(Builtin B, std::vector<egraph::ClassId> Args) {
    return G.addNode(Ctx.Ops.builtin(B), Args);
  }

  void saturate() {
    match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    match::MatchLimits Limits;
    Limits.MaxNodes = 30000;
    M.saturate(G, Limits);
    ASSERT_FALSE(G.isInconsistent());
  }
};

TEST_F(ExtractTest, PicksCheapestAlternative) {
  // x*16 saturates to a shift; extraction must pick sll (cost 1) over
  // mulq (cost 7).
  egraph::ClassId Goal = app(Builtin::Mul64, {v("x"), c(16)});
  saturate();
  auto R = extractBestTerm(G, Isa, Goal);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Cost, 1u);
  EXPECT_EQ(Ctx.Terms.toString(R->Term), "(shl64 x 4)"); // 16 = 2**4.
}

TEST_F(ExtractTest, FindsScaledAddUnlikeRewriter) {
  // Extraction over the saturated E-graph *does* find s4addl (the E-graph
  // kept both forms) — matching Denali on size for this goal.
  egraph::ClassId Goal =
      app(Builtin::Add64, {app(Builtin::Mul64, {v("x"), c(4)}), c(1)});
  saturate();
  auto R = extractBestTerm(G, Isa, Goal);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(Ctx.Terms.toString(R->Term), "(s4addl x 1)");
}

TEST_F(ExtractTest, UncomputableClassFails) {
  ir::OpId Mystery = Ctx.Ops.declareOp("mystery", 1);
  egraph::ClassId Goal = G.addNode(Mystery, {v("x")});
  saturate();
  EXPECT_FALSE(extractBestTerm(G, Isa, Goal).has_value());
}

TEST_F(ExtractTest, ExtractAndScheduleRuns) {
  egraph::ClassId Goal =
      app(Builtin::Or64, {app(Builtin::Shl64, {v("a"), c(8)}),
                          app(Builtin::Shr64, {v("b"), c(8)})});
  saturate();
  std::string Err;
  auto P = extractAndSchedule(G, Isa, {{"res", G.find(Goal)}}, "es", &Err);
  ASSERT_TRUE(P.has_value()) << Err;
  alpha::TimingReport TR = alpha::validateTiming(Isa, *P);
  EXPECT_TRUE(TR.Ok) << TR.Error;
  ir::Env E;
  E[Ctx.Ops.makeVariable("a")] = ir::Value::makeInt(0x1234);
  E[Ctx.Ops.makeVariable("b")] = ir::Value::makeInt(0xff00);
  alpha::RunResult Run = alpha::runProgram(
      Ctx, *P,
      {{"a", ir::Value::makeInt(0x1234)}, {"b", ir::Value::makeInt(0xff00)}});
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.Outputs.at("res").asInt(),
            (0x1234ULL << 8) | (0xff00ULL >> 8));
}

TEST_F(ExtractTest, SimpleQuadModelLoosensUnits) {
  // On SimpleQuad every unit executes shifts, so four independent shifts
  // schedule in one cycle; on EV6 the two upper units bound it at two.
  ir::Context Ctx2;
  alpha::ISA Ev6(Ctx2, alpha::Machine::EV6);
  alpha::ISA Simple(Ctx2, alpha::Machine::SimpleQuad);
  EXPECT_EQ(Ev6.crossClusterDelay(), 1u);
  EXPECT_EQ(Simple.crossClusterDelay(), 0u);
  EXPECT_EQ(Simple.descFor(Ctx2.Ops.builtin(Builtin::Shl64))->UnitMask,
            alpha::MaskAll);
}

} // namespace
