//===- tests/SupportTests.cpp - support library unit tests ---------------===//

#include "support/FunctionRef.h"
#include "support/Json.h"
#include "support/StringExtras.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

using namespace denali;

TEST(StrFormat, Basic) {
  EXPECT_EQ(strFormat("x=%d", 42), "x=42");
  EXPECT_EQ(strFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strFormat("empty"), "empty");
}

TEST(StrFormat, LongOutput) {
  std::string Long(500, 'y');
  EXPECT_EQ(strFormat("%s", Long.c_str()), Long);
}

TEST(SplitString, Basic) {
  auto Pieces = splitString("a,b,,c", ",");
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(SplitString, MultipleSeparators) {
  auto Pieces = splitString("a b\tc", " \t");
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[2], "c");
}

TEST(SplitString, Empty) {
  EXPECT_TRUE(splitString("", ",").empty());
  EXPECT_TRUE(splitString(",,,", ",").empty());
}

TEST(ParseIntegerLiteral, Decimal) {
  int64_t V = 0;
  EXPECT_TRUE(parseIntegerLiteral("123", V));
  EXPECT_EQ(V, 123);
  EXPECT_TRUE(parseIntegerLiteral("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_TRUE(parseIntegerLiteral("+9", V));
  EXPECT_EQ(V, 9);
}

TEST(ParseIntegerLiteral, Hex) {
  int64_t V = 0;
  EXPECT_TRUE(parseIntegerLiteral("0xff", V));
  EXPECT_EQ(V, 255);
  EXPECT_TRUE(parseIntegerLiteral("0XAB", V));
  EXPECT_EQ(V, 0xab);
}

TEST(ParseIntegerLiteral, Rejects) {
  int64_t V = 0;
  EXPECT_FALSE(parseIntegerLiteral("", V));
  EXPECT_FALSE(parseIntegerLiteral("-", V));
  EXPECT_FALSE(parseIntegerLiteral("12a", V));
  EXPECT_FALSE(parseIntegerLiteral("0x", V));
  EXPECT_FALSE(parseIntegerLiteral("abc", V));
}

TEST(FormatConstant, SmallDecimalLargeHex) {
  EXPECT_EQ(formatConstant(7), "7");
  EXPECT_EQ(formatConstant(1023), "1023");
  EXPECT_EQ(formatConstant(0xffff), "0xffff");
}

TEST(Json, BmpEscapes) {
  namespace json = support::json;
  std::string Err;
  auto V = json::parse(R"("A\u00E9\u20AC")", &Err);
  ASSERT_NE(V, nullptr) << Err;
  // A, é (2-byte UTF-8), € (3-byte UTF-8).
  EXPECT_EQ(V->stringValue(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(Json, SurrogatePairCombines) {
  namespace json = support::json;
  std::string Err;
  auto V = json::parse(R"("\uD83D\uDE00")", &Err);
  ASSERT_NE(V, nullptr) << Err;
  // U+1F600 as 4-byte UTF-8.
  EXPECT_EQ(V->stringValue(), "\xf0\x9f\x98\x80");
  // Pairs at the extremes of the supplementary range: U+10000, U+10FFFF.
  auto Lo = json::parse(R"("\uD800\uDC00")", &Err);
  ASSERT_NE(Lo, nullptr) << Err;
  EXPECT_EQ(Lo->stringValue(), "\xf0\x90\x80\x80");
  auto Hi = json::parse(R"("\uDBFF\uDFFF")", &Err);
  ASSERT_NE(Hi, nullptr) << Err;
  EXPECT_EQ(Hi->stringValue(), "\xf4\x8f\xbf\xbf");
}

TEST(Json, RejectsLoneSurrogates) {
  namespace json = support::json;
  std::string Err;
  EXPECT_EQ(json::parse(R"("\uD83D")", &Err), nullptr);
  EXPECT_NE(Err.find("unpaired high surrogate"), std::string::npos) << Err;
  EXPECT_EQ(json::parse(R"("\uD83Dx")", &Err), nullptr);
  EXPECT_EQ(json::parse(R"("\uD83D\n")", &Err), nullptr);
  EXPECT_EQ(json::parse(R"("\uD83D\u0041")", &Err), nullptr);
  EXPECT_NE(Err.find("bad low surrogate"), std::string::npos) << Err;
  EXPECT_EQ(json::parse(R"("\uDE00")", &Err), nullptr);
  EXPECT_NE(Err.find("unpaired low surrogate"), std::string::npos) << Err;
  EXPECT_EQ(json::parse(R"("\u12")", &Err), nullptr);
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;
}

TEST(Json, NumberForms) {
  namespace json = support::json;
  std::string Err;
  auto V = json::parse(R"([1e3, -0.25, 2.5e-3, 0, -7])", &Err);
  ASSERT_NE(V, nullptr) << Err;
  const auto &A = V->array();
  ASSERT_EQ(A.size(), 5u);
  EXPECT_DOUBLE_EQ(A[0].numberValue(), 1000.0);
  EXPECT_DOUBLE_EQ(A[1].numberValue(), -0.25);
  EXPECT_DOUBLE_EQ(A[2].numberValue(), 0.0025);
  EXPECT_DOUBLE_EQ(A[3].numberValue(), 0.0);
  EXPECT_DOUBLE_EQ(A[4].numberValue(), -7.0);
}

TEST(Timer, Monotonic) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(FunctionRefTest, CallsThroughWithoutOwning) {
  int Calls = 0;
  auto Inc = [&](int By) { Calls += By; return Calls; };
  FunctionRef<int(int)> Ref = Inc;
  EXPECT_EQ(Ref(2), 2);
  EXPECT_EQ(Ref(3), 5);
  EXPECT_EQ(Calls, 5);
  FunctionRef<int(int)> Empty;
  EXPECT_FALSE(static_cast<bool>(Empty));
  EXPECT_TRUE(static_cast<bool>(Ref));
}

TEST(ThreadPoolTest, RunsTasksAndReturnsResults) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 32; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Futures[I].get(), I * I);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  support::ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 1u);
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  support::ThreadPool Pool(2);
  auto Ok = Pool.submit([] { return 1; });
  auto Bad = Pool.submit(
      []() -> int { throw std::runtime_error("probe exploded"); });
  EXPECT_EQ(Ok.get(), 1);
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(Pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndInRange) {
  support::ThreadPool Pool(3);
  EXPECT_EQ(support::ThreadPool::currentWorkerId(), -1);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 24; ++I)
    Futures.push_back(
        Pool.submit([] { return support::ThreadPool::currentWorkerId(); }));
  for (auto &F : Futures) {
    int Id = F.get();
    EXPECT_GE(Id, 0);
    EXPECT_LT(Id, 3);
  }
}

TEST(ThreadPoolTest, CancellationStopsCooperativeTask) {
  support::ThreadPool Pool(2);
  support::CancellationToken Token;
  EXPECT_FALSE(Token.isCancelled());
  std::atomic<bool> Started{false};
  // The task spins until the token fires — the shape of a SAT probe
  // polling its interrupt flag at conflict boundaries.
  auto Loops = Pool.submit([&] {
    Started = true;
    uint64_t Polls = 0;
    while (!Token.isCancelled())
      ++Polls;
    return Polls;
  });
  while (!Started)
    std::this_thread::yield();
  Token.requestCancel();
  EXPECT_GE(Loops.get(), 0u); // Returns at all == cancellation worked.
  EXPECT_TRUE(Token.isCancelled());
  // Token copies share the flag.
  support::CancellationToken Copy = Token;
  EXPECT_TRUE(Copy.isCancelled());
}

TEST(ThreadPoolTest, DiscardsQueuedTasksOnDestruction) {
  std::atomic<int> Ran{0};
  std::future<void> Abandoned;
  {
    support::ThreadPool Pool(1);
    support::CancellationToken Gate;
    auto Blocker = Pool.submit([&] {
      while (!Gate.isCancelled())
        std::this_thread::yield();
    });
    for (int I = 0; I < 8; ++I)
      Abandoned = Pool.submit([&] { ++Ran; });
    Gate.requestCancel();
    Blocker.get();
    // Destruction: the blocker finished; queued tasks may or may not have
    // started, but the pool must shut down promptly either way.
  }
  EXPECT_LE(Ran.load(), 8);
}
