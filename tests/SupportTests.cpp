//===- tests/SupportTests.cpp - support library unit tests ---------------===//

#include "support/StringExtras.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace denali;

TEST(StrFormat, Basic) {
  EXPECT_EQ(strFormat("x=%d", 42), "x=42");
  EXPECT_EQ(strFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strFormat("empty"), "empty");
}

TEST(StrFormat, LongOutput) {
  std::string Long(500, 'y');
  EXPECT_EQ(strFormat("%s", Long.c_str()), Long);
}

TEST(SplitString, Basic) {
  auto Pieces = splitString("a,b,,c", ",");
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(SplitString, MultipleSeparators) {
  auto Pieces = splitString("a b\tc", " \t");
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[2], "c");
}

TEST(SplitString, Empty) {
  EXPECT_TRUE(splitString("", ",").empty());
  EXPECT_TRUE(splitString(",,,", ",").empty());
}

TEST(ParseIntegerLiteral, Decimal) {
  int64_t V = 0;
  EXPECT_TRUE(parseIntegerLiteral("123", V));
  EXPECT_EQ(V, 123);
  EXPECT_TRUE(parseIntegerLiteral("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_TRUE(parseIntegerLiteral("+9", V));
  EXPECT_EQ(V, 9);
}

TEST(ParseIntegerLiteral, Hex) {
  int64_t V = 0;
  EXPECT_TRUE(parseIntegerLiteral("0xff", V));
  EXPECT_EQ(V, 255);
  EXPECT_TRUE(parseIntegerLiteral("0XAB", V));
  EXPECT_EQ(V, 0xab);
}

TEST(ParseIntegerLiteral, Rejects) {
  int64_t V = 0;
  EXPECT_FALSE(parseIntegerLiteral("", V));
  EXPECT_FALSE(parseIntegerLiteral("-", V));
  EXPECT_FALSE(parseIntegerLiteral("12a", V));
  EXPECT_FALSE(parseIntegerLiteral("0x", V));
  EXPECT_FALSE(parseIntegerLiteral("abc", V));
}

TEST(FormatConstant, SmallDecimalLargeHex) {
  EXPECT_EQ(formatConstant(7), "7");
  EXPECT_EQ(formatConstant(1023), "1023");
  EXPECT_EQ(formatConstant(0xffff), "0xffff");
}

TEST(Timer, Monotonic) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}
