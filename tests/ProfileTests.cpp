//===- tests/ProfileTests.cpp - saturation profiler & adaptive budgets ----===//
//
// Contract tests for the per-axiom attribution ledger (obs::ProfileLedger)
// and the history-driven adaptive scheduler (MatchLimits::Adaptive):
//
//  * ledger persistence is merge-on-load JSONL with exponential
//    forgetting — totals add, FirstRound min / LastRound max, rows halve
//    at the DecayThreshold, malformed lines fail loudly, a missing file
//    is a cold start;
//  * recordMatchProfile writes one row per non-ground axiom whose sums
//    reconcile exactly with the aggregate MatchStats (raw matches,
//    asserted instances) — all-zero rows included, so "never matched" is
//    demotable history;
//  * adaptive scheduling with a warmed ledger reaches the identical
//    quiescent closure as blind backoff (partition, node/class counts,
//    extraction costs) while enumerating strictly fewer raw matches, and
//    with an empty ledger is bit-identical to the default scheduler;
//  * the ledger key (driver::profileLedgerKey) masks the adaptive bit, so
//    profiling runs feed the adaptive runs they warm, while the server's
//    cache fingerprint (driver::matchOptionsFingerprint) keeps them
//    distinct.
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "driver/Superoptimizer.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "obs/ProfileLedger.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace denali;
using denali::egraph::ClassId;
using denali::ir::Builtin;

namespace {

obs::AxiomProfile mkProfile(uint64_t Raw, uint64_t Instances,
                            uint64_t MatchNs, uint64_t InstNs,
                            unsigned First = 0, unsigned Last = 0) {
  obs::AxiomProfile P;
  P.Raw = Raw;
  P.Instances = Instances;
  P.MatchNs = MatchNs;
  P.InstantiateNs = InstNs;
  P.FirstRound = First;
  P.LastRound = Last;
  P.Runs = 1;
  return P;
}

/// The paper's Figure 2 goal (reg6*4 + 1) — quiesces under the default
/// limits, which every closure-equivalence test here needs.
std::vector<ir::TermId> figure2Seeds(ir::Context &Ctx) {
  ir::TermId Mul = Ctx.Terms.makeBuiltin(
      Builtin::Mul64, {Ctx.Terms.makeVar("reg6"), Ctx.Terms.makeConst(4)});
  return {Ctx.Terms.makeBuiltin(Builtin::Add64,
                                {Mul, Ctx.Terms.makeConst(1)})};
}

/// One saturation run over a fresh graph; returns the stats and fills the
/// seed-root partition.
match::MatchStats runSat(ir::Context &Ctx,
                         const std::vector<ir::TermId> &Seeds,
                         const match::MatchLimits &Limits,
                         std::vector<unsigned> *PartitionOut = nullptr,
                         obs::ProfileLedger *RecordInto = nullptr,
                         const std::string &Key = "k") {
  egraph::EGraph G(Ctx);
  std::vector<ClassId> Roots;
  for (ir::TermId T : Seeds)
    Roots.push_back(G.addTerm(T));
  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  match::MatchStats S = M.saturate(G, Limits);
  if (RecordInto)
    match::recordMatchProfile(*RecordInto, Key, M.axioms(), S);
  if (PartitionOut) {
    PartitionOut->assign(Roots.size(), 0);
    for (size_t I = 0; I < Roots.size(); ++I) {
      (*PartitionOut)[I] = static_cast<unsigned>(I);
      for (size_t J = 0; J < I; ++J)
        if (G.sameClass(Roots[I], Roots[J])) {
          (*PartitionOut)[I] = static_cast<unsigned>(J);
          break;
        }
    }
  }
  return S;
}

//===----------------------------------------------------------------------===
// ProfileLedger persistence
//===----------------------------------------------------------------------===

TEST(ProfileLedger, RoundTripsThroughJsonl) {
  obs::ProfileLedger L;
  L.record("key1", "ax#0", mkProfile(10, 3, 5000, 2000, 1, 4));
  L.record("key1", "ax#1", mkProfile(7, 0, 900, 0));
  L.record("key2", "ax#0", mkProfile(2, 2, 100, 100, 2, 2));
  ASSERT_EQ(L.size(), 3u);

  obs::ProfileLedger Copy;
  std::string Err;
  ASSERT_TRUE(Copy.loadText(L.toJsonl(), &Err)) << Err;
  ASSERT_EQ(Copy.size(), 3u);
  obs::AxiomProfile P;
  ASSERT_TRUE(Copy.lookup("key1", "ax#0", P));
  EXPECT_EQ(P.Raw, 10u);
  EXPECT_EQ(P.Instances, 3u);
  EXPECT_EQ(P.MatchNs, 5000u);
  EXPECT_EQ(P.InstantiateNs, 2000u);
  EXPECT_EQ(P.FirstRound, 1u);
  EXPECT_EQ(P.LastRound, 4u);
  EXPECT_EQ(P.Runs, 1u);
  // Serialization is deterministic (rows sorted by key then id).
  EXPECT_EQ(L.toJsonl(), Copy.toJsonl());
}

TEST(ProfileLedger, LoadMergesInsteadOfReplacing) {
  obs::ProfileLedger L;
  L.record("k", "a#0", mkProfile(10, 2, 100, 100, 3, 5));
  std::string Once = L.toJsonl();

  obs::ProfileLedger M;
  ASSERT_TRUE(M.loadText(Once));
  ASSERT_TRUE(M.loadText(Once));
  obs::AxiomProfile P;
  ASSERT_TRUE(M.lookup("k", "a#0", P));
  EXPECT_EQ(P.Raw, 20u);
  EXPECT_EQ(P.Instances, 4u);
  EXPECT_EQ(P.Runs, 2u);
  // FirstRound stays the min nonzero, LastRound the max.
  EXPECT_EQ(P.FirstRound, 3u);
  EXPECT_EQ(P.LastRound, 5u);
}

TEST(ProfileLedger, RecordDecaysAtThreshold) {
  obs::ProfileLedger L;
  obs::AxiomProfile Old = mkProfile(1000, 100, 100000, 50000);
  Old.Runs = obs::ProfileLedger::DecayThreshold;
  L.record("k", "a#0", Old);

  // The next record halves the accumulated row before adding, so the
  // totals stay bounded and recent behavior dominates.
  L.record("k", "a#0", mkProfile(10, 1, 1000, 500));
  obs::AxiomProfile P;
  ASSERT_TRUE(L.lookup("k", "a#0", P));
  EXPECT_EQ(P.Raw, 510u);
  EXPECT_EQ(P.Instances, 51u);
  EXPECT_EQ(P.Runs, obs::ProfileLedger::DecayThreshold / 2 + 1);
}

TEST(ProfileLedger, DecayDropsEmptiedRows) {
  obs::ProfileLedger L;
  obs::AxiomProfile Small = mkProfile(1, 0, 10, 0);
  L.record("k", "a#0", Small);
  obs::AxiomProfile Big = mkProfile(100, 10, 1000, 500);
  Big.Runs = 10;
  L.record("k", "a#1", Big);
  ASSERT_EQ(L.size(), 2u);

  L.decay(0.4); // a#0's single run rounds down to 0 -> dropped.
  EXPECT_EQ(L.size(), 1u);
  obs::AxiomProfile P;
  EXPECT_FALSE(L.lookup("k", "a#0", P));
  ASSERT_TRUE(L.lookup("k", "a#1", P));
  EXPECT_EQ(P.Runs, 4u);
  EXPECT_EQ(P.Raw, 40u);
}

TEST(ProfileLedger, MalformedLineFailsLoudly) {
  obs::ProfileLedger L;
  std::string Err;
  EXPECT_FALSE(L.loadText("{\"key\": \"k\", truncated", &Err));
  EXPECT_FALSE(Err.empty());
  // Rows parsed before the bad line are kept (merge semantics), but the
  // failure is reported so a corrupt ledger never goes unnoticed.
  EXPECT_FALSE(L.loadText("not json at all\n", &Err));
}

TEST(ProfileLedger, MissingFileIsColdStart) {
  obs::ProfileLedger L;
  std::string Err;
  EXPECT_TRUE(L.load("/nonexistent/denali-profile-ledger.jsonl", &Err))
      << Err;
  EXPECT_EQ(L.size(), 0u);
}

TEST(ProfileLedger, SaveWritesLoadableFile) {
  obs::ProfileLedger L;
  L.record("k", "a#0", mkProfile(5, 1, 100, 100));
  std::string Path =
      testing::TempDir() + "/denali_profile_ledger_test.jsonl";
  std::string Err;
  ASSERT_TRUE(L.save(Path, &Err)) << Err;
  obs::ProfileLedger M;
  ASSERT_TRUE(M.load(Path, &Err)) << Err;
  EXPECT_EQ(M.size(), 1u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===
// Attribution: recordMatchProfile and MatchStats::PerAxiom
//===----------------------------------------------------------------------===

TEST(ProfileAttribution, PerAxiomSumsReconcileWithAggregate) {
  ir::Context Ctx;
  match::MatchStats S = runSat(Ctx, figure2Seeds(Ctx), match::MatchLimits());
  ASSERT_TRUE(S.Quiesced);
  ASSERT_FALSE(S.PerAxiom.empty());

  uint64_t Raw = 0, Instances = 0;
  for (const obs::AxiomProfile &P : S.PerAxiom) {
    Raw += P.Raw;
    Instances += P.Instances;
    if (P.Instances) {
      EXPECT_GE(P.LastRound, P.FirstRound);
    }
  }
  EXPECT_EQ(Raw, S.MatchesFound);
  EXPECT_EQ(Instances, S.InstancesAsserted);
}

TEST(ProfileAttribution, ProfileOffSkipsPerAxiomWithoutChangingClosure) {
  ir::Context Ctx;
  std::vector<unsigned> POn, POff;
  match::MatchLimits On, Off;
  Off.Profile = false;
  match::MatchStats A = runSat(Ctx, figure2Seeds(Ctx), On, &POn);
  match::MatchStats B = runSat(Ctx, figure2Seeds(Ctx), Off, &POff);
  uint64_t Attributed = 0;
  for (const obs::AxiomProfile &P : B.PerAxiom)
    Attributed += P.Raw + P.Instances + P.Skips;
  EXPECT_EQ(Attributed, 0u);
  EXPECT_EQ(A.MatchesFound, B.MatchesFound);
  EXPECT_EQ(A.Rounds, B.Rounds);
  EXPECT_EQ(A.FinalNodes, B.FinalNodes);
  EXPECT_EQ(A.FinalClasses, B.FinalClasses);
  EXPECT_EQ(POn, POff);
}

TEST(ProfileAttribution, RecordsAllNonGroundAxiomsIncludingIdleOnes) {
  ir::Context Ctx;
  obs::ProfileLedger L;
  runSat(Ctx, figure2Seeds(Ctx), match::MatchLimits(), nullptr, &L, "g");

  std::vector<match::Axiom> Axioms = axioms::loadBuiltinAxioms(Ctx);
  size_t NonGround = 0, ZeroRows = 0;
  for (size_t I = 0; I < Axioms.size(); ++I) {
    if (Axioms[I].VarNames.empty())
      continue; // ground facts carry no schedulable history
    ++NonGround;
    obs::AxiomProfile P;
    ASSERT_TRUE(
        L.lookup("g", match::Matcher::axiomLedgerId(Axioms[I], I), P))
        << "missing row for axiom " << I;
    EXPECT_EQ(P.Runs, 1u);
    if (!P.Raw && !P.Instances)
      ++ZeroRows;
  }
  EXPECT_EQ(L.size(), NonGround);
  // figure2 exercises a small slice of the builtin rule set; the idle
  // rest must still be recorded (zero rows are what demotion reads).
  EXPECT_GT(ZeroRows, 0u);
}

TEST(ProfileAttribution, LedgerIdPinsIndexAgainstNameCollisions) {
  ir::Context Ctx;
  std::vector<match::Axiom> Axioms = axioms::loadBuiltinAxioms(Ctx);
  ASSERT_GT(Axioms.size(), 1u);
  std::string A = match::Matcher::axiomLedgerId(Axioms[0], 0);
  std::string B = match::Matcher::axiomLedgerId(Axioms[1], 1);
  EXPECT_NE(A, B);
  EXPECT_NE(A.find('#'), std::string::npos);
}

//===----------------------------------------------------------------------===
// Adaptive scheduling
//===----------------------------------------------------------------------===

TEST(AdaptiveSchedule, WarmLedgerReachesBlindClosureWithFewerMatches) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = figure2Seeds(Ctx);

  // Blind: tight budget, backoff has to discover every axiom's appetite.
  match::MatchLimits Blind;
  Blind.MatchBudget = 2;
  Blind.MaxRounds = 200;
  std::vector<unsigned> BlindPart;
  obs::ProfileLedger Ledger;
  match::MatchStats B = runSat(Ctx, Seeds, Blind, &BlindPart, &Ledger, "g");
  ASSERT_TRUE(B.Quiesced);
  ASSERT_GT(B.BudgetOverflows, 0u);

  match::MatchLimits Warm = Blind;
  Warm.Adaptive = true;
  Warm.Ledger = &Ledger;
  Warm.LedgerKey = "g";
  std::vector<unsigned> WarmPart;
  match::MatchStats W = runSat(Ctx, Seeds, Warm, &WarmPart);
  EXPECT_TRUE(W.Quiesced);
  EXPECT_GT(W.AdaptiveSeeded, 0u);
  // Identical closure, strictly fewer raw match attempts.
  EXPECT_EQ(W.FinalNodes, B.FinalNodes);
  EXPECT_EQ(W.FinalClasses, B.FinalClasses);
  EXPECT_EQ(WarmPart, BlindPart);
  EXPECT_LT(W.MatchesFound, B.MatchesFound);
}

TEST(AdaptiveSchedule, DemotesNeverProductiveAxioms) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = figure2Seeds(Ctx);
  obs::ProfileLedger Ledger;
  match::MatchStats Plain =
      runSat(Ctx, Seeds, match::MatchLimits(), nullptr, &Ledger, "g");
  ASSERT_TRUE(Plain.Quiesced);

  // Unbudgeted adaptive run: seeding is off (nothing to raise), but the
  // idle axioms recorded above demote to a trailing phase. The closure
  // must not change — demoted work re-enters via phase advances.
  match::MatchLimits Adaptive;
  Adaptive.Adaptive = true;
  Adaptive.Ledger = &Ledger;
  Adaptive.LedgerKey = "g";
  match::MatchStats A = runSat(Ctx, Seeds, Adaptive);
  EXPECT_TRUE(A.Quiesced);
  EXPECT_GT(A.AdaptiveDemoted, 0u);
  EXPECT_GT(A.PhaseAdvances, 0u);
  EXPECT_EQ(A.FinalNodes, Plain.FinalNodes);
  EXPECT_EQ(A.FinalClasses, Plain.FinalClasses);
}

TEST(AdaptiveSchedule, NoHistoryIsBitIdenticalToDefaultScheduler) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = figure2Seeds(Ctx);
  match::MatchLimits Plain;
  Plain.MatchBudget = 4;
  Plain.MaxRounds = 200;
  match::MatchStats A = runSat(Ctx, Seeds, Plain);

  obs::ProfileLedger Empty;
  match::MatchLimits Adaptive = Plain;
  Adaptive.Adaptive = true;
  Adaptive.Ledger = &Empty;
  Adaptive.LedgerKey = "g";
  match::MatchStats B = runSat(Ctx, Seeds, Adaptive);
  EXPECT_EQ(B.AdaptiveSeeded, 0u);
  EXPECT_EQ(B.AdaptiveDemoted, 0u);
  EXPECT_EQ(A.Rounds, B.Rounds);
  EXPECT_EQ(A.MatchesFound, B.MatchesFound);
  EXPECT_EQ(A.InstancesAsserted, B.InstancesAsserted);
  EXPECT_EQ(A.InstancesDeduped, B.InstancesDeduped);
  EXPECT_EQ(A.BudgetOverflows, B.BudgetOverflows);
  EXPECT_EQ(A.BudgetSkips, B.BudgetSkips);
  EXPECT_EQ(A.FinalNodes, B.FinalNodes);
  EXPECT_EQ(A.FinalClasses, B.FinalClasses);
}

TEST(AdaptiveSchedule, ParallelAdaptiveIsBitIdenticalToSequential) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = figure2Seeds(Ctx);
  match::MatchLimits Blind;
  Blind.MatchBudget = 2;
  Blind.MaxRounds = 200;
  obs::ProfileLedger Ledger;
  runSat(Ctx, Seeds, Blind, nullptr, &Ledger, "g");

  match::MatchLimits Warm = Blind;
  Warm.Adaptive = true;
  Warm.Ledger = &Ledger;
  Warm.LedgerKey = "g";
  match::MatchStats Seq = runSat(Ctx, Seeds, Warm);
  Warm.Threads = 4;
  match::MatchStats Par = runSat(Ctx, Seeds, Warm);
  EXPECT_EQ(Seq.Rounds, Par.Rounds);
  EXPECT_EQ(Seq.MatchesFound, Par.MatchesFound);
  EXPECT_EQ(Seq.InstancesAsserted, Par.InstancesAsserted);
  EXPECT_EQ(Seq.FinalNodes, Par.FinalNodes);
  EXPECT_EQ(Seq.FinalClasses, Par.FinalClasses);
  EXPECT_EQ(Seq.AdaptiveSeeded, Par.AdaptiveSeeded);
  EXPECT_EQ(Seq.AdaptiveDemoted, Par.AdaptiveDemoted);
  // The deterministic attribution fields are thread-count-independent.
  ASSERT_EQ(Seq.PerAxiom.size(), Par.PerAxiom.size());
  for (size_t I = 0; I < Seq.PerAxiom.size(); ++I) {
    EXPECT_EQ(Seq.PerAxiom[I].Raw, Par.PerAxiom[I].Raw) << I;
    EXPECT_EQ(Seq.PerAxiom[I].Instances, Par.PerAxiom[I].Instances) << I;
    EXPECT_EQ(Seq.PerAxiom[I].Merges, Par.PerAxiom[I].Merges) << I;
    EXPECT_EQ(Seq.PerAxiom[I].Overflows, Par.PerAxiom[I].Overflows) << I;
    EXPECT_EQ(Seq.PerAxiom[I].Skips, Par.PerAxiom[I].Skips) << I;
    EXPECT_EQ(Seq.PerAxiom[I].FirstRound, Par.PerAxiom[I].FirstRound) << I;
    EXPECT_EQ(Seq.PerAxiom[I].LastRound, Par.PerAxiom[I].LastRound) << I;
  }
}

//===----------------------------------------------------------------------===
// Driver wiring: fingerprints and ledger keys
//===----------------------------------------------------------------------===

TEST(ProfileDriver, LedgerKeyMasksAdaptiveBitButFingerprintKeepsIt) {
  driver::Options A;
  driver::Options B = A;
  B.MatchAdaptive = true;
  // The server memo must not share entries across scheduling modes...
  EXPECT_NE(driver::matchOptionsFingerprint(A),
            driver::matchOptionsFingerprint(B));
  // ...but profiling runs and the adaptive runs they warm share rows.
  EXPECT_EQ(driver::profileLedgerKey(A), driver::profileLedgerKey(B));

  driver::Options C = A;
  C.Matching.MatchBudget = 64;
  EXPECT_NE(driver::profileLedgerKey(A), driver::profileLedgerKey(C));
}

TEST(ProfileDriver, SuperoptimizerRecordsAndPersistsLedger) {
  std::string Path = testing::TempDir() + "/denali_driver_ledger.jsonl";
  std::remove(Path.c_str());
  {
    driver::Options Opts;
    Opts.ProfileLedgerPath = Path;
    driver::Superoptimizer Opt(Opts);
    driver::GmaResult R = Opt.compileGoals(
        "f", {{"r", figure2Seeds(Opt.context())[0]}});
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_GT(Opt.profileLedger().size(), 0u);
    std::string Err;
    ASSERT_TRUE(Opt.saveProfileLedger(&Err)) << Err;
  }
  {
    // A second pipeline warm-starts from the file and merges onto it.
    driver::Options Opts;
    Opts.ProfileLedgerPath = Path;
    Opts.MatchAdaptive = true;
    driver::Superoptimizer Opt(Opts);
    EXPECT_GT(Opt.profileLedger().size(), 0u);
    driver::GmaResult R = Opt.compileGoals(
        "f", {{"r", figure2Seeds(Opt.context())[0]}});
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_GT(R.Matching.AdaptiveSeeded + R.Matching.AdaptiveDemoted, 0u);
  }
  std::remove(Path.c_str());
}

} // namespace
