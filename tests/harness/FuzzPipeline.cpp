//===- tests/harness/FuzzPipeline.cpp - whole-pipeline fuzz target --------===//
//
// libFuzzer entry point for the compile-and-verify loop: the input bytes
// select a GmaGen seed plus shape knobs, and the resulting GMAs run through
// the pipeline under the differential oracle. Any non-benign verdict (a
// mismatch between reference evaluator, simulator, and schedule replay)
// aborts, so the fuzzer minimizes straight to a reproducing seed.
//
// Coverage feedback steers the *structure* of generated GMAs (which
// operators, guards, memory shapes reach which pipeline paths) even though
// the bytes themselves never parse as text.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "verify/GmaGen.h"
#include "verify/GmaText.h"
#include "verify/Oracle.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace denali;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size < 9)
    return 0;
  uint64_t Seed;
  std::memcpy(&Seed, Data, 8);

  verify::GmaGenOptions GOpts;
  GOpts.MaxDepth = 1 + Data[8] % 3;
  if (Size > 9)
    GOpts.MemoryPercent = Data[9] % 101;
  if (Size > 10)
    GOpts.GuardPercent = Data[10] % 101;
  if (Size > 11)
    GOpts.NonMachinePercent = Data[11] % 41;

  // Byte 12 selects the machine model, so the same structural seed grid
  // exercises every backend's opcode table and scheduler constraints.
  driver::Options DOpts;
  bool RV64 = Size > 12 && (Data[12] & 1);
  DOpts.MachineName = RV64 ? "rv64" : "alpha";
  DOpts.Search.MaxCycles = 10;
  DOpts.Matching.MaxNodes = 10000;
  DOpts.Matching.MaxRounds = 10;
  driver::Superoptimizer Opt(DOpts);

  verify::GmaGen Gen(Opt.context(), Seed, GOpts);
  verify::OracleOptions OOpts;
  OOpts.Trials = 2;
  for (unsigned I = 0; I < 2; ++I) {
    gma::GMA G = Gen.next();
    verify::OracleVerdict V = verify::compileAndCheck(Opt, G, OOpts);
    if (!V.benign()) {
      // A narrower backend may honestly refuse a GMA whose operators have
      // no core-ISA alternative even after saturation (e.g. byte ops on
      // RV64I when the rewrite budget runs out); that is a coverage gap,
      // not a pipeline bug.
      if (V.Status == verify::OracleStatus::CompileError &&
          V.Detail.find("no machine-computable alternative") !=
              std::string::npos)
        continue;
      std::fprintf(stderr, "pipeline oracle failure (%s): %s\n%s\n",
                   DOpts.MachineName.c_str(), V.toString().c_str(),
                   verify::printGma(Opt.context(), G).c_str());
      std::abort();
    }
  }
  return 0;
}
