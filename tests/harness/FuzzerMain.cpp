//===- tests/harness/FuzzerMain.cpp - file-replay main for fuzz targets ---===//
//
// Linked into the fuzz harnesses when they are built *without* libFuzzer
// (DENALI_LIBFUZZER=OFF, the default — e.g. GCC or no-sanitizer builds):
// every command-line argument is a file whose bytes are fed to
// LLVMFuzzerTestOneInput once. This keeps `denali_fuzz` compiling in every
// configuration and makes corpus replay (`fuzz_sexpr tests/corpus/sexpr/*`)
// a plain deterministic run.
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <cstdio>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

int main(int argc, char **argv) {
  int Failures = 0;
  for (int I = 1; I < argc; ++I) {
    std::FILE *F = std::fopen(argv[I], "rb");
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", argv[I]);
      ++Failures;
      continue;
    }
    std::vector<uint8_t> Bytes;
    uint8_t Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Bytes.insert(Bytes.end(), Buf, Buf + N);
    std::fclose(F);
    LLVMFuzzerTestOneInput(Bytes.data(), Bytes.size());
    std::fprintf(stderr, "replayed %s (%zu bytes)\n", argv[I], Bytes.size());
  }
  return Failures == 0 ? 0 : 1;
}
