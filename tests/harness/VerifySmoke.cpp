//===- tests/harness/VerifySmoke.cpp - differential smoke driver ----------===//
//
// The harness's command-line front end: streams seeded random GMAs from
// verify::GmaGen through the full pipeline under every search strategy and
// holds each result against the differential oracle (reference evaluator
// vs. simulator vs. schedule replay, budget agreement across strategies).
//
// With --machines a,b (two or more machine-model backends) the harness
// switches to the cross-backend arm: every GMA compiles under each
// backend, each result passes its own single-machine oracle, and all
// backends' simulators must agree on shared random input vectors
// (verify::crossCompileAndCheck).
//
// Four ctest entries run this binary:
//   verify_smoke             — N GMAs x all strategies, zero tolerance;
//   verify_fault_detect      — same stream with --inject-latency-bug, which
//     understates Universe latencies by 2 cycles (the E13 planted bug);
//     --expect-detect inverts the exit code: success means the oracle
//     caught the bug;
//   verify_cross_backend     — N GMAs through --machines alpha,rv64;
//   verify_fault_detect_rv64 — cross-backend stream with
//     --inject-rv64-latency-bug, which understates latencies only in the
//     rv64 backend's universe; only the cross-backend run compiles under
//     rv64 at all, so only it can catch this plant (E18).
//
// Usage: verify_smoke [--seed N] [--count N] [--trials N] [--max-cycles N]
//                     [--strategies linear,binary,portfolio,incremental]
//                     [--machines alpha,rv64]
//                     [--inject-latency-bug] [--inject-rv64-latency-bug]
//                     [--expect-detect] [-v] [--dump DIR]
//
// --dump writes the generated stream as corpus files (DIR/<name>.gma in
// the verify::GmaText format) instead of compiling — the documented way to
// regenerate tests/corpus/gma/.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "support/StringExtras.h"
#include "support/Timer.h"
#include "verify/CrossBackend.h"
#include "verify/GmaGen.h"
#include "verify/GmaText.h"
#include "verify/Oracle.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace denali;

namespace {

struct Flags {
  uint64_t Seed = 1;
  unsigned Count = 200;
  unsigned Trials = 3;
  unsigned MaxCycles = 12;
  std::vector<codegen::SearchStrategy> Strategies = {
      codegen::SearchStrategy::Linear, codegen::SearchStrategy::Binary,
      codegen::SearchStrategy::Portfolio,
      codegen::SearchStrategy::Incremental};
  std::vector<std::string> Machines; ///< Empty: single-machine mode.
  bool InjectLatencyBug = false;
  bool InjectRV64LatencyBug = false;
  bool ExpectDetect = false;
  bool Verbose = false;
  std::string DumpDir;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--count N] [--trials N] [--max-cycles N]\n"
      "          [--strategies linear,binary,portfolio,incremental]\n"
      "          [--machines alpha,rv64]\n"
      "          [--inject-latency-bug] [--inject-rv64-latency-bug]\n"
      "          [--expect-detect] [-v]\n",
      Argv0);
  return 2;
}

bool parseStrategies(const std::string &Spec,
                     std::vector<codegen::SearchStrategy> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Name = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "linear")
      Out.push_back(codegen::SearchStrategy::Linear);
    else if (Name == "binary")
      Out.push_back(codegen::SearchStrategy::Binary);
    else if (Name == "portfolio")
      Out.push_back(codegen::SearchStrategy::Portfolio);
    else if (Name == "incremental")
      Out.push_back(codegen::SearchStrategy::Incremental);
    else
      return false;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return !Out.empty();
}

const char *strategyName(codegen::SearchStrategy S) {
  switch (S) {
  case codegen::SearchStrategy::Linear:
    return "linear";
  case codegen::SearchStrategy::Binary:
    return "binary";
  case codegen::SearchStrategy::Portfolio:
    return "portfolio";
  case codegen::SearchStrategy::Incremental:
    return "incremental";
  }
  return "?";
}

} // namespace

int main(int argc, char **argv) {
  Flags F;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--seed") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      F.Seed = std::strtoull(V, nullptr, 0);
    } else if (Arg == "--count") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      F.Count = std::strtoul(V, nullptr, 0);
    } else if (Arg == "--trials") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      F.Trials = std::strtoul(V, nullptr, 0);
    } else if (Arg == "--max-cycles") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      F.MaxCycles = std::strtoul(V, nullptr, 0);
    } else if (Arg == "--strategies") {
      const char *V = Next();
      if (!V || !parseStrategies(V, F.Strategies))
        return usage(argv[0]);
    } else if (Arg == "--machines") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      F.Machines.clear();
      std::string Spec = V;
      size_t Pos = 0;
      while (Pos <= Spec.size()) {
        size_t Comma = Spec.find(',', Pos);
        F.Machines.push_back(Spec.substr(
            Pos,
            Comma == std::string::npos ? std::string::npos : Comma - Pos));
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else if (Arg == "--inject-rv64-latency-bug") {
      F.InjectRV64LatencyBug = true;
    } else if (Arg == "--dump") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      F.DumpDir = V;
    } else if (Arg == "--inject-latency-bug") {
      F.InjectLatencyBug = true;
    } else if (Arg == "--expect-detect") {
      F.ExpectDetect = true;
    } else if (Arg == "-v" || Arg == "--verbose") {
      F.Verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  // Cross-backend mode: one Superoptimizer (hence one ir::Context) per
  // requested machine; every GMA is judged by verify::crossCompileAndCheck.
  if (F.Machines.size() >= 2) {
    std::vector<std::unique_ptr<driver::Superoptimizer>> Owners;
    std::vector<driver::Superoptimizer *> Machines;
    for (const std::string &Name : F.Machines) {
      driver::Options MOpts;
      MOpts.MachineName = Name;
      MOpts.Search.MaxCycles = F.MaxCycles;
      MOpts.Search.Threads = 4;
      MOpts.Matching.MaxNodes = 8000;
      MOpts.Matching.MaxRounds = 8;
      if (F.InjectLatencyBug ||
          (F.InjectRV64LatencyBug && Name == "rv64"))
        MOpts.Universe.TestLatencyDelta = -2;
      Owners.push_back(std::make_unique<driver::Superoptimizer>(MOpts));
      Machines.push_back(Owners.back().get());
    }
    verify::GmaGen Gen(Machines[0]->context(), F.Seed);
    verify::CrossBackendOptions COpts;
    COpts.Trials = F.Trials;
    COpts.InputSeed = F.Seed + 1;

    Timer T;
    unsigned Failures = 0, Agreed = 0, Uncomputable = 0, Exhausted = 0;
    std::string FirstFailure;
    for (unsigned I = 0; I < F.Count; ++I) {
      gma::GMA G = Gen.next();
      verify::CrossBackendVerdict V =
          verify::crossCompileAndCheck(Machines, G, COpts);
      if (!V.benign()) {
        ++Failures;
        if (FirstFailure.empty())
          FirstFailure = G.Name + ": " + V.toString() + "\n" +
                         verify::printGma(Machines[0]->context(), G);
        if (F.Verbose)
          std::fprintf(stderr, "FAIL %s: %s\n", G.Name.c_str(),
                       V.toString().c_str());
        if (F.ExpectDetect)
          break; // One detection is all the fault run needs.
        continue;
      }
      if (V.Status == verify::CrossStatus::Agree)
        ++Agreed;
      else if (V.Status == verify::CrossStatus::SkippedUncomputable)
        ++Uncomputable;
      else
        ++Exhausted;
      if (F.Verbose)
        std::fprintf(stderr, "ok   %s: %s\n", G.Name.c_str(),
                     V.toString().c_str());
    }
    double Seconds = T.seconds();

    std::printf("verify_cross_backend: seed=%llu gmas=%u machines=%zu "
                "agree=%u skipped-uncomputable=%u skipped-budget=%u "
                "failures=%u (%.1f GMA/s, %.1fs total)\n",
                (unsigned long long)F.Seed, F.Count, F.Machines.size(),
                Agreed, Uncomputable, Exhausted, Failures,
                F.Count / Seconds, Seconds);
    if (!FirstFailure.empty())
      std::printf("first failure:\n%s\n", FirstFailure.c_str());

    if (F.ExpectDetect) {
      if (Failures == 0) {
        std::printf(
            "expected the planted fault to be detected; it was not\n");
        return 1;
      }
      std::printf("planted fault detected as expected\n");
      return 0;
    }
    if (Agreed == 0) {
      // A run where every GMA skipped would pass vacuously; insist that
      // the stream exercised real cross-backend agreement.
      std::printf("no GMA reached cross-backend agreement; the run is "
                  "vacuous\n");
      return 1;
    }
    return Failures == 0 ? 0 : 1;
  }

  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = F.MaxCycles;
  Opt.options().Search.Threads = 4;
  Opt.options().Matching.MaxNodes = 8000;
  Opt.options().Matching.MaxRounds = 8;
  if (F.InjectLatencyBug)
    Opt.options().Universe.TestLatencyDelta = -2;

  verify::GmaGen Gen(Opt.context(), F.Seed);
  if (!F.DumpDir.empty()) {
    for (unsigned I = 0; I < F.Count; ++I) {
      gma::GMA G = Gen.next();
      std::string Path = F.DumpDir + "/" + G.Name + ".gma";
      std::FILE *Out = std::fopen(Path.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "cannot write %s\n", Path.c_str());
        return 1;
      }
      std::fprintf(Out, "%s\n",
                   verify::printGma(Opt.context(), G).c_str());
      std::fclose(Out);
    }
    std::printf("wrote %u corpus GMAs to %s\n", F.Count, F.DumpDir.c_str());
    return 0;
  }
  verify::OracleOptions OOpts;
  OOpts.Trials = F.Trials;
  OOpts.InputSeed = F.Seed + 1;

  Timer T;
  unsigned Failures = 0, Compiled = 0, Exhausted = 0;
  std::string FirstFailure;
  for (unsigned I = 0; I < F.Count; ++I) {
    gma::GMA G = Gen.next();
    verify::OracleVerdict V;
    auto Err =
        verify::crossCheckStrategies(Opt, G, F.Strategies, OOpts, &V);
    if (Err) {
      ++Failures;
      if (FirstFailure.empty())
        FirstFailure = *Err + "\n" + verify::printGma(Opt.context(), G);
      if (F.Verbose)
        std::fprintf(stderr, "FAIL %s\n", Err->c_str());
      if (F.ExpectDetect)
        break; // One detection is all the fault run needs.
      continue;
    }
    if (V.Status == verify::OracleStatus::Pass)
      ++Compiled;
    else
      ++Exhausted;
    if (F.Verbose)
      std::fprintf(stderr, "ok   %s: %s\n", G.Name.c_str(),
                   V.toString().c_str());
  }
  double Seconds = T.seconds();

  std::printf("verify_smoke: seed=%llu gmas=%u strategies=%zu "
              "compiled=%u budget-exhausted=%u failures=%u "
              "(%.1f GMA/s, %.1fs total)\n",
              (unsigned long long)F.Seed, F.Count, F.Strategies.size(),
              Compiled, Exhausted, Failures, F.Count / Seconds, Seconds);
  for (codegen::SearchStrategy S : F.Strategies)
    std::printf("  strategy %s: differential agreement checked\n",
                strategyName(S));
  if (!FirstFailure.empty())
    std::printf("first failure:\n%s\n", FirstFailure.c_str());

  if (F.ExpectDetect) {
    if (Failures == 0) {
      std::printf("expected the planted fault to be detected; it was not\n");
      return 1;
    }
    std::printf("planted fault detected as expected\n");
    return 0;
  }
  return Failures == 0 ? 0 : 1;
}
