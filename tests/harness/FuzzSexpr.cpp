//===- tests/harness/FuzzSexpr.cpp - S-expression reader fuzz target ------===//
//
// libFuzzer entry point for the S-expression reader: arbitrary bytes must
// either parse or produce a positioned error — never crash — and whatever
// parses must survive a print/re-parse round trip unchanged in shape.
//
// Built with -fsanitize=fuzzer under DENALI_LIBFUZZER=ON; otherwise
// FuzzerMain.cpp links a plain file-replay main around the same entry
// point so the corpus stays executable in every configuration.
//
//===----------------------------------------------------------------------===//

#include "sexpr/Parser.h"

#include <cstdint>
#include <cstdlib>
#include <string>

using namespace denali;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Text(reinterpret_cast<const char *>(Data), Size);
  sexpr::ParseResult R = sexpr::parse(Text);
  if (!R.ok())
    return 0;
  // Round trip: the printed form must re-parse to the same number of
  // top-level forms with identical rendering.
  std::string Printed;
  for (const sexpr::SExpr &E : R.Forms)
    Printed += E.toString() + "\n";
  sexpr::ParseResult R2 = sexpr::parse(Printed);
  if (!R2.ok() || R2.Forms.size() != R.Forms.size())
    std::abort();
  for (size_t I = 0; I < R.Forms.size(); ++I)
    if (R.Forms[I].toString() != R2.Forms[I].toString())
      std::abort();
  return 0;
}
