//===- tests/harness/FuzzLang.cpp - source-language parser fuzz target ----===//
//
// libFuzzer entry point for the program front end: arbitrary bytes go
// through lang::parseAnyModule (which dispatches between the prototype's
// parenthesized syntax and the surface syntax). Any input must produce
// either a module or an error string — never a crash.
//
//===----------------------------------------------------------------------===//

#include "lang/Surface.h"

#include <cstdint>
#include <string>

using namespace denali;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Text(reinterpret_cast<const char *>(Data), Size);
  std::string Err;
  lang::parseAnyModule(Text, &Err);
  return 0;
}
