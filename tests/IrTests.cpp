//===- tests/IrTests.cpp - term/value/evaluator unit tests ----------------===//

#include "ir/Eval.h"
#include "ir/Term.h"
#include "ir/Value.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::ir;

namespace {

class IrTest : public ::testing::Test {
protected:
  Context Ctx;

  TermId c(uint64_t V) { return Ctx.Terms.makeConst(V); }
  TermId v(const std::string &Name) { return Ctx.Terms.makeVar(Name); }
  TermId app(Builtin B, std::vector<TermId> Args) {
    return Ctx.Terms.makeBuiltin(B, Args);
  }
  uint64_t evalInt(TermId T, const Env &E = {}) {
    std::string Err;
    auto V = evalTerm(Ctx.Terms, T, E, nullptr, &Err);
    EXPECT_TRUE(V.has_value()) << Err;
    return V ? V->asInt() : 0;
  }
};

TEST_F(IrTest, HashConsing) {
  TermId A = app(Builtin::Add64, {v("x"), c(1)});
  TermId B = app(Builtin::Add64, {v("x"), c(1)});
  EXPECT_EQ(A, B);
  TermId C = app(Builtin::Add64, {v("x"), c(2)});
  EXPECT_NE(A, C);
}

TEST_F(IrTest, OpAliases) {
  auto Plus = Ctx.Ops.lookup("+");
  ASSERT_TRUE(Plus.has_value());
  EXPECT_EQ(*Plus, Ctx.Ops.builtin(Builtin::Add64));
  EXPECT_EQ(*Ctx.Ops.lookup("bis"), Ctx.Ops.builtin(Builtin::Or64));
  EXPECT_EQ(*Ctx.Ops.lookup("sll"), Ctx.Ops.builtin(Builtin::Shl64));
}

TEST_F(IrTest, DeclaredOps) {
  OpId Add = Ctx.Ops.declareOp("add", 2);
  EXPECT_EQ(Ctx.Ops.info(Add).Kind, OpKind::Declared);
  // Redeclaration with the same arity is idempotent.
  EXPECT_EQ(Ctx.Ops.declareOp("add", 2), Add);
}

TEST_F(IrTest, Substitute) {
  OpId X = Ctx.Ops.makeVariable("x");
  TermId Body = app(Builtin::Add64, {v("x"), app(Builtin::Mul64, {v("x"), c(4)})});
  std::unordered_map<OpId, TermId> Subst{{X, c(10)}};
  TermId Result = Ctx.Terms.substitute(Body, Subst);
  EXPECT_EQ(evalInt(Result), 50u);
}

TEST_F(IrTest, SubstituteSharesStructure) {
  OpId X = Ctx.Ops.makeVariable("x");
  TermId T = app(Builtin::Add64, {v("x"), v("y")});
  std::unordered_map<OpId, TermId> Identity{{X, v("x")}};
  EXPECT_EQ(Ctx.Terms.substitute(T, Identity), T);
}

TEST_F(IrTest, ToString) {
  TermId T = app(Builtin::Add64, {app(Builtin::Mul64, {v("reg6"), c(4)}), c(1)});
  EXPECT_EQ(Ctx.Terms.toString(T), "(add64 (mul64 reg6 4) 1)");
}

//===----------------------------------------------------------------------===
// Builtin semantics.
//===----------------------------------------------------------------------===

TEST_F(IrTest, Arithmetic) {
  EXPECT_EQ(evalInt(app(Builtin::Add64, {c(3), c(4)})), 7u);
  EXPECT_EQ(evalInt(app(Builtin::Sub64, {c(3), c(4)})), ~0ULL);
  EXPECT_EQ(evalInt(app(Builtin::Mul64, {c(1ULL << 63), c(2)})), 0u);
  EXPECT_EQ(evalInt(app(Builtin::Neg64, {c(1)})), ~0ULL);
}

TEST_F(IrTest, Umulh) {
  EXPECT_EQ(evalInt(app(Builtin::Umulh, {c(1ULL << 63), c(4)})), 2u);
}

TEST_F(IrTest, Logic) {
  EXPECT_EQ(evalInt(app(Builtin::And64, {c(0xf0f0), c(0xff00)})), 0xf000u);
  EXPECT_EQ(evalInt(app(Builtin::Or64, {c(0xf0), c(0x0f)})), 0xffu);
  EXPECT_EQ(evalInt(app(Builtin::Xor64, {c(0xff), c(0x0f)})), 0xf0u);
  EXPECT_EQ(evalInt(app(Builtin::Bic64, {c(0xff), c(0x0f)})), 0xf0u);
  EXPECT_EQ(evalInt(app(Builtin::Ornot64, {c(0), c(~0ULL)})), 0u);
  EXPECT_EQ(evalInt(app(Builtin::Eqv64, {c(5), c(5)})), ~0ULL);
}

TEST_F(IrTest, ShiftsMask63) {
  EXPECT_EQ(evalInt(app(Builtin::Shl64, {c(1), c(64)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::Shl64, {c(1), c(65)})), 2u);
  EXPECT_EQ(evalInt(app(Builtin::Shr64, {c(0x100), c(4)})), 0x10u);
  EXPECT_EQ(evalInt(app(Builtin::Sar64, {c(~0ULL), c(8)})), ~0ULL);
}

TEST_F(IrTest, Pow) {
  EXPECT_EQ(evalInt(app(Builtin::Pow, {c(2), c(10)})), 1024u);
  EXPECT_EQ(evalInt(app(Builtin::Pow, {c(3), c(0)})), 1u);
  // The exponent acts modulo 64, mirroring the shifter's count semantics
  // (keeps k * 2**n = k << n universally valid).
  EXPECT_EQ(evalInt(app(Builtin::Pow, {c(2), c(64)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::Pow, {c(2), c(65)})), 2u);
}

TEST_F(IrTest, Comparisons) {
  EXPECT_EQ(evalInt(app(Builtin::CmpUlt, {c(1), c(2)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::CmpUlt, {c(~0ULL), c(0)})), 0u);
  EXPECT_EQ(evalInt(app(Builtin::CmpLt, {c(~0ULL), c(0)})), 1u); // signed
  EXPECT_EQ(evalInt(app(Builtin::CmpLe, {c(5), c(5)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::CmpEq, {c(5), c(6)})), 0u);
  EXPECT_EQ(evalInt(app(Builtin::CmpUle, {c(5), c(4)})), 0u);
}

TEST_F(IrTest, ByteFields) {
  // w = 0x...wxyz layout: byte 0 is least significant.
  uint64_t W = 0x8877665544332211ULL;
  EXPECT_EQ(evalInt(app(Builtin::SelectB, {c(W), c(0)})), 0x11u);
  EXPECT_EQ(evalInt(app(Builtin::SelectB, {c(W), c(7)})), 0x88u);
  EXPECT_EQ(evalInt(app(Builtin::SelectB, {c(W), c(9)})), 0x22u); // i & 7
  EXPECT_EQ(evalInt(app(Builtin::StoreB, {c(W), c(0), c(0xaa)})),
            0x88776655443322aaULL);
  EXPECT_EQ(evalInt(app(Builtin::SelectW, {c(W), c(2)})), 0x4433u);
  EXPECT_EQ(evalInt(app(Builtin::StoreW, {c(0), c(2), c(0xbeef)})),
            0xbeef0000ULL);
}

TEST_F(IrTest, AlphaByteOps) {
  uint64_t W = 0x8877665544332211ULL;
  EXPECT_EQ(evalInt(app(Builtin::Extbl, {c(W), c(3)})), 0x44u);
  EXPECT_EQ(evalInt(app(Builtin::Extwl, {c(W), c(1)})), 0x3322u);
  EXPECT_EQ(evalInt(app(Builtin::Insbl, {c(0xabcd), c(2)})), 0xcd0000u);
  EXPECT_EQ(evalInt(app(Builtin::Mskbl, {c(W), c(1)})),
            0x8877665544330011ULL);
  EXPECT_EQ(evalInt(app(Builtin::Zapnot, {c(W), c(0x3)})), 0x2211u);
  EXPECT_EQ(evalInt(app(Builtin::Zapnot, {c(W), c(0xff)})), W);
}

TEST_F(IrTest, Extensions) {
  EXPECT_EQ(evalInt(app(Builtin::Zext16, {c(0x12345)})), 0x2345u);
  EXPECT_EQ(evalInt(app(Builtin::Sext8, {c(0x80)})), 0xffffffffffffff80ULL);
  EXPECT_EQ(evalInt(app(Builtin::Sext16, {c(0x8000)})),
            0xffffffffffff8000ULL);
  EXPECT_EQ(evalInt(app(Builtin::Sext32, {c(0x80000000ULL)})),
            0xffffffff80000000ULL);
  EXPECT_EQ(evalInt(app(Builtin::Zext32, {c(~0ULL)})), 0xffffffffULL);
}

TEST_F(IrTest, ScaledAdds) {
  EXPECT_EQ(evalInt(app(Builtin::S4Addl, {c(10), c(1)})), 41u);
  EXPECT_EQ(evalInt(app(Builtin::S8Addl, {c(10), c(1)})), 81u);
  EXPECT_EQ(evalInt(app(Builtin::S4Subl, {c(10), c(1)})), 39u);
}

TEST_F(IrTest, Cmov) {
  EXPECT_EQ(evalInt(app(Builtin::CmovEq, {c(0), c(1), c(2)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::CmovEq, {c(9), c(1), c(2)})), 2u);
  EXPECT_EQ(evalInt(app(Builtin::CmovNe, {c(9), c(1), c(2)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::CmovLt, {c(~0ULL), c(1), c(2)})), 1u);
  EXPECT_EQ(evalInt(app(Builtin::CmovGe, {c(0), c(1), c(2)})), 1u);
}

//===----------------------------------------------------------------------===
// Arrays as values.
//===----------------------------------------------------------------------===

TEST(ValueTest, ArrayStoreSelect) {
  Value M = Value::makeArray(7);
  Value M2 = M.store(100, 42);
  EXPECT_EQ(M2.select(100), 42u);
  EXPECT_EQ(M2.select(108), M.select(108)); // Other cells unchanged.
  EXPECT_FALSE(M.equals(M2));
}

TEST(ValueTest, StoreSameValueIsIdentity) {
  Value M = Value::makeArray(7);
  uint64_t Orig = M.select(64);
  Value M2 = M.store(64, Orig);
  EXPECT_TRUE(M.equals(M2)); // Extensional equality.
}

TEST(ValueTest, StoreOverwrite) {
  Value M = Value::makeArray(1).store(8, 1).store(8, 2);
  EXPECT_EQ(M.select(8), 2u);
}

TEST(ValueTest, KindMismatch) {
  Value I = Value::makeInt(5);
  Value M = Value::makeArray(5);
  EXPECT_FALSE(I.equals(M));
}

TEST(ValueTest, SeedsDiffer) {
  Value A = Value::makeArray(1);
  Value B = Value::makeArray(2);
  EXPECT_FALSE(A.equals(B));
}

TEST_F(IrTest, EvalSelectStore) {
  TermId M = v("M");
  TermId P = v("p");
  TermId StoreT = app(Builtin::Store, {M, P, c(99)});
  TermId LoadSame = app(Builtin::Select, {StoreT, P});
  TermId LoadOther =
      app(Builtin::Select, {StoreT, app(Builtin::Add64, {P, c(8)})});
  Env E;
  E[Ctx.Ops.makeVariable("M")] = Value::makeArray(3);
  E[Ctx.Ops.makeVariable("p")] = Value::makeInt(200);
  auto V1 = evalTerm(Ctx.Terms, LoadSame, E);
  ASSERT_TRUE(V1.has_value());
  EXPECT_EQ(V1->asInt(), 99u);
  auto V2 = evalTerm(Ctx.Terms, LoadOther, E);
  ASSERT_TRUE(V2.has_value());
  EXPECT_EQ(V2->asInt(), Value::makeArray(3).select(208));
}

//===----------------------------------------------------------------------===
// Evaluator error paths and definitional expansion.
//===----------------------------------------------------------------------===

TEST_F(IrTest, UnboundVariable) {
  std::string Err;
  auto V = evalTerm(Ctx.Terms, v("nowhere"), {}, nullptr, &Err);
  EXPECT_FALSE(V.has_value());
  EXPECT_NE(Err.find("unbound"), std::string::npos);
}

TEST_F(IrTest, IllTypedApplication) {
  Env E;
  E[Ctx.Ops.makeVariable("M")] = Value::makeArray(3);
  TermId Bad = app(Builtin::Add64, {v("M"), c(1)});
  std::string Err;
  auto V = evalTerm(Ctx.Terms, Bad, E, nullptr, &Err);
  EXPECT_FALSE(V.has_value());
}

TEST_F(IrTest, DefinedOpExpansion) {
  // carry(a, b) = cmpult(add64(a, b), a)
  OpId Carry = Ctx.Ops.declareOp("carry", 2);
  OpId VA = Ctx.Ops.makeVariable("%a");
  OpId VB = Ctx.Ops.makeVariable("%b");
  Definitions Defs;
  Defs[Carry] = OpDefinition{
      {VA, VB},
      app(Builtin::CmpUlt,
          {app(Builtin::Add64, {v("%a"), v("%b")}), v("%a")})};
  TermId T = Ctx.Terms.make(Carry, {c(~0ULL), c(1)});
  std::string Err;
  auto V = evalTerm(Ctx.Terms, T, {}, &Defs, &Err);
  ASSERT_TRUE(V.has_value()) << Err;
  EXPECT_EQ(V->asInt(), 1u); // Overflow -> carry set.
}

TEST_F(IrTest, UndefinedDeclaredOpFails) {
  OpId Mystery = Ctx.Ops.declareOp("mystery", 1);
  TermId T = Ctx.Terms.make(Mystery, {c(1)});
  std::string Err;
  auto V = evalTerm(Ctx.Terms, T, {}, nullptr, &Err);
  EXPECT_FALSE(V.has_value());
  EXPECT_NE(Err.find("mystery"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Property sweep: algebraic identities the axioms assert must hold of the
// evaluator (the axioms are sound for these semantics).
//===----------------------------------------------------------------------===

class AlgebraicIdentity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraicIdentity, Holds) {
  uint64_t X = GetParam();
  uint64_t Y = X * 0x9e3779b97f4a7c15ULL + 12345;
  std::vector<uint64_t> A{X, Y};
  // add/mul commutativity.
  EXPECT_EQ(X + Y, Y + X);
  EXPECT_EQ(evalBuiltinInt(Builtin::Add64, {X, Y}),
            evalBuiltinInt(Builtin::Add64, {Y, X}));
  // x * 4 = x << 2 (the Figure 2 chain).
  EXPECT_EQ(evalBuiltinInt(Builtin::Mul64, {X, 4}),
            evalBuiltinInt(Builtin::Shl64, {X, 2}));
  // s4addl(x, y) = x * 4 + y.
  EXPECT_EQ(evalBuiltinInt(Builtin::S4Addl, {X, Y}), X * 4 + Y);
  // extbl = selectb.
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(evalBuiltinInt(Builtin::Extbl, {X, I}),
              evalBuiltinInt(Builtin::SelectB, {X, I}));
  // mskbl(w, i) = storeb(w, i, 0).
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(evalBuiltinInt(Builtin::Mskbl, {X, I}),
              evalBuiltinInt(Builtin::StoreB, {X, I, 0}));
  // insbl(w, i) = selectb(w, 0) << 8i.
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(evalBuiltinInt(Builtin::Insbl, {X, I}),
              (X & 0xff) << (8 * I));
  // storeb(w,i,x) = bis(mskbl(w,i), insbl(x,i)).
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(evalBuiltinInt(Builtin::StoreB, {X, I, Y}),
              evalBuiltinInt(Builtin::Mskbl, {X, I}) |
                  evalBuiltinInt(Builtin::Insbl, {Y, I}));
  // zapnot identities used for casts.
  EXPECT_EQ(evalBuiltinInt(Builtin::Zapnot, {X, 0x3}), X & 0xffff);
  EXPECT_EQ(evalBuiltinInt(Builtin::Zapnot, {X, 0xf}), X & 0xffffffffULL);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgebraicIdentity,
                         ::testing::Values(0ULL, 1ULL, 0xffULL, 0xff00ULL,
                                           0x8877665544332211ULL, ~0ULL,
                                           0x8000000000000000ULL,
                                           0x0123456789abcdefULL));

} // namespace
