//===- tests/SaturationTests.cpp - rebuild modes, scheduling, parallelism -===//
//
// Contract tests for the saturation scaling machinery (deferred rebuilding,
// rule scheduling, parallel matching):
//
//  * eager and deferred rebuilding close every graph identically — same
//    class partition over the seed roots, same node/class counts, same
//    egg-style extraction cost (the graphs differ only in class numbering,
//    so extracted *terms* may pick different equal-cost representatives);
//  * the parallel match loop is bit-identical to the sequential one for
//    any thread count, statistics and extracted terms included
//    (saturation_tests_tsan rebuilds this binary under ThreadSanitizer and
//    reruns exactly these tests to gate the loop's data-race freedom);
//  * match budgets overflow, sit a round out, double, and still reach the
//    unbudgeted closure; phased rule sets advance and reach the unphased
//    closure; the persistent seen-set dedups re-found substitutions and
//    evicts under its cap without changing the closure;
//  * rebuild's congruence cascade is worklist-driven, so pathologically
//    deep parent chains cannot overflow the stack in either mode.
//
// Equivalence runs are rounds-bounded with non-binding node/instance caps:
// a binding cap stops the modes at different frontiers (the deferred arm's
// end-of-round rebuild shrinks the live count back under the cap where the
// eager arm breaks mid-batch), which compares different total work — see
// bench_egraph_scale.cpp for the same regime at stress scale.
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "sexpr/Parser.h"
#include "verify/EGraphInvariants.h"
#include "verify/GmaGen.h"

// The TSan copy of this binary (saturation_tests_tsan) compiles only the
// match/egraph closure, not the baseline extractor and its ISA dependency;
// it defines DENALI_SATURATION_NO_EXTRACT to drop the extraction cross-
// checks (the race-freedom property under test does not involve them).
#ifndef DENALI_SATURATION_NO_EXTRACT
#include "alpha/ISA.h"
#include "baseline/EGraphExtract.h"
#endif

#include <gtest/gtest.h>

using namespace denali;
using denali::egraph::ClassId;
using denali::ir::Builtin;

namespace {

/// The Figure 3/4 byteswap store chain — the densest clause generator
/// among the builtin axioms (select-over-store case splits).
ir::TermId swapChain(ir::Context &Ctx, unsigned N) {
  ir::TermId A = Ctx.Terms.makeVar("a");
  ir::TermId R = Ctx.Terms.makeConst(0);
  for (unsigned I = 0; I < N; ++I)
    R = Ctx.Terms.makeBuiltin(
        Builtin::StoreB,
        {R, Ctx.Terms.makeConst(I),
         Ctx.Terms.makeBuiltin(Builtin::SelectB,
                               {A, Ctx.Terms.makeConst(N - 1 - I)})});
  return R;
}

/// A small GmaGen corpus plus a byteswap chain, loaded into one graph —
/// the bench_egraph_scale stress mix at unit-test scale.
std::vector<ir::TermId> stressSeeds(ir::Context &Ctx, unsigned Seed) {
  verify::GmaGenOptions GO;
  GO.MaxTargets = 2;
  GO.MaxDepth = 3;
  verify::GmaGen Gen(Ctx, Seed, GO);
  std::vector<ir::TermId> Seeds;
  for (unsigned I = 0; I < 2; ++I) {
    gma::GMA G = Gen.next();
    for (ir::TermId V : G.NewVals)
      Seeds.push_back(V);
    if (G.Guard)
      Seeds.push_back(*G.Guard);
  }
  Seeds.push_back(swapChain(Ctx, 3));
  return Seeds;
}

/// The paper's Figure 2 goal, reg6*4 + 1: small, and its builtin closure
/// quiesces under the default limits (SaturationTest.Figure2Alternatives),
/// which the budget/phase convergence tests need.
std::vector<ir::TermId> figure2Seeds(ir::Context &Ctx) {
  ir::TermId Mul = Ctx.Terms.makeBuiltin(
      Builtin::Mul64, {Ctx.Terms.makeVar("reg6"), Ctx.Terms.makeConst(4)});
  return {Ctx.Terms.makeBuiltin(Builtin::Add64,
                                {Mul, Ctx.Terms.makeConst(1)})};
}

/// Rounds-bounded limits with non-binding size caps (see file header).
match::MatchLimits roundsBounded(unsigned Rounds) {
  match::MatchLimits L;
  L.MaxRounds = Rounds;
  L.MaxNodes = 1u << 20;
  L.MaxInstancesPerRound = 1u << 20;
  return L;
}

/// One saturation arm: stats, the partition of the seed roots (index of
/// the first equal earlier root), invariants, and the extraction result
/// per root.
struct SatRun {
  match::MatchStats Stats;
  std::vector<unsigned> Partition;
  bool Inconsistent = false;
  bool InvariantsOk = false;
  std::string InvariantsMsg;
#ifndef DENALI_SATURATION_NO_EXTRACT
  std::vector<long long> ExtractCosts; ///< -1 = no machine-op term.
  std::vector<ir::TermId> ExtractTerms;
#endif
};

SatRun runSat(ir::Context &Ctx, const std::vector<ir::TermId> &Seeds,
              const match::MatchLimits &Limits) {
  egraph::EGraph G(Ctx);
  std::vector<ClassId> Roots;
  Roots.reserve(Seeds.size());
  for (ir::TermId T : Seeds)
    Roots.push_back(G.addTerm(T));
  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));

  SatRun R;
  R.Stats = M.saturate(G, Limits);
  R.Inconsistent = G.isInconsistent();
  R.Partition.assign(Roots.size(), 0);
  for (size_t I = 0; I < Roots.size(); ++I) {
    R.Partition[I] = static_cast<unsigned>(I);
    for (size_t J = 0; J < I; ++J)
      if (G.sameClass(Roots[I], Roots[J])) {
        R.Partition[I] = static_cast<unsigned>(J);
        break;
      }
  }
  verify::InvariantReport Rep = verify::checkEGraphInvariants(G);
  R.InvariantsOk = Rep.Ok;
  R.InvariantsMsg = Rep.toString();
#ifndef DENALI_SATURATION_NO_EXTRACT
  alpha::ISA Isa(Ctx);
  for (ClassId Root : Roots) {
    std::optional<baseline::ExtractResult> Ex =
        baseline::extractBestTerm(G, Isa, Root);
    R.ExtractCosts.push_back(Ex ? static_cast<long long>(Ex->Cost) : -1);
    R.ExtractTerms.push_back(Ex ? Ex->Term : 0);
  }
#endif
  return R;
}

/// Every field of MatchStats — the parallel arm's bit-identical contract.
void expectStatsIdentical(const match::MatchStats &A,
                          const match::MatchStats &B) {
  EXPECT_EQ(A.Rounds, B.Rounds);
  EXPECT_EQ(A.MatchesFound, B.MatchesFound);
  EXPECT_EQ(A.InstancesDeduped, B.InstancesDeduped);
  EXPECT_EQ(A.InstancesAsserted, B.InstancesAsserted);
  EXPECT_EQ(A.FinalNodes, B.FinalNodes);
  EXPECT_EQ(A.FinalClasses, B.FinalClasses);
  EXPECT_EQ(A.Quiesced, B.Quiesced);
  EXPECT_EQ(A.BudgetOverflows, B.BudgetOverflows);
  EXPECT_EQ(A.BudgetSkips, B.BudgetSkips);
  EXPECT_EQ(A.SeenHits, B.SeenHits);
  EXPECT_EQ(A.SeenEvictions, B.SeenEvictions);
  EXPECT_EQ(A.PhaseAdvances, B.PhaseAdvances);
  EXPECT_EQ(A.Merges, B.Merges);
  EXPECT_EQ(A.CongruenceMerges, B.CongruenceMerges);
  EXPECT_EQ(A.ConstantFolds, B.ConstantFolds);
  EXPECT_EQ(A.Rebuilds, B.Rebuilds);
  EXPECT_EQ(A.AdaptiveSeeded, B.AdaptiveSeeded);
  EXPECT_EQ(A.AdaptiveDemoted, B.AdaptiveDemoted);
  // Per-axiom attribution: every field except the wall-time *Ns pair is
  // deterministic and thread-count-independent.
  ASSERT_EQ(A.PerAxiom.size(), B.PerAxiom.size());
  for (size_t I = 0; I < A.PerAxiom.size(); ++I) {
    SCOPED_TRACE(I);
    EXPECT_EQ(A.PerAxiom[I].Raw, B.PerAxiom[I].Raw);
    EXPECT_EQ(A.PerAxiom[I].Instances, B.PerAxiom[I].Instances);
    EXPECT_EQ(A.PerAxiom[I].Merges, B.PerAxiom[I].Merges);
    EXPECT_EQ(A.PerAxiom[I].Overflows, B.PerAxiom[I].Overflows);
    EXPECT_EQ(A.PerAxiom[I].Skips, B.PerAxiom[I].Skips);
    EXPECT_EQ(A.PerAxiom[I].FirstRound, B.PerAxiom[I].FirstRound);
    EXPECT_EQ(A.PerAxiom[I].LastRound, B.PerAxiom[I].LastRound);
  }
}

//===----------------------------------------------------------------------===
// Eager vs deferred rebuilding: same closure.
//===----------------------------------------------------------------------===

class EagerDeferredEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(EagerDeferredEquivalence, SameClosure) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = stressSeeds(Ctx, GetParam());

  match::MatchLimits Deferred = roundsBounded(3);
  match::MatchLimits Eager = Deferred;
  Eager.EagerRebuild = true;

  SatRun D = runSat(Ctx, Seeds, Deferred);
  SatRun E = runSat(Ctx, Seeds, Eager);
  ASSERT_FALSE(D.Inconsistent);
  ASSERT_FALSE(E.Inconsistent);
  EXPECT_TRUE(D.InvariantsOk) << D.InvariantsMsg;
  EXPECT_TRUE(E.InvariantsOk) << E.InvariantsMsg;

  EXPECT_EQ(E.Partition, D.Partition);
  EXPECT_EQ(E.Stats.FinalNodes, D.Stats.FinalNodes);
  EXPECT_EQ(E.Stats.FinalClasses, D.Stats.FinalClasses);
  EXPECT_EQ(E.Stats.MatchesFound, D.Stats.MatchesFound);
#ifndef DENALI_SATURATION_NO_EXTRACT
  // The closures are equal mod class renaming, so extraction must find
  // the same best cost per root (ties may break to different terms).
  EXPECT_EQ(E.ExtractCosts, D.ExtractCosts);
#endif
  // Deferred batches the per-assert repair cascades into one rebuild per
  // round, so it must run strictly fewer rebuild passes.
  EXPECT_LT(D.Stats.Rebuilds, E.Stats.Rebuilds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EagerDeferredEquivalence,
                         ::testing::Range(0u, 6u));

//===----------------------------------------------------------------------===
// Parallel matching: bit-identical to sequential for any thread count.
//===----------------------------------------------------------------------===

class ParallelDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelDeterminism, BitIdenticalToSequential) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = stressSeeds(Ctx, GetParam() + 50);

  match::MatchLimits Seq = roundsBounded(3);
  SatRun S = runSat(Ctx, Seeds, Seq);
  ASSERT_FALSE(S.Inconsistent);
  EXPECT_TRUE(S.InvariantsOk) << S.InvariantsMsg;

  for (unsigned Threads : {2u, 4u}) {
    match::MatchLimits Par = Seq;
    Par.Threads = Threads;
    SatRun P = runSat(Ctx, Seeds, Par);
    SCOPED_TRACE(Threads);
    ASSERT_FALSE(P.Inconsistent);
    EXPECT_TRUE(P.InvariantsOk) << P.InvariantsMsg;
    expectStatsIdentical(S.Stats, P.Stats);
    EXPECT_EQ(S.Partition, P.Partition);
#ifndef DENALI_SATURATION_NO_EXTRACT
    // Bit-identical graphs: even extraction tie-breaks must agree.
    EXPECT_EQ(S.ExtractTerms, P.ExtractTerms);
    EXPECT_EQ(S.ExtractCosts, P.ExtractCosts);
#endif
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, ::testing::Range(0u, 4u));

//===----------------------------------------------------------------------===
// Rule scheduling: budgets, phases, the persistent seen-set.
//===----------------------------------------------------------------------===

TEST(SaturationSchedule, BudgetBackoffReachesUnbudgetedClosure) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = figure2Seeds(Ctx);

  SatRun Plain = runSat(Ctx, Seeds, match::MatchLimits());
  ASSERT_TRUE(Plain.Stats.Quiesced);
  EXPECT_EQ(Plain.Stats.BudgetOverflows, 0u);
  EXPECT_EQ(Plain.Stats.BudgetSkips, 0u);

  // A budget of 2 raw matches per axiom-round truncates immediately;
  // backoff doubles it until every axiom fits, after which the run must
  // still quiesce — to the same closure, just over more rounds.
  match::MatchLimits Budgeted;
  Budgeted.MatchBudget = 2;
  Budgeted.MaxRounds = 200;
  SatRun B = runSat(Ctx, Seeds, Budgeted);
  EXPECT_TRUE(B.Stats.Quiesced);
  EXPECT_GT(B.Stats.BudgetOverflows, 0u);
  EXPECT_GT(B.Stats.BudgetSkips, 0u);
  EXPECT_GT(B.Stats.Rounds, Plain.Stats.Rounds);
  EXPECT_EQ(B.Stats.FinalNodes, Plain.Stats.FinalNodes);
  EXPECT_EQ(B.Stats.FinalClasses, Plain.Stats.FinalClasses);
  EXPECT_TRUE(B.InvariantsOk) << B.InvariantsMsg;
#ifndef DENALI_SATURATION_NO_EXTRACT
  EXPECT_EQ(B.ExtractCosts, Plain.ExtractCosts);
#endif
}

TEST(SaturationSchedule, PhasedReachesUnphasedClosure) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = figure2Seeds(Ctx);

  SatRun Plain = runSat(Ctx, Seeds, match::MatchLimits());
  ASSERT_TRUE(Plain.Stats.Quiesced);
  EXPECT_EQ(Plain.Stats.PhaseAdvances, 0u);

  // Phase 0 (cheap simplifications) must quiesce, the phase widen at
  // least once (the k*x decompositions are phase 1), and the final
  // closure match the unphased run.
  match::MatchLimits Phased;
  Phased.Phased = true;
  Phased.MaxRounds = 64;
  SatRun P = runSat(Ctx, Seeds, Phased);
  EXPECT_TRUE(P.Stats.Quiesced);
  EXPECT_GE(P.Stats.PhaseAdvances, 1u);
  EXPECT_EQ(P.Stats.FinalNodes, Plain.Stats.FinalNodes);
  EXPECT_EQ(P.Stats.FinalClasses, Plain.Stats.FinalClasses);
  EXPECT_TRUE(P.InvariantsOk) << P.InvariantsMsg;
#ifndef DENALI_SATURATION_NO_EXTRACT
  EXPECT_EQ(P.ExtractCosts, Plain.ExtractCosts);
#endif
}

TEST(SaturationSchedule, AxiomPhaseSplitsBuiltinRuleSet) {
  ir::Context Ctx;
  unsigned Cheap = 0, Expansive = 0;
  for (const match::Axiom &A : axioms::loadBuiltinAxioms(Ctx))
    (match::Matcher::axiomPhase(A) == 0 ? Cheap : Expansive) += 1;
  // Phasing is pointless unless the builtin set actually splits.
  EXPECT_GT(Cheap, 0u);
  EXPECT_GT(Expansive, 0u);

  auto phaseOf = [&](const std::string &Text) {
    sexpr::ParseResult R = sexpr::parseOne(Text);
    EXPECT_TRUE(R.ok());
    std::string Err;
    std::optional<match::Axiom> A = match::parseAxiom(Ctx, R.Forms[0], &Err);
    EXPECT_TRUE(A.has_value()) << Err;
    return match::Matcher::axiomPhase(*A);
  };
  // Same-size rewrites are cheap; a side >= 2 applications larger is
  // expansive (the k*x -> shifts/adds shape).
  EXPECT_EQ(phaseOf(R"((\axiom (forall (x y)
                         (eq (\add64 x y) (\add64 y x)))))"),
            0u);
  EXPECT_EQ(phaseOf(R"((\axiom (forall (x)
                         (eq x (\add64 (\shl64 x 1) (\neg64 x))))))"),
            1u);
}

TEST(SaturationSchedule, PersistentSeenDedupsRefoundSubstitutions) {
  // Commutative axioms re-find each substitution through both triggers,
  // so the persistent seen-set must take hits within a round; every hit
  // is also counted in the deduped total.
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = stressSeeds(Ctx, 7);
  SatRun R = runSat(Ctx, Seeds, roundsBounded(3));
  EXPECT_GT(R.Stats.SeenHits, 0u);
  EXPECT_GE(R.Stats.InstancesDeduped, R.Stats.SeenHits);
  EXPECT_EQ(R.Stats.SeenEvictions, 0u); // Default cap is ample here.
}

TEST(SaturationSchedule, SeenCapFlushCountsEvictionsKeepsClosure) {
  ir::Context Ctx;
  std::vector<ir::TermId> Seeds = stressSeeds(Ctx, 7);

  SatRun Ample = runSat(Ctx, Seeds, roundsBounded(3));
  match::MatchLimits Tiny = roundsBounded(3);
  Tiny.SeenCap = 1; // Flush after every round that queued instances.
  SatRun T = runSat(Ctx, Seeds, Tiny);

  EXPECT_GT(T.Stats.SeenEvictions, 0u);
  // Dropping seen-set entries only costs redundant re-asserts (the Done
  // set still filters instantiation); the closure cannot change.
  EXPECT_EQ(T.Partition, Ample.Partition);
  EXPECT_EQ(T.Stats.FinalNodes, Ample.Stats.FinalNodes);
  EXPECT_EQ(T.Stats.FinalClasses, Ample.Stats.FinalClasses);
  EXPECT_EQ(T.Stats.MatchesFound, Ample.Stats.MatchesFound);
}

//===----------------------------------------------------------------------===
// Worklist-driven rebuild: deep congruence cascades cannot recurse.
//===----------------------------------------------------------------------===

TEST(SaturationStress, DeepCongruenceChainEager) {
  // f^N(x) / f^N(y) with x = y forces an N-step upward congruence
  // cascade; repair is worklist-driven, so this must not grow the call
  // stack with N (a recursive repair would overflow around ~1e4).
  constexpr unsigned Depth = 50000;
  ir::Context Ctx;
  egraph::EGraph G(Ctx);
  ir::OpId F = Ctx.Ops.declareOp("f", 1);
  ClassId X = G.addNode(Ctx.Ops.makeVariable("x"), {});
  ClassId Y = G.addNode(Ctx.Ops.makeVariable("y"), {});
  ClassId CX = X, CY = Y;
  for (unsigned I = 0; I < Depth; ++I) {
    CX = G.addNode(F, {CX});
    CY = G.addNode(F, {CY});
  }
  G.assertEqual(X, Y); // Eager: the full cascade runs here.
  EXPECT_TRUE(G.sameClass(CX, CY));
  EXPECT_GE(G.rebuildStats().CongruenceMerges, static_cast<uint64_t>(Depth));
  verify::InvariantReport Rep = verify::checkEGraphInvariants(G);
  EXPECT_TRUE(Rep.Ok) << Rep.toString();
}

TEST(SaturationStress, DeepCongruenceChainDeferred) {
  constexpr unsigned Depth = 50000;
  ir::Context Ctx;
  egraph::EGraph G(Ctx);
  G.setRebuildMode(egraph::RebuildMode::Deferred);
  ir::OpId F = Ctx.Ops.declareOp("f", 1);
  ClassId X = G.addNode(Ctx.Ops.makeVariable("x"), {});
  ClassId Y = G.addNode(Ctx.Ops.makeVariable("y"), {});
  ClassId CX = X, CY = Y;
  for (unsigned I = 0; I < Depth; ++I) {
    CX = G.addNode(F, {CX});
    CY = G.addNode(F, {CY});
  }
  G.assertEqual(X, Y);
  EXPECT_FALSE(G.sameClass(CX, CY)); // Congruence lags until rebuild().
  EXPECT_TRUE(G.rebuildPending());
  G.rebuild();
  EXPECT_FALSE(G.rebuildPending());
  EXPECT_TRUE(G.sameClass(CX, CY));
  verify::InvariantReport Rep = verify::checkEGraphInvariants(G);
  EXPECT_TRUE(Rep.Ok) << Rep.toString();
}

} // namespace
