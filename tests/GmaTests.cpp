//===- tests/GmaTests.cpp - GMA translation tests -------------------------===//

#include "gma/GMA.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace denali;
using namespace denali::gma;

namespace {

class GmaTest : public ::testing::Test {
protected:
  ir::Context Ctx;

  std::vector<GMA> translate(const std::string &Source) {
    std::string Err;
    std::optional<lang::Module> M = lang::parseModule(Source, &Err);
    EXPECT_TRUE(M.has_value()) << Err;
    if (!M)
      return {};
    for (const lang::OpDecl &D : M->OpDecls)
      Ctx.Ops.declareOp(D.Name, static_cast<int>(D.Arity));
    EXPECT_EQ(M->Procs.size(), 1u);
    std::optional<std::vector<GMA>> Gmas =
        translateProc(Ctx, M->Procs[0], &Err);
    EXPECT_TRUE(Gmas.has_value()) << Err;
    return Gmas ? std::move(*Gmas) : std::vector<GMA>();
  }

  std::string translateError(const std::string &Source) {
    std::string Err;
    std::optional<lang::Module> M = lang::parseModule(Source, &Err);
    EXPECT_TRUE(M.has_value()) << Err;
    if (!M)
      return Err;
    std::optional<std::vector<GMA>> Gmas =
        translateProc(Ctx, M->Procs[0], &Err);
    EXPECT_FALSE(Gmas.has_value());
    return Err;
  }

  /// The value term assigned to \p Target in \p G; 0 when absent.
  ir::TermId valueOf(const GMA &G, const std::string &Target) {
    for (size_t I = 0; I < G.Targets.size(); ++I)
      if (G.Targets[I] == Target)
        return G.NewVals[I];
    return 0;
  }
};

TEST_F(GmaTest, StraightLineComposition) {
  // Sequential assignments compose by substitution (paper, section 3).
  auto Gmas = translate(R"(
    (\procdecl f ((x long)) long
      (\var (t long (\add64 x 1))
      (\semi
        (:= (t (\mul64 t t)))
        (:= (\res t)))))
  )");
  ASSERT_EQ(Gmas.size(), 1u);
  ir::TermId Res = valueOf(Gmas[0], "\\res");
  ASSERT_NE(Res, 0u);
  EXPECT_EQ(Ctx.Terms.toString(Res),
            "(mul64 (add64 x 1) (add64 x 1))");
}

TEST_F(GmaTest, SimultaneousMultiAssign) {
  // (a, b) := (b, a): both right sides read the pre-state.
  auto Gmas = translate(R"(
    (\procdecl swap ((a long) (b long)) long
      (\semi (:= (a b) (b a)) (:= (\res a))))
  )");
  ASSERT_EQ(Gmas.size(), 1u);
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "a")), "b");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "b")), "a");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "\\res")), "b");
}

TEST_F(GmaTest, PointerWritesBecomeStores) {
  // The paper's copy-loop example: *p := *q becomes
  // M := store(M, p, select(M, q)).
  auto Gmas = translate(R"(
    (\procdecl copy ((p (\ref long)) (q (\ref long)) (r (\ref long))) long
      (\do (-> (\cmpult p r)
        (\semi
          (:= ((\deref p) (\deref q)))
          (:= (p (+ p 8)) (q (+ q 8)))))))
  )");
  ASSERT_EQ(Gmas.size(), 1u);
  const GMA &Loop = Gmas[0];
  ASSERT_TRUE(Loop.Guard.has_value());
  EXPECT_EQ(Ctx.Terms.toString(*Loop.Guard), "(cmpult p r)");
  ir::TermId MemVal = valueOf(Loop, "M");
  ASSERT_NE(MemVal, 0u);
  EXPECT_EQ(Ctx.Terms.toString(MemVal), "(store M p (select M q))");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Loop, "p")), "(add64 p 8)");
}

TEST_F(GmaTest, LoopBodyUsesFreshState) {
  // Inside the loop, `sum` refers to the value at the loop head, not the
  // pre-loop constant.
  auto Gmas = translate(R"(
    (\procdecl f ((p (\ref long)) (r (\ref long))) long
      (\var (sum long 0)
      (\semi
        (\do (-> (\cmpult p r)
          (\semi (:= (sum (\add64 sum (\deref p))))
                 (:= (p (+ p 8))))))
        (:= (\res sum)))))
  )");
  // Segment 0: sum := 0. Segment 1: loop body. Segment 2: result.
  ASSERT_EQ(Gmas.size(), 3u);
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "sum")), "0");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[1], "sum")),
            "(add64 sum (select M p))");
  // The exit segment is guarded by the negated loop condition.
  ASSERT_TRUE(Gmas[2].Guard.has_value());
  EXPECT_EQ(Ctx.Terms.toString(*Gmas[2].Guard), "(cmpeq (cmpult p r) 0)");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[2], "\\res")), "sum");
}

TEST_F(GmaTest, UnrollComposesBody) {
  auto Gmas = translate(R"(
    (\procdecl f ((p (\ref long)) (r (\ref long))) long
      (\do (\unroll 3) (-> (\cmpult p r)
        (:= (p (+ p 8))))))
  )");
  ASSERT_EQ(Gmas.size(), 1u);
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "p")),
            "(add64 (add64 (add64 p 8) 8) 8)");
}

TEST_F(GmaTest, MissAnnotationCollected) {
  auto Gmas = translate(R"(
    (\procdecl f ((p (\ref long))) long
      (:= (\res (\deref (+ p 16) \miss))))
  )");
  ASSERT_EQ(Gmas.size(), 1u);
  ASSERT_EQ(Gmas[0].MissAddrs.size(), 1u);
  EXPECT_EQ(Ctx.Terms.toString(Gmas[0].MissAddrs[0]), "(add64 p 16)");
}

TEST_F(GmaTest, CastsLowered) {
  auto Gmas = translate(R"(
    (\procdecl f ((x long)) short
      (:= (\res (\cast short x))))
  )");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "\\res")), "(zext16 x)");
}

TEST_F(GmaTest, IteLoweredToCmov) {
  auto Gmas = translate(R"(
    (\procdecl max ((a long) (b long)) long
      (:= (\res (\ite (\cmpult a b) b a))))
  )");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "\\res")),
            "(cmovne (cmpult a b) b a)");
}

TEST_F(GmaTest, DeclaredOpsInExpressions) {
  auto Gmas = translate(R"(
    (\opdecl add (long long) long)
    (\procdecl f ((a long) (b long)) long
      (:= (\res (add a b))))
  )");
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "\\res")), "(add a b)");
}

TEST_F(GmaTest, MultipleStoresChain) {
  auto Gmas = translate(R"(
    (\procdecl f ((p (\ref long)) (x long)) long
      (\semi
        (:= ((\deref p) x))
        (:= ((\deref (+ p 8)) x))))
  )");
  ASSERT_EQ(Gmas.size(), 1u);
  EXPECT_EQ(Ctx.Terms.toString(valueOf(Gmas[0], "M")),
            "(store (store M p x) (add64 p 8) x)");
}

TEST_F(GmaTest, GmaInputs) {
  auto Gmas = translate(R"(
    (\procdecl f ((a long) (b long) (p (\ref long))) long
      (:= (\res (\add64 a (\deref p)))))
  )");
  std::vector<ir::OpId> Inputs = gmaInputs(Ctx, Gmas[0]);
  std::vector<std::string> Names;
  for (ir::OpId Op : Inputs)
    Names.push_back(Ctx.Ops.info(Op).Name);
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(Names, (std::vector<std::string>{"M", "a", "p"}));
}

TEST_F(GmaTest, EvalGMA) {
  auto Gmas = translate(R"(
    (\procdecl f ((x long)) long
      (:= (\res (\add64 (\mul64 x 4) 1))))
  )");
  ir::Env E;
  E[Ctx.Ops.makeVariable("x")] = ir::Value::makeInt(10);
  std::string Err;
  auto Vals = evalGMA(Ctx, Gmas[0], E, nullptr, &Err);
  ASSERT_TRUE(Vals.has_value()) << Err;
  ASSERT_EQ(Vals->size(), 1u);
  EXPECT_EQ((*Vals)[0].second.asInt(), 41u);
}

TEST_F(GmaTest, Errors) {
  EXPECT_NE(translateError(R"(
    (\procdecl f ((x long)) long (:= (\res nowhere)))
  )").find("unknown identifier"), std::string::npos);
  EXPECT_NE(translateError(R"(
    (\procdecl f ((x long)) long (:= (\res (frob x))))
  )").find("unknown operator"), std::string::npos);
  EXPECT_NE(translateError(R"(
    (\procdecl f ((x long)) long (:= (y x)))
  )").find("undeclared"), std::string::npos);
  EXPECT_NE(translateError(R"(
    (\procdecl f ((p (\ref long)) (r (\ref long))) long
      (\do (-> (\cmpult p r)
        (\do (-> (\cmpult p r) (:= (p (+ p 8))))))))
  )").find("nested"), std::string::npos);
  EXPECT_NE(translateError(R"(
    (\procdecl f ((x long)) long
      (\var (x long 0) (:= (\res x))))
  )").find("redeclared"), std::string::npos);
}

TEST_F(GmaTest, ToStringReadable) {
  auto Gmas = translate(R"(
    (\procdecl f ((p (\ref long)) (r (\ref long))) long
      (\do (-> (\cmpult p r) (:= (p (+ p 8))))))
  )");
  std::string S = Gmas[0].toString(Ctx);
  EXPECT_NE(S.find("(cmpult p r) ->"), std::string::npos);
  EXPECT_NE(S.find("(add64 p 8)"), std::string::npos);
}

} // namespace
