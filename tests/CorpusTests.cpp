//===- tests/CorpusTests.cpp - regression-corpus replay -------------------===//
//
// Replays everything under tests/corpus/ (path baked in via
// DENALI_CORPUS_DIR):
//
//   corpus/gma/*.gma    — GmaText forms through parse -> print round trip
//                         and the full pipeline under the differential
//                         oracle (benign outcomes only);
//   corpus/sexpr/*      — raw bytes through the S-expression reader (must
//                         parse or error, and round-trip when parsed);
//   corpus/lang/*       — raw bytes through lang::parseAnyModule.
//
// The corpus holds the fuzzers' seeds and any minimized crashers; see
// tests/corpus/README.md for the regeneration/minimization workflow.
//
//===----------------------------------------------------------------------===//

#include "driver/Superoptimizer.h"
#include "lang/Surface.h"
#include "sexpr/Parser.h"
#include "verify/GmaText.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace denali;
namespace fs = std::filesystem;

namespace {

std::vector<std::string> corpusFiles(const std::string &Subdir,
                                     const std::string &Ext = "") {
  std::vector<std::string> Files;
  fs::path Dir = fs::path(DENALI_CORPUS_DIR) / Subdir;
  if (!fs::exists(Dir))
    return Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file())
      continue;
    if (!Ext.empty() && E.path().extension() != Ext)
      continue;
    Files.push_back(E.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

TEST(Corpus, GmaRoundTripAndPipeline) {
  std::vector<std::string> Files = corpusFiles("gma", ".gma");
  ASSERT_FALSE(Files.empty()) << "tests/corpus/gma is empty";

  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 12;
  Opt.options().Matching.MaxNodes = 8000;
  Opt.options().Matching.MaxRounds = 8;

  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    std::string Text = slurp(Path);
    std::string Err;
    std::optional<gma::GMA> G = verify::parseGma(Opt.context(), Text, &Err);
    ASSERT_TRUE(G) << Err;

    // Print -> re-parse must rebuild the identical terms (hashconsing
    // makes TermId equality the strongest possible round-trip check).
    std::string Printed = verify::printGma(Opt.context(), *G);
    std::optional<gma::GMA> G2 =
        verify::parseGma(Opt.context(), Printed, &Err);
    ASSERT_TRUE(G2) << Err << "\n" << Printed;
    EXPECT_EQ(G->Targets, G2->Targets);
    EXPECT_EQ(G->NewVals, G2->NewVals);
    EXPECT_EQ(G->Guard, G2->Guard);

    verify::OracleVerdict V = verify::compileAndCheck(Opt, *G);
    EXPECT_TRUE(V.benign()) << V.toString() << "\n" << Printed;
  }
}

TEST(Corpus, SexprSeeds) {
  std::vector<std::string> Files = corpusFiles("sexpr");
  ASSERT_FALSE(Files.empty()) << "tests/corpus/sexpr is empty";
  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    sexpr::ParseResult R = sexpr::parse(slurp(Path));
    if (!R.ok())
      continue; // Error inputs are corpus members too; no-crash is the bar.
    for (const sexpr::SExpr &E : R.Forms) {
      sexpr::ParseResult R2 = sexpr::parseOne(E.toString());
      ASSERT_TRUE(R2.ok()) << E.toString();
      EXPECT_EQ(R2.Forms[0].toString(), E.toString());
    }
  }
}

TEST(Corpus, LangSeeds) {
  std::vector<std::string> Files = corpusFiles("lang");
  ASSERT_FALSE(Files.empty()) << "tests/corpus/lang is empty";
  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    std::string Err;
    lang::parseAnyModule(slurp(Path), &Err); // Must not crash.
  }
}

} // namespace
