//===- bench/bench_server.cpp - E17: compile-server load generator --------===//
//
// The EXPERIMENTS.md E17 harness: drives the compile server over streams
// of generated GMA kernels (verify::GmaGen) in three mixes and reports
// request latency and throughput per cache tier —
//
//   * cold     — distinct skeletons, caching disabled: the plain driver
//                pipeline cost, the baseline every other arm is compared
//                against;
//   * warm     — the same distinct corpus replayed against a populated
//                cache: every request is a canonical-key hit;
//   * dup      — a duplicate-heavy batch (many alpha-renamed requests over
//                few skeletons) through compileBulk's grouping, the
//                "compile farm" workload the server exists for.
//
// Plus the front-door cost: zero-copy s-expr parse throughput over the
// whole corpus (MB/s).
//
//   bench_server [--smoke]
//     --smoke  smaller corpus (CI perf-smoke gate)
//
// Gates correctness as well as reporting numbers (nonzero exit):
//   * warm duplicate-heavy throughput must be >= 5x cold throughput;
//   * every cache-served result must be bit-identical to its own cold
//     compile, and a sample must pass differential verification;
//   * with --cache-bytes 0 semantics (caching off) the server must
//     reproduce the direct driver::Superoptimizer::compileGMA output.
//
// Emits BENCH_server.json for trend tracking (gated by bench_compare
// against bench/baselines/BENCH_server.json in perf_smoke).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "server/Server.h"
#include "sexpr/Parser.h"
#include "support/Timer.h"
#include "verify/GmaGen.h"
#include "verify/GmaText.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace denali;
using namespace denali::bench;

namespace {

driver::Options pipelineOptions() {
  driver::Options Opts;
  Opts.Search.MaxCycles = 10;
  Opts.Matching.MaxNodes = 8000;
  Opts.Matching.MaxRounds = 8;
  return Opts;
}

struct ArmStats {
  unsigned Requests = 0;
  unsigned Found = 0;
  unsigned Exhausted = 0;
  unsigned Errors = 0;
  double WallSeconds = 0;
  double P50 = 0, P99 = 0;

  double reqPerS() const {
    return WallSeconds > 0 ? Requests / WallSeconds : 0;
  }
};

ArmStats summarize(const std::vector<server::ServerResponse> &Rs,
                   double Wall) {
  ArmStats A;
  A.Requests = static_cast<unsigned>(Rs.size());
  A.WallSeconds = Wall;
  std::vector<double> Lat;
  Lat.reserve(Rs.size());
  for (const server::ServerResponse &R : Rs) {
    if (!R.Result.Error.empty())
      ++A.Errors;
    else if (R.Result.Search.Found)
      ++A.Found;
    else
      ++A.Exhausted;
    Lat.push_back(R.Seconds);
  }
  std::sort(Lat.begin(), Lat.end());
  if (!Lat.empty()) {
    A.P50 = Lat[Lat.size() / 2];
    A.P99 = Lat[std::min(Lat.size() - 1, Lat.size() * 99 / 100)];
  }
  return A;
}

void printArm(const char *Name, const ArmStats &A) {
  std::printf("%-6s %6u reqs  %5u found  %5u exhausted  %8.3fs  "
              "%9.1f req/s  p50 %.2fms  p99 %.2fms\n",
              Name, A.Requests, A.Found, A.Exhausted, A.WallSeconds,
              A.reqPerS(), A.P50 * 1e3, A.P99 * 1e3);
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;

  const uint64_t Seed = 1;
  const unsigned Distinct = Smoke ? 24 : 100;   // Cold/warm corpus size.
  const unsigned DupTotal = Smoke ? 120 : 1000; // Duplicate-heavy batch.
  const unsigned DupSkeletons = Smoke ? 8 : 20;
  bool AllOk = true;

  enableObsMetrics();
  banner("E17", Smoke ? "compile-server load (smoke)"
                      : "compile-server load");

  // The corpus: GmaGen kernels, shipped to the server as request text
  // (the wire form every arm pays to parse).
  server::ServerOptions Cfg;
  Cfg.Pipeline = pipelineOptions();
  Cfg.Threads = 2;
  std::vector<std::string> Corpus;
  std::string CorpusText;
  {
    driver::Superoptimizer Gen(pipelineOptions());
    verify::GmaGen G(Gen.context(), Seed);
    for (unsigned I = 0; I < Distinct; ++I) {
      Corpus.push_back(verify::printGma(Gen.context(), G.next()));
      CorpusText += Corpus.back();
      CorpusText += "\n";
    }
  }

  // Front door: zero-copy tokenizer throughput over the whole corpus.
  double ParseMbPerS = 0;
  unsigned ParsedForms = 0;
  {
    const int Reps = Smoke ? 20 : 100;
    double Best = 1e9;
    for (int R = 0; R < Reps; ++R) {
      Timer T;
      sexpr::ParseResult P = sexpr::parse(CorpusText);
      double S = T.seconds();
      if (!P.ok()) {
        std::printf("corpus re-parse failed: %s\n",
                    P.Error->toString().c_str());
        AllOk = false;
        break;
      }
      ParsedForms = static_cast<unsigned>(P.Forms.size());
      Best = std::min(Best, S);
    }
    if (Best > 0 && Best < 1e9)
      ParseMbPerS = CorpusText.size() / Best / 1e6;
    std::printf("parse  %6zu bytes, %u forms, best %.1f MB/s\n",
                CorpusText.size(), ParsedForms, ParseMbPerS);
  }

  // Arm 1: cold — caching disabled, every request runs the full pipeline.
  ArmStats Cold;
  std::vector<server::ServerResponse> ColdRs;
  {
    server::ServerOptions Off = Cfg;
    Off.CacheBytes = 0;
    server::CompileServer Server(Off);
    Timer T;
    ColdRs = Server.compileBulk(Corpus);
    Cold = summarize(ColdRs, T.seconds());
    printArm("cold", Cold);
    for (const server::ServerResponse &R : ColdRs)
      if (R.Source != server::ResultSource::Cold)
        AllOk = false;

    // Cache-off parity: the server's answer must be the direct driver
    // answer (spot-check a slice; each compile costs real time).
    driver::Superoptimizer Direct(pipelineOptions());
    verify::GmaGen G(Direct.context(), Seed);
    bool Parity = true;
    for (unsigned I = 0; I < Distinct; ++I) {
      gma::GMA Gma = G.next();
      if (I % (Smoke ? 6 : 20) != 0)
        continue;
      driver::GmaResult D = Direct.compileGMA(Gma);
      if (D.Search.Program.toString() !=
              ColdRs[I].Result.Search.Program.toString() ||
          D.Search.Cycles != ColdRs[I].Result.Search.Cycles)
        Parity = false;
    }
    std::printf("cache-off parity vs direct compileGMA: %s\n",
                Parity ? "ok" : "MISMATCH");
    if (!Parity)
      AllOk = false;
  }

  // Arm 2: warm replay — fill a cache-on server with the corpus, then
  // replay it; every request must be a canonical-key hit, bit-identical
  // to the fill pass's cold result.
  ArmStats Warm;
  bool BitIdentical = true;
  bool OracleOk = true;
  {
    server::CompileServer Server(Cfg);
    std::vector<server::ServerResponse> Fill = Server.compileBulk(Corpus);
    Timer T;
    std::vector<server::ServerResponse> Replay = Server.compileBulk(Corpus);
    Warm = summarize(Replay, T.seconds());
    printArm("warm", Warm);

    for (size_t I = 0; I < Replay.size(); ++I) {
      if (Replay[I].Source != server::ResultSource::CacheHit)
        AllOk = false;
      // Exact-duplicate requests must reproduce the producing compile
      // byte for byte.
      if (Replay[I].Result.Search.Program.toString() !=
              Fill[I].Result.Search.Program.toString() ||
          Replay[I].Result.Search.Cycles != Fill[I].Result.Search.Cycles)
        BitIdentical = false;
    }
    std::printf("warm hits bit-identical to cold compiles: %s\n",
                BitIdentical ? "ok" : "MISMATCH");
    if (!BitIdentical)
      AllOk = false;

    // Differential oracle over a sample of the served results: the
    // renamed/cached program still computes its request's GMA.
    unsigned Checked = 0;
    for (const server::ServerResponse &R : Replay) {
      if (!R.Result.ok() || Checked >= (Smoke ? 5u : 15u))
        continue;
      ++Checked;
      if (std::optional<std::string> Bad = Server.opt().verify(R.Result)) {
        std::printf("ORACLE FAILURE on cached result %s: %s\n",
                    R.Result.Gma.Name.c_str(), Bad->c_str());
        OracleOk = false;
      }
    }
    std::printf("oracle on %u cache-served results: %s\n", Checked,
                OracleOk ? "ok" : "FAILED");
    if (!OracleOk)
      AllOk = false;
  }

  // Arm 3: duplicate-heavy — DupTotal requests round-robined over
  // DupSkeletons skeletons, in one compileBulk batch: grouping saturates
  // each skeleton once and the cache serves the rest.
  ArmStats Dup;
  unsigned DupHits = 0, DupCold = 0;
  {
    std::vector<std::string> Batch;
    Batch.reserve(DupTotal);
    for (unsigned I = 0; I < DupTotal; ++I)
      Batch.push_back(Corpus[I % DupSkeletons]);
    server::CompileServer Server(Cfg);
    Timer T;
    std::vector<server::ServerResponse> Rs = Server.compileBulk(Batch);
    Dup = summarize(Rs, T.seconds());
    printArm("dup", Dup);
    server::ServerStats St = Server.stats();
    DupHits = static_cast<unsigned>(St.CacheServes);
    DupCold = static_cast<unsigned>(St.ColdCompiles);
    std::printf("dup    %u skeletons: %u cold, %u hits\n", DupSkeletons,
                DupCold, DupHits);
    if (DupCold != DupSkeletons || DupHits != DupTotal - DupSkeletons) {
      std::printf("unexpected tier counts (wanted %u cold, %u hits)\n",
                  DupSkeletons, DupTotal - DupSkeletons);
      AllOk = false;
    }
  }

  // E19: always-on telemetry overhead — the duplicate-heavy batch replayed
  // on fresh servers with the obs layer fully off vs the always-on default.
  // Both phases pay the same cold saturations and cache hits; the phases
  // alternate within each rep (so clock/thermal drift lands on both arms
  // equally) and best-of-Reps damps scheduler noise. Reported and
  // JSON-tracked, not hard-gated: the target is < 2% but low-single-digit
  // wall deltas sit inside run-to-run noise (the E14 precedent).
  double ObsOffS = 0, ObsOnS = 0, ObsOverheadPct = 0;
  {
    std::vector<std::string> Batch;
    Batch.reserve(DupTotal);
    for (unsigned I = 0; I < DupTotal; ++I)
      Batch.push_back(Corpus[I % DupSkeletons]);
    const int Reps = Smoke ? 3 : 7;
    ObsOffS = ObsOnS = 1e9;
    for (int R = 0; R < Reps; ++R) {
      for (int Phase = 0; Phase < 2; ++Phase) {
        // Start each rep with obs fully off; in phase 1 the server's own
        // always-on default kicks in (metrics-only, no event buffering),
        // which is exactly the mode whose overhead E19 quantifies.
        obs::configure(obs::ObsConfig{});
        server::ServerOptions Run = Cfg;
        Run.Telemetry = Phase == 1;
        server::CompileServer Server(Run);
        Timer T;
        std::vector<server::ServerResponse> Rs = Server.compileBulk(Batch);
        double &Best = Phase ? ObsOnS : ObsOffS;
        Best = std::min(Best, T.seconds());
        if (Rs.size() != Batch.size())
          AllOk = false;
      }
    }
    enableObsMetrics(); // Back on for the final metrics summary.
    ObsOverheadPct = ObsOffS > 0 ? (ObsOnS - ObsOffS) / ObsOffS * 100.0 : 0;
    std::printf("\nE19 telemetry overhead (dup batch, best of %d): obs off "
                "%.3fs, on %.3fs: %+.2f%% (target < 2%%; reported, not "
                "gated)\n",
                Reps, ObsOffS, ObsOnS, ObsOverheadPct);
  }

  // The headline gate: duplicate-heavy warm throughput vs cold.
  double Speedup = Cold.reqPerS() > 0 ? Dup.reqPerS() / Cold.reqPerS() : 0;
  bool SpeedupOk = Speedup >= 5.0;
  std::printf("\nduplicate-heavy vs cold: %.1fx (gate: >= 5x) %s\n", Speedup,
              SpeedupOk ? "ok" : "FAILED");
  if (!SpeedupOk)
    AllOk = false;

  writeMetricsSummary("BENCH_server.metrics.txt");

  std::FILE *Out = std::fopen("BENCH_server.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    std::fprintf(Out,
                 "  {\"arm\": \"parse\", \"forms\": %u, "
                 "\"parse_mb_per_s\": %.1f},\n",
                 ParsedForms, ParseMbPerS);
    auto Row = [&](const char *Name, const ArmStats &A) {
      std::fprintf(Out,
                   "  {\"arm\": \"%s\", \"requests\": %u, \"found\": %u, "
                   "\"exhausted\": %u, \"errors\": %u, \"wall_s\": %.6f, "
                   "\"req_per_s\": %.1f, \"p50_s\": %.6f, "
                   "\"p99_s\": %.6f},\n",
                   Name, A.Requests, A.Found, A.Exhausted, A.Errors,
                   A.WallSeconds, A.reqPerS(), A.P50, A.P99);
    };
    Row("cold", Cold);
    Row("warm", Warm);
    Row("dup", Dup);
    std::fprintf(Out,
                 "  {\"arm\": \"e19_obs_overhead\", \"off_s\": %.6f, "
                 "\"on_s\": %.6f, \"overhead_pct\": %.2f},\n",
                 ObsOffS, ObsOnS, ObsOverheadPct);
    std::fprintf(Out,
                 "  {\"gate\": \"summary\", \"dup_cold\": %u, "
                 "\"dup_hits\": %u, \"speedup_pct\": %.1f, "
                 "\"speedup_ok\": %s, \"bit_identical\": %s, "
                 "\"oracle_ok\": %s}\n]\n",
                 DupCold, DupHits, Speedup * 100.0,
                 SpeedupOk ? "true" : "false",
                 BitIdentical ? "true" : "false",
                 OracleOk ? "true" : "false");
    std::fclose(Out);
    std::printf("wrote BENCH_server.json\n");
  } else {
    std::printf("could not write BENCH_server.json\n");
    AllOk = false;
  }
  return AllOk ? 0 : 1;
}
