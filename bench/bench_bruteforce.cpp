//===- bench/bench_bruteforce.cpp - E6: vs the Massalin approach ----------===//
//
// Regenerates the paper's comparison with the GNU superoptimizer
// (section 8): brute-force enumeration handles ~5-instruction sequences
// and then explodes ("we were unable to generate longer sequences in an
// amount of time that we were willing to wait — several days"), while
// Denali's goal-directed search scales to dozens of instructions
// (31 instructions in the paper's checksum).
//
// Two measurements:
//  1. enumeration cost vs target length on problems of growing optimal
//     size (complete sequences tried, wall time);
//  2. head-to-head wall time, brute force vs Denali, on the same goals.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/BruteForce.h"
#include "driver/Superoptimizer.h"
#include "support/Timer.h"

#include <cstdio>

using namespace denali;
using namespace denali::bench;
using denali::ir::Builtin;

namespace {

struct Problem {
  const char *Name;
  std::vector<std::string> Inputs;
  // Builds the goal in the given context.
  ir::TermId (*Build)(ir::Context &);
};

ir::TermId buildXor3(ir::Context &Ctx) {
  // (x ^ y) ^ (x >> 1): optimal 3 instructions.
  return Ctx.Terms.makeBuiltin(
      Builtin::Xor64,
      {Ctx.Terms.makeBuiltin(Builtin::Xor64, {Ctx.Terms.makeVar("x"),
                                              Ctx.Terms.makeVar("y")}),
       Ctx.Terms.makeBuiltin(Builtin::Shr64, {Ctx.Terms.makeVar("x"),
                                              Ctx.Terms.makeConst(1)})});
}

ir::TermId buildSwap2(ir::Context &Ctx) {
  // 2-byte swap: storeb(storeb(0,0,selectb(a,1)),1,selectb(a,0)).
  ir::TermId A = Ctx.Terms.makeVar("x");
  ir::TermId Inner = Ctx.Terms.makeBuiltin(
      Builtin::StoreB,
      {Ctx.Terms.makeConst(0), Ctx.Terms.makeConst(0),
       Ctx.Terms.makeBuiltin(Builtin::SelectB, {A, Ctx.Terms.makeConst(1)})});
  return Ctx.Terms.makeBuiltin(
      Builtin::StoreB,
      {Inner, Ctx.Terms.makeConst(1),
       Ctx.Terms.makeBuiltin(Builtin::SelectB, {A, Ctx.Terms.makeConst(0)})});
}

ir::TermId buildClamp(ir::Context &Ctx) {
  // ((x & 0xff) << 8) | (y & 0xff): 4-ish instructions.
  return Ctx.Terms.makeBuiltin(
      Builtin::Or64,
      {Ctx.Terms.makeBuiltin(
           Builtin::Shl64,
           {Ctx.Terms.makeBuiltin(Builtin::And64,
                                  {Ctx.Terms.makeVar("x"),
                                   Ctx.Terms.makeConst(0xff)}),
            Ctx.Terms.makeConst(8)}),
       Ctx.Terms.makeBuiltin(Builtin::And64, {Ctx.Terms.makeVar("y"),
                                              Ctx.Terms.makeConst(0xff)})});
}

} // namespace

int main() {
  const Problem Problems[] = {
      {"xor3 (3 instrs)", {"x", "y"}, buildXor3},
      {"swap2 (3 instrs)", {"x"}, buildSwap2},
      {"pack (3-4 instrs)", {"x", "y"}, buildClamp},
  };

  banner("E6a", "brute-force enumeration cost vs sequence length");
  std::printf("%-20s %-7s %-8s %-16s %-10s\n", "problem", "found", "length",
              "sequences", "seconds");
  std::vector<baseline::BruteForceResult> BruteResults;
  for (const Problem &P : Problems) {
    ir::Context Ctx;
    ir::TermId Goal = P.Build(Ctx);
    baseline::BruteForceOptions Opts;
    Opts.MaxLength = 3;
    Opts.MaxSequencesPerLength = 60000000; // Keep each run bounded.
    baseline::BruteForceResult R =
        baseline::bruteForceSearch(Ctx, Goal, P.Inputs, Opts);
    std::printf("%-20s %-7s %-8u %-16llu %-10.2f\n", P.Name,
                R.Found ? "yes" : "no", R.Length,
                static_cast<unsigned long long>(R.SequencesTried), R.Seconds);
    BruteResults.push_back(std::move(R));
  }

  banner("E6b", "head to head: brute force vs Denali (wall seconds)");
  std::printf("%-20s %-14s %-14s %-14s\n", "problem", "bruteforce-s",
              "denali-s", "denali-cycles");
  for (size_t PIdx = 0; PIdx < std::size(Problems); ++PIdx) {
    const Problem &P = Problems[PIdx];
    double BruteSeconds = BruteResults[PIdx].Seconds;
    bool BruteFound = BruteResults[PIdx].Found;
    Timer T;
    driver::Superoptimizer Opt;
    ir::TermId Goal = P.Build(Opt.context());
    driver::GmaResult R = Opt.compileGoals("bf", {{"res", Goal}});
    double DenaliSeconds = T.seconds();
    std::printf("%-20s %-14s %-14.2f %-14s\n", P.Name,
                BruteFound ? strFormat("%.2f", BruteSeconds).c_str()
                           : strFormat(">%.0f (gave up)", BruteSeconds)
                                 .c_str(),
                DenaliSeconds,
                R.ok() ? std::to_string(R.Search.Cycles).c_str() : "FAIL");
  }

  banner("E6c", "growth: sequences examined per length (xor3 target)");
  std::printf("paper: GNU superoptimizer fine at 5 instructions, days "
              "beyond\n");
  std::printf("%-8s %-16s %-10s\n", "length", "sequences", "seconds");
  {
    ir::Context Ctx;
    // An unfindable goal (mulq is excluded from the repertoire) forces the
    // enumerator to exhaust each length completely.
    ir::TermId Goal = Ctx.Terms.makeBuiltin(
        Builtin::Mul64, {Ctx.Terms.makeVar("x"), Ctx.Terms.makeVar("x")});
    for (unsigned L = 1; L <= 3; ++L) {
      baseline::BruteForceOptions Opts;
      Opts.MaxLength = L;
      Opts.MaxSequencesPerLength = L < 3 ? 0 : 40000000;
      baseline::BruteForceResult R =
          baseline::bruteForceSearch(Ctx, Goal, {"x"}, Opts);
      std::printf("%-8u %-16llu %-10.2f%s\n", L,
                  static_cast<unsigned long long>(R.SequencesTried),
                  R.Seconds,
                  Opts.MaxSequencesPerLength && !R.Found &&
                          R.SequencesTried >= Opts.MaxSequencesPerLength
                      ? "  (capped)"
                      : "");
    }
  }
  return 0;
}
