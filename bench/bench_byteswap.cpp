//===- bench/bench_byteswap.cpp - E3/E4: the byte-swap problems -----------===//
//
// Regenerates the paper's byteswap results (section 8, Figure 4):
//
//  * byteswap4 compiles to a 5-cycle EV6 program, with SAT problem sizes
//    per budget probe (the paper reports 1639 vars / 4613 clauses for the
//    4-cycle refutation up to 9203 / 26415 for the 8-cycle solution, ~1
//    minute total, <0.3 s of SAT);
//  * byteswap5: Denali beats the C compiler (here: the naive tree codegen
//    + list scheduler baseline) by at least one cycle;
//  * a sweep n = 2..5 with the baseline comparison for shape.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baseline/TreeCodegen.h"
#include "driver/Superoptimizer.h"

#include <cstdio>

using namespace denali;
using namespace denali::bench;

int main() {
  banner("E3/E4", "byteswap n = 2..5: Denali vs conventional codegen");
  std::printf("%-10s %-14s %-14s %-10s %-12s %-10s\n", "problem",
              "denali-cycles", "baseline-cyc", "instrs", "match-s", "sat-s");

  for (unsigned N = 2; N <= 5; ++N) {
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 10;
    driver::CompileResult R = Opt.compileSource(byteswapSource(N));
    if (!R.ok() || !R.Gmas[0].ok()) {
      std::printf("byteswap%u: FAILED (%s)\n", N,
                  (R.ok() ? R.Gmas[0].Error : R.Error).c_str());
      return 1;
    }
    driver::GmaResult &G = R.Gmas[0];
    if (auto Err = Opt.verify(G)) {
      std::printf("byteswap%u: VERIFY FAILED (%s)\n", N, Err->c_str());
      return 1;
    }
    // Baseline: same goal terms through the naive tree codegen.
    std::vector<std::pair<std::string, ir::TermId>> Goals;
    for (size_t I = 0; I < G.Gma.Targets.size(); ++I)
      if (G.Gma.Targets[I] == "\\res")
        Goals.emplace_back("res", G.Gma.NewVals[I]);
    std::string Err;
    auto Baseline = baseline::naiveCodegen(Opt.context(), Opt.isa(), Goals,
                                           "naive", &Err);
    double SatSeconds = 0;
    for (const codegen::Probe &P : G.Search.Probes)
      SatSeconds += P.SolveSeconds;
    std::printf("%-10s %-14u %-14s %-10zu %-12.2f %-10.3f\n",
                strFormat("byteswap%u", N).c_str(), G.Search.Cycles,
                Baseline ? std::to_string(Baseline->Cycles).c_str() : "-",
                G.Search.Program.Instrs.size(), G.MatchSeconds, SatSeconds);
  }

  banner("E3", "byteswap4 SAT problem sizes per budget probe");
  std::printf("paper: K=4 refutation 1639 vars / 4613 clauses; "
              "K=8 solution 9203 / 26415\n");
  std::printf("%-6s %-10s %-12s %-8s %-10s\n", "K", "vars", "clauses",
              "result", "solve-s");
  {
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 8;
    driver::CompileResult R = Opt.compileSource(byteswapSource(4));
    if (!R.ok() || !R.Gmas[0].ok())
      return 1;
    for (const codegen::Probe &P : R.Gmas[0].Search.Probes)
      std::printf("%-6u %-10d %-12llu %-8s %-10.3f\n", P.Cycles, P.Stats.Vars,
                  static_cast<unsigned long long>(P.Stats.Clauses),
                  P.Result == sat::SolveResult::Sat ? "sat" : "unsat",
                  P.SolveSeconds);
    std::printf("\npaper result: 5-cycle optimum. measured: %u-cycle "
                "optimum (%s lower-bound certificate)\n",
                R.Gmas[0].Search.Cycles,
                R.Gmas[0].Search.LowerBoundProved ? "with" : "without");
  }
  return 0;
}
