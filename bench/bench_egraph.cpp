//===- bench/bench_egraph.cpp - E-graph microbenchmarks -------------------===//
//
// Microbenchmarks of the E-graph substrate: insertion throughput,
// congruence-closure repair under merges, and e-matching over saturated
// graphs. These justify the engineering choices behind the matcher (the
// paper's note that E-graph matching is costlier than plain term matching
// but worth it).
//
//===----------------------------------------------------------------------===//

#include "axioms/BuiltinAxioms.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"

#include <benchmark/benchmark.h>

using namespace denali;
using namespace denali::egraph;
using denali::ir::Builtin;

static void BM_EGraphInsertChain(benchmark::State &State) {
  for (auto _ : State) {
    ir::Context Ctx;
    EGraph G(Ctx);
    ClassId C = G.addNode(Ctx.Ops.makeVariable("x"), {});
    for (int64_t I = 0; I < State.range(0); ++I)
      C = G.addNode(Ctx.Ops.builtin(Builtin::Add64), {C, G.addConst(1)});
    benchmark::DoNotOptimize(C);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_EGraphInsertChain)->Arg(100)->Arg(1000)->Arg(10000);

static void BM_EGraphCongruenceCascade(benchmark::State &State) {
  // Merging the leaves of N parallel unary towers forces a full cascade of
  // congruence repairs.
  for (auto _ : State) {
    State.PauseTiming();
    ir::Context Ctx;
    EGraph G(Ctx);
    int64_t Height = State.range(0);
    ClassId A = G.addNode(Ctx.Ops.makeVariable("a"), {});
    ClassId B = G.addNode(Ctx.Ops.makeVariable("b"), {});
    ClassId TA = A, TB = B;
    for (int64_t I = 0; I < Height; ++I) {
      TA = G.addNode(Ctx.Ops.builtin(Builtin::Neg64), {TA});
      TB = G.addNode(Ctx.Ops.builtin(Builtin::Neg64), {TB});
    }
    State.ResumeTiming();
    G.assertEqual(A, B);
    benchmark::DoNotOptimize(G.sameClass(TA, TB));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_EGraphCongruenceCascade)->Arg(100)->Arg(1000)->Arg(5000);

static void BM_SaturateFigure2(benchmark::State &State) {
  for (auto _ : State) {
    ir::Context Ctx;
    EGraph G(Ctx);
    ClassId Mul = G.addNode(
        Ctx.Ops.builtin(Builtin::Mul64),
        {G.addNode(Ctx.Ops.makeVariable("reg6"), {}), G.addConst(4)});
    ClassId Goal =
        G.addNode(Ctx.Ops.builtin(Builtin::Add64), {Mul, G.addConst(1)});
    benchmark::DoNotOptimize(Goal);
    match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    match::MatchStats Stats = M.saturate(G);
    benchmark::DoNotOptimize(Stats.FinalNodes);
  }
}
BENCHMARK(BM_SaturateFigure2);

static void BM_SaturateAcSum(benchmark::State &State) {
  // AC saturation of a + b + ... (the expensive, exponential case the
  // paper warns about).
  for (auto _ : State) {
    ir::Context Ctx;
    EGraph G(Ctx);
    ClassId Sum = G.addNode(Ctx.Ops.makeVariable("t0"), {});
    for (int64_t I = 1; I < State.range(0); ++I)
      Sum = G.addNode(
          Ctx.Ops.builtin(Builtin::Add64),
          {Sum,
           G.addNode(Ctx.Ops.makeVariable("t" + std::to_string(I)), {})});
    match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
    match::MatchLimits Limits;
    Limits.MaxNodes = 20000;
    match::MatchStats Stats = M.saturate(G, Limits);
    benchmark::DoNotOptimize(Stats.FinalNodes);
  }
}
BENCHMARK(BM_SaturateAcSum)->Arg(3)->Arg(4)->Arg(5);

BENCHMARK_MAIN();
