//===- bench/bench_matching.cpp - E1/E2/E7: the matching phase ------------===//
//
// Regenerates the section 5 claims about the matcher:
//
//  * E1 (Figure 2): saturating reg6*4 + 1 introduces 4 = 2**2, the shift
//    alternative, and the s4addl alternative;
//  * E2: the matcher finds "more than a hundred different ways" of
//    computing a + b + c + d + e;
//  * E7: the select-store clause gives load/store reordering freedom, and
//    an ablation without that axiom forces serialization through the
//    store (measured in final schedule length).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "alpha/ISA.h"
#include "axioms/BuiltinAxioms.h"
#include "codegen/Search.h"
#include "egraph/Analysis.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "support/Timer.h"

#include <cstdio>

using namespace denali;
using namespace denali::bench;
using namespace denali::egraph;
using denali::ir::Builtin;

static match::Matcher makeMatcher(ir::Context &Ctx) {
  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  return M;
}

static bool classHasOp(const EGraph &G, ClassId C, Builtin B) {
  for (ENodeId N : G.classNodes(C))
    if (G.node(N).Op == G.context().Ops.builtin(B))
      return true;
  return false;
}

int main() {
  banner("E0", "built-in axiom files (paper: 44 mathematical axioms / 127 "
               "lines, 275 Alpha axioms / 637 lines)");
  {
    ir::Context Ctx;
    std::string Err;
    auto Math = axioms::parseAxiomsText(Ctx, axioms::mathAxiomsText(), &Err);
    auto Alpha = axioms::parseAxiomsText(Ctx, axioms::alphaAxiomsText(),
                                         &Err);
    auto countLines = [](const char *Text) {
      unsigned Lines = 0;
      for (const char *P = Text; *P; ++P)
        Lines += *P == '\n';
      return Lines;
    };
    std::printf("  mathematical: %zu axioms, %u source lines\n",
                Math ? Math->size() : 0, countLines(axioms::mathAxiomsText()));
    std::printf("  alpha EV6:    %zu axioms, %u source lines\n",
                Alpha ? Alpha->size() : 0,
                countLines(axioms::alphaAxiomsText()));
    std::printf("  (a smaller set than the prototype's: enough for every "
                "reproduced experiment; the paper notes its own files "
                "\"will need to grow further\")\n");
  }

  banner("E1", "Figure 2: matching reg6*4 + 1");
  {
    ir::Context Ctx;
    EGraph G(Ctx);
    ClassId Four = G.addConst(4);
    ClassId Mul = G.addNode(Ctx.Ops.builtin(Builtin::Mul64),
                            {G.addNode(Ctx.Ops.makeVariable("reg6"), {}),
                             Four});
    ClassId Goal =
        G.addNode(Ctx.Ops.builtin(Builtin::Add64), {Mul, G.addConst(1)});
    size_t InitialNodes = G.numNodes();
    Timer T;
    match::Matcher M = makeMatcher(Ctx);
    match::MatchStats Stats = M.saturate(G);
    std::printf("initial term DAG: %zu nodes (Figure 2a)\n", InitialNodes);
    std::printf("quiescent E-graph: %zu nodes, %zu classes, %u rounds, "
                "%.3f s\n", Stats.FinalNodes, Stats.FinalClasses,
                Stats.Rounds, T.seconds());
    std::printf("  4 = 2**2 introduced (Fig 2b):        %s\n",
                classHasOp(G, Four, Builtin::Pow) ? "yes" : "NO");
    std::printf("  reg6 << 2 in multiply class (Fig 2c): %s\n",
                classHasOp(G, Mul, Builtin::Shl64) ? "yes" : "NO");
    std::printf("  s4addl in goal class (Fig 2d):        %s\n",
                classHasOp(G, Goal, Builtin::S4Addl) ? "yes" : "NO");
    std::printf("  ways of computing the goal: %llu\n",
                static_cast<unsigned long long>(countComputations(G, Goal)));
  }

  banner("E2", "ways of computing a + b + ... (paper: >100 for five terms)");
  std::printf("%-8s %-12s %-12s %-14s %-10s\n", "terms", "enodes", "classes",
              "ways", "seconds");
  for (unsigned N = 2; N <= 5; ++N) {
    ir::Context Ctx;
    EGraph G(Ctx);
    ClassId Sum = G.addNode(Ctx.Ops.makeVariable("a0"), {});
    for (unsigned I = 1; I < N; ++I)
      Sum = G.addNode(
          Ctx.Ops.builtin(Builtin::Add64),
          {Sum, G.addNode(Ctx.Ops.makeVariable("a" + std::to_string(I)),
                          {})});
    Timer T;
    match::Matcher M = makeMatcher(Ctx);
    match::MatchLimits Limits;
    Limits.MaxNodes = 50000;
    match::MatchStats Stats = M.saturate(G, Limits);
    uint64_t Ways = countComputations(G, Sum);
    std::printf("%-8u %-12zu %-12zu %-14llu %-10.3f\n", N, Stats.FinalNodes,
                Stats.FinalClasses, static_cast<unsigned long long>(Ways),
                T.seconds());
  }

  banner("E7", "select-store reordering: with vs without the clause axiom");
  for (bool WithSelectStore : {true, false}) {
    ir::Context Ctx;
    alpha::ISA Isa(Ctx);
    EGraph G(Ctx);
    ClassId MVar = G.addNode(Ctx.Ops.makeVariable("M"), {});
    ClassId P = G.addNode(Ctx.Ops.makeVariable("p"), {});
    ClassId X = G.addNode(Ctx.Ops.makeVariable("x"), {});
    ClassId P8 = G.addNode(Ctx.Ops.builtin(Builtin::Add64),
                           {P, G.addConst(8)});
    ClassId StoreT =
        G.addNode(Ctx.Ops.builtin(Builtin::Store), {MVar, P, X});
    ClassId LoadT =
        G.addNode(Ctx.Ops.builtin(Builtin::Select), {StoreT, P8});

    // Ablation: drop the select-store clause from the axiom set.
    std::vector<match::Axiom> Axioms = axioms::loadBuiltinAxioms(Ctx);
    if (!WithSelectStore) {
      std::vector<match::Axiom> Filtered;
      for (match::Axiom &A : Axioms)
        if (A.Body.size() == 1) // Clauses carry the select-store freedom.
          Filtered.push_back(std::move(A));
      Axioms = std::move(Filtered);
    }
    match::Matcher M(std::move(Axioms));
    for (match::Elaborator &E : match::standardElaborators())
      M.addElaborator(std::move(E));
    M.saturate(G);

    codegen::Universe U;
    std::string Err;
    std::vector<codegen::NamedGoal> Goals{{"M", G.find(StoreT), true},
                                          {"r", G.find(LoadT), false}};
    if (!U.build(G, Isa, {G.find(StoreT), G.find(LoadT)},
                 codegen::UniverseOptions(), &Err)) {
      std::printf("universe failed: %s\n", Err.c_str());
      continue;
    }
    codegen::SearchOptions SOpts;
    SOpts.MaxCycles = 12;
    codegen::SearchResult R =
        codegen::searchBudgets(G, Isa, U, Goals, SOpts, "e7");
    std::printf("  %-28s -> %s cycles\n",
                WithSelectStore ? "with select-store clause"
                                : "without (ablation)",
                R.Found ? std::to_string(R.Cycles).c_str() : "??");
  }
  std::printf("(reorder freedom lets the load overlap the store; without "
              "the clause the load must wait for the store's memory "
              "value)\n");
  return 0;
}
