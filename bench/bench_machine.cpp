//===- bench/bench_machine.cpp - E18: machine-model backends --------------===//
//
// The cross-backend micro-arm (EXPERIMENTS.md E18): the same two kernels —
// byteswap4 (Figure 3, exercises the axiom-driven byte-op rewrites on
// backends without byte instructions) and permute16 (shifts/ands/ors, the
// instruction core every backend shares) — compiled under every built-in
// machine model. Each result must verify differentially on its own
// backend; cycles and instruction counts are recorded per (machine,
// problem) as structural regression fields.
//
// Emits BENCH_machine.json (gated against bench/baselines/) and
// BENCH_machine.metrics.txt. Exits nonzero on any compile or verify
// failure.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"
#include "support/Timer.h"
#include "verify/CrossBackend.h"
#include "verify/GmaGen.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace denali;
using namespace denali::bench;

namespace {

struct Row {
  std::string Machine;
  std::string Problem;
  unsigned Cycles = 0;
  size_t Instrs = 0;
  double WallSeconds = 0;
};

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
  (void)Smoke; // The arm is already CI-sized; --smoke is accepted for
               // symmetry with the other harnesses.
  enableObsMetrics();

  const std::vector<std::string> Machines = {"alpha", "rv64"};
  const std::vector<std::pair<std::string, std::string>> Problems = {
      {"byteswap4", byteswapSource(4)},
      {"permute16", permuteSource()},
  };

  banner("E18", "machine-model backends: byteswap4 + permute16 per machine");
  std::printf("%-8s %-10s %-8s %-8s %-8s\n", "machine", "problem", "cycles",
              "instrs", "wall-s");

  std::vector<Row> Rows;
  bool AllOk = true;
  for (const std::string &MName : Machines) {
    for (const auto &[PName, Source] : Problems) {
      driver::Options Opts;
      Opts.MachineName = MName;
      Opts.Search.MaxCycles = 10;
      driver::Superoptimizer Opt(Opts);
      Timer T;
      driver::CompileResult R = Opt.compileSource(Source);
      double Wall = T.seconds();
      if (!R.ok() || R.Gmas.empty() || !R.Gmas[0].ok()) {
        std::printf("%s/%s: FAILED (%s)\n", MName.c_str(), PName.c_str(),
                    (R.ok() && !R.Gmas.empty() ? R.Gmas[0].Error : R.Error)
                        .c_str());
        AllOk = false;
        continue;
      }
      driver::GmaResult &G = R.Gmas[0];
      if (auto Err = Opt.verify(G)) {
        std::printf("%s/%s: VERIFY FAILED (%s)\n", MName.c_str(),
                    PName.c_str(), Err->c_str());
        AllOk = false;
        continue;
      }
      Rows.push_back(Row{MName, PName, G.Search.Cycles,
                         G.Search.Program.Instrs.size(), Wall});
      std::printf("%-8s %-10s %-8u %-8zu %-8.2f\n", MName.c_str(),
                  PName.c_str(), G.Search.Cycles,
                  G.Search.Program.Instrs.size(), Wall);
    }
  }

  // Cross-backend differential arm: a short stream of generated kernels
  // compiled under every backend at once; all verdicts must be benign
  // (agree, or an honest uncomputable/budget skip). This is what feeds the
  // verify.cross_checks / verify.cross_*.<machine> counters the metrics
  // gate requires.
  {
    std::vector<std::unique_ptr<driver::Superoptimizer>> Owners;
    std::vector<driver::Superoptimizer *> Cross;
    for (const std::string &MName : Machines) {
      driver::Options MOpts;
      MOpts.MachineName = MName;
      MOpts.Search.MaxCycles = 6;
      Owners.push_back(std::make_unique<driver::Superoptimizer>(MOpts));
      Cross.push_back(Owners.back().get());
    }
    verify::GmaGen Gen(Cross[0]->context(), /*Seed=*/7);
    unsigned Agreed = 0, Skipped = 0;
    for (unsigned I = 0; I < 4; ++I) {
      gma::GMA G = Gen.next();
      verify::CrossBackendVerdict V = verify::crossCompileAndCheck(Cross, G);
      if (!V.benign()) {
        std::printf("cross %s: FAILED (%s)\n", G.Name.c_str(),
                    V.toString().c_str());
        AllOk = false;
      } else if (V.Status == verify::CrossStatus::Agree) {
        ++Agreed;
      } else {
        ++Skipped;
      }
    }
    std::printf("cross-backend differential: %u agree, %u skipped (benign)\n",
                Agreed, Skipped);
  }

  writeMetricsSummary("BENCH_machine.metrics.txt");

  std::FILE *Out = std::fopen("BENCH_machine.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(Out,
                   "  {\"machine\": \"%s\", \"problem\": \"%s\", "
                   "\"cycles\": %u, \"instrs\": %zu, \"wall_s\": %.6f}%s\n",
                   R.Machine.c_str(), R.Problem.c_str(), R.Cycles, R.Instrs,
                   R.WallSeconds, I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    std::printf("\nwrote BENCH_machine.json (%zu records)\n", Rows.size());
  } else {
    std::printf("\ncould not write BENCH_machine.json\n");
    AllOk = false;
  }
  return AllOk ? 0 : 1;
}
