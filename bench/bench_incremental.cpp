//===- bench/bench_incremental.cpp - E12: incremental budget search -------===//
//
// Fresh-vs-incremental comparison on the byteswap (Figure 3) and packet
// checksum (section 8) families. The fresh-solver linear ladder re-encodes
// and re-learns from scratch at every budget; the incremental ladder
// encodes once (monotone mode) and probes
// each budget under an assumption on one long-lived solver, carrying learnt
// clauses, activities, and saved phases across probes. The harness verifies
// the evidence contract — identical minimal K and identical per-budget
// SAT/UNSAT answers — and exits nonzero on any mismatch, so it doubles as a
// correctness gate in perf_smoke.
//
//   bench_incremental [--smoke]
//     --smoke  tiny problems/budgets (CI perf-smoke gate)
//
// Emits BENCH_incremental.json (one record per problem x mode, with the
// per-probe ladder) in the working directory for trend tracking.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace denali;
using namespace denali::bench;

namespace {

struct Row {
  std::string Problem;
  const char *Mode;
  unsigned Cycles = 0;
  bool LowerBoundProved = false;
  double WallSeconds = 0;
  uint64_t TotalConflicts = 0;
  std::vector<codegen::Probe> Probes;
};

codegen::SearchResult runOne(const std::string &Source, unsigned MaxCycles,
                             bool Incremental, bool *Ok) {
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = MaxCycles;
  Opt.options().Search.Strategy = codegen::SearchStrategy::Linear;
  Opt.options().Search.Incremental = Incremental;
  driver::CompileResult R = Opt.compileSource(Source);
  *Ok = R.ok() && !R.Gmas.empty() && R.Gmas[0].ok();
  if (!*Ok) {
    std::printf("FAILED: %s\n",
                (R.ok() && !R.Gmas.empty() ? R.Gmas[0].Error : R.Error)
                    .c_str());
    return {};
  }
  return R.Gmas[0].Search;
}

uint64_t totalConflicts(const codegen::SearchResult &R) {
  uint64_t Sum = 0;
  for (const codegen::Probe &P : R.Probes)
    Sum += P.Conflicts;
  return Sum;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
  enableObsMetrics();

  struct Problem {
    std::string Name;
    std::string Source;
    unsigned MaxCycles;
  };
  // The budget ceiling doubles as the monotone encoding's size, so it is
  // set the way a user who knows the neighbourhood of the answer would
  // set it (both modes get the identical ceiling; fresh linear stops at
  // the answer regardless).
  std::vector<Problem> Problems;
  if (Smoke) {
    Problems.push_back({"byteswap4", byteswapSource(4), 6});
    Problems.push_back({"checksum4", checksumSource(4), 12});
  } else {
    Problems.push_back({"byteswap4", byteswapSource(4), 6});
    Problems.push_back({"checksum2", checksumSource(2), 8});
    Problems.push_back({"checksum4", checksumSource(4), 12});
  }

  banner("E12", Smoke ? "incremental budget search (smoke)"
                      : "incremental budget search: fresh vs shared solver");
  std::printf("%-12s %-12s %-8s %-10s %-11s %-s\n", "problem", "mode",
              "cycles", "wall-s", "conflicts", "ladder");

  std::vector<Row> Rows;
  bool AllOk = true;
  // The solver is deterministic per instance, so the probe ladder and
  // conflict counts repeat exactly; wall time is the only noisy axis and
  // is reported as the minimum over a few repetitions.
  const int Reps = 3;
  for (const Problem &P : Problems) {
    const std::string &Name = P.Name;
    bool OkF = false, OkI = false;
    codegen::SearchResult Fresh = runOne(P.Source, P.MaxCycles, false, &OkF);
    codegen::SearchResult Inc = runOne(P.Source, P.MaxCycles, true, &OkI);
    if (!OkF || !OkI) {
      AllOk = false;
      continue;
    }
    for (int Rep = 1; Rep < Reps; ++Rep) {
      bool Ok = false;
      codegen::SearchResult R = runOne(P.Source, P.MaxCycles, false, &Ok);
      if (Ok)
        Fresh.WallSeconds = std::min(Fresh.WallSeconds, R.WallSeconds);
      R = runOne(P.Source, P.MaxCycles, true, &Ok);
      if (Ok)
        Inc.WallSeconds = std::min(Inc.WallSeconds, R.WallSeconds);
    }

    // The evidence contract: identical minimal K and identical per-budget
    // SAT/UNSAT answers. Solver reuse must be a pure performance change.
    if (Inc.Cycles != Fresh.Cycles ||
        Inc.LowerBoundProved != Fresh.LowerBoundProved) {
      std::printf("MISMATCH: %s incremental found %u cycles, fresh %u\n",
                  Name.c_str(), Inc.Cycles, Fresh.Cycles);
      AllOk = false;
    }
    if (Inc.Probes.size() != Fresh.Probes.size()) {
      std::printf("MISMATCH: %s probe ladders differ in length\n",
                  Name.c_str());
      AllOk = false;
    } else {
      for (size_t I = 0; I < Inc.Probes.size(); ++I)
        if (Inc.Probes[I].Cycles != Fresh.Probes[I].Cycles ||
            Inc.Probes[I].Result != Fresh.Probes[I].Result) {
          std::printf("MISMATCH: %s probe %zu evidence differs\n",
                      Name.c_str(), I);
          AllOk = false;
        }
    }

    for (int Which = 0; Which < 2; ++Which) {
      const char *Mode = Which == 0 ? "fresh" : "incremental";
      const codegen::SearchResult &R = Which == 0 ? Fresh : Inc;
      Row Rec;
      Rec.Problem = Name;
      Rec.Mode = Mode;
      Rec.Cycles = R.Cycles;
      Rec.LowerBoundProved = R.LowerBoundProved;
      Rec.WallSeconds = R.WallSeconds;
      Rec.TotalConflicts = totalConflicts(R);
      Rec.Probes = R.Probes;
      std::printf("%-12s %-12s %-8u %-10.3f %-11llu", Name.c_str(), Mode,
                  R.Cycles, R.WallSeconds,
                  static_cast<unsigned long long>(Rec.TotalConflicts));
      for (const codegen::Probe &Pr : R.Probes)
        std::printf(" %s", codegen::describeProbe(Pr).c_str());
      std::printf("\n");
      Rows.push_back(std::move(Rec));
    }

    uint64_t CF = totalConflicts(Fresh), CI = totalConflicts(Inc);
    std::printf("  conflicts saved: %lld (%.1f%%), wall speedup: %.2fx\n",
                static_cast<long long>(CF) - static_cast<long long>(CI),
                CF ? 100.0 * (1.0 - double(CI) / double(CF)) : 0.0,
                Inc.WallSeconds > 0 ? Fresh.WallSeconds / Inc.WallSeconds
                                    : 0.0);
  }

  // JSON trend record (per-probe ladder included).
  std::FILE *Out = std::fopen("BENCH_incremental.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(Out,
                   "  {\"problem\": \"%s\", \"mode\": \"%s\", "
                   "\"cycles\": %u, \"lower_bound_proved\": %s, "
                   "\"wall_s\": %.6f, \"total_conflicts\": %llu, "
                   "\"probes\": [",
                   R.Problem.c_str(), R.Mode, R.Cycles,
                   R.LowerBoundProved ? "true" : "false", R.WallSeconds,
                   static_cast<unsigned long long>(R.TotalConflicts));
      for (size_t J = 0; J < R.Probes.size(); ++J) {
        const codegen::Probe &P = R.Probes[J];
        std::fprintf(
            Out,
            "{\"k\": %u, \"result\": \"%s\", \"conflicts\": %llu, "
            "\"encode_s\": %.6f, \"solve_s\": %.6f}%s",
            P.Cycles, P.Result == sat::SolveResult::Sat ? "sat" : "unsat",
            static_cast<unsigned long long>(P.Conflicts), P.EncodeSeconds,
            P.SolveSeconds, J + 1 < R.Probes.size() ? ", " : "");
      }
      std::fprintf(Out, "]}%s\n", I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    std::printf("\nwrote BENCH_incremental.json (%zu records)\n",
                Rows.size());
  } else {
    std::printf("\ncould not write BENCH_incremental.json\n");
  }
  writeMetricsSummary("BENCH_incremental.metrics.txt");
  return AllOk ? 0 : 1;
}
