//===- bench/bench_portfolio.cpp - E11: parallel portfolio budget search --===//
//
// Wall-clock comparison of the three budget-search strategies on the
// byteswap family (Figure 3). Probes at different budgets are independent
// SAT instances; the portfolio runs a window of them concurrently and
// cancels the ones a SAT answer makes irrelevant, so its wall time should
// approach the cost of the most expensive relevant probe while its CPU
// time stays comparable to the sequential strategies.
//
//   bench_portfolio [--smoke] [--threads N]
//     --smoke     tiny problems/budgets (CI perf-smoke gate)
//     --threads N portfolio worker count (default: hardware concurrency)
//
// Emits BENCH_portfolio.json (one record per problem x strategy) in the
// working directory for trend tracking.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace denali;
using namespace denali::bench;

namespace {

struct Row {
  std::string Problem;
  const char *Strategy;
  unsigned Threads;
  unsigned Cycles;
  bool LowerBoundProved;
  double WallSeconds;
  double CpuSeconds;
  size_t CancelledProbes;
};

codegen::SearchResult runOne(const std::string &Source, unsigned MaxCycles,
                             codegen::SearchStrategy Strategy,
                             unsigned Threads, bool *Ok) {
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = MaxCycles;
  Opt.options().Search.Strategy = Strategy;
  Opt.options().Search.Threads = Threads;
  driver::CompileResult R = Opt.compileSource(Source);
  *Ok = R.ok() && !R.Gmas.empty() && R.Gmas[0].ok();
  if (!*Ok) {
    std::printf("FAILED: %s\n",
                (R.ok() && !R.Gmas.empty() ? R.Gmas[0].Error : R.Error)
                    .c_str());
    return {};
  }
  return R.Gmas[0].Search;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  unsigned Threads = std::thread::hardware_concurrency();
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
  }
  if (Threads == 0)
    Threads = 1;
  enableObsMetrics();

  struct Problem {
    unsigned Bytes;
    unsigned MaxCycles;
  };
  std::vector<Problem> Problems =
      Smoke ? std::vector<Problem>{{2, 6}, {3, 8}}
            : std::vector<Problem>{{3, 8}, {4, 10}};

  banner("E11", Smoke ? "portfolio budget search (smoke)"
                     : "portfolio budget search: wall vs cpu time");
  std::printf("%u portfolio worker(s)\n", Threads);
  std::printf("%-12s %-10s %-8s %-10s %-10s %-10s\n", "problem", "strategy",
              "cycles", "wall-s", "cpu-s", "cancelled");

  const struct {
    codegen::SearchStrategy S;
    const char *Name;
  } Strategies[] = {{codegen::SearchStrategy::Linear, "linear"},
                    {codegen::SearchStrategy::Binary, "binary"},
                    {codegen::SearchStrategy::Portfolio, "portfolio"}};

  std::vector<Row> Rows;
  bool AllOk = true;
  for (const Problem &P : Problems) {
    std::string Source = byteswapSource(P.Bytes);
    std::string Name = strFormat("byteswap%u", P.Bytes);
    unsigned LinearCycles = 0;
    double LinearWall = 0;
    for (const auto &S : Strategies) {
      bool Ok = false;
      codegen::SearchResult R = runOne(Source, P.MaxCycles, S.S, Threads, &Ok);
      if (!Ok) {
        AllOk = false;
        continue;
      }
      if (S.S == codegen::SearchStrategy::Linear) {
        LinearCycles = R.Cycles;
        LinearWall = R.WallSeconds;
      } else if (R.Cycles != LinearCycles) {
        std::printf("MISMATCH: %s %s found %u cycles, linear found %u\n",
                    Name.c_str(), S.Name, R.Cycles, LinearCycles);
        AllOk = false;
      }
      std::printf("%-12s %-10s %-8u %-10.3f %-10.3f %-10zu\n", Name.c_str(),
                  S.Name, R.Cycles, R.WallSeconds, R.CpuSeconds,
                  R.CancelledProbes);
      if (S.S == codegen::SearchStrategy::Portfolio && R.WallSeconds > 0)
        std::printf("  speedup vs linear: %.2fx\n",
                    LinearWall / R.WallSeconds);
      Rows.push_back(Row{Name, S.Name, Threads, R.Cycles, R.LowerBoundProved,
                         R.WallSeconds, R.CpuSeconds, R.CancelledProbes});
    }
  }

  // JSON trend record.
  std::FILE *Out = std::fopen("BENCH_portfolio.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(Out,
                   "  {\"problem\": \"%s\", \"strategy\": \"%s\", "
                   "\"threads\": %u, \"cycles\": %u, "
                   "\"lower_bound_proved\": %s, \"wall_s\": %.6f, "
                   "\"cpu_s\": %.6f, \"cancelled_probes\": %zu}%s\n",
                   R.Problem.c_str(), R.Strategy, R.Threads, R.Cycles,
                   R.LowerBoundProved ? "true" : "false", R.WallSeconds,
                   R.CpuSeconds, R.CancelledProbes,
                   I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    std::printf("\nwrote BENCH_portfolio.json (%zu records)\n", Rows.size());
  } else {
    std::printf("\ncould not write BENCH_portfolio.json\n");
  }
  writeMetricsSummary("BENCH_portfolio.metrics.txt");
  return AllOk ? 0 : 1;
}
