//===- bench/bench_verify.cpp - E13: differential-harness throughput ------===//
//
// The EXPERIMENTS.md E13 harness: measures how fast the randomized
// differential-verification loop (GmaGen -> pipeline -> oracle) iterates
// under each search strategy, and how quickly the oracle catches the
// planted encoder-latency bug (UniverseOptions::TestLatencyDelta = -2).
//
//   bench_verify [--smoke]
//     --smoke  fewer GMAs per strategy (CI perf-smoke gate)
//
// Gates correctness as well as reporting numbers: any non-benign oracle
// verdict in the clean runs, or a fault run that completes *without* a
// detection, exits nonzero. Emits BENCH_verify.json for trend tracking.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"
#include "support/Timer.h"
#include "verify/GmaGen.h"
#include "verify/Oracle.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace denali;
using namespace denali::bench;

namespace {

struct Row {
  std::string Strategy;
  unsigned Gmas = 0;
  unsigned Compiled = 0;
  unsigned Exhausted = 0;
  unsigned Failures = 0;
  double WallSeconds = 0;
};

driver::Superoptimizer makeOpt(codegen::SearchStrategy S, int LatencyDelta,
                               bool Explain = false) {
  driver::Options Opts;
  Opts.Search.Strategy = S;
  Opts.Search.MaxCycles = 12;
  Opts.Search.Threads = 4;
  Opts.Matching.MaxNodes = 8000;
  Opts.Matching.MaxRounds = 8;
  Opts.Universe.TestLatencyDelta = LatencyDelta;
  Opts.Explain = Explain;
  return driver::Superoptimizer(Opts);
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;

  const uint64_t Seed = 1;
  const unsigned Count = Smoke ? 40 : 150;
  const std::pair<const char *, codegen::SearchStrategy> Strategies[] = {
      {"linear", codegen::SearchStrategy::Linear},
      {"binary", codegen::SearchStrategy::Binary},
      {"portfolio", codegen::SearchStrategy::Portfolio},
      {"incremental", codegen::SearchStrategy::Incremental},
  };

  banner("E13", Smoke ? "differential harness throughput (smoke)"
                      : "differential harness throughput");
  std::printf("%-12s %-8s %-10s %-11s %-10s %-10s\n", "strategy", "gmas",
              "compiled", "exhausted", "wall-s", "GMA/s");

  bool AllOk = true;
  std::vector<Row> Rows;
  for (auto [Name, S] : Strategies) {
    driver::Superoptimizer Opt = makeOpt(S, 0);
    verify::GmaGen Gen(Opt.context(), Seed);
    Row R;
    R.Strategy = Name;
    R.Gmas = Count;
    Timer T;
    for (unsigned I = 0; I < Count; ++I) {
      verify::OracleVerdict V = verify::compileAndCheck(Opt, Gen.next());
      if (V.Status == verify::OracleStatus::Pass)
        ++R.Compiled;
      else if (V.Status == verify::OracleStatus::BudgetExhausted)
        ++R.Exhausted;
      else {
        ++R.Failures;
        std::printf("ORACLE FAILURE (%s): %s\n", Name,
                    V.toString().c_str());
        AllOk = false;
      }
    }
    R.WallSeconds = T.seconds();
    std::printf("%-12s %-8u %-10u %-11u %-10.3f %-10.1f\n", Name, R.Gmas,
                R.Compiled, R.Exhausted, R.WallSeconds,
                R.Gmas / R.WallSeconds);
    Rows.push_back(std::move(R));
  }

  // Planted-bug detection: latencies understated by 2 cycles; the oracle
  // must object within the smoke budget (it typically objects to the
  // first emitted load or multiply).
  unsigned DetectedAfter = 0;
  {
    driver::Superoptimizer Opt =
        makeOpt(codegen::SearchStrategy::Linear, -2);
    verify::GmaGen Gen(Opt.context(), Seed);
    for (unsigned I = 0; I < Count; ++I) {
      verify::OracleVerdict V = verify::compileAndCheck(Opt, Gen.next());
      if (!V.benign()) {
        DetectedAfter = I + 1;
        break;
      }
    }
    if (DetectedAfter == 0) {
      std::printf("planted latency bug NOT detected in %u GMAs\n", Count);
      AllOk = false;
    } else {
      std::printf("planted latency bug detected after %u GMA(s)\n",
                  DetectedAfter);
    }
  }

  // E14: observability overhead — the identical linear batch with the obs
  // layer off, then on (counters + spans recorded, no trace outputs).
  // Reported, not gated: the target is <2% (EXPERIMENTS.md E14); wall noise
  // on a loaded CI machine exceeds a sensible hard threshold. The enabled
  // arm's registry is dumped as the metrics summary perf_smoke checks.
  double ObsOffSeconds = 0, ObsOnSeconds = 0;
  {
    const unsigned OverheadCount = Smoke ? 20 : 60;
    // Interleave the arms and take the minimum per arm: the batch is small
    // enough that scheduler noise would otherwise swamp a few-percent
    // effect (the same trick bench_incremental uses for its wall times).
    const int OverheadReps = 3;
    for (int Rep = 0; Rep < OverheadReps; ++Rep)
      for (int Phase = 0; Phase < 2; ++Phase) {
        obs::ObsConfig C;
        C.Enabled = Phase == 1;
        obs::configure(C);
        obs::clearEvents();
        obs::Registry::global().resetAll();
        driver::Superoptimizer Opt =
            makeOpt(codegen::SearchStrategy::Linear, 0);
        verify::GmaGen Gen(Opt.context(), Seed);
        Timer T;
        for (unsigned I = 0; I < OverheadCount; ++I)
          if (!verify::compileAndCheck(Opt, Gen.next()).benign())
            AllOk = false;
        double &Arm = Phase == 0 ? ObsOffSeconds : ObsOnSeconds;
        double S = T.seconds();
        Arm = (Rep == 0) ? S : std::min(Arm, S);
      }
    banner("E14", "observability overhead (same linear batch, obs off vs on)");
    std::printf("obs off: %.3fs   obs on: %.3fs   overhead: %+.2f%%\n",
                ObsOffSeconds, ObsOnSeconds,
                ObsOffSeconds > 0
                    ? 100.0 * (ObsOnSeconds / ObsOffSeconds - 1.0)
                    : 0.0);
    writeMetricsSummary("BENCH_verify.metrics.txt");
    obs::ObsConfig Off;
    obs::configure(Off);
  }

  // E15: provenance overhead — the same linear batch with the explanation
  // layer off, then on (e-graph proof forest, per-union justifications,
  // substitution interning, and per-program derivation-chain construction).
  // Reported, not gated, for the same wall-noise reason as E14; the
  // EXPERIMENTS.md E15 target is <3%.
  double ProvOffSeconds = 0, ProvOnSeconds = 0;
  {
    const unsigned OverheadCount = Smoke ? 20 : 60;
    const int OverheadReps = 3;
    for (int Rep = 0; Rep < OverheadReps; ++Rep)
      for (int Phase = 0; Phase < 2; ++Phase) {
        driver::Superoptimizer Opt =
            makeOpt(codegen::SearchStrategy::Linear, 0, Phase == 1);
        verify::GmaGen Gen(Opt.context(), Seed);
        Timer T;
        for (unsigned I = 0; I < OverheadCount; ++I)
          if (!verify::compileAndCheck(Opt, Gen.next()).benign())
            AllOk = false;
        double &Arm = Phase == 0 ? ProvOffSeconds : ProvOnSeconds;
        double S = T.seconds();
        Arm = (Rep == 0) ? S : std::min(Arm, S);
      }
    banner("E15",
           "provenance overhead (same linear batch, provenance off vs on)");
    std::printf("prov off: %.3fs   prov on: %.3fs   overhead: %+.2f%%\n",
                ProvOffSeconds, ProvOnSeconds,
                ProvOffSeconds > 0
                    ? 100.0 * (ProvOnSeconds / ProvOffSeconds - 1.0)
                    : 0.0);
  }

  std::FILE *Out = std::fopen("BENCH_verify.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    for (const Row &R : Rows)
      std::fprintf(Out,
                   "  {\"strategy\": \"%s\", \"gmas\": %u, "
                   "\"compiled\": %u, \"exhausted\": %u, "
                   "\"failures\": %u, \"wall_s\": %.6f, "
                   "\"gma_per_s\": %.2f},\n",
                   R.Strategy.c_str(), R.Gmas, R.Compiled, R.Exhausted,
                   R.Failures, R.WallSeconds, R.Gmas / R.WallSeconds);
    std::fprintf(Out,
                 "  {\"fault\": \"latency-delta-minus-2\", "
                 "\"detected_after_gmas\": %u},\n",
                 DetectedAfter);
    std::fprintf(Out,
                 "  {\"e14_obs_off_s\": %.6f, \"e14_obs_on_s\": %.6f, "
                 "\"e14_overhead_pct\": %.2f},\n",
                 ObsOffSeconds, ObsOnSeconds,
                 ObsOffSeconds > 0
                     ? 100.0 * (ObsOnSeconds / ObsOffSeconds - 1.0)
                     : 0.0);
    std::fprintf(Out,
                 "  {\"e15_prov_off_s\": %.6f, \"e15_prov_on_s\": %.6f, "
                 "\"e15_overhead_pct\": %.2f}\n]\n",
                 ProvOffSeconds, ProvOnSeconds,
                 ProvOffSeconds > 0
                     ? 100.0 * (ProvOnSeconds / ProvOffSeconds - 1.0)
                     : 0.0);
    std::fclose(Out);
    std::printf("\nwrote BENCH_verify.json (%zu records)\n",
                Rows.size() + 3);
  } else {
    std::printf("\ncould not write BENCH_verify.json\n");
  }
  return AllOk ? 0 : 1;
}
