//===- bench/bench_egraph_scale.cpp - E16: saturation scaling -------------===//
//
// The EXPERIMENTS.md E16 harness: saturation wall time on stress E-graphs
// an order of magnitude (and up) beyond the paper-scale GMAs, comparing
//
//   eager      per-assert congruence repair + clause scan (the pre-
//              scheduling behavior, --match-eager-rebuild)
//   deferred   one batched rebuild per round (the default)
//   parallel   deferred + the match loop fanned out over 4 workers
//
// Stress inputs mix GmaGen corpora (loaded into ONE shared graph so the
// clause population grows with the tier) with unrolled byteswap chains
// (selectb/storeb, the clause-heaviest builtin axioms).
//
//   bench_egraph_scale [--smoke]
//     --smoke  drop the largest tier (CI perf-smoke gate)
//
// Saturation here is rounds-bounded, not quiescent — the builtin closure
// of these graphs is infinite, so MaxRounds stops it. MaxNodes is set far
// above what the rounds produce: a binding node cap would stop the two
// modes at different frontiers (the deferred arm's end-of-round rebuild
// shrinks the live count back under the cap and keeps saturating where
// the eager arm breaks), which is a different-total-work comparison, not
// an A/B of the same work. In the rounds-bounded regime both arms close
// identical graphs (mod class renaming) every round, so the harness gates
// eager/deferred agreement on the final partition and node/class counts,
// and gates the parallel arm as bit-identical to the deferred arm,
// statistics included — the match loop's any-thread-count contract.
// Emits BENCH_egraph_scale.json for the perf_smoke bench_compare gate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "axioms/BuiltinAxioms.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "support/Timer.h"
#include "verify/GmaGen.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace denali;
using namespace denali::bench;
using denali::ir::Builtin;

namespace {

/// The Figure 3/4 byteswap store chain for \p N bytes — the densest
/// clause generator among the builtin axioms (select-over-store).
ir::TermId swapChain(ir::Context &Ctx, unsigned N) {
  ir::TermId A = Ctx.Terms.makeVar("a");
  ir::TermId R = Ctx.Terms.makeConst(0);
  for (unsigned I = 0; I < N; ++I)
    R = Ctx.Terms.makeBuiltin(
        Builtin::StoreB,
        {R, Ctx.Terms.makeConst(I),
         Ctx.Terms.makeBuiltin(Builtin::SelectB,
                               {A, Ctx.Terms.makeConst(N - 1 - I)})});
  return R;
}

struct Tier {
  const char *Name;   ///< Rough seed-size multiple of a paper-scale GMA.
  unsigned Gmas;      ///< GmaGen GMAs loaded into the shared graph.
  unsigned SwapBytes; ///< Byteswap chain length.
  size_t MaxNodes;
  unsigned MaxRounds;
  int Reps; ///< Timing reps (min taken); stats are rep-invariant.
};

/// What one saturation arm produced, beyond its wall time.
struct ArmResult {
  match::MatchStats Stats;
  std::vector<unsigned> Partition; ///< Seed term -> first equal seed term.
};

/// Builds the tier's stress graph fresh and saturates it.
double runArm(ir::Context &Ctx, const std::vector<ir::TermId> &Seeds,
              const match::MatchLimits &Limits, ArmResult &Out) {
  egraph::EGraph G(Ctx);
  std::vector<egraph::ClassId> Roots;
  Roots.reserve(Seeds.size());
  for (ir::TermId T : Seeds)
    Roots.push_back(G.addTerm(T));
  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  Timer T;
  Out.Stats = M.saturate(G, Limits);
  double Seconds = T.seconds();
  Out.Partition.assign(Roots.size(), 0);
  for (size_t I = 0; I < Roots.size(); ++I) {
    Out.Partition[I] = static_cast<unsigned>(I);
    for (size_t J = 0; J < I; ++J)
      if (G.sameClass(Roots[I], Roots[J])) {
        Out.Partition[I] = static_cast<unsigned>(J);
        break;
      }
  }
  return Seconds;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;

  // Tier scale is seed- and rounds-driven; "1x" matches a typical paper
  // GMA. The recorded seed_nodes/nodes fields document the actual
  // multiples. MaxNodes is a non-binding backstop (see the header
  // comment).
  const size_t NodeBackstop = 4u << 20;
  std::vector<Tier> Tiers = {
      {"1x", 3, 4, NodeBackstop, 8, 3},
      {"10x", 24, 12, NodeBackstop, 6, 1},
  };
  if (!Smoke)
    Tiers.push_back({"30x", 72, 16, NodeBackstop, 6, 1});

  banner("E16", Smoke ? "saturation scaling, eager vs deferred vs parallel "
                        "(smoke)"
                      : "saturation scaling, eager vs deferred vs parallel");
  std::printf("%-6s %-10s %-8s %-8s %-9s %-10s %-10s %-10s %-9s\n", "tier",
              "seed-nodes", "nodes", "classes", "quiesced", "eager-s",
              "deferred-s", "par4-s", "speedup");

  enableObsMetrics();
  bool AllOk = true;
  struct Record {
    std::string Tier;
    size_t SeedNodes, Nodes, Classes;
    unsigned Gmas;
    bool Quiesced, ModesAgree;
    double EagerS, DeferredS, Parallel4S;
  };
  std::vector<Record> Records;

  for (const Tier &T : Tiers) {
    ir::Context Ctx;
    std::vector<ir::TermId> Seeds;
    verify::GmaGenOptions GO;
    GO.MaxTargets = 3;
    GO.MaxDepth = 4;
    GO.NumScalars = 4;
    GO.MemoryPercent = 75;
    GO.StorePercent = 80;
    verify::GmaGen Gen(Ctx, /*Seed=*/16, GO);
    for (unsigned I = 0; I < T.Gmas; ++I) {
      gma::GMA G = Gen.next();
      for (ir::TermId V : G.NewVals)
        Seeds.push_back(V);
      if (G.Guard)
        Seeds.push_back(*G.Guard);
    }
    Seeds.push_back(swapChain(Ctx, T.SwapBytes));
    size_t SeedNodes = 0;
    {
      // Seed size = graph size before any matching.
      egraph::EGraph G(Ctx);
      for (ir::TermId S : Seeds)
        G.addTerm(S);
      SeedNodes = G.numNodes();
    }

    match::MatchLimits Eager, Deferred, Parallel;
    Eager.MaxNodes = Deferred.MaxNodes = Parallel.MaxNodes = T.MaxNodes;
    Eager.MaxRounds = Deferred.MaxRounds = Parallel.MaxRounds = T.MaxRounds;
    // Like MaxNodes, the per-round instance cap must not bind: truncating
    // the pending list keeps an enumeration-order-dependent subset, and
    // enumeration order is the one thing that differs between modes.
    Eager.MaxInstancesPerRound = Deferred.MaxInstancesPerRound =
        Parallel.MaxInstancesPerRound = 1u << 20;
    Eager.EagerRebuild = true;
    Parallel.Threads = 4;

    ArmResult EagerR, DeferredR, ParallelR;
    double EagerS = 0, DeferredS = 0, Parallel4S = 0;
    for (int Rep = 0; Rep < T.Reps; ++Rep) {
      // Interleaved min-of-reps, the bench_verify trick against scheduler
      // noise. Stats and partitions are identical across reps.
      double E = runArm(Ctx, Seeds, Eager, EagerR);
      double D = runArm(Ctx, Seeds, Deferred, DeferredR);
      double P = runArm(Ctx, Seeds, Parallel, ParallelR);
      EagerS = Rep ? std::min(EagerS, E) : E;
      DeferredS = Rep ? std::min(DeferredS, D) : D;
      Parallel4S = Rep ? std::min(Parallel4S, P) : P;
    }

    bool Quiesced = EagerR.Stats.Quiesced && DeferredR.Stats.Quiesced &&
                    ParallelR.Stats.Quiesced;
    // The gates: eager and deferred must reach the same closure (the
    // rounds-bounded regime guarantees it), and the parallel arm must be
    // bit-identical to the deferred arm, statistics included, for any
    // thread count.
    bool ModesAgree =
        EagerR.Partition == DeferredR.Partition &&
        EagerR.Stats.FinalNodes == DeferredR.Stats.FinalNodes &&
        EagerR.Stats.FinalClasses == DeferredR.Stats.FinalClasses &&
        EagerR.Stats.MatchesFound == DeferredR.Stats.MatchesFound &&
        DeferredR.Partition == ParallelR.Partition &&
        DeferredR.Stats.FinalNodes == ParallelR.Stats.FinalNodes &&
        DeferredR.Stats.FinalClasses == ParallelR.Stats.FinalClasses &&
        DeferredR.Stats.Rounds == ParallelR.Stats.Rounds &&
        DeferredR.Stats.MatchesFound == ParallelR.Stats.MatchesFound &&
        DeferredR.Stats.InstancesAsserted ==
            ParallelR.Stats.InstancesAsserted &&
        DeferredR.Stats.InstancesDeduped == ParallelR.Stats.InstancesDeduped;
    if (!ModesAgree) {
      std::printf("tier %s: arms DISAGREE "
                  "(eager %zu/%zu, deferred %zu/%zu, parallel %zu/%zu)\n",
                  T.Name, EagerR.Stats.FinalNodes, EagerR.Stats.FinalClasses,
                  DeferredR.Stats.FinalNodes, DeferredR.Stats.FinalClasses,
                  ParallelR.Stats.FinalNodes, ParallelR.Stats.FinalClasses);
      AllOk = false;
    }
    std::printf("%-6s %-10zu %-8zu %-8zu %-9s %-10.3f %-10.3f %-10.3f "
                "%.2fx\n",
                T.Name, SeedNodes, DeferredR.Stats.FinalNodes,
                DeferredR.Stats.FinalClasses, Quiesced ? "yes" : "NO",
                EagerS, DeferredS, Parallel4S,
                DeferredS > 0 ? EagerS / DeferredS : 0.0);
    Records.push_back(Record{T.Name, SeedNodes, DeferredR.Stats.FinalNodes,
                             DeferredR.Stats.FinalClasses, T.Gmas, Quiesced,
                             ModesAgree, EagerS, DeferredS, Parallel4S});
  }

  writeMetricsSummary("BENCH_egraph_scale.metrics.txt");

  std::FILE *Out = std::fopen("BENCH_egraph_scale.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Records.size(); ++I) {
      const Record &R = Records[I];
      // speedup_pct fields carry the headline ratios; the _pct suffix
      // keeps bench_compare from exact-matching a timing-derived number.
      std::fprintf(
          Out,
          "  {\"tier\": \"%s\", \"gmas\": %u, \"seed_nodes\": %zu, "
          "\"nodes\": %zu, \"classes\": %zu, \"quiesced\": %s, "
          "\"modes_agree\": %s, \"eager_s\": %.6f, \"deferred_s\": %.6f, "
          "\"parallel4_s\": %.6f, \"speedup_pct\": %.1f, "
          "\"parallel_speedup_pct\": %.1f}%s\n",
          R.Tier.c_str(), R.Gmas, R.SeedNodes, R.Nodes, R.Classes,
          R.Quiesced ? "true" : "false", R.ModesAgree ? "true" : "false",
          R.EagerS, R.DeferredS, R.Parallel4S,
          R.DeferredS > 0 ? 100.0 * R.EagerS / R.DeferredS : 0.0,
          R.Parallel4S > 0 ? 100.0 * R.EagerS / R.Parallel4S : 0.0,
          I + 1 < Records.size() ? "," : "");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    std::printf("\nwrote BENCH_egraph_scale.json (%zu records)\n",
                Records.size());
  } else {
    std::printf("\ncould not write BENCH_egraph_scale.json\n");
    AllOk = false;
  }
  return AllOk ? 0 : 1;
}
