//===- bench/bench_egraph_scale.cpp - E16: saturation scaling -------------===//
//
// The EXPERIMENTS.md E16 harness: saturation wall time on stress E-graphs
// an order of magnitude (and up) beyond the paper-scale GMAs, comparing
//
//   eager      per-assert congruence repair + clause scan (the pre-
//              scheduling behavior, --match-eager-rebuild)
//   deferred   one batched rebuild per round (the default)
//   parallel   deferred + the match loop fanned out over 4 workers
//
// Stress inputs mix GmaGen corpora (loaded into ONE shared graph so the
// clause population grows with the tier) with unrolled byteswap chains
// (selectb/storeb, the clause-heaviest builtin axioms).
//
//   bench_egraph_scale [--smoke]
//     --smoke  drop the largest tier (CI perf-smoke gate)
//
// Saturation here is rounds-bounded, not quiescent — the builtin closure
// of these graphs is infinite, so MaxRounds stops it. MaxNodes is set far
// above what the rounds produce: a binding node cap would stop the two
// modes at different frontiers (the deferred arm's end-of-round rebuild
// shrinks the live count back under the cap and keeps saturating where
// the eager arm breaks), which is a different-total-work comparison, not
// an A/B of the same work. In the rounds-bounded regime both arms close
// identical graphs (mod class renaming) every round, so the harness gates
// eager/deferred agreement on the final partition and node/class counts,
// and gates the parallel arm as bit-identical to the deferred arm,
// statistics included — the match loop's any-thread-count contract.
//
// Each tier also A/Bs the deferred arm with per-axiom attribution
// disabled (MatchLimits::Profile off) — attr_overhead_pct is the cost of
// the always-on profiling instrumentation, reported but not gated (it is
// a timing ratio; EXPERIMENTS.md E20 records the expectation of < 2%).
//
// The E20 section compares blind budget-backoff against ledger-warmed
// adaptive scheduling (--match-adaptive) on *quiescing* inputs: groups of
// figure-2-style mul/add seeds over distinct variables, whose builtin
// closure is finite. Blind and warm runs must quiesce to identical
// closures (partition + node/class counts + extraction costs gated hard),
// with the warm run enumerating strictly fewer raw matches — the history
// seeds productive axioms' budgets past the backoff ladder's blind
// doubling and demotes never-productive axioms to a trailing phase.
//
// Emits BENCH_egraph_scale.json for the perf_smoke bench_compare gate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "alpha/ISA.h"
#include "axioms/BuiltinAxioms.h"
#include "baseline/EGraphExtract.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "obs/ProfileLedger.h"
#include "support/Timer.h"
#include "verify/GmaGen.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace denali;
using namespace denali::bench;
using denali::ir::Builtin;

namespace {

/// The Figure 3/4 byteswap store chain for \p N bytes — the densest
/// clause generator among the builtin axioms (select-over-store).
ir::TermId swapChain(ir::Context &Ctx, unsigned N) {
  ir::TermId A = Ctx.Terms.makeVar("a");
  ir::TermId R = Ctx.Terms.makeConst(0);
  for (unsigned I = 0; I < N; ++I)
    R = Ctx.Terms.makeBuiltin(
        Builtin::StoreB,
        {R, Ctx.Terms.makeConst(I),
         Ctx.Terms.makeBuiltin(Builtin::SelectB,
                               {A, Ctx.Terms.makeConst(N - 1 - I)})});
  return R;
}

struct Tier {
  const char *Name;   ///< Rough seed-size multiple of a paper-scale GMA.
  unsigned Gmas;      ///< GmaGen GMAs loaded into the shared graph.
  unsigned SwapBytes; ///< Byteswap chain length.
  size_t MaxNodes;
  unsigned MaxRounds;
  int Reps; ///< Timing reps (min taken); stats are rep-invariant.
};

/// What one saturation arm produced, beyond its wall time.
struct ArmResult {
  match::MatchStats Stats;
  std::vector<unsigned> Partition; ///< Seed term -> first equal seed term.
  std::vector<long long> ExtractCosts; ///< Per root; -1 = no machine term.
};

/// Builds the tier's stress graph fresh and saturates it. With
/// \p RecordInto, records the run's per-axiom attribution under
/// \p LedgerKey (the E20 profiling pre-run); with \p Extract, DP-extracts
/// the best term per seed root (egg-style cost) so two arms can gate
/// extraction-cost equality.
double runArm(ir::Context &Ctx, const std::vector<ir::TermId> &Seeds,
              const match::MatchLimits &Limits, ArmResult &Out,
              obs::ProfileLedger *RecordInto = nullptr,
              const char *LedgerKey = "", bool Extract = false) {
  egraph::EGraph G(Ctx);
  std::vector<egraph::ClassId> Roots;
  Roots.reserve(Seeds.size());
  for (ir::TermId T : Seeds)
    Roots.push_back(G.addTerm(T));
  match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
  for (match::Elaborator &E : match::standardElaborators())
    M.addElaborator(std::move(E));
  Timer T;
  Out.Stats = M.saturate(G, Limits);
  double Seconds = T.seconds();
  if (RecordInto)
    match::recordMatchProfile(*RecordInto, LedgerKey, M.axioms(), Out.Stats);
  Out.Partition.assign(Roots.size(), 0);
  for (size_t I = 0; I < Roots.size(); ++I) {
    Out.Partition[I] = static_cast<unsigned>(I);
    for (size_t J = 0; J < I; ++J)
      if (G.sameClass(Roots[I], Roots[J])) {
        Out.Partition[I] = static_cast<unsigned>(J);
        break;
      }
  }
  Out.ExtractCosts.clear();
  if (Extract) {
    alpha::ISA Isa(Ctx);
    for (egraph::ClassId Root : Roots) {
      std::optional<baseline::ExtractResult> Ex =
          baseline::extractBestTerm(G, Isa, Root);
      Out.ExtractCosts.push_back(Ex ? static_cast<long long>(Ex->Cost) : -1);
    }
  }
  return Seconds;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;

  // Tier scale is seed- and rounds-driven; "1x" matches a typical paper
  // GMA. The recorded seed_nodes/nodes fields document the actual
  // multiples. MaxNodes is a non-binding backstop (see the header
  // comment).
  const size_t NodeBackstop = 4u << 20;
  std::vector<Tier> Tiers = {
      {"1x", 3, 4, NodeBackstop, 8, 3},
      {"10x", 24, 12, NodeBackstop, 6, 1},
  };
  if (!Smoke)
    Tiers.push_back({"30x", 72, 16, NodeBackstop, 6, 1});

  banner("E16", Smoke ? "saturation scaling, eager vs deferred vs parallel "
                        "(smoke)"
                      : "saturation scaling, eager vs deferred vs parallel");
  std::printf("%-6s %-10s %-8s %-8s %-9s %-10s %-10s %-10s %-9s %-8s\n",
              "tier", "seed-nodes", "nodes", "classes", "quiesced", "eager-s",
              "deferred-s", "par4-s", "speedup", "attr-ov%");

  enableObsMetrics();
  bool AllOk = true;
  struct Record {
    std::string Tier;
    size_t SeedNodes, Nodes, Classes;
    unsigned Gmas;
    bool Quiesced, ModesAgree;
    double EagerS, DeferredS, Parallel4S, AttrOverheadPct;
  };
  std::vector<Record> Records;

  for (const Tier &T : Tiers) {
    ir::Context Ctx;
    std::vector<ir::TermId> Seeds;
    verify::GmaGenOptions GO;
    GO.MaxTargets = 3;
    GO.MaxDepth = 4;
    GO.NumScalars = 4;
    GO.MemoryPercent = 75;
    GO.StorePercent = 80;
    verify::GmaGen Gen(Ctx, /*Seed=*/16, GO);
    for (unsigned I = 0; I < T.Gmas; ++I) {
      gma::GMA G = Gen.next();
      for (ir::TermId V : G.NewVals)
        Seeds.push_back(V);
      if (G.Guard)
        Seeds.push_back(*G.Guard);
    }
    Seeds.push_back(swapChain(Ctx, T.SwapBytes));
    size_t SeedNodes = 0;
    {
      // Seed size = graph size before any matching.
      egraph::EGraph G(Ctx);
      for (ir::TermId S : Seeds)
        G.addTerm(S);
      SeedNodes = G.numNodes();
    }

    match::MatchLimits Eager, Deferred, Parallel;
    Eager.MaxNodes = Deferred.MaxNodes = Parallel.MaxNodes = T.MaxNodes;
    Eager.MaxRounds = Deferred.MaxRounds = Parallel.MaxRounds = T.MaxRounds;
    // Like MaxNodes, the per-round instance cap must not bind: truncating
    // the pending list keeps an enumeration-order-dependent subset, and
    // enumeration order is the one thing that differs between modes.
    Eager.MaxInstancesPerRound = Deferred.MaxInstancesPerRound =
        Parallel.MaxInstancesPerRound = 1u << 20;
    Eager.EagerRebuild = true;
    Parallel.Threads = 4;
    // The attribution-overhead A/B: deferred with per-axiom profiling off.
    match::MatchLimits NoProf = Deferred;
    NoProf.Profile = false;

    ArmResult EagerR, DeferredR, ParallelR, NoProfR;
    double EagerS = 0, DeferredS = 0, Parallel4S = 0, NoProfS = 0;
    for (int Rep = 0; Rep < T.Reps; ++Rep) {
      // Interleaved min-of-reps, the bench_verify trick against scheduler
      // noise. Stats and partitions are identical across reps.
      double E = runArm(Ctx, Seeds, Eager, EagerR);
      double D = runArm(Ctx, Seeds, Deferred, DeferredR);
      double P = runArm(Ctx, Seeds, Parallel, ParallelR);
      double N = runArm(Ctx, Seeds, NoProf, NoProfR);
      EagerS = Rep ? std::min(EagerS, E) : E;
      DeferredS = Rep ? std::min(DeferredS, D) : D;
      Parallel4S = Rep ? std::min(Parallel4S, P) : P;
      NoProfS = Rep ? std::min(NoProfS, N) : N;
    }
    // The overhead A/B needs min-of-3 even on single-rep tiers — it
    // divides two nearly-equal wall times, so a single noisy sample
    // swamps the few-percent signal.
    for (int Rep = T.Reps; Rep < 3; ++Rep) {
      double D = runArm(Ctx, Seeds, Deferred, DeferredR);
      double N = runArm(Ctx, Seeds, NoProf, NoProfR);
      DeferredS = std::min(DeferredS, D);
      NoProfS = std::min(NoProfS, N);
    }
    double AttrOverheadPct =
        NoProfS > 0 ? 100.0 * (DeferredS - NoProfS) / NoProfS : 0.0;

    bool Quiesced = EagerR.Stats.Quiesced && DeferredR.Stats.Quiesced &&
                    ParallelR.Stats.Quiesced;
    // The gates: eager and deferred must reach the same closure (the
    // rounds-bounded regime guarantees it), and the parallel arm must be
    // bit-identical to the deferred arm, statistics included, for any
    // thread count.
    bool ModesAgree =
        EagerR.Partition == DeferredR.Partition &&
        EagerR.Stats.FinalNodes == DeferredR.Stats.FinalNodes &&
        EagerR.Stats.FinalClasses == DeferredR.Stats.FinalClasses &&
        EagerR.Stats.MatchesFound == DeferredR.Stats.MatchesFound &&
        DeferredR.Partition == ParallelR.Partition &&
        DeferredR.Stats.FinalNodes == ParallelR.Stats.FinalNodes &&
        DeferredR.Stats.FinalClasses == ParallelR.Stats.FinalClasses &&
        DeferredR.Stats.Rounds == ParallelR.Stats.Rounds &&
        DeferredR.Stats.MatchesFound == ParallelR.Stats.MatchesFound &&
        DeferredR.Stats.InstancesAsserted ==
            ParallelR.Stats.InstancesAsserted &&
        DeferredR.Stats.InstancesDeduped == ParallelR.Stats.InstancesDeduped &&
        // Turning attribution off must not change what the scheduler does.
        DeferredR.Partition == NoProfR.Partition &&
        DeferredR.Stats.FinalNodes == NoProfR.Stats.FinalNodes &&
        DeferredR.Stats.FinalClasses == NoProfR.Stats.FinalClasses &&
        DeferredR.Stats.Rounds == NoProfR.Stats.Rounds &&
        DeferredR.Stats.MatchesFound == NoProfR.Stats.MatchesFound;
    if (!ModesAgree) {
      std::printf("tier %s: arms DISAGREE "
                  "(eager %zu/%zu, deferred %zu/%zu, parallel %zu/%zu)\n",
                  T.Name, EagerR.Stats.FinalNodes, EagerR.Stats.FinalClasses,
                  DeferredR.Stats.FinalNodes, DeferredR.Stats.FinalClasses,
                  ParallelR.Stats.FinalNodes, ParallelR.Stats.FinalClasses);
      AllOk = false;
    }
    std::printf("%-6s %-10zu %-8zu %-8zu %-9s %-10.3f %-10.3f %-10.3f "
                "%-9.2f %+.1f%%\n",
                T.Name, SeedNodes, DeferredR.Stats.FinalNodes,
                DeferredR.Stats.FinalClasses, Quiesced ? "yes" : "NO",
                EagerS, DeferredS, Parallel4S,
                DeferredS > 0 ? EagerS / DeferredS : 0.0, AttrOverheadPct);
    Records.push_back(Record{T.Name, SeedNodes, DeferredR.Stats.FinalNodes,
                             DeferredR.Stats.FinalClasses, T.Gmas, Quiesced,
                             ModesAgree, EagerS, DeferredS, Parallel4S,
                             AttrOverheadPct});
  }

  // E20: blind budget-backoff vs ledger-warmed adaptive scheduling, on
  // quiescing inputs (finite builtin closure — see the header comment).
  banner("E20", "adaptive budgets: blind backoff vs ledger-warmed");
  std::printf("%-8s %-7s %-9s %-7s %-11s %-11s %-10s %-8s %-8s\n", "tier",
              "groups", "quiesced", "agree", "blind-raw", "warm-raw",
              "saved", "blind-s", "warm-s");

  struct E20Record {
    std::string Tier;
    unsigned Groups;
    bool Quiesced, Agree;
    uint64_t BlindRaw, WarmRaw;
    unsigned BlindRounds, WarmRounds;
    double BlindS, WarmS;
  };
  std::vector<E20Record> E20Records;

  struct E20Tier {
    const char *Name;
    unsigned Groups;
    int Reps;
  };
  std::vector<E20Tier> E20Tiers = {{"1x", 4, 3}, {"10x", 12, 2}};
  if (!Smoke)
    E20Tiers.push_back({"30x", 24, 1});

  for (const E20Tier &T : E20Tiers) {
    ir::Context Ctx;
    // Figure-2-style groups over distinct variables: mul-by-pow2 feeding
    // an add. Distinct variables keep the groups unmergeable, so the
    // partition gate is meaningful; the closure stays finite.
    std::vector<ir::TermId> Seeds;
    for (unsigned I = 0; I < T.Groups; ++I) {
      ir::TermId V =
          Ctx.Terms.makeVar(("x" + std::to_string(I)).c_str());
      ir::TermId Mul = Ctx.Terms.makeBuiltin(
          Builtin::Mul64, {V, Ctx.Terms.makeConst(I % 2 ? 8 : 4)});
      Seeds.push_back(Ctx.Terms.makeBuiltin(
          Builtin::Add64, {Mul, Ctx.Terms.makeConst(1 + I % 3)}));
    }

    // Blind: a deliberately tight budget, so the backoff ladder has to
    // discover every productive axiom's appetite by doubling. Warm: the
    // same limits, plus the ledger from a profiling pre-run (recorded by
    // the blind arm itself, as `--profile-ledger` would).
    match::MatchLimits Blind;
    Blind.MatchBudget = 2;
    Blind.MaxRounds = 200;
    Blind.MaxNodes = 1u << 20;
    Blind.MaxInstancesPerRound = 1u << 20;

    obs::ProfileLedger Ledger;
    const char *Key = "e20";
    ArmResult BlindR, WarmR;
    double BlindS = 0, WarmS = 0;
    for (int Rep = 0; Rep < T.Reps; ++Rep) {
      obs::ProfileLedger Fresh;
      double B = runArm(Ctx, Seeds, Blind, BlindR, &Fresh, Key,
                        /*Extract=*/true);
      if (Rep == 0)
        Ledger.loadText(Fresh.toJsonl());
      match::MatchLimits Warm = Blind;
      Warm.Adaptive = true;
      Warm.Ledger = &Ledger;
      Warm.LedgerKey = Key;
      double W = runArm(Ctx, Seeds, Warm, WarmR, nullptr, "",
                        /*Extract=*/true);
      BlindS = Rep ? std::min(BlindS, B) : B;
      WarmS = Rep ? std::min(WarmS, W) : W;
    }

    bool Quiesced = BlindR.Stats.Quiesced && WarmR.Stats.Quiesced;
    // The hard gates: identical closure (partition, counts, extraction
    // costs) and strictly fewer raw match attempts for the warmed run.
    bool Agree = Quiesced && BlindR.Partition == WarmR.Partition &&
                 BlindR.Stats.FinalNodes == WarmR.Stats.FinalNodes &&
                 BlindR.Stats.FinalClasses == WarmR.Stats.FinalClasses &&
                 BlindR.ExtractCosts == WarmR.ExtractCosts &&
                 WarmR.Stats.MatchesFound < BlindR.Stats.MatchesFound &&
                 WarmR.Stats.AdaptiveSeeded > 0;
    if (!Agree) {
      std::printf(
          "tier %s: adaptive arm FAILED its gates "
          "(quiesced %d/%d, nodes %zu/%zu, classes %zu/%zu, raw %llu/%llu, "
          "seeded %llu)\n",
          T.Name, BlindR.Stats.Quiesced ? 1 : 0,
          WarmR.Stats.Quiesced ? 1 : 0, BlindR.Stats.FinalNodes,
          WarmR.Stats.FinalNodes, BlindR.Stats.FinalClasses,
          WarmR.Stats.FinalClasses,
          (unsigned long long)BlindR.Stats.MatchesFound,
          (unsigned long long)WarmR.Stats.MatchesFound,
          (unsigned long long)WarmR.Stats.AdaptiveSeeded);
      AllOk = false;
    }
    double SavedPct =
        BlindR.Stats.MatchesFound
            ? 100.0 *
                  (double)(BlindR.Stats.MatchesFound -
                           WarmR.Stats.MatchesFound) /
                  (double)BlindR.Stats.MatchesFound
            : 0.0;
    std::printf("%-8s %-7u %-9s %-7s %-11llu %-11llu %6.1f%%    %-8.3f "
                "%-8.3f\n",
                T.Name, T.Groups, Quiesced ? "yes" : "NO",
                Agree ? "yes" : "NO",
                (unsigned long long)BlindR.Stats.MatchesFound,
                (unsigned long long)WarmR.Stats.MatchesFound, SavedPct,
                BlindS, WarmS);
    E20Records.push_back(E20Record{
        T.Name, T.Groups, Quiesced, Agree, BlindR.Stats.MatchesFound,
        WarmR.Stats.MatchesFound, BlindR.Stats.Rounds, WarmR.Stats.Rounds,
        BlindS, WarmS});
  }

  writeMetricsSummary("BENCH_egraph_scale.metrics.txt");

  std::FILE *Out = std::fopen("BENCH_egraph_scale.json", "w");
  if (Out) {
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Records.size(); ++I) {
      const Record &R = Records[I];
      // speedup_pct fields carry the headline ratios; the _pct suffix
      // keeps bench_compare from exact-matching a timing-derived number.
      std::fprintf(
          Out,
          "  {\"tier\": \"%s\", \"gmas\": %u, \"seed_nodes\": %zu, "
          "\"nodes\": %zu, \"classes\": %zu, \"quiesced\": %s, "
          "\"modes_agree\": %s, \"eager_s\": %.6f, \"deferred_s\": %.6f, "
          "\"parallel4_s\": %.6f, \"speedup_pct\": %.1f, "
          "\"parallel_speedup_pct\": %.1f, \"attr_overhead_pct\": %.1f}%s\n",
          R.Tier.c_str(), R.Gmas, R.SeedNodes, R.Nodes, R.Classes,
          R.Quiesced ? "true" : "false", R.ModesAgree ? "true" : "false",
          R.EagerS, R.DeferredS, R.Parallel4S,
          R.DeferredS > 0 ? 100.0 * R.EagerS / R.DeferredS : 0.0,
          R.Parallel4S > 0 ? 100.0 * R.EagerS / R.Parallel4S : 0.0,
          R.AttrOverheadPct,
          I + 1 < Records.size() || !E20Records.empty() ? "," : "");
    }
    for (size_t I = 0; I < E20Records.size(); ++I) {
      const E20Record &R = E20Records[I];
      // blind_raw/warm_raw are deterministic match counts — exact-gated
      // by bench_compare, like the node/class counts above.
      std::fprintf(
          Out,
          "  {\"tier\": \"e20-%s\", \"groups\": %u, \"quiesced\": %s, "
          "\"adaptive_agrees\": %s, \"blind_raw\": %llu, "
          "\"warm_raw\": %llu, \"blind_rounds\": %u, \"warm_rounds\": %u, "
          "\"blind_s\": %.6f, \"warm_s\": %.6f, \"raw_saved_pct\": %.1f}%s\n",
          R.Tier.c_str(), R.Groups, R.Quiesced ? "true" : "false",
          R.Agree ? "true" : "false", (unsigned long long)R.BlindRaw,
          (unsigned long long)R.WarmRaw, R.BlindRounds, R.WarmRounds,
          R.BlindS, R.WarmS,
          R.BlindRaw ? 100.0 * (double)(R.BlindRaw - R.WarmRaw) /
                           (double)R.BlindRaw
                     : 0.0,
          I + 1 < E20Records.size() ? "," : "");
    }
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    std::printf("\nwrote BENCH_egraph_scale.json (%zu records)\n",
                Records.size() + E20Records.size());
  } else {
    std::printf("\ncould not write BENCH_egraph_scale.json\n");
    AllOk = false;
  }
  return AllOk ? 0 : 1;
}
