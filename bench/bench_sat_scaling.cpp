//===- bench/bench_sat_scaling.cpp - E9: SAT problem growth ---------------===//
//
// Regenerates the section 6/8 observation that constraint-generation size
// grows with the cycle budget K (the paper's byteswap4 numbers: 1639 vars
// / 4613 clauses at K=4 up to 9203 / 26415 at K=8), and runs the two
// encoder ablations DESIGN.md calls out:
//
//   * ladder vs pairwise at-most-one encodings;
//   * two-cluster (EV6-faithful) vs single-cluster availability model.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"
#include "gma/GMA.h"
#include "support/Timer.h"

#include <cstdio>

using namespace denali;
using namespace denali::bench;

static void sweep(const char *Title, sat::AtMostOneStyle Style,
                  bool SingleCluster) {
  std::printf("\n-- %s --\n", Title);
  std::printf("%-6s %-10s %-12s %-8s %-10s %-10s\n", "K", "vars", "clauses",
              "result", "encode-s", "solve-s");
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = 8;
  Opt.options().Search.Encoding.AmoStyle = Style;
  Opt.options().Search.Encoding.SingleCluster = SingleCluster;
  driver::CompileResult R = Opt.compileSource(byteswapSource(4));
  if (!R.ok() || !R.Gmas[0].ok()) {
    std::printf("FAILED: %s\n",
                (R.ok() ? R.Gmas[0].Error : R.Error).c_str());
    return;
  }
  for (const codegen::Probe &P : R.Gmas[0].Search.Probes)
    std::printf("%-6u %-10d %-12llu %-8s %-10.3f %-10.3f\n", P.Cycles,
                P.Stats.Vars,
                static_cast<unsigned long long>(P.Stats.Clauses),
                P.Result == sat::SolveResult::Sat ? "sat" : "unsat",
                P.EncodeSeconds, P.SolveSeconds);
  std::printf("optimum: %u cycles\n", R.Gmas[0].Search.Cycles);
}

int main() {
  banner("E9", "byteswap4: SAT problem size vs cycle budget K");
  std::printf("paper: 1639 vars / 4613 clauses (K=4) ... 9203 / 26415 "
              "(K=8); <0.3 s total SAT\n");

  sweep("default: ladder AMO, two clusters", sat::AtMostOneStyle::Ladder,
        /*SingleCluster=*/false);
  sweep("ablation: pairwise AMO", sat::AtMostOneStyle::Pairwise,
        /*SingleCluster=*/false);
  sweep("ablation: single cluster (no cross-cluster delay)",
        sat::AtMostOneStyle::Ladder, /*SingleCluster=*/true);

  banner("E9c", "certified refutations (RUP-checked lower bounds)");
  {
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 8;
    Opt.options().Search.CertifyRefutations = true;
    driver::CompileResult R = Opt.compileSource(byteswapSource(4));
    if (R.ok() && R.Gmas[0].ok()) {
      std::printf("%-6s %-8s %-12s %-10s %-12s\n", "K", "result",
                  "proof-steps", "checked", "check-s");
      for (const codegen::Probe &P : R.Gmas[0].Search.Probes)
        std::printf("%-6u %-8s %-12zu %-10s %-12.3f\n", P.Cycles,
                    P.Result == sat::SolveResult::Sat ? "sat" : "unsat",
                    P.ProofSteps,
                    P.Result == sat::SolveResult::Unsat
                        ? (P.ProofChecked ? "yes" : "NO")
                        : "-",
                    P.ProofCheckSeconds);
      std::printf("(each 'unsat' row is an independently RUP-checked "
                  "certificate that K cycles are impossible)\n");
    }
  }

  banner("E9b", "linear vs binary budget search (probe counts)");
  for (auto Strategy : {codegen::SearchStrategy::Linear,
                        codegen::SearchStrategy::Binary}) {
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 10;
    Opt.options().Search.Strategy = Strategy;
    Timer T;
    driver::CompileResult R = Opt.compileSource(byteswapSource(4));
    if (!R.ok() || !R.Gmas[0].ok())
      continue;
    std::printf("  %-8s: %zu probes, optimum %u cycles, %.2f s total\n",
                Strategy == codegen::SearchStrategy::Linear ? "linear"
                                                            : "binary",
                R.Gmas[0].Search.Probes.size(), R.Gmas[0].Search.Cycles,
                T.seconds());
  }
  return 0;
}
