//===- bench/bench_misc.cpp - E8: rowop, lcp2, copy loop ------------------===//
//
// Regenerates the remaining section 8 tests: the matrix routine rowop, the
// least common power of two of two registers, and the section 3 copy-loop
// GMA (memory-bound, exercising the select/store machinery). Each row
// reports cycles, instruction count, and differential-verification status.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"

#include <cstdio>

using namespace denali;
using namespace denali::bench;
using denali::ir::Builtin;

static void reportSource(const char *Name, const char *Source,
                         unsigned MaxCycles) {
  driver::Superoptimizer Opt;
  Opt.options().Search.MaxCycles = MaxCycles;
  driver::CompileResult R = Opt.compileSource(Source);
  if (!R.ok()) {
    std::printf("%-14s FRONTEND FAILED: %s\n", Name, R.Error.c_str());
    return;
  }
  for (driver::GmaResult &G : R.Gmas) {
    if (!G.ok()) {
      std::printf("%-14s %-12s FAILED: %s\n", Name, G.Gma.Name.c_str(),
                  G.Error.c_str());
      continue;
    }
    auto VerifyErr = Opt.verify(G);
    std::printf("%-14s %-14s %-8u %-8zu %-8s\n", Name, G.Gma.Name.c_str(),
                G.Search.Cycles, G.Search.Program.Instrs.size(),
                VerifyErr ? VerifyErr->c_str() : "ok");
  }
}

int main() {
  banner("E8", "the remaining section 8 tests");
  std::printf("%-14s %-14s %-8s %-8s %-8s\n", "problem", "gma", "cycles",
              "instrs", "verify");

  reportSource("rowop", R"(
(\procdecl rowop ((row (\ref long)) (row0 (\ref long)) (k long)) long
  (:= ((\deref row) (\add64 (\deref row) (\mul64 k (\deref row0))))))
)", 16);

  reportSource("rowop-miss", R"(
(\procdecl rowop_miss ((row (\ref long)) (row0 (\ref long)) (k long)) long
  (:= ((\deref row) (\add64 (\deref row) (\mul64 k (\deref row0 \miss))))))
)", 26);

  reportSource("copyloop", R"(
(\procdecl copystep ((p (\ref long)) (q (\ref long)) (r (\ref long))) long
  (\do (-> (\cmpult p r)
    (\semi
      (:= ((\deref p) (\deref q)))
      (:= (p (+ p 8)) (q (+ q 8)))))))
)", 12);

  reportSource("copyloop-x2", R"(
(\procdecl copystep2 ((p (\ref long)) (q (\ref long)) (r (\ref long))) long
  (\do (\unroll 2) (-> (\cmpult p r)
    (\semi
      (:= ((\deref p) (\deref q)))
      (:= (p (+ p 8)) (q (+ q 8)))))))
)", 12);

  // lcp2 through the term API (no source form needed).
  {
    driver::Superoptimizer Opt;
    ir::Context &Ctx = Opt.context();
    ir::TermId AB = Ctx.Terms.makeBuiltin(
        Builtin::Or64, {Ctx.Terms.makeVar("a"), Ctx.Terms.makeVar("b")});
    ir::TermId Goal = Ctx.Terms.makeBuiltin(
        Builtin::And64,
        {AB, Ctx.Terms.makeBuiltin(Builtin::Neg64, {AB})});
    driver::GmaResult R = Opt.compileGoals("lcp2", {{"res", Goal}});
    if (R.ok()) {
      auto VerifyErr = Opt.verify(R);
      std::printf("%-14s %-14s %-8u %-8zu %-8s\n", "lcp2", "lcp2",
                  R.Search.Cycles, R.Search.Program.Instrs.size(),
                  VerifyErr ? VerifyErr->c_str() : "ok");
    } else {
      std::printf("%-14s FAILED: %s\n", "lcp2", R.Error.c_str());
    }
  }

  reportSource("absdiff-if", R"(
(\procdecl absdiff ((a long) (b long)) long
  (\var (r long 0)
  (\semi
    (\if (\cmpult a b) (:= (r (\sub64 b a))) (:= (r (\sub64 a b))))
    (:= (\res r)))))
)", 8);

  reportSource("assume-align", R"(
(\procdecl tagged ((p (\ref long)) (tag long)) long
  (\semi
    (\assume (eq (\and64 p tag) 0))
    (:= (\res (\add64 (\mul64 (\or64 p tag) 4) 1)))))
)", 10);

  // A register-rotation GMA exercising the same-target caveat of section 7
  // ((reg6, reg7) := (reg6+reg7, reg6) — simultaneous semantics).
  reportSource("rotate", R"(
(\procdecl rot ((a long) (b long)) long
  (\semi (:= (a (\add64 a b)) (b a)) (:= (\res (\xor64 a b)))))
)", 8);

  return 0;
}
