//===- bench/BenchUtil.h - Shared helpers for experiment harnesses --------===//
///
/// \file
/// Small shared pieces for the table-reproducing benchmark harnesses: the
/// byteswap source generator (Figure 3) and row printing.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_BENCH_BENCHUTIL_H
#define DENALI_BENCH_BENCHUTIL_H

#include "support/StringExtras.h"

#include <cstdio>
#include <string>

namespace denali {
namespace bench {

/// The Figure 3 byteswap program for \p N bytes.
inline std::string byteswapSource(unsigned N) {
  std::string Body = "(\\var (r long 0)\n  (\\semi\n";
  for (unsigned I = 0; I < N; ++I)
    Body += strFormat("    (:= (r (\\storeb r %u (\\selectb a %u))))\n", I,
                      N - 1 - I);
  Body += "    (:= (\\res r))))";
  return strFormat("(\\procdecl byteswap%u ((a long)) long\n  %s)", N,
                   Body.c_str());
}

inline void banner(const char *Id, const char *Title) {
  std::printf("\n=== %s: %s ===\n", Id, Title);
}

} // namespace bench
} // namespace denali

#endif // DENALI_BENCH_BENCHUTIL_H
