//===- bench/BenchUtil.h - Shared helpers for experiment harnesses --------===//
///
/// \file
/// Small shared pieces for the table-reproducing benchmark harnesses: the
/// byteswap source generator (Figure 3) and row printing.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_BENCH_BENCHUTIL_H
#define DENALI_BENCH_BENCHUTIL_H

#include "obs/Obs.h"
#include "support/StringExtras.h"

#include <cstdio>
#include <string>

namespace denali {
namespace bench {

/// The Figure 3 byteswap program for \p N bytes.
inline std::string byteswapSource(unsigned N) {
  std::string Body = "(\\var (r long 0)\n  (\\semi\n";
  for (unsigned I = 0; I < N; ++I)
    Body += strFormat("    (:= (r (\\storeb r %u (\\selectb a %u))))\n", I,
                      N - 1 - I);
  Body += "    (:= (\\res r))))";
  return strFormat("(\\procdecl byteswap%u ((a long)) long\n  %s)", N,
                   Body.c_str());
}

/// The packet-checksum loop body for \p Lanes lanes, with the
/// program-specific ones-complement add/carry axioms (E5/E12).
inline std::string checksumSource(unsigned Lanes) {
  std::string Src = R"(
(\opdecl carry (long long) long)
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) a))))
(\axiom (forall (a b) (pats (carry a b))
  (eq (carry a b) (\cmpult (\add64 a b) b))))
(\opdecl add (long long) long)
(\axiom (forall (a b c) (pats (add a (add b c)))
  (eq (add a (add b c)) (add (add a b) c))))
(\axiom (forall (a b c) (pats (add (add a b) c))
  (eq (add a (add b c)) (add (add a b) c))))
(\axiom (forall (a b) (pats (add a b)) (eq (add a b) (add b a))))
(\axiom (forall (a b) (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (carry a b)))))
(\procdecl checksum_loop ((ptr (\ref long)) (ptrend (\ref long))
)";
  for (unsigned L = 1; L <= Lanes; ++L)
    Src += strFormat("  (sum%u long) (v%u long)\n", L, L);
  Src += ") long\n  (\\do (-> (< ptr ptrend)\n    (\\semi\n      (:=";
  for (unsigned L = 1; L <= Lanes; ++L)
    Src += strFormat(" (sum%u (add sum%u v%u))", L, L, L);
  Src += strFormat(")\n      (:= (ptr (+ ptr %u)))\n", 8 * Lanes);
  for (unsigned L = 1; L <= Lanes; ++L)
    Src += strFormat("      (:= (v%u (\\deref (+ ptr %u))))\n", L,
                     8 * (L - 1));
  Src += "))))"; // \semi, ->, \do, \procdecl.
  return Src;
}

/// A halfword permute (swap the two low 16-bit halves) built from shifts,
/// ands, and ors only — the instruction core every machine-model backend
/// shares, so the cross-backend bench compiles it natively everywhere (no
/// byte-op rewriting required, unlike byteswapSource).
inline std::string permuteSource() {
  return R"((\procdecl permute16 ((a long)) long
  (\var (r long 0)
  (\semi
    (:= (r (\or64 (\shl64 (\and64 a 65535) 16)
                  (\and64 (\shr64 a 16) 65535))))
    (:= (\res r))))))";
}

inline void banner(const char *Id, const char *Title) {
  std::printf("\n=== %s: %s ===\n", Id, Title);
}

/// Switches the obs layer on for metrics collection (no trace outputs), so
/// the harness's pipeline counters accumulate in the global registry.
inline void enableObsMetrics() {
  obs::ObsConfig C;
  C.Enabled = true;
  obs::configure(C);
}

/// Writes the registry's metrics summary to \p Path (next to the
/// BENCH_*.json trend record; perf_smoke feeds it to `obs_report metrics`).
inline void writeMetricsSummary(const char *Path) {
  if (obs::writeTextFile(Path, obs::Registry::global().summaryText()))
    std::printf("wrote %s\n", Path);
}

} // namespace bench
} // namespace denali

#endif // DENALI_BENCH_BENCHUTIL_H
