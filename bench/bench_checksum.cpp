//===- bench/bench_checksum.cpp - E5: the packet checksum -----------------===//
//
// Regenerates the paper's largest challenge (section 8, Figures 5/6): the
// ones-complement checksum with program-specific add/carry axioms,
// hand-specified software pipelining, and word parallelism. The paper
// reports 10 cycles / 31 instructions for the loop body after ~4 hours;
// the shape to reproduce is (a) the pipeline compiles and verifies,
// (b) problem size grows with the unroll factor, (c) SAT/matching dominate
// the cost as the problem grows.
//
// The sweep compiles the loop body at unroll factors 1, 2, 4 (lanes).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Superoptimizer.h"

#include <cstdio>
#include <string>

using namespace denali;
using namespace denali::bench;

int main() {
  banner("E5", "checksum loop body vs unroll factor (lanes)");
  std::printf("paper: 4-lane loop body = 10 cycles, 31 instructions "
              "(4 hours on a 667MHz Alpha)\n\n");
  std::printf("%-7s %-8s %-8s %-12s %-10s %-12s %-10s %-8s\n", "lanes",
              "cycles", "instrs", "enodes", "match-s", "sat-vars", "sat-s",
              "verify");
  for (unsigned Lanes : {1u, 2u, 4u}) {
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 12;
    Opt.options().Matching.MaxNodes = 60000;
    driver::CompileResult R = Opt.compileSource(checksumSource(Lanes));
    if (!R.ok() || R.Gmas.empty() || !R.Gmas[0].ok()) {
      std::printf("%-7u FAILED: %s\n", Lanes,
                  (R.ok() && !R.Gmas.empty() ? R.Gmas[0].Error : R.Error)
                      .c_str());
      continue;
    }
    driver::GmaResult &G = R.Gmas[0];
    auto VerifyErr = Opt.verify(G);
    double SatSeconds = 0;
    int MaxVars = 0;
    for (const codegen::Probe &P : G.Search.Probes) {
      SatSeconds += P.SolveSeconds;
      MaxVars = std::max(MaxVars, P.Stats.Vars);
    }
    std::printf("%-7u %-8u %-8zu %-12zu %-10.2f %-12d %-10.3f %-8s\n", Lanes,
                G.Search.Cycles, G.Search.Program.Instrs.size(),
                G.Matching.FinalNodes, G.MatchSeconds, MaxVars, SatSeconds,
                VerifyErr ? "FAIL" : "ok");
  }

  banner("E5c", "automatic \\pipeline vs hand-pipelined vs plain loop");
  std::printf("(the paper hand-specified pipelining; \\pipeline implements "
              "its unimplemented design)\n");
  {
    auto compileLoop = [](const char *Annot) {
      std::string Src = strFormat(R"(
(\opdecl add (long long) long)
(\axiom (forall (a b) (pats (add a b))
  (eq (add a b) (\add64 (\add64 a b) (\cmpult (\add64 a b) a)))))
(\procdecl f ((ptr (\ref long)) (ptrend (\ref long)) (sum long)) long
  (\do %s (-> (\cmpult ptr ptrend)
    (\semi (:= (sum (add sum (\deref ptr))))
           (:= (ptr (+ ptr 8)))))))
)", Annot);
      driver::Superoptimizer Opt;
      Opt.options().Search.MaxCycles = 12;
      driver::CompileResult R = Opt.compileSource(Src);
      unsigned Cycles = 0;
      if (R.ok())
        for (driver::GmaResult &G : R.Gmas)
          if (G.ok())
            Cycles = G.Search.Cycles; // Loop body is last.
      return Cycles;
    };
    std::printf("  plain loop body:      %u cycles\n", compileLoop(""));
    std::printf("  \\pipeline loop body:  %u cycles\n",
                compileLoop("(\\pipeline)"));
  }

  banner("E5b", "the 4-lane loop body program");
  {
    driver::Superoptimizer Opt;
    Opt.options().Search.MaxCycles = 12;
    Opt.options().Matching.MaxNodes = 60000;
    driver::CompileResult R = Opt.compileSource(checksumSource(4));
    if (R.ok() && R.Gmas[0].ok())
      std::printf("%s\n", R.Gmas[0].Search.Program.toString().c_str());
  }
  return 0;
}
