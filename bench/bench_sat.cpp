//===- bench/bench_sat.cpp - CDCL solver microbenchmarks ------------------===//
//
// Microbenchmarks of the SAT substrate (the CHAFF stand-in): pigeonhole
// refutations (hard UNSAT), random 3-SAT near the phase transition, and
// the cardinality encodings used by the scheduler constraints.
//
//===----------------------------------------------------------------------===//

#include "sat/Encodings.h"
#include "sat/Solver.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace denali::sat;

static void addPigeonhole(Solver &S, int Pigeons, int Holes) {
  auto VarOf = [&](int P, int H) { return P * Holes + H; };
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  for (int P = 0; P < Pigeons; ++P) {
    ClauseLits Row;
    for (int H = 0; H < Holes; ++H)
      Row.push_back(Lit::pos(VarOf(P, H)));
    S.addClause(Row);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(Lit::neg(VarOf(P1, H)), Lit::neg(VarOf(P2, H)));
}

static void BM_SatPigeonhole(benchmark::State &State) {
  int Holes = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Solver S;
    addPigeonhole(S, Holes + 1, Holes);
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7)->Arg(8);

static void BM_SatRandom3Sat(benchmark::State &State) {
  int NumVars = static_cast<int>(State.range(0));
  int NumClauses = static_cast<int>(NumVars * 4.26);
  std::mt19937 Rng(12345);
  for (auto _ : State) {
    Solver S;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    for (int I = 0; I < NumClauses; ++I) {
      ClauseLits C;
      for (int J = 0; J < 3; ++J)
        C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() & 1));
      S.addClause(C);
    }
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

static void BM_AtMostOneEncoding(benchmark::State &State) {
  auto Style = static_cast<AtMostOneStyle>(State.range(1));
  int Width = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Solver S;
    ClauseLits Group;
    for (int I = 0; I < Width; ++I)
      Group.push_back(Lit::pos(S.newVar()));
    addAtMostOne(S, Group, Style);
    benchmark::DoNotOptimize(S.numClauses());
  }
}
BENCHMARK(BM_AtMostOneEncoding)
    ->Args({64, 0 /*Pairwise*/})
    ->Args({64, 1 /*Ladder*/})
    ->Args({256, 0})
    ->Args({256, 1});

BENCHMARK_MAIN();
