//===- bench/bench_rewriter.cpp - E10: E-graph vs rewriting engine --------===//
//
// Regenerates the section 5 argument for the E-graph over conventional
// rewriting: "a transformation that improves efficiency may cause the
// failure of subsequent matches that would have produced even greater
// gains." The greedy cost-directed rewriter strength-reduces reg6*4 into
// reg6<<2 and thereby loses the s4addl pattern; Denali keeps both forms in
// the E-graph and lets the SAT solver pick.
//
// Table: goal, Denali cycles, rewriter+list-scheduler cycles, naive
// codegen cycles.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "axioms/BuiltinAxioms.h"
#include "baseline/EGraphExtract.h"
#include "baseline/Rewriter.h"
#include "egraph/EGraph.h"
#include "match/Elaborate.h"
#include "match/Matcher.h"
#include "baseline/TreeCodegen.h"
#include "driver/Superoptimizer.h"

#include <cstdio>

using namespace denali;
using namespace denali::bench;
using denali::ir::Builtin;

namespace {

ir::TermId fig2(ir::Context &Ctx) {
  return Ctx.Terms.makeBuiltin(
      Builtin::Add64,
      {Ctx.Terms.makeBuiltin(Builtin::Mul64, {Ctx.Terms.makeVar("reg6"),
                                              Ctx.Terms.makeConst(4)}),
       Ctx.Terms.makeConst(1)});
}

ir::TermId scaled8(ir::Context &Ctx) {
  return Ctx.Terms.makeBuiltin(
      Builtin::Add64,
      {Ctx.Terms.makeBuiltin(Builtin::Mul64, {Ctx.Terms.makeVar("i"),
                                              Ctx.Terms.makeConst(8)}),
       Ctx.Terms.makeVar("base")});
}

ir::TermId maskCombine(ir::Context &Ctx) {
  // (x & 0xffff) | (y << 16): zapnot + sll + bis for everyone; parity case.
  return Ctx.Terms.makeBuiltin(
      Builtin::Or64,
      {Ctx.Terms.makeBuiltin(Builtin::And64, {Ctx.Terms.makeVar("x"),
                                              Ctx.Terms.makeConst(0xffff)}),
       Ctx.Terms.makeBuiltin(Builtin::Shl64, {Ctx.Terms.makeVar("y"),
                                              Ctx.Terms.makeConst(16)})});
}

ir::TermId swapN(ir::Context &Ctx, unsigned N) {
  ir::TermId A = Ctx.Terms.makeVar("a");
  ir::TermId R = Ctx.Terms.makeConst(0);
  for (unsigned I = 0; I < N; ++I)
    R = Ctx.Terms.makeBuiltin(
        Builtin::StoreB,
        {R, Ctx.Terms.makeConst(I),
         Ctx.Terms.makeBuiltin(Builtin::SelectB,
                               {A, Ctx.Terms.makeConst(N - 1 - I)})});
  return R;
}

ir::TermId swap4(ir::Context &Ctx) { return swapN(Ctx, 4); }

ir::TermId swap2(ir::Context &Ctx) {
  ir::TermId A = Ctx.Terms.makeVar("a");
  ir::TermId Inner = Ctx.Terms.makeBuiltin(
      Builtin::StoreB,
      {Ctx.Terms.makeConst(0), Ctx.Terms.makeConst(0),
       Ctx.Terms.makeBuiltin(Builtin::SelectB, {A, Ctx.Terms.makeConst(1)})});
  return Ctx.Terms.makeBuiltin(
      Builtin::StoreB,
      {Inner, Ctx.Terms.makeConst(1),
       Ctx.Terms.makeBuiltin(Builtin::SelectB, {A, Ctx.Terms.makeConst(0)})});
}

struct Row {
  const char *Name;
  ir::TermId (*Build)(ir::Context &);
};

} // namespace

int main() {
  banner("E10",
         "Denali vs equality-saturation extraction vs rewriter vs naive");
  std::printf("(egg-style extraction shares Denali's E-graph but picks one "
              "term by local cost,\n without scheduling awareness)\n");
  std::printf("%-24s %-9s %-14s %-16s %-9s\n", "goal", "denali",
              "egraph+extract", "rewrite+sched", "naive");
  const Row Rows[] = {
      {"reg6*4 + 1 (Fig 2)", fig2},
      {"i*8 + base", scaled8},
      {"(x&0xffff)|(y<<16)", maskCombine},
      {"swap2", swap2},
      {"swap4 (Fig 4)", swap4},
  };
  for (const Row &R : Rows) {
    // Denali.
    driver::Superoptimizer Opt;
    ir::Context &Ctx = Opt.context();
    ir::TermId Goal = R.Build(Ctx);
    driver::GmaResult DR = Opt.compileGoals("cmp", {{"res", Goal}});
    // Equality saturation + extraction over the same axioms.
    egraph::EGraph G(Ctx);
    egraph::ClassId GoalClass = G.addTerm(Goal);
    {
      match::Matcher M(axioms::loadBuiltinAxioms(Ctx));
      for (match::Elaborator &E : match::standardElaborators())
        M.addElaborator(std::move(E));
      match::MatchLimits Limits;
      Limits.MaxNodes = 30000;
      M.saturate(G, Limits);
    }
    std::string Err;
    auto Extracted = baseline::extractAndSchedule(
        G, Opt.isa(), {{"res", G.find(GoalClass)}}, "es", &Err);
    // Greedy rewriter, then the same list scheduler as the naive baseline.
    baseline::RewriteResult RW = baseline::greedyRewrite(Ctx, Opt.isa(), Goal);
    auto Scheduled = baseline::naiveCodegen(Ctx, Opt.isa(),
                                            {{"res", RW.Term}}, "rw", &Err);
    auto Naive =
        baseline::naiveCodegen(Ctx, Opt.isa(), {{"res", Goal}}, "nv", &Err);
    std::printf("%-24s %-9s %-14s %-16s %-9s\n", R.Name,
                DR.ok() ? std::to_string(DR.Search.Cycles).c_str() : "FAIL",
                Extracted ? std::to_string(Extracted->Cycles).c_str() : "-",
                Scheduled ? std::to_string(Scheduled->Cycles).c_str() : "-",
                Naive ? std::to_string(Naive->Cycles).c_str() : "-");
  }
  std::printf("\n(Fig 2 row: the rewriter reaches (add64 (shl64 reg6 2) 1) "
              "— two instructions — because strength reduction destroyed "
              "the s4addl pattern; Denali's E-graph keeps both and emits "
              "one s4addq.)\n");
  return 0;
}
