//===- codegen/Encoder.h - E-graph -> SAT constraint generation -*- C++ -*-===//
///
/// \file
/// The constraint generator (paper, section 6): formulates "some K-cycle
/// EV6 program computes all the goal classes" as propositional clauses over
///
///   L(t, u, i) — a computation of machine term t is Launched on unit u at
///                the beginning of cycle i;
///   B(q, c, i) — the value of class q has been computed By the end of
///                cycle i, on cluster c.
///
/// The paper's five conditions appear as:
///   1. launch/completion linkage — folded into the B definition (the
///      paper's A variables are eliminated by inlining the latency);
///   2. operands before launch — L(t,u,i) => B(arg, cluster(u), i-1);
///   3. class computed iff some member computed — the B iff-definition;
///   4. issue exclusivity — at-most-one launch per (cycle, unit), which on
///      the quad-issue EV6 also bounds the per-cycle total at 4;
///   5. goals computed within K cycles — B(goal, *, K-1).
///
/// Additional constraints (paper, section 7): guard-before-unsafe-operation
/// ordering, and memory discipline (loads of a memory state may not follow
/// the store that overwrites it; each store launches at most once).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_CODEGEN_ENCODER_H
#define DENALI_CODEGEN_ENCODER_H

#include "codegen/Universe.h"
#include "machine/Program.h"
#include "sat/Encodings.h"
#include "sat/Solver.h"

#include <optional>
#include <unordered_map>

namespace denali {
namespace codegen {

/// Options of one encoding run.
struct EncoderOptions {
  unsigned Cycles = 4; ///< The budget K (the ceiling MaxCycles if Monotone).
  sat::AtMostOneStyle AmoStyle = sat::AtMostOneStyle::Ladder;
  /// Ablation: model a single cluster (no cross-cluster delay, B indexed
  /// by one cluster).
  bool SingleCluster = false;
  /// If set, loads and stores may only launch after this class (the GMA
  /// guard) has been computed.
  std::optional<egraph::ClassId> GuardClass;
  /// Monotone mode: encode once up to Cycles with one activation literal
  /// per budget K in [1, Cycles] (see budgetAssumption), so a single
  /// incremental solver serves the whole probe ladder. Without an
  /// assumption the instance is trivially satisfiable (every budget
  /// deadline is gated), so it only makes sense with solve(assumptions).
  bool Monotone = false;
  /// Refutation attribution: stamp every emitted clause with a ClauseFamily
  /// tag (Solver::setClauseTag) so an UNSAT core can be folded into a
  /// bottleneck report. Off by default — only dedicated explain probes pay
  /// for it.
  bool TagClauses = false;
};

/// Families a CNF clause can belong to, for refutation attribution. The
/// values match the EncodingStats per-family counters.
enum class ClauseFamily : uint32_t {
  None = 0,
  Definition = 1,  ///< Condition 3: B iff-definitions.
  Operand = 2,     ///< Condition 2: operands before launch.
  Exclusivity = 3, ///< Condition 4: issue exclusivity.
  Deadline = 4,    ///< Condition 5: goal deadlines.
  Guard = 5,       ///< Section 7: guard-before-unsafe.
  Memory = 6,      ///< Section 7: memory discipline.
  Monotone = 7,    ///< Budget-ladder activation clauses.
};

/// Packs a clause tag: family in bits 28-31, cycle+1 in bits 20-27 (0 =
/// not cycle-specific), unit index+1 in bits 16-19 (0 = not unit-specific),
/// and a 16-bit family-specific detail (term index, truncated class id, or
/// goal index). Nonzero whenever the family is.
inline uint32_t makeClauseTag(ClauseFamily F, unsigned Cycle = ~0u,
                              unsigned UnitIdx = ~0u, uint32_t Detail = 0) {
  uint32_t T = static_cast<uint32_t>(F) << 28;
  if (Cycle != ~0u)
    T |= ((Cycle + 1) & 0xffu) << 20;
  if (UnitIdx != ~0u)
    T |= ((UnitIdx + 1) & 0xfu) << 16;
  return T | (Detail & 0xffffu);
}
inline ClauseFamily tagFamily(uint32_t T) {
  return static_cast<ClauseFamily>(T >> 28);
}
inline bool tagHasCycle(uint32_t T) { return ((T >> 20) & 0xffu) != 0; }
inline unsigned tagCycle(uint32_t T) { return ((T >> 20) & 0xffu) - 1; }
inline bool tagHasUnit(uint32_t T) { return ((T >> 16) & 0xfu) != 0; }
inline unsigned tagUnit(uint32_t T) { return ((T >> 16) & 0xfu) - 1; }
inline uint32_t tagDetail(uint32_t T) { return T & 0xffffu; }

/// Human-readable family name ("operand", "exclusivity", ...).
const char *clauseFamilyName(ClauseFamily F);

/// Size statistics of one encoding (reported like the paper's "1639
/// variables and 4613 clauses").
struct EncodingStats {
  unsigned Cycles = 0;
  int Vars = 0;
  uint64_t Clauses = 0;
  size_t MachineTerms = 0;
  size_t Classes = 0;
  // Per-family clause counts (they sum to Clauses): the paper's five
  // conditions plus the section-7 extensions and the monotone ladder.
  uint64_t DefinitionClauses = 0;  ///< Condition 3: B iff-definitions.
  uint64_t OperandClauses = 0;     ///< Condition 2: operands before launch.
  uint64_t ExclusivityClauses = 0; ///< Condition 4: issue exclusivity.
  uint64_t DeadlineClauses = 0;    ///< Condition 5: goal deadlines.
  uint64_t GuardClauses = 0;       ///< Section 7: guard-before-unsafe.
  uint64_t MemoryClauses = 0;      ///< Section 7: memory discipline.
  uint64_t MonotoneClauses = 0;    ///< Budget-ladder activation clauses.
};

/// A named goal: GMA target name -> class to compute.
struct NamedGoal {
  std::string Target;
  egraph::ClassId Class;
  bool IsMemory = false;
};

/// Encodes the universe into a solver and decodes models into programs.
/// One Encoder instance serves many probes (one encode per fresh Solver).
class Encoder {
public:
  Encoder(const egraph::EGraph &G, const machine::MachineModel &M,
          const Universe &U)
      : G(G), M(M), U(U) {
    NumUnits = M.numUnits();
  }

  /// Emits the constraints for \p Opts into \p S.
  EncodingStats encode(sat::Solver &S, const std::vector<NamedGoal> &Goals,
                       const EncoderOptions &Opts);

  /// After encode() and a Sat solve() on the same solver: reads the
  /// schedule off the model (the L's assigned true determine the machine
  /// program, section 6) and wires operands into a Program. In monotone
  /// mode pass Opts.Cycles = the SAT budget K (the model was produced
  /// under budgetAssumption(K), so no launch at a later cycle is true).
  machine::Program extract(const sat::Solver &S,
                           const std::vector<NamedGoal> &Goals,
                           const EncoderOptions &Opts,
                           const std::string &Name) const;

  /// After a Monotone encode(): the assumption literal meaning "no program
  /// longer than \p K cycles" (¬E_K — it forbids every launch at cycle
  /// >= K and activates the budget-K goal deadline). Valid for K in
  /// [1, Cycles of the encode].
  sat::Lit budgetAssumption(unsigned K) const;

private:
  const egraph::EGraph &G;
  const machine::MachineModel &M;
  const Universe &U;

  // Variable maps of the most recent encode(). Dense per-key vectors (L:
  // term x unit x cycle; B: needed-class row x cluster x cycle) — these
  // lookups are the hot path of every encode, and tree maps were measurable
  // there. -1 marks an absent variable.
  std::vector<sat::Var> LDense;
  std::vector<sat::Var> BDense;
  std::unordered_map<egraph::ClassId, uint32_t> BClassRow;
  unsigned LastCycles = 0;   ///< K of the most recent encode.
  unsigned LastClusters = 0; ///< NC of the most recent encode.
  unsigned NumUnits = 0;     ///< The machine's unit count (fixed per model).
  /// Monotone mode: E_K ("some launch at cycle >= K") per budget K; index
  /// 0 unused.
  std::vector<sat::Var> ExceedVars;

  size_t lIndex(size_t Term, unsigned UnitIdx, unsigned Cycle) const {
    return (Term * NumUnits + UnitIdx) * LastCycles + Cycle;
  }
  size_t bIndex(uint32_t Row, unsigned Cluster, unsigned Cycle) const {
    return (Row * LastClusters + Cluster) * LastCycles + Cycle;
  }

  unsigned numClusters(const EncoderOptions &Opts) const {
    return Opts.SingleCluster ? 1 : M.numClusters();
  }
  unsigned clusterOfUnit(machine::UnitId Un, const EncoderOptions &Opts) const {
    return Opts.SingleCluster ? 0 : M.clusterOf(Un);
  }
};

} // namespace codegen
} // namespace denali

#endif // DENALI_CODEGEN_ENCODER_H
