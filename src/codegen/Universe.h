//===- codegen/Universe.h - Machine-term universe ---------------*- C++ -*-===//
///
/// \file
/// The encoding universe: everything the constraint generator needs to know
/// about a saturated E-graph relative to a set of goal classes.
///
///  * **machine terms** — live E-nodes computable by one EV6 instruction
///    (paper, section 6), restricted to the cone reachable from the goals;
///    loads and stores contribute extra *displacement variants* (ldq/stq
///    with a 16-bit displacement absorbs an add64(base, k) address);
///  * **free classes** — GMA inputs (registers, the initial memory) and the
///    constant 0 (the Alpha zero register $31), available at cycle 0;
///  * **constants** — materialized by a pseudo ldiq machine term, or used
///    directly as 8-bit ALU literals where the instruction form allows;
///  * the **memory spine** — the chain of store classes leading to the goal
///    memory value; only spine stores are candidates, which (with the
///    encoder's ordering constraints) keeps speculative stores out of the
///    schedule.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_CODEGEN_UNIVERSE_H
#define DENALI_CODEGEN_UNIVERSE_H

#include "machine/Machine.h"
#include "egraph/EGraph.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace denali {
namespace codegen {

/// One candidate instruction instance.
struct MachineTerm {
  egraph::ENodeId Node = 0;          ///< 0 for ldiq pseudo-terms.
  egraph::ClassId Class = 0;         ///< Canonical class it computes.
  const machine::InstrDesc *Desc = nullptr;
  unsigned Latency = 1;
  std::vector<egraph::ClassId> Args; ///< Canonical argument classes.
  std::vector<machine::UnitId> Units; ///< Units it may issue on.
  bool IsLoad = false;
  bool IsStore = false;
  bool IsLdiq = false;
  uint64_t ConstVal = 0;             ///< For ldiq.
  int64_t Disp = 0;                  ///< Displacement variant (loads/stores).
  bool HasDisp = false;
};

/// Options shaping the universe.
struct UniverseOptions {
  /// Load latency overrides by (canonical) address class — the \miss
  /// annotations of the source program.
  std::unordered_map<egraph::ClassId, unsigned> LoadLatencyByAddr;
  /// Displacement range for ldq/stq address folding.
  int64_t MaxDisp = 32767;
  /// FAULT INJECTION (verification harness only — leave 0 in real use):
  /// added to every machine term's modeled latency, clamped at 1 cycle. A
  /// negative delta makes the encoder believe results arrive earlier than
  /// the machine delivers them, so the SAT model schedules consumers too
  /// early; the independent ScheduleValidator (src/verify), which recomputes
  /// latencies from the ISA tables, must flag every such schedule. This is
  /// the planted-bug self-test of the harness (EXPERIMENTS.md E13).
  int TestLatencyDelta = 0;
};

/// The collected universe.
class Universe {
public:
  /// Builds the universe for \p Goals. \returns false (with \p ErrorOut)
  /// if some goal class is not computable at all.
  bool build(const egraph::EGraph &G, const machine::MachineModel &M,
             const std::vector<egraph::ClassId> &Goals,
             const UniverseOptions &Opts, std::string *ErrorOut);

  /// The machine the universe was built for (null before build()).
  const machine::MachineModel *model() const { return Model; }

  const std::vector<MachineTerm> &terms() const { return Terms; }

  /// Machine terms computing class \p C (indices into terms()).
  const std::vector<size_t> &producersOf(egraph::ClassId C) const;

  /// True if \p C is available at cycle 0 (input or constant zero).
  bool isFree(egraph::ClassId C) const { return Free.count(C) != 0; }

  /// Classes requiring availability (B) variables.
  const std::vector<egraph::ClassId> &neededClasses() const { return Needed; }

  /// True if \p C can appear as the literal operand of \p Desc at
  /// argument position \p ArgIdx (slot and range are the machine's).
  bool isImmOperand(const egraph::EGraph &G, const machine::InstrDesc &Desc,
                    size_t ArgIdx, size_t Arity, egraph::ClassId C) const;

  /// The input (variable) classes with their names; memory inputs flagged.
  struct InputInfo {
    egraph::ClassId Class;
    ir::OpId Op;
    std::string Name;
    bool IsMemory = false;
  };
  const std::vector<InputInfo> &inputs() const { return Inputs; }

private:
  std::vector<MachineTerm> Terms;
  std::unordered_map<egraph::ClassId, std::vector<size_t>> Producers;
  std::unordered_set<egraph::ClassId> Free;
  std::vector<egraph::ClassId> Needed;
  std::vector<InputInfo> Inputs;
  std::vector<size_t> EmptyList;
  const machine::MachineModel *Model = nullptr;
};

} // namespace codegen
} // namespace denali

#endif // DENALI_CODEGEN_UNIVERSE_H
