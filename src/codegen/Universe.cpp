//===- codegen/Universe.cpp -----------------------------------------------===//

#include "codegen/Universe.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <deque>

using namespace denali;
using namespace denali::codegen;
using namespace denali::egraph;
using denali::ir::Builtin;

bool Universe::build(const EGraph &G, const machine::MachineModel &M,
                     const std::vector<ClassId> &Goals,
                     const UniverseOptions &Opts, std::string *ErrorOut) {
  Terms.clear();
  Producers.clear();
  Free.clear();
  Needed.clear();
  Inputs.clear();
  Model = &M;

  // The displacement range is capped by what the machine's load/store
  // encoding can absorb (Alpha: 16-bit; RV64: 12-bit).
  const int64_t MaxDisp = std::min<int64_t>(Opts.MaxDisp, M.maxMemDisp());

  const ir::Context &Ctx = G.context();
  ir::OpId StoreOp = Ctx.Ops.builtin(Builtin::Store);
  ir::OpId AddOp = Ctx.Ops.builtin(Builtin::Add64);
  ir::OpId SubOp = Ctx.Ops.builtin(Builtin::Sub64);

  // --- Memory spine: classes whose stores are allowed to execute. --------
  std::unordered_set<ClassId> Spine;
  {
    std::deque<ClassId> Work;
    for (ClassId Goal : Goals) {
      ClassId C = G.find(Goal);
      for (ENodeId N : G.classNodes(C))
        if (G.node(N).Op == StoreOp) {
          Work.push_back(C);
          break;
        }
    }
    while (!Work.empty()) {
      ClassId C = G.find(Work.front());
      Work.pop_front();
      if (!Spine.insert(C).second)
        continue;
      for (ENodeId N : G.classNodes(C))
        if (G.node(N).Op == StoreOp)
          Work.push_back(G.find(G.node(N).Children[0]));
    }
  }

  // --- Cone walk from the goals. ------------------------------------------
  std::unordered_set<ClassId> Visited;
  std::unordered_set<ClassId> GoalSet;
  std::deque<ClassId> Work;
  for (ClassId Goal : Goals) {
    GoalSet.insert(G.find(Goal));
    Work.push_back(G.find(Goal));
  }

  auto addTerm = [&](MachineTerm T) {
    // Harness fault injection: perturb the modeled latency (clamped at 1).
    // The emitted Program still carries this wrong latency, so only a
    // validator that recomputes latencies from the ISA tables can tell.
    if (Opts.TestLatencyDelta) {
      int64_t L = static_cast<int64_t>(T.Latency) + Opts.TestLatencyDelta;
      T.Latency = static_cast<unsigned>(std::max<int64_t>(1, L));
    }
    size_t Idx = Terms.size();
    for (ClassId A : T.Args)
      Work.push_back(A);
    Producers[T.Class].push_back(Idx);
    Terms.push_back(std::move(T));
  };

  auto unitsFromMask = [&](uint32_t Mask) {
    std::vector<machine::UnitId> Units;
    for (unsigned U = 0; U < M.numUnits(); ++U)
      if (Mask & (1u << U))
        Units.push_back(static_cast<machine::UnitId>(U));
    return Units;
  };

  while (!Work.empty()) {
    ClassId C = G.find(Work.front());
    Work.pop_front();
    if (!Visited.insert(C).second)
      continue;

    // Input (variable) classes are free.
    std::optional<ENodeId> VarNode;
    for (ENodeId N : G.classNodes(C))
      if (Ctx.Ops.isVariable(G.node(N).Op)) {
        VarNode = N;
        break;
      }
    if (VarNode) {
      Free.insert(C);
      InputInfo In;
      In.Class = C;
      In.Op = G.node(*VarNode).Op;
      In.Name = Ctx.Ops.info(In.Op).Name;
      Inputs.push_back(std::move(In));
      continue;
    }

    // Constants: 0 is the zero register (free as an operand); constants
    // that are themselves goals — and every other constant — get a ldiq
    // pseudo-term so a register can hold them.
    if (std::optional<uint64_t> K = G.classConstant(C)) {
      if (*K == 0 && !GoalSet.count(C)) {
        Free.insert(C);
        continue;
      }
      MachineTerm T;
      T.Class = C;
      T.Desc = &M.constMaterialize();
      T.Latency = T.Desc->Latency;
      T.Units = unitsFromMask(T.Desc->UnitMask);
      T.IsLdiq = true;
      T.ConstVal = *K;
      Needed.push_back(C);
      addTerm(std::move(T));
      continue;
    }

    Needed.push_back(C);

    for (ENodeId N : G.classNodes(C)) {
      const ENode &Node = G.node(N);
      const machine::InstrDesc *Desc = M.descFor(Node.Op);
      if (!Desc)
        continue;
      bool IsStore = Desc->Mem == machine::MemKind::Store;
      bool IsLoad = Desc->Mem == machine::MemKind::Load;
      if (IsStore && !Spine.count(C))
        continue; // Only spine stores may execute (memory discipline).

      MachineTerm T;
      T.Node = N;
      T.Class = C;
      T.Desc = Desc;
      T.Latency = Desc->Latency;
      T.Units = unitsFromMask(Desc->UnitMask);
      T.IsLoad = IsLoad;
      T.IsStore = IsStore;
      for (ClassId A : Node.Children)
        T.Args.push_back(G.find(A));
      if (IsLoad) {
        auto It = Opts.LoadLatencyByAddr.find(T.Args[1]);
        if (It != Opts.LoadLatencyByAddr.end())
          T.Latency = It->second;
      }
      // Displacement variants for memory operations: absorb a constant
      // offset of the address into the 16-bit ldq/stq displacement.
      if (IsLoad || IsStore) {
        ClassId AddrClass = T.Args[1];
        for (ENodeId AN : G.classNodes(AddrClass)) {
          const ENode &ANode = G.node(AN);
          bool IsAdd = ANode.Op == AddOp;
          bool IsSub = ANode.Op == SubOp;
          if (!IsAdd && !IsSub)
            continue;
          for (int KIdx = 0; KIdx < 2; ++KIdx) {
            if (IsSub && KIdx == 0)
              continue;
            std::optional<uint64_t> K =
                G.classConstant(ANode.Children[KIdx]);
            if (!K)
              continue;
            int64_t Disp = static_cast<int64_t>(*K);
            if (IsSub)
              Disp = -Disp;
            if (Disp > MaxDisp || Disp < -MaxDisp - 1)
              continue;
            MachineTerm V = T;
            V.Args[1] = G.find(ANode.Children[1 - KIdx]);
            V.Disp = Disp;
            V.HasDisp = true;
            addTerm(std::move(V));
          }
        }
      }
      addTerm(std::move(T));
    }
  }

  // Flag memory inputs: variables used as the memory argument of a load or
  // store.
  std::unordered_set<ClassId> MemClasses;
  for (const MachineTerm &T : Terms)
    if (T.IsLoad || T.IsStore)
      MemClasses.insert(T.Args[0]);
  for (InputInfo &In : Inputs)
    In.IsMemory = MemClasses.count(In.Class) != 0;

  // Goals must be computable.
  for (ClassId Goal : Goals) {
    ClassId C = G.find(Goal);
    if (Free.count(C))
      continue;
    auto It = Producers.find(C);
    if (It == Producers.end() || It->second.empty()) {
      if (ErrorOut)
        *ErrorOut = strFormat(
            "goal class c%u has no machine-computable alternative "
            "(matching found no instruction for it)", C);
      return false;
    }
  }
  return true;
}

const std::vector<size_t> &Universe::producersOf(ClassId C) const {
  auto It = Producers.find(C);
  if (It == Producers.end())
    return EmptyList;
  return It->second;
}

bool Universe::isImmOperand(const EGraph &G, const machine::InstrDesc &Desc,
                            size_t ArgIdx, size_t Arity, ClassId C) const {
  if (!Desc.AllowsImm || !Model)
    return false;
  if (ArgIdx != Model->immArgIndex(Desc, Arity))
    return false;
  std::optional<uint64_t> K = G.classConstant(G.find(C));
  return K && Model->immFits(Desc, *K);
}
