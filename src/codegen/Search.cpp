//===- codegen/Search.cpp -------------------------------------------------===//

#include "codegen/Search.h"

#include "obs/Obs.h"
#include "sat/Dimacs.h"
#include "sat/RupChecker.h"
#include "support/StringExtras.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>

using namespace denali;
using namespace denali::codegen;
using denali::sat::SolveResult;

namespace {

const char *probeResultName(const Probe &P) {
  if (P.Cancelled)
    return "cancelled";
  switch (P.Result) {
  case SolveResult::Sat:
    return "sat";
  case SolveResult::Unsat:
    return "unsat";
  case SolveResult::Unknown:
    return "unknown";
  }
  return "unknown";
}

/// Flushes one finished probe into the registry: per-outcome probe counts
/// and the solver-effort deltas it spent (absolute stats for a fresh
/// per-probe solver, per-call deltas under the incremental solver — the
/// Probe fields already carry the right variant).
void noteProbe(const Probe &P) {
  if (!obs::enabled())
    return;
  auto &R = obs::Registry::global();
  R.counter("search.probes").add(1);
  R.counter(strFormat("search.probes.%s", probeResultName(P))).add(1);
  R.counter("sat.conflicts").add(P.Conflicts);
  R.counter("sat.decisions").add(P.Decisions);
  R.counter("sat.propagations").add(P.Propagations);
  R.counter("sat.restarts").add(P.Restarts);
  R.counter("sat.learnt_clauses").add(P.LearntClauses);
  R.histogram("search.probe.solve_us")
      .record(static_cast<uint64_t>(P.SolveSeconds * 1e6));
  if (P.Cancelled) {
    R.histogram("search.cancel.post_conflicts").record(P.ConflictsAfterCancel);
    if (P.CancelLatencySeconds >= 0)
      R.histogram("search.cancel.latency_us")
          .record(static_cast<uint64_t>(P.CancelLatencySeconds * 1e6));
  }
}

/// Writes one probe's CNF to <DumpCnfDir>/<name>.K<cycles>.cnf.
void dumpProbeCnf(const SearchOptions &Opts, const std::string &Name,
                  unsigned K, const sat::Cnf &F) {
  std::string Path = strFormat("%s/%s.K%u.cnf", Opts.DumpCnfDir.c_str(),
                               Name.empty() ? "gma" : Name.c_str(), K);
  if (FILE *Out = std::fopen(Path.c_str(), "w")) {
    std::string Text = F.toDimacs();
    std::fwrite(Text.data(), 1, Text.size(), Out);
    std::fclose(Out);
  }
}

/// Runs one probe at budget K; on Sat, fills \p ProgramOut. With a nonnull
/// \p CancelFlag the solver winds down cooperatively once it reads true,
/// and the probe is marked Cancelled instead of producing evidence.
Probe runProbe(Encoder &Enc, const std::vector<NamedGoal> &Goals,
               const SearchOptions &Opts, unsigned K,
               std::optional<machine::Program> &ProgramOut,
               const std::string &Name,
               const std::atomic<bool> *CancelFlag = nullptr) {
  obs::ObsSpan Span("search.probe");
  Probe P;
  P.Cycles = K;
  P.Worker = support::ThreadPool::currentWorkerId();
  sat::Solver S;
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  if (CancelFlag)
    S.setInterrupt(CancelFlag);
  if (Opts.CertifyRefutations)
    S.enableProofLogging();
  EncoderOptions EncOpts = Opts.Encoding;
  EncOpts.Cycles = K;
  Timer T;
  P.Stats = Enc.encode(S, Goals, EncOpts);
  P.EncodeSeconds = T.seconds();
  if (!Opts.DumpCnfDir.empty()) {
    sat::Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    dumpProbeCnf(Opts, Name, K, F);
  }
  T.reset();
  P.Result = S.solve();
  P.SolveSeconds = T.seconds();
  P.Conflicts = S.stats().Conflicts;
  P.Decisions = S.stats().Decisions;
  P.Propagations = S.stats().Propagations;
  P.Restarts = S.stats().Restarts;
  P.LearntClauses = S.stats().LearntClauses;
  P.Cancelled = S.interrupted();
  if (P.Cancelled)
    P.ConflictsAfterCancel = S.conflictsAfterInterrupt();
  if (Span.active())
    Span.arg("k", K)
        .arg("result", probeResultName(P))
        .arg("worker", P.Worker)
        .arg("vars", P.Stats.Vars)
        .arg("clauses", P.Stats.Clauses)
        .arg("conflicts", P.Conflicts)
        .arg("decisions", P.Decisions)
        .arg("restarts", P.Restarts);
  if (P.Result == SolveResult::Sat) {
    ProgramOut = Enc.extract(S, Goals, EncOpts, Name);
  } else if (P.Result == SolveResult::Unsat && Opts.CertifyRefutations) {
    T.reset();
    sat::Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    P.ProofSteps = S.proof().size();
    P.ProofChecked = sat::checkRupProof(F, S.proof());
    P.ProofCheckSeconds = T.seconds();
  }
  return P;
}

/// Drives the Linear budget ladder through \p ProbeK — a callable probing
/// one budget (recording the probe in Result) and returning its
/// SolveResult, with the program filled on Sat. Shared by the fresh-solver
/// and incremental paths, so both report identical evidence.
template <typename ProbeFn>
SearchResult &runLinearLadder(SearchResult &Result, const SearchOptions &Opts,
                              ProbeFn &&ProbeK) {
  for (unsigned K = Opts.MinCycles; K <= Opts.MaxCycles; ++K) {
    std::optional<machine::Program> Prog;
    SolveResult R = ProbeK(K, Prog);
    if (R == SolveResult::Sat) {
      Result.Found = true;
      Result.Cycles = K;
      Result.Program = std::move(*Prog);
      Result.LowerBoundProved = K > Opts.MinCycles;
      Result.WinningProbe = static_cast<int>(Result.Probes.size()) - 1;
      return Result;
    }
    if (R == SolveResult::Unknown) {
      Result.Error =
          strFormat("probe at %u cycles exceeded the conflict budget", K);
      return Result;
    }
  }
  Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
  return Result;
}

/// Binary search: find a feasible Hi by doubling, then bisect
/// [Lo = largest proved-infeasible + 1, Hi = smallest known-feasible].
template <typename ProbeFn>
SearchResult &runBinaryLadder(SearchResult &Result, const SearchOptions &Opts,
                              ProbeFn &&ProbeK) {
  unsigned Lo = Opts.MinCycles;
  unsigned Hi = Opts.MinCycles;
  std::optional<machine::Program> BestProg;
  unsigned BestK = 0;
  int BestIdx = -1;
  bool AnyUnsat = false;
  for (;;) {
    std::optional<machine::Program> Prog;
    SolveResult R = ProbeK(Hi, Prog);
    if (R == SolveResult::Sat) {
      BestProg = std::move(Prog);
      BestK = Hi;
      BestIdx = static_cast<int>(Result.Probes.size()) - 1;
      break;
    }
    if (R == SolveResult::Unknown) {
      Result.Error =
          strFormat("probe at %u cycles exceeded the conflict budget", Hi);
      return Result;
    }
    AnyUnsat = true;
    Lo = Hi + 1;
    if (Hi >= Opts.MaxCycles) {
      Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
      return Result;
    }
    Hi = std::min(Opts.MaxCycles, Hi * 2);
  }
  while (Lo < BestK) {
    unsigned Mid = Lo + (BestK - Lo) / 2;
    std::optional<machine::Program> Prog;
    SolveResult R = ProbeK(Mid, Prog);
    if (R == SolveResult::Sat) {
      BestProg = std::move(Prog);
      BestK = Mid;
      BestIdx = static_cast<int>(Result.Probes.size()) - 1;
    } else if (R == SolveResult::Unsat) {
      AnyUnsat = true;
      Lo = Mid + 1;
    } else {
      Result.Error =
          strFormat("probe at %u cycles exceeded the conflict budget", Mid);
      return Result;
    }
  }
  Result.Found = true;
  Result.Cycles = BestK;
  Result.Program = std::move(*BestProg);
  Result.LowerBoundProved = AnyUnsat && BestK > Opts.MinCycles;
  Result.WinningProbe = BestIdx;
  return Result;
}

/// The incremental budget search: encode once (monotone, up to MaxCycles),
/// then drive the Linear or Binary ladder with assumption-based probes on
/// a single long-lived solver. Learnt clauses, VSIDS activities, and saved
/// phases persist across probes; UNSAT-at-K still means exactly "no
/// K-cycle program computes the goals" because the assumption ¬E_K
/// restricts the monotone instance to the fresh budget-K encoding.
SearchResult searchIncremental(const egraph::EGraph &G, const machine::MachineModel &Isa,
                               const Universe &U,
                               const std::vector<NamedGoal> &Goals,
                               const SearchOptions &Opts,
                               const std::string &Name, bool Binary) {
  SearchResult Result;
  Encoder Enc(G, Isa, U);
  sat::Solver S;
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  if (Opts.CertifyRefutations)
    S.enableProofLogging();
  EncoderOptions EncOpts = Opts.Encoding;
  EncOpts.Cycles = std::max(Opts.MaxCycles, 1u);
  EncOpts.Monotone = true;
  Timer T;
  EncodingStats EncStats = Enc.encode(S, Goals, EncOpts);
  double EncodeSeconds = T.seconds();
  bool FirstProbe = true;

  auto ProbeK = [&](unsigned K, std::optional<machine::Program> &Prog) {
    obs::ObsSpan Span("search.probe");
    sat::Lit Assumption = Enc.budgetAssumption(K);
    Probe P;
    P.Cycles = K;
    P.Stats = EncStats;
    P.Stats.Cycles = K;
    if (FirstProbe) {
      P.EncodeSeconds = EncodeSeconds;
      FirstProbe = false;
    }
    if (!Opts.DumpCnfDir.empty()) {
      // The probe instance is the shared CNF plus the budget assumption
      // as a unit clause (learnt level-0 facts from earlier probes are
      // included; they are implied, so the dump stays equisatisfiable
      // with the fresh budget-K encoding).
      sat::Cnf F;
      F.NumVars = S.numVars();
      F.Clauses = S.problemClauses();
      F.Clauses.push_back(sat::ClauseLits{Assumption});
      dumpProbeCnf(Opts, Name, K, F);
    }
    const sat::SolverStats Before = S.stats();
    Timer ProbeTimer;
    P.Result = S.solve({Assumption});
    P.SolveSeconds = ProbeTimer.seconds();
    P.Conflicts = S.stats().Conflicts - Before.Conflicts;
    P.Decisions = S.stats().Decisions - Before.Decisions;
    P.Propagations = S.stats().Propagations - Before.Propagations;
    P.Restarts = S.stats().Restarts - Before.Restarts;
    P.LearntClauses = S.stats().LearntClauses - Before.LearntClauses;
    P.Cancelled = S.interrupted();
    if (P.Cancelled)
      P.ConflictsAfterCancel = S.conflictsAfterInterrupt();
    if (P.Result == SolveResult::Unsat)
      P.FailedAssumptions = S.conflict().size();
    if (Span.active())
      Span.arg("k", K)
          .arg("result", probeResultName(P))
          .arg("incremental", "yes")
          .arg("conflicts", P.Conflicts)
          .arg("decisions", P.Decisions)
          .arg("failed_assumptions",
               static_cast<uint64_t>(P.FailedAssumptions));
    if (P.Result == SolveResult::Sat) {
      EncoderOptions ExtractOpts = EncOpts;
      ExtractOpts.Cycles = K;
      Prog = Enc.extract(S, Goals, ExtractOpts, Name);
    } else if (P.Result == SolveResult::Unsat && Opts.CertifyRefutations) {
      // Certificate: against the shared CNF plus the assumption as a unit,
      // the cumulative learnt-clause log ends with the final assumption
      // conflict (E_K), so the empty clause follows by unit propagation.
      ProbeTimer.reset();
      sat::Cnf F;
      F.NumVars = S.numVars();
      F.Clauses = S.problemClauses();
      F.Clauses.push_back(sat::ClauseLits{Assumption});
      std::vector<sat::ClauseLits> Proof = S.proof();
      if (Proof.empty() || !Proof.back().empty())
        Proof.push_back(sat::ClauseLits{});
      P.ProofSteps = Proof.size();
      P.ProofChecked = sat::checkRupProof(F, Proof);
      P.ProofCheckSeconds = ProbeTimer.seconds();
    }
    noteProbe(P);
    Result.Probes.push_back(std::move(P));
    return Result.Probes.back().Result;
  };

  if (Binary)
    return runBinaryLadder(Result, Opts, ProbeK);
  return runLinearLadder(Result, Opts, ProbeK);
}

/// The portfolio outer loop: probes a window of budgets [Base, Base+W)
/// concurrently, advancing the window only when every budget in it is
/// proved infeasible — so, like linear search, it accumulates an UNSAT
/// certificate for every budget below the answer. A SAT answer at K
/// cancels in-flight probes at K' > K (their results cannot matter:
/// feasibility is monotone in K); an UNSAT answer cancels nothing, it
/// only contributes to advancing the window's lower bound.
SearchResult searchPortfolio(const egraph::EGraph &G, const machine::MachineModel &Isa,
                             const Universe &U,
                             const std::vector<NamedGoal> &Goals,
                             const SearchOptions &Opts,
                             const std::string &Name) {
  SearchResult Result;
  unsigned Threads = Opts.Threads;
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  const unsigned Window = Threads;

  // Freeze the E-graph's union-find: after full path compression the
  // const query interface is write-free, so probe workers may share it.
  G.compressPaths();
  support::ThreadPool Pool(Threads);

  // Carry the caller's request context onto the pool workers so probe spans
  // recorded there are stamped with the same request id as the rest of the
  // request's pipeline.
  const obs::RequestToken ReqTok = obs::currentRequestToken();

  struct Slot {
    support::CancellationToken Cancel;
    Probe P;
    std::optional<machine::Program> Prog;
    bool Done = false;
    /// When the winner requested this slot's cancellation (obs::nowNs();
    /// 0 = never asked). Written and read under the window mutex.
    int64_t CancelRequestNs = 0;
  };

  for (unsigned Base = Opts.MinCycles; Base <= Opts.MaxCycles;) {
    const unsigned End = std::min(Opts.MaxCycles + 1, Base + Window);
    const unsigned N = End - Base;
    std::vector<Slot> Slots(N);
    std::mutex Mutex; // Guards Slots[*].Done and the cancellation sweep.
    std::vector<std::future<void>> Futures;
    Futures.reserve(N);

    for (unsigned I = 0; I < N; ++I) {
      const unsigned K = Base + I;
      Futures.push_back(Pool.submit([&, I, K] {
        obs::RequestScope ReqScope(ReqTok);
        Slot &Mine = Slots[I];
        std::optional<machine::Program> Prog;
        Probe P;
        if (Mine.Cancel.isCancelled()) {
          // Cancelled before starting: skip the encode entirely.
          P.Cycles = K;
          P.Worker = support::ThreadPool::currentWorkerId();
          P.Cancelled = true;
        } else {
          // One Encoder per probe: encode() builds per-run variable maps,
          // so workers must not share an instance.
          Encoder Enc(G, Isa, U);
          P = runProbe(Enc, Goals, Opts, K, Prog, Name, Mine.Cancel.flag());
        }
        std::lock_guard<std::mutex> Lock(Mutex);
        Mine.P = std::move(P);
        Mine.Prog = std::move(Prog);
        Mine.Done = true;
        // Cancellation latency: from the winner's request (stamped under
        // this mutex) to this probe's return.
        if (Mine.P.Cancelled && Mine.CancelRequestNs != 0) {
          Mine.P.CancelLatencySeconds =
              static_cast<double>(obs::nowNs() - Mine.CancelRequestNs) / 1e9;
          if (obs::enabled())
            obs::instant(
                "search.cancel",
                strFormat("\"k\":%u,\"latency_us\":%.1f,"
                          "\"post_conflicts\":%llu",
                          K, Mine.P.CancelLatencySeconds * 1e6,
                          static_cast<unsigned long long>(
                              Mine.P.ConflictsAfterCancel)));
        }
        noteProbe(Mine.P);
        // A SAT answer makes every larger budget irrelevant.
        if (Mine.P.Result == SolveResult::Sat) {
          int64_t Now = obs::nowNs();
          for (unsigned J = I + 1; J < N; ++J)
            if (!Slots[J].Done) {
              if (Slots[J].CancelRequestNs == 0)
                Slots[J].CancelRequestNs = Now; // First request wins.
              Slots[J].Cancel.requestCancel();
            }
        }
      }));
    }
    for (std::future<void> &F : Futures)
      F.get(); // Joins the window; rethrows worker exceptions.

    // Record the window's probes in budget order (reports stay
    // deterministic regardless of completion order).
    std::optional<unsigned> SatIdx;
    for (unsigned I = 0; I < N; ++I) {
      Slot &S = Slots[I];
      if (S.P.Cancelled)
        ++Result.CancelledProbes;
      if (S.P.Result == SolveResult::Sat && !SatIdx)
        SatIdx = I; // Smallest SAT budget in the window.
      Result.Probes.push_back(S.P);
    }

    const unsigned Evidence = SatIdx ? *SatIdx : N;
    for (unsigned I = 0; I < Evidence; ++I) {
      // Budgets below the smallest SAT answer are never cancelled (only
      // larger budgets are), so Unknown here means the conflict budget
      // ran out — the same error the sequential strategies report.
      if (Slots[I].P.Result == SolveResult::Unknown) {
        Result.Error = strFormat(
            "probe at %u cycles exceeded the conflict budget", Base + I);
        return Result;
      }
    }
    if (SatIdx) {
      const unsigned K = Base + *SatIdx;
      Result.Found = true;
      Result.Cycles = K;
      Result.Program = std::move(*Slots[*SatIdx].Prog);
      // Every budget in [MinCycles, K) carries an UNSAT answer: earlier
      // windows advanced only when fully refuted, and this window's
      // budgets below K were just checked.
      Result.LowerBoundProved = K > Opts.MinCycles;
      Result.WinningProbe =
          static_cast<int>(Result.Probes.size() - N + *SatIdx);
      return Result;
    }
    Base = End; // Whole window UNSAT: the lower bound advances past it.
  }
  Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
  return Result;
}

/// The why-unsat explain probe: one dedicated monotone instance at the
/// budget just below the found minimum, with clause tagging and core
/// tracking on. Runs after any strategy's ladder, so the report is uniform
/// and the per-strategy probe evidence stays untouched.
void runExplainProbe(const egraph::EGraph &G, const machine::MachineModel &Isa,
                     const Universe &U, const std::vector<NamedGoal> &Goals,
                     const SearchOptions &Opts, SearchResult &Result) {
  if (!Result.Found || Result.Cycles <= std::max(1u, Opts.MinCycles))
    return;
  const unsigned K = Result.Cycles - 1;
  obs::ObsSpan Span("search.explain_probe");
  Encoder Enc(G, Isa, U);
  sat::Solver S;
  S.enableCoreTracking();
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  EncoderOptions EncOpts = Opts.Encoding;
  EncOpts.Cycles = K;
  EncOpts.Monotone = true;
  EncOpts.TagClauses = true;
  Enc.encode(S, Goals, EncOpts);
  if (S.solve({Enc.budgetAssumption(K)}) == SolveResult::Unsat) {
    Result.WhyUnsatTags = S.coreTags();
    Result.WhyUnsatCycles = K;
  }
  if (Span.active())
    Span.arg("k", K)
        .arg("core_tags", static_cast<uint64_t>(Result.WhyUnsatTags.size()));
}

/// Dispatches on strategy; the wrapper adds the timing summary.
SearchResult searchBudgetsImpl(const egraph::EGraph &G, const machine::MachineModel &Isa,
                               const Universe &U,
                               const std::vector<NamedGoal> &Goals,
                               const SearchOptions &Opts,
                               const std::string &Name) {
  SearchResult Result;
  Encoder Enc(G, Isa, U);

  // All goals free: the empty program computes everything.
  bool AllFree = true;
  for (const NamedGoal &Goal : Goals)
    AllFree &= U.isFree(G.find(Goal.Class));
  if (AllFree && !Goals.empty()) {
    sat::Solver S;
    EncoderOptions EncOpts = Opts.Encoding;
    EncOpts.Cycles = 1;
    Enc.encode(S, Goals, EncOpts);
    if (S.solve() == SolveResult::Sat) {
      Result.Found = true;
      Result.Cycles = 0;
      Result.Program = Enc.extract(S, Goals, EncOpts, Name);
      Result.Program.Cycles = 0;
      Result.Program.Instrs.clear();
      return Result;
    }
  }

  if (Opts.Strategy == SearchStrategy::Portfolio)
    return searchPortfolio(G, Isa, U, Goals, Opts, Name);

  if (Opts.Strategy == SearchStrategy::Incremental || Opts.Incremental)
    return searchIncremental(G, Isa, U, Goals, Opts, Name,
                             /*Binary=*/Opts.Strategy ==
                                 SearchStrategy::Binary);

  auto ProbeK = [&](unsigned K, std::optional<machine::Program> &Prog) {
    Probe P = runProbe(Enc, Goals, Opts, K, Prog, Name);
    noteProbe(P);
    Result.Probes.push_back(P);
    return P.Result;
  };

  if (Opts.Strategy == SearchStrategy::Linear)
    return runLinearLadder(Result, Opts, ProbeK);
  return runBinaryLadder(Result, Opts, ProbeK);
}

} // namespace

std::string denali::codegen::describeProbe(const Probe &P) {
  const char *Answer = P.Cancelled ? "cancelled"
                       : P.Result == SolveResult::Sat     ? "sat"
                       : P.Result == SolveResult::Unsat   ? "unsat"
                                                          : "unknown";
  return strFormat("K=%u[%dv/%lluc/%s]", P.Cycles, P.Stats.Vars,
                   static_cast<unsigned long long>(P.Stats.Clauses), Answer);
}

SearchResult denali::codegen::searchBudgets(
    const egraph::EGraph &G, const machine::MachineModel &Isa, const Universe &U,
    const std::vector<NamedGoal> &Goals, const SearchOptions &Opts,
    const std::string &Name) {
  static const char *const StrategyNames[] = {"linear", "binary", "portfolio",
                                              "incremental"};
  obs::ObsSpan Span("search");
  Timer Wall;
  SearchResult Result = searchBudgetsImpl(G, Isa, U, Goals, Opts, Name);
  if (Opts.ExplainUnsat)
    runExplainProbe(G, Isa, U, Goals, Opts, Result);
  Result.WallSeconds = Wall.seconds();
  for (const Probe &P : Result.Probes)
    Result.CpuSeconds +=
        P.EncodeSeconds + P.SolveSeconds + P.ProofCheckSeconds;
  if (obs::enabled()) {
    if (Span.active())
      Span.arg("name", Name.c_str())
          .arg("strategy",
               StrategyNames[static_cast<unsigned>(Opts.Strategy)])
          .arg("found", Result.Found ? "yes" : "no")
          .arg("cycles", Result.Cycles)
          .arg("probes", static_cast<uint64_t>(Result.Probes.size()))
          .arg("cancelled",
               static_cast<uint64_t>(Result.CancelledProbes));
    auto &R = obs::Registry::global();
    R.counter("search.runs").add(1);
    if (Result.Found)
      R.counter("search.found").add(1);
    R.histogram("search.wall_us")
        .record(static_cast<uint64_t>(Result.WallSeconds * 1e6));
    obs::logf(1, "search %s: strategy=%s found=%d cycles=%u probes=%zu "
                 "wall=%.3fs",
              Name.c_str(),
              StrategyNames[static_cast<unsigned>(Opts.Strategy)],
              Result.Found ? 1 : 0, Result.Cycles, Result.Probes.size(),
              Result.WallSeconds);
  }
  return Result;
}
