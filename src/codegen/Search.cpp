//===- codegen/Search.cpp -------------------------------------------------===//

#include "codegen/Search.h"

#include "sat/Dimacs.h"
#include "sat/RupChecker.h"
#include "support/StringExtras.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>

using namespace denali;
using namespace denali::codegen;
using denali::sat::SolveResult;

namespace {

/// Runs one probe at budget K; on Sat, fills \p ProgramOut. With a nonnull
/// \p CancelFlag the solver winds down cooperatively once it reads true,
/// and the probe is marked Cancelled instead of producing evidence.
Probe runProbe(Encoder &Enc, const std::vector<NamedGoal> &Goals,
               const SearchOptions &Opts, unsigned K,
               std::optional<alpha::Program> &ProgramOut,
               const std::string &Name,
               const std::atomic<bool> *CancelFlag = nullptr) {
  Probe P;
  P.Cycles = K;
  P.Worker = support::ThreadPool::currentWorkerId();
  sat::Solver S;
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  if (CancelFlag)
    S.setInterrupt(CancelFlag);
  if (Opts.CertifyRefutations)
    S.enableProofLogging();
  EncoderOptions EncOpts = Opts.Encoding;
  EncOpts.Cycles = K;
  Timer T;
  P.Stats = Enc.encode(S, Goals, EncOpts);
  P.EncodeSeconds = T.seconds();
  if (!Opts.DumpCnfDir.empty()) {
    sat::Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    std::string Path = strFormat("%s/%s.K%u.cnf", Opts.DumpCnfDir.c_str(),
                                 Name.empty() ? "gma" : Name.c_str(), K);
    if (FILE *Out = std::fopen(Path.c_str(), "w")) {
      std::string Text = F.toDimacs();
      std::fwrite(Text.data(), 1, Text.size(), Out);
      std::fclose(Out);
    }
  }
  T.reset();
  P.Result = S.solve();
  P.SolveSeconds = T.seconds();
  P.Conflicts = S.stats().Conflicts;
  P.Cancelled = S.interrupted();
  if (P.Result == SolveResult::Sat) {
    ProgramOut = Enc.extract(S, Goals, EncOpts, Name);
  } else if (P.Result == SolveResult::Unsat && Opts.CertifyRefutations) {
    T.reset();
    sat::Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    P.ProofSteps = S.proof().size();
    P.ProofChecked = sat::checkRupProof(F, S.proof());
    P.ProofCheckSeconds = T.seconds();
  }
  return P;
}

/// The portfolio outer loop: probes a window of budgets [Base, Base+W)
/// concurrently, advancing the window only when every budget in it is
/// proved infeasible — so, like linear search, it accumulates an UNSAT
/// certificate for every budget below the answer. A SAT answer at K
/// cancels in-flight probes at K' > K (their results cannot matter:
/// feasibility is monotone in K); an UNSAT answer cancels nothing, it
/// only contributes to advancing the window's lower bound.
SearchResult searchPortfolio(const egraph::EGraph &G, const alpha::ISA &Isa,
                             const Universe &U,
                             const std::vector<NamedGoal> &Goals,
                             const SearchOptions &Opts,
                             const std::string &Name) {
  SearchResult Result;
  unsigned Threads = Opts.Threads;
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  const unsigned Window = Threads;

  // Freeze the E-graph's union-find: after full path compression the
  // const query interface is write-free, so probe workers may share it.
  G.compressPaths();
  support::ThreadPool Pool(Threads);

  struct Slot {
    support::CancellationToken Cancel;
    Probe P;
    std::optional<alpha::Program> Prog;
    bool Done = false;
  };

  for (unsigned Base = Opts.MinCycles; Base <= Opts.MaxCycles;) {
    const unsigned End = std::min(Opts.MaxCycles + 1, Base + Window);
    const unsigned N = End - Base;
    std::vector<Slot> Slots(N);
    std::mutex Mutex; // Guards Slots[*].Done and the cancellation sweep.
    std::vector<std::future<void>> Futures;
    Futures.reserve(N);

    for (unsigned I = 0; I < N; ++I) {
      const unsigned K = Base + I;
      Futures.push_back(Pool.submit([&, I, K] {
        Slot &Mine = Slots[I];
        std::optional<alpha::Program> Prog;
        Probe P;
        if (Mine.Cancel.isCancelled()) {
          // Cancelled before starting: skip the encode entirely.
          P.Cycles = K;
          P.Worker = support::ThreadPool::currentWorkerId();
          P.Cancelled = true;
        } else {
          // One Encoder per probe: encode() builds per-run variable maps,
          // so workers must not share an instance.
          Encoder Enc(G, Isa, U);
          P = runProbe(Enc, Goals, Opts, K, Prog, Name, Mine.Cancel.flag());
        }
        std::lock_guard<std::mutex> Lock(Mutex);
        Mine.P = std::move(P);
        Mine.Prog = std::move(Prog);
        Mine.Done = true;
        // A SAT answer makes every larger budget irrelevant.
        if (Mine.P.Result == SolveResult::Sat)
          for (unsigned J = I + 1; J < N; ++J)
            if (!Slots[J].Done)
              Slots[J].Cancel.requestCancel();
      }));
    }
    for (std::future<void> &F : Futures)
      F.get(); // Joins the window; rethrows worker exceptions.

    // Record the window's probes in budget order (reports stay
    // deterministic regardless of completion order).
    std::optional<unsigned> SatIdx;
    for (unsigned I = 0; I < N; ++I) {
      Slot &S = Slots[I];
      if (S.P.Cancelled)
        ++Result.CancelledProbes;
      if (S.P.Result == SolveResult::Sat && !SatIdx)
        SatIdx = I; // Smallest SAT budget in the window.
      Result.Probes.push_back(S.P);
    }

    const unsigned Evidence = SatIdx ? *SatIdx : N;
    for (unsigned I = 0; I < Evidence; ++I) {
      // Budgets below the smallest SAT answer are never cancelled (only
      // larger budgets are), so Unknown here means the conflict budget
      // ran out — the same error the sequential strategies report.
      if (Slots[I].P.Result == SolveResult::Unknown) {
        Result.Error = strFormat(
            "probe at %u cycles exceeded the conflict budget", Base + I);
        return Result;
      }
    }
    if (SatIdx) {
      const unsigned K = Base + *SatIdx;
      Result.Found = true;
      Result.Cycles = K;
      Result.Program = std::move(*Slots[*SatIdx].Prog);
      // Every budget in [MinCycles, K) carries an UNSAT answer: earlier
      // windows advanced only when fully refuted, and this window's
      // budgets below K were just checked.
      Result.LowerBoundProved = K > Opts.MinCycles;
      Result.WinningProbe =
          static_cast<int>(Result.Probes.size() - N + *SatIdx);
      return Result;
    }
    Base = End; // Whole window UNSAT: the lower bound advances past it.
  }
  Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
  return Result;
}

/// Dispatches on strategy; the wrapper adds the timing summary.
SearchResult searchBudgetsImpl(const egraph::EGraph &G, const alpha::ISA &Isa,
                               const Universe &U,
                               const std::vector<NamedGoal> &Goals,
                               const SearchOptions &Opts,
                               const std::string &Name) {
  SearchResult Result;
  Encoder Enc(G, Isa, U);

  // All goals free: the empty program computes everything.
  bool AllFree = true;
  for (const NamedGoal &Goal : Goals)
    AllFree &= U.isFree(G.find(Goal.Class));
  if (AllFree && !Goals.empty()) {
    sat::Solver S;
    EncoderOptions EncOpts = Opts.Encoding;
    EncOpts.Cycles = 1;
    Enc.encode(S, Goals, EncOpts);
    if (S.solve() == SolveResult::Sat) {
      Result.Found = true;
      Result.Cycles = 0;
      Result.Program = Enc.extract(S, Goals, EncOpts, Name);
      Result.Program.Cycles = 0;
      Result.Program.Instrs.clear();
      return Result;
    }
  }

  if (Opts.Strategy == SearchStrategy::Portfolio)
    return searchPortfolio(G, Isa, U, Goals, Opts, Name);

  auto probe = [&](unsigned K, std::optional<alpha::Program> &Prog) {
    Probe P = runProbe(Enc, Goals, Opts, K, Prog, Name);
    Result.Probes.push_back(P);
    return P.Result;
  };

  if (Opts.Strategy == SearchStrategy::Linear) {
    for (unsigned K = Opts.MinCycles; K <= Opts.MaxCycles; ++K) {
      std::optional<alpha::Program> Prog;
      SolveResult R = probe(K, Prog);
      if (R == SolveResult::Sat) {
        Result.Found = true;
        Result.Cycles = K;
        Result.Program = std::move(*Prog);
        Result.LowerBoundProved = K > Opts.MinCycles;
        Result.WinningProbe = static_cast<int>(Result.Probes.size()) - 1;
        return Result;
      }
      if (R == SolveResult::Unknown) {
        Result.Error = strFormat("probe at %u cycles exceeded the conflict "
                                 "budget", K);
        return Result;
      }
    }
    Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
    return Result;
  }

  // Binary search: find a feasible Hi by doubling, then bisect
  // [Lo = largest proved-infeasible + 1, Hi = smallest known-feasible].
  unsigned Lo = Opts.MinCycles;
  unsigned Hi = Opts.MinCycles;
  std::optional<alpha::Program> BestProg;
  unsigned BestK = 0;
  int BestIdx = -1;
  bool AnyUnsat = false;
  for (;;) {
    std::optional<alpha::Program> Prog;
    SolveResult R = probe(Hi, Prog);
    if (R == SolveResult::Sat) {
      BestProg = std::move(Prog);
      BestK = Hi;
      BestIdx = static_cast<int>(Result.Probes.size()) - 1;
      break;
    }
    if (R == SolveResult::Unknown) {
      Result.Error = strFormat("probe at %u cycles exceeded the conflict "
                               "budget", Hi);
      return Result;
    }
    AnyUnsat = true;
    Lo = Hi + 1;
    if (Hi >= Opts.MaxCycles) {
      Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
      return Result;
    }
    Hi = std::min(Opts.MaxCycles, Hi * 2);
  }
  while (Lo < BestK) {
    unsigned Mid = Lo + (BestK - Lo) / 2;
    std::optional<alpha::Program> Prog;
    SolveResult R = probe(Mid, Prog);
    if (R == SolveResult::Sat) {
      BestProg = std::move(Prog);
      BestK = Mid;
      BestIdx = static_cast<int>(Result.Probes.size()) - 1;
    } else if (R == SolveResult::Unsat) {
      AnyUnsat = true;
      Lo = Mid + 1;
    } else {
      Result.Error = strFormat("probe at %u cycles exceeded the conflict "
                               "budget", Mid);
      return Result;
    }
  }
  Result.Found = true;
  Result.Cycles = BestK;
  Result.Program = std::move(*BestProg);
  Result.LowerBoundProved = AnyUnsat && BestK > Opts.MinCycles;
  Result.WinningProbe = BestIdx;
  return Result;
}

} // namespace

SearchResult denali::codegen::searchBudgets(
    const egraph::EGraph &G, const alpha::ISA &Isa, const Universe &U,
    const std::vector<NamedGoal> &Goals, const SearchOptions &Opts,
    const std::string &Name) {
  Timer Wall;
  SearchResult Result = searchBudgetsImpl(G, Isa, U, Goals, Opts, Name);
  Result.WallSeconds = Wall.seconds();
  for (const Probe &P : Result.Probes)
    Result.CpuSeconds +=
        P.EncodeSeconds + P.SolveSeconds + P.ProofCheckSeconds;
  return Result;
}
