//===- codegen/Search.cpp -------------------------------------------------===//

#include "codegen/Search.h"

#include "sat/Dimacs.h"
#include "sat/RupChecker.h"
#include "support/StringExtras.h"
#include "support/Timer.h"

#include <cstdio>

using namespace denali;
using namespace denali::codegen;
using denali::sat::SolveResult;

namespace {

/// Runs one probe at budget K; on Sat, fills \p ProgramOut.
Probe runProbe(Encoder &Enc, const std::vector<NamedGoal> &Goals,
               const SearchOptions &Opts, unsigned K,
               std::optional<alpha::Program> &ProgramOut,
               const std::string &Name) {
  Probe P;
  P.Cycles = K;
  sat::Solver S;
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  if (Opts.CertifyRefutations)
    S.enableProofLogging();
  EncoderOptions EncOpts = Opts.Encoding;
  EncOpts.Cycles = K;
  Timer T;
  P.Stats = Enc.encode(S, Goals, EncOpts);
  P.EncodeSeconds = T.seconds();
  if (!Opts.DumpCnfDir.empty()) {
    sat::Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    std::string Path = strFormat("%s/%s.K%u.cnf", Opts.DumpCnfDir.c_str(),
                                 Name.empty() ? "gma" : Name.c_str(), K);
    if (FILE *Out = std::fopen(Path.c_str(), "w")) {
      std::string Text = F.toDimacs();
      std::fwrite(Text.data(), 1, Text.size(), Out);
      std::fclose(Out);
    }
  }
  T.reset();
  P.Result = S.solve();
  P.SolveSeconds = T.seconds();
  P.Conflicts = S.stats().Conflicts;
  if (P.Result == SolveResult::Sat) {
    ProgramOut = Enc.extract(S, Goals, EncOpts, Name);
  } else if (P.Result == SolveResult::Unsat && Opts.CertifyRefutations) {
    T.reset();
    sat::Cnf F;
    F.NumVars = S.numVars();
    F.Clauses = S.problemClauses();
    P.ProofSteps = S.proof().size();
    P.ProofChecked = sat::checkRupProof(F, S.proof());
    P.ProofCheckSeconds = T.seconds();
  }
  return P;
}

} // namespace

SearchResult denali::codegen::searchBudgets(
    const egraph::EGraph &G, const alpha::ISA &Isa, const Universe &U,
    const std::vector<NamedGoal> &Goals, const SearchOptions &Opts,
    const std::string &Name) {
  SearchResult Result;
  Encoder Enc(G, Isa, U);

  // All goals free: the empty program computes everything.
  bool AllFree = true;
  for (const NamedGoal &Goal : Goals)
    AllFree &= U.isFree(G.find(Goal.Class));
  if (AllFree && !Goals.empty()) {
    sat::Solver S;
    EncoderOptions EncOpts = Opts.Encoding;
    EncOpts.Cycles = 1;
    Enc.encode(S, Goals, EncOpts);
    if (S.solve() == SolveResult::Sat) {
      Result.Found = true;
      Result.Cycles = 0;
      Result.Program = Enc.extract(S, Goals, EncOpts, Name);
      Result.Program.Cycles = 0;
      Result.Program.Instrs.clear();
      return Result;
    }
  }

  auto probe = [&](unsigned K, std::optional<alpha::Program> &Prog) {
    Probe P = runProbe(Enc, Goals, Opts, K, Prog, Name);
    Result.Probes.push_back(P);
    return P.Result;
  };

  if (Opts.Strategy == SearchStrategy::Linear) {
    for (unsigned K = Opts.MinCycles; K <= Opts.MaxCycles; ++K) {
      std::optional<alpha::Program> Prog;
      SolveResult R = probe(K, Prog);
      if (R == SolveResult::Sat) {
        Result.Found = true;
        Result.Cycles = K;
        Result.Program = std::move(*Prog);
        Result.LowerBoundProved = K > Opts.MinCycles;
        return Result;
      }
      if (R == SolveResult::Unknown) {
        Result.Error = strFormat("probe at %u cycles exceeded the conflict "
                                 "budget", K);
        return Result;
      }
    }
    Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
    return Result;
  }

  // Binary search: find a feasible Hi by doubling, then bisect
  // [Lo = largest proved-infeasible + 1, Hi = smallest known-feasible].
  unsigned Lo = Opts.MinCycles;
  unsigned Hi = Opts.MinCycles;
  std::optional<alpha::Program> BestProg;
  unsigned BestK = 0;
  bool AnyUnsat = false;
  for (;;) {
    std::optional<alpha::Program> Prog;
    SolveResult R = probe(Hi, Prog);
    if (R == SolveResult::Sat) {
      BestProg = std::move(Prog);
      BestK = Hi;
      break;
    }
    if (R == SolveResult::Unknown) {
      Result.Error = strFormat("probe at %u cycles exceeded the conflict "
                               "budget", Hi);
      return Result;
    }
    AnyUnsat = true;
    Lo = Hi + 1;
    if (Hi >= Opts.MaxCycles) {
      Result.Error = strFormat("no program within %u cycles", Opts.MaxCycles);
      return Result;
    }
    Hi = std::min(Opts.MaxCycles, Hi * 2);
  }
  while (Lo < BestK) {
    unsigned Mid = Lo + (BestK - Lo) / 2;
    std::optional<alpha::Program> Prog;
    SolveResult R = probe(Mid, Prog);
    if (R == SolveResult::Sat) {
      BestProg = std::move(Prog);
      BestK = Mid;
    } else if (R == SolveResult::Unsat) {
      AnyUnsat = true;
      Lo = Mid + 1;
    } else {
      Result.Error = strFormat("probe at %u cycles exceeded the conflict "
                               "budget", Mid);
      return Result;
    }
  }
  Result.Found = true;
  Result.Cycles = BestK;
  Result.Program = std::move(*BestProg);
  Result.LowerBoundProved = AnyUnsat && BestK > Opts.MinCycles;
  return Result;
}
