//===- codegen/Encoder.cpp ------------------------------------------------===//

#include "codegen/Encoder.h"

#include "obs/Obs.h"
#include "support/Error.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>

using namespace denali;
using namespace denali::codegen;
using namespace denali::egraph;
using denali::sat::Lit;
using denali::sat::Solver;

const char *denali::codegen::clauseFamilyName(ClauseFamily F) {
  switch (F) {
  case ClauseFamily::None:
    return "none";
  case ClauseFamily::Definition:
    return "definition";
  case ClauseFamily::Operand:
    return "operand";
  case ClauseFamily::Exclusivity:
    return "exclusivity";
  case ClauseFamily::Deadline:
    return "deadline";
  case ClauseFamily::Guard:
    return "guard";
  case ClauseFamily::Memory:
    return "memory";
  case ClauseFamily::Monotone:
    return "monotone";
  }
  return "unknown";
}

EncodingStats Encoder::encode(Solver &S, const std::vector<NamedGoal> &Goals,
                              const EncoderOptions &Opts) {
  const unsigned K = Opts.Cycles;
  const unsigned NC = numClusters(Opts);
  LastCycles = K;
  LastClusters = NC;

  obs::ObsSpan Span("encode");
  EncodingStats Stats;
  const uint64_t ClausesAtStart = S.numClauses();
  // Per-family clause attribution: the solver's clause count sampled at
  // each constraint-block boundary.
  uint64_t FamilyMark = ClausesAtStart;
  auto takeFamily = [&](uint64_t &Into) {
    uint64_t Now = S.numClauses();
    Into = Now - FamilyMark;
    FamilyMark = Now;
  };
  // Refutation attribution: stamp each clause block with its family plus
  // whatever cycle/unit/term coordinates the block is specific to. A plain
  // member store per block when enabled, nothing at all when not.
  auto tag = [&](uint32_t T) {
    if (Opts.TagClauses)
      S.setClauseTag(T);
  };

  const std::vector<MachineTerm> &Terms = U.terms();
  const std::vector<ClassId> &Needed = U.neededClasses();

  // --- Variables -----------------------------------------------------------
  // Dense tables; creation order (all L's, then all B's) matches the
  // variable numbering the tree-map encoder produced.
  LDense.assign(Terms.size() * NumUnits * K, -1);
  for (size_t T = 0; T < Terms.size(); ++T)
    for (machine::UnitId Un : Terms[T].Units)
      for (unsigned I = 0; I < K; ++I)
        LDense[lIndex(T, Un, I)] = S.newVar();
  BDense.assign(Needed.size() * NC * K, -1);
  BClassRow.clear();
  BClassRow.reserve(Needed.size() * 2);
  for (size_t R = 0; R < Needed.size(); ++R) {
    if (!BClassRow.emplace(G.find(Needed[R]), static_cast<uint32_t>(R))
             .second)
      continue; // Duplicate canonical class; first row wins.
    for (unsigned C = 0; C < NC; ++C)
      for (unsigned I = 0; I < K; ++I)
        BDense[bIndex(static_cast<uint32_t>(R), C, I)] = S.newVar();
  }

  auto LVar = [&](size_t T, machine::UnitId Un, unsigned I) {
    sat::Var V = LDense[lIndex(T, Un, I)];
    assert(V >= 0 && "missing L variable");
    return Lit::pos(V);
  };
  auto BVar = [&](ClassId Q, unsigned C, unsigned I) {
    auto It = BClassRow.find(G.find(Q));
    assert(It != BClassRow.end() && "missing B class");
    sat::Var V = BDense[bIndex(It->second, C, I)];
    assert(V >= 0 && "missing B variable");
    return Lit::pos(V);
  };

  // Extra cycles before term T's result (launched on unit Un) is usable on
  // cluster C: stores write shared state, everything else pays the
  // cross-cluster delay.
  auto crossDelay = [&](const MachineTerm &T, machine::UnitId Un, unsigned C) {
    if (Opts.SingleCluster || T.IsStore)
      return 0u;
    return clusterOfUnit(Un, Opts) == C ? 0u : M.crossClusterDelay();
  };

  // --- Condition 3 (+1): B(q,c,i) holds iff some member completed by i. ---
  for (ClassId Q : U.neededClasses()) {
    for (unsigned C = 0; C < NC; ++C) {
      for (unsigned I = 0; I < K; ++I) {
        tag(makeClauseTag(ClauseFamily::Definition, I, ~0u, G.find(Q)));
        Lit B = BVar(Q, C, I);
        sat::ClauseLits Definition{~B};
        if (I > 0) {
          Lit Prev = BVar(Q, C, I - 1);
          Definition.push_back(Prev);
          S.addClause(~Prev, B); // Monotonic.
        }
        for (size_t T : U.producersOf(Q)) {
          const MachineTerm &MT = Terms[T];
          for (machine::UnitId Un : MT.Units) {
            // Launch at J completes (on cluster C) at the end of cycle
            // J + latency - 1 + crossDelay; completion exactly at I:
            int J = static_cast<int>(I) -
                    static_cast<int>(MT.Latency - 1 + crossDelay(MT, Un, C));
            if (J < 0 || J >= static_cast<int>(K))
              continue;
            Lit L = LVar(T, Un, static_cast<unsigned>(J));
            Definition.push_back(L);
            S.addClause(~L, B);
          }
        }
        S.addClause(Definition);
      }
    }
  }
  takeFamily(Stats.DefinitionClauses);

  // --- Condition 2: operands available before launch. ---------------------
  for (size_t T = 0; T < Terms.size(); ++T) {
    const MachineTerm &MT = Terms[T];
    for (size_t ArgIdx = 0; ArgIdx < MT.Args.size(); ++ArgIdx) {
      ClassId A = MT.Args[ArgIdx];
      if (U.isFree(A))
        continue;
      if (!MT.IsLdiq &&
          U.isImmOperand(G, *MT.Desc, ArgIdx, MT.Args.size(), A))
        continue;
      for (machine::UnitId Un : MT.Units) {
        unsigned C = clusterOfUnit(Un, Opts);
        for (unsigned I = 0; I < K; ++I) {
          tag(makeClauseTag(ClauseFamily::Operand, I, Un,
                            static_cast<uint32_t>(T)));
          Lit L = LVar(T, Un, I);
          if (I == 0)
            S.addClause(~L); // No cycle -1 to have computed the operand in.
          else
            S.addClause(~L, BVar(A, C, I - 1));
        }
      }
    }
  }

  takeFamily(Stats.OperandClauses);

  // --- Condition 4: issue exclusivity per (cycle, unit). ------------------
  for (unsigned UIdx = 0; UIdx < NumUnits; ++UIdx) {
    for (unsigned I = 0; I < K; ++I) {
      tag(makeClauseTag(ClauseFamily::Exclusivity, I, UIdx));
      sat::ClauseLits Group;
      for (size_t T = 0; T < Terms.size(); ++T) {
        sat::Var V = LDense[lIndex(T, UIdx, I)];
        if (V >= 0)
          Group.push_back(Lit::pos(V));
      }
      sat::addAtMostOne(S, Group, Opts.AmoStyle);
    }
  }
  takeFamily(Stats.ExclusivityClauses);

  // --- Condition 5: goals computed within K cycles. ------------------------
  // In monotone mode every budget's deadline is gated by its activation
  // literal instead (below), so no unconditional deadline is emitted.
  if (!Opts.Monotone) {
    for (size_t GIdx = 0; GIdx < Goals.size(); ++GIdx) {
      const NamedGoal &Goal = Goals[GIdx];
      ClassId Q = G.find(Goal.Class);
      if (U.isFree(Q))
        continue;
      tag(makeClauseTag(ClauseFamily::Deadline, ~0u, ~0u,
                        static_cast<uint32_t>(GIdx)));
      sat::ClauseLits Clause;
      for (unsigned C = 0; C < NC; ++C)
        Clause.push_back(BVar(Q, C, K - 1));
      S.addClause(Clause);
    }
  }
  takeFamily(Stats.DeadlineClauses);

  // --- Section 7: guard before unsafe (memory) operations. -----------------
  if (Opts.GuardClass) {
    ClassId Gd = G.find(*Opts.GuardClass);
    if (!U.isFree(Gd)) {
      for (size_t T = 0; T < Terms.size(); ++T) {
        const MachineTerm &MT = Terms[T];
        if (!MT.IsLoad && !MT.IsStore)
          continue;
        for (machine::UnitId Un : MT.Units) {
          for (unsigned I = 0; I < K; ++I) {
            tag(makeClauseTag(ClauseFamily::Guard, I, Un,
                              static_cast<uint32_t>(T)));
            Lit L = LVar(T, Un, I);
            if (I == 0) {
              S.addClause(~L);
              continue;
            }
            sat::ClauseLits Clause{~L};
            for (unsigned C = 0; C < NC; ++C)
              Clause.push_back(BVar(Gd, C, I - 1));
            S.addClause(Clause);
          }
        }
      }
    }
  }
  takeFamily(Stats.GuardClauses);

  // --- Memory discipline. ---------------------------------------------------
  // Each store launches at most once (a replayed store could overwrite a
  // later store to the same unprovably-distinct address).
  for (size_t T = 0; T < Terms.size(); ++T) {
    const MachineTerm &MT = Terms[T];
    if (!MT.IsStore)
      continue;
    tag(makeClauseTag(ClauseFamily::Memory, ~0u, ~0u,
                      static_cast<uint32_t>(T)));
    sat::ClauseLits All;
    for (machine::UnitId Un : MT.Units)
      for (unsigned I = 0; I < K; ++I)
        All.push_back(LVar(T, Un, I));
    sat::addAtMostOne(S, All, Opts.AmoStyle);
  }
  // Anti-dependence: a load of memory state m may not launch after the
  // store that overwrites m (i.e., the store whose memory argument is m).
  for (size_t TL = 0; TL < Terms.size(); ++TL) {
    if (!Terms[TL].IsLoad)
      continue;
    tag(makeClauseTag(ClauseFamily::Memory, ~0u, ~0u,
                      static_cast<uint32_t>(TL)));
    ClassId Mem = Terms[TL].Args[0];
    for (size_t TS = 0; TS < Terms.size(); ++TS) {
      if (!Terms[TS].IsStore || G.find(Terms[TS].Args[0]) != G.find(Mem))
        continue;
      for (machine::UnitId UL : Terms[TL].Units)
        for (machine::UnitId US : Terms[TS].Units)
          for (unsigned IL = 0; IL < K; ++IL)
            for (unsigned IS = 0; IS < IL; ++IS)
              S.addClause(~LVar(TL, UL, IL), ~LVar(TS, US, IS));
    }
  }
  takeFamily(Stats.MemoryClauses);

  // --- Monotone budget ladder (incremental search). -------------------------
  // One activation literal per budget B: E_B means "some launch at cycle
  // >= B". Solving under the assumption ¬E_B therefore (a) forbids every
  // launch at cycle B or later (via the chain E_{B+1} -> E_B and the
  // per-launch clauses L(t,u,i) -> E_i), and (b) activates the budget-B
  // goal deadline (E_B ∨ ⋁_c B(goal, c, B-1)). Restricted to cycles < B
  // the constraint set is exactly the fresh budget-B encoding, so each
  // probe keeps the paper's SAT/UNSAT evidence while one solver carries
  // learnt clauses across the whole ladder.
  ExceedVars.clear();
  if (Opts.Monotone) {
    ExceedVars.assign(K + 1, -1);
    for (unsigned B = 1; B <= K; ++B)
      ExceedVars[B] = S.newVar();
    tag(makeClauseTag(ClauseFamily::Monotone));
    for (unsigned B = 1; B < K; ++B)
      S.addClause(Lit::neg(ExceedVars[B + 1]), Lit::pos(ExceedVars[B]));
    for (size_t T = 0; T < Terms.size(); ++T)
      for (machine::UnitId Un : Terms[T].Units)
        for (unsigned I = 1; I < K; ++I) {
          tag(makeClauseTag(ClauseFamily::Monotone, I, Un,
                            static_cast<uint32_t>(T)));
          S.addClause(~LVar(T, Un, I), Lit::pos(ExceedVars[I]));
        }
    for (unsigned B = 1; B <= K; ++B) {
      for (size_t GIdx = 0; GIdx < Goals.size(); ++GIdx) {
        const NamedGoal &Goal = Goals[GIdx];
        ClassId Q = G.find(Goal.Class);
        if (U.isFree(Q))
          continue;
        // The gated deadline is the budget-B form of the Deadline family.
        tag(makeClauseTag(ClauseFamily::Deadline, B - 1, ~0u,
                          static_cast<uint32_t>(GIdx)));
        sat::ClauseLits Clause{Lit::pos(ExceedVars[B])};
        for (unsigned C = 0; C < NC; ++C)
          Clause.push_back(BVar(Q, C, B - 1));
        S.addClause(Clause);
      }
    }
  }
  tag(0);

  takeFamily(Stats.MonotoneClauses);

  Stats.Cycles = K;
  Stats.Vars = S.numVars();
  Stats.Clauses = S.numClauses();
  Stats.MachineTerms = Terms.size();
  Stats.Classes = U.neededClasses().size();
  if (obs::enabled()) {
    if (Span.active())
      Span.arg("cycles", Stats.Cycles)
          .arg("vars", Stats.Vars)
          .arg("clauses", Stats.Clauses)
          .arg("terms", static_cast<uint64_t>(Stats.MachineTerms))
          .arg("classes", static_cast<uint64_t>(Stats.Classes))
          .arg("monotone", Opts.Monotone ? "yes" : "no");
    auto &R = obs::Registry::global();
    R.counter("encode.runs").add(1);
    R.counter("encode.vars").add(static_cast<uint64_t>(Stats.Vars));
    R.counter("encode.clauses").add(Stats.Clauses - ClausesAtStart);
    R.counter("encode.clauses.definition").add(Stats.DefinitionClauses);
    R.counter("encode.clauses.operand").add(Stats.OperandClauses);
    R.counter("encode.clauses.exclusivity").add(Stats.ExclusivityClauses);
    R.counter("encode.clauses.deadline").add(Stats.DeadlineClauses);
    R.counter("encode.clauses.guard").add(Stats.GuardClauses);
    R.counter("encode.clauses.memory").add(Stats.MemoryClauses);
    R.counter("encode.clauses.monotone").add(Stats.MonotoneClauses);
  }
  return Stats;
}

sat::Lit Encoder::budgetAssumption(unsigned K) const {
  assert(K >= 1 && K < ExceedVars.size() && ExceedVars[K] >= 0 &&
         "budget outside the monotone encode's range");
  return Lit::neg(ExceedVars[K]);
}

machine::Program Encoder::extract(const Solver &S,
                                  const std::vector<NamedGoal> &Goals,
                                  const EncoderOptions &Opts,
                                  const std::string &Name) const {
  const std::vector<MachineTerm> &Terms = U.terms();
  machine::Program P;
  P.Name = Name;
  P.Cycles = Opts.Cycles;
  P.Model = &M;

  uint32_t NextReg = 0;
  std::unordered_map<ClassId, uint32_t> InputReg;
  for (const Universe::InputInfo &In : U.inputs()) {
    uint32_t R = NextReg++;
    P.Inputs.push_back(machine::ProgramInput{R, In.Name, In.IsMemory});
    InputReg[In.Class] = R;
  }

  struct Launch {
    size_t Term;
    machine::UnitId Un;
    unsigned Cycle;
    uint32_t VReg;
  };
  // Dense scan in (term, unit, cycle) order — the same deterministic order
  // the old tree-map iteration produced. In monotone mode launches beyond
  // the SAT budget are false in the model (forced by the assumption), so
  // scanning all encoded cycles is still exact.
  std::vector<Launch> Launches;
  for (size_t T = 0; T < Terms.size(); ++T) {
    for (unsigned UIdx = 0; UIdx < NumUnits; ++UIdx) {
      for (unsigned I = 0; I < LastCycles; ++I) {
        sat::Var V = LDense[lIndex(T, UIdx, I)];
        if (V < 0 || !S.modelValue(V))
          continue;
        Launches.push_back(
            Launch{T, static_cast<machine::UnitId>(UIdx), I, NextReg++});
      }
    }
  }

  // Producer lookup: the launch of a term in class Q whose result is usable
  // on cluster C at the start of cycle I, completing earliest.
  auto findProducer = [&](ClassId Q, unsigned C,
                          unsigned I) -> const Launch * {
    Q = G.find(Q);
    const Launch *Best = nullptr;
    unsigned BestReady = ~0u;
    for (const Launch &L : Launches) {
      const MachineTerm &MT = Terms[L.Term];
      if (G.find(MT.Class) != Q)
        continue;
      unsigned XD = (Opts.SingleCluster || MT.IsStore ||
                     clusterOfUnit(L.Un, Opts) == C)
                        ? 0
                        : M.crossClusterDelay();
      unsigned Ready = L.Cycle + MT.Latency + XD;
      if (Ready > I)
        continue;
      if (Ready < BestReady) {
        BestReady = Ready;
        Best = &L;
      }
    }
    return Best;
  };

  // Wire instructions.
  std::unordered_map<const Launch *, machine::Instruction> Built;
  for (const Launch &L : Launches) {
    const MachineTerm &MT = Terms[L.Term];
    machine::Instruction I;
    I.Mnemonic = MT.Desc->Mnemonic;
    I.Op = MT.Desc->Op;
    I.Dest = L.VReg;
    I.Cycle = L.Cycle;
    I.IssueUnit = L.Un;
    I.Latency = MT.Latency;
    I.Mem = MT.Desc->Mem;
    I.Disp = MT.Disp;
    I.SourceTerm = static_cast<int32_t>(L.Term);
    if (MT.IsLdiq) {
      I.Srcs.push_back(machine::Operand::imm(MT.ConstVal));
    } else {
      for (size_t ArgIdx = 0; ArgIdx < MT.Args.size(); ++ArgIdx) {
        ClassId A = MT.Args[ArgIdx];
        std::optional<uint64_t> KConst = G.classConstant(A);
        if (U.isFree(A)) {
          if (KConst && *KConst == 0) {
            I.Srcs.push_back(machine::Operand::imm(0)); // Zero register.
            continue;
          }
          auto It = InputReg.find(G.find(A));
          assert(It != InputReg.end() && "free class without input");
          I.Srcs.push_back(machine::Operand::reg(It->second));
          continue;
        }
        if (U.isImmOperand(G, *MT.Desc, ArgIdx, MT.Args.size(), A)) {
          I.Srcs.push_back(machine::Operand::imm(*KConst));
          continue;
        }
        const Launch *Prod =
            findProducer(A, clusterOfUnit(L.Un, Opts), L.Cycle);
        if (!Prod)
          reportFatalError(strFormat(
              "extraction: no producer for class c%u needed by '%s' at "
              "cycle %u (encoder/extractor mismatch)",
              G.find(A), I.Mnemonic.c_str(), L.Cycle));
        I.Srcs.push_back(machine::Operand::reg(Prod->VReg));
      }
    }
    Built.emplace(&L, std::move(I));
  }

  // Outputs: choose, per goal, the earliest-completing producer.
  std::unordered_set<uint32_t> OutputRegs;
  for (const NamedGoal &Goal : Goals) {
    ClassId Q = G.find(Goal.Class);
    if (U.isFree(Q)) {
      std::optional<uint64_t> KConst = G.classConstant(Q);
      assert(!KConst || *KConst != 0 ||
             !"literal-zero results are not expected from GMAs");
      (void)KConst;
      auto It = InputReg.find(Q);
      assert(It != InputReg.end() && "free goal without input register");
      P.Outputs.push_back({Goal.Target, It->second});
      OutputRegs.insert(It->second);
      continue;
    }
    const Launch *Best = nullptr;
    unsigned BestReady = ~0u;
    for (unsigned C = 0; C < numClusters(Opts); ++C) {
      const Launch *L = findProducer(Q, C, Opts.Cycles);
      if (!L)
        continue;
      unsigned Ready = L->Cycle + Terms[L->Term].Latency;
      if (Ready < BestReady) {
        BestReady = Ready;
        Best = L;
      }
    }
    if (!Best)
      reportFatalError("extraction: goal class has no completed producer");
    P.Outputs.push_back({Goal.Target, Best->VReg});
    OutputRegs.insert(Best->VReg);
  }

  // Usage analysis: drop unused stores entirely (they would write real
  // memory outside the GMA's contract); mark other unused instructions
  // (Figure 4 keeps its "(unused)" extbl).
  bool ChangedUsage = true;
  std::unordered_set<const Launch *> Dropped;
  while (ChangedUsage) {
    ChangedUsage = false;
    std::unordered_set<uint32_t> Used(OutputRegs.begin(), OutputRegs.end());
    for (const Launch &L : Launches) {
      if (Dropped.count(&L))
        continue;
      for (const machine::Operand &Src : Built[&L].Srcs)
        if (Src.isReg())
          Used.insert(Src.Reg);
    }
    for (const Launch &L : Launches) {
      if (Dropped.count(&L))
        continue;
      if (Terms[L.Term].IsStore && !Used.count(L.VReg)) {
        Dropped.insert(&L);
        ChangedUsage = true;
      }
    }
    if (!ChangedUsage) {
      for (const Launch &L : Launches) {
        if (Dropped.count(&L))
          continue;
        Built[&L].Unused = !Used.count(L.VReg);
      }
    }
  }

  for (const Launch &L : Launches)
    if (!Dropped.count(&L))
      P.Instrs.push_back(std::move(Built[&L]));
  std::stable_sort(P.Instrs.begin(), P.Instrs.end(),
                   [](const machine::Instruction &A,
                      const machine::Instruction &B) {
                     if (A.Cycle != B.Cycle)
                       return A.Cycle < B.Cycle;
                     return A.IssueUnit < B.IssueUnit;
                   });
  P.NumVRegs = NextReg;
  return P;
}
