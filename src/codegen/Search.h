//===- codegen/Search.h - Cycle-budget search -------------------*- C++ -*-===//
///
/// \file
/// The outer loop of the obvious approach (paper, section 1.3): probe cycle
/// budgets K, submitting "no K-cycle program computes the goals" to the SAT
/// solver. UNSAT proves the lower bound K+1; SAT yields the program. The
/// paper uses binary search but notes probe costs are far from constant;
/// that observation is exactly why a third, parallel-portfolio strategy is
/// provided: probes are independent SAT instances, so a window of budgets
/// [K, K+W) runs concurrently on a worker pool, with probes made irrelevant
/// by a SAT answer at a smaller budget cancelled cooperatively. All three
/// strategies pin the same minimal K with the same SAT/UNSAT evidence;
/// every probe — cancelled ones included — is recorded.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_CODEGEN_SEARCH_H
#define DENALI_CODEGEN_SEARCH_H

#include "codegen/Encoder.h"

#include <optional>

namespace denali {
namespace codegen {

/// Incremental probes every budget like Linear but reuses one SAT solver
/// across the whole ladder: the universe is encoded once up to MaxCycles
/// (monotone mode) and each budget K is a solve under the assumption "no
/// program longer than K cycles", so learnt clauses, variable activities,
/// and saved phases carry from probe to probe.
enum class SearchStrategy { Linear, Binary, Portfolio, Incremental };

struct SearchOptions {
  SearchStrategy Strategy = SearchStrategy::Linear;
  unsigned MinCycles = 1;
  unsigned MaxCycles = 24;
  /// Run Linear or Binary on the shared incremental solver instead of a
  /// fresh solver per probe (Linear + Incremental ≡ the Incremental
  /// strategy; Binary bisects the same assumption ladder). Portfolio
  /// ignores this flag — its probes are concurrent and need one solver
  /// each.
  bool Incremental = false;
  /// Portfolio strategy: number of worker threads (and the width of the
  /// concurrently probed budget window). 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Per-probe conflict budget (0 = unlimited).
  uint64_t ConflictBudget = 0;
  /// If nonempty, each probe's CNF is written to
  /// <DumpCnfDir>/<name>.K<cycles>.cnf in DIMACS format (for cross-checking
  /// with external solvers — the paper swapped SAT solvers freely).
  std::string DumpCnfDir;
  /// Certify refutations: every UNSAT probe logs a clausal proof which is
  /// re-validated by the independent RUP checker, upgrading "the solver
  /// said K cycles are impossible" to a machine-checked certificate. Works
  /// with the incremental solver too: the probe's certificate is checked
  /// against the monotone CNF plus the budget assumption as a unit clause,
  /// with the cumulative learnt-clause log plus the final assumption
  /// conflict as the derivation.
  bool CertifyRefutations = false;
  /// After the ladder pins the minimal feasible K with K > MinCycles, run
  /// one extra probe at K-1 on a fresh solver with clause tagging and core
  /// tracking enabled, and report which clause families refuted it
  /// (SearchResult::WhyUnsatTags). Uniform across strategies — the explain
  /// probe is always a dedicated monotone instance, so the per-strategy
  /// evidence is untouched.
  bool ExplainUnsat = false;
  EncoderOptions Encoding; ///< Cycles field is overwritten per probe.
};

/// One SAT probe (a row of the byteswap4 problem-size report).
struct Probe {
  unsigned Cycles = 0;
  sat::SolveResult Result = sat::SolveResult::Unknown;
  /// Under the incremental solver all probes share one monotone encoding,
  /// so Stats repeats the shared instance size and EncodeSeconds is
  /// charged to the ladder's first probe only.
  EncodingStats Stats;
  double EncodeSeconds = 0;
  double SolveSeconds = 0;
  /// Conflicts spent on this probe (a per-call delta under the
  /// incremental solver, whose counters are cumulative).
  uint64_t Conflicts = 0;
  /// With CertifyRefutations, for UNSAT probes: proof length and whether
  /// the RUP checker accepted it.
  size_t ProofSteps = 0;
  bool ProofChecked = false;
  double ProofCheckSeconds = 0;
  /// Portfolio strategy: true if this probe was cooperatively cancelled
  /// (its Result is Unknown but does not count as evidence or an error —
  /// a SAT answer at a smaller budget made it irrelevant).
  bool Cancelled = false;
  /// Pool worker that ran the probe (-1 outside the portfolio strategy).
  int Worker = -1;
  /// Solver effort spent on this probe (per-call deltas under the
  /// incremental solver, whose counters are cumulative).
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearntClauses = 0;
  /// Incremental probes: size of the failed-assumption set of an Unsat
  /// answer (Solver::conflict()).
  size_t FailedAssumptions = 0;
  /// For cancelled portfolio probes: wall-clock seconds from the winner's
  /// cancellation request to this probe's return (negative when the probe
  /// was never asked to cancel).
  double CancelLatencySeconds = -1;
  /// For cancelled probes: conflicts the solver worked through after its
  /// last interrupt poll that read false (Solver::conflictsAfterInterrupt
  /// — at most 1; PortfolioTests asserts the bound).
  uint64_t ConflictsAfterCancel = 0;
};

/// One probe as a compact report cell, e.g. "K=5[1639v/4613c/sat]" — the
/// shared formatter behind the CLI's --stats ladder and the benches.
std::string describeProbe(const Probe &P);

/// The search outcome.
struct SearchResult {
  bool Found = false;
  std::string Error; ///< Set when !Found.
  machine::Program Program;
  unsigned Cycles = 0; ///< Minimal feasible budget found.
  /// True if some strictly smaller budget was *proved* infeasible (the
  /// paper's optimality certificate); false if MinCycles was feasible
  /// immediately or a probe was inconclusive.
  bool LowerBoundProved = false;
  std::vector<Probe> Probes;
  /// Wall-clock duration of the whole budget search. Under the portfolio
  /// strategy this is what shrinks; CpuSeconds stays comparable to the
  /// sequential strategies (total probe work performed).
  double WallSeconds = 0;
  /// Sum of every probe's encode + solve + proof-check time across all
  /// workers (== WallSeconds for the sequential strategies, up to
  /// bookkeeping noise).
  double CpuSeconds = 0;
  /// Number of probes that were cooperatively cancelled (portfolio only).
  size_t CancelledProbes = 0;
  /// Index into Probes of the probe whose model became Program (-1 when
  /// !Found); Probes[WinningProbe].Worker is the winning thread.
  int WinningProbe = -1;
  /// With SearchOptions::ExplainUnsat: the attribution core of the K-1
  /// refutation — sorted distinct clause tags (see makeClauseTag) naming
  /// the constraint families that make one cycle fewer impossible. Empty
  /// when no explain probe ran (MinCycles was feasible, or the probe did
  /// not confirm Unsat).
  std::vector<uint32_t> WhyUnsatTags;
  /// The budget the explain probe refuted (Cycles - 1; 0 when none ran).
  unsigned WhyUnsatCycles = 0;
};

/// Finds the minimal-cycle program for \p Goals.
SearchResult searchBudgets(const egraph::EGraph &G, const machine::MachineModel &Isa,
                           const Universe &U,
                           const std::vector<NamedGoal> &Goals,
                           const SearchOptions &Opts,
                           const std::string &Name);

} // namespace codegen
} // namespace denali

#endif // DENALI_CODEGEN_SEARCH_H
