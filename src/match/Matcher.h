//===- match/Matcher.h - E-matching and saturation --------------*- C++ -*-===//
///
/// \file
/// The matching phase (paper, section 5): repeatedly finds instances of the
/// axioms in the E-graph and asserts them, until a quiescent state is
/// reached (or fuel limits stop it — the paper's caveat about heuristics
/// that keep the matcher from running forever, its first reason for saying
/// "near-optimal").
///
/// E-matching searches whole equivalence classes: the pattern k * 2**n
/// matches reg6 * 4 once 4's class also contains 2**2 — precisely the
/// Figure 2 scenario.
///
/// Scaling machinery (Caviar-style saturation scheduling):
///   * **Deferred rebuilding** — saturate() switches the graph into
///     egraph::RebuildMode::Deferred and batches congruence repair into one
///     rebuild() per round instead of one per asserted instance.
///   * **Match budgets with backoff** — an axiom whose raw matches overflow
///     its per-round budget is truncated, sits out the next round, and
///     returns with a doubled budget.
///   * **Phased rule sets** — cheap simplification axioms saturate first;
///     expansive axioms (a side materially larger than the other, e.g.
///     k*x -> shifts/adds) join once the cheap phase quiesces.
///   * **Parallel matching** — the per-round match loop fans out over
///     work items (axiom x trigger x root-chunk) on a support::ThreadPool;
///     the graph is path-compressed first so every read is frozen, and
///     results merge in deterministic item order. Instantiation stays
///     single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MATCH_MATCHER_H
#define DENALI_MATCH_MATCHER_H

#include "egraph/EGraph.h"
#include "match/Axiom.h"

#include <functional>
#include <string>
#include <vector>

namespace denali {
namespace match {

/// Fuel limits and scheduling knobs for saturation.
struct MatchLimits {
  unsigned MaxRounds = 24;
  size_t MaxNodes = 60000;          ///< Stop instantiating past this size.
  size_t MaxInstancesPerRound = 200000;
  /// Per-axiom, per-round raw-match budget; 0 = unlimited (scheduler
  /// inert). Overflowing axioms back off for a round and double their
  /// budget (`--match-budget`).
  uint64_t MatchBudget = 0;
  /// Phase the rule set: expansive axioms wait until the cheap phase
  /// quiesces (`--match-phases`).
  bool Phased = false;
  /// Worker threads for the per-round match loop; <= 1 matches inline.
  /// Match *generation* is read-only and concurrent; instantiation and
  /// merging stay single-threaded per round (`--match-threads`).
  unsigned Threads = 1;
  /// Restore the pre-scheduling behavior: congruence repair after every
  /// asserted instance instead of one batched rebuild per round
  /// (`--match-eager-rebuild`; the bench_egraph_scale A/B baseline).
  bool EagerRebuild = false;
  /// Entry cap of the persistent (axiom, substitution) seen-set; the set
  /// is flushed (counted as evictions) when it grows past this.
  size_t SeenCap = 1u << 20;
};

/// Statistics of one saturation run.
struct MatchStats {
  unsigned Rounds = 0;
  uint64_t MatchesFound = 0;
  uint64_t InstancesDeduped = 0; ///< Matches dropped as already seen.
  uint64_t InstancesAsserted = 0;
  size_t FinalNodes = 0;
  size_t FinalClasses = 0;
  bool Quiesced = false; ///< True if a full round produced no change.
  // Scheduling decisions (surfaced as match.sched.* obs counters).
  uint64_t BudgetOverflows = 0; ///< Axiom-rounds truncated at their budget.
  uint64_t BudgetSkips = 0;     ///< Axiom-rounds sat out by backoff.
  uint64_t SeenHits = 0;        ///< Persistent pending-instance dedup hits.
  uint64_t SeenEvictions = 0;   ///< Seen-set entries dropped by cap flushes.
  uint64_t PhaseAdvances = 0;   ///< Times the active phase widened.
  // Graph-side work, as deltas of egraph::RebuildStats over the run.
  uint64_t Merges = 0;
  uint64_t CongruenceMerges = 0;
  uint64_t ConstantFolds = 0;
  uint64_t Rebuilds = 0;
};

/// An elaboration hook run once per round before matching; used for
/// "heuristically relevant" constant facts (4 = 2**2, byte-regular masks)
/// and the base+offset disequality oracle.
using Elaborator = std::function<void(egraph::EGraph &)>;

class Matcher {
public:
  explicit Matcher(std::vector<Axiom> Axioms)
      : Axioms(std::move(Axioms)) {}

  /// Adds an elaboration hook.
  void addElaborator(Elaborator E) { Elaborators.push_back(std::move(E)); }

  const std::vector<Axiom> &axioms() const { return Axioms; }

  /// Saturates \p G. \returns the run's statistics.
  MatchStats saturate(egraph::EGraph &G,
                      const MatchLimits &Limits = MatchLimits());

  /// The scheduling phase of \p A: 0 for cheap simplification axioms,
  /// 1 for expansive ones (some equality side at least two operator
  /// applications larger than the other — the shape of decompositions
  /// like k*x -> shifts/adds that blow the graph up).
  static unsigned axiomPhase(const Axiom &A);

private:
  std::vector<Axiom> Axioms;
  std::vector<Elaborator> Elaborators;

  // Instantiation dedup: (axiom index, canonical bindings) already asserted.
  struct DoneKey {
    uint32_t AxiomIdx;
    std::vector<egraph::ClassId> Bindings;
    bool operator==(const DoneKey &O) const {
      return AxiomIdx == O.AxiomIdx && Bindings == O.Bindings;
    }
  };
  struct DoneKeyHash {
    size_t operator()(const DoneKey &K) const {
      size_t H = K.AxiomIdx;
      for (egraph::ClassId C : K.Bindings)
        H = H * 1000003u ^ C;
      return H;
    }
  };
  std::unordered_set<DoneKey, DoneKeyHash> Done;
  /// Persistent pending-instance dedup (promoted from PR 1's round-local
  /// set): (axiom, substitution) pairs already queued in *some* round, so
  /// re-found matches stop burning the per-round instance cap. Bounded by
  /// MatchLimits::SeenCap; flushed (never partially evicted) so a dropped
  /// entry can only cause a redundant re-assert, never a lost instance.
  std::unordered_set<DoneKey, DoneKeyHash> Seen;

  egraph::ClassId instantiate(egraph::EGraph &G, const Axiom &A, PatternId P,
                              const std::vector<egraph::ClassId> &Bindings);

  /// Asserts one axiom instance. \p AxiomIdx and \p Round feed the
  /// provenance justification when the graph records proofs. \returns true
  /// if anything changed.
  bool assertInstance(egraph::EGraph &G, const Axiom &A, uint32_t AxiomIdx,
                      unsigned Round,
                      const std::vector<egraph::ClassId> &Bindings);
};

/// Returns the standard elaborators: powers of two (enables k*2**n matches)
/// and byte-regular masks (enables zapnot), plus the base+offset
/// disequality oracle for memory indices.
std::vector<Elaborator> standardElaborators();

} // namespace match
} // namespace denali

#endif // DENALI_MATCH_MATCHER_H
