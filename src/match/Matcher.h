//===- match/Matcher.h - E-matching and saturation --------------*- C++ -*-===//
///
/// \file
/// The matching phase (paper, section 5): repeatedly finds instances of the
/// axioms in the E-graph and asserts them, until a quiescent state is
/// reached (or fuel limits stop it — the paper's caveat about heuristics
/// that keep the matcher from running forever, its first reason for saying
/// "near-optimal").
///
/// E-matching searches whole equivalence classes: the pattern k * 2**n
/// matches reg6 * 4 once 4's class also contains 2**2 — precisely the
/// Figure 2 scenario.
///
/// Scaling machinery (Caviar-style saturation scheduling):
///   * **Deferred rebuilding** — saturate() switches the graph into
///     egraph::RebuildMode::Deferred and batches congruence repair into one
///     rebuild() per round instead of one per asserted instance.
///   * **Match budgets with backoff** — an axiom whose raw matches overflow
///     its per-round budget is truncated, sits out the next round, and
///     returns with a doubled budget.
///   * **Phased rule sets** — cheap simplification axioms saturate first;
///     expansive axioms (a side materially larger than the other, e.g.
///     k*x -> shifts/adds) join once the cheap phase quiesces.
///   * **Parallel matching** — the per-round match loop fans out over
///     work items (axiom x trigger x root-chunk) on a support::ThreadPool;
///     the graph is path-compressed first so every read is frozen, and
///     results merge in deterministic item order. Instantiation stays
///     single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MATCH_MATCHER_H
#define DENALI_MATCH_MATCHER_H

#include "egraph/EGraph.h"
#include "match/Axiom.h"
#include "obs/ProfileLedger.h"

#include <functional>
#include <string>
#include <vector>

namespace denali {
namespace match {

/// Fuel limits and scheduling knobs for saturation.
struct MatchLimits {
  unsigned MaxRounds = 24;
  size_t MaxNodes = 60000;          ///< Stop instantiating past this size.
  size_t MaxInstancesPerRound = 200000;
  /// Per-axiom, per-round raw-match budget; 0 = unlimited (scheduler
  /// inert). Overflowing axioms back off for a round and double their
  /// budget (`--match-budget`).
  uint64_t MatchBudget = 0;
  /// Phase the rule set: expansive axioms wait until the cheap phase
  /// quiesces (`--match-phases`).
  bool Phased = false;
  /// Worker threads for the per-round match loop; <= 1 matches inline.
  /// Match *generation* is read-only and concurrent; instantiation and
  /// merging stay single-threaded per round (`--match-threads`).
  unsigned Threads = 1;
  /// Restore the pre-scheduling behavior: congruence repair after every
  /// asserted instance instead of one batched rebuild per round
  /// (`--match-eager-rebuild`; the bench_egraph_scale A/B baseline).
  bool EagerRebuild = false;
  /// Entry cap of the persistent (axiom, substitution) seen-set; the set
  /// is flushed (counted as evictions) when it grows past this.
  size_t SeenCap = 1u << 20;
  /// Per-axiom attribution (MatchStats::PerAxiom + match.axiom.* counters).
  /// Always on in production; the only reason to turn it off is the
  /// bench_egraph_scale overhead A/B (E20), which measures what the
  /// timing calls cost. Never changes matching behavior.
  bool Profile = true;
  /// History-driven scheduling (`--match-adaptive`): seed per-axiom
  /// budgets and phase assignment from Ledger's rows under LedgerKey
  /// instead of uniform budgets + blind doubling. Axioms without history
  /// keep the PR 6 defaults; a null/empty ledger is exactly PR 6
  /// behavior. Scheduling may reorder work, never change the saturated
  /// graph: held-back work re-enters through the same backoff /
  /// phase-advance machinery, so a run to quiescence reaches the
  /// identical closure whatever the ledger says.
  bool Adaptive = false;
  const obs::ProfileLedger *Ledger = nullptr;
  /// The ledger's graph key for this workload (the driver passes
  /// driver::profileLedgerKey()).
  std::string LedgerKey;
};

/// Statistics of one saturation run.
struct MatchStats {
  unsigned Rounds = 0;
  uint64_t MatchesFound = 0;
  uint64_t InstancesDeduped = 0; ///< Matches dropped as already seen.
  uint64_t InstancesAsserted = 0;
  size_t FinalNodes = 0;
  size_t FinalClasses = 0;
  bool Quiesced = false; ///< True if a full round produced no change.
  // Scheduling decisions (surfaced as match.sched.* obs counters).
  uint64_t BudgetOverflows = 0; ///< Axiom-rounds truncated at their budget.
  uint64_t BudgetSkips = 0;     ///< Axiom-rounds sat out by backoff.
  uint64_t SeenHits = 0;        ///< Persistent pending-instance dedup hits.
  uint64_t SeenEvictions = 0;   ///< Seen-set entries dropped by cap flushes.
  uint64_t PhaseAdvances = 0;   ///< Times the active phase widened.
  // Graph-side work, as deltas of egraph::RebuildStats over the run.
  uint64_t Merges = 0;
  uint64_t CongruenceMerges = 0;
  uint64_t ConstantFolds = 0;
  uint64_t Rebuilds = 0;
  // Adaptive scheduling decisions (--match-adaptive; 0 when off).
  uint64_t AdaptiveSeeded = 0;  ///< Axioms whose budget came from history.
  uint64_t AdaptiveDemoted = 0; ///< Never-productive axioms demoted.
  // Parallel match-loop accounting (match.sched.par.*; 0 single-threaded).
  uint64_t ParRounds = 0;     ///< Rounds that fanned out on the pool.
  uint64_t ParItems = 0;      ///< Work items executed on the pool.
  uint64_t ParChunkRoots = 0; ///< Root nodes covered by those items.
  uint64_t ParBusyNs = 0;     ///< Summed worker busy time.
  /// Per-axiom attribution, indexed like Matcher::axioms() (empty when
  /// MatchLimits::Profile is off). Raw / Instances / Merges / Overflows /
  /// Skips / First-LastRound are deterministic for a fixed workload and
  /// thread-count-independent; the *Ns fields are wall time.
  std::vector<obs::AxiomProfile> PerAxiom;
};

/// An elaboration hook run once per round before matching; used for
/// "heuristically relevant" constant facts (4 = 2**2, byte-regular masks)
/// and the base+offset disequality oracle.
using Elaborator = std::function<void(egraph::EGraph &)>;

class Matcher {
public:
  explicit Matcher(std::vector<Axiom> Axioms)
      : Axioms(std::move(Axioms)) {}

  /// Adds an elaboration hook.
  void addElaborator(Elaborator E) { Elaborators.push_back(std::move(E)); }

  const std::vector<Axiom> &axioms() const { return Axioms; }

  /// Saturates \p G. \returns the run's statistics.
  MatchStats saturate(egraph::EGraph &G,
                      const MatchLimits &Limits = MatchLimits());

  /// The scheduling phase of \p A: 0 for cheap simplification axioms,
  /// 1 for expansive ones (some equality side at least two operator
  /// applications larger than the other — the shape of decompositions
  /// like k*x -> shifts/adds that blow the graph up).
  static unsigned axiomPhase(const Axiom &A);

  /// The ledger/metrics identity of axiom \p Idx: "<name>#<index>".
  /// Axiom::Name alone is positional within its source text, so the math
  /// and alpha builtin sets can collide on name; the index pins the id
  /// within a fixed axiom set (builtins first, program axioms appended in
  /// program order — stable across runs of the same workload).
  static std::string axiomLedgerId(const Axiom &A, size_t Idx);

private:
  std::vector<Axiom> Axioms;
  std::vector<Elaborator> Elaborators;

  // Instantiation dedup: (axiom index, canonical bindings) already asserted.
  struct DoneKey {
    uint32_t AxiomIdx;
    std::vector<egraph::ClassId> Bindings;
    bool operator==(const DoneKey &O) const {
      return AxiomIdx == O.AxiomIdx && Bindings == O.Bindings;
    }
  };
  struct DoneKeyHash {
    size_t operator()(const DoneKey &K) const {
      size_t H = K.AxiomIdx;
      for (egraph::ClassId C : K.Bindings)
        H = H * 1000003u ^ C;
      return H;
    }
  };
  std::unordered_set<DoneKey, DoneKeyHash> Done;
  /// Persistent pending-instance dedup (promoted from PR 1's round-local
  /// set): (axiom, substitution) pairs already queued in *some* round, so
  /// re-found matches stop burning the per-round instance cap. Bounded by
  /// MatchLimits::SeenCap; flushed (never partially evicted) so a dropped
  /// entry can only cause a redundant re-assert, never a lost instance.
  std::unordered_set<DoneKey, DoneKeyHash> Seen;

  egraph::ClassId instantiate(egraph::EGraph &G, const Axiom &A, PatternId P,
                              const std::vector<egraph::ClassId> &Bindings);

  /// Asserts one axiom instance. \p AxiomIdx and \p Round feed the
  /// provenance justification when the graph records proofs. \returns true
  /// if anything changed.
  bool assertInstance(egraph::EGraph &G, const Axiom &A, uint32_t AxiomIdx,
                      unsigned Round,
                      const std::vector<egraph::ClassId> &Bindings);
};

/// Returns the standard elaborators: powers of two (enables k*2**n matches)
/// and byte-regular masks (enables zapnot), plus the base+offset
/// disequality oracle for memory indices.
std::vector<Elaborator> standardElaborators();

/// Records one saturation run's per-axiom attribution into \p Ledger under
/// \p GraphKey: one row (Runs=1) per non-ground axiom — all-zero rows
/// included, so "matched nothing across N runs" is itself history the
/// adaptive scheduler can demote on. No-op when the run was made with
/// MatchLimits::Profile off.
void recordMatchProfile(obs::ProfileLedger &Ledger,
                        const std::string &GraphKey,
                        const std::vector<Axiom> &Axioms,
                        const MatchStats &Stats);

} // namespace match
} // namespace denali

#endif // DENALI_MATCH_MATCHER_H
