//===- match/Matcher.h - E-matching and saturation --------------*- C++ -*-===//
///
/// \file
/// The matching phase (paper, section 5): repeatedly finds instances of the
/// axioms in the E-graph and asserts them, until a quiescent state is
/// reached (or fuel limits stop it — the paper's caveat about heuristics
/// that keep the matcher from running forever, its first reason for saying
/// "near-optimal").
///
/// E-matching searches whole equivalence classes: the pattern k * 2**n
/// matches reg6 * 4 once 4's class also contains 2**2 — precisely the
/// Figure 2 scenario.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MATCH_MATCHER_H
#define DENALI_MATCH_MATCHER_H

#include "egraph/EGraph.h"
#include "match/Axiom.h"

#include <functional>
#include <string>
#include <vector>

namespace denali {
namespace match {

/// Fuel limits for saturation.
struct MatchLimits {
  unsigned MaxRounds = 24;
  size_t MaxNodes = 60000;          ///< Stop instantiating past this size.
  size_t MaxInstancesPerRound = 200000;
};

/// Statistics of one saturation run.
struct MatchStats {
  unsigned Rounds = 0;
  uint64_t MatchesFound = 0;
  uint64_t InstancesDeduped = 0; ///< Matches dropped as already seen.
  uint64_t InstancesAsserted = 0;
  size_t FinalNodes = 0;
  size_t FinalClasses = 0;
  bool Quiesced = false; ///< True if a full round produced no change.
};

/// An elaboration hook run once per round before matching; used for
/// "heuristically relevant" constant facts (4 = 2**2, byte-regular masks)
/// and the base+offset disequality oracle.
using Elaborator = std::function<void(egraph::EGraph &)>;

class Matcher {
public:
  explicit Matcher(std::vector<Axiom> Axioms)
      : Axioms(std::move(Axioms)) {}

  /// Adds an elaboration hook.
  void addElaborator(Elaborator E) { Elaborators.push_back(std::move(E)); }

  const std::vector<Axiom> &axioms() const { return Axioms; }

  /// Saturates \p G. \returns the run's statistics.
  MatchStats saturate(egraph::EGraph &G,
                      const MatchLimits &Limits = MatchLimits());

private:
  std::vector<Axiom> Axioms;
  std::vector<Elaborator> Elaborators;

  // Instantiation dedup: (axiom index, canonical bindings) already asserted.
  struct DoneKey {
    uint32_t AxiomIdx;
    std::vector<egraph::ClassId> Bindings;
    bool operator==(const DoneKey &O) const {
      return AxiomIdx == O.AxiomIdx && Bindings == O.Bindings;
    }
  };
  struct DoneKeyHash {
    size_t operator()(const DoneKey &K) const {
      size_t H = K.AxiomIdx;
      for (egraph::ClassId C : K.Bindings)
        H = H * 1000003u ^ C;
      return H;
    }
  };
  std::unordered_set<DoneKey, DoneKeyHash> Done;

  egraph::ClassId instantiate(egraph::EGraph &G, const Axiom &A, PatternId P,
                              const std::vector<egraph::ClassId> &Bindings);

  /// Asserts one axiom instance. \p AxiomIdx and \p Round feed the
  /// provenance justification when the graph records proofs. \returns true
  /// if anything changed.
  bool assertInstance(egraph::EGraph &G, const Axiom &A, uint32_t AxiomIdx,
                      unsigned Round,
                      const std::vector<egraph::ClassId> &Bindings);
};

/// Returns the standard elaborators: powers of two (enables k*2**n matches)
/// and byte-regular masks (enables zapnot), plus the base+offset
/// disequality oracle for memory indices.
std::vector<Elaborator> standardElaborators();

} // namespace match
} // namespace denali

#endif // DENALI_MATCH_MATCHER_H
