//===- match/Elaborate.cpp ------------------------------------------------===//

#include "match/Elaborate.h"

#include <unordered_map>
#include <unordered_set>

using namespace denali;
using namespace denali::match;
using namespace denali::egraph;
using denali::ir::Builtin;

namespace {

bool isPowerOfTwo(uint64_t V) { return V != 0 && (V & (V - 1)) == 0; }

unsigned log2Exact(uint64_t V) {
  unsigned N = 0;
  while (V > 1) {
    V >>= 1;
    ++N;
  }
  return N;
}

/// If every byte of \p V is 0x00 or 0xff, \returns the zapnot byte mask.
std::optional<uint64_t> byteRegularMask(uint64_t V) {
  uint64_t Mask = 0;
  for (unsigned I = 0; I < 8; ++I) {
    uint64_t Byte = (V >> (8 * I)) & 0xff;
    if (Byte == 0xff)
      Mask |= 1ULL << I;
    else if (Byte != 0)
      return std::nullopt;
  }
  return Mask;
}

/// Base+offset decomposition of a class value through add64/sub64 chains.
struct BaseOffset {
  ClassId Base = 0;   ///< Canonical class of the symbolic base.
  bool IsConst = false;
  uint64_t Offset = 0;
};

std::optional<BaseOffset> decompose(const EGraph &G,
                                    const ir::Context &Ctx,
                                    ClassId C,
                                    std::unordered_set<ClassId> &OnPath) {
  C = G.find(C);
  if (std::optional<uint64_t> K = G.classConstant(C))
    return BaseOffset{0, true, *K};
  if (!OnPath.insert(C).second)
    return std::nullopt; // Cycle (identity merges); bail on this path.
  ir::OpId AddOp = Ctx.Ops.builtin(Builtin::Add64);
  ir::OpId SubOp = Ctx.Ops.builtin(Builtin::Sub64);
  std::optional<BaseOffset> Result;
  for (ENodeId N : G.classNodes(C)) {
    const ENode &Node = G.node(N);
    bool IsAdd = Node.Op == AddOp;
    bool IsSub = Node.Op == SubOp;
    if (!IsAdd && !IsSub)
      continue;
    for (int ConstIdx = 0; ConstIdx < 2; ++ConstIdx) {
      if (IsSub && ConstIdx == 0)
        continue; // Only x - k decomposes; k - x does not.
      std::optional<uint64_t> K =
          G.classConstant(Node.Children[ConstIdx]);
      if (!K)
        continue;
      ClassId Other = Node.Children[1 - ConstIdx];
      std::optional<BaseOffset> Inner = decompose(G, Ctx, Other, OnPath);
      if (!Inner)
        continue;
      Result = *Inner;
      Result->Offset += IsAdd ? *K : (0 - *K);
      break;
    }
    if (Result)
      break;
  }
  OnPath.erase(C);
  if (Result)
    return Result;
  return BaseOffset{C, false, 0};
}

} // namespace

Elaborator denali::match::powerOfTwoElaborator() {
  return [](EGraph &G) {
    const ir::Context &Ctx = G.context();
    ir::OpId MulOp = Ctx.Ops.builtin(Builtin::Mul64);
    ir::OpId PowOp = Ctx.Ops.builtin(Builtin::Pow);
    std::vector<ENodeId> Muls = G.nodesWithOp(MulOp);
    for (ENodeId N : Muls) {
      if (!G.node(N).Alive)
        continue;
      for (ClassId Child : G.node(N).Children) {
        std::optional<uint64_t> K = G.classConstant(Child);
        if (!K || !isPowerOfTwo(*K) || *K < 2)
          continue;
        unsigned Exp = log2Exact(*K);
        ClassId PowClass =
            G.addNode(PowOp, {G.addConst(2), G.addConst(Exp)});
        G.assertEqual(PowClass, G.find(Child));
      }
    }
  };
}

Elaborator denali::match::byteMaskElaborator() {
  return [](EGraph &G) {
    const ir::Context &Ctx = G.context();
    ir::OpId AndOp = Ctx.Ops.builtin(Builtin::And64);
    ir::OpId ZapnotOp = Ctx.Ops.builtin(Builtin::Zapnot);
    std::vector<ENodeId> Ands = G.nodesWithOp(AndOp);
    for (ENodeId N : Ands) {
      if (!G.node(N).Alive)
        continue;
      const ENode &Node = G.node(N);
      for (int ConstIdx = 0; ConstIdx < 2; ++ConstIdx) {
        std::optional<uint64_t> K = G.classConstant(Node.Children[ConstIdx]);
        if (!K || *K == 0)
          continue;
        std::optional<uint64_t> Mask = byteRegularMask(*K);
        if (!Mask)
          continue;
        ClassId Other = Node.Children[1 - ConstIdx];
        ClassId Zap = G.addNode(ZapnotOp, {G.find(Other),
                                           G.addConst(*Mask)});
        G.assertEqual(Zap, G.classOf(N));
      }
    }
  };
}

Elaborator denali::match::byteShiftElaborator() {
  return [](EGraph &G) {
    const ir::Context &Ctx = G.context();
    ir::OpId ShlOp = Ctx.Ops.builtin(Builtin::Shl64);
    ir::OpId MulOp = Ctx.Ops.builtin(Builtin::Mul64);
    std::vector<ENodeId> Shls = G.nodesWithOp(ShlOp);
    for (ENodeId N : Shls) {
      if (!G.node(N).Alive)
        continue;
      ClassId Amount = G.node(N).Children[1];
      std::optional<uint64_t> K = G.classConstant(Amount);
      if (!K || *K == 0 || *K >= 64 || *K % 8 != 0)
        continue;
      ClassId Mul = G.addNode(MulOp, {G.addConst(8), G.addConst(*K / 8)});
      G.assertEqual(Mul, G.find(Amount));
    }
  };
}

Elaborator denali::match::offsetDisequalityElaborator() {
  return [](EGraph &G) {
    const ir::Context &Ctx = G.context();
    ir::OpId SelectOp = Ctx.Ops.builtin(Builtin::Select);
    ir::OpId StoreOp = Ctx.Ops.builtin(Builtin::Store);
    // Collect the classes used as memory indices.
    std::vector<ClassId> Indices;
    for (ir::OpId Op : {SelectOp, StoreOp})
      for (ENodeId N : G.nodesWithOp(Op))
        if (G.node(N).Alive)
          Indices.push_back(G.find(G.node(N).Children[1]));
    std::sort(Indices.begin(), Indices.end());
    Indices.erase(std::unique(Indices.begin(), Indices.end()), Indices.end());

    // Group by symbolic base; different offsets within one group are
    // provably different addresses.
    struct Entry {
      ClassId Class;
      uint64_t Offset;
    };
    std::unordered_map<uint64_t, std::vector<Entry>> Groups;
    for (ClassId C : Indices) {
      std::unordered_set<ClassId> OnPath;
      std::optional<BaseOffset> BO = decompose(G, Ctx, C, OnPath);
      if (!BO)
        continue;
      uint64_t GroupKey =
          BO->IsConst ? ~0ULL : static_cast<uint64_t>(BO->Base);
      uint64_t Offset = BO->IsConst ? BO->Offset : BO->Offset;
      Groups[GroupKey].push_back(Entry{C, Offset});
    }
    for (auto &[Key, Entries] : Groups) {
      (void)Key;
      for (size_t I = 0; I < Entries.size(); ++I)
        for (size_t J = I + 1; J < Entries.size(); ++J)
          if (Entries[I].Offset != Entries[J].Offset &&
              !G.areDistinct(Entries[I].Class, Entries[J].Class))
            G.assertDistinct(Entries[I].Class, Entries[J].Class);
    }
  };
}
