//===- match/Axiom.h - Patterns and axioms ----------------------*- C++ -*-===//
///
/// \file
/// Declarative facts in the paper's three forms (section 5): quantified
/// equalities, distinctions, and clauses (disjunctions of literals), with
/// optional explicit trigger patterns (the paper's suppressed "pats").
///
/// Concrete syntax (Figure 6 / section 8):
///
///   (\axiom (forall (a b) (pats (add a b))
///     (eq (add a b) (add b a))))
///   (\axiom (forall (a i j x) (pats (select (store a i x) j))
///     (or (eq i j) (eq (select (store a i x) j) (select a j)))))
///   (\axiom (eq reg7 0))                      ; unquantified
///
/// When (pats ...) is omitted, each App side of each literal that binds all
/// quantified variables is used as a trigger.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MATCH_AXIOM_H
#define DENALI_MATCH_AXIOM_H

#include "ir/Eval.h"
#include "ir/Term.h"
#include "sexpr/SExpr.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace match {

using PatternId = uint32_t;

/// One node of a pattern tree (stored in the owning axiom's pool).
struct PatternNode {
  enum class Kind { Var, Const, App };
  Kind TheKind = Kind::App;
  uint32_t VarIndex = 0;              ///< For Var.
  uint64_t ConstVal = 0;              ///< For Const.
  ir::OpId Op = 0;                    ///< For App.
  std::vector<PatternId> Children;    ///< For App.
};

/// A literal of an axiom body: equality or distinction between patterns.
struct AxiomLiteral {
  bool IsEq = true;
  PatternId Lhs = 0;
  PatternId Rhs = 0;
};

/// A parsed axiom.
struct Axiom {
  std::string Name; ///< For diagnostics ("axiom@line 12").
  std::vector<std::string> VarNames;
  std::vector<PatternNode> Pool;
  std::vector<PatternId> Triggers; ///< Each binds all variables.
  std::vector<AxiomLiteral> Body;  ///< Size 1: plain literal; >1: clause.

  const PatternNode &pattern(PatternId Id) const { return Pool[Id]; }

  /// Variables mentioned by pattern \p Id (bitmask over VarNames).
  uint64_t patternVarMask(PatternId Id) const;

  /// Renders a pattern for diagnostics.
  std::string patternToString(const ir::Context &Ctx, PatternId Id) const;
};

/// Parses one (\axiom ...) form. \returns std::nullopt and sets \p ErrorOut
/// on malformed input (unknown operator, trigger not binding all vars, ...).
/// Operator names may carry the \-prefix of builtin references (\add64).
std::optional<Axiom> parseAxiom(ir::Context &Ctx, const sexpr::SExpr &Form,
                                std::string *ErrorOut);

/// If \p A is definitional — a single equality f(x1..xn) = rhs with f a
/// declared operator and x1..xn exactly the distinct quantified variables —
/// \returns the operator and an evaluator definition for it.
std::optional<std::pair<ir::OpId, ir::OpDefinition>>
extractDefinition(ir::Context &Ctx, const Axiom &A);

/// Instantiates pattern \p Id of \p A as an interned term, mapping the
/// axiom's variables through \p VarTerms (indexed by variable number).
/// Used by the axiom-soundness tests to evaluate axiom instances directly.
ir::TermId instantiatePatternTerm(ir::Context &Ctx, const Axiom &A,
                                  PatternId Id,
                                  const std::vector<ir::TermId> &VarTerms);

} // namespace match
} // namespace denali

#endif // DENALI_MATCH_AXIOM_H
