//===- match/Matcher.cpp --------------------------------------------------===//

#include "match/Matcher.h"

#include "match/Elaborate.h"
#include "obs/Obs.h"
#include "support/Error.h"
#include "support/FunctionRef.h"

#include <cassert>

using namespace denali;
using namespace denali::match;
using namespace denali::egraph;

namespace {

/// Backtracking e-matcher for one axiom. Matches are reported through
/// OnMatch; the engine never mutates the graph (matches are collected and
/// instantiated afterwards).
///
/// The backtracking search is continuation-passing, but the continuations
/// are non-owning FunctionRefs into stack frames of the search itself —
/// the inner loop of saturation performs no heap allocation (a
/// std::function per pattern node per candidate used to dominate the
/// matcher's profile).
class MatchEngine {
public:
  MatchEngine(const EGraph &G, const Axiom &A,
              FunctionRef<void(const std::vector<ClassId> &)> OnMatch)
      : G(G), A(A), OnMatch(OnMatch), Bindings(A.VarNames.size(), 0),
        Bound(A.VarNames.size(), 0) {}

  void run(PatternId Trigger) {
    const PatternNode &Root = A.pattern(Trigger);
    assert(Root.TheKind == PatternNode::Kind::App && "trigger must be App");
    // The engine only reads the graph and the match callback only collects
    // (instantiation happens after every trigger has been scanned), so the
    // op index is stable here — no defensive copy. Retired nodes in the
    // index are skipped.
    auto Report = [&] { OnMatch(Bindings); };
    for (ENodeId N : G.nodesWithOp(Root.Op)) {
      if (!G.node(N).Alive)
        continue;
      matchChildren(Root, N, 0, Report);
    }
  }

private:
  const EGraph &G;
  const Axiom &A;
  FunctionRef<void(const std::vector<ClassId> &)> OnMatch;
  std::vector<ClassId> Bindings;
  std::vector<uint8_t> Bound;

  using Cont = FunctionRef<void()>;

  void matchChildren(const PatternNode &P, ENodeId N, size_t Idx, Cont K) {
    if (Idx == P.Children.size()) {
      K();
      return;
    }
    ClassId ChildClass = G.node(N).Children[Idx];
    auto Rest = [&, Idx] { matchChildren(P, N, Idx + 1, K); };
    matchClass(P.Children[Idx], ChildClass, Rest);
  }

  void matchClass(PatternId PId, ClassId C, Cont K) {
    const PatternNode &P = A.pattern(PId);
    C = G.find(C);
    switch (P.TheKind) {
    case PatternNode::Kind::Var: {
      uint32_t V = P.VarIndex;
      if (Bound[V]) {
        if (G.find(Bindings[V]) == C)
          K();
        return;
      }
      Bound[V] = 1;
      Bindings[V] = C;
      K();
      Bound[V] = 0;
      return;
    }
    case PatternNode::Kind::Const: {
      std::optional<uint64_t> K2 = G.classConstant(C);
      if (K2 && *K2 == P.ConstVal)
        K();
      return;
    }
    case PatternNode::Kind::App: {
      // E-matching proper: search the whole equivalence class for nodes
      // with the right operator (Figure 2's 2**2 inside 4's class).
      G.forEachClassNode(C, [&](ENodeId N) {
        if (G.node(N).Op == P.Op)
          matchChildren(P, N, 0, K);
      });
      return;
    }
    }
  }
};

} // namespace

ClassId Matcher::instantiate(EGraph &G, const Axiom &A, PatternId PId,
                             const std::vector<ClassId> &Bindings) {
  const PatternNode &P = A.pattern(PId);
  switch (P.TheKind) {
  case PatternNode::Kind::Var:
    return Bindings[P.VarIndex];
  case PatternNode::Kind::Const:
    return G.addConst(P.ConstVal);
  case PatternNode::Kind::App: {
    std::vector<ClassId> Children;
    Children.reserve(P.Children.size());
    for (PatternId C : P.Children)
      Children.push_back(instantiate(G, A, C, Bindings));
    return G.addNode(P.Op, Children);
  }
  }
  DENALI_UNREACHABLE("bad pattern kind");
}

bool Matcher::assertInstance(EGraph &G, const Axiom &A, uint32_t AxiomIdx,
                             unsigned Round,
                             const std::vector<ClassId> &Bindings) {
  uint64_t Before = G.version();
  if (A.Body.size() == 1) {
    const AxiomLiteral &L = A.Body[0];
    ClassId Lhs = instantiate(G, A, L.Lhs, Bindings);
    ClassId Rhs = instantiate(G, A, L.Rhs, Bindings);
    if (L.IsEq) {
      if (G.provenanceEnabled())
        G.assertEqual(Lhs, Rhs,
                      Justification::axiom(AxiomIdx, Round,
                                           G.internSubst(Bindings),
                                           Bindings.size()));
      else
        G.assertEqual(Lhs, Rhs);
    } else
      G.assertDistinct(Lhs, Rhs);
    return G.version() != Before;
  }
  // Clause: skip if some literal is already satisfied; otherwise record.
  std::vector<Literal> Lits;
  Lits.reserve(A.Body.size());
  bool Satisfied = false;
  for (const AxiomLiteral &L : A.Body) {
    ClassId Lhs = instantiate(G, A, L.Lhs, Bindings);
    ClassId Rhs = instantiate(G, A, L.Rhs, Bindings);
    if (L.IsEq ? G.sameClass(Lhs, Rhs) : G.areDistinct(Lhs, Rhs))
      Satisfied = true;
    Lits.push_back(L.IsEq ? Literal::eq(Lhs, Rhs) : Literal::ne(Lhs, Rhs));
  }
  if (!Satisfied)
    G.addClause(std::move(Lits));
  return G.version() != Before;
}

MatchStats Matcher::saturate(EGraph &G, const MatchLimits &Limits) {
  MatchStats Stats;
  obs::ObsSpan SatSpan("match.saturate");
  for (unsigned Round = 0; Round < Limits.MaxRounds; ++Round) {
    ++Stats.Rounds;
    obs::ObsSpan RoundSpan("match.round");
    uint64_t RoundMatches = Stats.MatchesFound;
    uint64_t RoundDeduped = Stats.InstancesDeduped;
    uint64_t RoundAsserted = Stats.InstancesAsserted;
    uint64_t RoundStart = G.version();

    for (const Elaborator &E : Elaborators)
      E(G);

    // Collect matches first (the engine must not observe its own output),
    // then instantiate.
    struct PendingInstance {
      uint32_t AxiomIdx;
      std::vector<ClassId> Bindings;
    };
    std::vector<PendingInstance> Pending;
    // Round-local dedup: two triggers of one axiom (or two e-nodes of one
    // class) can report the same (axiom, bindings) instance within a
    // round, before anything is in Done. The per-round cap applies after
    // dedup so duplicates cannot burn the instance budget.
    std::unordered_set<DoneKey, DoneKeyHash> SeenThisRound;
    for (uint32_t AIdx = 0; AIdx < Axioms.size(); ++AIdx) {
      const Axiom &A = Axioms[AIdx];
      if (A.VarNames.empty()) {
        // Ground fact: assert once.
        DoneKey Key{AIdx, {}};
        if (!Done.count(Key))
          Pending.push_back(PendingInstance{AIdx, {}});
        continue;
      }
      // Named local: the engine keeps a non-owning reference to it.
      auto OnMatch = [&](const std::vector<ClassId> &Bs) {
        ++Stats.MatchesFound;
        std::vector<ClassId> Canon(Bs.size());
        for (size_t I = 0; I < Bs.size(); ++I)
          Canon[I] = G.find(Bs[I]);
        DoneKey Key{AIdx, std::move(Canon)};
        if (Done.count(Key) || SeenThisRound.count(Key)) {
          ++Stats.InstancesDeduped;
          return;
        }
        if (Pending.size() >= Limits.MaxInstancesPerRound)
          return;
        Pending.push_back(PendingInstance{AIdx, Key.Bindings});
        SeenThisRound.insert(std::move(Key));
      };
      for (PatternId Trigger : A.Triggers) {
        MatchEngine Engine(G, A, OnMatch);
        Engine.run(Trigger);
      }
    }

    for (PendingInstance &P : Pending) {
      if (G.numNodes() >= Limits.MaxNodes)
        break;
      if (G.isInconsistent())
        break;
      Done.insert(DoneKey{P.AxiomIdx, P.Bindings});
      if (assertInstance(G, Axioms[P.AxiomIdx], P.AxiomIdx, Stats.Rounds,
                         P.Bindings))
        ++Stats.InstancesAsserted;
    }

    if (RoundSpan.active())
      RoundSpan.arg("round", Stats.Rounds)
          .arg("matched", Stats.MatchesFound - RoundMatches)
          .arg("deduped", Stats.InstancesDeduped - RoundDeduped)
          .arg("asserted", Stats.InstancesAsserted - RoundAsserted)
          .arg("enodes", static_cast<uint64_t>(G.numNodes()))
          .arg("eclasses", static_cast<uint64_t>(G.numClasses()));

    if (G.version() == RoundStart) {
      Stats.Quiesced = true;
      break;
    }
    if (G.numNodes() >= Limits.MaxNodes || G.isInconsistent())
      break;
  }
  Stats.FinalNodes = G.numNodes();
  Stats.FinalClasses = G.numClasses();
  if (obs::enabled()) {
    if (SatSpan.active())
      SatSpan.arg("rounds", Stats.Rounds)
          .arg("matched", Stats.MatchesFound)
          .arg("asserted", Stats.InstancesAsserted)
          .arg("enodes", static_cast<uint64_t>(Stats.FinalNodes))
          .arg("eclasses", static_cast<uint64_t>(Stats.FinalClasses))
          .arg("quiesced", Stats.Quiesced ? "yes" : "no");
    auto &R = obs::Registry::global();
    R.counter("match.rounds").add(Stats.Rounds);
    R.counter("match.matches").add(Stats.MatchesFound);
    R.counter("match.instances_deduped").add(Stats.InstancesDeduped);
    R.counter("match.instances_asserted").add(Stats.InstancesAsserted);
    R.gauge("match.enodes").noteMax(static_cast<int64_t>(Stats.FinalNodes));
    R.gauge("match.eclasses")
        .noteMax(static_cast<int64_t>(Stats.FinalClasses));
  }
  return Stats;
}

std::vector<Elaborator> denali::match::standardElaborators() {
  return {powerOfTwoElaborator(), byteMaskElaborator(),
          byteShiftElaborator(), offsetDisequalityElaborator()};
}
