//===- match/Matcher.cpp --------------------------------------------------===//

#include "match/Matcher.h"

#include "match/Elaborate.h"
#include "support/Error.h"

#include <cassert>

using namespace denali;
using namespace denali::match;
using namespace denali::egraph;

namespace {

/// Backtracking e-matcher for one axiom. Matches are reported through
/// OnMatch; the engine never mutates the graph (matches are collected and
/// instantiated afterwards).
class MatchEngine {
public:
  MatchEngine(const EGraph &G, const Axiom &A,
              std::function<void(const std::vector<ClassId> &)> OnMatch)
      : G(G), A(A), OnMatch(std::move(OnMatch)),
        Bindings(A.VarNames.size(), 0), Bound(A.VarNames.size(), 0) {}

  void run(PatternId Trigger) {
    const PatternNode &Root = A.pattern(Trigger);
    assert(Root.TheKind == PatternNode::Kind::App && "trigger must be App");
    // Copy: instantiation later must not invalidate this scan; also the
    // index may contain retired nodes, skipped here.
    std::vector<ENodeId> Roots = G.nodesWithOp(Root.Op);
    for (ENodeId N : Roots) {
      if (!G.node(N).Alive)
        continue;
      matchChildren(Root, N, 0, [&] { OnMatch(Bindings); });
    }
  }

private:
  const EGraph &G;
  const Axiom &A;
  std::function<void(const std::vector<ClassId> &)> OnMatch;
  std::vector<ClassId> Bindings;
  std::vector<uint8_t> Bound;

  using Cont = std::function<void()>;

  void matchChildren(const PatternNode &P, ENodeId N, size_t Idx,
                     const Cont &K) {
    if (Idx == P.Children.size()) {
      K();
      return;
    }
    ClassId ChildClass = G.node(N).Children[Idx];
    matchClass(P.Children[Idx], ChildClass,
               [&] { matchChildren(P, N, Idx + 1, K); });
  }

  void matchClass(PatternId PId, ClassId C, const Cont &K) {
    const PatternNode &P = A.pattern(PId);
    C = G.find(C);
    switch (P.TheKind) {
    case PatternNode::Kind::Var: {
      uint32_t V = P.VarIndex;
      if (Bound[V]) {
        if (G.find(Bindings[V]) == C)
          K();
        return;
      }
      Bound[V] = 1;
      Bindings[V] = C;
      K();
      Bound[V] = 0;
      return;
    }
    case PatternNode::Kind::Const: {
      std::optional<uint64_t> K2 = G.classConstant(C);
      if (K2 && *K2 == P.ConstVal)
        K();
      return;
    }
    case PatternNode::Kind::App: {
      // E-matching proper: search the whole equivalence class for nodes
      // with the right operator (Figure 2's 2**2 inside 4's class).
      for (ENodeId N : G.classNodes(C))
        if (G.node(N).Op == P.Op)
          matchChildren(P, N, 0, K);
      return;
    }
    }
  }
};

} // namespace

ClassId Matcher::instantiate(EGraph &G, const Axiom &A, PatternId PId,
                             const std::vector<ClassId> &Bindings) {
  const PatternNode &P = A.pattern(PId);
  switch (P.TheKind) {
  case PatternNode::Kind::Var:
    return Bindings[P.VarIndex];
  case PatternNode::Kind::Const:
    return G.addConst(P.ConstVal);
  case PatternNode::Kind::App: {
    std::vector<ClassId> Children;
    Children.reserve(P.Children.size());
    for (PatternId C : P.Children)
      Children.push_back(instantiate(G, A, C, Bindings));
    return G.addNode(P.Op, Children);
  }
  }
  DENALI_UNREACHABLE("bad pattern kind");
}

bool Matcher::assertInstance(EGraph &G, const Axiom &A,
                             const std::vector<ClassId> &Bindings) {
  uint64_t Before = G.version();
  if (A.Body.size() == 1) {
    const AxiomLiteral &L = A.Body[0];
    ClassId Lhs = instantiate(G, A, L.Lhs, Bindings);
    ClassId Rhs = instantiate(G, A, L.Rhs, Bindings);
    if (L.IsEq)
      G.assertEqual(Lhs, Rhs);
    else
      G.assertDistinct(Lhs, Rhs);
    return G.version() != Before;
  }
  // Clause: skip if some literal is already satisfied; otherwise record.
  std::vector<Literal> Lits;
  Lits.reserve(A.Body.size());
  bool Satisfied = false;
  for (const AxiomLiteral &L : A.Body) {
    ClassId Lhs = instantiate(G, A, L.Lhs, Bindings);
    ClassId Rhs = instantiate(G, A, L.Rhs, Bindings);
    if (L.IsEq ? G.sameClass(Lhs, Rhs) : G.areDistinct(Lhs, Rhs))
      Satisfied = true;
    Lits.push_back(L.IsEq ? Literal::eq(Lhs, Rhs) : Literal::ne(Lhs, Rhs));
  }
  if (!Satisfied)
    G.addClause(std::move(Lits));
  return G.version() != Before;
}

MatchStats Matcher::saturate(EGraph &G, const MatchLimits &Limits) {
  MatchStats Stats;
  for (unsigned Round = 0; Round < Limits.MaxRounds; ++Round) {
    ++Stats.Rounds;
    uint64_t RoundStart = G.version();

    for (const Elaborator &E : Elaborators)
      E(G);

    // Collect matches first (the engine must not observe its own output),
    // then instantiate.
    struct PendingInstance {
      uint32_t AxiomIdx;
      std::vector<ClassId> Bindings;
    };
    std::vector<PendingInstance> Pending;
    for (uint32_t AIdx = 0; AIdx < Axioms.size(); ++AIdx) {
      const Axiom &A = Axioms[AIdx];
      if (A.VarNames.empty()) {
        // Ground fact: assert once.
        DoneKey Key{AIdx, {}};
        if (!Done.count(Key))
          Pending.push_back(PendingInstance{AIdx, {}});
        continue;
      }
      for (PatternId Trigger : A.Triggers) {
        MatchEngine Engine(G, A, [&](const std::vector<ClassId> &Bs) {
          ++Stats.MatchesFound;
          if (Pending.size() >= Limits.MaxInstancesPerRound)
            return;
          std::vector<ClassId> Canon(Bs.size());
          for (size_t I = 0; I < Bs.size(); ++I)
            Canon[I] = G.find(Bs[I]);
          DoneKey Key{AIdx, Canon};
          if (Done.count(Key))
            return;
          Pending.push_back(PendingInstance{AIdx, std::move(Canon)});
        });
        Engine.run(Trigger);
      }
    }

    for (PendingInstance &P : Pending) {
      if (G.numNodes() >= Limits.MaxNodes)
        break;
      if (G.isInconsistent())
        break;
      Done.insert(DoneKey{P.AxiomIdx, P.Bindings});
      if (assertInstance(G, Axioms[P.AxiomIdx], P.Bindings))
        ++Stats.InstancesAsserted;
    }

    if (G.version() == RoundStart) {
      Stats.Quiesced = true;
      break;
    }
    if (G.numNodes() >= Limits.MaxNodes || G.isInconsistent())
      break;
  }
  Stats.FinalNodes = G.numNodes();
  Stats.FinalClasses = G.numClasses();
  return Stats;
}

std::vector<Elaborator> denali::match::standardElaborators() {
  return {powerOfTwoElaborator(), byteMaskElaborator(),
          byteShiftElaborator(), offsetDisequalityElaborator()};
}
