//===- match/Matcher.cpp --------------------------------------------------===//

#include "match/Matcher.h"

#include "match/Elaborate.h"
#include "obs/Obs.h"
#include "support/Error.h"
#include "support/FunctionRef.h"
#include "support/StringExtras.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace denali;
using namespace denali::match;
using namespace denali::egraph;

namespace {

/// Backtracking e-matcher for one axiom over a slice of the trigger's root
/// nodes. Matches are reported through OnMatch; the engine never mutates
/// the graph (matches are collected and instantiated afterwards), which is
/// what lets work items run concurrently on a frozen graph.
///
/// The backtracking search is continuation-passing, but the continuations
/// are non-owning FunctionRefs into stack frames of the search itself —
/// the inner loop of saturation performs no heap allocation (a
/// std::function per pattern node per candidate used to dominate the
/// matcher's profile).
class MatchEngine {
public:
  /// OnMatch returns false to stop the enumeration (budget caps).
  MatchEngine(const EGraph &G, const Axiom &A,
              FunctionRef<bool(const std::vector<ClassId> &)> OnMatch)
      : G(G), A(A), OnMatch(OnMatch), Bindings(A.VarNames.size(), 0),
        Bound(A.VarNames.size(), 0) {}

  /// Matches \p Trigger against the root nodes in [Begin, End) — a slice
  /// of G.nodesWithOp(trigger op). Slices partition the root list in
  /// order, so concatenating slice outputs in slice order reproduces the
  /// full sequential enumeration order exactly.
  void run(PatternId Trigger, const ENodeId *Begin, const ENodeId *End) {
    const PatternNode &Root = A.pattern(Trigger);
    assert(Root.TheKind == PatternNode::Kind::App && "trigger must be App");
    (void)Root;
    // The engine only reads the graph and the match callback only collects
    // (instantiation happens after every work item has run), so the op
    // index is stable here — no defensive copy. Retired nodes in the
    // index are skipped.
    auto Report = [&] {
      if (!OnMatch(Bindings))
        Stopped = true;
    };
    for (const ENodeId *I = Begin; I != End && !Stopped; ++I) {
      if (!G.node(*I).Alive)
        continue;
      matchChildren(Root, *I, 0, Report);
    }
  }

private:
  const EGraph &G;
  const Axiom &A;
  FunctionRef<bool(const std::vector<ClassId> &)> OnMatch;
  std::vector<ClassId> Bindings;
  std::vector<uint8_t> Bound;
  bool Stopped = false;

  using Cont = FunctionRef<void()>;

  void matchChildren(const PatternNode &P, ENodeId N, size_t Idx, Cont K) {
    if (Stopped)
      return;
    if (Idx == P.Children.size()) {
      K();
      return;
    }
    ClassId ChildClass = G.node(N).Children[Idx];
    auto Rest = [&, Idx] { matchChildren(P, N, Idx + 1, K); };
    matchClass(P.Children[Idx], ChildClass, Rest);
  }

  void matchClass(PatternId PId, ClassId C, Cont K) {
    if (Stopped)
      return;
    const PatternNode &P = A.pattern(PId);
    C = G.find(C);
    switch (P.TheKind) {
    case PatternNode::Kind::Var: {
      uint32_t V = P.VarIndex;
      if (Bound[V]) {
        if (G.find(Bindings[V]) == C)
          K();
        return;
      }
      Bound[V] = 1;
      Bindings[V] = C;
      K();
      Bound[V] = 0;
      return;
    }
    case PatternNode::Kind::Const: {
      std::optional<uint64_t> K2 = G.classConstant(C);
      if (K2 && *K2 == P.ConstVal)
        K();
      return;
    }
    case PatternNode::Kind::App: {
      // E-matching proper: search the whole equivalence class for nodes
      // with the right operator (Figure 2's 2**2 inside 4's class).
      G.forEachClassNode(C, [&](ENodeId N) {
        if (!Stopped && G.node(N).Op == P.Op)
          matchChildren(P, N, 0, K);
      });
      return;
    }
    }
  }
};

/// One unit of the per-round match loop: one axiom trigger against one
/// slice of the trigger's root-node list. Items are built in a fixed
/// order (axiom, trigger, slice) that does not depend on the thread
/// count, and each item caps its enumeration at thread-independent
/// limits — so the merged result (and every statistic derived from it) is
/// identical whether items run inline or fan out across a pool.
///
/// Workers filter matches against the matcher's Done/Seen sets, which are
/// frozen for the whole match phase (inserts happen only in the
/// single-threaded merge/instantiate phases) — concurrent lookups are
/// data-race-free and, crucially, every filter decision is independent of
/// what other items do, keeping the round deterministic. Survivors carry
/// their 1-based raw-match index so the merge phase can truncate at
/// exactly the axiom's budget across item boundaries.
struct WorkItem {
  uint32_t AxiomIdx = 0;
  PatternId Trigger = 0;
  size_t Begin = 0, End = 0;  ///< Root slice in nodesWithOp(trigger op).
  uint64_t RawCap = 0;        ///< Stop enumerating at this many raw matches.
  size_t StoreCap = 0;        ///< Stop after this many stored survivors.
  uint64_t Raw = 0;           ///< Matches enumerated (pre-dedup).
  uint64_t Deduped = 0;       ///< Filtered against Done or Seen.
  uint64_t SeenHits = 0;      ///< Of Deduped, hits on the persistent set.
  std::vector<std::pair<uint64_t, std::vector<ClassId>>>
      Matches;                ///< (raw index, canonical bindings) survivors.
  bool Capped = false;        ///< Enumeration stopped at a cap.
  uint64_t Ns = 0;            ///< Wall time enumerating this item.
};

/// Root-slice granularity. Chunking is by this fixed size — never by the
/// thread count — so the work-item list (and with it every per-item cap
/// decision) is the same for any --match-threads value.
constexpr size_t RootChunk = 1024;

/// Operator-application count of a pattern, by explicit stack (axiom
/// sides can be arbitrarily deep; nothing in the matcher may recurse on
/// pattern or graph depth).
size_t patternAppCount(const Axiom &A, PatternId Root) {
  size_t Count = 0;
  std::vector<PatternId> Stack{Root};
  while (!Stack.empty()) {
    PatternId P = Stack.back();
    Stack.pop_back();
    const PatternNode &N = A.pattern(P);
    if (N.TheKind != PatternNode::Kind::App)
      continue;
    ++Count;
    Stack.insert(Stack.end(), N.Children.begin(), N.Children.end());
  }
  return Count;
}

/// The next power of two >= \p V (for adaptive budget seeding: budgets
/// stay on the same doubling ladder the blind backoff walks).
uint64_t roundUpPow2(uint64_t V) {
  uint64_t P = 1;
  while (P < V && P < (1ull << 62))
    P <<= 1;
  return P;
}

} // namespace

unsigned Matcher::axiomPhase(const Axiom &A) {
  // Expansive: some equality rewrites one side into a materially larger
  // one (k*x -> shifts/adds style decompositions). Those blow the graph
  // up, so under --match-phases they wait for the cheap phase to quiesce.
  for (const AxiomLiteral &L : A.Body) {
    if (!L.IsEq)
      continue;
    size_t Lhs = patternAppCount(A, L.Lhs);
    size_t Rhs = patternAppCount(A, L.Rhs);
    size_t Diff = Lhs > Rhs ? Lhs - Rhs : Rhs - Lhs;
    if (Diff >= 2)
      return 1;
  }
  return 0;
}

ClassId Matcher::instantiate(EGraph &G, const Axiom &A, PatternId Root,
                             const std::vector<ClassId> &Bindings) {
  // Post-order by explicit stack with a value stack: each App pops its
  // children's classes. Stress axioms nest deeply enough that recursing
  // here was the one remaining unbounded-depth path under saturation.
  struct Frame {
    PatternId P;
    size_t NextChild;
  };
  std::vector<Frame> Stack{{Root, 0}};
  std::vector<ClassId> Values;
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    const PatternNode &P = A.pattern(F.P);
    switch (P.TheKind) {
    case PatternNode::Kind::Var:
      Values.push_back(Bindings[P.VarIndex]);
      Stack.pop_back();
      break;
    case PatternNode::Kind::Const:
      Values.push_back(G.addConst(P.ConstVal));
      Stack.pop_back();
      break;
    case PatternNode::Kind::App:
      if (F.NextChild < P.Children.size()) {
        PatternId Child = P.Children[F.NextChild++];
        Stack.push_back(Frame{Child, 0}); // May invalidate F.
      } else {
        size_t N = P.Children.size();
        std::vector<ClassId> Children(Values.end() - N, Values.end());
        Values.resize(Values.size() - N);
        Values.push_back(G.addNode(P.Op, Children));
        Stack.pop_back();
      }
      break;
    }
  }
  assert(Values.size() == 1 && "unbalanced pattern evaluation");
  return Values.back();
}

bool Matcher::assertInstance(EGraph &G, const Axiom &A, uint32_t AxiomIdx,
                             unsigned Round,
                             const std::vector<ClassId> &Bindings) {
  uint64_t Before = G.version();
  if (A.Body.size() == 1) {
    const AxiomLiteral &L = A.Body[0];
    ClassId Lhs = instantiate(G, A, L.Lhs, Bindings);
    ClassId Rhs = instantiate(G, A, L.Rhs, Bindings);
    if (L.IsEq) {
      if (G.provenanceEnabled())
        G.assertEqual(Lhs, Rhs,
                      Justification::axiom(AxiomIdx, Round,
                                           G.internSubst(Bindings),
                                           Bindings.size()));
      else
        G.assertEqual(Lhs, Rhs);
    } else
      G.assertDistinct(Lhs, Rhs);
    return G.version() != Before;
  }
  // Clause: skip if some literal is already satisfied; otherwise record.
  // Under deferred rebuilding the satisfied-check can miss equalities the
  // pending rebuild has not yet propagated — that only admits a redundant
  // clause, which clause processing retires later; never unsoundness.
  std::vector<Literal> Lits;
  Lits.reserve(A.Body.size());
  bool Satisfied = false;
  for (const AxiomLiteral &L : A.Body) {
    ClassId Lhs = instantiate(G, A, L.Lhs, Bindings);
    ClassId Rhs = instantiate(G, A, L.Rhs, Bindings);
    if (L.IsEq ? G.sameClass(Lhs, Rhs) : G.areDistinct(Lhs, Rhs))
      Satisfied = true;
    Lits.push_back(L.IsEq ? Literal::eq(Lhs, Rhs) : Literal::ne(Lhs, Rhs));
  }
  if (!Satisfied)
    G.addClause(std::move(Lits));
  return G.version() != Before;
}

MatchStats Matcher::saturate(EGraph &G, const MatchLimits &Limits) {
  MatchStats Stats;
  obs::ObsSpan SatSpan("match.saturate");

  // Saturation owns the rebuild schedule: batched per round unless the
  // caller pins the old per-assert behavior (--match-eager-rebuild).
  RebuildMode PrevMode = G.rebuildMode();
  G.setRebuildMode(Limits.EagerRebuild ? RebuildMode::Eager
                                       : RebuildMode::Deferred);
  RebuildStats BaseRB = G.rebuildStats();

  // Per-axiom scheduling state for this run.
  const size_t NumAxioms = Axioms.size();
  std::vector<uint64_t> BudgetNow(NumAxioms, Limits.MatchBudget);
  std::vector<uint8_t> SitOut(NumAxioms, 0);
  std::vector<unsigned> Phase(NumAxioms, 0);
  unsigned MaxPhase = 0, CurrentPhase = 0;
  if (Limits.Phased)
    for (size_t I = 0; I < NumAxioms; ++I) {
      Phase[I] = axiomPhase(Axioms[I]);
      MaxPhase = std::max(MaxPhase, Phase[I]);
    }

  // Per-axiom attribution rows (the saturation profiler's raw output).
  const bool ProfileOn = Limits.Profile;
  if (ProfileOn)
    Stats.PerAxiom.assign(NumAxioms, obs::AxiomProfile());

  // Adaptive scheduling (--match-adaptive): replace "uniform budget +
  // blind doubling" with history. Two moves, both pure schedule changes
  // that re-enter held-back work through the existing backoff /
  // phase-advance machinery (so quiescent closure is unchanged):
  //   * Demote axioms whose recorded runs never changed the graph behind
  //     every scheduled phase; their enumeration cost is paid only after
  //     the productive set quiesces.
  //   * Seed each productive axiom's budget at its historical per-run raw
  //     demand (next power of two — the backoff ladder), so early rounds
  //     stop burning truncated enumerations and sit-outs discovering it.
  //     Seeding needs an active budget scheduler (MatchBudget > 0);
  //     yield-per-microsecond ordering gives the top half 2x headroom.
  bool PhasedRun = Limits.Phased;
  if (Limits.Adaptive && Limits.Ledger) {
    const unsigned DemotePhase = MaxPhase + 1;
    struct Hist {
      size_t Idx;
      obs::AxiomProfile P;
    };
    std::vector<Hist> Productive;
    bool AnyDemoted = false;
    for (size_t I = 0; I < NumAxioms; ++I) {
      if (Axioms[I].VarNames.empty())
        continue; // Ground facts are exempt from scheduling.
      obs::AxiomProfile P;
      if (!Limits.Ledger->lookup(Limits.LedgerKey,
                                 axiomLedgerId(Axioms[I], I), P) ||
          P.Runs == 0)
        continue; // No history: PR 6 defaults for this axiom.
      if (P.Instances == 0 && P.Merges == 0) {
        Phase[I] = DemotePhase;
        AnyDemoted = true;
        ++Stats.AdaptiveDemoted;
      } else if (Limits.MatchBudget) {
        Productive.push_back(Hist{I, P});
      }
    }
    if (AnyDemoted) {
      PhasedRun = true;
      MaxPhase = std::max(MaxPhase, DemotePhase);
    }
    if (!Productive.empty()) {
      std::sort(Productive.begin(), Productive.end(),
                [](const Hist &A, const Hist &B) {
                  double Ya = A.P.yieldPerUs(), Yb = B.P.yieldPerUs();
                  if (Ya != Yb)
                    return Ya > Yb;
                  return A.Idx < B.Idx;
                });
      for (size_t R = 0; R < Productive.size(); ++R) {
        const Hist &H = Productive[R];
        uint64_t PerRun = H.P.Raw / H.P.Runs + 1;
        uint64_t Seeded =
            roundUpPow2(std::max(PerRun, Limits.MatchBudget));
        if (R * 2 < Productive.size())
          Seeded *= 2;
        BudgetNow[H.Idx] = std::max(BudgetNow[H.Idx], Seeded);
        ++Stats.AdaptiveSeeded;
      }
    }
  }

  std::unique_ptr<support::ThreadPool> Pool;
  // Per-worker busy-time slots (match.sched.par.*): each slot is written
  // only by the pool worker that owns it and read only after the round's
  // futures have joined — TSan-clean by construction.
  std::vector<uint64_t> WorkerBusyNs;

  for (unsigned Round = 0; Round < Limits.MaxRounds; ++Round) {
    ++Stats.Rounds;
    obs::ObsSpan RoundSpan("match.round");
    uint64_t RoundMatches = Stats.MatchesFound;
    uint64_t RoundDeduped = Stats.InstancesDeduped;
    uint64_t RoundAsserted = Stats.InstancesAsserted;
    uint64_t RoundOverflows = Stats.BudgetOverflows;
    uint64_t RoundSkips = Stats.BudgetSkips;
    uint64_t RoundRebuilds = G.rebuildStats().Rebuilds;
    uint64_t RoundMerges = G.rebuildStats().Merges;
    uint64_t RoundStart = G.version();
    bool SchedHeldBack = false; // Some axiom sat out or was truncated.

    for (const Elaborator &E : Elaborators)
      E(G);
    // Close over last round's instances and the elaborators' facts before
    // matching (no-op when nothing is pending / in eager mode).
    G.rebuild();
    if (G.isInconsistent())
      break;

    // Which axioms match this round, and at what budget.
    std::vector<uint8_t> Active(NumAxioms, 1);
    for (size_t I = 0; I < NumAxioms; ++I) {
      if (Axioms[I].VarNames.empty())
        continue; // Ground facts are exempt from scheduling.
      if (PhasedRun && Phase[I] > CurrentPhase) {
        Active[I] = 0;
        continue;
      }
      if (SitOut[I]) {
        // Backoff: sit this round out; the budget was already doubled.
        SitOut[I] = 0;
        Active[I] = 0;
        ++Stats.BudgetSkips;
        if (ProfileOn)
          ++Stats.PerAxiom[I].Skips;
        SchedHeldBack = true;
      }
    }

    // Build the round's work items in fixed (axiom, trigger, slice)
    // order. Per-item caps keep memory bounded and make budget
    // truncation deterministic: an item's share of its axiom's first
    // `budget` raw matches is at most `budget`, so capping enumeration
    // at budget+1 never drops a match the merge phase would keep, and a
    // hit cap always proves a genuine overflow.
    std::vector<WorkItem> Items;
    std::vector<std::pair<size_t, size_t>> AxiomItems(NumAxioms, {0, 0});
    for (uint32_t AIdx = 0; AIdx < NumAxioms; ++AIdx) {
      AxiomItems[AIdx].first = Items.size();
      const Axiom &A = Axioms[AIdx];
      if (Active[AIdx] && !A.VarNames.empty()) {
        uint64_t RawCap = BudgetNow[AIdx] ? BudgetNow[AIdx] + 1 : UINT64_MAX;
        for (PatternId Trigger : A.Triggers) {
          size_t NumRoots = G.nodesWithOp(A.pattern(Trigger).Op).size();
          for (size_t B = 0; B < NumRoots; B += RootChunk) {
            WorkItem It;
            It.AxiomIdx = AIdx;
            It.Trigger = Trigger;
            It.Begin = B;
            It.End = std::min(B + RootChunk, NumRoots);
            It.RawCap = RawCap;
            It.StoreCap = Limits.MaxInstancesPerRound + 1;
            Items.push_back(std::move(It));
          }
        }
      }
      AxiomItems[AIdx].second = Items.size();
    }

    // One work item: enumerate, canonicalize into a reused scratch key,
    // filter against the frozen Done/Seen sets, store survivors. Locals
    // move into the shared item once at the end so concurrent workers
    // never write interleaved cache lines while the loop is hot.
    auto RunItem = [&](WorkItem &It) {
      const int64_t T0 = ProfileOn ? obs::nowNs() : 0;
      const Axiom &A = Axioms[It.AxiomIdx];
      const std::vector<ENodeId> &Roots =
          G.nodesWithOp(A.pattern(It.Trigger).Op);
      uint64_t Raw = 0, Deduped = 0, SeenHits = 0;
      bool Capped = false;
      std::vector<std::pair<uint64_t, std::vector<ClassId>>> Matches;
      DoneKey Scratch{It.AxiomIdx, {}};
      auto OnMatch = [&](const std::vector<ClassId> &Bs) -> bool {
        ++Raw;
        Scratch.Bindings.resize(Bs.size());
        for (size_t I = 0; I < Bs.size(); ++I)
          Scratch.Bindings[I] = G.find(Bs[I]);
        if (Done.count(Scratch)) {
          ++Deduped;
        } else if (Seen.count(Scratch)) {
          ++Deduped;
          ++SeenHits;
        } else {
          Matches.emplace_back(Raw, Scratch.Bindings);
        }
        if (Raw >= It.RawCap || Matches.size() >= It.StoreCap) {
          Capped = true;
          return false;
        }
        return true;
      };
      MatchEngine Engine(G, A, OnMatch);
      Engine.run(It.Trigger, Roots.data() + It.Begin,
                 Roots.data() + It.End);
      It.Raw = Raw;
      It.Deduped = Deduped;
      It.SeenHits = SeenHits;
      It.Capped = Capped;
      It.Matches = std::move(Matches);
      if (ProfileOn) {
        It.Ns = static_cast<uint64_t>(obs::nowNs() - T0);
        // Attribute the item's wall time to the worker that ran it (slot
        // -1 = inline on the caller; only pool workers have slots).
        int W = support::ThreadPool::currentWorkerId();
        if (W >= 0 && static_cast<size_t>(W) < WorkerBusyNs.size())
          WorkerBusyNs[static_cast<size_t>(W)] += It.Ns;
      }
    };

    // Match generation: read-only against graph and dedup sets, so items
    // may run concurrently once union-find paths are fully compressed
    // (every find() is then a pure read). Instantiation and merging stay
    // single-threaded.
    if (Limits.Threads > 1 && Items.size() > 1) {
      G.compressPaths();
      if (!Pool) {
        Pool = std::make_unique<support::ThreadPool>(Limits.Threads);
        WorkerBusyNs.assign(Pool->numThreads(), 0);
      }
      ++Stats.ParRounds;
      Stats.ParItems += Items.size();
      for (const WorkItem &It : Items)
        Stats.ParChunkRoots += It.End - It.Begin;
      std::vector<std::future<void>> Futures;
      Futures.reserve(Items.size());
      for (WorkItem &It : Items)
        Futures.push_back(Pool->submit([&RunItem, &It] { RunItem(It); }));
      for (std::future<void> &F : Futures)
        F.get();
    } else {
      for (WorkItem &It : Items)
        RunItem(It);
    }

    // Merge in item order: budget truncation, cross-item dedup, pending
    // collection.
    struct PendingInstance {
      uint32_t AxiomIdx;
      std::vector<ClassId> Bindings;
    };
    std::vector<PendingInstance> Pending;
    uint64_t TopRaw = 0; // This round's busiest axiom, for the round span.
    uint32_t TopAIdx = 0;
    for (uint32_t AIdx = 0; AIdx < NumAxioms; ++AIdx) {
      const Axiom &A = Axioms[AIdx];
      if (A.VarNames.empty()) {
        // Ground fact: assert once.
        DoneKey Key{AIdx, {}};
        if (!Done.count(Key))
          Pending.push_back(PendingInstance{AIdx, {}});
        continue;
      }
      if (!Active[AIdx])
        continue;
      uint64_t Raw = 0;
      bool Truncated = false;
      for (size_t I = AxiomItems[AIdx].first; I < AxiomItems[AIdx].second;
           ++I) {
        Raw += Items[I].Raw;
        Stats.InstancesDeduped += Items[I].Deduped;
        Stats.SeenHits += Items[I].SeenHits;
        Truncated |= Items[I].Capped;
        if (ProfileOn)
          Stats.PerAxiom[AIdx].MatchNs += Items[I].Ns;
      }
      Stats.MatchesFound += Raw;
      if (ProfileOn)
        Stats.PerAxiom[AIdx].Raw += Raw;
      if (Raw > TopRaw) {
        TopRaw = Raw;
        TopAIdx = AIdx;
      }
      uint64_t Budget = BudgetNow[AIdx];
      if (Budget && Raw > Budget)
        Truncated = true;
      uint64_t PrefixRaw = 0;
      for (size_t I = AxiomItems[AIdx].first; I < AxiomItems[AIdx].second;
           ++I) {
        for (std::pair<uint64_t, std::vector<ClassId>> &M :
             Items[I].Matches) {
          // Keep only survivors within the first `Budget` raw matches of
          // the sequential enumeration order.
          if (Budget && PrefixRaw + M.first > Budget)
            break;
          DoneKey Key{AIdx, std::move(M.second)};
          if (Seen.count(Key)) {
            // A cross-item duplicate earlier this round already queued
            // this substitution (workers see Seen frozen at round start).
            ++Stats.InstancesDeduped;
            ++Stats.SeenHits;
            continue;
          }
          if (Pending.size() >= Limits.MaxInstancesPerRound) {
            // Dropped matches are NOT marked seen — the next round must
            // be able to re-find them.
            Truncated = true;
            continue;
          }
          Pending.push_back(PendingInstance{AIdx, Key.Bindings});
          Seen.insert(std::move(Key));
        }
        PrefixRaw += Items[I].Raw;
      }
      if (Truncated)
        SchedHeldBack = true;
      if (Budget && Truncated) {
        // Backoff: overflowed its budget — sit out next round, return
        // with double.
        ++Stats.BudgetOverflows;
        if (ProfileOn)
          ++Stats.PerAxiom[AIdx].Overflows;
        SitOut[AIdx] = 1;
        BudgetNow[AIdx] = Budget * 2;
      }
    }

    // Per-axiom instantiate attribution is batched over the contiguous
    // runs of one axiom's instances in Pending (the merge loop queues per
    // axiom, in order), so the clock is read twice per axiom group, not
    // twice per instance — that difference is most of the attribution
    // overhead on instance-heavy rounds. Instantiation is
    // single-threaded, so plain accumulation here is race-free. Merges
    // counts direct unions; congruence repair is batched into the round
    // rebuild and not attributable per axiom.
    uint32_t GroupAIdx = UINT32_MAX;
    int64_t GroupT0 = 0;
    uint64_t GroupMerges0 = 0;
    auto FlushGroup = [&](int64_t Now) {
      if (GroupAIdx == UINT32_MAX)
        return;
      obs::AxiomProfile &AP = Stats.PerAxiom[GroupAIdx];
      AP.InstantiateNs += static_cast<uint64_t>(Now - GroupT0);
      AP.Merges += G.rebuildStats().Merges - GroupMerges0;
    };
    size_t Instantiated = 0;
    for (; Instantiated < Pending.size(); ++Instantiated) {
      if (G.numNodes() >= Limits.MaxNodes)
        break;
      if (G.isInconsistent())
        break;
      PendingInstance &P = Pending[Instantiated];
      Done.insert(DoneKey{P.AxiomIdx, P.Bindings});
      if (ProfileOn && P.AxiomIdx != GroupAIdx) {
        const int64_t Now = obs::nowNs();
        FlushGroup(Now);
        GroupAIdx = P.AxiomIdx;
        GroupT0 = Now;
        GroupMerges0 = G.rebuildStats().Merges;
      }
      bool Changed = assertInstance(G, Axioms[P.AxiomIdx], P.AxiomIdx,
                                    Stats.Rounds, P.Bindings);
      if (Changed) {
        ++Stats.InstancesAsserted;
        if (ProfileOn) {
          obs::AxiomProfile &AP = Stats.PerAxiom[P.AxiomIdx];
          ++AP.Instances;
          if (!AP.FirstRound)
            AP.FirstRound = Stats.Rounds;
          AP.LastRound = Stats.Rounds;
        }
      }
    }
    if (ProfileOn)
      FlushGroup(obs::nowNs());
    // Instances cut off by the node cap were marked seen when queued;
    // un-mark them so a later saturate() of this matcher can retry them.
    for (size_t I = Instantiated; I < Pending.size(); ++I)
      Seen.erase(DoneKey{Pending[I].AxiomIdx, Pending[I].Bindings});

    // The batched per-round rebuild: close congruence over everything the
    // instances merged (one repair pass instead of one per assert).
    G.rebuild();

    if (Seen.size() > Limits.SeenCap) {
      // Cap the persistent set by flushing it outright; partial eviction
      // could only save a few re-asserts and costs an eviction policy.
      Stats.SeenEvictions += Seen.size();
      Seen.clear();
    }

    if (RoundSpan.active()) {
      RoundSpan.arg("round", Stats.Rounds)
          .arg("matched", Stats.MatchesFound - RoundMatches)
          .arg("deduped", Stats.InstancesDeduped - RoundDeduped)
          .arg("asserted", Stats.InstancesAsserted - RoundAsserted)
          .arg("merges", G.rebuildStats().Merges - RoundMerges)
          .arg("rebuilds", G.rebuildStats().Rebuilds - RoundRebuilds)
          .arg("sched_overflows", Stats.BudgetOverflows - RoundOverflows)
          .arg("sched_skips", Stats.BudgetSkips - RoundSkips)
          .arg("enodes", static_cast<uint64_t>(G.numNodes()))
          .arg("eclasses", static_cast<uint64_t>(G.numClasses()));
      if (TopRaw)
        RoundSpan
            .arg("top_axiom",
                 axiomLedgerId(Axioms[TopAIdx], TopAIdx).c_str())
            .arg("top_axiom_raw", TopRaw);
    }

    if (G.version() == RoundStart) {
      if (SchedHeldBack)
        continue; // Budgets doubled / axioms return: more to enumerate.
      if (PhasedRun && CurrentPhase < MaxPhase) {
        ++CurrentPhase;
        ++Stats.PhaseAdvances;
        continue;
      }
      Stats.Quiesced = true;
      break;
    }
    if (G.numNodes() >= Limits.MaxNodes || G.isInconsistent())
      break;
  }

  // Leave the graph closed and restore the caller's rebuild discipline.
  G.rebuild();
  G.setRebuildMode(PrevMode);
  Stats.Merges = G.rebuildStats().Merges - BaseRB.Merges;
  Stats.CongruenceMerges =
      G.rebuildStats().CongruenceMerges - BaseRB.CongruenceMerges;
  Stats.ConstantFolds = G.rebuildStats().ConstantFolds - BaseRB.ConstantFolds;
  Stats.Rebuilds = G.rebuildStats().Rebuilds - BaseRB.Rebuilds;

  Stats.FinalNodes = G.numNodes();
  Stats.FinalClasses = G.numClasses();
  for (uint64_t Busy : WorkerBusyNs)
    Stats.ParBusyNs += Busy;
  if (obs::enabled()) {
    if (SatSpan.active())
      SatSpan.arg("rounds", Stats.Rounds)
          .arg("matched", Stats.MatchesFound)
          .arg("asserted", Stats.InstancesAsserted)
          .arg("enodes", static_cast<uint64_t>(Stats.FinalNodes))
          .arg("eclasses", static_cast<uint64_t>(Stats.FinalClasses))
          .arg("quiesced", Stats.Quiesced ? "yes" : "no");
    auto &R = obs::Registry::global();
    R.counter("match.rounds").add(Stats.Rounds);
    R.counter("match.matches").add(Stats.MatchesFound);
    R.counter("match.instances_deduped").add(Stats.InstancesDeduped);
    R.counter("match.instances_asserted").add(Stats.InstancesAsserted);
    R.counter("match.sched.budget_overflows").add(Stats.BudgetOverflows);
    R.counter("match.sched.budget_skips").add(Stats.BudgetSkips);
    R.counter("match.sched.seen_hits").add(Stats.SeenHits);
    R.counter("match.sched.seen_evictions").add(Stats.SeenEvictions);
    R.counter("match.sched.phase_advances").add(Stats.PhaseAdvances);
    R.counter("match.sched.merges").add(Stats.Merges);
    R.counter("match.sched.congruence_merges").add(Stats.CongruenceMerges);
    R.counter("match.sched.constant_folds").add(Stats.ConstantFolds);
    R.counter("match.sched.rebuilds").add(Stats.Rebuilds);
    R.counter("match.sched.adaptive_seeded").add(Stats.AdaptiveSeeded);
    R.counter("match.sched.adaptive_demoted").add(Stats.AdaptiveDemoted);
    R.gauge("match.enodes").noteMax(static_cast<int64_t>(Stats.FinalNodes));
    R.gauge("match.eclasses")
        .noteMax(static_cast<int64_t>(Stats.FinalClasses));
    // Parallel match-loop accounting (satellite of the saturation
    // profiler): how much work fanned out and how evenly it landed.
    if (Stats.ParRounds) {
      R.counter("match.sched.par.rounds").add(Stats.ParRounds);
      R.counter("match.sched.par.items").add(Stats.ParItems);
      R.counter("match.sched.par.chunk_roots").add(Stats.ParChunkRoots);
      R.counter("match.sched.par.busy_us").add(Stats.ParBusyNs / 1000);
      auto &ThreadBusy = R.histogram("match.sched.par.thread_busy_us");
      for (uint64_t Busy : WorkerBusyNs)
        if (Busy)
          ThreadBusy.record(Busy / 1000);
    }
    // Per-axiom attribution rows, as a counter family keyed by ledger id.
    // Only touched rows register, so the namespace holds the axioms that
    // actually did something, not the whole rule set times seven.
    if (ProfileOn)
      for (size_t I = 0; I < NumAxioms; ++I) {
        const obs::AxiomProfile &AP = Stats.PerAxiom[I];
        if (!AP.Raw && !AP.Instances && !AP.InstantiateNs && !AP.Skips)
          continue;
        std::string Base = "match.axiom." + axiomLedgerId(Axioms[I], I);
        auto Add = [&R, &Base](const char *Leaf, uint64_t V) {
          if (V)
            R.counter(Base + Leaf).add(V);
        };
        Add(".raw", AP.Raw);
        Add(".instances", AP.Instances);
        Add(".merges", AP.Merges);
        Add(".match_us", AP.MatchNs / 1000);
        Add(".inst_us", AP.InstantiateNs / 1000);
        Add(".overflows", AP.Overflows);
        Add(".skips", AP.Skips);
      }
  }
  return Stats;
}

std::string Matcher::axiomLedgerId(const Axiom &A, size_t Idx) {
  return strFormat("%s#%zu", A.Name.c_str(), Idx);
}

void denali::match::recordMatchProfile(obs::ProfileLedger &Ledger,
                                       const std::string &GraphKey,
                                       const std::vector<Axiom> &Axioms,
                                       const MatchStats &Stats) {
  for (size_t I = 0; I < Axioms.size() && I < Stats.PerAxiom.size(); ++I) {
    if (Axioms[I].VarNames.empty())
      continue; // Ground facts are exempt from scheduling — no history.
    obs::AxiomProfile P = Stats.PerAxiom[I];
    P.Runs = 1;
    Ledger.record(GraphKey, Matcher::axiomLedgerId(Axioms[I], I), P);
  }
}

std::vector<Elaborator> denali::match::standardElaborators() {
  return {powerOfTwoElaborator(), byteMaskElaborator(),
          byteShiftElaborator(), offsetDisequalityElaborator()};
}
