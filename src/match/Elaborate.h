//===- match/Elaborate.h - Heuristic fact elaboration -----------*- C++ -*-===//
///
/// \file
/// Elaborators inject the "heuristically relevant" ground facts that pure
/// pattern matching cannot discover on its own (our concrete instance of
/// the mechanisms the paper alludes to in section 5):
///
///  * powerOfTwoElaborator — for a constant 2^n used in a multiplication,
///    asserts c = 2**n, enabling the k * 2**n = k << n axiom (Figure 2's
///    first step, 4 = 2**2);
///  * byteMaskElaborator — for an and64 with a byte-regular constant mask
///    (every byte 0x00 or 0xff), adds the equivalent zapnot node;
///  * offsetDisequalityElaborator — base+offset analysis over add64/sub64
///    chains; classes with a common base and different constant offsets are
///    asserted distinct (this is what deletes the p = p+8 literal of the
///    select-store clause).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MATCH_ELABORATE_H
#define DENALI_MATCH_ELABORATE_H

#include "match/Matcher.h"

namespace denali {
namespace match {

Elaborator powerOfTwoElaborator();
Elaborator byteMaskElaborator();
Elaborator offsetDisequalityElaborator();

/// For shl64 nodes whose constant shift amount is a multiple of 8 (< 64),
/// asserts amount = 8 * (amount / 8), enabling the insbl/inswl axioms whose
/// patterns shift by (mul64 8 i).
Elaborator byteShiftElaborator();

} // namespace match
} // namespace denali

#endif // DENALI_MATCH_ELABORATE_H
