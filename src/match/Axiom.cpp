//===- match/Axiom.cpp ----------------------------------------------------===//

#include "match/Axiom.h"

#include "support/StringExtras.h"

#include <cassert>
#include <unordered_map>

using namespace denali;
using namespace denali::match;
using denali::sexpr::SExpr;

uint64_t Axiom::patternVarMask(PatternId Id) const {
  const PatternNode &N = Pool[Id];
  switch (N.TheKind) {
  case PatternNode::Kind::Var:
    return 1ULL << N.VarIndex;
  case PatternNode::Kind::Const:
    return 0;
  case PatternNode::Kind::App: {
    uint64_t Mask = 0;
    for (PatternId C : N.Children)
      Mask |= patternVarMask(C);
    return Mask;
  }
  }
  return 0;
}

std::string Axiom::patternToString(const ir::Context &Ctx,
                                   PatternId Id) const {
  const PatternNode &N = Pool[Id];
  switch (N.TheKind) {
  case PatternNode::Kind::Var:
    return VarNames[N.VarIndex];
  case PatternNode::Kind::Const:
    return formatConstant(N.ConstVal);
  case PatternNode::Kind::App: {
    if (N.Children.empty())
      return Ctx.Ops.info(N.Op).Name;
    std::string Out = "(" + Ctx.Ops.info(N.Op).Name;
    for (PatternId C : N.Children)
      Out += ' ' + patternToString(Ctx, C);
    Out += ')';
    return Out;
  }
  }
  return "?";
}

namespace {

/// Strips the \-prefix used for builtin references in axiom files.
std::string stripBackslash(const std::string &Name) {
  if (!Name.empty() && Name[0] == '\\')
    return Name.substr(1);
  return Name;
}

class AxiomParser {
public:
  AxiomParser(ir::Context &Ctx, std::string *ErrorOut)
      : Ctx(Ctx), ErrorOut(ErrorOut) {}

  std::optional<Axiom> parse(const SExpr &Form) {
    // Unwrap (\axiom BODY) if present.
    const SExpr *Body = &Form;
    if (Form.isForm("\\axiom")) {
      if (Form.size() != 2)
        return fail(Form, "\\axiom takes exactly one body form");
      Body = &Form[1];
    }
    Out.Name = strFormat("axiom@%u:%u", Form.line(), Form.column());

    std::vector<const SExpr *> ExplicitPats;
    const SExpr *LiteralForm = Body;
    if (Body->isForm("forall") || Body->isForm("\\forall")) {
      if (Body->size() < 3)
        return fail(*Body, "forall needs a variable list and a body");
      const SExpr &Vars = (*Body)[1];
      if (!Vars.isList())
        return fail(Vars, "forall variable list must be a list");
      for (const SExpr &V : Vars.list()) {
        if (!V.isSymbol())
          return fail(V, "quantified variable must be a symbol");
        VarIndex[V.symbol()] = static_cast<uint32_t>(Out.VarNames.size());
        Out.VarNames.push_back(V.symbol());
      }
      if (Out.VarNames.size() > 64)
        return fail(Vars, "too many quantified variables (max 64)");
      size_t BodyIdx = 2;
      if (Body->size() > 3 || (*Body)[2].isForm("pats")) {
        const SExpr &Pats = (*Body)[2];
        if (!Pats.isForm("pats"))
          return fail(Pats, "expected (pats ...) before the axiom body");
        for (size_t I = 1; I < Pats.size(); ++I)
          ExplicitPats.push_back(&Pats[I]);
        BodyIdx = 3;
      }
      if (Body->size() != BodyIdx + 1)
        return fail(*Body, "forall needs exactly one body literal/clause");
      LiteralForm = &(*Body)[BodyIdx];
    }

    if (!parseBody(*LiteralForm))
      return std::nullopt;

    // Triggers: explicit pats, else all App literal sides binding all vars.
    uint64_t AllVars =
        Out.VarNames.empty() ? 0 : (~0ULL >> (64 - Out.VarNames.size()));
    if (!ExplicitPats.empty()) {
      for (const SExpr *P : ExplicitPats) {
        std::optional<PatternId> Id = parsePattern(*P);
        if (!Id)
          return std::nullopt;
        if (Out.pattern(*Id).TheKind != PatternNode::Kind::App)
          return fail(*P, "trigger pattern must be an application");
        if (Out.patternVarMask(*Id) != AllVars)
          return fail(*P, "trigger pattern must bind every quantified "
                          "variable");
        Out.Triggers.push_back(*Id);
      }
    } else if (!Out.VarNames.empty()) {
      // Ground axioms keep an empty trigger list: the matcher asserts them
      // unconditionally, once.
      for (const AxiomLiteral &L : Out.Body) {
        for (PatternId Side : {L.Lhs, L.Rhs}) {
          if (Out.pattern(Side).TheKind == PatternNode::Kind::App &&
              Out.patternVarMask(Side) == AllVars)
            Out.Triggers.push_back(Side);
        }
      }
      if (Out.Triggers.empty())
        return fail(*LiteralForm,
                    "no usable trigger: supply explicit (pats ...)");
    }
    return std::move(Out);
  }

private:
  ir::Context &Ctx;
  std::string *ErrorOut;
  Axiom Out;
  std::unordered_map<std::string, uint32_t> VarIndex;

  std::nullopt_t fail(const SExpr &Where, const std::string &Msg) {
    if (ErrorOut)
      *ErrorOut = strFormat("%u:%u: %s", Where.line(), Where.column(),
                            Msg.c_str());
    return std::nullopt;
  }

  bool parseBody(const SExpr &Form) {
    if (Form.isForm("or")) {
      for (size_t I = 1; I < Form.size(); ++I)
        if (!parseLiteral(Form[I]))
          return false;
      if (Out.Body.empty()) {
        fail(Form, "empty clause");
        return false;
      }
      return true;
    }
    return parseLiteral(Form);
  }

  bool parseLiteral(const SExpr &Form) {
    bool IsEq;
    if (Form.isForm("eq") || Form.isForm("="))
      IsEq = true;
    else if (Form.isForm("neq") || Form.isForm("!=") || Form.isForm("distinct"))
      IsEq = false;
    else {
      fail(Form, "expected (eq ...) or (neq ...) literal");
      return false;
    }
    if (Form.size() != 3) {
      fail(Form, "literal takes exactly two terms");
      return false;
    }
    std::optional<PatternId> L = parsePattern(Form[1]);
    if (!L)
      return false;
    std::optional<PatternId> R = parsePattern(Form[2]);
    if (!R)
      return false;
    Out.Body.push_back(AxiomLiteral{IsEq, *L, *R});
    return true;
  }

  PatternId addNode(PatternNode N) {
    Out.Pool.push_back(std::move(N));
    return static_cast<PatternId>(Out.Pool.size() - 1);
  }

  std::optional<PatternId> parsePattern(const SExpr &Form) {
    if (Form.isInteger()) {
      PatternNode N;
      N.TheKind = PatternNode::Kind::Const;
      N.ConstVal = static_cast<uint64_t>(Form.integer());
      return addNode(std::move(N));
    }
    if (Form.isSymbol()) {
      auto It = VarIndex.find(Form.symbol());
      if (It != VarIndex.end()) {
        PatternNode N;
        N.TheKind = PatternNode::Kind::Var;
        N.VarIndex = It->second;
        return addNode(std::move(N));
      }
      // A free symbol: a named variable/constant of the program (e.g. a
      // specific register in a program-specific axiom).
      std::string Name = stripBackslash(Form.symbol());
      std::optional<ir::OpId> Op = Ctx.Ops.lookup(Name);
      if (!Op)
        Op = Ctx.Ops.makeVariable(Name);
      if (Ctx.Ops.info(*Op).Arity != 0)
        return fail(Form, strFormat("operator '%s' used without arguments",
                                    Name.c_str()));
      PatternNode N;
      N.TheKind = PatternNode::Kind::App;
      N.Op = *Op;
      return addNode(std::move(N));
    }
    // Application.
    if (!Form.isList() || Form.size() == 0 || !Form[0].isSymbol())
      return fail(Form, "malformed pattern");
    std::string Name = stripBackslash(Form[0].symbol());
    std::optional<ir::OpId> Op = Ctx.Ops.lookup(Name);
    if (!Op)
      return fail(Form,
                  strFormat("unknown operator '%s' (missing \\opdecl?)",
                            Name.c_str()));
    const ir::OpInfo &Info = Ctx.Ops.info(*Op);
    if (static_cast<size_t>(Info.Arity) != Form.size() - 1)
      return fail(Form, strFormat("operator '%s' takes %d arguments, got %zu",
                                  Name.c_str(), Info.Arity, Form.size() - 1));
    PatternNode N;
    N.TheKind = PatternNode::Kind::App;
    N.Op = *Op;
    for (size_t I = 1; I < Form.size(); ++I) {
      std::optional<PatternId> C = parsePattern(Form[I]);
      if (!C)
        return std::nullopt;
      N.Children.push_back(*C);
    }
    return addNode(std::move(N));
  }
};

/// Converts a pattern to an interned term, mapping pattern variables through
/// \p VarTerms.
ir::TermId patternToTerm(ir::Context &Ctx, const Axiom &A, PatternId Id,
                         const std::vector<ir::TermId> &VarTerms) {
  const PatternNode &N = A.pattern(Id);
  switch (N.TheKind) {
  case PatternNode::Kind::Var:
    return VarTerms[N.VarIndex];
  case PatternNode::Kind::Const:
    return Ctx.Terms.makeConst(N.ConstVal);
  case PatternNode::Kind::App: {
    std::vector<ir::TermId> Children;
    Children.reserve(N.Children.size());
    for (PatternId C : N.Children)
      Children.push_back(patternToTerm(Ctx, A, C, VarTerms));
    return Ctx.Terms.make(N.Op, Children);
  }
  }
  return 0;
}

/// True if \p Id mentions operator \p Op (used to reject directly
/// recursive "definitions" like commutativity, add(a,b) = add(b,a)).
bool patternMentionsOp(const Axiom &A, PatternId Id, ir::OpId Op) {
  const PatternNode &N = A.pattern(Id);
  if (N.TheKind != PatternNode::Kind::App)
    return false;
  if (N.Op == Op)
    return true;
  for (PatternId C : N.Children)
    if (patternMentionsOp(A, C, Op))
      return true;
  return false;
}

} // namespace

std::optional<Axiom> denali::match::parseAxiom(ir::Context &Ctx,
                                               const SExpr &Form,
                                               std::string *ErrorOut) {
  return AxiomParser(Ctx, ErrorOut).parse(Form);
}

ir::TermId denali::match::instantiatePatternTerm(
    ir::Context &Ctx, const Axiom &A, PatternId Id,
    const std::vector<ir::TermId> &VarTerms) {
  return patternToTerm(Ctx, A, Id, VarTerms);
}

std::optional<std::pair<ir::OpId, ir::OpDefinition>>
denali::match::extractDefinition(ir::Context &Ctx, const Axiom &A) {
  if (A.Body.size() != 1 || !A.Body[0].IsEq)
    return std::nullopt;
  const PatternNode &Lhs = A.pattern(A.Body[0].Lhs);
  if (Lhs.TheKind != PatternNode::Kind::App ||
      Ctx.Ops.info(Lhs.Op).Kind != ir::OpKind::Declared)
    return std::nullopt;
  // Arguments must be the distinct quantified variables, covering all.
  uint64_t Mask = 0;
  std::vector<uint32_t> ArgVars;
  for (PatternId C : Lhs.Children) {
    const PatternNode &Child = A.pattern(C);
    if (Child.TheKind != PatternNode::Kind::Var)
      return std::nullopt;
    if (Mask & (1ULL << Child.VarIndex))
      return std::nullopt; // Repeated variable.
    Mask |= 1ULL << Child.VarIndex;
    ArgVars.push_back(Child.VarIndex);
  }
  uint64_t AllVars =
      A.VarNames.empty() ? 0 : (~0ULL >> (64 - A.VarNames.size()));
  if (Mask != AllVars)
    return std::nullopt;
  // The body may reference other declared operators (they expand through
  // their own definitions at evaluation time), but not the operator being
  // defined — that would make evaluation loop.
  if (patternMentionsOp(A, A.Body[0].Rhs, Lhs.Op))
    return std::nullopt;

  // Build the body over fresh parameter variables.
  const std::string &FName = Ctx.Ops.info(Lhs.Op).Name;
  std::vector<ir::TermId> VarTerms(A.VarNames.size());
  std::vector<ir::OpId> ParamsByPosition(ArgVars.size());
  for (size_t Pos = 0; Pos < ArgVars.size(); ++Pos) {
    std::string PName = strFormat("%%%s.%zu", FName.c_str(), Pos);
    ir::OpId P = Ctx.Ops.makeVariable(PName);
    ParamsByPosition[Pos] = P;
    VarTerms[ArgVars[Pos]] = Ctx.Terms.makeVar(PName);
  }
  ir::OpDefinition Def;
  Def.Params = std::move(ParamsByPosition);
  Def.Body = patternToTerm(Ctx, A, A.Body[0].Rhs, VarTerms);
  return std::make_pair(Lhs.Op, std::move(Def));
}
