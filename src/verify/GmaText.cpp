//===- verify/GmaText.cpp -------------------------------------------------===//

#include "verify/GmaText.h"

#include "sexpr/Parser.h"
#include "support/StringExtras.h"

using namespace denali;
using namespace denali::verify;
using sexpr::SExpr;

std::string denali::verify::printTerm(const ir::Context &Ctx, ir::TermId T) {
  const ir::TermNode &N = Ctx.Terms.node(T);
  const ir::OpInfo &Info = Ctx.Ops.info(N.Op);
  if (Ctx.Ops.isConst(N.Op))
    return strFormat("%llu", (unsigned long long)N.ConstVal);
  if (N.Children.empty())
    return Info.Name;
  std::string Out = "(" + Info.Name;
  for (ir::TermId C : N.Children)
    Out += " " + printTerm(Ctx, C);
  return Out + ")";
}

std::string denali::verify::printGma(const ir::Context &Ctx,
                                     const gma::GMA &G) {
  std::string Out =
      "(gma " + (G.Name.empty() ? std::string("unnamed") : G.Name);
  for (size_t I = 0; I < G.Targets.size(); ++I)
    Out += strFormat("\n  (assign %s %s)", G.Targets[I].c_str(),
                     printTerm(Ctx, G.NewVals[I]).c_str());
  if (G.Guard)
    Out += "\n  (guard " + printTerm(Ctx, *G.Guard) + ")";
  for (ir::TermId A : G.MissAddrs)
    Out += "\n  (miss " + printTerm(Ctx, A) + ")";
  for (const gma::GMA::Assumption &A : G.Assumptions)
    Out += strFormat("\n  (assume %s %s %s)", A.IsEq ? "eq" : "neq",
                     printTerm(Ctx, A.Lhs).c_str(),
                     printTerm(Ctx, A.Rhs).c_str());
  return Out + ")";
}

static std::optional<ir::TermId> termFromSExpr(ir::Context &Ctx,
                                               const SExpr &E,
                                               std::string *ErrorOut) {
  auto Fail = [&](std::string Msg) -> std::optional<ir::TermId> {
    if (ErrorOut)
      *ErrorOut = std::move(Msg);
    return std::nullopt;
  };
  if (E.isInteger())
    return Ctx.Terms.makeConst(static_cast<uint64_t>(E.integer()));
  if (E.isSymbol()) {
    // Bare symbols are variables, unless they name a known nullary
    // operator (a declared constant-like op).
    if (auto Op = Ctx.Ops.lookup(E.symbol()))
      if (!Ctx.Ops.isVariable(*Op) && !Ctx.Ops.isConst(*Op)) {
        if (Ctx.Ops.info(*Op).Arity != 0)
          return Fail(strFormat("operator '%s' used without arguments",
                                E.symbol().c_str()));
        return Ctx.Terms.make(*Op, {});
      }
    return Ctx.Terms.makeVar(E.symbol());
  }
  if (E.size() == 0 || !E[0].isSymbol())
    return Fail("term list must start with an operator name");
  std::optional<ir::OpId> Op = Ctx.Ops.lookup(E[0].symbol());
  if (!Op || Ctx.Ops.isVariable(*Op))
    return Fail(strFormat("unknown operator '%s'", E[0].symbol().c_str()));
  const ir::OpInfo &Info = Ctx.Ops.info(*Op);
  if (static_cast<size_t>(Info.Arity) != E.size() - 1)
    return Fail(strFormat("operator '%s' expects %d argument(s), got %zu",
                          Info.Name.c_str(), Info.Arity, E.size() - 1));
  std::vector<ir::TermId> Kids;
  for (size_t I = 1; I < E.size(); ++I) {
    auto K = termFromSExpr(Ctx, E[I], ErrorOut);
    if (!K)
      return std::nullopt;
    Kids.push_back(*K);
  }
  return Ctx.Terms.make(*Op, Kids);
}

std::optional<ir::TermId>
denali::verify::parseTerm(ir::Context &Ctx, const std::string &Text,
                          std::string *ErrorOut) {
  sexpr::ParseResult P = sexpr::parseOne(Text);
  if (!P.ok()) {
    if (ErrorOut)
      *ErrorOut = P.Error->toString();
    return std::nullopt;
  }
  return termFromSExpr(Ctx, P.Forms[0], ErrorOut);
}

std::optional<gma::GMA> denali::verify::parseGma(ir::Context &Ctx,
                                                 const std::string &Text,
                                                 std::string *ErrorOut) {
  auto Fail = [&](std::string Msg) -> std::optional<gma::GMA> {
    if (ErrorOut)
      *ErrorOut = std::move(Msg);
    return std::nullopt;
  };
  sexpr::ParseResult P = sexpr::parseOne(Text);
  if (!P.ok())
    return Fail(P.Error->toString());
  const SExpr &E = P.Forms[0];
  if (!E.isForm("gma") || E.size() < 2 || !E[1].isSymbol())
    return Fail("expected (gma <name> <clause>...)");

  gma::GMA G;
  G.Name = E[1].symbol();
  for (size_t I = 2; I < E.size(); ++I) {
    const SExpr &Clause = E[I];
    if (Clause.isForm("assign") && Clause.size() == 3 &&
        Clause[1].isSymbol()) {
      auto T = termFromSExpr(Ctx, Clause[2], ErrorOut);
      if (!T)
        return std::nullopt;
      G.Targets.push_back(Clause[1].symbol());
      G.NewVals.push_back(*T);
    } else if (Clause.isForm("guard") && Clause.size() == 2) {
      auto T = termFromSExpr(Ctx, Clause[1], ErrorOut);
      if (!T)
        return std::nullopt;
      G.Guard = *T;
    } else if (Clause.isForm("miss") && Clause.size() == 2) {
      auto T = termFromSExpr(Ctx, Clause[1], ErrorOut);
      if (!T)
        return std::nullopt;
      G.MissAddrs.push_back(*T);
    } else if (Clause.isForm("assume") && Clause.size() == 4 &&
               Clause[1].isSymbol()) {
      gma::GMA::Assumption A;
      if (Clause[1].isSymbol("eq"))
        A.IsEq = true;
      else if (Clause[1].isSymbol("neq"))
        A.IsEq = false;
      else
        return Fail("assume clause must be eq or neq");
      auto L = termFromSExpr(Ctx, Clause[2], ErrorOut);
      if (!L)
        return std::nullopt;
      auto R = termFromSExpr(Ctx, Clause[3], ErrorOut);
      if (!R)
        return std::nullopt;
      A.Lhs = *L;
      A.Rhs = *R;
      G.Assumptions.push_back(A);
    } else {
      return Fail(strFormat("unrecognized clause: %s",
                            Clause.toString().c_str()));
    }
  }
  if (G.Targets.empty())
    return Fail("gma has no assign clause");
  return G;
}
