//===- verify/ScheduleValidator.h - Independent schedule replay -*- C++ -*-===//
///
/// \file
/// A standalone validator that replays an extracted program against the
/// machine description the Encoder claims to have enforced: functional-unit
/// legality, issue-slot exclusivity, operand readiness under the *ISA's*
/// latencies (not the latency annotations the encoder wrote into the
/// program — those carry the encoder's own beliefs and would make the check
/// circular), cross-cluster forwarding delays, the certified cycle budget,
/// and the memory-discipline side conditions (single launch per store,
/// loads not scheduled after the store that overwrites their memory state).
///
/// This is the third, mutually independent implementation of the machine
/// timing model (after codegen::Encoder and machine::validateTiming), which
/// is the point: the encoder and the simulator check *each other* through
/// it. An encoder that under-models a latency produces programs whose
/// annotations agree with the encoder's belief — only a validator that
/// recomputes latencies from the ISA tables can flag them (this is exactly
/// the planted-bug experiment of EXPERIMENTS.md E13).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_VERIFY_SCHEDULEVALIDATOR_H
#define DENALI_VERIFY_SCHEDULEVALIDATOR_H

#include "machine/Machine.h"
#include "machine/Program.h"

#include <string>
#include <vector>

namespace denali {
namespace verify {

/// One violated constraint.
struct ScheduleViolation {
  enum class Kind : uint8_t {
    NotMachineInstruction, ///< Opcode absent from the ISA tables.
    IllegalUnit,           ///< Issued on a unit its descriptor forbids.
    SlotConflict,          ///< Two launches share a (cycle, unit) slot.
    LatencyUnderstated,    ///< Annotation claims fewer cycles than the ISA.
    UninitializedOperand,  ///< Source register with no producer.
    OperandNotReady,       ///< Consumed before the producing unit delivers.
    DeadlineExceeded,      ///< Completes after the certified budget.
    StoreReplayed,         ///< A memory state overwritten by two stores.
    LoadAfterOverwrite,    ///< Load scheduled after its state is overwritten.
  };
  Kind TheKind;
  std::string Message;
};

const char *violationKindName(ScheduleViolation::Kind K);

/// The replay outcome. Unlike machine::validateTiming (first violation only),
/// all violations are collected, which is what a fuzzer wants to minimize
/// against.
struct ScheduleReport {
  bool Ok = false;
  /// Cycles actually needed under ISA latencies.
  unsigned Makespan = 0;
  std::vector<ScheduleViolation> Violations;

  bool has(ScheduleViolation::Kind K) const;
  std::string toString() const;
};

/// Replays \p P's schedule against \p Isa. \p BudgetCycles is the
/// SAT-certified budget to check the deadline against (pass P.Cycles to
/// check the program's own claim).
ScheduleReport validateSchedule(const machine::MachineModel &Isa,
                                const machine::Program &P,
                                unsigned BudgetCycles);

} // namespace verify
} // namespace denali

#endif // DENALI_VERIFY_SCHEDULEVALIDATOR_H
