//===- verify/Oracle.cpp --------------------------------------------------===//

#include "verify/Oracle.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"
#include "verify/ScheduleValidator.h"

using namespace denali;
using namespace denali::verify;

const char *denali::verify::oracleStatusName(OracleStatus S) {
  switch (S) {
  case OracleStatus::Pass:
    return "pass";
  case OracleStatus::BudgetExhausted:
    return "budget-exhausted";
  case OracleStatus::CompileError:
    return "compile-error";
  case OracleStatus::ScheduleBad:
    return "schedule-bad";
  case OracleStatus::TimingBad:
    return "timing-bad";
  case OracleStatus::FunctionalBad:
    return "functional-bad";
  }
  return "unknown";
}

std::string OracleVerdict::toString() const {
  std::string Out = oracleStatusName(Status);
  if (Status == OracleStatus::Pass)
    Out += strFormat(" (%u cycles)", Cycles);
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

OracleVerdict denali::verify::checkCompiled(driver::Superoptimizer &Opt,
                                            const driver::GmaResult &R,
                                            const OracleOptions &O) {
  obs::ObsSpan Span("verify.oracle");
  OracleVerdict V;
  auto record = [&] {
    if (!obs::enabled())
      return;
    auto &Reg = obs::Registry::global();
    Reg.counter("verify.oracle_checks").add(1);
    Reg.counter(strFormat("verify.oracle_%s", oracleStatusName(V.Status)))
        .add(1);
    if (Span.active())
      Span.arg("gma", R.Gma.Name.c_str())
          .arg("status", oracleStatusName(V.Status));
  };
  if (!R.ok()) {
    // The honest "no K-cycle program exists up to the ceiling" answer is
    // not a bug; a generated GMA may simply need more cycles than the
    // smoke ceiling allows.
    bool Exhausted = R.Error.find("no program within") != std::string::npos;
    V.Status = Exhausted ? OracleStatus::BudgetExhausted
                         : OracleStatus::CompileError;
    V.Detail = R.Error;
    record();
    return V;
  }
  V.Cycles = R.Search.Cycles;

  // Independent schedule replay, including the certified budget: the
  // emitted program must fit the cycle count the SAT search claims.
  ScheduleReport SR =
      validateSchedule(Opt.isa(), R.Search.Program, R.Search.Cycles);
  if (!SR.Ok) {
    V.Status = OracleStatus::ScheduleBad;
    V.Detail = SR.toString();
    record();
    return V;
  }

  // Functional differential run (reference evaluator vs simulator vs the
  // shared-memory replay) plus the annotation-trusting timing check.
  if (auto Err = Opt.verify(R, O.Trials, O.InputSeed)) {
    V.Status = Err->rfind("timing:", 0) == 0 ? OracleStatus::TimingBad
                                             : OracleStatus::FunctionalBad;
    V.Detail = *Err;
    record();
    return V;
  }
  record();
  return V;
}

OracleVerdict denali::verify::compileAndCheck(driver::Superoptimizer &Opt,
                                              const gma::GMA &G,
                                              const OracleOptions &O) {
  return checkCompiled(Opt, Opt.compileGMA(G), O);
}

std::optional<std::string> denali::verify::crossCheckStrategies(
    driver::Superoptimizer &Opt, const gma::GMA &G,
    const std::vector<codegen::SearchStrategy> &Strategies,
    const OracleOptions &O, OracleVerdict *AgreedOut) {
  codegen::SearchStrategy Saved = Opt.options().Search.Strategy;
  std::optional<OracleVerdict> First;
  std::optional<std::string> Err;
  for (codegen::SearchStrategy S : Strategies) {
    Opt.options().Search.Strategy = S;
    OracleVerdict V = compileAndCheck(Opt, G, O);
    if (!V.benign()) {
      Err = strFormat("%s: strategy %u failed: %s", G.Name.c_str(),
                      static_cast<unsigned>(S), V.toString().c_str());
      break;
    }
    if (!First) {
      First = V;
      continue;
    }
    if (V.Status != First->Status || V.Cycles != First->Cycles) {
      Err = strFormat("%s: strategy %u found %s but strategy %u found %s",
                      G.Name.c_str(), static_cast<unsigned>(Strategies[0]),
                      First->toString().c_str(), static_cast<unsigned>(S),
                      V.toString().c_str());
      break;
    }
  }
  Opt.options().Search.Strategy = Saved;
  if (!Err && AgreedOut && First)
    *AgreedOut = *First;
  return Err;
}
