//===- verify/GmaText.h - Corpus serialization of GMAs ----------*- C++ -*-===//
///
/// \file
/// A plain-text S-expression format for GMAs so fuzzer findings can live in
/// a regression corpus (tests/corpus/) and be replayed verbatim:
///
///   (gma gen7_12
///     (assign res0 (add64 a (shl64 b 3)))
///     (assign M (store M (add64 p 8) c))
///     (guard (cmpult a b))       ; optional
///     (miss (add64 p 8))         ; optional, one per \miss address
///     (assume eq a b))           ; optional, eq | neq
///
/// Terms are written operator-name-first, variables as bare symbols,
/// constants as decimal integers. Round-trips through printGma/parseGma:
/// parse(print(G)) re-interns exactly G's terms in any context that knows
/// the same operators.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_VERIFY_GMATEXT_H
#define DENALI_VERIFY_GMATEXT_H

#include "gma/GMA.h"
#include "ir/Term.h"

#include <optional>
#include <string>

namespace denali {
namespace verify {

/// Renders \p T in the corpus format (ops by name, decimal constants).
std::string printTerm(const ir::Context &Ctx, ir::TermId T);

/// Renders \p G as one (gma ...) form, one clause per line.
std::string printGma(const ir::Context &Ctx, const gma::GMA &G);

/// Parses one term. \returns std::nullopt with \p ErrorOut on unknown
/// operators or arity mismatches; bare symbols intern as variables.
std::optional<ir::TermId> parseTerm(ir::Context &Ctx, const std::string &Text,
                                    std::string *ErrorOut);

/// Parses one (gma ...) form.
std::optional<gma::GMA> parseGma(ir::Context &Ctx, const std::string &Text,
                                 std::string *ErrorOut);

} // namespace verify
} // namespace denali

#endif // DENALI_VERIFY_GMATEXT_H
