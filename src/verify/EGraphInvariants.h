//===- verify/EGraphInvariants.h - E-graph consistency check ----*- C++ -*-===//
///
/// \file
/// A structural audit of an E-graph, run by the fuzzing tests after every
/// saturation round. The checks are exactly the representation invariants
/// the matcher and the constraint generator rely on:
///
///   * membership — every live node is listed in the class the union-find
///     says it belongs to, and only there;
///   * canonicality — canonicalClasses() returns fixed points of find(),
///     each with at least one live node;
///   * congruence — two live nodes with the same operator and pairwise
///     equivalent children sit in the same class (the closure property
///     saturation must preserve);
///   * constants — a class's folded constant agrees with every literal
///     node inside it, and two classes holding different constants are
///     recognized as distinct;
///   * accounting — numNodes() equals the number of live nodes reachable
///     through the classes.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_VERIFY_EGRAPHINVARIANTS_H
#define DENALI_VERIFY_EGRAPHINVARIANTS_H

#include "egraph/EGraph.h"

#include <string>
#include <vector>

namespace denali {
namespace verify {

struct InvariantReport {
  bool Ok = true;
  std::vector<std::string> Violations;

  std::string toString() const;
};

/// Audits \p G; collects every violation found (empty = healthy).
InvariantReport checkEGraphInvariants(const egraph::EGraph &G);

} // namespace verify
} // namespace denali

#endif // DENALI_VERIFY_EGRAPHINVARIANTS_H
