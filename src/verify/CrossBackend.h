//===- verify/CrossBackend.h - Cross-machine differential runs -*- C++ -*-===//
///
/// \file
/// The cross-backend arm of the differential harness: one GMA is compiled
/// under several machine::MachineModel backends (each behind its own
/// Superoptimizer, hence its own ir::Context), and the resulting schedules
/// must agree *semantically* — each backend's program, run through that
/// backend's functional simulator on shared random input vectors, must
/// produce identical output values per target name.
///
/// Each backend's result also passes through the full single-machine
/// oracle (verify::checkCompiled): the independent schedule replay against
/// that machine's tables and the annotation-trusting timing check. That
/// part is what makes a planted per-backend latency bug visible — an
/// understated latency never changes simulated *values* (the simulator is
/// dataflow-ordered), only the table-driven validators can object.
///
/// Two verdict classes are benign by design:
///   * uncomputable — a weaker ISA has no instruction (and the axioms no
///     rewrite) for some goal; the pipeline honestly refuses;
///   * budget-exhausted — no program fits the smoke-test cycle ceiling on
///     that machine.
/// Everything else is a bug in some stage of some backend, and the status
/// says which.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_VERIFY_CROSSBACKEND_H
#define DENALI_VERIFY_CROSSBACKEND_H

#include "driver/Superoptimizer.h"

#include <string>
#include <utility>
#include <vector>

namespace denali {
namespace verify {

struct CrossBackendOptions {
  /// Shared random input vectors per GMA.
  unsigned Trials = 3;
  /// Seed of the shared input stream.
  uint64_t InputSeed = 1;
};

enum class CrossStatus : uint8_t {
  Agree,               ///< Every backend compiled; all outputs identical.
  SkippedUncomputable, ///< Some backend cannot compute a goal (benign).
  SkippedBudget,       ///< Some backend exhausted the budget (benign).
  TransportBad,        ///< GMA failed to round-trip between contexts.
  BackendBad,          ///< A backend failed its own single-machine oracle.
  OutputMismatch,      ///< Simulators disagree on an output value.
};

const char *crossStatusName(CrossStatus S);

struct CrossBackendVerdict {
  CrossStatus Status = CrossStatus::Agree;
  std::string Detail; ///< Human explanation for non-Agree statuses.
  /// Minimal budget found per machine (filled for machines that compiled).
  std::vector<std::pair<std::string, unsigned>> CyclesByMachine;

  bool benign() const {
    return Status == CrossStatus::Agree ||
           Status == CrossStatus::SkippedUncomputable ||
           Status == CrossStatus::SkippedBudget;
  }
  std::string toString() const;
};

/// Compiles \p G (interned in \p Machines[0]'s context) under every
/// Superoptimizer in \p Machines — the GMA travels between contexts via
/// the GmaText round-trip — runs each result through the single-machine
/// oracle, and compares all simulators' outputs on shared random inputs.
/// Requires at least two machines.
CrossBackendVerdict
crossCompileAndCheck(const std::vector<driver::Superoptimizer *> &Machines,
                     const gma::GMA &G,
                     const CrossBackendOptions &O = CrossBackendOptions());

} // namespace verify
} // namespace denali

#endif // DENALI_VERIFY_CROSSBACKEND_H
