//===- verify/Oracle.h - Differential pipeline oracle -----------*- C++ -*-===//
///
/// \file
/// The judgment side of the harness: push a GMA through the full pipeline
/// and hold the result against every independent checker we have —
///
///   * the reference evaluator (gma::evalGMA) versus the Alpha functional
///     simulator on random input states, plus the shared-memory replay
///     (driver::Superoptimizer::verify);
///   * the annotation-trusting timing check (machine::validateTiming, also
///     inside Superoptimizer::verify);
///   * the independent schedule replay against the ISA tables
///     (verify::validateSchedule), including "simulated cycles stay within
///     the SAT-certified budget".
///
/// A verdict is *benign* when the pipeline either produced a program that
/// survives all of the above or honestly reported that no program fits the
/// budget ceiling; everything else is a bug in some stage, and the status
/// says which checker disagreed.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_VERIFY_ORACLE_H
#define DENALI_VERIFY_ORACLE_H

#include "driver/Superoptimizer.h"

#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace verify {

struct OracleOptions {
  /// Random input states per GMA for the functional comparison.
  unsigned Trials = 3;
  /// Seed of the input-state stream (independent of the GMA seed).
  uint64_t InputSeed = 1;
};

enum class OracleStatus : uint8_t {
  Pass,            ///< Compiled and survived every checker.
  BudgetExhausted, ///< "No program within N cycles" — honest, benign.
  CompileError,    ///< Pipeline reported any other error.
  ScheduleBad,     ///< validateSchedule rejected the emitted schedule.
  TimingBad,       ///< validateTiming rejected the annotations.
  FunctionalBad,   ///< Simulator output disagreed with the reference.
};

const char *oracleStatusName(OracleStatus S);

struct OracleVerdict {
  OracleStatus Status = OracleStatus::Pass;
  std::string Detail;  ///< Human explanation for non-Pass statuses.
  unsigned Cycles = 0; ///< Minimal budget when a program was found.

  /// True when nothing is wrong with the pipeline (Pass or the honest
  /// budget-exhausted answer).
  bool benign() const {
    return Status == OracleStatus::Pass ||
           Status == OracleStatus::BudgetExhausted;
  }
  std::string toString() const;
};

/// Judges an already-compiled result.
OracleVerdict checkCompiled(driver::Superoptimizer &Opt,
                            const driver::GmaResult &R,
                            const OracleOptions &O = OracleOptions());

/// Compiles \p G with \p Opt's current options, then judges it.
OracleVerdict compileAndCheck(driver::Superoptimizer &Opt, const gma::GMA &G,
                              const OracleOptions &O = OracleOptions());

/// Compiles \p G once per strategy and requires (a) every verdict benign,
/// (b) all strategies agreeing on whether a program exists and on the
/// minimal cycle count. \returns a description of the first disagreement,
/// or std::nullopt if all strategies agree. Restores the strategy option.
/// On agreement, \p AgreedOut (if non-null) receives the common verdict.
std::optional<std::string>
crossCheckStrategies(driver::Superoptimizer &Opt, const gma::GMA &G,
                     const std::vector<codegen::SearchStrategy> &Strategies,
                     const OracleOptions &O = OracleOptions(),
                     OracleVerdict *AgreedOut = nullptr);

} // namespace verify
} // namespace denali

#endif // DENALI_VERIFY_ORACLE_H
