//===- verify/GmaGen.h - Seeded random GMA generator ------------*- C++ -*-===//
///
/// \file
/// The randomized input side of the differential-verification harness: a
/// seeded generator of well-typed guarded multi-assignments over the
/// supported operators. Every GMA it emits is valid by construction —
/// integer expressions over the scalar inputs, loads from the initial
/// memory at base+offset addresses, a store chain for the memory target,
/// and an optional comparison guard — so any downstream failure is a
/// pipeline bug, not a generator artifact.
///
/// Generation is a pure function of (seed, index): GmaGen(Ctx, S).next()
/// called N times always yields the same N GMAs for the same seed and
/// options, which is what makes fuzzer findings replayable (`--seed`).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_VERIFY_GMAGEN_H
#define DENALI_VERIFY_GMAGEN_H

#include "gma/GMA.h"
#include "ir/Term.h"

#include <random>

namespace denali {
namespace verify {

/// Shape knobs of the generated GMAs.
struct GmaGenOptions {
  /// Integer result targets per GMA (1 .. MaxTargets, chosen per GMA).
  unsigned MaxTargets = 2;
  /// Expression depth bound. Depth d costs at most 2^d operators; keep
  /// small so minimal budgets stay within the smoke search ceiling.
  unsigned MaxDepth = 3;
  /// Scalar input variables (named a, b, c, ...).
  unsigned NumScalars = 3;
  /// Percentage of GMAs that traffic memory at all (loads from the initial
  /// memory M at p + 8k; possibly a store-chain target for M).
  unsigned MemoryPercent = 40;
  /// Distinct 8-byte slots addressable off the base pointer p.
  unsigned MemorySlots = 4;
  /// Of the memory GMAs, percentage that also update M (1-2 chained
  /// stores as the "M" target).
  unsigned StorePercent = 60;
  /// Percentage of GMAs guarded by a scalar comparison (exercises the
  /// guard-before-memory-operation constraints, paper section 7).
  unsigned GuardPercent = 25;
  /// Percentage of binary-operator picks that draw a long-latency
  /// multiply (latency 7 — quickly dominates small budgets, so rare).
  unsigned MulPercent = 5;
  /// Percentage of expression nodes drawn from the *non-machine* pool
  /// (selectb, zext8/16) that only axioms can rewrite into instructions.
  /// The smoke gate keeps this small but nonzero so a matcher regression
  /// surfaces as a verification failure, not silent shrinkage.
  unsigned NonMachinePercent = 10;
  /// Range of generated integer literals (0 .. ConstRange-1).
  unsigned ConstRange = 256;
};

/// Emits a deterministic stream of well-typed GMAs into \p Ctx.
class GmaGen {
public:
  GmaGen(ir::Context &Ctx, uint64_t Seed,
         GmaGenOptions Opts = GmaGenOptions());

  /// The next GMA of the stream (deterministic per (seed, call index)).
  gma::GMA next();

  /// Number of GMAs emitted so far.
  unsigned count() const { return Count; }
  uint64_t seed() const { return Seed; }
  const GmaGenOptions &options() const { return Opts; }

private:
  ir::Context &Ctx;
  uint64_t Seed;
  GmaGenOptions Opts;
  unsigned Count = 0;
  std::mt19937_64 Rng;

  // Per-GMA state.
  bool UseMemory = false;
  ir::TermId MemVar = 0;
  ir::TermId BaseVar = 0;

  bool percent(unsigned P) { return Rng() % 100 < P; }
  uint64_t below(uint64_t N) { return Rng() % N; }

  ir::TermId scalar();
  ir::TermId literal();
  ir::TermId slotAddr();
  ir::TermId intExpr(unsigned Depth);
  ir::TermId guardExpr();
  ir::TermId storeChain();
};

} // namespace verify
} // namespace denali

#endif // DENALI_VERIFY_GMAGEN_H
