//===- verify/CrossBackend.cpp --------------------------------------------===//

#include "verify/CrossBackend.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"
#include "verify/GmaText.h"
#include "verify/Oracle.h"

#include <algorithm>
#include <map>
#include <random>

using namespace denali;
using namespace denali::verify;

const char *denali::verify::crossStatusName(CrossStatus S) {
  switch (S) {
  case CrossStatus::Agree:
    return "agree";
  case CrossStatus::SkippedUncomputable:
    return "skipped-uncomputable";
  case CrossStatus::SkippedBudget:
    return "skipped-budget";
  case CrossStatus::TransportBad:
    return "transport-bad";
  case CrossStatus::BackendBad:
    return "backend-bad";
  case CrossStatus::OutputMismatch:
    return "output-mismatch";
  }
  return "unknown";
}

std::string CrossBackendVerdict::toString() const {
  std::string Out = crossStatusName(Status);
  if (!CyclesByMachine.empty()) {
    Out += " (";
    for (size_t I = 0; I < CyclesByMachine.size(); ++I)
      Out += strFormat("%s%s=%u", I ? ", " : "",
                       CyclesByMachine[I].first.c_str(),
                       CyclesByMachine[I].second);
    Out += ")";
  }
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

CrossBackendVerdict denali::verify::crossCompileAndCheck(
    const std::vector<driver::Superoptimizer *> &Machines, const gma::GMA &G,
    const CrossBackendOptions &O) {
  obs::ObsSpan Span("verify.cross_backend");
  CrossBackendVerdict V;
  auto record = [&] {
    if (!obs::enabled())
      return;
    auto &Reg = obs::Registry::global();
    Reg.counter("verify.cross_checks").add(1);
    Reg.counter(strFormat("verify.cross_%s", crossStatusName(V.Status)))
        .add(1);
    // Per-backend variants so reports can split verdicts by machine model
    // (verify.cross_<status>.<machine>).
    std::string MachineList;
    for (const driver::Superoptimizer *M : Machines) {
      const std::string &Name = M->options().MachineName;
      Reg.counter(strFormat("verify.cross_%s.%s", crossStatusName(V.Status),
                            Name.c_str()))
          .add(1);
      MachineList += MachineList.empty() ? Name : "," + Name;
    }
    if (Span.active())
      Span.arg("gma", G.Name.c_str())
          .arg("status", crossStatusName(V.Status))
          .arg("machines", MachineList.c_str());
  };
  if (Machines.size() < 2) {
    V.Status = CrossStatus::TransportBad;
    V.Detail = "cross-backend check needs at least two machines";
    record();
    return V;
  }

  // Ship the GMA into every backend's context via the corpus text format
  // (parse(print(G)) re-interns the same terms in any context knowing the
  // operators), compile, and run the single-machine oracle.
  const std::string Text = printGma(Machines[0]->context(), G);
  OracleOptions OOpts;
  OOpts.Trials = O.Trials;
  OOpts.InputSeed = O.InputSeed;
  std::vector<driver::GmaResult> Results;
  for (size_t I = 0; I < Machines.size(); ++I) {
    driver::Superoptimizer &Opt = *Machines[I];
    const std::string MName = Opt.isa().name();
    gma::GMA Local;
    if (I == 0) {
      Local = G;
    } else {
      std::string Err;
      std::optional<gma::GMA> Parsed = parseGma(Opt.context(), Text, &Err);
      if (!Parsed) {
        V.Status = CrossStatus::TransportBad;
        V.Detail = strFormat("%s: GMA round-trip failed: %s", MName.c_str(),
                             Err.c_str());
        record();
        return V;
      }
      Local = std::move(*Parsed);
    }
    driver::GmaResult R = Opt.compileGMA(Local);
    OracleVerdict OV = checkCompiled(Opt, R, OOpts);
    switch (OV.Status) {
    case OracleStatus::Pass:
      break;
    case OracleStatus::BudgetExhausted:
      V.Status = CrossStatus::SkippedBudget;
      V.Detail = strFormat("%s: %s", MName.c_str(), OV.Detail.c_str());
      record();
      return V;
    case OracleStatus::CompileError:
      // The honest "this ISA cannot compute the goal" refusal (weaker
      // backends lack whole instruction families) is benign; any other
      // compile error is a real failure.
      if (OV.Detail.find("no machine-computable alternative") !=
          std::string::npos) {
        V.Status = CrossStatus::SkippedUncomputable;
        V.Detail = strFormat("%s: %s", MName.c_str(), OV.Detail.c_str());
        record();
        return V;
      }
      [[fallthrough]];
    default:
      V.Status = CrossStatus::BackendBad;
      V.Detail = strFormat("%s: %s", MName.c_str(), OV.toString().c_str());
      record();
      return V;
    }
    V.CyclesByMachine.emplace_back(MName, R.Search.Cycles);
    Results.push_back(std::move(R));
  }

  // Shared input vectors: one value per input name, generated in sorted
  // name order so every backend sees the identical environment no matter
  // how its context interned the variables.
  std::map<std::string, bool> InputIsMemory;
  for (const driver::GmaResult &R : Results)
    for (const machine::ProgramInput &In : R.Search.Program.Inputs)
      InputIsMemory.emplace(In.Name, In.IsMemory);
  std::mt19937_64 Rng(O.InputSeed * 0x9e3779b97f4a7c15ULL + 0x1234567);
  for (unsigned Trial = 0; Trial < O.Trials; ++Trial) {
    std::unordered_map<std::string, ir::Value> Inputs;
    for (const auto &[Name, IsMemory] : InputIsMemory)
      Inputs[Name] = IsMemory ? ir::Value::makeArray(Rng())
                              : ir::Value::makeInt(Rng());

    // Run every backend's simulator and compare output-by-name against
    // the first backend.
    std::map<std::string, ir::Value> Reference;
    for (size_t I = 0; I < Results.size(); ++I) {
      const driver::GmaResult &R = Results[I];
      const std::string &MName = V.CyclesByMachine[I].first;
      machine::RunResult Run =
          machine::runProgram(Machines[I]->context(), R.Search.Program,
                              Inputs);
      if (!Run.Ok) {
        V.Status = CrossStatus::BackendBad;
        V.Detail = strFormat("%s: trial %u: simulation failed: %s",
                             MName.c_str(), Trial, Run.Error.c_str());
        record();
        return V;
      }
      if (I == 0) {
        for (const auto &[Target, Val] : Run.Outputs)
          Reference.emplace(Target, Val);
        continue;
      }
      for (const auto &[Target, Want] : Reference) {
        auto It = Run.Outputs.find(Target);
        if (It == Run.Outputs.end()) {
          V.Status = CrossStatus::OutputMismatch;
          V.Detail = strFormat("%s: output '%s' missing (present on %s)",
                               MName.c_str(), Target.c_str(),
                               V.CyclesByMachine[0].first.c_str());
          record();
          return V;
        }
        if (!It->second.equals(Want)) {
          V.Status = CrossStatus::OutputMismatch;
          V.Detail = strFormat(
              "trial %u: output '%s': %s computes %s but %s computes %s",
              Trial, Target.c_str(), V.CyclesByMachine[0].first.c_str(),
              Want.toString().c_str(), MName.c_str(),
              It->second.toString().c_str());
          record();
          return V;
        }
      }
      if (Run.Outputs.size() != Reference.size()) {
        V.Status = CrossStatus::OutputMismatch;
        V.Detail = strFormat("%s: %zu outputs but %s has %zu",
                             MName.c_str(), Run.Outputs.size(),
                             V.CyclesByMachine[0].first.c_str(),
                             Reference.size());
        record();
        return V;
      }
    }
  }
  record();
  return V;
}
