//===- verify/EGraphInvariants.cpp ----------------------------------------===//

#include "verify/EGraphInvariants.h"

#include "support/StringExtras.h"

#include <map>
#include <unordered_set>

using namespace denali;
using namespace denali::verify;
using egraph::ClassId;
using egraph::ENodeId;

std::string InvariantReport::toString() const {
  if (Ok)
    return "e-graph invariants hold";
  std::string Out =
      strFormat("%zu e-graph invariant violation(s):", Violations.size());
  for (const std::string &V : Violations)
    Out += "\n  " + V;
  return Out;
}

InvariantReport
denali::verify::checkEGraphInvariants(const egraph::EGraph &G) {
  InvariantReport R;
  auto Violate = [&](std::string Msg) {
    R.Violations.push_back(std::move(Msg));
  };

  std::vector<ClassId> Classes = G.canonicalClasses();
  std::unordered_set<ClassId> Canonical(Classes.begin(), Classes.end());

  // Canonicality + membership, and a live-node census as we go.
  size_t LiveSeen = 0;
  std::unordered_set<ENodeId> Seen;
  for (ClassId C : Classes) {
    if (G.find(C) != C)
      Violate(strFormat("canonicalClasses() returned class %u but its "
                        "representative is %u",
                        C, G.find(C)));
    std::vector<ENodeId> Members = G.classNodes(C);
    if (Members.empty())
      Violate(strFormat("canonical class %u has no live nodes", C));
    for (ENodeId N : Members) {
      ++LiveSeen;
      if (!Seen.insert(N).second)
        Violate(strFormat("node %u listed in more than one class", N));
      if (G.classOf(N) != C)
        Violate(strFormat("node %u listed in class %u but classOf says %u",
                          N, C, G.classOf(N)));
    }
  }
  if (LiveSeen != G.numNodes())
    Violate(strFormat("numNodes() says %zu live nodes but the classes "
                      "hold %zu",
                      G.numNodes(), LiveSeen));

  // Congruence: same operator + equivalent children => same class. The key
  // canonicalizes children through find() because stored child ids may be
  // stale between rebuilds.
  std::map<std::pair<uint64_t, std::vector<ClassId>>,
           std::pair<ENodeId, ClassId>>
      ByKey;
  for (ClassId C : Classes) {
    for (ENodeId N : G.classNodes(C)) {
      const egraph::ENode &Node = G.node(N);
      std::vector<ClassId> Kids;
      Kids.reserve(Node.Children.size());
      for (ClassId K : Node.Children)
        Kids.push_back(G.find(K));
      uint64_t OpKey =
          (static_cast<uint64_t>(Node.Op) << 1) |
          (G.context().Ops.isConst(Node.Op) ? 1 : 0);
      if (G.context().Ops.isConst(Node.Op))
        OpKey ^= Node.ConstVal << 8;
      auto Key = std::make_pair(OpKey, std::move(Kids));
      auto [It, Fresh] = ByKey.emplace(Key, std::make_pair(N, C));
      if (!Fresh && It->second.second != C)
        Violate(strFormat("congruent nodes %u (class %u) and %u (class %u) "
                          "not merged: %s vs %s",
                          It->second.first, It->second.second, N, C,
                          G.nodeToString(It->second.first).c_str(),
                          G.nodeToString(N).c_str()));
    }
  }

  // Constant analysis: literal nodes agree with their class's folded
  // value; distinct constants are recognized as uncombinable.
  std::vector<std::pair<ClassId, uint64_t>> ConstClasses;
  for (ClassId C : Classes) {
    std::optional<uint64_t> Folded = G.classConstant(C);
    if (Folded)
      ConstClasses.emplace_back(C, *Folded);
    for (ENodeId N : G.classNodes(C)) {
      const egraph::ENode &Node = G.node(N);
      if (!G.context().Ops.isConst(Node.Op))
        continue;
      if (!Folded)
        Violate(strFormat("class %u holds literal %llu but reports no "
                          "constant",
                          C, (unsigned long long)Node.ConstVal));
      else if (*Folded != Node.ConstVal)
        Violate(strFormat("class %u folded to %llu but holds literal %llu",
                          C, (unsigned long long)*Folded,
                          (unsigned long long)Node.ConstVal));
    }
  }
  for (size_t I = 0; I < ConstClasses.size(); ++I)
    for (size_t J = I + 1; J < ConstClasses.size(); ++J) {
      auto [CA, VA] = ConstClasses[I];
      auto [CB, VB] = ConstClasses[J];
      if (VA == VB)
        Violate(strFormat("classes %u and %u both fold to %llu but were "
                          "not merged",
                          CA, CB, (unsigned long long)VA));
      else if (!G.areDistinct(CA, CB))
        Violate(strFormat("classes %u (=%llu) and %u (=%llu) hold "
                          "different constants but are not distinct",
                          CA, (unsigned long long)VA, CB,
                          (unsigned long long)VB));
    }

  R.Ok = R.Violations.empty();
  return R;
}
