//===- verify/ScheduleValidator.cpp ---------------------------------------===//

#include "verify/ScheduleValidator.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

using namespace denali;
using namespace denali::verify;
using machine::Instruction;
using machine::MemKind;
using machine::Operand;

const char *denali::verify::violationKindName(ScheduleViolation::Kind K) {
  switch (K) {
  case ScheduleViolation::Kind::NotMachineInstruction:
    return "not-machine-instruction";
  case ScheduleViolation::Kind::IllegalUnit:
    return "illegal-unit";
  case ScheduleViolation::Kind::SlotConflict:
    return "slot-conflict";
  case ScheduleViolation::Kind::LatencyUnderstated:
    return "latency-understated";
  case ScheduleViolation::Kind::UninitializedOperand:
    return "uninitialized-operand";
  case ScheduleViolation::Kind::OperandNotReady:
    return "operand-not-ready";
  case ScheduleViolation::Kind::DeadlineExceeded:
    return "deadline-exceeded";
  case ScheduleViolation::Kind::StoreReplayed:
    return "store-replayed";
  case ScheduleViolation::Kind::LoadAfterOverwrite:
    return "load-after-overwrite";
  }
  return "unknown";
}

bool ScheduleReport::has(ScheduleViolation::Kind K) const {
  for (const ScheduleViolation &V : Violations)
    if (V.TheKind == K)
      return true;
  return false;
}

std::string ScheduleReport::toString() const {
  if (Ok)
    return strFormat("schedule ok (makespan %u)", Makespan);
  std::string Out = strFormat("%zu schedule violation(s):", Violations.size());
  for (const ScheduleViolation &V : Violations) {
    Out += strFormat("\n  [%s] ", violationKindName(V.TheKind));
    Out += V.Message;
  }
  return Out;
}

ScheduleReport
denali::verify::validateSchedule(const machine::MachineModel &Isa,
                                 const machine::Program &P,
                                 unsigned BudgetCycles) {
  obs::ObsSpan Span("verify.schedule");
  ScheduleReport Report;
  auto Violate = [&](ScheduleViolation::Kind K, std::string Msg) {
    Report.Violations.push_back(ScheduleViolation{K, std::move(Msg)});
  };

  // The latency the machine actually takes. The annotation may honestly
  // model *more* cycles than the table (a \miss load), never fewer.
  auto trueLatency = [&](const Instruction &I,
                         const machine::InstrDesc &D) -> unsigned {
    return std::max(I.Latency, D.Latency);
  };

  // Pass 1: descriptors, unit legality, slot occupancy, result readiness.
  const unsigned NC = Isa.numClusters();
  std::unordered_map<uint32_t, std::array<unsigned, machine::MaxClusters>>
      ReadyAt;
  for (const machine::ProgramInput &In : P.Inputs)
    ReadyAt[In.Reg] = {};

  std::map<std::pair<unsigned, unsigned>, const Instruction *> Slots;
  std::unordered_map<const Instruction *, const machine::InstrDesc *> Descs;
  for (const Instruction &I : P.Instrs) {
    const machine::InstrDesc *D = I.Op == Isa.constMaterialize().Op
                                      ? &Isa.constMaterialize()
                                      : Isa.descFor(I.Op);
    if (!D) {
      Violate(ScheduleViolation::Kind::NotMachineInstruction,
              strFormat("'%s' is not in the ISA tables", I.Mnemonic.c_str()));
      continue;
    }
    Descs[&I] = D;
    unsigned UIdx = I.IssueUnit;
    if (UIdx >= Isa.numUnits()) {
      Violate(ScheduleViolation::Kind::IllegalUnit,
              strFormat("'%s' issued on unit index %u but the machine has "
                        "only %u units",
                        I.Mnemonic.c_str(), UIdx, Isa.numUnits()));
      continue;
    }
    if (!(D->UnitMask & (1u << UIdx)))
      Violate(ScheduleViolation::Kind::IllegalUnit,
              strFormat("'%s' issued on %s which its descriptor forbids",
                        I.Mnemonic.c_str(), Isa.unitName(I.IssueUnit)));
    if (I.Latency < D->Latency)
      Violate(ScheduleViolation::Kind::LatencyUnderstated,
              strFormat("'%s' annotated with latency %u but the ISA needs "
                        "%u cycles",
                        I.Mnemonic.c_str(), I.Latency, D->Latency));
    auto Key = std::make_pair(I.Cycle, UIdx);
    auto [It, Fresh] = Slots.emplace(Key, &I);
    if (!Fresh)
      Violate(ScheduleViolation::Kind::SlotConflict,
              strFormat("'%s' and '%s' both issue at cycle %u on %s",
                        It->second->Mnemonic.c_str(), I.Mnemonic.c_str(),
                        I.Cycle, Isa.unitName(I.IssueUnit)));

    unsigned OwnCluster = Isa.clusterOf(I.IssueUnit);
    unsigned Done = I.Cycle + trueLatency(I, *D);
    auto &Entry = ReadyAt[I.Dest];
    // Stores update the shared memory state; everything else pays the
    // cross-cluster forwarding delay.
    for (unsigned C = 0; C < NC; ++C)
      Entry[C] = (C == OwnCluster || I.Mem == MemKind::Store)
                     ? Done
                     : Done + Isa.crossClusterDelay();
  }

  // Pass 2: operand readiness and the certified deadline, both under the
  // ISA's latencies.
  for (const Instruction &I : P.Instrs) {
    auto DIt = Descs.find(&I);
    if (DIt == Descs.end())
      continue;
    if (I.IssueUnit >= Isa.numUnits())
      continue;
    unsigned Cluster = Isa.clusterOf(I.IssueUnit);
    for (const Operand &S : I.Srcs) {
      if (!S.isReg())
        continue;
      auto It = ReadyAt.find(S.Reg);
      if (It == ReadyAt.end()) {
        Violate(ScheduleViolation::Kind::UninitializedOperand,
                strFormat("v%u consumed by '%s' but never produced", S.Reg,
                          I.Mnemonic.c_str()));
        continue;
      }
      if (It->second[Cluster] > I.Cycle)
        Violate(ScheduleViolation::Kind::OperandNotReady,
                strFormat("v%u consumed by '%s' at cycle %u on cluster %u "
                          "but the machine delivers it at cycle %u",
                          S.Reg, I.Mnemonic.c_str(), I.Cycle, Cluster,
                          It->second[Cluster]));
    }
    unsigned Finish = I.Cycle + trueLatency(I, *DIt->second);
    Report.Makespan = std::max(Report.Makespan, Finish);
    if (Finish > BudgetCycles)
      Violate(ScheduleViolation::Kind::DeadlineExceeded,
              strFormat("'%s' finishes at cycle %u, past the certified "
                        "budget of %u",
                        I.Mnemonic.c_str(), Finish, BudgetCycles));
  }

  // Pass 3: memory discipline. Each memory state feeds at most one store
  // (states form a chain), and no load of a state launches after the store
  // that overwrites it (loads read early, stores write at end of cycle).
  std::unordered_map<uint32_t, const Instruction *> OverwrittenBy;
  for (const Instruction &I : P.Instrs) {
    if (I.Mem != MemKind::Store || I.Srcs.empty() || !I.Srcs[0].isReg())
      continue;
    uint32_t Mem = I.Srcs[0].Reg;
    auto [It, Fresh] = OverwrittenBy.emplace(Mem, &I);
    if (!Fresh)
      Violate(ScheduleViolation::Kind::StoreReplayed,
              strFormat("memory state v%u overwritten by both '%s' (cycle "
                        "%u) and '%s' (cycle %u)",
                        Mem, It->second->Mnemonic.c_str(), It->second->Cycle,
                        I.Mnemonic.c_str(), I.Cycle));
  }
  for (const Instruction &I : P.Instrs) {
    if (I.Mem != MemKind::Load || I.Srcs.empty() || !I.Srcs[0].isReg())
      continue;
    auto It = OverwrittenBy.find(I.Srcs[0].Reg);
    if (It != OverwrittenBy.end() && I.Cycle > It->second->Cycle)
      Violate(ScheduleViolation::Kind::LoadAfterOverwrite,
              strFormat("load '%s' at cycle %u reads memory state v%u "
                        "which '%s' overwrote at cycle %u",
                        I.Mnemonic.c_str(), I.Cycle, I.Srcs[0].Reg,
                        It->second->Mnemonic.c_str(), It->second->Cycle));
  }

  Report.Ok = Report.Violations.empty();
  if (obs::enabled()) {
    auto &Reg = obs::Registry::global();
    Reg.counter("verify.schedules_validated").add(1);
    if (!Report.Ok)
      Reg.counter("verify.schedule_violations")
          .add(Report.Violations.size());
    if (Span.active())
      Span.arg("instrs", static_cast<uint64_t>(P.Instrs.size()))
          .arg("makespan", Report.Makespan)
          .arg("ok", Report.Ok ? "yes" : "no");
  }
  return Report;
}
