//===- verify/GmaGen.cpp --------------------------------------------------===//

#include "verify/GmaGen.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"

using namespace denali;
using namespace denali::verify;
using denali::ir::Builtin;
using denali::ir::TermId;

GmaGen::GmaGen(ir::Context &Ctx, uint64_t S, GmaGenOptions O)
    : Ctx(Ctx), Seed(S), Opts(O),
      Rng(S * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL) {
  if (Opts.NumScalars == 0)
    Opts.NumScalars = 1;
  if (Opts.MaxTargets == 0)
    Opts.MaxTargets = 1;
  if (Opts.MemorySlots == 0)
    Opts.MemorySlots = 1;
}

ir::TermId GmaGen::scalar() {
  unsigned I = static_cast<unsigned>(below(Opts.NumScalars));
  return Ctx.Terms.makeVar(std::string(1, static_cast<char>('a' + I)));
}

ir::TermId GmaGen::literal() {
  return Ctx.Terms.makeConst(below(std::max(1u, Opts.ConstRange)));
}

/// Address p + 8k of a random slot (k possibly 0: the bare base).
ir::TermId GmaGen::slotAddr() {
  uint64_t SlotByte = 8 * below(Opts.MemorySlots);
  if (SlotByte == 0)
    return BaseVar;
  return Ctx.Terms.makeBuiltin(
      Builtin::Add64, {BaseVar, Ctx.Terms.makeConst(SlotByte)});
}

ir::TermId GmaGen::intExpr(unsigned Depth) {
  // Leaves: scalars, literals, loads from the *initial* memory (GMA
  // newvals are all evaluated in the pre-state, so the chain input is M).
  if (Depth == 0 || below(3) == 0) {
    if (UseMemory && below(3) == 0)
      return Ctx.Terms.makeBuiltin(Builtin::Select, {MemVar, slotAddr()});
    return below(4) == 0 ? literal() : scalar();
  }

  // Occasionally a non-machine operator only the axioms can lower.
  if (percent(Opts.NonMachinePercent)) {
    switch (below(3)) {
    case 0:
      return Ctx.Terms.makeBuiltin(
          Builtin::SelectB, {intExpr(Depth - 1), Ctx.Terms.makeConst(below(8))});
    case 1:
      return Ctx.Terms.makeBuiltin(Builtin::Zext8, {intExpr(Depth - 1)});
    default:
      return Ctx.Terms.makeBuiltin(Builtin::Zext16, {intExpr(Depth - 1)});
    }
  }

  if (below(5) == 0) { // Unary machine ops.
    static const Builtin UnOps[] = {Builtin::Not64, Builtin::Neg64};
    return Ctx.Terms.makeBuiltin(UnOps[below(std::size(UnOps))],
                                 {intExpr(Depth - 1)});
  }
  if (below(8) == 0) { // Shifts keep a literal count (as in FuzzTests).
    static const Builtin Shifts[] = {Builtin::Shl64, Builtin::Shr64,
                                     Builtin::Sar64};
    return Ctx.Terms.makeBuiltin(
        Shifts[below(std::size(Shifts))],
        {intExpr(Depth - 1), Ctx.Terms.makeConst(1 + below(8))});
  }
  if (below(10) == 0) { // Byte surgery with a literal index.
    static const Builtin ByteOps[] = {Builtin::Extbl, Builtin::Mskbl,
                                      Builtin::Insbl};
    return Ctx.Terms.makeBuiltin(
        ByteOps[below(std::size(ByteOps))],
        {intExpr(Depth - 1), Ctx.Terms.makeConst(below(8))});
  }
  if (percent(Opts.MulPercent))
    return Ctx.Terms.makeBuiltin(Builtin::Mul64,
                                 {intExpr(Depth - 1), intExpr(Depth - 1)});

  static const Builtin BinOps[] = {Builtin::Add64, Builtin::Sub64,
                                   Builtin::And64, Builtin::Or64,
                                   Builtin::Xor64, Builtin::Bic64,
                                   Builtin::Ornot64, Builtin::CmpUlt,
                                   Builtin::CmpEq};
  return Ctx.Terms.makeBuiltin(BinOps[below(std::size(BinOps))],
                               {intExpr(Depth - 1), intExpr(Depth - 1)});
}

ir::TermId GmaGen::guardExpr() {
  static const Builtin Cmps[] = {Builtin::CmpUlt, Builtin::CmpEq,
                                 Builtin::CmpLt, Builtin::CmpUle};
  TermId L = scalar();
  TermId R = below(2) ? scalar() : literal();
  return Ctx.Terms.makeBuiltin(Cmps[below(std::size(Cmps))], {L, R});
}

/// One or two chained stores at distinct slots: store(store(M, p+8i, v),
/// p+8j, w). Distinct offsets keep the addresses provably different, so
/// the select-of-store axioms stay applicable.
ir::TermId GmaGen::storeChain() {
  unsigned NumStores = 1 + static_cast<unsigned>(below(2));
  NumStores = std::min(NumStores, Opts.MemorySlots);
  std::vector<uint64_t> Slots;
  for (unsigned K = 0; K < Opts.MemorySlots && Slots.size() < NumStores; ++K)
    if (below(2) || Opts.MemorySlots - K <= NumStores - Slots.size())
      Slots.push_back(8 * K);
  TermId Chain = MemVar;
  for (uint64_t SlotByte : Slots) {
    TermId Addr = SlotByte == 0
                      ? BaseVar
                      : Ctx.Terms.makeBuiltin(
                            Builtin::Add64,
                            {BaseVar, Ctx.Terms.makeConst(SlotByte)});
    Chain = Ctx.Terms.makeBuiltin(
        Builtin::Store,
        {Chain, Addr, intExpr(1 + static_cast<unsigned>(below(2)))});
  }
  return Chain;
}

gma::GMA GmaGen::next() {
  obs::ObsSpan Span("verify.gmagen");
  gma::GMA G;
  G.Name = strFormat("gen%llu_%u", static_cast<unsigned long long>(Seed),
                     Count);
  ++Count;

  UseMemory = percent(Opts.MemoryPercent);
  MemVar = Ctx.Terms.makeVar("M");
  BaseVar = Ctx.Terms.makeVar("p");

  unsigned NumTargets = 1 + static_cast<unsigned>(below(Opts.MaxTargets));
  for (unsigned T = 0; T < NumTargets; ++T) {
    G.Targets.push_back(strFormat("res%u", T));
    unsigned Depth = 1 + static_cast<unsigned>(below(Opts.MaxDepth));
    G.NewVals.push_back(intExpr(Depth));
  }
  if (UseMemory && percent(Opts.StorePercent)) {
    G.Targets.push_back("M");
    G.NewVals.push_back(storeChain());
  }
  if (percent(Opts.GuardPercent))
    G.Guard = guardExpr();
  if (obs::enabled()) {
    obs::Registry::global().counter("verify.gmas_generated").add(1);
    if (Span.active())
      Span.arg("name", G.Name.c_str())
          .arg("targets", static_cast<uint64_t>(G.Targets.size()))
          .arg("guarded", G.Guard ? "yes" : "no");
  }
  return G;
}
