//===- gma/GMA.cpp --------------------------------------------------------===//

#include "gma/GMA.h"

#include "support/StringExtras.h"

#include <unordered_map>
#include <unordered_set>

using namespace denali;
using namespace denali::gma;
using denali::ir::Builtin;
using denali::lang::Expr;
using denali::lang::Stmt;

std::string GMA::toString(const ir::Context &Ctx) const {
  std::string Out = Name + ": ";
  if (Guard)
    Out += Ctx.Terms.toString(*Guard) + " -> ";
  Out += "(";
  for (size_t I = 0; I < Targets.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Targets[I];
  }
  Out += ") := (";
  for (size_t I = 0; I < NewVals.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Ctx.Terms.toString(NewVals[I]);
  }
  Out += ")";
  return Out;
}

namespace {

/// The symbolic composer: executes statements over terms, splitting the
/// procedure into straight-line segments at loop boundaries.
class Translator {
public:
  Translator(ir::Context &Ctx, const lang::Proc &P, std::string *ErrorOut)
      : Ctx(Ctx), P(P), ErrorOut(ErrorOut) {}

  std::optional<std::vector<GMA>> run() {
    for (const auto &[Name, Ty] : P.Params) {
      (void)Ty;
      State[Name] = Ctx.Terms.makeVar(Name);
      Known.insert(Name);
    }
    Mem = Ctx.Terms.makeVar("M");
    MemChanged = false;
    if (!execStmt(*P.Body))
      return std::nullopt;
    flushSegment(PendingGuard);
    return std::move(Result);
  }

private:
  ir::Context &Ctx;
  const lang::Proc &P;
  std::string *ErrorOut;

  std::unordered_map<std::string, ir::TermId> State;
  std::unordered_set<std::string> Known;
  std::unordered_set<std::string> Changed;
  ir::TermId Mem = 0;
  bool MemChanged = false;
  std::vector<ir::TermId> MissAddrs;
  std::vector<GMA::Assumption> Assumes;
  std::vector<GMA> Result;
  unsigned SegmentCount = 0;
  bool InLoop = false;
  unsigned InIf = 0;

  // Software pipelining (\pipeline): inside the loop, dereferences listed
  // here read their pre-hoisted temporary instead of memory.
  struct PipedLoad {
    const Expr *Deref;    ///< The source dereference.
    std::string TempName; ///< %pipeN.
  };
  std::vector<PipedLoad> PipeList;
  std::unordered_map<std::string, std::string> PipeSubst; // key -> temp
  bool PipelineActive = false;
  unsigned PipeCounter = 0;

  /// Renders an expression's syntactic identity (pipelining keys).
  static std::string exprKey(const Expr &E) {
    switch (E.TheKind) {
    case Expr::Kind::Number:
      return std::to_string(E.Number);
    case Expr::Kind::Ident:
      return E.Name;
    case Expr::Kind::Apply: {
      std::string Out = "(" + E.Name;
      for (const lang::ExprPtr &A : E.Args)
        Out += " " + exprKey(*A);
      return Out + ")";
    }
    case Expr::Kind::Deref:
      return "(*" + exprKey(*E.Args[0]) + ")";
    case Expr::Kind::Cast:
      return strFormat("(cast%d %s)", static_cast<int>(E.CastType.Kind),
                       exprKey(*E.Args[0]).c_str());
    case Expr::Kind::Ite:
      return "(ite " + exprKey(*E.Args[0]) + " " + exprKey(*E.Args[1]) +
             " " + exprKey(*E.Args[2]) + ")";
    }
    return "?";
  }

  static void collectDerefs(const Expr &E, std::vector<const Expr *> &Out) {
    if (E.TheKind == Expr::Kind::Deref)
      Out.push_back(&E);
    for (const lang::ExprPtr &A : E.Args)
      collectDerefs(*A, Out);
  }

  static void collectDerefs(const Stmt &S, std::vector<const Expr *> &Out) {
    if (S.VarInit)
      collectDerefs(*S.VarInit, Out);
    for (const lang::ExprPtr &V : S.Values)
      collectDerefs(*V, Out);
    for (const lang::AssignTarget &T : S.Targets)
      if (T.Addr)
        collectDerefs(*T.Addr, Out);
    if (S.Cond)
      collectDerefs(*S.Cond, Out);
    for (const lang::StmtPtr &Inner : S.Body)
      collectDerefs(*Inner, Out);
  }

  bool fail(unsigned Line, const std::string &Msg) {
    if (ErrorOut)
      *ErrorOut = strFormat("%s:%u: %s", P.Name.c_str(), Line, Msg.c_str());
    return false;
  }

  ir::TermId evalExpr(const Expr &E, bool &Ok) {
    switch (E.TheKind) {
    case Expr::Kind::Number:
      return Ctx.Terms.makeConst(E.Number);
    case Expr::Kind::Ident: {
      auto It = State.find(E.Name);
      if (It == State.end()) {
        Ok = fail(E.Line, strFormat("unknown identifier '%s'",
                                    E.Name.c_str()));
        return 0;
      }
      return It->second;
    }
    case Expr::Kind::Apply: {
      std::string Name = E.Name;
      if (!Name.empty() && Name[0] == '\\')
        Name = Name.substr(1);
      std::optional<ir::OpId> Op = Ctx.Ops.lookup(Name);
      if (!Op) {
        Ok = fail(E.Line, strFormat("unknown operator '%s' (missing "
                                    "\\opdecl?)", Name.c_str()));
        return 0;
      }
      if (static_cast<size_t>(Ctx.Ops.info(*Op).Arity) != E.Args.size()) {
        Ok = fail(E.Line, strFormat("operator '%s' takes %d arguments",
                                    Name.c_str(), Ctx.Ops.info(*Op).Arity));
        return 0;
      }
      std::vector<ir::TermId> Args;
      for (const lang::ExprPtr &A : E.Args) {
        ir::TermId T = evalExpr(*A, Ok);
        if (!Ok)
          return 0;
        Args.push_back(T);
      }
      return Ctx.Terms.make(*Op, Args);
    }
    case Expr::Kind::Deref: {
      if (PipelineActive) {
        auto It = PipeSubst.find(exprKey(E));
        if (It != PipeSubst.end())
          return State.at(It->second); // Read the pipelined temporary.
      }
      ir::TermId Addr = evalExpr(*E.Args[0], Ok);
      if (!Ok)
        return 0;
      if (E.Miss)
        MissAddrs.push_back(Addr);
      return Ctx.Terms.makeBuiltin(Builtin::Select, {Mem, Addr});
    }
    case Expr::Kind::Cast: {
      ir::TermId V = evalExpr(*E.Args[0], Ok);
      if (!Ok)
        return 0;
      switch (E.CastType.Kind) {
      case lang::TypeKind::Short:
        return Ctx.Terms.makeBuiltin(Builtin::Zext16, {V});
      case lang::TypeKind::Byte:
        return Ctx.Terms.makeBuiltin(Builtin::Zext8, {V});
      case lang::TypeKind::Int:
        return Ctx.Terms.makeBuiltin(Builtin::Sext32, {V});
      case lang::TypeKind::Long:
      case lang::TypeKind::Ptr:
        return V;
      }
      return V;
    }
    case Expr::Kind::Ite: {
      ir::TermId C = evalExpr(*E.Args[0], Ok);
      ir::TermId A = Ok ? evalExpr(*E.Args[1], Ok) : 0;
      ir::TermId B = Ok ? evalExpr(*E.Args[2], Ok) : 0;
      if (!Ok)
        return 0;
      // ite(c, a, b) = cmovne(c, a, b): take a when c != 0.
      return Ctx.Terms.makeBuiltin(Builtin::CmovNe, {C, A, B});
    }
    }
    Ok = false;
    return 0;
  }

  void flushSegment(std::optional<ir::TermId> Guard) {
    if (Changed.empty() && !MemChanged && !Guard)
      return;
    GMA G;
    G.Name = strFormat("%s.%u", P.Name.c_str(), SegmentCount++);
    G.Guard = Guard;
    G.MissAddrs = std::move(MissAddrs);
    MissAddrs.clear();
    G.Assumptions = std::move(Assumes);
    Assumes.clear();
    for (const std::string &Name : Changed) {
      G.Targets.push_back(Name);
      G.NewVals.push_back(State.at(Name));
    }
    if (MemChanged) {
      G.Targets.push_back("M");
      G.NewVals.push_back(Mem);
    }
    if (!G.Targets.empty())
      Result.push_back(std::move(G));
    Changed.clear();
    // The flushed updates are the new baseline; memory reads through the
    // existing symbolic memory term remain valid.
    MemChanged = false;
  }

  /// Forgets the values of variables in \p Vars (and memory if \p DropMem):
  /// they become fresh inputs named after themselves.
  void resetState(const std::unordered_set<std::string> &Vars, bool DropMem) {
    for (const std::string &Name : Vars)
      State[Name] = Ctx.Terms.makeVar(Name);
    if (DropMem) {
      Mem = Ctx.Terms.makeVar("M");
      MemChanged = false;
    }
  }

  bool execStmt(const Stmt &S) {
    bool Ok = true;
    switch (S.TheKind) {
    case Stmt::Kind::Assume: {
      GMA::Assumption A;
      A.IsEq = S.AssumeEq;
      A.Lhs = evalExpr(*S.AssumeLhs, Ok);
      if (!Ok)
        return false;
      A.Rhs = evalExpr(*S.AssumeRhs, Ok);
      if (!Ok)
        return false;
      Assumes.push_back(A);
      return true;
    }
    case Stmt::Kind::If: {
      // If-conversion: both branches execute symbolically on copies of the
      // state; differing variables merge through cmovne(cond, then, else).
      // Memory writes cannot be if-converted (no conditional store on the
      // EV6 model), and nested control in branches is not supported.
      ir::TermId Cond = evalExpr(*S.Cond, Ok);
      if (!Ok)
        return false;
      auto SavedState = State;
      auto SavedChanged = Changed;
      ir::TermId SavedMem = Mem;
      bool SavedMemChanged = MemChanged;
      ++InIf;
      for (const lang::StmtPtr &Inner : S.Body)
        if (!execStmt(*Inner)) {
          --InIf;
          return false;
        }
      auto ThenState = State;
      auto ThenChanged = Changed;
      ir::TermId ThenMem = Mem;
      bool ThenMemChanged = MemChanged;
      State = SavedState;
      Changed = SavedChanged;
      Mem = SavedMem;
      MemChanged = SavedMemChanged;
      for (const lang::StmtPtr &Inner : S.ElseBody)
        if (!execStmt(*Inner)) {
          --InIf;
          return false;
        }
      --InIf;
      if ((ThenMemChanged || MemChanged) && ThenMem != Mem)
        return fail(S.Line, "memory writes under \\if cannot be "
                            "if-converted; restructure with \\ite or "
                            "separate procedures");
      // Merge: vars touched by either branch.
      std::unordered_set<std::string> Touched;
      for (const auto &[Name, T] : ThenState) {
        auto It = State.find(Name);
        if (It == State.end() || It->second != T)
          Touched.insert(Name);
      }
      for (const std::string &Name : Touched) {
        ir::TermId ThenVal = ThenState.at(Name);
        ir::TermId ElseVal = State.at(Name);
        State[Name] = ThenVal == ElseVal
                          ? ThenVal
                          : Ctx.Terms.makeBuiltin(Builtin::CmovNe,
                                                  {Cond, ThenVal, ElseVal});
        Changed.insert(Name);
      }
      for (const std::string &Name : ThenChanged)
        Changed.insert(Name);
      return true;
    }
    case Stmt::Kind::VarDecl: {
      if (InIf)
        return fail(S.Line, "\\var inside \\if is not supported");
      if (Known.count(S.VarName))
        return fail(S.Line, strFormat("variable '%s' redeclared",
                                      S.VarName.c_str()));
      Known.insert(S.VarName);
      if (S.VarInit) {
        State[S.VarName] = evalExpr(*S.VarInit, Ok);
        if (!Ok)
          return false;
        Changed.insert(S.VarName);
      } else {
        State[S.VarName] = Ctx.Terms.makeVar(S.VarName);
      }
      for (const lang::StmtPtr &Inner : S.Body)
        if (!execStmt(*Inner))
          return false;
      return true;
    }
    case Stmt::Kind::Seq:
      for (const lang::StmtPtr &Inner : S.Body)
        if (!execStmt(*Inner))
          return false;
      return true;
    case Stmt::Kind::Assign: {
      // Simultaneous semantics: evaluate all values and addresses first.
      std::vector<ir::TermId> Vals;
      std::vector<std::optional<ir::TermId>> Addrs;
      for (size_t I = 0; I < S.Values.size(); ++I) {
        Vals.push_back(evalExpr(*S.Values[I], Ok));
        if (!Ok)
          return false;
        if (S.Targets[I].IsDeref) {
          Addrs.push_back(evalExpr(*S.Targets[I].Addr, Ok));
          if (!Ok)
            return false;
        } else {
          Addrs.push_back(std::nullopt);
        }
      }
      for (size_t I = 0; I < S.Values.size(); ++I) {
        const lang::AssignTarget &T = S.Targets[I];
        if (T.IsDeref) {
          Mem = Ctx.Terms.makeBuiltin(Builtin::Store,
                                      {Mem, *Addrs[I], Vals[I]});
          MemChanged = true;
          continue;
        }
        if (T.Var == "\\res") {
          State["\\res"] = Vals[I];
          Known.insert("\\res");
          Changed.insert("\\res");
          continue;
        }
        if (!Known.count(T.Var))
          return fail(S.Line, strFormat("assignment to undeclared '%s'",
                                        T.Var.c_str()));
        State[T.Var] = Vals[I];
        Changed.insert(T.Var);
      }
      return true;
    }
    case Stmt::Kind::Do: {
      if (InLoop)
        return fail(S.Line, "nested loops are not supported");
      if (InIf)
        return fail(S.Line, "loops inside \\if are not supported");
      // 0. \pipeline: hoist the body's memory reads into temporaries,
      // loaded once before the loop (part of the pre-loop segment). The
      // programmer asserts, as with hand pipelining, that the loop's
      // stores do not feed its own loads.
      if (S.Pipeline) {
        std::vector<const Expr *> Derefs;
        for (const lang::StmtPtr &Inner : S.Body)
          collectDerefs(*Inner, Derefs);
        for (const Expr *D : Derefs) {
          std::string Key = exprKey(*D);
          if (PipeSubst.count(Key))
            continue;
          std::string Temp = strFormat("%%pipe%u", PipeCounter++);
          ir::TermId Addr = evalExpr(*D->Args[0], Ok);
          if (!Ok)
            return false;
          if (D->Miss)
            MissAddrs.push_back(Addr);
          State[Temp] = Ctx.Terms.makeBuiltin(Builtin::Select, {Mem, Addr});
          Known.insert(Temp);
          Changed.insert(Temp);
          PipeSubst.emplace(std::move(Key), Temp);
          PipeList.push_back(PipedLoad{D, Temp});
        }
      }
      // 1. Flush the straight-line segment before the loop (guarded by the
      // previous loop's exit condition, if any).
      flushSegment(PendingGuard);
      PendingGuard.reset();
      // 2. The loop body GMA: variables are fresh at the loop head.
      std::unordered_set<std::string> Before = Known;
      resetState(Known, /*DropMem=*/true);
      ir::TermId Cond = evalExpr(*S.Cond, Ok);
      if (!Ok)
        return false;
      InLoop = true;
      PipelineActive = S.Pipeline;
      for (unsigned Iter = 0; Iter < S.Unroll; ++Iter) {
        for (const lang::StmtPtr &Inner : S.Body)
          if (!execStmt(*Inner)) {
            InLoop = false;
            PipelineActive = false;
            return false;
          }
        // Reload the pipelined temporaries for the next iteration, using
        // the advanced address variables (the Figure 6 pattern).
        if (S.Pipeline) {
          PipelineActive = false; // Reloads read memory, not the temps.
          for (const PipedLoad &PL : PipeList) {
            ir::TermId Addr = evalExpr(*PL.Deref->Args[0], Ok);
            if (!Ok) {
              InLoop = false;
              return false;
            }
            if (PL.Deref->Miss)
              MissAddrs.push_back(Addr);
            State[PL.TempName] =
                Ctx.Terms.makeBuiltin(Builtin::Select, {Mem, Addr});
            Changed.insert(PL.TempName);
          }
          PipelineActive = true;
        }
      }
      InLoop = false;
      PipelineActive = false;
      PipeSubst.clear();
      PipeList.clear();
      std::unordered_set<std::string> LoopChanged = Changed;
      bool LoopMemChanged = MemChanged;
      flushSegment(Cond);
      // 3. After the loop, everything the loop touched is unknown; the
      // following segment is guarded by the loop's exit condition.
      resetState(LoopChanged, LoopMemChanged);
      PendingGuard = Ctx.Terms.makeBuiltin(
          Builtin::CmpEq, {evalExpr(*S.Cond, Ok), Ctx.Terms.makeConst(0)});
      return Ok;
    }
    }
    return false;
  }

  /// Exit-condition guard for the segment after a loop (applied at the
  /// next flush).
  std::optional<ir::TermId> PendingGuard;
};

} // namespace

std::optional<std::vector<GMA>>
denali::gma::translateProc(ir::Context &Ctx, const lang::Proc &P,
                           std::string *ErrorOut) {
  Translator T(Ctx, P, ErrorOut);
  return T.run();
}

std::vector<ir::OpId> denali::gma::gmaInputs(const ir::Context &Ctx,
                                             const GMA &G) {
  std::unordered_set<ir::OpId> Seen;
  std::vector<ir::OpId> Out;
  std::vector<ir::TermId> Work = G.NewVals;
  if (G.Guard)
    Work.push_back(*G.Guard);
  std::unordered_set<ir::TermId> Visited;
  while (!Work.empty()) {
    ir::TermId T = Work.back();
    Work.pop_back();
    if (!Visited.insert(T).second)
      continue;
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (Ctx.Ops.isVariable(N.Op)) {
      if (Seen.insert(N.Op).second)
        Out.push_back(N.Op);
      continue;
    }
    for (ir::TermId C : N.Children)
      Work.push_back(C);
  }
  return Out;
}

std::optional<std::vector<std::pair<std::string, ir::Value>>>
denali::gma::evalGMA(const ir::Context &Ctx, const GMA &G,
                     const ir::Env &Bindings, const ir::Definitions *Defs,
                     std::string *ErrorOut) {
  std::vector<std::pair<std::string, ir::Value>> Out;
  for (size_t I = 0; I < G.Targets.size(); ++I) {
    std::string Err;
    std::optional<ir::Value> V =
        ir::evalTerm(Ctx.Terms, G.NewVals[I], Bindings, Defs, &Err);
    if (!V) {
      if (ErrorOut)
        *ErrorOut = Err;
      return std::nullopt;
    }
    Out.emplace_back(G.Targets[I], std::move(*V));
  }
  return Out;
}
