//===- gma/GMA.h - Guarded multi-assignments --------------------*- C++ -*-===//
///
/// \file
/// The guarded multi-assignment (paper, section 3): the unit of work of the
/// crucial inner code-generation subroutine. A GMA
///
///     G -> (targets) := (newvals)
///
/// is produced from a procedure by symbolic composition: sequential
/// statements compose by substitution, pointer writes become store()
/// applications on the memory M, and loops contribute one GMA for their
/// (possibly unrolled) body.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_GMA_GMA_H
#define DENALI_GMA_GMA_H

#include "ir/Eval.h"
#include "ir/Term.h"
#include "lang/AST.h"

#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace gma {

struct GMA {
  std::string Name;
  /// The guard G; std::nullopt means "true".
  std::optional<ir::TermId> Guard;
  /// Parallel target/value lists. Target "M" with a store(...) value is a
  /// memory update; target "\res" is the procedure result.
  std::vector<std::string> Targets;
  std::vector<ir::TermId> NewVals;
  /// Address terms of loads annotated \miss in the source.
  std::vector<ir::TermId> MissAddrs;
  /// Trust facts (\assume, section 2's "trust the programmer" feature):
  /// term pairs asserted equal (or distinct) in the E-graph before
  /// matching. Unsound if the programmer lies — that is the contract.
  struct Assumption {
    bool IsEq = true;
    ir::TermId Lhs = 0;
    ir::TermId Rhs = 0;
  };
  std::vector<Assumption> Assumptions;

  std::string toString(const ir::Context &Ctx) const;
};

/// Translates \p P into its GMAs (entry segment, one per loop, exit
/// segment). \returns std::nullopt with \p ErrorOut on unknown identifiers
/// or unsupported nesting (loops within loops).
std::optional<std::vector<GMA>> translateProc(ir::Context &Ctx,
                                              const lang::Proc &P,
                                              std::string *ErrorOut);

/// The variable operators a GMA reads (its inputs).
std::vector<ir::OpId> gmaInputs(const ir::Context &Ctx, const GMA &G);

/// Reference semantics: evaluates all newvals under \p Bindings.
/// \returns target -> value, or std::nullopt (with \p ErrorOut) if some
/// operator lacks semantics.
std::optional<std::vector<std::pair<std::string, ir::Value>>>
evalGMA(const ir::Context &Ctx, const GMA &G, const ir::Env &Bindings,
        const ir::Definitions *Defs, std::string *ErrorOut);

} // namespace gma
} // namespace denali

#endif // DENALI_GMA_GMA_H
