//===- server/Cache.h - Sharded LRU maps for the compile server -*- C++ -*-===//
///
/// \file
/// A byte-capped, sharded LRU map from Key128 to shared immutable values,
/// used for both the canonical-GMA result cache and the saturated-e-graph
/// memo. Shards are independent (key's high bits pick the shard), each
/// with its own mutex, intrusive LRU list, and byte budget — so
/// concurrent requests only contend when they land on the same shard.
///
/// Hit/miss/insert/evict counts are published both as obs counters
/// (`<prefix>.hit` etc., visible in --metrics-out summaries) and as plain
/// atomics for tests and the server's (stats) protocol verb.
///
/// Soundness: a Key128 match alone never serves a value — every entry
/// stores its canonical identity text and get() compares it exactly, so
/// a 128-bit hash collision degrades to a miss, never a wrong result.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SERVER_CACHE_H
#define DENALI_SERVER_CACHE_H

#include "obs/Obs.h"
#include "server/Canon.h"

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace denali {
namespace server {

/// Aggregate counters of one cache. Values are snapshots (relaxed reads).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  size_t Bytes = 0;
  size_t Entries = 0;
};

template <typename V> class ShardedLruCache {
  static constexpr size_t NumShards = 8;

public:
  /// \p MaxBytes caps the summed cost of live entries (0 disables the
  /// cache entirely: get() always misses, put() is a no-op). \p Prefix
  /// names the obs counters, e.g. "server.cache".
  ShardedLruCache(size_t MaxBytes, const std::string &Prefix)
      : MaxBytes(MaxBytes),
        HitCtr(obs::Registry::global().counter(Prefix + ".hit")),
        MissCtr(obs::Registry::global().counter(Prefix + ".miss")),
        InsertCtr(obs::Registry::global().counter(Prefix + ".insert")),
        EvictCtr(obs::Registry::global().counter(Prefix + ".evict")),
        BytesGauge(obs::Registry::global().gauge(Prefix + ".bytes")) {}

  bool enabled() const { return MaxBytes > 0; }

  /// Looks up \p K, verifying \p IdentityText exactly. A hit refreshes
  /// the entry's LRU position and returns a shared pointer that stays
  /// valid after eviction.
  std::shared_ptr<const V> get(const Key128 &K, std::string_view IdentityText) {
    if (!enabled())
      return nullptr;
    Shard &S = shard(K);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Index.find(K);
    if (It == S.Index.end() || It->second->Identity != IdentityText) {
      MissCtr.add();
      Misses.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    HitCtr.add();
    Hits.fetch_add(1, std::memory_order_relaxed);
    return It->second->Value;
  }

  /// Inserts \p Value under \p K with cost \p Bytes, evicting LRU entries
  /// past the shard's budget. First writer wins: if \p K is already
  /// present with the same identity (two threads raced on one miss), the
  /// existing entry is kept so concurrent duplicates observe one result.
  void put(const Key128 &K, std::string IdentityText,
           std::shared_ptr<const V> Value, size_t Bytes) {
    if (!enabled())
      return;
    size_t ShardCap = MaxBytes / NumShards;
    if (ShardCap == 0)
      ShardCap = 1;
    if (Bytes > ShardCap)
      return; // Would evict the whole shard for one entry; skip.
    Shard &S = shard(K);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Index.find(K);
    if (It != S.Index.end()) {
      if (It->second->Identity == IdentityText)
        return; // First writer won.
      // Genuine 128-bit collision: replace — the old identity can re-cold
      // compile. Vanishingly rare; counted as an eviction.
      S.Bytes -= It->second->Bytes;
      TotalBytes.fetch_sub(It->second->Bytes, std::memory_order_relaxed);
      S.Lru.erase(It->second);
      S.Index.erase(It);
      EvictCtr.add();
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
    S.Lru.push_front(Entry{K, std::move(IdentityText), std::move(Value),
                           Bytes});
    S.Index[K] = S.Lru.begin();
    S.Bytes += Bytes;
    TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
    InsertCtr.add();
    Insertions.fetch_add(1, std::memory_order_relaxed);
    while (S.Bytes > ShardCap && S.Lru.size() > 1) {
      Entry &Old = S.Lru.back();
      S.Bytes -= Old.Bytes;
      TotalBytes.fetch_sub(Old.Bytes, std::memory_order_relaxed);
      S.Index.erase(Old.Key);
      S.Lru.pop_back();
      EvictCtr.add();
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
    publishBytes();
  }

  CacheStats stats() const {
    CacheStats St;
    St.Hits = Hits.load(std::memory_order_relaxed);
    St.Misses = Misses.load(std::memory_order_relaxed);
    St.Insertions = Insertions.load(std::memory_order_relaxed);
    St.Evictions = Evictions.load(std::memory_order_relaxed);
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      St.Bytes += S.Bytes;
      St.Entries += S.Lru.size();
    }
    return St;
  }

private:
  struct Entry {
    Key128 Key;
    std::string Identity;
    std::shared_ptr<const V> Value;
    size_t Bytes = 0;
  };
  struct Shard {
    mutable std::mutex Mu;
    std::list<Entry> Lru; ///< Front = most recently used.
    std::unordered_map<Key128, typename std::list<Entry>::iterator, Key128Hash>
        Index;
    size_t Bytes = 0;
  };

  Shard &shard(const Key128 &K) { return Shards[K.Hi % NumShards]; }

  void publishBytes() {
    BytesGauge.set(
        static_cast<int64_t>(TotalBytes.load(std::memory_order_relaxed)));
  }

  size_t MaxBytes;
  Shard Shards[NumShards];
  obs::Counter &HitCtr;
  obs::Counter &MissCtr;
  obs::Counter &InsertCtr;
  obs::Counter &EvictCtr;
  obs::Gauge &BytesGauge;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Insertions{0}, Evictions{0};
  std::atomic<size_t> TotalBytes{0};
};

} // namespace server
} // namespace denali

#endif // DENALI_SERVER_CACHE_H
