//===- server/Canon.cpp ---------------------------------------------------===//

#include "server/Canon.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <unordered_map>

using namespace denali;
using namespace denali::server;

namespace {

/// Builds canonical identity text for a GMA without interning anything.
/// Two passes over the same deterministic traversal order:
///   1. shape: a name-blind string per term, with commutative builtin
///      operands sorted by their child shapes (so the shape itself is
///      order-insensitive);
///   2. print: the canonical text, reusing the shape strings to order
///      commutative operands (stable — ties keep source order, which is
///      harmless: tied operands print identically) and handing out
///      v0, v1, ... variable names in first-use order.
class Canonicalizer {
public:
  explicit Canonicalizer(const ir::Context &Ctx) : Ctx(Ctx) {}

  const std::string &shape(ir::TermId T) {
    auto It = Shapes.find(T);
    if (It != Shapes.end())
      return It->second;
    const ir::TermNode &N = Ctx.Terms.node(T);
    std::string S;
    if (Ctx.Ops.isConst(N.Op)) {
      S = strFormat("#%llu", (unsigned long long)N.ConstVal);
    } else if (Ctx.Ops.isVariable(N.Op)) {
      S = "?";
    } else {
      std::vector<std::string> Kids;
      Kids.reserve(N.Children.size());
      for (ir::TermId C : N.Children)
        Kids.push_back(shape(C));
      if (Ctx.Ops.info(N.Op).Commutative)
        std::stable_sort(Kids.begin(), Kids.end());
      S = "(" + Ctx.Ops.info(N.Op).Name;
      for (const std::string &K : Kids)
        S += " " + K;
      S += ")";
    }
    return Shapes.emplace(T, std::move(S)).first->second;
  }

  void print(ir::TermId T, std::string &Out) {
    const ir::TermNode &N = Ctx.Terms.node(T);
    if (Ctx.Ops.isConst(N.Op)) {
      Out += strFormat("%llu", (unsigned long long)N.ConstVal);
      return;
    }
    if (Ctx.Ops.isVariable(N.Op)) {
      Out += canonVar(Ctx.Ops.info(N.Op).Name);
      return;
    }
    std::vector<size_t> Order(N.Children.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    if (Ctx.Ops.info(N.Op).Commutative)
      std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
        return shape(N.Children[A]) < shape(N.Children[B]);
      });
    if (N.Children.empty()) {
      // Nullary declared op: prints bare, like a variable, but is not one.
      Out += Ctx.Ops.info(N.Op).Name;
      return;
    }
    Out += "(" + Ctx.Ops.info(N.Op).Name;
    for (size_t I : Order) {
      Out += " ";
      print(N.Children[I], Out);
    }
    Out += ")";
  }

  const std::string &canonVar(const std::string &Orig) {
    auto It = Vars.find(Orig);
    if (It != Vars.end())
      return It->second;
    std::string Canon = strFormat("v%zu", Vars.size());
    VarOrder.push_back(Orig);
    return Vars.emplace(Orig, std::move(Canon)).first->second;
  }

  std::vector<std::pair<std::string, std::string>> varMap() const {
    std::vector<std::pair<std::string, std::string>> Map;
    Map.reserve(VarOrder.size());
    for (const std::string &Orig : VarOrder)
      Map.emplace_back(Orig, Vars.at(Orig));
    return Map;
  }

private:
  const ir::Context &Ctx;
  std::unordered_map<ir::TermId, std::string> Shapes;
  std::unordered_map<std::string, std::string> Vars;
  std::vector<std::string> VarOrder;
};

} // namespace

CanonicalGma denali::server::canonicalizeGma(const ir::Context &Ctx,
                                             const gma::GMA &G) {
  CanonicalGma C;
  C.Name = G.Name;
  C.Targets = G.Targets;

  Canonicalizer Canon(Ctx);
  // Same clause order as verify::printGma, so the canonical text is
  // itself a parseable GMA (useful for debugging and for exact-compare on
  // cache lookup).
  std::string &Out = C.Text;
  Out = "(gma g";
  for (size_t I = 0; I < G.Targets.size(); ++I) {
    Out += strFormat("\n  (assign %s ", G.Targets[I] == "M"
                                            ? "M"
                                            : strFormat("o%zu", I).c_str());
    Canon.print(G.NewVals[I], Out);
    Out += ")";
  }
  if (G.Guard) {
    Out += "\n  (guard ";
    Canon.print(*G.Guard, Out);
    Out += ")";
  }
  for (ir::TermId A : G.MissAddrs) {
    Out += "\n  (miss ";
    Canon.print(A, Out);
    Out += ")";
  }
  for (const gma::GMA::Assumption &A : G.Assumptions) {
    Out += strFormat("\n  (assume %s ", A.IsEq ? "eq" : "neq");
    Canon.print(A.Lhs, Out);
    Out += " ";
    Canon.print(A.Rhs, Out);
    Out += ")";
  }
  Out += ")";
  C.VarMap = Canon.varMap();
  return C;
}

Key128 denali::server::makeKey(std::string_view CanonText,
                               std::string_view Fingerprint) {
  // Two independent FNV-1a streams with distinct offset bases, finalized
  // with splitmix64. Collisions are tolerable (lookups exact-compare the
  // canonical text); the key only has to spread well across shards.
  auto Mix = [](uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  };
  uint64_t A = 0xcbf29ce484222325ULL;
  uint64_t B = 0x84222325cbf29ce4ULL;
  auto Feed = [&](std::string_view S) {
    for (unsigned char Ch : S) {
      A = (A ^ Ch) * 0x100000001b3ULL;
      B = (B ^ Ch) * 0x100000001b3ULL;
      B += B << 7;
    }
  };
  Feed(CanonText);
  Feed("\x1f"); // Separator: text and fingerprint cannot bleed together.
  Feed(Fingerprint);
  Key128 K;
  K.Hi = Mix(A);
  K.Lo = Mix(B);
  return K;
}

std::string denali::server::matchFingerprint(const driver::Options &Opts) {
  // The fingerprint logic lives in the driver (the profile ledger keys
  // off the same identity and src/obs cannot see src/server); the server
  // keeps this alias so its cache-key derivation reads locally.
  return driver::matchOptionsFingerprint(Opts);
}

std::string denali::server::resultFingerprint(const driver::Options &Opts) {
  const codegen::SearchOptions &S = Opts.Search;
  return matchFingerprint(Opts) +
         strFormat("|strat=%d;min=%u;max=%u;incr=%d;thr=%u;confl=%llu;"
                   "cnf=%s;cert=%d;xunsat=%d;amo=%d;single=%d;"
                   "explain=%d;dump=%d;why=%d",
                   static_cast<int>(S.Strategy), S.MinCycles, S.MaxCycles,
                   S.Incremental ? 1 : 0, S.Threads,
                   (unsigned long long)S.ConflictBudget,
                   S.DumpCnfDir.c_str(), S.CertifyRefutations ? 1 : 0,
                   S.ExplainUnsat ? 1 : 0,
                   static_cast<int>(S.Encoding.AmoStyle),
                   S.Encoding.SingleCluster ? 1 : 0, Opts.Explain ? 1 : 0,
                   Opts.EGraphDump ? 1 : 0, Opts.WhyUnsat ? 1 : 0);
}
