//===- server/Canon.h - Canonical GMA keys for the compile server -*- C++ -*-===//
///
/// \file
/// Canonicalization of GMAs into stable cache keys. Two requests that
/// differ only in variable names, GMA/source names, or the argument order
/// of commutative builtins canonicalize to the same text, so a compiled
/// result (or a saturated e-graph) produced for one can be served to the
/// other after a pure renaming.
///
/// The canonical form is derived without interning anything: shapes and
/// names are computed on the fly over the hash-consed term table, so
/// canonicalizing a pre-interned GMA is a pure read on ir::Context and is
/// safe to run concurrently with compiles.
///
/// Key derivation (documented in DESIGN.md §7):
///   key = hash128(canonical text ‖ options fingerprint)
/// and every cache entry stores the canonical text, which is compared
/// exactly on lookup — the 128-bit hash only routes to a shard/bucket, so
/// a hash collision can never serve a wrong result.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SERVER_CANON_H
#define DENALI_SERVER_CANON_H

#include "driver/Superoptimizer.h"
#include "gma/GMA.h"
#include "ir/Term.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace denali {
namespace server {

/// A 128-bit cache key: two independent 64-bit hashes over the same
/// bytes. Equality of keys is necessary but not sufficient for a cache
/// hit — the canonical text is always compared too.
struct Key128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Key128 &O) const { return Hi == O.Hi && Lo == O.Lo; }
  bool operator!=(const Key128 &O) const { return !(*this == O); }
};

struct Key128Hash {
  size_t operator()(const Key128 &K) const {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// The canonical identity of one GMA, plus the renaming that links it
/// back to the original request.
struct CanonicalGma {
  /// The canonical GMA, printed in verify::GmaText syntax: name stripped
  /// to "g", targets positional ("o0", "o1", ... — "M" stays "M"),
  /// variables alpha-renamed v0, v1, ... in first-use order, commutative
  /// builtin operands sorted by a name-blind shape string.
  std::string Text;
  /// Original variable name -> canonical name ("v<k>"), in first-use
  /// order. Serving a request from an entry produced by another request
  /// composes the producer's map forward and this map backward.
  std::vector<std::pair<std::string, std::string>> VarMap;
  /// The request's original target names, in order (positionally aligned
  /// with the canonical "o<i>" targets).
  std::vector<std::string> Targets;
  /// The request's original GMA name.
  std::string Name;
};

/// Canonicalizes \p G. Pure read on \p Ctx (no interning).
CanonicalGma canonicalizeGma(const ir::Context &Ctx, const gma::GMA &G);

/// Hashes canonical text + options fingerprint into a 128-bit key.
Key128 makeKey(std::string_view CanonText, std::string_view Fingerprint);

/// Fingerprint of every driver option that influences saturation and the
/// resulting SaturatedGma (machine model, match limits, universe knobs,
/// guard enforcement, provenance mode, adaptive scheduling). Requests
/// agreeing on this — and on canonical text — may share one warm e-graph.
/// Match parallelism (MatchLimits::Threads) is deliberately excluded: the
/// PR 6 parallel matcher is bit-identical for any thread count. Delegates
/// to driver::matchOptionsFingerprint, which also keys the profile
/// ledger (with the adaptive bit masked; see driver::profileLedgerKey).
std::string matchFingerprint(const driver::Options &Opts);

/// Fingerprint of every option that influences the full GmaResult: the
/// match fingerprint plus search strategy/budget/encoding knobs and the
/// artifact switches (Explain, EGraphDump, WhyUnsat). Requests agreeing
/// on this — and on canonical text — may share one cached result.
/// Changing any Options field therefore invalidates by construction: the
/// fingerprint (hence the key) changes and old entries become
/// unreachable.
std::string resultFingerprint(const driver::Options &Opts);

} // namespace server
} // namespace denali

#endif // DENALI_SERVER_CANON_H
