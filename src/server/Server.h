//===- server/Server.h - Long-lived concurrent compile service --*- C++ -*-===//
///
/// \file
/// Denali as a service: a long-lived CompileServer that accepts many GMA
/// compile requests concurrently on a support::ThreadPool and answers
/// them through three accelerating tiers:
///
///   1. **Result cache** — canonical-GMA -> GmaResult (sharded LRU under
///      a --cache-bytes cap). An alpha-renamed / operand-commuted /
///      source-renamed duplicate of any previously compiled GMA is served
///      by a pure renaming of the cached program: no e-graph, no SAT.
///   2. **Warm-graph memo** — canonical goal skeleton -> SaturatedGma.
///      A request that matches a warm entry (same canonical text and
///      match-relevant options, but e.g. different search budgets) skips
///      saturation entirely and reuses the frozen path-compressed e-graph
///      snapshot for universe construction + the SAT ladder. The snapshot
///      is shared, not cloned: after compressPaths() every const query is
///      a pure read (the PR 1 portfolio-search property), so any number
///      of concurrent requests may compile against one graph.
///   3. **Cold compile** — the ordinary driver pipeline, after which both
///      tiers are populated.
///
/// Concurrency model: compiles are read-only on the shared ir::Context
/// (the driver interns every term at parse/translate time), so they run
/// lock-free on worker threads; only request *parsing* interns and is
/// serialized behind one front-end mutex. Canonicalization is a pure
/// read and needs no lock.
///
/// Wire protocol (line-oriented s-exprs; see serve()):
///   -> (gma <name> (assign t <term>) ...)       compile one GMA
///   -> (stats)                                  cache/memo counters
///   -> (stats-full)                             + live latency windows
///   -> (quit)                                   shut down
///   <- (ok <name> :cycles N :source cold|warm|hit :program "...")
///   <- (error "message")
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SERVER_SERVER_H
#define DENALI_SERVER_SERVER_H

#include "driver/Superoptimizer.h"
#include "obs/Obs.h"
#include "server/Cache.h"
#include "server/Canon.h"
#include "support/ThreadPool.h"

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace denali {
namespace server {

struct ServerOptions {
  /// Pipeline configuration for the embedded Superoptimizer. Fixed for
  /// the server's lifetime; both cache keys fingerprint it, so entries
  /// can never leak across configurations.
  driver::Options Pipeline;
  /// Worker threads compiling requests concurrently.
  unsigned Threads = 2;
  /// Result-cache capacity in bytes. 0 disables result caching AND the
  /// warm-graph memo — every request compiles cold, byte-for-byte the
  /// pre-server driver behavior.
  size_t CacheBytes = size_t(64) << 20;
  /// Warm-graph memo capacity in entries (saturated e-graphs are large;
  /// they are capped by count, not bytes). 0 disables the memo.
  size_t WarmGraphs = 64;
  /// Attach the emitted program text to protocol responses.
  bool PrintPrograms = false;
  /// Always-on telemetry: per-request ids + spans, sliding-window latency
  /// histograms per tier, in-flight/queue gauges. The constructor enables
  /// the obs layer (metrics only, no exporter outputs) if it is not already
  /// configured. `--obs-off` clears this for overhead measurements.
  bool Telemetry = true;
  /// When > 0, a request slower than this many milliseconds increments
  /// server.slow_requests and dumps its full span tree via obs::logf.
  double SlowMs = 0;
  /// When > 0, a background obs::MetricsFlusher appends a JSONL metrics
  /// snapshot to MetricsFlushPath every MetricsFlushSec seconds.
  double MetricsFlushSec = 0;
  std::string MetricsFlushPath = "denali_metrics.jsonl";
  /// Rotation threshold for the flusher (path -> path.1 -> path.2 ...).
  size_t MetricsFlushMaxBytes = 8u << 20;
};

/// Which tier answered a request.
enum class ResultSource { Cold, WarmGraph, CacheHit };

const char *resultSourceName(ResultSource S);

struct ServerResponse {
  driver::GmaResult Result;
  ResultSource Source = ResultSource::Cold;
  double Seconds = 0; ///< Wall time inside the server for this request.
};

/// Aggregate server statistics (see also CacheStats per tier).
struct ServerStats {
  uint64_t Requests = 0;
  uint64_t ParseErrors = 0;
  uint64_t ColdCompiles = 0;
  uint64_t WarmCompiles = 0;
  uint64_t CacheServes = 0;
  uint64_t SlowRequests = 0;
  int64_t InFlight = 0;
  CacheStats ResultCache;
  CacheStats GraphMemo;
};

class CompileServer {
public:
  explicit CompileServer(ServerOptions Opts = ServerOptions());
  ~CompileServer();

  driver::Superoptimizer &opt() { return Opt; }
  const driver::Superoptimizer &opt() const { return Opt; }
  const ServerOptions &options() const { return SOpts; }

  /// Compiles one pre-interned GMA through the cache tiers. Thread-safe;
  /// this is the per-request worker body.
  ServerResponse compileGma(const gma::GMA &G);

  /// Parses (serialized behind the front-end mutex) then compiles.
  /// On parse failure the response's Result.Error is set and
  /// Result.Gma.Name is empty.
  ServerResponse compileText(const std::string &Text);

  /// Bulk mode: compiles a batch of GMA texts, grouping same-skeleton
  /// requests so each canonical goal skeleton is saturated exactly once
  /// (the batch's leader compiles; followers are served from the tiers
  /// it fills). Responses are returned in input order. Parsing is
  /// serialized; group leaders run concurrently on the pool.
  std::vector<ServerResponse> compileBulk(const std::vector<std::string> &Texts);

  /// Reads s-expr requests from \p In until EOF or (quit), writing one
  /// response line per request to \p Out in request order. Requests are
  /// dispatched to the pool as they parse, so up to Threads compiles
  /// overlap. \returns the number of failed requests.
  int serve(std::istream &In, std::ostream &Out);

  ServerStats stats() const;
  /// The (stats) verb / --stats report, as a one-line s-expr.
  std::string statsText() const;
  /// The (stats-full) verb: statsText()'s counters plus live telemetry —
  /// in-flight/queue gauges and sliding-window latency percentiles per
  /// tier, snapshot at call time.
  std::string statsFullText() const;

  /// The periodic flusher (exposed for tests; started by the constructor
  /// when MetricsFlushSec > 0).
  obs::MetricsFlusher &metricsFlusher() { return Flusher; }

private:
  struct CachedResult {
    driver::GmaResult Result; ///< In the producing request's name space.
    CanonicalGma Canon;       ///< The producing request's renaming.
  };
  struct CachedGraph {
    driver::SaturatedGma Saturated;
    CanonicalGma Canon; ///< The saturating request's renaming.
  };

  ServerResponse serveCached(const CachedResult &Hit, const gma::GMA &G,
                             const CanonicalGma &C, double Seconds);
  /// The tiered compile body, run under the request's RequestScope.
  ServerResponse compileGmaTiered(const gma::GMA &G, uint64_t Req);
  /// Records per-request telemetry (windowed latencies, slow-request log)
  /// once the request's scope has closed.
  void noteRequestDone(const ServerResponse &R, uint64_t Req,
                       obs::RequestTrace *Trace);

  ServerOptions SOpts;
  driver::Superoptimizer Opt;
  support::ThreadPool Pool;
  std::mutex FrontEndMu; ///< Serializes interning (parse) on Opt's Context.
  ShardedLruCache<CachedResult> Results;
  ShardedLruCache<CachedGraph> Graphs;
  std::atomic<uint64_t> Requests{0}, ParseErrors{0}, ColdCompiles{0},
      WarmCompiles{0}, CacheServes{0}, SlowRequests{0};
  std::atomic<int64_t> InFlight{0};
  // Cached metric handles: registry references are stable for the process
  // lifetime, so the per-request hot path never takes the registry mutex.
  obs::WindowedHistogram &WinAll, &WinCold, &WinWarm, &WinHit;
  obs::Gauge &InFlightGauge, &InFlightMaxGauge, &QueueDepthGauge;
  obs::Counter &SlowCounter;
  obs::MetricsFlusher Flusher;
};

/// Renames a cached result (in the \p From request's name space) into the
/// \p To request's name space: program inputs via From.VarMap ∘ ToCanon
/// .VarMap⁻¹, outputs positionally onto \p To's targets, program and GMA
/// names to \p To's. Exposed for tests.
driver::GmaResult renameResult(const driver::GmaResult &Cached,
                               const CanonicalGma &From, const gma::GMA &To,
                               const CanonicalGma &ToCanon);

} // namespace server
} // namespace denali

#endif // DENALI_SERVER_SERVER_H
