//===- server/Server.cpp --------------------------------------------------===//

#include "server/Server.h"

#include "support/StringExtras.h"
#include "support/Timer.h"
#include "verify/GmaText.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <istream>
#include <map>
#include <ostream>
#include <unordered_map>

using namespace denali;
using namespace denali::server;

const char *denali::server::resultSourceName(ResultSource S) {
  switch (S) {
  case ResultSource::Cold:
    return "cold";
  case ResultSource::WarmGraph:
    return "warm";
  case ResultSource::CacheHit:
    return "hit";
  }
  return "?";
}

namespace {

/// Rough live size of a cached result, for the --cache-bytes budget. An
/// estimate is fine: the cap bounds memory order-of-magnitude, it is not
/// an allocator.
size_t approxResultBytes(const driver::GmaResult &R, const CanonicalGma &C) {
  size_t B = sizeof(driver::GmaResult) + C.Text.size();
  B += R.Search.Program.Instrs.size() * 64;
  B += R.Search.Probes.size() * 128;
  B += R.ExplanationJson.size() + R.ExplanationListing.size() +
       R.EGraphDotText.size() + R.EGraphJsonText.size() +
       R.WhyUnsatText.size() + R.Error.size();
  for (const auto &[Orig, Canon] : C.VarMap)
    B += Orig.size() + Canon.size() + 16;
  return B;
}

} // namespace

driver::GmaResult denali::server::renameResult(const driver::GmaResult &Cached,
                                               const CanonicalGma &From,
                                               const gma::GMA &To,
                                               const CanonicalGma &ToCanon) {
  driver::GmaResult R = Cached;
  R.Gma = To;
  // Exact duplicate (same variable names, targets, and source name): the
  // cached result is already in the request's name space — serve it
  // verbatim. This is the bit-identical path the bench gate checks.
  if (From.VarMap == ToCanon.VarMap && From.Targets == ToCanon.Targets &&
      From.Name == ToCanon.Name)
    return R;

  // Alpha-variant: compose producer-name -> canonical -> request-name.
  std::unordered_map<std::string, std::string> CanonToNew;
  for (const auto &[Orig, Canon] : ToCanon.VarMap)
    CanonToNew[Canon] = Orig;
  std::unordered_map<std::string, std::string> OldToNew;
  for (const auto &[Orig, Canon] : From.VarMap) {
    auto It = CanonToNew.find(Canon);
    if (It != CanonToNew.end() && It->second != Orig)
      OldToNew[Orig] = It->second;
  }
  std::unordered_map<std::string, std::string> TargetMap;
  for (size_t I = 0; I < From.Targets.size() && I < ToCanon.Targets.size();
       ++I)
    if (From.Targets[I] != ToCanon.Targets[I])
      TargetMap[From.Targets[I]] = ToCanon.Targets[I];

  alpha::Program &P = R.Search.Program;
  P.Name = To.Name;
  for (alpha::ProgramInput &In : P.Inputs) {
    auto It = OldToNew.find(In.Name);
    if (It != OldToNew.end())
      In.Name = It->second;
  }
  for (auto &[Target, Reg] : P.Outputs) {
    auto It = TargetMap.find(Target);
    if (It != TargetMap.end())
      Target = It->second;
  }
  return R;
}

CompileServer::CompileServer(ServerOptions Opts)
    : SOpts(Opts), Opt(Opts.Pipeline),
      Pool(Opts.Threads == 0 ? 1 : Opts.Threads),
      Results(Opts.CacheBytes, "server.cache"),
      // --cache-bytes 0 is the "no acceleration at all" switch: it turns
      // the warm-graph memo off too, so every request runs the unmodified
      // driver pipeline.
      Graphs(Opts.CacheBytes == 0 ? 0 : Opts.WarmGraphs, "server.memo"),
      WinAll(obs::Registry::global().windowed("server.win.request.us")),
      WinCold(obs::Registry::global().windowed("server.win.request.cold.us")),
      WinWarm(obs::Registry::global().windowed("server.win.request.warm.us")),
      WinHit(obs::Registry::global().windowed("server.win.request.hit.us")),
      InFlightGauge(obs::Registry::global().gauge("server.inflight")),
      InFlightMaxGauge(obs::Registry::global().gauge("server.inflight.max")),
      QueueDepthGauge(obs::Registry::global().gauge("server.queue.depth")),
      SlowCounter(obs::Registry::global().counter("server.slow_requests")) {
  // Always-on telemetry: a server with no explicit obs configuration still
  // mints request ids, stamps spans, and feeds the live windows. Metrics
  // only — event buffering stays off so a long-lived server with no
  // exporter draining the trace buffers never accumulates events, and an
  // existing configuration (e.g. --trace-out) is left untouched.
  if (SOpts.Telemetry && !obs::enabled()) {
    obs::ObsConfig C = obs::config();
    C.Enabled = true;
    C.Events = false;
    obs::configure(C);
  }
  if (SOpts.MetricsFlushSec > 0) {
    obs::MetricsFlusher::Options FO;
    FO.Path = SOpts.MetricsFlushPath;
    FO.IntervalSec = SOpts.MetricsFlushSec;
    FO.MaxBytes = SOpts.MetricsFlushMaxBytes;
    Flusher.start(FO);
  }
}

CompileServer::~CompileServer() {
  // Stop the flusher before the pool (and everything it may observe) goes
  // away; stop() writes one final snapshot line.
  Flusher.stop();
}

ServerResponse CompileServer::serveCached(const CachedResult &Hit,
                                          const gma::GMA &G,
                                          const CanonicalGma &C,
                                          double Seconds) {
  CacheServes.fetch_add(1, std::memory_order_relaxed);
  ServerResponse R;
  R.Result = renameResult(Hit.Result, Hit.Canon, G, C);
  R.Source = ResultSource::CacheHit;
  R.Seconds = Seconds;
  return R;
}

ServerResponse CompileServer::compileGma(const gma::GMA &G) {
  // Every request gets a process-unique id; all spans recorded under the
  // scope (parse happened earlier, but canonicalize, cache probes,
  // saturate, universe, search, encode run inside) are stamped with it, so
  // one request's full stage breakdown is extractable from a shared trace.
  const uint64_t Req = obs::nextRequestId();
  std::unique_ptr<obs::RequestTrace> Trace;
  if (SOpts.SlowMs > 0 && obs::enabled())
    Trace = std::make_unique<obs::RequestTrace>();
  const int64_t Running = InFlight.fetch_add(1, std::memory_order_relaxed) + 1;
  InFlightGauge.set(Running);
  InFlightMaxGauge.noteMax(Running);
  ServerResponse R;
  {
    obs::RequestScope Scope(Req, Trace.get());
    R = compileGmaTiered(G, Req);
  }
  InFlightGauge.set(InFlight.fetch_sub(1, std::memory_order_relaxed) - 1);
  noteRequestDone(R, Req, Trace.get());
  return R;
}

void CompileServer::noteRequestDone(const ServerResponse &R, uint64_t Req,
                                    obs::RequestTrace *Trace) {
  if (!SOpts.Telemetry && !obs::enabled())
    return;
  const uint64_t Us = static_cast<uint64_t>(R.Seconds * 1e6);
  WinAll.record(Us);
  switch (R.Source) {
  case ResultSource::Cold:
    WinCold.record(Us);
    break;
  case ResultSource::WarmGraph:
    WinWarm.record(Us);
    break;
  case ResultSource::CacheHit:
    WinHit.record(Us);
    break;
  }
  if (SOpts.SlowMs > 0 && R.Seconds * 1e3 >= SOpts.SlowMs) {
    SlowRequests.fetch_add(1, std::memory_order_relaxed);
    SlowCounter.add();
    obs::logf(0, "slow request #%llu '%s': %.3f ms (source %s)",
              static_cast<unsigned long long>(Req),
              R.Result.Gma.Name.c_str(), R.Seconds * 1e3,
              resultSourceName(R.Source));
    // The span tree can be arbitrarily long; bypass logf's bounded buffer.
    if (Trace)
      std::fputs(Trace->spanTreeText().c_str(), stderr);
  }
}

ServerResponse CompileServer::compileGmaTiered(const gma::GMA &G,
                                               uint64_t Req) {
  obs::ObsSpan Span("server.request");
  if (Span.active())
    Span.arg("name", G.Name.c_str())
        .arg("req", Req)
        .arg("machine", SOpts.Pipeline.MachineName.c_str());
  Timer T;
  Requests.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("server.requests").add();

  // Canonicalization is a pure read on the shared Context; no lock.
  CanonicalGma C = canonicalizeGma(Opt.context(), G);
  const driver::Options &DOpts =
      static_cast<const driver::Superoptimizer &>(Opt).options();
  Key128 RKey = makeKey(C.Text, resultFingerprint(DOpts));

  // Tier 1: result cache.
  if (std::shared_ptr<const CachedResult> Hit = Results.get(RKey, C.Text)) {
    ServerResponse R = serveCached(*Hit, G, C, 0);
    R.Seconds = T.seconds();
    if (Span.active())
      Span.arg("source", "hit");
    return R;
  }

  // Tier 2: warm saturated graph. The shared_ptr we hold keeps the graph
  // alive even if the memo evicts the entry mid-compile.
  Key128 GKey = makeKey(C.Text, matchFingerprint(DOpts));
  if (std::shared_ptr<const CachedGraph> Warm = Graphs.get(GKey, C.Text)) {
    WarmCompiles.fetch_add(1, std::memory_order_relaxed);
    driver::GmaResult R = Opt.compileSaturated(Warm->Saturated, G);
    // Cache in the *producer's* name space, with the producer's renaming,
    // so later hits compose names exactly like this one did.
    Results.put(RKey, C.Text,
                std::make_shared<CachedResult>(CachedResult{R, Warm->Canon}),
                approxResultBytes(R, Warm->Canon));
    ServerResponse Out;
    Out.Result = renameResult(R, Warm->Canon, G, C);
    Out.Source = ResultSource::WarmGraph;
    Out.Seconds = T.seconds();
    if (Span.active())
      Span.arg("source", "warm");
    return Out;
  }

  // Tier 3: cold compile; populate both tiers.
  ColdCompiles.fetch_add(1, std::memory_order_relaxed);
  driver::SaturatedGma S = Opt.saturateGMA(G);
  driver::GmaResult R = Opt.compileSaturated(S, G);
  if (S.ok())
    Graphs.put(GKey, C.Text,
               std::make_shared<CachedGraph>(CachedGraph{std::move(S), C}),
               1);
  Results.put(RKey, C.Text,
              std::make_shared<CachedResult>(CachedResult{R, C}),
              approxResultBytes(R, C));
  ServerResponse Out;
  Out.Result = std::move(R);
  Out.Source = ResultSource::Cold;
  Out.Seconds = T.seconds();
  if (Span.active())
    Span.arg("source", "cold");
  return Out;
}

ServerResponse CompileServer::compileText(const std::string &Text) {
  gma::GMA G;
  {
    std::lock_guard<std::mutex> Lock(FrontEndMu);
    std::string Err;
    std::optional<gma::GMA> Parsed =
        verify::parseGma(Opt.context(), Text, &Err);
    if (!Parsed) {
      Requests.fetch_add(1, std::memory_order_relaxed);
      ParseErrors.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("server.parse_errors").add();
      ServerResponse R;
      R.Result.Error = "parse: " + Err;
      return R;
    }
    G = std::move(*Parsed);
  }
  return compileGma(G);
}

std::vector<ServerResponse>
CompileServer::compileBulk(const std::vector<std::string> &Texts) {
  obs::ObsSpan Span("server.bulk");
  if (Span.active())
    Span.arg("requests", static_cast<uint64_t>(Texts.size()));

  struct Parsed {
    bool Ok = false;
    gma::GMA G;
    std::string Err;
  };
  std::vector<Parsed> Reqs(Texts.size());
  {
    // One lock acquisition for the whole batch: interning dominates the
    // front-end cost and contends with nothing while we hold it.
    std::lock_guard<std::mutex> Lock(FrontEndMu);
    for (size_t I = 0; I < Texts.size(); ++I) {
      std::string Err;
      std::optional<gma::GMA> G =
          verify::parseGma(Opt.context(), Texts[I], &Err);
      if (G) {
        Reqs[I].Ok = true;
        Reqs[I].G = std::move(*G);
      } else {
        Reqs[I].Err = std::move(Err);
      }
    }
  }

  // Group same-skeleton requests so each canonical goal skeleton is
  // saturated once: the group's first request (the leader) compiles and
  // fills the tiers, followers are then served warm/from cache. With
  // caching off every member compiles cold — the pre-server behavior.
  std::unordered_map<std::string, std::vector<size_t>> Groups;
  std::vector<std::string> GroupOrder;
  for (size_t I = 0; I < Reqs.size(); ++I) {
    if (!Reqs[I].Ok)
      continue;
    std::string Key = canonicalizeGma(Opt.context(), Reqs[I].G).Text;
    auto [It, Fresh] = Groups.emplace(std::move(Key), std::vector<size_t>());
    if (Fresh)
      GroupOrder.push_back(It->first);
    It->second.push_back(I);
  }
  if (Span.active())
    Span.arg("groups", static_cast<uint64_t>(GroupOrder.size()));

  std::vector<ServerResponse> Responses(Texts.size());
  std::vector<std::future<void>> Futures;
  Futures.reserve(GroupOrder.size());
  for (const std::string &Key : GroupOrder) {
    const std::vector<size_t> &Members = Groups[Key];
    Futures.push_back(Pool.submit([this, &Reqs, &Responses, Members]() {
      for (size_t I : Members)
        Responses[I] = compileGma(Reqs[I].G);
    }));
  }
  for (std::future<void> &F : Futures)
    F.get();
  for (size_t I = 0; I < Reqs.size(); ++I)
    if (!Reqs[I].Ok) {
      Requests.fetch_add(1, std::memory_order_relaxed);
      ParseErrors.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("server.parse_errors").add();
      Responses[I].Result.Error = "parse: " + Reqs[I].Err;
    }
  return Responses;
}

namespace {

std::string formatResponse(const ServerResponse &R, bool PrintProgram) {
  if (!R.Result.Error.empty())
    return "(error \"" + obs::jsonEscape(R.Result.Error) + "\")";
  std::string Name =
      R.Result.Gma.Name.empty() ? std::string("unnamed") : R.Result.Gma.Name;
  std::string Line =
      strFormat("(ok %s :cycles %u :source %s :seconds %.6f", Name.c_str(),
                R.Result.Search.Cycles, resultSourceName(R.Source),
                R.Seconds);
  if (PrintProgram)
    Line +=
        " :program \"" + obs::jsonEscape(R.Result.Search.Program.toString()) +
        "\"";
  return Line + ")";
}

/// Paren balance of \p Line, for accumulating multi-line forms. The wire
/// syntax has no string atoms on the request side, so raw counting works.
int parenDelta(const std::string &Line) {
  int D = 0;
  for (char C : Line) {
    if (C == '(')
      ++D;
    else if (C == ')')
      --D;
    else if (C == ';')
      break; // Comment to end of line.
  }
  return D;
}

bool isForm(const std::string &Buf, const char *Verb) {
  size_t I = Buf.find_first_not_of(" \t\r\n");
  if (I == std::string::npos || Buf[I] != '(')
    return false;
  I = Buf.find_first_not_of(" \t", I + 1);
  size_t E = I;
  while (E < Buf.size() && Buf[E] != ' ' && Buf[E] != ')' && Buf[E] != '\n')
    ++E;
  return Buf.compare(I, E - I, Verb) == 0;
}

} // namespace

int CompileServer::serve(std::istream &In, std::ostream &Out) {
  int Failures = 0;
  std::deque<std::future<std::string>> Pending;
  auto Flush = [&](bool All) {
    while (!Pending.empty()) {
      if (!All &&
          Pending.size() <= static_cast<size_t>(SOpts.Threads) * 4 &&
          Pending.front().wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready)
        break;
      std::string Line = Pending.front().get();
      Pending.pop_front();
      if (Line.compare(0, 6, "(error") == 0)
        ++Failures;
      Out << Line << "\n" << std::flush;
    }
    QueueDepthGauge.set(static_cast<int64_t>(Pending.size()));
  };

  std::string Buf, Line;
  int Depth = 0;
  bool Quit = false;
  while (!Quit && std::getline(In, Line)) {
    if (Buf.empty() && Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    if (!Buf.empty())
      Buf += "\n";
    Buf += Line;
    Depth += parenDelta(Line);
    if (Depth > 0)
      continue; // Form still open; keep accumulating.
    Depth = 0;
    std::string Form;
    Form.swap(Buf);
    if (isForm(Form, "quit")) {
      Quit = true;
    } else if (isForm(Form, "stats")) {
      // Keep strict request ordering: drain compiles first.
      Flush(true);
      Out << statsText() << "\n" << std::flush;
    } else if (isForm(Form, "stats-full")) {
      Flush(true);
      Out << statsFullText() << "\n" << std::flush;
    } else {
      bool PrintProgram = SOpts.PrintPrograms;
      Pending.push_back(
          Pool.submit([this, Text = std::move(Form), PrintProgram]() {
            return formatResponse(compileText(Text), PrintProgram);
          }));
    }
    QueueDepthGauge.set(static_cast<int64_t>(Pending.size()));
    Flush(false);
  }
  Flush(true);
  return Failures;
}

ServerStats CompileServer::stats() const {
  ServerStats St;
  St.Requests = Requests.load(std::memory_order_relaxed);
  St.ParseErrors = ParseErrors.load(std::memory_order_relaxed);
  St.ColdCompiles = ColdCompiles.load(std::memory_order_relaxed);
  St.WarmCompiles = WarmCompiles.load(std::memory_order_relaxed);
  St.CacheServes = CacheServes.load(std::memory_order_relaxed);
  St.SlowRequests = SlowRequests.load(std::memory_order_relaxed);
  St.InFlight = InFlight.load(std::memory_order_relaxed);
  St.ResultCache = Results.stats();
  St.GraphMemo = Graphs.stats();
  return St;
}

std::string CompileServer::statsText() const {
  ServerStats St = stats();
  return strFormat(
      "(stats :requests %llu :parse-errors %llu :cold %llu :warm %llu "
      ":hits %llu :cache-entries %zu :cache-bytes %zu :cache-evictions %llu "
      ":memo-entries %zu :memo-evictions %llu)",
      (unsigned long long)St.Requests, (unsigned long long)St.ParseErrors,
      (unsigned long long)St.ColdCompiles,
      (unsigned long long)St.WarmCompiles,
      (unsigned long long)St.CacheServes, St.ResultCache.Entries,
      St.ResultCache.Bytes, (unsigned long long)St.ResultCache.Evictions,
      St.GraphMemo.Entries, (unsigned long long)St.GraphMemo.Evictions);
}

std::string CompileServer::statsFullText() const {
  ServerStats St = stats();
  auto Lat = [](const char *Key, const obs::WindowedHistogram &W) {
    obs::WindowedHistogram::Snapshot S = W.snapshot();
    return strFormat(
        " (lat %s :count %llu :p50-us %llu :p90-us %llu :p99-us %llu "
        ":max-us %llu)",
        Key, (unsigned long long)S.Count,
        (unsigned long long)S.percentile(0.50),
        (unsigned long long)S.percentile(0.90),
        (unsigned long long)S.percentile(0.99), (unsigned long long)S.Max);
  };
  std::string Out = strFormat(
      "(stats-full :requests %llu :parse-errors %llu :cold %llu :warm %llu "
      ":hits %llu :slow %llu :inflight %lld :queue-depth %lld "
      ":cache-entries %zu :cache-bytes %zu :memo-entries %zu :window-s %.0f",
      (unsigned long long)St.Requests, (unsigned long long)St.ParseErrors,
      (unsigned long long)St.ColdCompiles,
      (unsigned long long)St.WarmCompiles,
      (unsigned long long)St.CacheServes,
      (unsigned long long)St.SlowRequests, (long long)St.InFlight,
      (long long)QueueDepthGauge.get(), St.ResultCache.Entries,
      St.ResultCache.Bytes, St.GraphMemo.Entries,
      static_cast<double>(WinAll.windowNs()) / 1e9);
  Out += Lat("all", WinAll);
  Out += Lat("cold", WinCold);
  Out += Lat("warm", WinWarm);
  Out += Lat("hit", WinHit);
  // Top-5 axioms by accumulated self-time, from the saturation profiler's
  // live match.axiom.<id>.* counter family (empty until a cold compile
  // has saturated something). Self-time = match + instantiate.
  struct AxiomRow {
    std::string Id;
    uint64_t SelfUs = 0, Raw = 0, Instances = 0;
  };
  std::map<std::string, AxiomRow> ByAxiom;
  const std::string Prefix = "match.axiom.";
  for (const auto &[Name, Value] :
       obs::Registry::global().countersWithPrefix(Prefix)) {
    size_t LeafDot = Name.rfind('.');
    if (LeafDot == std::string::npos || LeafDot <= Prefix.size())
      continue;
    std::string Id = Name.substr(Prefix.size(), LeafDot - Prefix.size());
    std::string Leaf = Name.substr(LeafDot + 1);
    AxiomRow &Row = ByAxiom[Id];
    Row.Id = Id;
    if (Leaf == "match_us" || Leaf == "inst_us")
      Row.SelfUs += Value;
    else if (Leaf == "raw")
      Row.Raw = Value;
    else if (Leaf == "instances")
      Row.Instances = Value;
  }
  std::vector<AxiomRow> Rows;
  Rows.reserve(ByAxiom.size());
  for (auto &[Id, Row] : ByAxiom)
    Rows.push_back(std::move(Row));
  std::sort(Rows.begin(), Rows.end(),
            [](const AxiomRow &A, const AxiomRow &B) {
              if (A.SelfUs != B.SelfUs)
                return A.SelfUs > B.SelfUs;
              return A.Id < B.Id;
            });
  if (Rows.size() > 5)
    Rows.resize(5);
  for (const AxiomRow &Row : Rows)
    Out += strFormat(
        " (axiom \"%s\" :self-us %llu :raw %llu :instances %llu)",
        Row.Id.c_str(), (unsigned long long)Row.SelfUs,
        (unsigned long long)Row.Raw, (unsigned long long)Row.Instances);
  return Out + ")";
}
