//===- machine/RV64.cpp ---------------------------------------------------===//

#include "machine/RV64.h"

#include "support/StringExtras.h"

using namespace denali;
using namespace denali::machine;
using denali::ir::Builtin;

namespace {

constexpr uint32_t MaskP0 = 1u << 0;
constexpr uint32_t MaskP1 = 1u << 1;
constexpr uint32_t MaskBoth = MaskP0 | MaskP1;

constexpr int64_t IMin = -2048; ///< 12-bit signed I-type immediate.
constexpr int64_t IMax = 2047;

} // namespace

RV64Model::RV64Model(ir::Context &Ctx) {
  // A dual-issue in-order core: two ALU pipes in one cluster; the memory
  // unit shares P0, the multiplier shares P1.
  addUnit("P0", 0);
  addUnit("P1", 0);
  IssueWidth = 2;
  HitLatency = 2;
  MaxDisp = IMax; // 12-bit signed load/store displacement.

  struct Row {
    Builtin B;
    const char *Mnemonic;
    uint32_t UnitMask;
    unsigned Latency;
    MemKind Mem;
    bool Imm;
    int64_t ImmMin, ImmMax;
  };
  const Row Rows[] = {
      {Builtin::Add64, "add", MaskBoth, 1, MemKind::None, true, IMin, IMax},
      {Builtin::Sub64, "sub", MaskBoth, 1, MemKind::None, false, 0, 0},
      // Standard pseudo-instructions: neg rd,rs = sub rd,x0,rs and
      // not rd,rs = xori rd,rs,-1.
      {Builtin::Neg64, "neg", MaskBoth, 1, MemKind::None, false, 0, 0},
      {Builtin::Not64, "not", MaskBoth, 1, MemKind::None, false, 0, 0},
      {Builtin::Mul64, "mul", MaskP1, 3, MemKind::None, false, 0, 0},
      {Builtin::Umulh, "mulhu", MaskP1, 3, MemKind::None, false, 0, 0},
      {Builtin::And64, "and", MaskBoth, 1, MemKind::None, true, IMin, IMax},
      {Builtin::Or64, "or", MaskBoth, 1, MemKind::None, true, IMin, IMax},
      {Builtin::Xor64, "xor", MaskBoth, 1, MemKind::None, true, IMin, IMax},
      {Builtin::Shl64, "sll", MaskBoth, 1, MemKind::None, true, 0, 63},
      {Builtin::Shr64, "srl", MaskBoth, 1, MemKind::None, true, 0, 63},
      {Builtin::Sar64, "sra", MaskBoth, 1, MemKind::None, true, 0, 63},
      {Builtin::CmpUlt, "sltu", MaskBoth, 1, MemKind::None, true, IMin, IMax},
      {Builtin::CmpLt, "slt", MaskBoth, 1, MemKind::None, true, IMin, IMax},
      // No RV64I single instruction for cmpeq/cmpule/cmple, andn/orn/xnor
      // (Zbb), byte inserts/extracts, zapnot, scaled add/sub, or cmov: the
      // saturated e-graph must offer a core-RV64I alternative.
      {Builtin::Select, "ld", MaskP0, 2, MemKind::Load, false, 0, 0},
      {Builtin::Store, "sd", MaskP0, 1, MemKind::Store, false, 0, 0},
  };
  for (const Row &R : Rows) {
    InstrDesc D;
    D.Op = Ctx.Ops.builtin(R.B);
    D.Mnemonic = R.Mnemonic;
    D.UnitMask = R.UnitMask;
    D.Latency = R.Latency;
    D.Mem = R.Mem;
    D.AllowsImm = R.Imm;
    D.ImmMin = R.ImmMin;
    D.ImmMax = R.ImmMax;
    addInstr(std::move(D));
  }

  InstrDesc Li;
  Li.Op = Ctx.Ops.builtin(Builtin::Const);
  Li.Mnemonic = "li";
  Li.UnitMask = MaskBoth;
  Li.Latency = 1;
  Li.AllowsImm = false;
  setConstMaterialize(std::move(Li));
}

std::string RV64Model::argRegName(unsigned Index) const {
  // Arguments in a0..a7; spilling past the ABI argument registers is not
  // modeled (GMAs have few inputs).
  return strFormat("a%u", Index);
}

std::string RV64Model::tempRegName(unsigned Index) const {
  // Temporaries t0, t1, ... — the prototype ignores register allocation
  // (like the paper's), so the sequence is unbounded.
  return strFormat("t%u", Index);
}

std::string RV64Model::memRegName(unsigned Index) const {
  return strFormat("M%u", Index);
}

void denali::machine::registerRV64Machine() {
  registerMachine("rv64", [](ir::Context &Ctx) {
    return std::unique_ptr<MachineModel>(new RV64Model(Ctx));
  });
}
