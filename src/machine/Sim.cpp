//===- machine/Sim.cpp ----------------------------------------------------===//

#include "machine/Sim.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <array>
#include <map>

using namespace denali;
using namespace denali::machine;

const char *denali::machine::trapKindName(Trap::Kind K) {
  switch (K) {
  case Trap::Kind::UninitializedRead:
    return "uninitialized-read";
  case Trap::Kind::OutOfBounds:
    return "out-of-bounds";
  case Trap::Kind::KindMismatch:
    return "kind-mismatch";
  case Trap::Kind::DoubleWrite:
    return "double-write";
  case Trap::Kind::Stuck:
    return "stuck";
  }
  return "unknown";
}

std::string Trap::toString() const {
  // Location suffix: which backend's simulator trapped, on which
  // instruction — this is what makes cross-backend disagreement reports
  // actionable.
  std::string Where;
  if (!Machine.empty() || InstrIndex >= 0) {
    Where = " [";
    if (!Machine.empty())
      Where += Machine;
    if (InstrIndex >= 0)
      Where += strFormat("%sinstr #%d", Machine.empty() ? "" : " ",
                         InstrIndex);
    Where += "]";
  }
  switch (TheKind) {
  case Kind::UninitializedRead:
    return strFormat("trap[%s]: v%u read by '%s' but never written%s",
                     trapKindName(TheKind), Reg, Mnemonic.c_str(),
                     Where.c_str());
  case Kind::OutOfBounds:
    return strFormat("trap[%s]: '%s' accesses address 0x%llx beyond the "
                     "address limit%s",
                     trapKindName(TheKind), Mnemonic.c_str(),
                     static_cast<unsigned long long>(Addr), Where.c_str());
  case Kind::KindMismatch:
    return strFormat("trap[%s]: '%s' applied to operands of the wrong kind%s",
                     trapKindName(TheKind), Mnemonic.c_str(), Where.c_str());
  case Kind::DoubleWrite:
    return strFormat("trap[%s]: register v%u written twice (by '%s')%s",
                     trapKindName(TheKind), Reg, Mnemonic.c_str(),
                     Where.c_str());
  case Kind::Stuck:
    return strFormat("trap[%s]: dataflow cycle, instructions never became "
                     "ready%s", trapKindName(TheKind), Where.c_str());
  }
  return "trap[unknown]";
}

namespace {

/// Computes the dataflow value of every register (inputs + instruction
/// results). Returns false with \p Error set on failure; classified
/// failures also set \p TrapOut (when non-null).
bool computeRegValues(const ir::Context &Ctx, const Program &P,
                      const std::unordered_map<std::string, ir::Value> &Inputs,
                      const RunOptions &Opts,
                      std::unordered_map<uint32_t, ir::Value> &Regs,
                      std::string &Error, std::optional<Trap> *TrapOut);

} // namespace

RunResult denali::machine::runProgram(
    const ir::Context &Ctx, const Program &P,
    const std::unordered_map<std::string, ir::Value> &Inputs,
    const RunOptions &Opts) {
  RunResult Result;
  std::unordered_map<uint32_t, ir::Value> Regs;
  if (!computeRegValues(Ctx, P, Inputs, Opts, Regs, Result.Error,
                        &Result.TheTrap))
    return Result;

  for (const auto &[Name, VReg] : P.Outputs) {
    auto It = Regs.find(VReg);
    if (It == Regs.end()) {
      Result.Error = strFormat("output '%s' (v%u) never written",
                               Name.c_str(), VReg);
      return Result;
    }
    Result.Outputs.emplace(Name, It->second);
  }
  Result.Ok = true;
  return Result;
}

namespace {

bool computeRegValues(const ir::Context &Ctx, const Program &P,
                      const std::unordered_map<std::string, ir::Value> &Inputs,
                      const RunOptions &Opts,
                      std::unordered_map<uint32_t, ir::Value> &Regs,
                      std::string &Error, std::optional<Trap> *TrapOut) {
  const Instruction *FirstInstr = P.Instrs.data();
  auto MakeTrap = [](Trap::Kind K, uint32_t Reg, uint64_t Addr,
                     const std::string &Mnemonic) {
    Trap T;
    T.TheKind = K;
    T.Reg = Reg;
    T.Addr = Addr;
    T.Mnemonic = Mnemonic;
    return T;
  };
  auto RaiseTrap = [&](Trap T, const Instruction *At) {
    T.Machine = P.Model ? P.Model->name() : "";
    if (At)
      T.InstrIndex = static_cast<int32_t>(At - FirstInstr);
    Error = T.toString();
    if (TrapOut)
      *TrapOut = std::move(T);
    return false;
  };
  for (const ProgramInput &In : P.Inputs) {
    auto It = Inputs.find(In.Name);
    if (It == Inputs.end()) {
      Error = strFormat("missing input '%s'", In.Name.c_str());
      return false;
    }
    Regs.emplace(In.Reg, It->second);
  }

  // Writer set for trap classification: a register with no writer at all is
  // an uninitialized read; a register whose writer simply has not executed
  // yet participates in a dataflow cycle.
  std::unordered_map<uint32_t, unsigned> Writers;
  for (const ProgramInput &In : P.Inputs)
    ++Writers[In.Reg];
  for (const Instruction &I : P.Instrs)
    ++Writers[I.Dest];

  // Execute in dependency order: repeat sweeps until all writes land (a
  // valid program is acyclic, so this terminates in <= N sweeps; schedule
  // order is usually already topological, making one sweep typical).
  std::vector<const Instruction *> PendingInstrs;
  for (const Instruction &I : P.Instrs)
    PendingInstrs.push_back(&I);
  size_t LastPending = PendingInstrs.size() + 1;
  while (!PendingInstrs.empty() && PendingInstrs.size() < LastPending) {
    LastPending = PendingInstrs.size();
    std::vector<const Instruction *> Next;
    for (const Instruction *I : PendingInstrs) {
      std::vector<ir::Value> Args;
      bool Ready = true;
      for (const Operand &S : I->Srcs) {
        if (!S.isReg()) {
          Args.push_back(ir::Value::makeInt(S.Imm));
          continue;
        }
        auto It = Regs.find(S.Reg);
        if (It == Regs.end()) {
          Ready = false;
          break;
        }
        Args.push_back(It->second);
      }
      if (!Ready) {
        Next.push_back(I);
        continue;
      }
      const ir::OpInfo &Info = Ctx.Ops.info(I->Op);
      std::optional<ir::Value> V;
      if (I->Mem == MemKind::Load || I->Mem == MemKind::Store) {
        bool IsLoad = I->Mem == MemKind::Load;
        size_t WantArgs = IsLoad ? 2 : 3;
        if (Args.size() != WantArgs || !Args[0].isArray() ||
            !Args[1].isInt() || (!IsLoad && !Args[2].isInt()))
          return RaiseTrap(
              MakeTrap(Trap::Kind::KindMismatch, I->Dest, 0, I->Mnemonic), I);
        uint64_t Addr = Args[1].asInt() + static_cast<uint64_t>(I->Disp);
        if (Opts.AddressLimit && Addr >= *Opts.AddressLimit)
          return RaiseTrap(
              MakeTrap(Trap::Kind::OutOfBounds, I->Dest, Addr, I->Mnemonic),
              I);
        V = IsLoad ? ir::Value::makeInt(Args[0].select(Addr))
                   : Args[0].store(Addr, Args[2].asInt());
      } else if (Info.BuiltinOp == ir::Builtin::Const) {
        // Constant materialization: forward the immediate.
        if (Args.size() != 1 || !Args[0].isInt())
          return RaiseTrap(
              MakeTrap(Trap::Kind::KindMismatch, I->Dest, 0, I->Mnemonic), I);
        V = Args[0];
      } else if (Info.Kind == ir::OpKind::Builtin) {
        V = ir::evalBuiltin(Info.BuiltinOp, Args);
      }
      if (!V)
        return RaiseTrap(
            MakeTrap(Trap::Kind::KindMismatch, I->Dest, 0, I->Mnemonic), I);
      if (Regs.count(I->Dest))
        return RaiseTrap(
            MakeTrap(Trap::Kind::DoubleWrite, I->Dest, 0, I->Mnemonic), I);
      Regs.emplace(I->Dest, std::move(*V));
    }
    PendingInstrs = std::move(Next);
  }
  if (!PendingInstrs.empty()) {
    // Classify: a pending instruction reading a register nobody writes is
    // an uninitialized read; otherwise the writers form a cycle.
    for (const Instruction *I : PendingInstrs)
      for (const Operand &S : I->Srcs)
        if (S.isReg() && !Writers.count(S.Reg))
          return RaiseTrap(
              MakeTrap(Trap::Kind::UninitializedRead, S.Reg, 0, I->Mnemonic),
              I);
    return RaiseTrap(MakeTrap(Trap::Kind::Stuck, 0, 0,
                              PendingInstrs.front()->Mnemonic),
                     PendingInstrs.front());
  }
  return true;
}

} // namespace

std::optional<std::string> denali::machine::validateMemoryDiscipline(
    const ir::Context &Ctx, const Program &P,
    const std::unordered_map<std::string, ir::Value> &Inputs) {
  // Dataflow ("promised") values per register.
  std::unordered_map<uint32_t, ir::Value> Regs;
  std::string Error;
  if (!computeRegValues(Ctx, P, Inputs, RunOptions(), Regs, Error, nullptr))
    return Error;

  // The machine's one real memory: the (sole) memory input's contents.
  std::optional<ir::Value> SharedMem;
  for (const ProgramInput &In : P.Inputs) {
    if (!In.IsMemory)
      continue;
    if (SharedMem)
      return std::string("multiple memory inputs; replay supports one");
    auto It = Inputs.find(In.Name);
    if (It == Inputs.end())
      return strFormat("missing memory input '%s'", In.Name.c_str());
    SharedMem = It->second;
  }
  if (!SharedMem)
    return std::nullopt; // No memory: nothing to check.

  // Replay in schedule order. Within one cycle, loads read the memory
  // state from before the cycle's stores (loads read early, stores write
  // at the end of the cycle).
  std::vector<const Instruction *> Sorted;
  for (const Instruction &I : P.Instrs)
    if (I.Mem != MemKind::None)
      Sorted.push_back(&I);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Instruction *A, const Instruction *B) {
                     if (A->Cycle != B->Cycle)
                       return A->Cycle < B->Cycle;
                     // Loads before stores within a cycle.
                     return (A->Mem == MemKind::Load) >
                            (B->Mem == MemKind::Load);
                   });
  for (const Instruction *I : Sorted) {
    auto RegVal = [&](const Operand &S) -> ir::Value {
      return S.isReg() ? Regs.at(S.Reg) : ir::Value::makeInt(S.Imm);
    };
    uint64_t Addr =
        RegVal(I->Srcs[1]).asInt() + static_cast<uint64_t>(I->Disp);
    if (I->Mem == MemKind::Load) {
      uint64_t Observed = SharedMem->select(Addr);
      uint64_t Promised = Regs.at(I->Dest).asInt();
      if (Observed != Promised)
        return strFormat(
            "load at cycle %u from address 0x%llx reads 0x%llx from real "
            "memory but the dataflow semantics promised 0x%llx",
            I->Cycle, static_cast<unsigned long long>(Addr),
            static_cast<unsigned long long>(Observed),
            static_cast<unsigned long long>(Promised));
    } else {
      SharedMem = SharedMem->store(Addr, RegVal(I->Srcs[2]).asInt());
    }
  }

  // The final real memory must match every memory output's dataflow value.
  for (const auto &[Name, VReg] : P.Outputs) {
    auto It = Regs.find(VReg);
    if (It == Regs.end() || !It->second.isArray())
      continue;
    if (!It->second.equals(*SharedMem))
      return strFormat("final real memory differs from the promised memory "
                       "value of output '%s'", Name.c_str());
  }
  return std::nullopt;
}

TimingReport denali::machine::validateTiming(const MachineModel &M,
                                             const Program &P) {
  TimingReport Report;
  const unsigned NC = M.numClusters();

  // Inputs are ready at cycle 0 on every cluster.
  // ReadyAt[vreg][cluster] = first cycle at whose *start* the value is
  // usable on that cluster.
  std::unordered_map<uint32_t, std::array<unsigned, MaxClusters>> ReadyAt;
  for (const ProgramInput &In : P.Inputs)
    ReadyAt[In.Reg] = {};

  // Issue-slot occupancy.
  std::map<std::pair<unsigned, unsigned>, const Instruction *> Slots;

  // First pass: occupancy, unit legality, producer completion times.
  for (const Instruction &I : P.Instrs) {
    const InstrDesc *D = I.Op == M.constMaterialize().Op
                             ? &M.constMaterialize()
                             : M.descFor(I.Op);
    if (!D) {
      Report.Error = strFormat("'%s' is not a machine instruction",
                               I.Mnemonic.c_str());
      return Report;
    }
    unsigned UIdx = I.IssueUnit;
    if (UIdx >= M.numUnits()) {
      Report.Error = strFormat("'%s' issues on unit %u but '%s' has %u units",
                               I.Mnemonic.c_str(), UIdx, M.name().c_str(),
                               M.numUnits());
      return Report;
    }
    if (!(D->UnitMask & (1u << UIdx))) {
      Report.Error = strFormat("'%s' cannot issue on %s", I.Mnemonic.c_str(),
                               M.unitName(I.IssueUnit));
      return Report;
    }
    auto Key = std::make_pair(I.Cycle, UIdx);
    if (Slots.count(Key)) {
      Report.Error = strFormat("issue slot conflict at cycle %u on %s",
                               I.Cycle, M.unitName(I.IssueUnit));
      return Report;
    }
    Slots.emplace(Key, &I);

    unsigned OwnCluster = M.clusterOf(I.IssueUnit);
    unsigned Done = I.Cycle + I.Latency; // Usable at start of this cycle.
    auto &Entry = ReadyAt[I.Dest];
    for (unsigned C = 0; C < NC; ++C) {
      // Memory state (a store's "result") is shared between clusters.
      Entry[C] = (C == OwnCluster || I.Mem == MemKind::Store)
                     ? Done
                     : Done + M.crossClusterDelay();
    }
  }

  // Second pass: operand readiness.
  for (const Instruction &I : P.Instrs) {
    unsigned Cluster = M.clusterOf(I.IssueUnit);
    for (const Operand &S : I.Srcs) {
      if (!S.isReg())
        continue;
      auto It = ReadyAt.find(S.Reg);
      if (It == ReadyAt.end()) {
        Report.Error = strFormat("v%u read but never written", S.Reg);
        return Report;
      }
      if (It->second[Cluster] > I.Cycle) {
        Report.Error = strFormat(
            "operand v%u of '%s' (cycle %u, %s) ready only at cycle %u on "
            "cluster %u",
            S.Reg, I.Mnemonic.c_str(), I.Cycle, M.unitName(I.IssueUnit),
            It->second[Cluster], Cluster);
        return Report;
      }
    }
    unsigned Finish = I.Cycle + I.Latency;
    Report.Makespan = std::max(Report.Makespan, Finish);
    if (Finish > P.Cycles) {
      Report.Error = strFormat(
          "instruction finishing at cycle %u exceeds budget %u", Finish,
          P.Cycles);
      return Report;
    }
  }

  Report.Ok = true;
  return Report;
}
