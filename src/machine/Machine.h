//===- machine/Machine.h - Pluggable machine-model interface ----*- C++ -*-===//
///
/// \file
/// The architectural seam of the superoptimizer. The paper notes that
/// retargeting Denali (to the Itanium) mostly means new axioms plus a new
/// architectural description; `MachineModel` makes that description data
/// behind one interface:
///
///  * the **opcode table** — which IR operators one instruction computes,
///    with mnemonics, latencies and memory behaviour;
///  * the **slot topology** — functional units, their clusters, the issue
///    width, and the cross-cluster forwarding delay;
///  * **immediate forms** — which operand slot of which instruction may hold
///    a literal, and the literal range (Alpha: 8-bit ALU literals; RV64:
///    12-bit signed I-type immediates);
///  * **assembly naming** — how argument/temporary/memory registers print.
///
/// Backends register themselves by name (`registerMachine`); the driver
/// resolves `--machine=alpha|rv64` through `createMachine`. Registration is
/// explicit (no static initializers) so static-library linking cannot drop
/// a backend silently.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MACHINE_MACHINE_H
#define DENALI_MACHINE_MACHINE_H

#include "ir/Term.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace denali {
namespace machine {

/// A functional unit (issue slot) index. Unit 0..numUnits()-1.
using UnitId = uint8_t;

/// Upper bound on clusters across all backends — validators keep fixed-size
/// per-cluster arrays. A model declaring more clusters is rejected at
/// construction.
constexpr unsigned MaxClusters = 2;

/// Memory behaviour of an instruction.
enum class MemKind : uint8_t { None, Load, Store };

/// One functional unit of the target.
struct UnitDesc {
  std::string Name;     ///< Printed in schedule comments ("U0", "P1").
  unsigned Cluster = 0; ///< Register-bank cluster the unit belongs to.
};

/// One instruction of the target, tied to the operator it computes.
struct InstrDesc {
  ir::OpId Op = 0;
  std::string Mnemonic;
  uint32_t UnitMask = 0; ///< Bit u set => may issue on unit u.
  unsigned Latency = 1;
  MemKind Mem = MemKind::None;
  /// True if one source operand may be a literal (the model's immArgIndex
  /// names the slot, ImmMin/ImmMax the signed range).
  bool AllowsImm = true;
  int64_t ImmMin = 0;
  int64_t ImmMax = 255;
};

class Program;

/// The machine description consumed by the universe builder, the SAT
/// encoder, both simulators, the schedule validator, and the printer.
class MachineModel {
public:
  virtual ~MachineModel();

  /// Registry name of the backend ("alpha", "rv64").
  virtual std::string name() const = 0;

  // --- Slot topology -------------------------------------------------------
  const std::vector<UnitDesc> &units() const { return Units; }
  unsigned numUnits() const { return static_cast<unsigned>(Units.size()); }
  unsigned numClusters() const { return Clusters; }
  unsigned clusterOf(UnitId U) const { return Units[U].Cluster; }
  const char *unitName(UnitId U) const { return Units[U].Name.c_str(); }
  /// Instructions issued per cycle.
  unsigned issueWidth() const { return IssueWidth; }
  /// Extra cycles before a result is usable on another cluster.
  virtual unsigned crossClusterDelay() const { return 0; }

  // --- Opcode table --------------------------------------------------------
  /// \returns the instruction computing \p Op, or nullptr if \p Op is not a
  /// machine operation of this target.
  const InstrDesc *descFor(ir::OpId Op) const;
  /// The pseudo-instruction materializing a 64-bit constant into a register.
  const InstrDesc &constMaterialize() const { return ConstInstr; }
  /// All instruction descriptors (brute-force repertoire, documentation).
  const std::vector<InstrDesc> &allInstructions() const { return Table; }

  /// Cache-hit load latency.
  unsigned loadHitLatency() const { return HitLatency; }
  /// Latency for loads annotated \miss in the source program.
  unsigned loadMissLatency() const { return MissLatency; }
  void setLoadMissLatency(unsigned L) { MissLatency = L; }

  // --- Immediate forms -----------------------------------------------------
  /// The argument position at which \p D accepts a literal operand.
  virtual size_t immArgIndex(const InstrDesc &D, size_t Arity) const {
    (void)D;
    return Arity - 1;
  }
  /// True if the bit pattern \p V fits \p D's literal form.
  virtual bool immFits(const InstrDesc &D, uint64_t V) const {
    int64_t SV = static_cast<int64_t>(V);
    return SV >= D.ImmMin && SV <= D.ImmMax;
  }

  /// Largest positive displacement load/store address folding may absorb
  /// (the negative bound is -maxMemDisp()-1, matching two's complement).
  int64_t maxMemDisp() const { return MaxDisp; }

  // --- Assembly naming -----------------------------------------------------
  /// Physical name of the \p Index'th (non-memory) program argument.
  virtual std::string argRegName(unsigned Index) const;
  /// Physical name of the \p Index'th temporary (Index from 0).
  virtual std::string tempRegName(unsigned Index) const;
  /// Pseudo-name of the \p Index'th memory version register.
  virtual std::string memRegName(unsigned Index) const;

protected:
  /// Subclass constructors describe the target through these.
  void addUnit(std::string Name, unsigned Cluster);
  void addInstr(InstrDesc D);
  void setConstMaterialize(InstrDesc D) { ConstInstr = std::move(D); }

  unsigned Clusters = 1;
  unsigned IssueWidth = 1;
  unsigned HitLatency = 3;
  unsigned MissLatency = 13;
  int64_t MaxDisp = 32767;

private:
  std::vector<UnitDesc> Units;
  std::vector<InstrDesc> Table;
  std::unordered_map<ir::OpId, size_t> ByOp;
  InstrDesc ConstInstr;
};

// --- Backend registry ------------------------------------------------------

using MachineFactory =
    std::function<std::unique_ptr<MachineModel>(ir::Context &)>;

/// Registers (or replaces) the factory for backend \p Name. Thread-safe.
void registerMachine(const std::string &Name, MachineFactory F);

/// Instantiates the backend registered as \p Name, or nullptr (with
/// \p ErrorOut naming the known backends) if none is registered.
std::unique_ptr<MachineModel> createMachine(const std::string &Name,
                                            ir::Context &Ctx,
                                            std::string *ErrorOut = nullptr);

/// Names of all registered backends, sorted.
std::vector<std::string> registeredMachines();

} // namespace machine
} // namespace denali

#endif // DENALI_MACHINE_MACHINE_H
