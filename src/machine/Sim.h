//===- machine/Sim.h - Functional & timing simulation -----------*- C++ -*-===//
///
/// \file
/// The machine substrate the evaluation runs on (in place of the paper's
/// real 667 MHz EV6 box), generic over the MachineModel:
///
///  * the **functional simulator** executes a Program on a machine state
///    (input values per named input, arrays for memory) and reports the
///    final value of every output register — this is what the end-to-end
///    differential tests compare against the GMA's reference evaluation;
///  * the **timing validator** replays the schedule against the model's
///    unit / latency / cluster description and reports the first violation
///    (operand not ready, issue-slot conflict, illegal unit) or the
///    achieved makespan.
///
/// Traps carry the faulting machine's name and the trapping instruction's
/// index, so cross-backend disagreement reports say *which* backend
/// misbehaved and *where*.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MACHINE_SIM_H
#define DENALI_MACHINE_SIM_H

#include "ir/Eval.h"
#include "machine/Program.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace denali {
namespace machine {

/// A structured trap raised by the functional simulator. Unlike a bare
/// error string, a trap carries a machine-readable classification so the
/// differential-verification oracle (src/verify) can distinguish "the
/// generated program is garbage" (uninitialized read, double write) from
/// "the program computed an illegal access on this input" (out of bounds)
/// from harness bugs.
struct Trap {
  enum class Kind : uint8_t {
    UninitializedRead, ///< A source register with no writer (input or instr).
    OutOfBounds,       ///< Memory access at/above RunOptions::AddressLimit.
    KindMismatch,      ///< Array/int kind error (e.g. load from an integer).
    DoubleWrite,       ///< A virtual register assigned more than once.
    Stuck,             ///< Dataflow cycle: instructions never became ready.
  };
  Kind TheKind = Kind::Stuck;
  uint32_t Reg = 0;     ///< Offending register (UninitializedRead/DoubleWrite).
  uint64_t Addr = 0;    ///< Offending address (OutOfBounds).
  std::string Mnemonic; ///< Trapping instruction, when attributable.
  /// The backend the trapping program was scheduled for (Program::Model's
  /// name), or empty for model-less hand-built programs.
  std::string Machine;
  /// Index of the trapping instruction in Program::Instrs, or -1 when not
  /// attributable to one instruction (e.g. Stuck over a whole cycle).
  int32_t InstrIndex = -1;

  std::string toString() const;
};

const char *trapKindName(Trap::Kind K);

/// Knobs of a functional run.
struct RunOptions {
  /// If set, loads and stores whose effective address is >= this limit trap
  /// with Trap::Kind::OutOfBounds instead of reading the base generator.
  /// Unset preserves the arrays-as-values fiction (every address defined).
  std::optional<uint64_t> AddressLimit;
};

/// Result of a functional run.
struct RunResult {
  bool Ok = false;
  std::string Error;
  /// Set when the failure is a classified trap; Error repeats its rendering.
  std::optional<Trap> TheTrap;
  /// Final value per output name (from Program::Outputs).
  std::unordered_map<std::string, ir::Value> Outputs;
};

/// Executes \p P with the given input bindings (name -> value).
/// Instructions execute in dataflow order; each virtual register is
/// assigned once, so schedule order does not affect values.
RunResult runProgram(const ir::Context &Ctx, const Program &P,
                     const std::unordered_map<std::string, ir::Value> &Inputs,
                     const RunOptions &Opts = RunOptions());

/// Result of a timing validation.
struct TimingReport {
  bool Ok = false;
  std::string Error;       ///< First violation, if any.
  unsigned Makespan = 0;   ///< Cycles actually needed by the schedule.
};

/// Replays \p P's schedule against \p M: per-(cycle, unit) exclusivity,
/// unit legality per opcode, operand readiness including the cross-cluster
/// delay, and the declared cycle count.
TimingReport validateTiming(const MachineModel &M, const Program &P);

/// Replays \p P's memory operations in schedule order against one *shared*
/// memory (the machine's real memory, not the arrays-as-values fiction) and
/// checks that every load observes exactly the value the dataflow semantics
/// promised. This catches discipline bugs — a load scheduled after a store
/// that may alias it, or a speculative store that corrupts memory — which
/// the purely functional simulator cannot see. \returns an error
/// description, or std::nullopt if the schedule is memory-sound on this
/// input.
std::optional<std::string> validateMemoryDiscipline(
    const ir::Context &Ctx, const Program &P,
    const std::unordered_map<std::string, ir::Value> &Inputs);

} // namespace machine
} // namespace denali

#endif // DENALI_MACHINE_SIM_H
