//===- machine/RV64.h - RISC-V RV64 machine model ---------------*- C++ -*-===//
///
/// \file
/// A second backend behind the MachineModel seam: a small RV64I(+M) subset
/// covering the same integer/logical/shift/memory core the Alpha model
/// exposes. Deliberately asymmetric with the Alpha so cross-backend
/// differential runs are interesting:
///
///  * dual issue, one cluster, two symmetric ALU pipes P0/P1;
///  * multiplies (M extension) only on P1, latency 3;
///  * loads/stores only on P0; ld hits in 2 cycles;
///  * 12-bit signed I-type immediates (Alpha: 8-bit unsigned literals) and
///    6-bit shift amounts; ±2 KiB load/store displacements;
///  * no single-instruction andn/orn/xnor (Zbb), byte inserts/extracts,
///    scaled adds, or conditional moves — the e-graph must rewrite into
///    the RV64I core, or compilation honestly fails.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MACHINE_RV64_H
#define DENALI_MACHINE_RV64_H

#include "machine/Machine.h"

namespace denali {
namespace machine {

class RV64Model : public MachineModel {
public:
  explicit RV64Model(ir::Context &Ctx);

  std::string name() const override { return "rv64"; }

  std::string argRegName(unsigned Index) const override;
  std::string tempRegName(unsigned Index) const override;
  std::string memRegName(unsigned Index) const override;
};

/// Registers the "rv64" backend. Idempotent; call before createMachine.
void registerRV64Machine();

} // namespace machine
} // namespace denali

#endif // DENALI_MACHINE_RV64_H
