//===- machine/Machine.cpp ------------------------------------------------===//

#include "machine/Machine.h"

#include "support/Error.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <mutex>

using namespace denali;
using namespace denali::machine;

MachineModel::~MachineModel() = default;

void MachineModel::addUnit(std::string Name, unsigned Cluster) {
  if (Cluster >= MaxClusters)
    reportFatalError(strFormat("machine unit '%s' names cluster %u but "
                               "MaxClusters is %u",
                               Name.c_str(), Cluster, MaxClusters));
  if (Units.size() >= 32)
    reportFatalError("machine models support at most 32 units (UnitMask)");
  if (Cluster >= Clusters)
    Clusters = Cluster + 1;
  Units.push_back(UnitDesc{std::move(Name), Cluster});
}

void MachineModel::addInstr(InstrDesc D) {
  ByOp.emplace(D.Op, Table.size());
  Table.push_back(std::move(D));
}

const InstrDesc *MachineModel::descFor(ir::OpId Op) const {
  auto It = ByOp.find(Op);
  if (It == ByOp.end())
    return nullptr;
  return &Table[It->second];
}

// Default naming renders the Alpha convention ($16.. arguments, $1..
// temporaries, $M* memory versions); backends with other register files
// override.
std::string MachineModel::argRegName(unsigned Index) const {
  return strFormat("$%u", 16 + Index);
}

std::string MachineModel::tempRegName(unsigned Index) const {
  return strFormat("$%u", Index + 1);
}

std::string MachineModel::memRegName(unsigned Index) const {
  return strFormat("$M%u", Index);
}

namespace {

struct Registry {
  std::mutex Mu;
  std::unordered_map<std::string, MachineFactory> Factories;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

void denali::machine::registerMachine(const std::string &Name,
                                      MachineFactory F) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Factories[Name] = std::move(F);
}

std::unique_ptr<MachineModel>
denali::machine::createMachine(const std::string &Name, ir::Context &Ctx,
                               std::string *ErrorOut) {
  MachineFactory F;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto It = R.Factories.find(Name);
    if (It != R.Factories.end())
      F = It->second;
  }
  if (!F) {
    if (ErrorOut) {
      std::string Known;
      for (const std::string &N : registeredMachines())
        Known += (Known.empty() ? "" : ", ") + N;
      *ErrorOut = strFormat("unknown machine model '%s' (registered: %s)",
                            Name.c_str(), Known.c_str());
    }
    return nullptr;
  }
  return F(Ctx);
}

std::vector<std::string> denali::machine::registeredMachines() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<std::string> Names;
  Names.reserve(R.Factories.size());
  for (const auto &[Name, F] : R.Factories) {
    (void)F;
    Names.push_back(Name);
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}
