//===- machine/Program.cpp ------------------------------------------------===//

#include "machine/Program.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <map>
#include <set>

using namespace denali;
using namespace denali::machine;

const char *machine::defaultUnitName(unsigned UnitIdx) {
  static const char *Names[] = {"U0", "U1", "L0", "L1"};
  return UnitIdx < 4 ? Names[UnitIdx] : "U?";
}

std::string Program::toString(bool ShowNops) const {
  // Physical register map: inputs take the argument registers, temporaries
  // count up from the model's first temporary, memory pseudo-registers get
  // version names. All naming goes through the model (Alpha style when
  // absent); a temporary whose name would collide with an argument is
  // skipped.
  auto argReg = [&](unsigned I) {
    return Model ? Model->argRegName(I) : strFormat("$%u", 16 + I);
  };
  auto tempReg = [&](unsigned I) {
    return Model ? Model->tempRegName(I) : strFormat("$%u", I + 1);
  };
  auto memReg = [&](unsigned I) {
    return Model ? Model->memRegName(I) : strFormat("$M%u", I);
  };
  auto unitNameOf = [&](UnitId U) {
    return Model ? Model->unitName(U) : defaultUnitName(U);
  };
  const unsigned NumUnits = Model ? Model->numUnits() : 4;

  std::map<uint32_t, std::string> PhysName;
  std::set<std::string> UsedNames;
  unsigned NextArg = 0;
  unsigned NextMem = 0;
  for (const ProgramInput &In : Inputs) {
    if (In.IsMemory) {
      PhysName[In.Reg] = memReg(NextMem++);
    } else {
      std::string N = argReg(NextArg++);
      UsedNames.insert(N);
      PhysName[In.Reg] = std::move(N);
    }
  }
  unsigned NextTemp = 0;
  auto nameOf = [&](uint32_t VReg) -> std::string {
    auto It = PhysName.find(VReg);
    if (It != PhysName.end())
      return It->second;
    std::string N = tempReg(NextTemp);
    while (UsedNames.count(N))
      N = tempReg(++NextTemp);
    UsedNames.insert(N);
    PhysName[VReg] = N;
    return N;
  };

  std::string Out;
  Out += strFormat("%s:\n", Name.empty() ? "anon" : Name.c_str());
  // Register map banner (Figure 4 prints one).
  Out += "        # register map:";
  for (const ProgramInput &In : Inputs)
    Out += strFormat(" %s=%s", In.Name.c_str(), PhysName[In.Reg].c_str());
  Out += '\n';

  std::vector<const Instruction *> Sorted;
  Sorted.reserve(Instrs.size());
  for (const Instruction &I : Instrs)
    Sorted.push_back(&I);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Instruction *A, const Instruction *B) {
                     if (A->Cycle != B->Cycle)
                       return A->Cycle < B->Cycle;
                     return A->IssueUnit < B->IssueUnit;
                   });

  size_t Idx = 0;
  for (unsigned Cycle = 0; Cycle < Cycles; ++Cycle) {
    for (unsigned U = 0; U < NumUnits; ++U) {
      const Instruction *I = nullptr;
      if (Idx < Sorted.size() && Sorted[Idx]->Cycle == Cycle &&
          Sorted[Idx]->IssueUnit == U)
        I = Sorted[Idx++];
      if (!I) {
        if (ShowNops)
          Out += strFormat("        nop                          # %u\n",
                           Cycle);
        continue;
      }
      std::string Text = "        " + I->Mnemonic;
      auto opText = [&](const Operand &S) {
        return S.isReg() ? nameOf(S.Reg) : formatConstant(S.Imm);
      };
      if (I->Mem == MemKind::Load) {
        // ld Rd, disp(Rbase)   (memory version register in the comment)
        Text += strFormat(" %s, %lld(%s)", nameOf(I->Dest).c_str(),
                          static_cast<long long>(I->Disp),
                          opText(I->Srcs[1]).c_str());
        Text += strFormat("  # mem=%s", opText(I->Srcs[0]).c_str());
      } else if (I->Mem == MemKind::Store) {
        Text += strFormat(" %s, %lld(%s)", opText(I->Srcs[2]).c_str(),
                          static_cast<long long>(I->Disp),
                          opText(I->Srcs[1]).c_str());
        Text += strFormat("  # mem %s -> %s", opText(I->Srcs[0]).c_str(),
                          nameOf(I->Dest).c_str());
      } else {
        // Operands in assembly order: sources then destination (the
        // paper's three-operand style with the destination last).
        bool First = true;
        for (const Operand &S : I->Srcs) {
          Text += First ? " " : ", ";
          First = false;
          Text += opText(S);
        }
        Text += First ? " " : ", ";
        Text += nameOf(I->Dest);
      }
      while (Text.size() < 37)
        Text += ' ';
      Text += strFormat("# %u, %s", I->Cycle, unitNameOf(I->IssueUnit));
      if (I->Unused)
        Text += " (unused)";
      if (!I->Comment.empty())
        Text += " ; " + I->Comment;
      Out += Text + '\n';
    }
  }
  // Output map.
  for (const auto &[TargetName, VReg] : Outputs)
    Out += strFormat("        # result %s in %s\n", TargetName.c_str(),
                     nameOf(VReg).c_str());
  Out += strFormat("        # %u cycles, %zu instructions\n", Cycles,
                   Instrs.size());
  return Out;
}

unsigned denali::machine::maxLiveRegisters(const Program &P) {
  // Live range of a vreg: from its definition cycle to its last read
  // (outputs stay live through the end). Memory pseudo-registers are not
  // integer registers and are excluded.
  std::map<uint32_t, std::pair<unsigned, unsigned>> Range; // def, lastUse
  std::set<uint32_t> MemRegs;
  for (const ProgramInput &In : P.Inputs) {
    (In.IsMemory ? (void)MemRegs.insert(In.Reg)
                 : (void)Range.emplace(In.Reg,
                                       std::make_pair(0u, 0u)));
  }
  for (const Instruction &I : P.Instrs) {
    if (I.Mem == MemKind::Store)
      MemRegs.insert(I.Dest);
    else
      Range.emplace(I.Dest, std::make_pair(I.Cycle + I.Latency,
                                           I.Cycle + I.Latency));
  }
  for (const Instruction &I : P.Instrs)
    for (const Operand &S : I.Srcs)
      if (S.isReg() && !MemRegs.count(S.Reg)) {
        auto It = Range.find(S.Reg);
        if (It != Range.end())
          It->second.second = std::max(It->second.second, I.Cycle);
      }
  for (const auto &[Name, VReg] : P.Outputs) {
    (void)Name;
    auto It = Range.find(VReg);
    if (It != Range.end())
      It->second.second = std::max(It->second.second, P.Cycles);
  }
  unsigned Max = 0;
  for (unsigned Cycle = 0; Cycle <= P.Cycles; ++Cycle) {
    unsigned Live = 0;
    for (const auto &[Reg, R] : Range) {
      (void)Reg;
      if (R.first <= Cycle && Cycle <= R.second)
        ++Live;
    }
    Max = std::max(Max, Live);
  }
  return Max;
}
