//===- machine/Program.h - Scheduled assembly programs ----------*- C++ -*-===//
///
/// \file
/// The representation of generated code: a list of instructions, each
/// annotated with its issue cycle and functional unit (the annotations
/// Figure 4 prints as "# 0, U1"). Registers are virtual (SSA-like: each is
/// assigned exactly once); the printer maps them to physical names through
/// the program's MachineModel.
///
/// Memory is threaded through virtual registers too: a store writes a new
/// "memory value" register, a load names the memory register it reads.
/// This mirrors the arrays-as-values treatment (paper, section 3) and
/// makes both simulators uniform dataflow interpreters.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_MACHINE_PROGRAM_H
#define DENALI_MACHINE_PROGRAM_H

#include "machine/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace denali {
namespace machine {

/// A source operand: a virtual register or an immediate.
struct Operand {
  enum class Kind { Reg, Imm };
  Kind TheKind = Kind::Reg;
  uint32_t Reg = 0;
  uint64_t Imm = 0;

  static Operand reg(uint32_t R) { return {Kind::Reg, R, 0}; }
  static Operand imm(uint64_t V) { return {Kind::Imm, 0, V}; }
  bool isReg() const { return TheKind == Kind::Reg; }
};

/// One scheduled instruction.
struct Instruction {
  std::string Mnemonic;
  ir::OpId Op = 0; ///< Semantic operator (drives the simulator).
  std::vector<Operand> Srcs; ///< In operator-argument order.
  uint32_t Dest = 0;         ///< Virtual destination register.
  unsigned Cycle = 0;
  UnitId IssueUnit = 0;
  unsigned Latency = 1;
  bool Unused = false; ///< Result not consumed (Figure 4's "(unused)").
  /// Memory behaviour: loads read Srcs[0] (memory) at Srcs[1] + Disp;
  /// stores write Srcs[2] there, producing a new memory value in Dest.
  MemKind Mem = MemKind::None;
  int64_t Disp = 0;
  std::string Comment;
  /// Index of the universe machine term this instruction launches, or -1
  /// when unknown (hand-built programs). The explanation layer uses it to
  /// tie the scheduled instruction back to its e-class and derivation.
  int32_t SourceTerm = -1;
};

/// A named program input bound to a virtual register.
struct ProgramInput {
  uint32_t Reg = 0;
  std::string Name;    ///< Source-level name ("a", "M", "ptr").
  bool IsMemory = false;
};

/// A complete straight-line program for one GMA.
struct Program {
  std::string Name;
  std::vector<Instruction> Instrs; ///< Sorted by (cycle, unit).
  std::vector<ProgramInput> Inputs;
  /// Output vregs in GMA target order, with target names.
  std::vector<std::pair<std::string, uint32_t>> Outputs;
  unsigned Cycles = 0;
  uint32_t NumVRegs = 0;
  /// The machine this program is scheduled for. Drives printing, unit
  /// naming, and the trap attribution of the simulators. Null for
  /// hand-built programs, which render in the Alpha convention. Not owned;
  /// must outlive the program.
  const MachineModel *Model = nullptr;

  /// Renders in the Figure 4 style (cycle/unit comments, optional nops for
  /// unfilled issue slots).
  std::string toString(bool ShowNops = false) const;
};

/// Maximum number of simultaneously live (integer) virtual registers in
/// \p P's schedule — an upper bound on the physical registers an allocator
/// would need. The paper's prototype ignores register allocation; this
/// report makes the resulting pressure visible (the Alpha has 31 usable
/// integer registers).
unsigned maxLiveRegisters(const Program &P);

/// Unit name used when a program carries no model: the Alpha EV6
/// convention ("U0", "U1", "L0", "L1"), so hand-built model-less programs
/// print exactly as they did before the MachineModel seam.
const char *defaultUnitName(unsigned UnitIdx);

} // namespace machine
} // namespace denali

#endif // DENALI_MACHINE_PROGRAM_H
