//===- axioms/BuiltinAxioms.h - Built-in axiom files ------------*- C++ -*-===//
///
/// \file
/// The built-in axiom sets, corresponding to the paper's two automatically
/// loaded files (section 4): *mathematical axioms* (facts about add64,
/// select/store, selectb/storeb, shifts, boolean operations useful for any
/// target) and *architectural axioms* for the Alpha EV6 (definitions of
/// extbl, insbl, mskbl, s4addl, zapnot, ... in terms of mathematical
/// functions). Both are embedded as text in the paper's LISP-like axiom
/// syntax and parsed at load time.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_AXIOMS_BUILTINAXIOMS_H
#define DENALI_AXIOMS_BUILTINAXIOMS_H

#include "match/Axiom.h"

#include <string>
#include <vector>

namespace denali {
namespace axioms {

/// The mathematical axiom file (text, \axiom forms).
const char *mathAxiomsText();

/// The Alpha EV6 architectural axiom file (text, \axiom forms).
const char *alphaAxiomsText();

/// Parses a text of (\axiom ...) forms. \returns std::nullopt and sets
/// \p ErrorOut on failure.
std::optional<std::vector<match::Axiom>>
parseAxiomsText(ir::Context &Ctx, const std::string &Text,
                std::string *ErrorOut);

/// Loads math + Alpha axioms; fatal error if the built-in text is
/// malformed (that would be a build defect, not user error).
std::vector<match::Axiom> loadBuiltinAxioms(ir::Context &Ctx);

} // namespace axioms
} // namespace denali

#endif // DENALI_AXIOMS_BUILTINAXIOMS_H
