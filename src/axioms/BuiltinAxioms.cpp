//===- axioms/BuiltinAxioms.cpp -------------------------------------------===//

#include "axioms/BuiltinAxioms.h"

#include "sexpr/Parser.h"
#include "support/Error.h"
#include "support/StringExtras.h"

using namespace denali;
using namespace denali::axioms;

//===----------------------------------------------------------------------===
// Mathematical axioms (target-independent; paper section 4).
//===----------------------------------------------------------------------===

const char *denali::axioms::mathAxiomsText() {
  return R"AX(
; ---------------- add64: commutative, associative, identity 0 -------------
(\axiom (forall (x y) (eq (\add64 x y) (\add64 y x))))
(\axiom (forall (x y z) (pats (\add64 x (\add64 y z)))
  (eq (\add64 x (\add64 y z)) (\add64 (\add64 x y) z))))
(\axiom (forall (x y z) (pats (\add64 (\add64 x y) z))
  (eq (\add64 x (\add64 y z)) (\add64 (\add64 x y) z))))
(\axiom (forall (x) (eq (\add64 x 0) x)))

; ---------------- sub64 / neg64 -------------------------------------------
(\axiom (forall (x) (eq (\sub64 x 0) x)))
(\axiom (forall (x) (eq (\sub64 x x) 0)))
(\axiom (forall (x y) (pats (\sub64 x y))
  (eq (\sub64 x y) (\add64 x (\neg64 y)))))
(\axiom (forall (x) (pats (\neg64 x)) (eq (\neg64 x) (\sub64 0 x))))

; ---------------- mul64: commutative, associative, identities -------------
(\axiom (forall (x y) (eq (\mul64 x y) (\mul64 y x))))
(\axiom (forall (x y z) (pats (\mul64 x (\mul64 y z)))
  (eq (\mul64 x (\mul64 y z)) (\mul64 (\mul64 x y) z))))
(\axiom (forall (x) (eq (\mul64 x 1) x)))
(\axiom (forall (x) (eq (\mul64 x 0) 0)))
(\axiom (forall (x) (pats (\mul64 x 2)) (eq (\mul64 x 2) (\add64 x x))))

; ---------------- shifts ---------------------------------------------------
; The Figure 2 fact: k * 2**n = k << n.
(\axiom (forall (k n) (pats (\mul64 k (\pow 2 n)))
  (eq (\mul64 k (\pow 2 n)) (\shl64 k n))))
(\axiom (forall (x) (eq (\shl64 x 0) x)))
(\axiom (forall (x) (eq (\shr64 x 0) x)))
(\axiom (forall (x) (pats (\shl64 x 1)) (eq (\shl64 x 1) (\add64 x x))))

; ---------------- boolean operations ---------------------------------------
(\axiom (forall (x y) (eq (\or64 x y) (\or64 y x))))
(\axiom (forall (x y z) (pats (\or64 x (\or64 y z)))
  (eq (\or64 x (\or64 y z)) (\or64 (\or64 x y) z))))
(\axiom (forall (x y z) (pats (\or64 (\or64 x y) z))
  (eq (\or64 x (\or64 y z)) (\or64 (\or64 x y) z))))
(\axiom (forall (x) (eq (\or64 x 0) x)))
(\axiom (forall (x) (eq (\or64 x x) x)))
(\axiom (forall (x y) (eq (\and64 x y) (\and64 y x))))
(\axiom (forall (x y z) (pats (\and64 x (\and64 y z)))
  (eq (\and64 x (\and64 y z)) (\and64 (\and64 x y) z))))
(\axiom (forall (x) (eq (\and64 x 0xffffffffffffffff) x)))
(\axiom (forall (x) (eq (\and64 x 0) 0)))
(\axiom (forall (x) (eq (\and64 x x) x)))
(\axiom (forall (x y) (eq (\xor64 x y) (\xor64 y x))))
(\axiom (forall (x) (eq (\xor64 x 0) x)))
(\axiom (forall (x) (eq (\xor64 x x) 0)))
(\axiom (forall (x) (pats (\not64 (\not64 x)))
  (eq (\not64 (\not64 x)) x)))
; Disjoint-or is add: the clause form
;   (or (neq (and64 x y) 0) (eq (or64 x y) (add64 x y)))
; is sound but explosive — every instantiation plants fresh or64/add64
; nodes that feed the AC saturation (measured 2500x slower on byteswap4
; with an or64 trigger, and still divergent with an and64 trigger), so it
; is left out; programs that need it can state the consequence directly
; with \assume or a program axiom, as examples/custom_axioms.cpp does.

; ---------------- select / store (arrays as values) ------------------------
(\axiom (forall (a i x) (pats (\select (\store a i x) i))
  (eq (\select (\store a i x) i) x)))
; The select-store axiom of section 4: writing element i does not change
; element j when i != j.
(\axiom (forall (a i j x) (pats (\select (\store a i x) j))
  (or (eq i j)
      (eq (\select (\store a i x) j) (\select a j)))))
; Independent stores commute.
(\axiom (forall (a i j x y) (pats (\store (\store a i x) j y))
  (or (eq i j)
      (eq (\store (\store a i x) j y) (\store (\store a j y) i x)))))

; ---------------- selectb / storeb (integers as byte arrays) ---------------
(\axiom (forall (w i x) (pats (\selectb (\storeb w i x) i))
  (eq (\selectb (\storeb w i x) i) (\selectb x 0))))
; Byte indices act modulo 8 (the Alpha uses an address's low 3 bits), so
; the no-interference guard compares the *masked* indices — plain i = j
; would be unsound for indices past 7 (found by the axiom-soundness suite).
(\axiom (forall (w i j x) (pats (\selectb (\storeb w i x) j))
  (or (eq (\and64 i 7) (\and64 j 7))
      (eq (\selectb (\storeb w i x) j) (\selectb w j)))))
(\axiom (forall (w i j x y) (pats (\storeb (\storeb w i x) j y))
  (or (eq (\and64 i 7) (\and64 j 7))
      (eq (\storeb (\storeb w i x) j y) (\storeb (\storeb w j y) i x)))))
; Byte extraction as shift-and-mask (gives shift-based alternatives).
(\axiom (forall (w i) (pats (\selectb w i))
  (eq (\selectb w i) (\and64 (\shr64 w (\mul64 8 i)) 0xff))))
(\axiom (forall (w i) (pats (\selectw w i))
  (eq (\selectw w i) (\and64 (\shr64 w (\mul64 8 i)) 0xffff))))

; ---------------- extensions ----------------------------------------------
(\axiom (forall (x) (pats (\zext8 x)) (eq (\zext8 x) (\and64 x 0xff))))
(\axiom (forall (x) (pats (\zext16 x)) (eq (\zext16 x) (\and64 x 0xffff))))
(\axiom (forall (x) (pats (\zext32 x))
  (eq (\zext32 x) (\and64 x 0xffffffff))))
(\axiom (forall (x) (pats (\sext16 x))
  (eq (\sext16 x) (\sar64 (\shl64 x 48) 48))))
(\axiom (forall (x) (pats (\sext32 x))
  (eq (\sext32 x) (\sar64 (\shl64 x 32) 32))))
(\axiom (forall (x) (pats (\zext8 x)) (eq (\zext8 x) (\selectb x 0))))
(\axiom (forall (x) (pats (\zext16 x)) (eq (\zext16 x) (\selectw x 0))))

; ---------------- comparisons ----------------------------------------------
(\axiom (forall (x) (eq (\cmpult x x) 0)))
(\axiom (forall (x) (eq (\cmpeq x x) 1)))
(\axiom (forall (x y) (eq (\cmpeq x y) (\cmpeq y x))))
; Non-strict vs strict: x <=u y  ==  (y <u x) ^ 1, and the signed twin.
(\axiom (forall (x y) (pats (\cmpule x y))
  (eq (\cmpule x y) (\xor64 (\cmpult y x) 1))))
(\axiom (forall (x y) (pats (\cmple x y))
  (eq (\cmple x y) (\xor64 (\cmplt y x) 1))))

; ---------------- De Morgan and absorption ----------------------------------
(\axiom (forall (x y) (pats (\not64 (\and64 x y)))
  (eq (\not64 (\and64 x y)) (\or64 (\not64 x) (\not64 y)))))
(\axiom (forall (x y) (pats (\not64 (\or64 x y)))
  (eq (\not64 (\or64 x y)) (\and64 (\not64 x) (\not64 y)))))
(\axiom (forall (x y) (pats (\and64 (\or64 x y) x))
  (eq (\and64 (\or64 x y) x) x)))
(\axiom (forall (x y) (pats (\or64 (\and64 x y) x))
  (eq (\or64 (\and64 x y) x) x)))
; x + x + x + x has the shift form too: covered by mul elaboration; the
; common (x ^ y) ^ y = x cancellation is cheap and frequent.
(\axiom (forall (x y) (pats (\xor64 (\xor64 x y) y))
  (eq (\xor64 (\xor64 x y) y) x)))
)AX";
}

//===----------------------------------------------------------------------===
// Alpha EV6 architectural axioms (paper section 4's examples and friends).
//===----------------------------------------------------------------------===

const char *denali::axioms::alphaAxiomsText() {
  return R"AX(
; extbl(w, i) "extracts" byte i of longword w (section 4).
(\axiom (forall (w i) (eq (\extbl w i) (\selectb w i))))
; extwl(w, i) extracts the 16-bit field at byte offset i.
(\axiom (forall (w i) (eq (\extwl w i) (\selectw w i))))
; insbl(w, i) places the least significant byte of w at byte i.
(\axiom (forall (w i) (pats (\insbl w i))
  (eq (\insbl w i) (\shl64 (\selectb w 0) (\mul64 8 i)))))
(\axiom (forall (w i) (pats (\shl64 (\selectb w 0) (\mul64 8 i)))
  (eq (\insbl w i) (\shl64 (\selectb w 0) (\mul64 8 i)))))
(\axiom (forall (w i) (pats (\inswl w i))
  (eq (\inswl w i) (\shl64 (\selectw w 0) (\mul64 8 i)))))
; mskbl(w, i) zeroes byte i (section 4: mskbl(w,i) = storeb(w,i,0)).
(\axiom (forall (w i) (eq (\mskbl w i) (\storeb w i 0))))
(\axiom (forall (w i) (eq (\mskwl w i) (\storew w i 0))))
; storeb via msk/ins/or: the instruction-level decomposition of a byte
; store, the combination Figure 4's byteswap code is built from.
(\axiom (forall (w i x) (pats (\storeb w i x))
  (eq (\storeb w i x) (\or64 (\mskbl w i) (\insbl x i)))))
; Scaled adds (the s4addl example of Figure 2).
(\axiom (forall (k n) (eq (\s4addl k n) (\add64 (\mul64 k 4) n))))
(\axiom (forall (k n) (eq (\s8addl k n) (\add64 (\mul64 k 8) n))))
(\axiom (forall (k n) (eq (\s4subl k n) (\sub64 (\mul64 k 4) n))))
(\axiom (forall (k n) (eq (\s8subl k n) (\sub64 (\mul64 k 8) n))))
; zapnot facts.
(\axiom (forall (w) (eq (\zapnot w 0xff) w)))
(\axiom (forall (w) (pats (\zapnot w 1)) (eq (\zapnot w 1) (\selectb w 0))))
(\axiom (forall (w) (pats (\zapnot w 3)) (eq (\zapnot w 3) (\selectw w 0))))
; bic / ornot / eqv in terms of and/or/xor/not.
(\axiom (forall (x y) (pats (\bic64 x y))
  (eq (\bic64 x y) (\and64 x (\not64 y)))))
(\axiom (forall (x y) (pats (\and64 x (\not64 y)))
  (eq (\bic64 x y) (\and64 x (\not64 y)))))
(\axiom (forall (x y) (pats (\ornot64 x y))
  (eq (\ornot64 x y) (\or64 x (\not64 y)))))
(\axiom (forall (x y) (pats (\or64 x (\not64 y)))
  (eq (\ornot64 x y) (\or64 x (\not64 y)))))
(\axiom (forall (x y) (pats (\eqv64 x y))
  (eq (\eqv64 x y) (\not64 (\xor64 x y)))))
(\axiom (forall (x y) (pats (\not64 (\xor64 x y)))
  (eq (\eqv64 x y) (\not64 (\xor64 x y)))))
; not via ornot with the zero register.
(\axiom (forall (x) (pats (\not64 x)) (eq (\not64 x) (\ornot64 0 x))))
; neg via subtraction from the zero register (subq $31, x).
(\axiom (forall (x) (pats (\neg64 x)) (eq (\neg64 x) (\sub64 0 x))))
; extwl/inswl relate to the 16-bit field operations as extbl/insbl do to
; bytes.
(\axiom (forall (w i) (pats (\inswl w i))
  (eq (\inswl w i) (\storew 0 i w))))
; umulh is the paper's multi-result flavor in spirit: the high half of the
; unsigned product; no mathematical decomposition is offered (it is its own
; machine operation), but umulh(x, 0) and umulh(x, 1) fold.
(\axiom (forall (x) (eq (\umulh x 0) 0)))
(\axiom (forall (x) (eq (\umulh x 1) 0)))
(\axiom (forall (x y) (eq (\umulh x y) (\umulh y x))))
)AX";
}

std::optional<std::vector<match::Axiom>>
denali::axioms::parseAxiomsText(ir::Context &Ctx, const std::string &Text,
                                std::string *ErrorOut) {
  sexpr::ParseResult Parsed = sexpr::parse(Text);
  if (!Parsed.ok()) {
    if (ErrorOut)
      *ErrorOut = Parsed.Error->toString();
    return std::nullopt;
  }
  std::vector<match::Axiom> Out;
  for (const sexpr::SExpr &Form : Parsed.Forms) {
    std::optional<match::Axiom> A = match::parseAxiom(Ctx, Form, ErrorOut);
    if (!A)
      return std::nullopt;
    Out.push_back(std::move(*A));
  }
  return Out;
}

std::vector<match::Axiom>
denali::axioms::loadBuiltinAxioms(ir::Context &Ctx) {
  std::string Err;
  auto Math = parseAxiomsText(Ctx, mathAxiomsText(), &Err);
  if (!Math)
    reportFatalError("built-in math axioms malformed: " + Err);
  auto Alpha = parseAxiomsText(Ctx, alphaAxiomsText(), &Err);
  if (!Alpha)
    reportFatalError("built-in alpha axioms malformed: " + Err);
  std::vector<match::Axiom> Out = std::move(*Math);
  for (match::Axiom &A : *Alpha)
    Out.push_back(std::move(A));
  return Out;
}
