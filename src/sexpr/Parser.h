//===- sexpr/Parser.h - S-expression reader ---------------------*- C++ -*-===//
///
/// \file
/// Parses Denali's parenthesized input syntax into SExpr trees. Comments run
/// from ';' to end of line (as in the paper's Figure 6). Symbols may contain
/// the characters used by Denali forms: backslash-prefixed keywords
/// (\axiom, \procdecl, ...), operators (+, <, :=, ->), and identifiers.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SEXPR_PARSER_H
#define DENALI_SEXPR_PARSER_H

#include "sexpr/SExpr.h"

#include <optional>
#include <string>
#include <vector>

namespace denali {
namespace sexpr {

/// A parse failure, with 1-based source position.
struct ParseError {
  std::string Message;
  unsigned Line = 0;
  unsigned Col = 0;

  std::string toString() const;
};

/// Result of parsing: either a vector of top-level forms or an error.
struct ParseResult {
  std::vector<SExpr> Forms;
  std::optional<ParseError> Error;

  bool ok() const { return !Error.has_value(); }
};

/// Parses all top-level S-expressions in \p Text.
ParseResult parse(const std::string &Text);

/// Parses exactly one S-expression; fails if there are zero or multiple
/// top-level forms.
ParseResult parseOne(const std::string &Text);

} // namespace sexpr
} // namespace denali

#endif // DENALI_SEXPR_PARSER_H
