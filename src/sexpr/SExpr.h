//===- sexpr/SExpr.h - S-expression values ----------------------*- C++ -*-===//
///
/// \file
/// The S-expression data structure used to represent Denali source programs
/// and axiom files (the paper's "LISP-like parenthesized expressions",
/// Figure 6). An SExpr is a symbol, an integer, or a list of SExprs.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SEXPR_SEXPR_H
#define DENALI_SEXPR_SEXPR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace denali {
namespace sexpr {

/// One node of an S-expression tree.
///
/// SExprs are immutable after parsing; they are held by value inside their
/// parent list, so a whole file is a single tree owned by its root.
class SExpr {
public:
  enum class Kind { Symbol, Integer, List };

  static SExpr makeSymbol(std::string Name, unsigned Line = 0,
                          unsigned Col = 0);
  static SExpr makeInteger(int64_t Value, unsigned Line = 0, unsigned Col = 0);
  static SExpr makeList(std::vector<SExpr> Elems, unsigned Line = 0,
                        unsigned Col = 0);

  Kind kind() const { return TheKind; }
  bool isSymbol() const { return TheKind == Kind::Symbol; }
  bool isInteger() const { return TheKind == Kind::Integer; }
  bool isList() const { return TheKind == Kind::List; }

  /// \returns true if this is the symbol \p Name.
  bool isSymbol(const std::string &Name) const {
    return isSymbol() && Sym == Name;
  }

  /// The symbol text. Asserts on non-symbols.
  const std::string &symbol() const;

  /// The integer value. Asserts on non-integers.
  int64_t integer() const;

  /// The list elements. Asserts on non-lists.
  const std::vector<SExpr> &list() const;

  /// Convenience accessors for lists.
  size_t size() const { return list().size(); }
  const SExpr &operator[](size_t I) const;

  /// \returns true if this is a list whose first element is the symbol
  /// \p Head (the standard "tagged form" test).
  bool isForm(const std::string &Head) const;

  /// Source position (1-based; 0 when synthesized).
  unsigned line() const { return Line; }
  unsigned column() const { return Col; }

  /// Renders the expression back to text (single line).
  std::string toString() const;

private:
  Kind TheKind = Kind::List;
  std::string Sym;
  int64_t Int = 0;
  std::vector<SExpr> Elems;
  unsigned Line = 0;
  unsigned Col = 0;
};

} // namespace sexpr
} // namespace denali

#endif // DENALI_SEXPR_SEXPR_H
