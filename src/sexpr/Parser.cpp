//===- sexpr/Parser.cpp ---------------------------------------------------===//

#include "sexpr/Parser.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"

#include <cctype>
#include <string_view>

using namespace denali;
using namespace denali::sexpr;

std::string ParseError::toString() const {
  return strFormat("%u:%u: %s", Line, Col, Message.c_str());
}

namespace {

/// Recursive-descent reader over a character buffer. Tokenization is
/// zero-copy: atoms are scanned as string_views into the input, runs of
/// trivia are skipped in bulk, and the only per-token allocation is the
/// final std::string a *symbol* atom hands to SExpr::makeSymbol (integer
/// atoms allocate nothing). This is the bulk-ingestion fast path the
/// compile server's --bulk mode and bench_server's parse-throughput
/// figure measure.
class Reader {
public:
  explicit Reader(std::string_view Text) : Text(Text) {}

  ParseResult readAll() {
    ParseResult Result;
    for (;;) {
      skipTrivia();
      if (atEnd())
        break;
      SExpr E;
      if (!readExpr(E, Result))
        return Result;
      Result.Forms.push_back(std::move(E));
    }
    return Result;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        // Bulk-skip the whitespace run, counting newlines once.
        size_t Start = Pos;
        size_t LastNewline = std::string_view::npos;
        while (Pos < Text.size() &&
               std::isspace(static_cast<unsigned char>(Text[Pos]))) {
          if (Text[Pos] == '\n') {
            ++Line;
            LastNewline = Pos;
          }
          ++Pos;
        }
        if (LastNewline != std::string_view::npos)
          Col = static_cast<unsigned>(Pos - LastNewline);
        else
          Col += static_cast<unsigned>(Pos - Start);
        continue;
      }
      if (C == ';') {
        // Comment to end of line: one find instead of a char loop.
        size_t Nl = Text.find('\n', Pos);
        if (Nl == std::string_view::npos) {
          Col += static_cast<unsigned>(Text.size() - Pos);
          Pos = Text.size();
        } else {
          Col += static_cast<unsigned>(Nl - Pos);
          Pos = Nl; // The newline itself is whitespace; next iteration.
        }
        continue;
      }
      break;
    }
  }

  static bool isDelimiter(char C) {
    return C == '(' || C == ')' || C == ';' ||
           std::isspace(static_cast<unsigned char>(C));
  }

  bool fail(ParseResult &Result, std::string Msg) {
    Result.Error = ParseError{std::move(Msg), Line, Col};
    return false;
  }

  bool readExpr(SExpr &Out, ParseResult &Result) {
    skipTrivia();
    if (atEnd())
      return fail(Result, "unexpected end of input");
    unsigned StartLine = Line, StartCol = Col;
    char C = peek();
    if (C == ')')
      return fail(Result, "unexpected ')'");
    if (C == '(') {
      advance();
      std::vector<SExpr> Elems;
      for (;;) {
        skipTrivia();
        if (atEnd())
          return fail(Result, "unterminated list (missing ')')");
        if (peek() == ')') {
          advance();
          break;
        }
        SExpr Child;
        if (!readExpr(Child, Result))
          return false;
        Elems.push_back(std::move(Child));
      }
      Out = SExpr::makeList(std::move(Elems), StartLine, StartCol);
      return true;
    }
    // Atom: scan to the next delimiter as a view — no per-token string.
    // Delimiters include every whitespace character, so a token can never
    // contain a newline and the position bookkeeping is a single add.
    size_t Start = Pos;
    while (Pos < Text.size() && !isDelimiter(Text[Pos]))
      ++Pos;
    Col += static_cast<unsigned>(Pos - Start);
    std::string_view Token = Text.substr(Start, Pos - Start);
    int64_t IntVal;
    if (parseIntegerLiteral(Token, IntVal)) {
      Out = SExpr::makeInteger(IntVal, StartLine, StartCol);
      return true;
    }
    Out = SExpr::makeSymbol(std::string(Token), StartLine, StartCol);
    return true;
  }
};

} // namespace

ParseResult denali::sexpr::parse(const std::string &Text) {
  obs::ObsSpan Span("sexpr.parse");
  ParseResult Result = Reader(Text).readAll();
  if (Span.active())
    Span.arg("bytes", static_cast<uint64_t>(Text.size()))
        .arg("forms", static_cast<uint64_t>(Result.Forms.size()))
        .arg("ok", Result.ok() ? "yes" : "no");
  return Result;
}

ParseResult denali::sexpr::parseOne(const std::string &Text) {
  ParseResult Result = parse(Text);
  if (!Result.ok())
    return Result;
  if (Result.Forms.size() != 1) {
    Result.Error = ParseError{
        strFormat("expected exactly one form, found %zu", Result.Forms.size()),
        1, 1};
    Result.Forms.clear();
  }
  return Result;
}
