//===- sexpr/Parser.cpp ---------------------------------------------------===//

#include "sexpr/Parser.h"

#include "obs/Obs.h"
#include "support/StringExtras.h"

#include <cctype>

using namespace denali;
using namespace denali::sexpr;

std::string ParseError::toString() const {
  return strFormat("%u:%u: %s", Line, Col, Message.c_str());
}

namespace {

/// Recursive-descent reader over a character buffer.
class Reader {
public:
  explicit Reader(const std::string &Text) : Text(Text) {}

  ParseResult readAll() {
    ParseResult Result;
    for (;;) {
      skipTrivia();
      if (atEnd())
        break;
      SExpr E;
      if (!readExpr(E, Result))
        return Result;
      Result.Forms.push_back(std::move(E));
    }
    return Result;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == ';') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      break;
    }
  }

  static bool isDelimiter(char C) {
    return C == '(' || C == ')' || C == ';' ||
           std::isspace(static_cast<unsigned char>(C));
  }

  bool fail(ParseResult &Result, std::string Msg) {
    Result.Error = ParseError{std::move(Msg), Line, Col};
    return false;
  }

  bool readExpr(SExpr &Out, ParseResult &Result) {
    skipTrivia();
    if (atEnd())
      return fail(Result, "unexpected end of input");
    unsigned StartLine = Line, StartCol = Col;
    char C = peek();
    if (C == ')')
      return fail(Result, "unexpected ')'");
    if (C == '(') {
      advance();
      std::vector<SExpr> Elems;
      for (;;) {
        skipTrivia();
        if (atEnd())
          return fail(Result, "unterminated list (missing ')')");
        if (peek() == ')') {
          advance();
          break;
        }
        SExpr Child;
        if (!readExpr(Child, Result))
          return false;
        Elems.push_back(std::move(Child));
      }
      Out = SExpr::makeList(std::move(Elems), StartLine, StartCol);
      return true;
    }
    // Atom: read to the next delimiter.
    std::string Token;
    while (!atEnd() && !isDelimiter(peek())) {
      Token.push_back(peek());
      advance();
    }
    int64_t IntVal;
    if (parseIntegerLiteral(Token, IntVal)) {
      Out = SExpr::makeInteger(IntVal, StartLine, StartCol);
      return true;
    }
    Out = SExpr::makeSymbol(std::move(Token), StartLine, StartCol);
    return true;
  }
};

} // namespace

ParseResult denali::sexpr::parse(const std::string &Text) {
  obs::ObsSpan Span("sexpr.parse");
  ParseResult Result = Reader(Text).readAll();
  if (Span.active())
    Span.arg("bytes", static_cast<uint64_t>(Text.size()))
        .arg("forms", static_cast<uint64_t>(Result.Forms.size()))
        .arg("ok", Result.ok() ? "yes" : "no");
  return Result;
}

ParseResult denali::sexpr::parseOne(const std::string &Text) {
  ParseResult Result = parse(Text);
  if (!Result.ok())
    return Result;
  if (Result.Forms.size() != 1) {
    Result.Error = ParseError{
        strFormat("expected exactly one form, found %zu", Result.Forms.size()),
        1, 1};
    Result.Forms.clear();
  }
  return Result;
}
