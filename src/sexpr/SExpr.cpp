//===- sexpr/SExpr.cpp ----------------------------------------------------===//

#include "sexpr/SExpr.h"

#include "support/Error.h"

#include <cassert>

using namespace denali;
using namespace denali::sexpr;

SExpr SExpr::makeSymbol(std::string Name, unsigned Line, unsigned Col) {
  SExpr E;
  E.TheKind = Kind::Symbol;
  E.Sym = std::move(Name);
  E.Line = Line;
  E.Col = Col;
  return E;
}

SExpr SExpr::makeInteger(int64_t Value, unsigned Line, unsigned Col) {
  SExpr E;
  E.TheKind = Kind::Integer;
  E.Int = Value;
  E.Line = Line;
  E.Col = Col;
  return E;
}

SExpr SExpr::makeList(std::vector<SExpr> Elems, unsigned Line, unsigned Col) {
  SExpr E;
  E.TheKind = Kind::List;
  E.Elems = std::move(Elems);
  E.Line = Line;
  E.Col = Col;
  return E;
}

const std::string &SExpr::symbol() const {
  assert(isSymbol() && "not a symbol");
  return Sym;
}

int64_t SExpr::integer() const {
  assert(isInteger() && "not an integer");
  return Int;
}

const std::vector<SExpr> &SExpr::list() const {
  assert(isList() && "not a list");
  return Elems;
}

const SExpr &SExpr::operator[](size_t I) const {
  assert(isList() && I < Elems.size() && "index out of range");
  return Elems[I];
}

bool SExpr::isForm(const std::string &Head) const {
  return isList() && !Elems.empty() && Elems[0].isSymbol(Head);
}

std::string SExpr::toString() const {
  switch (TheKind) {
  case Kind::Symbol:
    return Sym;
  case Kind::Integer:
    return std::to_string(Int);
  case Kind::List: {
    std::string Out = "(";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += ' ';
      Out += Elems[I].toString();
    }
    Out += ')';
    return Out;
  }
  }
  DENALI_UNREACHABLE("bad SExpr kind");
}
