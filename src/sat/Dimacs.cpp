//===- sat/Dimacs.cpp -----------------------------------------------------===//

#include "sat/Dimacs.h"

#include "sat/Solver.h"
#include "support/StringExtras.h"

#include <sstream>

using namespace denali;
using namespace denali::sat;

std::string Cnf::toDimacs() const {
  std::ostringstream Out;
  Out << "p cnf " << NumVars << ' ' << Clauses.size() << '\n';
  for (const ClauseLits &C : Clauses) {
    for (Lit L : C)
      Out << (L.negative() ? -(L.var() + 1) : (L.var() + 1)) << ' ';
    Out << "0\n";
  }
  return Out.str();
}

bool Cnf::loadInto(Solver &S) const {
  while (S.numVars() < NumVars)
    S.newVar();
  bool Ok = true;
  for (const ClauseLits &C : Clauses)
    Ok &= S.addClause(C);
  return Ok;
}

bool denali::sat::parseDimacs(const std::string &Text, Cnf &Out,
                              std::string *ErrorOut) {
  std::istringstream In(Text);
  std::string Line;
  bool SawHeader = false;
  ClauseLits Current;
  Out = Cnf();
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == 'c')
      continue;
    if (Line[0] == 'p') {
      std::istringstream Header(Line);
      std::string P, Kind;
      int Vars = 0, NumClauses = 0;
      Header >> P >> Kind >> Vars >> NumClauses;
      if (Kind != "cnf" || Vars < 0) {
        if (ErrorOut)
          *ErrorOut = "malformed problem line: " + Line;
        return false;
      }
      Out.NumVars = Vars;
      SawHeader = true;
      continue;
    }
    std::istringstream Body(Line);
    long LitVal;
    while (Body >> LitVal) {
      if (LitVal == 0) {
        Out.Clauses.push_back(Current);
        Current.clear();
        continue;
      }
      long V = LitVal < 0 ? -LitVal : LitVal;
      if (V > Out.NumVars)
        Out.NumVars = static_cast<int>(V);
      Current.push_back(Lit(static_cast<Var>(V - 1), LitVal < 0));
    }
  }
  if (!Current.empty())
    Out.Clauses.push_back(Current);
  if (!SawHeader && Out.Clauses.empty()) {
    if (ErrorOut)
      *ErrorOut = "no problem line and no clauses";
    return false;
  }
  return true;
}
