//===- sat/RupChecker.h - Clausal proof checking ----------------*- C++ -*-===//
///
/// \file
/// An independent checker for the solver's clausal proofs: each proof
/// clause must be a *reverse unit propagation* (RUP) consequence of the
/// formula plus the previously checked clauses — assuming the negation of
/// the clause and unit-propagating must yield a conflict. A proof ending
/// in the (RUP-valid) empty clause certifies unsatisfiability.
///
/// The checker shares no search code with the solver (it is a plain
/// counter-free propagation loop over occurrence lists), so a bug in the
/// CDCL machinery cannot silently certify itself.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SAT_RUPCHECKER_H
#define DENALI_SAT_RUPCHECKER_H

#include "sat/Dimacs.h"

#include <string>

namespace denali {
namespace sat {

/// Validates \p Proof against \p Formula. \returns true if every proof
/// clause is RUP and the proof ends with the empty clause (i.e. the
/// formula is certified unsatisfiable). On failure \p ErrorOut (if
/// non-null) describes the first offending step.
bool checkRupProof(const Cnf &Formula,
                   const std::vector<ClauseLits> &Proof,
                   std::string *ErrorOut = nullptr);

} // namespace sat
} // namespace denali

#endif // DENALI_SAT_RUPCHECKER_H
