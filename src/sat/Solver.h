//===- sat/Solver.h - CDCL SAT solver ---------------------------*- C++ -*-===//
///
/// \file
/// A conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, first-UIP conflict analysis with clause minimization,
/// VSIDS-style variable activities, phase saving, Luby restarts, and
/// activity-based learnt-clause deletion.
///
/// The solver is *incremental* in the MiniSat sense: solve() may be called
/// repeatedly (optionally under a set of assumption literals that hold for
/// that call only), clauses may be added between calls, and learnt clauses,
/// variable activities, and saved phases all persist across calls. An
/// Unsat answer under assumptions comes with the failed-assumption subset
/// (the final conflict clause), which the budget search uses to keep the
/// paper's lower-bound evidence while solving the whole probe ladder on
/// one solver instance.
///
/// This is the repository's stand-in for CHAFF (the solver the Denali
/// prototype used); the paper emphasizes that the satisfiability solver is
/// a pluggable black box behind a small interface, which this class keeps.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SAT_SOLVER_H
#define DENALI_SAT_SOLVER_H

#include "sat/SatTypes.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace denali {
namespace sat {

/// Outcome of a solve() call.
enum class SolveResult { Sat, Unsat, Unknown /* budget exhausted */ };

/// Running counters, reported by the driver and benchmarks.
struct SolverStats {
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  uint64_t LearntClauses = 0;
  uint64_t Restarts = 0;
  uint64_t DeletedClauses = 0;
  uint64_t SolveCalls = 0;
  /// Learnt-arena garbage collections and total words reclaimed by them
  /// (deleted learnt clauses leave holes; a long-lived incremental solver
  /// compacts them away after reduceDB).
  uint64_t ArenaCollections = 0;
  uint64_t ArenaWordsReclaimed = 0;
};

class Solver {
public:
  Solver();

  /// Creates a fresh variable and \returns it.
  Var newVar();
  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause. \returns false if the formula is already trivially
  /// unsatisfiable (empty clause, or conflicting units at level 0).
  bool addClause(const ClauseLits &Lits);
  bool addClause(Lit A) { return addClause(ClauseLits{A}); }
  bool addClause(Lit A, Lit B) { return addClause(ClauseLits{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) { return addClause(ClauseLits{A, B, C}); }

  uint64_t numClauses() const { return ProblemClauses; }

  /// The problem as added (post level-0 simplification): all non-learnt
  /// clauses plus the level-0 unit facts. Suitable for DIMACS export and
  /// cross-checking with external solvers.
  std::vector<ClauseLits> problemClauses() const;

  /// Limits the search effort *per solve() call*; Unknown is returned when
  /// exceeded. 0 means unlimited.
  void setConflictBudget(uint64_t Budget) { ConflictBudget = Budget; }

  /// Cooperative cancellation: solve() polls \p Flag (relaxed) at its
  /// conflict/decision/restart boundaries — the same places the conflict
  /// budget is enforced — and returns Unknown once it reads true. The flag
  /// must outlive the solve() call; pass nullptr to detach. Used by the
  /// portfolio budget search to abandon probes a SAT result at a smaller
  /// budget has made irrelevant.
  void setInterrupt(const std::atomic<bool> *Flag) { Interrupt = Flag; }

  /// True if the last solve() returned Unknown because the interrupt flag
  /// fired (as opposed to exhausting the conflict budget).
  bool interrupted() const { return WasInterrupted; }

  /// After an interrupted solve(): how many conflicts the solver worked
  /// through between the last interrupt poll that read false and the poll
  /// that observed the flag. The poll runs every conflict/decision/restart
  /// boundary, so this is at most 1 — the bound PortfolioTests asserts to
  /// keep cancellation responsive.
  uint64_t conflictsAfterInterrupt() const { return PostInterruptConflicts; }

  /// Refutation attribution: while a nonzero tag is set, every problem
  /// clause added is stamped with it (the tag lives in the header word a
  /// problem clause never uses for activity, so it survives arena
  /// compaction for free). Tag 0 means untagged. Level-0 simplification
  /// can lose tags of unit facts folded away before tracking starts — a
  /// documented limitation of this cheap scheme.
  void setClauseTag(uint32_t Tag) { CurrentTag = Tag; }

  /// Turns on clause-core tracking: conflict analysis additionally unions,
  /// per learnt clause, the tags of every clause resolved to derive it, so
  /// that an Unsat answer can report which *problem* clause tags are in the
  /// final implication cone (coreTags()). Off by default — the per-conflict
  /// set unions are not free, so only dedicated explain probes enable it.
  void enableCoreTracking() { CoreTracking = true; }

  /// After an Unsat answer with core tracking on: the sorted distinct
  /// nonzero tags of the problem clauses in the refutation cone. An
  /// attribution core (every listed clause participated in the refutation),
  /// not a minimal one.
  const std::vector<uint32_t> &coreTags() const { return CoreOut; }

  /// Enables clausal proof logging: every learnt clause is recorded in
  /// derivation order (a DRAT proof without deletions). After an Unsat
  /// answer the proof ends with the empty clause and can be validated by
  /// checkRupProof — making the budget search's "K cycles are impossible"
  /// certificates independently checkable.
  void enableProofLogging() { LogProof = true; }
  const std::vector<ClauseLits> &proof() const { return Proof; }

  /// Solves the formula. Repeated calls are allowed (the solver backtracks
  /// to level 0 on return); learnt clauses, activities, and saved phases
  /// carry over, and clauses may be added between calls.
  SolveResult solve();

  /// Solves the formula under \p Assumptions: each literal is treated as a
  /// decision that must hold for this call only (no clause is added). On
  /// Unsat, conflict() holds the failed-assumption subset; if conflict()
  /// is empty the formula is unsatisfiable regardless of assumptions.
  SolveResult solve(const std::vector<Lit> &Assumptions);

  /// After an Unsat answer from solve(Assumptions): the final conflict
  /// clause, a subset of the *negated* assumptions whose disjunction is
  /// implied by the formula (MiniSat's analyzeFinal output). Empty when
  /// the formula is unsatisfiable without any assumption.
  const ClauseLits &conflict() const { return FinalConflict; }

  /// After Sat: the value assigned to \p V / \p L in the captured model
  /// (the model survives the end-of-solve backtrack and later calls until
  /// the next Sat answer overwrites it).
  bool modelValue(Var V) const;
  bool modelValue(Lit L) const;

  const SolverStats &stats() const { return Stats; }

private:
  // Clause arena: all clauses live in one uint32 buffer. A clause reference
  // is the offset of its header. Header layout:
  //   [0] size | (learnt ? LearntBit : 0)
  //   [1] activity (float bits, learnt only; problem clauses store 0)
  //   [2..2+size) literal codes
  using CRef = uint32_t;
  static constexpr CRef InvalidCRef = 0xffffffffu;
  static constexpr uint32_t LearntBit = 0x80000000u;

  std::vector<uint32_t> Arena;

  uint32_t clauseSize(CRef C) const { return Arena[C] & ~LearntBit; }
  bool clauseLearnt(CRef C) const { return Arena[C] & LearntBit; }
  Lit *clauseLits(CRef C) {
    return reinterpret_cast<Lit *>(&Arena[C + 2]);
  }
  const Lit *clauseLits(CRef C) const {
    return reinterpret_cast<const Lit *>(&Arena[C + 2]);
  }
  float clauseActivity(CRef C) const;
  void setClauseActivity(CRef C, float A);

  CRef allocClause(const ClauseLits &Lits, bool Learnt);

  struct Watcher {
    CRef Clause;
    Lit Blocker;
  };
  std::vector<std::vector<Watcher>> Watches; ///< Indexed by Lit::index().

  // Assignment trail.
  std::vector<LBool> Assigns;       ///< Current value per var.
  std::vector<uint8_t> SavedPhase;  ///< Phase saving per var.
  std::vector<int32_t> Level;       ///< Decision level per var.
  std::vector<CRef> Reason;         ///< Antecedent clause per var.
  std::vector<Lit> Trail;
  std::vector<int32_t> TrailLims;   ///< Trail index at each decision level.
  size_t PropagateHead = 0;

  // Decision heuristic (VSIDS with a binary heap).
  std::vector<double> Activity;
  std::vector<int32_t> HeapPos; ///< -1 when not in heap.
  std::vector<Var> Heap;
  double VarInc = 1.0;
  static constexpr double VarDecay = 0.95;

  // Learnt clause management.
  std::vector<CRef> Learnts;
  std::vector<CRef> Problems;
  double ClauseInc = 1.0;
  static constexpr double ClauseDecay = 0.999;
  uint64_t MaxLearnts = 0;

  // Refutation attribution (explain probes only; see setClauseTag).
  uint32_t CurrentTag = 0;
  bool CoreTracking = false;
  std::vector<uint32_t> CoreOut; ///< Final core, sorted and deduped.
  std::unordered_map<CRef, std::vector<uint32_t>> LearntTags;
  std::unordered_map<Var, std::vector<uint32_t>> UnitTags;
  std::vector<uint32_t> ResolveTags; ///< Scratch for one analyze() pass.

  uint64_t ProblemClauses = 0;
  uint64_t ConflictBudget = 0;
  const std::atomic<bool> *Interrupt = nullptr;
  bool WasInterrupted = false;
  uint64_t PostInterruptConflicts = 0;
  bool Unsatisfiable = false;
  SolverStats Stats;
  bool LogProof = false;
  std::vector<ClauseLits> Proof;
  std::vector<uint8_t> Model;   ///< Snapshot of the last Sat assignment.
  ClauseLits FinalConflict;     ///< Failed assumptions of the last Unsat.
  uint64_t WastedArenaWords = 0; ///< Holes left by deleted learnt clauses.

  // Scratch for analyze().
  std::vector<uint8_t> SeenFlags;
  std::vector<Var> SeenToClear;

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negative() ? lboolNot(V) : V;
  }

  int decisionLevel() const { return static_cast<int>(TrailLims.size()); }

  void enqueue(Lit L, CRef From);
  CRef propagate();
  void attachClause(CRef C);
  void detachClause(CRef C);
  void analyze(CRef Confl, ClauseLits &Learnt, int &BacktrackLevel);
  void analyzeFinal(Lit P);
  void noteClauseTags(CRef C, std::vector<uint32_t> &Out) const;
  void noteUnitTags(Var V, std::vector<uint32_t> &Out) const;
  void collectLevel0Core(CRef Confl);
  void collectLevel0VarCore(Var Start);
  void level0CoreBfs(std::vector<Var> &Queue);
  void finalizeCore();
  void captureModel();
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(int ToLevel);
  Lit pickBranchLit();

  void varBumpActivity(Var V);
  void varDecayActivity();
  void claBumpActivity(CRef C);
  void claDecayActivity();
  void heapInsert(Var V);
  void heapPercolateUp(int Pos);
  void heapPercolateDown(int Pos);
  Var heapRemoveMax();
  void reduceDB();
  void compactArena();

  static uint64_t luby(uint64_t I);
};

} // namespace sat
} // namespace denali

#endif // DENALI_SAT_SOLVER_H
