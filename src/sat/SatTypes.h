//===- sat/SatTypes.h - Literals, variables, truth values -------*- C++ -*-===//
///
/// \file
/// Basic types of the SAT subsystem. Variables are dense non-negative
/// integers; a literal packs a variable and a sign (MiniSat-style 2v+sign
/// encoding, sign bit set for negative literals).
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SAT_SATTYPES_H
#define DENALI_SAT_SATTYPES_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace denali {
namespace sat {

using Var = int32_t;

/// A literal: variable + sign.
class Lit {
public:
  Lit() : Code(-2) {}
  Lit(Var V, bool Negative) : Code(V * 2 + (Negative ? 1 : 0)) {
    assert(V >= 0 && "negative variable");
  }

  static Lit pos(Var V) { return Lit(V, false); }
  static Lit neg(Var V) { return Lit(V, true); }

  Var var() const { return Code >> 1; }
  bool negative() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  bool operator<(const Lit &O) const { return Code < O.Code; }

  /// Dense index for watch lists and maps.
  int32_t index() const { return Code; }
  static Lit fromIndex(int32_t Index) {
    Lit L;
    L.Code = Index;
    return L;
  }

  bool valid() const { return Code >= 0; }

private:
  int32_t Code;
};

/// Three-valued logic for assignments.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolFrom(bool B) { return B ? LBool::True : LBool::False; }
inline LBool lboolNot(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// A clause as a plain literal vector (interface type; the solver stores
/// clauses in its own arena).
using ClauseLits = std::vector<Lit>;

} // namespace sat
} // namespace denali

#endif // DENALI_SAT_SATTYPES_H
