//===- sat/Dimacs.h - DIMACS CNF I/O ----------------------------*- C++ -*-===//
///
/// \file
/// DIMACS CNF reading and writing. Writing lets the constraint generator's
/// output be cross-checked against any external solver; reading lets the
/// solver be exercised on standard benchmark files.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SAT_DIMACS_H
#define DENALI_SAT_DIMACS_H

#include "sat/SatTypes.h"

#include <string>
#include <vector>

namespace denali {
namespace sat {

class Solver;

/// A CNF formula in portable form.
struct Cnf {
  int NumVars = 0;
  std::vector<ClauseLits> Clauses;

  /// Renders in DIMACS format.
  std::string toDimacs() const;

  /// Loads every clause into \p S (creating variables as needed).
  /// \returns false if the formula is trivially unsatisfiable.
  bool loadInto(Solver &S) const;
};

/// Parses DIMACS text. \returns false (and sets \p ErrorOut) on malformed
/// input.
bool parseDimacs(const std::string &Text, Cnf &Out, std::string *ErrorOut);

} // namespace sat
} // namespace denali

#endif // DENALI_SAT_DIMACS_H
