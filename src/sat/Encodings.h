//===- sat/Encodings.h - Cardinality encodings ------------------*- C++ -*-===//
///
/// \file
/// Helper encodings used by the constraint generator. The per-(cycle, unit)
/// issue-exclusivity constraints (paper, section 6, fourth condition) are
/// at-most-one constraints; we provide both the quadratic pairwise encoding
/// and a linear "ladder" (sequential) encoding, selectable for the ablation
/// study in bench_sat_scaling.
///
//===----------------------------------------------------------------------===//

#ifndef DENALI_SAT_ENCODINGS_H
#define DENALI_SAT_ENCODINGS_H

#include "sat/Solver.h"

namespace denali {
namespace sat {

enum class AtMostOneStyle { Pairwise, Ladder };

/// Adds clauses forcing at most one of \p Lits to be true.
void addAtMostOne(Solver &S, const ClauseLits &Lits,
                  AtMostOneStyle Style = AtMostOneStyle::Ladder);

/// Adds clauses forcing exactly one of \p Lits to be true.
void addExactlyOne(Solver &S, const ClauseLits &Lits,
                   AtMostOneStyle Style = AtMostOneStyle::Ladder);

/// Adds clauses forcing at most \p K of \p Lits to be true (sequential
/// counter encoding). K >= 1.
void addAtMostK(Solver &S, const ClauseLits &Lits, unsigned K);

} // namespace sat
} // namespace denali

#endif // DENALI_SAT_ENCODINGS_H
