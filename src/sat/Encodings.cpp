//===- sat/Encodings.cpp --------------------------------------------------===//

#include "sat/Encodings.h"

#include <cassert>

using namespace denali;
using namespace denali::sat;

static void addPairwise(Solver &S, const ClauseLits &Lits) {
  for (size_t I = 0; I < Lits.size(); ++I)
    for (size_t J = I + 1; J < Lits.size(); ++J)
      S.addClause(~Lits[I], ~Lits[J]);
}

static void addLadder(Solver &S, const ClauseLits &Lits) {
  // Sequential encoding: Aux[i] == "some literal among Lits[0..i] is true".
  // Clauses: Lits[i] -> Aux[i]; Aux[i-1] -> Aux[i]; Lits[i] & Aux[i-1] -> false.
  size_t N = Lits.size();
  if (N <= 4) { // Pairwise is smaller for tiny groups.
    addPairwise(S, Lits);
    return;
  }
  Lit Prev;
  for (size_t I = 0; I < N; ++I) {
    if (I + 1 == N) {
      // The last element needs no new aux variable.
      if (Prev.valid())
        S.addClause(~Lits[I], ~Prev);
      break;
    }
    Lit Aux = Lit::pos(S.newVar());
    S.addClause(~Lits[I], Aux);
    if (Prev.valid()) {
      S.addClause(~Prev, Aux);
      S.addClause(~Lits[I], ~Prev);
    }
    Prev = Aux;
  }
}

void denali::sat::addAtMostOne(Solver &S, const ClauseLits &Lits,
                               AtMostOneStyle Style) {
  if (Lits.size() < 2)
    return;
  if (Style == AtMostOneStyle::Pairwise)
    addPairwise(S, Lits);
  else
    addLadder(S, Lits);
}

void denali::sat::addExactlyOne(Solver &S, const ClauseLits &Lits,
                                AtMostOneStyle Style) {
  S.addClause(Lits);
  addAtMostOne(S, Lits, Style);
}

void denali::sat::addAtMostK(Solver &S, const ClauseLits &Lits, unsigned K) {
  assert(K >= 1 && "use addClause(~L) to forbid literals outright");
  size_t N = Lits.size();
  if (N <= K)
    return;
  if (K == 1) {
    addAtMostOne(S, Lits);
    return;
  }
  // Sequential counter: Count[i][j] == "at least j+1 of Lits[0..i] true".
  std::vector<std::vector<Lit>> Count(N, std::vector<Lit>(K));
  for (size_t I = 0; I < N; ++I)
    for (unsigned J = 0; J < K; ++J)
      Count[I][J] = Lit::pos(S.newVar());
  S.addClause(~Lits[0], Count[0][0]);
  for (unsigned J = 1; J < K; ++J)
    S.addClause(~Count[0][J]);
  for (size_t I = 1; I < N; ++I) {
    S.addClause(~Lits[I], Count[I][0]);
    S.addClause(~Count[I - 1][0], Count[I][0]);
    for (unsigned J = 1; J < K; ++J) {
      // Lits[I] & Count[I-1][J-1] -> Count[I][J]
      S.addClause(~Lits[I], ~Count[I - 1][J - 1], Count[I][J]);
      S.addClause(~Count[I - 1][J], Count[I][J]);
    }
    // Overflow: Lits[I] with K already true is forbidden.
    S.addClause(~Lits[I], ~Count[I - 1][K - 1]);
  }
}
